// Differential test of the adaptive radix tree against a std::map oracle.
//
// The ART's contract is exactly std::map<std::string, V>'s observable
// behavior: operator[] find-or-insert, erase-by-key, and in-order
// (lexicographic) iteration. Every suite here drives both structures with
// the same operation stream and asserts they never diverge — including key
// shapes chosen to force each node representation (4 -> 16 -> 48 -> 256
// and back down), both prefix-compression split paths, and adversarial
// keys (long shared prefixes, embedded zero bytes, prefix-of-another).
#include "dockmine/art/art.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dockmine/util/rng.h"

namespace dockmine::art {
namespace {

using Oracle = std::map<std::string, std::uint64_t>;

/// Assert identical contents via in-order iteration: same keys, same
/// values, same order.
void expect_matches(const Art<std::uint64_t>& tree, const Oracle& oracle) {
  ASSERT_EQ(tree.size(), oracle.size());
  auto expect = oracle.begin();
  std::string previous;
  bool first = true;
  tree.for_each([&](std::string_view key, const std::uint64_t& value) {
    ASSERT_NE(expect, oracle.end());
    EXPECT_EQ(key, expect->first);
    EXPECT_EQ(value, expect->second);
    if (!first) {
      EXPECT_LT(previous, std::string(key)) << "iteration out of order";
    }
    previous.assign(key);
    first = false;
    ++expect;
  });
  EXPECT_EQ(expect, oracle.end());
}

TEST(ArtTest, EmptyTree) {
  Art<std::uint64_t> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.find("anything"), nullptr);
  EXPECT_FALSE(tree.erase("anything"));
  std::size_t visited = 0;
  tree.for_each([&](std::string_view, const std::uint64_t&) { ++visited; });
  EXPECT_EQ(visited, 0u);
  EXPECT_EQ(tree.memory_bytes(), 0u);
}

TEST(ArtTest, InsertFindRoundTrip) {
  Art<std::uint64_t> tree;
  tree["alpha"] = 1;
  tree["beta"] = 2;
  tree[""] = 3;  // empty key terminates at the root
  ASSERT_NE(tree.find("alpha"), nullptr);
  EXPECT_EQ(*tree.find("alpha"), 1u);
  ASSERT_NE(tree.find(""), nullptr);
  EXPECT_EQ(*tree.find(""), 3u);
  EXPECT_EQ(tree.find("alph"), nullptr);
  EXPECT_EQ(tree.find("alphaa"), nullptr);
  EXPECT_EQ(tree.size(), 3u);
  tree["alpha"] = 9;  // overwrite, not duplicate
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(*tree.find("alpha"), 9u);
}

// Split path A: inserting a key that terminates exactly at the split point
// of an existing compressed prefix ("romane" then "roman").
TEST(ArtTest, PrefixSplitAtKeyEnd) {
  Art<std::uint64_t> tree;
  Oracle oracle;
  tree["romane"] = 1;
  oracle["romane"] = 1;
  tree["roman"] = 2;  // proper prefix of an existing key
  oracle["roman"] = 2;
  expect_matches(tree, oracle);
  tree["rom"] = 3;
  oracle["rom"] = 3;
  expect_matches(tree, oracle);
}

// Split path B: inserting a key that diverges mid-prefix, creating a new
// parent with two children ("romane" then "romulus").
TEST(ArtTest, PrefixSplitDiverging) {
  Art<std::uint64_t> tree;
  Oracle oracle;
  for (const char* key : {"romane", "romulus", "rubens", "ruber",
                          "rubicon", "rubicundus"}) {
    tree[key] = oracle[key] = static_cast<std::uint64_t>(oracle.size());
  }
  expect_matches(tree, oracle);
}

TEST(ArtTest, NodeGrowthThroughEveryRepresentation) {
  Art<std::uint64_t> tree;
  Oracle oracle;
  // 256 distinct first bytes under one root: 4 -> 16 -> 48 -> 256.
  for (int byte = 0; byte < 256; ++byte) {
    std::string key;
    key.push_back(static_cast<char>(byte));
    key += "tail";
    tree[key] = oracle[key] = static_cast<std::uint64_t>(byte);
    // Check continuously so each transition is exercised, not just the end
    // state.
    if (byte == 3 || byte == 4 || byte == 15 || byte == 16 || byte == 47 ||
        byte == 48 || byte == 255) {
      expect_matches(tree, oracle);
    }
  }
  const Stats stats = tree.stats();
  EXPECT_EQ(stats.node256, 1u) << "root should have grown to Node256";
  EXPECT_EQ(stats.values, 256u);

  // And back down: erase to below each shrink threshold.
  std::vector<std::string> keys;
  for (const auto& [key, value] : oracle) keys.push_back(key);
  for (const auto& key : keys) {
    ASSERT_TRUE(tree.erase(key));
    oracle.erase(key);
    if (oracle.size() == 40 || oracle.size() == 12 || oracle.size() == 3 ||
        oracle.size() == 1) {
      expect_matches(tree, oracle);
    }
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.memory_bytes(), 0u);
}

TEST(ArtTest, SharedLongPrefixKeys) {
  // 48-byte shared prefix: path compression must hold the run, and the
  // first diverging byte must split it correctly.
  const std::string prefix(48, 'p');
  Art<std::uint64_t> tree;
  Oracle oracle;
  for (int i = 0; i < 64; ++i) {
    const std::string key = prefix + "/" + std::to_string(i);
    tree[key] = oracle[key] = static_cast<std::uint64_t>(i);
  }
  // The prefix itself, and a key that diverges inside the run.
  tree[prefix] = oracle[prefix] = 1000;
  const std::string diverging = prefix.substr(0, 20) + "X";
  tree[diverging] = oracle[diverging] = 1001;
  expect_matches(tree, oracle);
  EXPECT_GT(tree.stats().prefix_bytes, 40u);
}

TEST(ArtTest, EmbeddedZeroBytes) {
  Art<std::uint64_t> tree;
  Oracle oracle;
  const std::string keys[] = {
      std::string("a\0b", 3),   std::string("a\0", 2),
      std::string("a", 1),      std::string("\0", 1),
      std::string("\0\0", 2),   std::string("a\0c", 3),
      std::string("\0a", 2),    std::string(),
  };
  std::uint64_t next = 0;
  for (const auto& key : keys) {
    tree[key] = oracle[key] = next++;
  }
  expect_matches(tree, oracle);
  for (const auto& key : keys) {
    ASSERT_NE(tree.find(key), nullptr) << "zero-byte key lost";
  }
  ASSERT_TRUE(tree.erase(std::string("a\0", 2)));
  oracle.erase(std::string("a\0", 2));
  expect_matches(tree, oracle);
}

TEST(ArtTest, EraseMergesSingleChildChains) {
  Art<std::uint64_t> tree;
  Oracle oracle;
  tree["abcdef"] = oracle["abcdef"] = 1;
  tree["abcxyz"] = oracle["abcxyz"] = 2;
  tree["abc"] = oracle["abc"] = 3;
  // Removing the middle value and one branch must re-compress the chain.
  ASSERT_TRUE(tree.erase("abc"));
  oracle.erase("abc");
  expect_matches(tree, oracle);
  ASSERT_TRUE(tree.erase("abcxyz"));
  oracle.erase("abcxyz");
  expect_matches(tree, oracle);
  // Single remaining key should live in a single re-merged node.
  EXPECT_EQ(tree.stats().nodes(), 1u);
  ASSERT_TRUE(tree.erase("abcdef"));
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.memory_bytes(), 0u);
}

TEST(ArtTest, Key64EncodingOrdersNumerically) {
  // Big-endian keys: lexicographic byte order == numeric u64 order.
  const std::uint64_t values[] = {0,
                                  1,
                                  0xff,
                                  0x100,
                                  0x123456789abcdef0ULL,
                                  0x8000000000000000ULL,
                                  ~0ULL};
  Art64<std::uint64_t> tree;
  for (std::uint64_t v : values) tree[v] = v;
  std::uint64_t previous = 0;
  bool first = true;
  std::size_t count = 0;
  tree.for_each([&](std::uint64_t key, const std::uint64_t& value) {
    EXPECT_EQ(key, value) << "decode must invert encode";
    if (!first) {
      EXPECT_LT(previous, key);
    }
    previous = key;
    first = false;
    ++count;
  });
  EXPECT_EQ(count, std::size(values));
}

/// One randomized differential run: interleaved insert/lookup/erase against
/// the oracle, with periodic full-iteration checks.
void differential_run(std::uint64_t seed) {
  util::Rng rng(seed);
  Art<std::uint64_t> tree;
  Oracle oracle;

  // Key generator biased toward collisions and structure: a small alphabet
  // over short fragments makes shared prefixes, prefix-of-key pairs, and
  // dense branch bytes all common.
  auto random_key = [&] {
    std::string key;
    const std::uint64_t fragments = rng.uniform(7);
    for (std::uint64_t f = 0; f < fragments; ++f) {
      switch (rng.uniform(4)) {
        case 0: key += "usr"; break;
        case 1: key += "/"; break;
        case 2: key.push_back(static_cast<char>(rng.uniform(256))); break;
        default:
          key.push_back(static_cast<char>('a' + rng.uniform(4)));
          break;
      }
    }
    return key;
  };

  std::vector<std::string> live;  // sample of inserted keys for hit-heavy ops
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t kind = rng.uniform(100);
    if (kind < 50) {  // insert / overwrite
      const std::string key = random_key();
      const std::uint64_t value = rng();
      tree[key] = value;
      oracle[key] = value;
      live.push_back(key);
    } else if (kind < 75) {  // lookup (mix of hits and misses)
      const std::string key = !live.empty() && rng.uniform(2) == 0
                                  ? live[rng.uniform(live.size())]
                                  : random_key();
      const std::uint64_t* got = tree.find(key);
      auto expect = oracle.find(key);
      if (expect == oracle.end()) {
        EXPECT_EQ(got, nullptr) << "phantom key: " << testing::PrintToString(key);
      } else {
        ASSERT_NE(got, nullptr) << "lost key: " << testing::PrintToString(key);
        EXPECT_EQ(*got, expect->second);
      }
    } else {  // erase (mix of present and absent)
      const std::string key = !live.empty() && rng.uniform(3) != 0
                                  ? live[rng.uniform(live.size())]
                                  : random_key();
      EXPECT_EQ(tree.erase(key), oracle.erase(key) > 0)
          << "erase disagreement: " << testing::PrintToString(key);
    }
    if (op % 2500 == 2499) expect_matches(tree, oracle);
  }
  expect_matches(tree, oracle);

  // Drain completely through erase; memory accounting must return to zero.
  std::vector<std::string> remaining;
  for (const auto& [key, value] : oracle) remaining.push_back(key);
  for (const auto& key : remaining) {
    ASSERT_TRUE(tree.erase(key));
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.memory_bytes(), 0u);
}

TEST(ArtDifferentialTest, Seed1) { differential_run(0xD0C1); }
TEST(ArtDifferentialTest, Seed2) { differential_run(0xD0C2); }
TEST(ArtDifferentialTest, Seed3) { differential_run(0xD0C3); }

TEST(ArtDifferentialTest, U64KeyStream) {
  // The shard workload shape: u64 content keys via Art64, against a u64
  // oracle. Clustered keys (shared high bytes) exercise compression.
  util::Rng rng(0xA57);
  Art64<std::uint64_t> tree;
  std::map<std::uint64_t, std::uint64_t> oracle;
  for (int op = 0; op < 30000; ++op) {
    // Half the keys share a 4-byte cluster prefix, half are uniform.
    const std::uint64_t key = rng.uniform(2) == 0
                                  ? (0xDEADBEEF00000000ULL | rng.uniform(0x10000))
                                  : rng();
    if (rng.uniform(4) == 0) {
      EXPECT_EQ(tree.erase(key), oracle.erase(key) > 0);
    } else {
      tree[key] += 1;
      oracle[key] += 1;
    }
  }
  ASSERT_EQ(tree.size(), oracle.size());
  auto expect = oracle.begin();
  tree.for_each([&](std::uint64_t key, const std::uint64_t& value) {
    ASSERT_NE(expect, oracle.end());
    EXPECT_EQ(key, expect->first);
    EXPECT_EQ(value, expect->second);
    ++expect;
  });
  EXPECT_EQ(expect, oracle.end());
}

TEST(ArtTest, StatsCensusIsConsistent) {
  Art<std::uint64_t> tree;
  for (int i = 0; i < 1000; ++i) {
    tree["key/" + std::to_string(i)] = static_cast<std::uint64_t>(i);
  }
  const Stats stats = tree.stats();
  EXPECT_EQ(stats.values, 1000u);
  EXPECT_GT(stats.nodes(), 0u);
  EXPECT_GT(tree.memory_bytes(), 0u);
  Stats sum;
  sum += stats;
  sum += stats;
  EXPECT_EQ(sum.values, 2000u);
  EXPECT_EQ(sum.nodes(), 2 * stats.nodes());
}

}  // namespace
}  // namespace dockmine::art
