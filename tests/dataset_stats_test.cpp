// Calibration-band tests: DatasetStats on a small snapshot must land inside
// loose bands around the paper's reported quantiles. These are the guard
// rails that keep the synthetic model honest as the code evolves; the
// benches print the precise paper-vs-measured tables.
#include <gtest/gtest.h>

#include <cstdlib>

#include "dockmine/core/dataset.h"
#include "dockmine/dedup/by_type.h"

namespace dockmine::core {
namespace {

class DatasetFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hub = new synth::HubModel(synth::Calibration::paper(),
                              synth::Scale{400, 20170530});
    DatasetOptions options;
    options.file_dedup = true;
    options.cross_dup = true;
    stats = new DatasetStats(DatasetStats::compute(*hub, options));
  }
  static void TearDownTestSuite() {
    delete stats;
    delete hub;
    stats = nullptr;
    hub = nullptr;
  }
  static synth::HubModel* hub;
  static DatasetStats* stats;
};

synth::HubModel* DatasetFixture::hub = nullptr;
DatasetStats* DatasetFixture::stats = nullptr;

TEST_F(DatasetFixture, BookkeepingConsistent) {
  EXPECT_EQ(stats->unique_layer_count, hub->unique_layers().size());
  EXPECT_EQ(stats->image_count, hub->downloadable_images());
  EXPECT_EQ(stats->layer_files.size(), stats->unique_layer_count);
  EXPECT_EQ(stats->image_cis.size(), stats->image_count);
  EXPECT_EQ(stats->repo_pulls.size(), hub->repositories().size());
  EXPECT_GT(stats->total_files, 0u);
  EXPECT_GT(stats->total_fls_bytes, stats->total_cls_bytes);
}

TEST_F(DatasetFixture, Fig5FileCountBands) {
  // Paper: 7% empty, 27% single-file, median <30, p90 ~7410.
  EXPECT_NEAR(stats->layer_files.fraction_equal(0), 0.07, 0.035);
  EXPECT_NEAR(stats->layer_files.fraction_equal(1), 0.27, 0.06);
  EXPECT_GT(stats->layer_files.median(), 10.0);
  EXPECT_LT(stats->layer_files.median(), 80.0);
  EXPECT_GT(stats->layer_files.p90(), 1500.0);
  EXPECT_LE(stats->layer_files.max(),
            static_cast<double>(hub->calibration().files_max));
}

TEST_F(DatasetFixture, Fig6Fig7DirAndDepthBands) {
  // Paper: dirs median 11 / p90 826; depth mode 3, median <4, p90 <10.
  EXPECT_GT(stats->layer_dirs.median(), 4.0);
  EXPECT_LT(stats->layer_dirs.median(), 25.0);
  EXPECT_GT(stats->layer_dirs.p90(), 200.0);
  EXPECT_GE(stats->layer_dirs.min(), 1.0);
  EXPECT_GE(stats->layer_depth.median(), 2.0);
  EXPECT_LE(stats->layer_depth.median(), 5.0);
  EXPECT_LT(stats->layer_depth.p90(), 10.0);
}

TEST_F(DatasetFixture, Fig3LayerSizeBands) {
  // Paper: half of layers < 4 MB in both formats.
  EXPECT_GT(stats->layer_cls.fraction_at_or_below(4e6), 0.5);
  EXPECT_GT(stats->layer_fls.fraction_at_or_below(4e6), 0.4);
  // p90 within 3x of the paper (63 MB / 177 MB).
  EXPECT_GT(stats->layer_cls.p90(), 63e6 / 3);
  EXPECT_LT(stats->layer_cls.p90(), 63e6 * 3);
  EXPECT_GT(stats->layer_fls.p90(), 177e6 / 3);
  EXPECT_LT(stats->layer_fls.p90(), 177e6 * 3);
}

TEST_F(DatasetFixture, Fig4CompressionBands) {
  // Paper: median 2.6, p90 4, max ~1026, min >= 1.
  EXPECT_GT(stats->layer_ratio.median(), 1.6);
  EXPECT_LT(stats->layer_ratio.median(), 3.5);
  EXPECT_LT(stats->layer_ratio.p90(), 6.0);
  EXPECT_LE(stats->layer_ratio.max(), 1100.0);
  // Layers holding a handful of tiny files genuinely "compress" below 1
  // (tar/gzip framing exceeds the content); the paper's Fig. 4 axis starts
  // at 1, truncating that corner.
  EXPECT_GT(stats->layer_ratio.min(), 0.05);
}

TEST_F(DatasetFixture, Fig8PopularityBands) {
  // Paper: median 40, p90 333, max 650M.
  EXPECT_GT(stats->repo_pulls.median(), 15.0);
  EXPECT_LT(stats->repo_pulls.median(), 90.0);
  EXPECT_GT(stats->repo_pulls.p90(), 150.0);
  EXPECT_LT(stats->repo_pulls.p90(), 700.0);
  EXPECT_DOUBLE_EQ(stats->repo_pulls.max(), 6.5e8);  // pinned to nginx
}

TEST_F(DatasetFixture, Fig10LayerCountBands) {
  // Paper: median 8, p90 18, max 120.
  EXPECT_GE(stats->image_layers.median(), 6.0);
  EXPECT_LE(stats->image_layers.median(), 10.0);
  EXPECT_GE(stats->image_layers.p90(), 14.0);
  EXPECT_LE(stats->image_layers.p90(), 22.0);
  EXPECT_LE(stats->image_layers.max(), 120.0);
  EXPECT_GE(stats->image_layers.min(), 1.0);
}

TEST_F(DatasetFixture, Fig9Fig11Fig12ImageBands) {
  // Paper: FIS median 94 MB; files median 1,090; dirs median 296. Allow
  // generous bands (small-sample medians wander).
  EXPECT_GT(stats->image_fis.median(), 94e6 / 4);
  EXPECT_LT(stats->image_fis.median(), 94e6 * 4);
  EXPECT_GT(stats->image_files.median(), 1090 / 4.0);
  EXPECT_LT(stats->image_files.median(), 1090 * 4.0);
  EXPECT_GT(stats->image_dirs.median(), 296 / 4.0);
  EXPECT_LT(stats->image_dirs.median(), 296 * 4.0);
}

TEST_F(DatasetFixture, Fig23SharingBands) {
  // Paper: ~90% of layers referenced once, ~5% twice, sharing saves 1.8x.
  const auto refs = stats->sharing.reference_count_cdf();
  EXPECT_NEAR(refs.fraction_equal(1), 0.90, 0.05);
  EXPECT_NEAR(refs.fraction_equal(2), 0.05, 0.04);
  EXPECT_GT(stats->sharing.sharing_ratio(), 1.3);
  EXPECT_LT(stats->sharing.sharing_ratio(), 2.3);
  // The single most-referenced layer is THE empty layer, at ~52% of images.
  const auto top = stats->sharing.top(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_NEAR(static_cast<double>(top[0].references) /
                  static_cast<double>(stats->image_count),
              0.52, 0.08);
}

TEST_F(DatasetFixture, Fig24DedupBands) {
  ASSERT_NE(stats->file_index, nullptr);
  const auto totals = stats->file_index->totals();
  // Scale-dependent; at a few hundred repos expect roughly 4-8x count.
  EXPECT_GT(totals.count_ratio(), 2.5);
  EXPECT_GT(totals.capacity_ratio(), 1.5);
  EXPECT_LT(totals.capacity_ratio(), totals.count_ratio());
  // Most-repeated content is the empty file.
  const auto top = stats->file_index->max_repeat();
  EXPECT_EQ(top.size, 0u);
  EXPECT_EQ(top.type, filetype::Type::kEmpty);
  // Copies-per-content mode near the paper's 4.
  const auto repeats = stats->file_index->repeat_count_cdf();
  EXPECT_GE(repeats.median(), 2.0);
  EXPECT_LE(repeats.median(), 8.0);
}

TEST_F(DatasetFixture, Fig26CrossDupBands) {
  // Paper: p10 of layers >= 97.6% dup, p10 of images >= 99.4%; scaled-down
  // snapshots sit lower but must already be heavily duplicated.
  ASSERT_FALSE(stats->cross_layer_dup.empty());
  EXPECT_GT(stats->cross_layer_dup.quantile(0.1), 0.6);
  EXPECT_GT(stats->cross_image_dup.quantile(0.1), 0.75);
  EXPECT_LE(stats->cross_layer_dup.max(), 1.0);
}

TEST_F(DatasetFixture, Fig14TypeMixBands) {
  const dedup::TypeBreakdown breakdown(*stats->file_index);
  using filetype::Group;
  // Paper Fig. 14(a): Doc 44%, SC 13%, EOL 11%, Scr 9%, Img 4%.
  EXPECT_NEAR(breakdown.count_share(Group::kDocuments), 0.44, 0.07);
  EXPECT_NEAR(breakdown.count_share(Group::kSourceCode), 0.13, 0.04);
  EXPECT_NEAR(breakdown.count_share(Group::kEol), 0.11, 0.04);
  EXPECT_NEAR(breakdown.count_share(Group::kScripts), 0.09, 0.03);
  EXPECT_NEAR(breakdown.count_share(Group::kImages), 0.04, 0.02);
  // Fig. 14(b): EOL holds the most capacity (paper 37%).
  EXPECT_GT(breakdown.capacity_share(Group::kEol), 0.2);
  // Fig. 15: DB files are by far the largest on average (paper 978.8 KB).
  EXPECT_GT(breakdown.by_group(Group::kDatabases).avg_size(), 400e3);
  for (std::size_t g = 0; g < filetype::kGroupCount; ++g) {
    if (static_cast<Group>(g) == Group::kDatabases) continue;
    EXPECT_LT(breakdown.by_group(static_cast<Group>(g)).avg_size(),
              breakdown.by_group(Group::kDatabases).avg_size());
  }
}

TEST_F(DatasetFixture, Fig27DedupOrderingByGroup) {
  const dedup::TypeBreakdown breakdown(*stats->file_index);
  using filetype::Group;
  // Paper ordering: scripts (98%) and source (96.8%) dedup best,
  // databases worst (76%).
  const double scr = breakdown.by_group(Group::kScripts).capacity_removed();
  const double sc = breakdown.by_group(Group::kSourceCode).capacity_removed();
  const double doc = breakdown.by_group(Group::kDocuments).capacity_removed();
  const double eol = breakdown.by_group(Group::kEol).capacity_removed();
  const double db = breakdown.by_group(Group::kDatabases).capacity_removed();
  EXPECT_GT(scr, doc);
  EXPECT_GT(sc, doc);
  EXPECT_GT(doc, eol);
  EXPECT_GT(eol, db);
}

TEST_F(DatasetFixture, ComputeIsDeterministic) {
  DatasetOptions options;
  options.file_dedup = false;
  const DatasetStats again = DatasetStats::compute(*hub, options);
  EXPECT_DOUBLE_EQ(again.layer_files.median(), stats->layer_files.median());
  EXPECT_DOUBLE_EQ(again.image_cis.quantile(0.75),
                   stats->image_cis.quantile(0.75));
  EXPECT_EQ(again.total_files, stats->total_files);
}

TEST(ScaleFromEnvTest, OverridesFromEnvironment) {
  ::setenv("DOCKMINE_REPOS", "123", 1);
  ::setenv("DOCKMINE_SEED", "9", 1);
  const synth::Scale scale = scale_from_env(synth::Scale::test());
  EXPECT_EQ(scale.repositories, 123u);
  EXPECT_EQ(scale.seed, 9u);
  ::unsetenv("DOCKMINE_REPOS");
  ::unsetenv("DOCKMINE_SEED");
  const synth::Scale fallback = scale_from_env(synth::Scale{77, 3});
  EXPECT_EQ(fallback.repositories, 77u);
  EXPECT_EQ(fallback.seed, 3u);
}

}  // namespace
}  // namespace dockmine::core
