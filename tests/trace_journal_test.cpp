// Event-level tracing suite (DESIGN.md §11): the TraceJournal and
// everything stacked on it — deterministic serial traces, cross-queue
// context propagation in the streamed pipeline, critical-path attribution,
// ring bounding, the tracing-changes-nothing report invariant, multi-node
// obs export + merge-obs folding, the heartbeat emitter, and the metrics
// JSON wire round-trip. Runs in the -DDOCKMINE_OBS=OFF tree too, where
// `kCompiledIn == false` flips the expectations from "recorded" to
// "compiled away".
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dockmine/core/multi_node.h"
#include "dockmine/core/pipeline.h"
#include "dockmine/json/json.h"
#include "dockmine/obs/critical_path.h"
#include "dockmine/obs/export.h"
#include "dockmine/obs/heartbeat.h"
#include "dockmine/obs/journal.h"
#include "dockmine/obs/obs.h"
#include "dockmine/obs/trace_export.h"

namespace dockmine {
namespace {

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

core::PipelineOptions small_options(std::uint64_t seed) {
  core::PipelineOptions options;
  options.calibration = synth::Calibration::light();
  options.scale = synth::Scale{40, seed};
  options.gzip_level = 1;
  return options;
}

/// RAII: full tracing on for one test (obs + journal), everything reset and
/// switched back off on exit, including the clock.
struct TracingScope {
  TracingScope() {
    obs::reset_all();
    obs::set_enabled(true);
    obs::set_journal_enabled(true);
  }
  ~TracingScope() {
    obs::set_journal_enabled(false);
    obs::set_enabled(false);
    obs::reset_clock();
    obs::reset_all();
  }
};

/// Run the pipeline with tracing on a virtual wall clock (cpu reads 0) and
/// return the journal's exported trace document.
std::string traced_serial_dump(std::uint64_t seed) {
  TracingScope tracing;
  auto tick = std::make_shared<std::atomic<double>>(0.0);
  obs::set_clock([tick] { return tick->fetch_add(1.0); });

  core::PipelineOptions options = small_options(seed);
  options.mode = core::ExecutionMode::kSerial;
  auto run = core::run_end_to_end(options);
  EXPECT_TRUE(run.ok());
  return obs::trace_to_json().dump();
}

// ---------- determinism ----------

TEST(TraceJournalTest, SerialSeededRunsExportByteIdenticalTraces) {
  const std::string first = traced_serial_dump(20170530);
  const std::string second = traced_serial_dump(20170530);
  EXPECT_EQ(first, second);
  if constexpr (obs::kCompiledIn) {
    EXPECT_NE(first.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(first.find("\"pipeline\""), std::string::npos);
    EXPECT_NE(first.find("\"download\""), std::string::npos);
    EXPECT_NE(first.find("\"dropped\":0"), std::string::npos);
  } else {
    // Compiled out: a valid, empty trace document.
    EXPECT_NE(first.find("\"traceEvents\":[]"), std::string::npos);
  }
}

TEST(TraceJournalTest, EveryParentIdResolvesWithinItsTrace) {
  TracingScope tracing;
  core::PipelineOptions options = small_options(7);
  options.mode = core::ExecutionMode::kStreamed;
  options.queue_depth = 4;
  auto run = core::run_end_to_end(options);
  ASSERT_TRUE(run.ok());

  const auto events = obs::TraceJournal::global().snapshot();
  if constexpr (!obs::kCompiledIn) {
    EXPECT_TRUE(events.empty());
    return;
  }
  ASSERT_FALSE(events.empty());
  ASSERT_EQ(obs::TraceJournal::global().dropped(), 0u);
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>> spans;
  for (const auto& event : events) {
    EXPECT_NE(event.span_id, 0u);
    EXPECT_GE(event.end_ms, event.start_ms) << event.name;
    spans[event.trace_id].insert(event.span_id);
  }
  for (const auto& event : events) {
    if (event.parent_id == 0) continue;
    EXPECT_TRUE(spans[event.trace_id].count(event.parent_id))
        << event.name << " parent " << event.parent_id
        << " missing from trace " << event.trace_id;
  }
}

// ---------- streamed context propagation ----------

TEST(TraceJournalTest, StreamedAnalyzeParentsToItsDownloadAcrossQueue) {
  TracingScope tracing;
  core::PipelineOptions options = small_options(11);
  options.mode = core::ExecutionMode::kStreamed;
  options.queue_depth = 4;
  options.download_workers = 3;
  options.analyze_workers = 2;
  auto run = core::run_end_to_end(options);
  ASSERT_TRUE(run.ok());

  const auto events = obs::TraceJournal::global().snapshot();
  if constexpr (!obs::kCompiledIn) {
    EXPECT_TRUE(events.empty());
    return;
  }

  std::unordered_map<std::uint64_t, const obs::TraceEvent*> by_span;
  for (const auto& event : events) by_span[event.span_id] = &event;

  std::size_t analyzed = 0, waits = 0;
  for (const auto& event : events) {
    if (event.name == "analyze_layer") {
      ++analyzed;
      // The whole point of the hand-off propagation: analysis of a layer is
      // a child of that layer's download, even though a different thread
      // popped it off the bounded queue.
      const auto parent = by_span.find(event.parent_id);
      ASSERT_NE(parent, by_span.end()) << "orphan analyze_layer";
      EXPECT_EQ(parent->second->name, "download_layer");
      EXPECT_EQ(parent->second->trace_id, event.trace_id);
    }
    if (event.kind == obs::EventKind::kQueueWait) {
      ++waits;
      EXPECT_TRUE(event.name == "queue_wait" ||
                  event.name == "queue_push_wait")
          << event.name;
    }
  }
  EXPECT_GT(analyzed, 0u);
  EXPECT_GT(waits, 0u);

  // Queue waits are first-class in the aggregate half too: the hand-off
  // histogram shows up in the Prometheus exposition.
  const std::string prom = obs::to_prometheus(obs::collect());
  EXPECT_NE(prom.find("# TYPE dockmine_pipeline_queue_wait_ms histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("dockmine_pipeline_queue_wait_ms_count"),
            std::string::npos);
}

TEST(TraceJournalTest, CriticalPathAttributesAtLeast95PercentOfWall) {
  TracingScope tracing;
  core::PipelineOptions options = small_options(13);
  options.mode = core::ExecutionMode::kStreamed;
  options.queue_depth = 4;
  auto run = core::run_end_to_end(options);
  ASSERT_TRUE(run.ok());

  const auto events = obs::TraceJournal::global().snapshot();
  const auto crit = obs::critical_path(events);
  if constexpr (!obs::kCompiledIn) {
    EXPECT_EQ(crit.root_wall_ms, 0.0);
    return;
  }
  ASSERT_GT(crit.root_wall_ms, 0.0);
  // The walk tiles the root interval exactly, so attribution is complete
  // by construction; the acceptance bound is >= 95%.
  EXPECT_GE(crit.attributed_ms, 0.95 * crit.root_wall_ms);
  EXPECT_LE(crit.attributed_ms, crit.root_wall_ms * (1.0 + 1e-9));
  ASSERT_FALSE(crit.entries.empty());
  double entry_sum = crit.root_self_ms;
  for (const auto& entry : crit.entries) {
    EXPECT_GT(entry.total_ms, 0.0) << entry.name;
    EXPECT_GT(entry.segments, 0u) << entry.name;
    entry_sum += entry.total_ms;
  }
  EXPECT_DOUBLE_EQ(entry_sum, crit.attributed_ms);
  // The decomposition names real pipeline work, not container stages.
  std::set<std::string> names;
  for (const auto& entry : crit.entries) names.insert(entry.name);
  EXPECT_FALSE(names.count("stream"));
}

// ---------- tracing changes nothing ----------

TEST(TraceJournalTest, AnalysisReportsIdenticalWithTracingOnAndOff) {
  const std::uint64_t seed = 20170530;
  for (const core::ExecutionMode mode :
       {core::ExecutionMode::kSerial, core::ExecutionMode::kStaged,
        core::ExecutionMode::kStreamed}) {
    core::PipelineOptions options = small_options(seed);
    options.mode = mode;
    options.queue_depth = 4;

    auto plain = core::run_end_to_end(options);
    ASSERT_TRUE(plain.ok());

    std::string traced_report;
    {
      TracingScope tracing;
      auto traced = core::run_end_to_end(options);
      ASSERT_TRUE(traced.ok());
      traced_report = core::analysis_report_json(traced.value()).dump();
      if constexpr (obs::kCompiledIn) {
        EXPECT_GT(obs::TraceJournal::global().recorded(), 0u);
      }
    }
    EXPECT_EQ(core::analysis_report_json(plain.value()).dump(),
              traced_report)
        << "mode " << static_cast<int>(mode);
  }
}

// ---------- ring bounding ----------

TEST(TraceJournalTest, RingKeepsMostRecentEventsAndCountsDrops) {
  TracingScope tracing;
  auto& journal = obs::TraceJournal::global();
  journal.set_capacity(16);

  // Single thread: one shard, so resident == min(written, 16).
  for (int i = 0; i < 100; ++i) {
    obs::record_event("ring_event", obs::EventKind::kSpan,
                      static_cast<double>(i), static_cast<double>(i) + 0.5,
                      obs::TraceContext{});
  }
  const auto events = journal.snapshot();
  if constexpr (obs::kCompiledIn) {
    EXPECT_EQ(journal.recorded(), 100u);
    EXPECT_EQ(journal.dropped(), 84u);
    ASSERT_EQ(events.size(), 16u);
    // Overwrite-oldest: exactly the last 16 events survive.
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_DOUBLE_EQ(events[i].start_ms, static_cast<double>(84 + i));
    }
    const auto doc = obs::trace_to_json();
    EXPECT_EQ(doc["otherData"]["recorded"].as_int(), 100);
    EXPECT_EQ(doc["otherData"]["dropped"].as_int(), 84);
  } else {
    EXPECT_EQ(journal.recorded(), 0u);
    EXPECT_TRUE(events.empty());
  }
  journal.set_capacity(obs::TraceJournal::kDefaultCapacity);
}

TEST(TraceJournalTest, ConcurrentWritersNeverLoseOrDuplicateCounts) {
  TracingScope tracing;
  auto& journal = obs::TraceJournal::global();
  journal.set_capacity(64);  // force eviction under contention

  constexpr int kThreads = 8;
  constexpr int kIters = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kIters; ++i) {
        const obs::EventSpan span("hammer");
        obs::record_event("hammer_wait", obs::EventKind::kQueueWait,
                          static_cast<double>(i), static_cast<double>(i + t),
                          span.context());
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto events = journal.snapshot();
  if constexpr (obs::kCompiledIn) {
    const std::uint64_t written = 2ull * kThreads * kIters;
    EXPECT_EQ(journal.recorded(), written);
    EXPECT_EQ(journal.dropped(), written - events.size());
    EXPECT_LE(events.size(),
              64u * obs::TraceJournal::kShards);
    EXPECT_FALSE(events.empty());
  } else {
    EXPECT_EQ(journal.recorded(), 0u);
    EXPECT_TRUE(events.empty());
  }
  journal.set_capacity(obs::TraceJournal::kDefaultCapacity);
}

// ---------- multi-node export + merge-obs ----------

TEST(TraceJournalTest, MergeObsFoldsNodeExportsToSumOfParts) {
  if constexpr (!obs::kCompiledIn) {
    GTEST_SKIP() << "obs compiled out: nodes export nothing";
  }
  TempDir dir("dockmine_trace_merge_obs");
  obs::reset_all();
  obs::set_enabled(true);

  core::MultiNodeOptions options;
  options.base = small_options(20170530);
  options.base.shard.shards = 4;
  options.nodes = 3;
  options.export_root = (dir.path / "shards").string();
  options.obs_export_dir = (dir.path / "obs").string();
  auto run = core::run_multi_node(options);
  obs::set_enabled(false);
  ASSERT_TRUE(run.ok()) << run.error().message();
  ASSERT_EQ(run.value().obs_export_files.size(), 3u);

  // Independently sum a few series straight out of the per-node JSON, then
  // check the library merge agrees: the fold is sum-of-parts, not lossy.
  std::uint64_t layers_sum = 0;
  std::uint64_t hist_count_sum = 0;
  for (const auto& file : run.value().obs_export_files) {
    std::ifstream in(file);
    ASSERT_TRUE(in.is_open()) << file;
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto parsed = json::parse(buffer.str());
    ASSERT_TRUE(parsed.ok()) << file;
    const json::Value& root = parsed.value();
    layers_sum += static_cast<std::uint64_t>(
        root["counters"]["dockmine_download_layers_total"].as_int());
    if (root["histograms"].contains("dockmine_download_layer_bytes")) {
      hist_count_sum += static_cast<std::uint64_t>(
          root["histograms"]["dockmine_download_layer_bytes"]["count"]
              .as_int());
    }
  }
  EXPECT_GT(layers_sum, 0u);

  auto merged = obs::merge_obs_exports(run.value().obs_export_files);
  ASSERT_TRUE(merged.ok()) << merged.error().message();
  const auto& result = merged.value();
  ASSERT_EQ(result.nodes.size(), 3u);

  std::uint64_t merged_layers = 0;
  for (const auto& [name, value] : result.merged.metrics.counters) {
    if (name == "dockmine_download_layers_total") merged_layers = value;
  }
  EXPECT_EQ(merged_layers, layers_sum);
  for (const auto& hist : result.merged.metrics.histograms) {
    if (hist.name == "dockmine_download_layer_bytes") {
      EXPECT_EQ(hist.count, hist_count_sum);
    }
  }

  // Straggler deltas: relative to the fastest node, so the minimum is 0 and
  // every delta is consistent with its wall time.
  double min_delta = result.nodes[0].straggler_delta_ms;
  double min_wall = result.nodes[0].pipeline_wall_ms;
  for (const auto& node : result.nodes) {
    EXPECT_GT(node.pipeline_wall_ms, 0.0) << node.source;
    EXPECT_GE(node.straggler_delta_ms, 0.0) << node.source;
    min_delta = std::min(min_delta, node.straggler_delta_ms);
    min_wall = std::min(min_wall, node.pipeline_wall_ms);
  }
  EXPECT_DOUBLE_EQ(min_delta, 0.0);
  for (const auto& node : result.nodes) {
    EXPECT_DOUBLE_EQ(node.straggler_delta_ms,
                     node.pipeline_wall_ms - min_wall);
  }
  obs::reset_all();
}

// ---------- heartbeat ----------

TEST(TraceJournalTest, HeartbeatEmitsParseableJsonl) {
  TempDir dir("dockmine_trace_heartbeat");
  const std::string path = (dir.path / "heartbeat.jsonl").string();
  obs::reset_all();
  obs::set_enabled(true);
  obs::Registry::global().counter("test_heartbeat_ticks").add(5);

  obs::HeartbeatOptions options;
  options.interval_ms = 10;
  options.path = path;
  const bool started = obs::start_heartbeat(options);
  if constexpr (!obs::kCompiledIn) {
    EXPECT_FALSE(started);
    obs::set_enabled(false);
    return;
  }
  ASSERT_TRUE(started);
  EXPECT_TRUE(obs::heartbeat_running());
  EXPECT_FALSE(obs::start_heartbeat(options));  // one emitter per process
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  obs::stop_heartbeat();
  EXPECT_FALSE(obs::heartbeat_running());
  obs::set_enabled(false);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    auto parsed = json::parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    const json::Value& beat = parsed.value();
    EXPECT_TRUE(beat.contains("ts_ms"));
    EXPECT_TRUE(beat.contains("node"));
    EXPECT_TRUE(beat.contains("counters"));
    EXPECT_TRUE(beat.contains("journal"));
    EXPECT_EQ(beat["counters"]["test_heartbeat_ticks"].as_int(), 5);
    EXPECT_EQ(beat["journal"]["dropped"].as_int(), 0);
  }
  EXPECT_GE(lines, 2u);  // the immediate beat plus at least one interval
  obs::reset_all();
}

// ---------- metrics JSON wire round-trip ----------

TEST(TraceJournalTest, MetricsJsonRoundTripsThroughParseExactly) {
  obs::reset_all();
  auto tick = std::make_shared<std::atomic<double>>(0.0);
  obs::set_clock([tick] { return tick->fetch_add(1.0); });
  obs::set_enabled(true);
  core::PipelineOptions options = small_options(5);
  options.mode = core::ExecutionMode::kSerial;
  auto run = core::run_end_to_end(options);
  obs::set_enabled(false);
  obs::reset_clock();
  ASSERT_TRUE(run.ok());

  // The exported document is a wire format: parse -> report_from_json ->
  // to_json reproduces the original bytes, histograms included.
  const std::string dumped = obs::to_json(obs::collect()).dump();
  auto parsed = json::parse(dumped);
  ASSERT_TRUE(parsed.ok());
  auto report = obs::report_from_json(parsed.value());
  ASSERT_TRUE(report.ok()) << report.error().message();
  EXPECT_EQ(obs::to_json(report.value()).dump(), dumped);
  if constexpr (obs::kCompiledIn) {
    EXPECT_NE(dumped.find("dockmine_download_layers_total"),
              std::string::npos);
    EXPECT_NE(dumped.find("pipeline/dedup"), std::string::npos);
  }
  obs::reset_all();
}

}  // namespace
}  // namespace dockmine
