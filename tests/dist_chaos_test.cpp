// Chaos tests for the coordinator + worker-process distribution layer
// (DESIGN.md §12). Each test forks real worker processes — fork happens
// between Coordinator::bind() (no threads yet) and Coordinator::run(), so
// the children never inherit a running thread — and then injects a
// failure: a SIGKILL mid-lease, a wedged worker that stops heartbeating,
// a forced duplicate completion, a rogue client spraying garbage frames.
//
// The oracle in every case is byte equality: the distributed fold's
// analysis report must match a serial single-process run of the same
// JobSpec exactly, no matter which workers died along the way.

#include <csignal>
#include <cstdint>
#include <string>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>

#include <gtest/gtest.h>

#include "dockmine/core/coordinator.h"
#include "dockmine/core/lease.h"
#include "dockmine/core/pipeline.h"
#include "dockmine/core/worker.h"
#include "dockmine/http/socket.h"
#include "dockmine/obs/obs.h"

namespace core = dockmine::core;
namespace fs = std::filesystem;

namespace {

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& name)
      : path(fs::temp_directory_path() / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

// Small but real: every lease still crawls, downloads, analyzes, and
// exports a sharded index. Shared by the serial baseline and every
// distributed run, so the byte-equality oracle is meaningful.
core::JobSpec test_spec() {
  core::JobSpec spec;
  spec.repositories = 40;
  spec.seed = 20170530;
  spec.light_calibration = true;
  spec.gzip_level = 1;
  spec.download_workers = 4;
  spec.analyze_workers = 2;
  spec.mode = core::ExecutionMode::kStaged;
  spec.shards = 4;
  return spec;
}

// Serial single-process report, computed once — the ground truth every
// chaos run must reproduce byte-for-byte.
const std::string& serial_baseline() {
  static const std::string cached = [] {
    TempDir dir("dockmine-dist-serial");
    auto result = core::run_end_to_end(
        core::lease_pipeline_options(test_spec(), 0, 1, dir.str()));
    EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().message());
    if (!result.ok()) return std::string();
    return core::analysis_report_json(result.value()).dump();
  }();
  return cached;
}

// Fork one worker process. Called before Coordinator::run(), while the
// parent is still single-threaded. The child never returns.
pid_t spawn_worker(std::uint16_t port, std::uint64_t id,
                   const std::string& scratch,
                   core::WorkerChaos chaos = {}) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  core::WorkerOptions options;
  options.port = port;
  options.worker_id = id;
  options.scratch_dir = scratch + "/worker-" + std::to_string(id);
  options.chaos = chaos;
  dockmine::obs::set_enabled(true);
  (void)core::run_worker(options);
  ::_exit(0);
}

void reap(const std::vector<pid_t>& children) {
  for (pid_t pid : children) {
    ::kill(pid, SIGKILL);  // no-op for the already-exited
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
}

core::CoordinatorOptions base_options(const TempDir& work) {
  core::CoordinatorOptions options;
  options.spec = test_spec();
  options.leases = 3;
  options.work_dir = work.str();
  options.straggler_factor = 0;  // chaos tests exercise one path at a time
  options.max_wall_ms = 120'000;
  return options;
}

TEST(DistChaos, DistributedMatchesSerialByteForByte) {
  ASSERT_FALSE(serial_baseline().empty());
  TempDir work("dockmine-dist-happy");
  core::Coordinator coordinator(base_options(work));
  ASSERT_TRUE(coordinator.bind().ok());

  std::vector<pid_t> children;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    children.push_back(spawn_worker(coordinator.port(), id, work.str()));
  }
  auto report = coordinator.run();
  reap(children);

  ASSERT_TRUE(report.ok()) << report.error().message();
  const core::DistStats& stats = report.value().stats;
  EXPECT_EQ(stats.workers_connected, 3u);
  EXPECT_GT(stats.heartbeats_received, 0u);
  EXPECT_EQ(stats.reassignments, 0u);
  EXPECT_EQ(stats.duplicate_mismatches, 0u);
  EXPECT_EQ(core::analysis_report_json(report.value().combined).dump(),
            serial_baseline());
}

TEST(DistChaos, SigkilledWorkerIsReassignedAndRunConverges) {
  ASSERT_FALSE(serial_baseline().empty());
  TempDir work("dockmine-dist-kill");
  core::Coordinator coordinator(base_options(work));
  ASSERT_TRUE(coordinator.bind().ok());

  std::vector<pid_t> children;
  core::WorkerChaos die;
  die.die_on_first_lease = true;  // one heartbeat, then raise(SIGKILL)
  children.push_back(spawn_worker(coordinator.port(), 1, work.str(), die));
  children.push_back(spawn_worker(coordinator.port(), 2, work.str()));
  children.push_back(spawn_worker(coordinator.port(), 3, work.str()));
  auto report = coordinator.run();
  reap(children);

  ASSERT_TRUE(report.ok()) << report.error().message();
  const core::DistStats& stats = report.value().stats;
  // SIGKILL is usually seen as a socket reset; a slow kernel may surface
  // it as a missed heartbeat deadline instead. Either way the lease must
  // have been reassigned.
  EXPECT_GE(stats.worker_disconnects + stats.missed_deadlines, 1u);
  EXPECT_GE(stats.reassignments, 1u);
  EXPECT_EQ(stats.duplicate_mismatches, 0u);
  EXPECT_EQ(core::analysis_report_json(report.value().combined).dump(),
            serial_baseline());
}

TEST(DistChaos, HangingWorkerMissesDeadlineAndRunConverges) {
  ASSERT_FALSE(serial_baseline().empty());
  TempDir work("dockmine-dist-hang");
  core::CoordinatorOptions options = base_options(work);
  options.heartbeat_deadline_ms = 800;
  core::Coordinator coordinator(options);
  ASSERT_TRUE(coordinator.bind().ok());

  std::vector<pid_t> children;
  core::WorkerChaos hang;
  hang.hang_on_first_lease = true;  // connection open, heartbeats stop
  hang.hang_ms = 3000;
  children.push_back(spawn_worker(coordinator.port(), 1, work.str(), hang));
  children.push_back(spawn_worker(coordinator.port(), 2, work.str()));
  children.push_back(spawn_worker(coordinator.port(), 3, work.str()));
  auto report = coordinator.run();
  reap(children);

  ASSERT_TRUE(report.ok()) << report.error().message();
  const core::DistStats& stats = report.value().stats;
  EXPECT_GE(stats.missed_deadlines, 1u);
  EXPECT_GE(stats.reassignments, 1u);
  EXPECT_EQ(stats.duplicate_mismatches, 0u);
  EXPECT_EQ(core::analysis_report_json(report.value().combined).dump(),
            serial_baseline());
}

TEST(DistChaos, DuplicateLeaseCompletionIsIdempotent) {
  ASSERT_FALSE(serial_baseline().empty());
  TempDir work("dockmine-dist-dup");
  core::CoordinatorOptions options = base_options(work);
  options.leases = 2;                   // 3 workers > 2 leases: one idle,
  options.duplicate_every_lease = true; // so a duplicate dispatches at once
  options.heartbeat_deadline_ms = 8000; // also bounds the duplicate drain
  core::Coordinator coordinator(options);
  ASSERT_TRUE(coordinator.bind().ok());

  std::vector<pid_t> children;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    children.push_back(spawn_worker(coordinator.port(), id, work.str()));
  }
  auto report = coordinator.run();
  reap(children);

  ASSERT_TRUE(report.ok()) << report.error().message();
  const core::DistStats& stats = report.value().stats;
  EXPECT_GE(stats.straggler_redispatches, 1u);
  // The idempotency proof: at least one lease finished twice, the second
  // result's content digest matched the first, and the fold discarded it
  // without disturbing the byte-identical report.
  EXPECT_GE(stats.duplicate_completions, 1u);
  EXPECT_EQ(stats.duplicate_mismatches, 0u);
  EXPECT_EQ(core::analysis_report_json(report.value().combined).dump(),
            serial_baseline());
}

TEST(DistChaos, GarbageClientPoisonsOnlyItsOwnConnection) {
  ASSERT_FALSE(serial_baseline().empty());
  TempDir work("dockmine-dist-rogue");
  core::Coordinator coordinator(base_options(work));
  ASSERT_TRUE(coordinator.bind().ok());

  std::vector<pid_t> children;
  children.push_back(spawn_worker(coordinator.port(), 1, work.str()));
  children.push_back(spawn_worker(coordinator.port(), 2, work.str()));
  children.push_back(spawn_worker(coordinator.port(), 3, work.str()));

  // A rogue connection sprays non-frame bytes. The coordinator must count
  // one poisoned stream, drop that connection, and converge regardless —
  // garbage can cost nothing but the connection that sent it.
  auto rogue = dockmine::http::Socket::connect_loopback(coordinator.port());
  ASSERT_TRUE(rogue.ok()) << rogue.error().message();
  ASSERT_TRUE(rogue.value()
                  .write_all("XXXX\x07garbage garbage garbage garbage")
                  .ok());

  auto report = coordinator.run();
  reap(children);

  ASSERT_TRUE(report.ok()) << report.error().message();
  const core::DistStats& stats = report.value().stats;
  EXPECT_GE(stats.malformed_frames, 1u);
  EXPECT_EQ(stats.duplicate_mismatches, 0u);
  EXPECT_EQ(core::analysis_report_json(report.value().combined).dump(),
            serial_baseline());
}

}  // namespace
