#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <unordered_map>

#include "dockmine/util/bytes.h"
#include "dockmine/util/error.h"
#include "dockmine/util/flat_map.h"
#include "dockmine/util/rng.h"
#include "dockmine/util/thread_pool.h"

namespace dockmine::util {
namespace {

// ---------- Result / Error ----------

Result<int> parse_positive(int x) {
  if (x <= 0) return invalid_argument("not positive");
  return x;
}

TEST(ErrorTest, ResultHoldsValueOrError) {
  auto ok = parse_positive(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);

  auto bad = parse_positive(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(bad.error().to_string(), "invalid_argument: not positive");
}

TEST(ErrorTest, ValueOrFallsBack) {
  EXPECT_EQ(parse_positive(3).value_or(9), 3);
  EXPECT_EQ(parse_positive(-3).value_or(9), 9);
}

TEST(ErrorTest, StatusDefaultsToSuccess) {
  Status status;
  EXPECT_TRUE(status.ok());
  Status failed = not_found("x");
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code(), ErrorCode::kNotFound);
}

TEST(ErrorTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(to_string(static_cast<ErrorCode>(c)), "unknown");
  }
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST(RngTest, UniformCoversSmallRangeEvenly) {
  Rng rng(11);
  int counts[8] = {};
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 8, kDraws / 8 * 0.1);
  }
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0, sq = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double z = rng.normal();
    sum += z;
    sq += z * z;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.fork(1);
  Rng parent2(99);
  Rng child2 = parent2.fork(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child(), child2());
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

// ---------- bytes ----------

TEST(BytesTest, FormatsHumanUnits) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(999), "999 B");
  EXPECT_EQ(format_bytes(4000000), "4.00 MB");
  EXPECT_EQ(format_bytes(47'000'000'000'000ULL), "47.0 TB");
}

TEST(BytesTest, ParsesSuffixes) {
  EXPECT_EQ(parse_bytes("0").value(), 0u);
  EXPECT_EQ(parse_bytes("4MB").value(), 4'000'000u);
  EXPECT_EQ(parse_bytes("1.5 GB").value(), 1'500'000'000u);
  EXPECT_EQ(parse_bytes("1 KiB").value(), 1024u);
  EXPECT_EQ(parse_bytes("2MiB").value(), 2097152u);
  EXPECT_FALSE(parse_bytes("abc").ok());
  EXPECT_FALSE(parse_bytes("1 XB").ok());
}

TEST(BytesTest, FormatCountGroupsThousands) {
  EXPECT_EQ(format_count(5), "5");
  EXPECT_EQ(format_count(1241), "1,241");
  EXPECT_EQ(format_count(5278465130ULL), "5,278,465,130");
}

TEST(BytesTest, FormatPercent) {
  EXPECT_EQ(format_percent(0.032), "3.2%");
  EXPECT_EQ(format_percent(0.8569, 2), "85.69%");
}

// ---------- FlatMap64 ----------

TEST(FlatMapTest, InsertFindGrow) {
  FlatMap64<int> map(4);
  for (std::uint64_t k = 1; k <= 1000; ++k) map[k] = static_cast<int>(k * 3);
  EXPECT_EQ(map.size(), 1000u);
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    const int* v = map.find(k);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, static_cast<int>(k * 3));
  }
  EXPECT_EQ(map.find(5000), nullptr);
}

TEST(FlatMapTest, MatchesUnorderedMapUnderRandomWorkload) {
  FlatMap64<std::uint64_t> flat;
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  Rng rng(77);
  for (int i = 0; i < 20000; ++i) {
    // Small key space forces plenty of updates to existing keys.
    const std::uint64_t key = 1 + rng.uniform(4096);
    flat[key] += 1;
    reference[key] += 1;
  }
  EXPECT_EQ(flat.size(), reference.size());
  std::uint64_t checked = 0;
  flat.for_each([&](std::uint64_t key, const std::uint64_t& value) {
    ASSERT_EQ(reference.at(key), value);
    ++checked;
  });
  EXPECT_EQ(checked, reference.size());
}

TEST(FlatMapTest, ClearResets) {
  FlatMap64<int> map;
  map[1] = 5;
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(1), nullptr);
}

// ---------- BoundedQueue / ThreadPool ----------

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> queue(16);
  for (int i = 0; i < 10; ++i) queue.push(i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(queue.pop().value(), i);
}

TEST(BoundedQueueTest, CloseDrainsThenEmpty) {
  BoundedQueue<int> queue(16);
  queue.push(1);
  queue.push(2);
  queue.close();
  EXPECT_FALSE(queue.push(3));
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.pop().value(), 2);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedQueueTest, BlocksProducerWhenFull) {
  BoundedQueue<int> queue(2);
  queue.push(1);
  queue.push(2);
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    queue.push(3);
    third_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());
  queue.pop();
  producer.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 500; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
    pool.shutdown();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(), 7,
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 5, 5, 1, [](std::size_t) { FAIL(); });
}

}  // namespace
}  // namespace dockmine::util
