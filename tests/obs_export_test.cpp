// Golden-export suite for dockmine::obs: the JSON export parses back with
// dm_json and carries the recorded values; the Prometheus text export is
// line-parseable with monotone cumulative buckets; and both formats are
// byte-stable — across repeated snapshots and across a reset-and-replay of
// the same workload on the same virtual clock.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dockmine/json/json.h"
#include "dockmine/obs/export.h"
#include "dockmine/obs/obs.h"
#include "dockmine/obs/span.h"

namespace dockmine {
namespace {

/// The reference workload every test replays: a few counters (one with a
/// baked-in label), a gauge, a histogram spanning zero/low/high buckets,
/// and a small span tree on the injected clock.
void replay_workload() {
  obs::reset_all();
  auto tick = std::make_shared<std::atomic<double>>(0.0);
  obs::set_clock([tick] { return tick->fetch_add(1.0); });
  obs::set_enabled(true);

  auto& reg = obs::Registry::global();
  reg.counter("test_export_requests_total").add(42);
  reg.counter("test_export_errors_total{code=\"reset\"}").add(3);
  reg.counter("test_export_errors_total{code=\"timeout\"}").add(1);
  reg.gauge("test_export_inflight").set(-7);
  auto& hist = reg.histogram("test_export_latency_ms");
  hist.observe(0.25);  // zero bucket
  hist.observe(1.0);
  hist.observe(3.0);
  hist.observe(1024.0);
  hist.observe(1500.0, /*weight=*/2);

  auto& tracer = obs::Tracer::global();
  {
    auto pipeline = tracer.span("pipeline");
    auto download = tracer.span("download");
    tracer.record("untar", 5.0, 2.0, 3);
  }

  obs::set_enabled(false);
  obs::reset_clock();
}

TEST(ObsExportTest, JsonRoundTripsThroughParser) {
  replay_workload();
  const std::string dumped = obs::to_json(obs::collect()).dump();

  auto parsed = json::parse(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const json::Value& root = parsed.value();
  ASSERT_TRUE(root.contains("counters"));
  ASSERT_TRUE(root.contains("gauges"));
  ASSERT_TRUE(root.contains("histograms"));
  ASSERT_TRUE(root.contains("spans"));
  ASSERT_TRUE(root["spans"].is_array());

  if constexpr (obs::kCompiledIn) {
    EXPECT_EQ(root["counters"]["test_export_requests_total"].as_int(), 42);
    EXPECT_EQ(
        root["counters"]["test_export_errors_total{code=\"reset\"}"].as_int(),
        3);
    EXPECT_EQ(root["gauges"]["test_export_inflight"].as_int(), -7);

    const json::Value& latency = root["histograms"]["test_export_latency_ms"];
    ASSERT_TRUE(latency.is_object());
    EXPECT_EQ(latency["count"].as_int(), 6);
    EXPECT_DOUBLE_EQ(latency["sum"].as_double(),
                     0.25 + 1.0 + 3.0 + 1024.0 + 2 * 1500.0);
    EXPECT_GT(latency["buckets"].size(), 0u);

    const json::Value& spans = root["spans"];
    ASSERT_EQ(spans.size(), 3u);  // pipeline, download, download/untar
    const json::Value& untar = spans.at(2);
    EXPECT_EQ(untar["path"].as_string(), "pipeline/download/untar");
    EXPECT_EQ(untar["count"].as_int(), 3);
    EXPECT_DOUBLE_EQ(untar["wall_ms"].as_double(), 5.0);
  }
}

TEST(ObsExportTest, PrometheusTextParsesWithMonotoneBuckets) {
  replay_workload();
  const std::string text = obs::to_prometheus(obs::collect());
  ASSERT_FALSE(text.empty());

  // Every line is either "# TYPE <name> <kind>" or "<name>[{labels}] <num>".
  std::istringstream in(text);
  std::string line;
  bool saw_counter_type = false;
  bool saw_histogram_type = false;
  std::uint64_t previous_bucket = 0;
  std::uint64_t inf_bucket = 0, count_row = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const auto space = rest.find(' ');
      ASSERT_NE(space, std::string::npos) << line;
      const std::string kind = rest.substr(space + 1);
      EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
          << line;
      // TYPE names never carry a label suffix.
      EXPECT_EQ(rest.find('{'), std::string::npos) << line;
      if (kind == "counter") saw_counter_type = true;
      if (kind == "histogram") saw_histogram_type = true;
      continue;
    }
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    std::size_t consumed = 0;
    EXPECT_NO_THROW({
      (void)std::stod(value, &consumed);
    }) << line;
    EXPECT_EQ(consumed, value.size()) << line;

    if (name.rfind("test_export_latency_ms_bucket", 0) == 0) {
      const std::uint64_t cumulative = std::stoull(value);
      EXPECT_GE(cumulative, previous_bucket) << line;  // monotone
      previous_bucket = cumulative;
      if (name.find("le=\"+Inf\"") != std::string::npos) {
        inf_bucket = cumulative;
      }
    }
    if (name == "test_export_latency_ms_count") count_row = std::stoull(value);
  }

  if constexpr (obs::kCompiledIn) {
    EXPECT_TRUE(saw_counter_type);
    EXPECT_TRUE(saw_histogram_type);
    EXPECT_EQ(inf_bucket, 6u);   // +Inf covers everything, zero bucket too
    EXPECT_EQ(count_row, 6u);    // _count == +Inf bucket
    EXPECT_NE(text.find("test_export_errors_total{code=\"reset\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("dockmine_span_wall_ms{path=\"pipeline/download/"
                        "untar\"} 5"),
              std::string::npos);
  }
}

TEST(ObsExportTest, PrometheusEscapesHostileSpanPaths) {
  // Span paths are emitted as a label value; a path carrying the three
  // characters Prometheus label syntax reserves (backslash, double quote,
  // newline) must come out escaped, not as broken exposition-format lines.
  obs::reset_all();
  obs::set_enabled(true);
  obs::Tracer::global().record_at("evil\"quote\\slash\nline", 1.0, 0.5, 1);
  obs::set_enabled(false);
  const std::string text = obs::to_prometheus(obs::collect());

  if constexpr (obs::kCompiledIn) {
    EXPECT_NE(text.find("path=\"evil\\\"quote\\\\slash\\nline\""),
              std::string::npos)
        << text;
    // No raw newline survives inside a label value: every emitted line is
    // still "name{labels} value" with a parseable numeric tail.
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      ASSERT_FALSE(line.empty());
      if (line.rfind("# TYPE ", 0) == 0) continue;
      const auto space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos) << line;
      std::size_t consumed = 0;
      EXPECT_NO_THROW({ (void)std::stod(line.substr(space + 1), &consumed); })
          << line;
      EXPECT_EQ(consumed, line.size() - space - 1) << line;
    }
  } else {
    EXPECT_EQ(text.find("evil"), std::string::npos);
  }
  obs::reset_all();
}

TEST(ObsExportTest, ExportsAreStableAcrossSnapshotAndReplay) {
  replay_workload();
  const std::string json_a = obs::to_json(obs::collect()).dump();
  const std::string prom_a = obs::to_prometheus(obs::collect());
  // Snapshot again without touching anything: identical bytes.
  EXPECT_EQ(obs::to_json(obs::collect()).dump(), json_a);
  EXPECT_EQ(obs::to_prometheus(obs::collect()), prom_a);

  // Reset and replay the same workload on a fresh virtual clock: the
  // exports must reproduce byte-for-byte.
  replay_workload();
  EXPECT_EQ(obs::to_json(obs::collect()).dump(), json_a);
  EXPECT_EQ(obs::to_prometheus(obs::collect()), prom_a);
}

}  // namespace
}  // namespace dockmine
