#include <gtest/gtest.h>

#include "dockmine/json/json.h"

namespace dockmine::json {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(parse("null").value().is_null());
  EXPECT_EQ(parse("true").value().as_bool(), true);
  EXPECT_EQ(parse("false").value().as_bool(), false);
  EXPECT_EQ(parse("42").value().as_int(), 42);
  EXPECT_EQ(parse("-7").value().as_int(), -7);
  EXPECT_DOUBLE_EQ(parse("3.5").value().as_double(), 3.5);
  EXPECT_DOUBLE_EQ(parse("1e3").value().as_double(), 1000.0);
  EXPECT_EQ(parse("\"hi\"").value().as_string(), "hi");
}

TEST(JsonParseTest, IntegerVsDoubleDistinction) {
  EXPECT_TRUE(parse("5278465130").value().is_int());
  EXPECT_EQ(parse("5278465130").value().as_uint(), 5278465130ULL);
  EXPECT_FALSE(parse("5.0").value().is_int());
  // Overflowing integers degrade to double instead of failing.
  EXPECT_TRUE(parse("99999999999999999999999").value().is_number());
}

TEST(JsonParseTest, NestedStructure) {
  auto doc = parse(R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
  ASSERT_TRUE(doc.ok());
  const Value& root = doc.value();
  EXPECT_EQ(root["a"].size(), 3u);
  EXPECT_EQ(root["a"].at(2)["b"].as_string(), "c");
  EXPECT_TRUE(root["d"]["e"].is_null());
  EXPECT_TRUE(root["missing"].is_null());
  EXPECT_TRUE(root["missing"]["deeper"].is_null());
  EXPECT_TRUE(root.contains("a"));
  EXPECT_FALSE(root.contains("z"));
}

TEST(JsonParseTest, StringEscapes) {
  auto doc = parse(R"("a\"b\\c\/d\n\tAé")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().as_string(), "a\"b\\c/d\n\tA\xc3\xa9");
}

TEST(JsonParseTest, RejectsMalformed) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "01x", "\"unterminated",
        "{\"a\":1}extra", "[1 2]", "{\"a\" 1}", "\"bad\\q\"", "nan",
        "\"raw\ncontrol\""}) {
    EXPECT_FALSE(parse(bad).ok()) << bad;
  }
}

TEST(JsonParseTest, DeepNestingIsBounded) {
  std::string deep(500, '[');
  deep += std::string(500, ']');
  EXPECT_FALSE(parse(deep).ok());
}

TEST(JsonDumpTest, CompactStableOrder) {
  Value obj = Value::object();
  obj.set("z", 1);
  obj.set("a", Value::array());
  obj.set("z", 2);  // replace, keeps position
  EXPECT_EQ(obj.dump(), R"({"z":2,"a":[]})");
}

TEST(JsonDumpTest, RoundTripsThroughParse) {
  const std::string text =
      R"({"schemaVersion":2,"layers":[{"size":123,"digest":"sha256:ab"},)"
      R"({"size":0,"digest":""}],"flag":true,"ratio":2.6,"none":null})";
  auto doc = parse(text);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().dump(), text);
}

TEST(JsonDumpTest, EscapesControlCharacters) {
  Value v(std::string("a\x01""b\n"));
  EXPECT_EQ(v.dump(), "\"a\\u0001b\\n\"");
}

TEST(JsonDumpTest, PrettyPrintsIndented) {
  Value obj = Value::object();
  obj.set("a", 1);
  const std::string pretty = obj.dump_pretty();
  EXPECT_NE(pretty.find("{\n  \"a\": 1\n}"), std::string::npos);
}

TEST(JsonDumpTest, NonFiniteBecomesNull) {
  Value v(std::numeric_limits<double>::infinity());
  EXPECT_EQ(v.dump(), "null");
}

TEST(JsonValueTest, PushBackBuildsArray) {
  Value arr = Value::array();
  arr.push_back(1);
  arr.push_back("two");
  EXPECT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr.at(1).as_string(), "two");
}

}  // namespace
}  // namespace dockmine::json
