// Golden-figure regression suite: pins the paper's headline numbers as
// computed at the default seed, so calibration or analyzer drift fails
// loudly instead of silently skewing every downstream figure.
//
//   Fig 3  — layer sizes: median compressed layer < 4 MB
//   Fig 10 — layers per image: median 8
//   Fig 23 — layer sharing: logical/physical ~= 1.8x
//   Fig 25 — file dedup: 31.5x count / 6.9x capacity *shape* (both ratios
//            well above 1, count >> capacity, and growing with scale
//            toward the paper's full-crawl values)
//
// Everything here is a deterministic function of (calibration, scale,
// seed), so the pins use tight tolerances: a failure means the dataset
// changed, not that the test got unlucky.
#include <gtest/gtest.h>

#include "dockmine/core/dataset.h"

namespace dockmine::core {
namespace {

class GoldenFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Half the paper-calibrated bench scale: large enough that the
    // scale-dependent headline numbers (median layers, sharing ratio)
    // match the paper, small enough for the tier-1 budget.
    synth::HubModel hub(synth::Calibration::paper(),
                        synth::Scale{1000, 20170530});
    DatasetOptions options;
    options.workers = 8;
    stats = new DatasetStats(DatasetStats::compute(hub, options));

    synth::HubModel small_hub(synth::Calibration::paper(),
                              synth::Scale::test());
    small_stats = new DatasetStats(DatasetStats::compute(small_hub, options));
  }
  static void TearDownTestSuite() {
    delete stats;
    stats = nullptr;
    delete small_stats;
    small_stats = nullptr;
  }

  static DatasetStats* stats;        // scale 1000, default seed
  static DatasetStats* small_stats;  // scale 300, default seed
};

DatasetStats* GoldenFixture::stats = nullptr;
DatasetStats* GoldenFixture::small_stats = nullptr;

TEST_F(GoldenFixture, Fig3MedianCompressedLayerUnder4MB) {
  // Paper: "the median layer size is smaller than 4MB".
  EXPECT_LT(stats->layer_cls.median(), 4e6);
  // Golden pin at the default seed.
  EXPECT_NEAR(stats->layer_cls.median(), 1037449.0, 1.0);
  EXPECT_NEAR(stats->layer_cls.fraction_at_or_below(4e6), 0.7399, 0.005);
}

TEST_F(GoldenFixture, Fig10MedianLayersPerImageIsEight) {
  // Paper: "the median number of layers per image is 8".
  EXPECT_DOUBLE_EQ(stats->image_layers.median(), 8.0);
  EXPECT_GE(stats->image_layers.min(), 1.0);
}

TEST_F(GoldenFixture, Fig23LayerSharingNearOnePointEight) {
  // Paper Fig. 23 / §V-A: layers are shared ~1.8x across images.
  const double ratio = stats->sharing.sharing_ratio();
  EXPECT_GT(ratio, 1.7);
  EXPECT_LT(ratio, 1.9);
  EXPECT_NEAR(ratio, 1.7811, 0.005);
}

TEST_F(GoldenFixture, Fig25DedupRatioShape) {
  // Paper full crawl: 31.5x file-count dedup, 6.9x capacity dedup. Both
  // ratios grow with crawl size; at reduced scale the *shape* must hold:
  // count dedup well above capacity dedup, both well above 1.
  const dedup::DedupTotals totals = stats->file_index->totals();
  EXPECT_GT(totals.count_ratio(), totals.capacity_ratio());
  EXPECT_GT(totals.capacity_ratio(), 2.0);
  EXPECT_NEAR(totals.count_ratio(), 6.158, 0.02);
  EXPECT_NEAR(totals.capacity_ratio(), 2.7214, 0.02);

  // ...and the ratios strictly grow toward the paper's numbers as the
  // crawl widens (300 -> 1000 repositories).
  const dedup::DedupTotals small = small_stats->file_index->totals();
  EXPECT_GT(totals.count_ratio(), small.count_ratio());
  EXPECT_GT(totals.capacity_ratio(), small.capacity_ratio());
}

}  // namespace
}  // namespace dockmine::core
