#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "dockmine/registry/manifest.h"
#include "dockmine/synth/materialize.h"
#include "dockmine/synth/versions.h"

namespace dockmine::synth {
namespace {

class VersionsFixture : public ::testing::Test {
 protected:
  HubModel hub{Calibration::paper(), Scale{200, 99}};
};

TEST_F(VersionsFixture, ChainsEndWithLatestAndShareBase) {
  VersionModel::Options options;
  options.extra_tags_mean = 3.0;
  const VersionModel model(hub, options);
  int checked = 0;
  for (std::size_t repo = 0; repo < hub.repositories().size(); ++repo) {
    const auto chain = model.versions_for(repo);
    if (hub.repositories()[repo].image_index < 0) {
      EXPECT_TRUE(chain.empty());
      continue;
    }
    ASSERT_FALSE(chain.empty());
    EXPECT_EQ(chain.back().tag, "latest");
    const auto& latest = chain.back().image.layers;
    for (std::size_t v = 0; v + 1 < chain.size(); ++v) {
      const auto& layers = chain[v].image.layers;
      EXPECT_EQ(layers.size(), latest.size());
      // Shares everything below the churn window.
      const std::size_t churn = std::min<std::size_t>(2, latest.size());
      for (std::size_t k = 0; k < latest.size() - churn; ++k) {
        EXPECT_EQ(layers[k], latest[k]);
      }
      // Churned layers are version-specific (never in latest).
      std::set<LayerId> latest_set(latest.begin(), latest.end());
      for (std::size_t k = latest.size() - churn; k < layers.size(); ++k) {
        EXPECT_FALSE(latest_set.count(layers[k]));
      }
    }
    if (++checked > 50) break;
  }
  EXPECT_GT(checked, 20);
}

TEST_F(VersionsFixture, DeterministicChains) {
  const VersionModel model(hub);
  for (std::size_t repo = 0; repo < 30; ++repo) {
    const auto a = model.versions_for(repo);
    const auto b = model.versions_for(repo);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].tag, b[i].tag);
      EXPECT_EQ(a[i].image.layers, b[i].image.layers);
    }
  }
}

TEST_F(VersionsFixture, MoreTagsMoreSharing) {
  VersionModel::Options few;
  few.extra_tags_mean = 1.0;
  VersionModel::Options many;
  many.extra_tags_mean = 6.0;
  const auto few_stats = VersionModel(hub, few).analyze();
  const auto many_stats = VersionModel(hub, many).analyze();
  EXPECT_GT(many_stats.tags, few_stats.tags);
  EXPECT_GT(many_stats.sharing_ratio(), few_stats.sharing_ratio());
  EXPECT_GE(few_stats.sharing_ratio(), 1.0);
  EXPECT_EQ(few_stats.repositories,
            static_cast<std::uint64_t>(
                std::count_if(hub.repositories().begin(),
                              hub.repositories().end(),
                              [](const RepoSpec& r) { return r.image_index >= 0; })));
}

TEST_F(VersionsFixture, ZeroMeanYieldsOnlyLatest) {
  VersionModel::Options options;
  options.extra_tags_mean = 0.0;
  const VersionModel model(hub, options);
  const auto stats = model.analyze();
  EXPECT_EQ(stats.tags, stats.repositories);
  EXPECT_NEAR(stats.sharing_ratio(),
              1.0 + 0.0,  // only latest's intra-hub sharing remains
              1.0);
}

TEST(VersionPublishTest, TagChainsArePullable) {
  const HubModel hub(Calibration::light(), Scale{40, 3});
  VersionModel::Options options;
  options.extra_tags_mean = 2.0;
  const VersionModel versions(hub, options);
  registry::Service service;
  const Materializer materializer(hub, 1);
  // put_repository entries first (populate does both; here versions only).
  auto base = materializer.populate(service);
  ASSERT_TRUE(base.ok());
  auto pushed = materializer.populate_versions(service, versions);
  ASSERT_TRUE(pushed.ok());
  EXPECT_GT(pushed.value(), base.value());  // history adds tags

  // Every generated tag resolves and its layers are fetchable.
  int checked = 0;
  for (std::size_t repo = 0; repo < hub.repositories().size(); ++repo) {
    const auto& spec = hub.repositories()[repo];
    for (const TaggedImage& tagged : versions.versions_for(repo)) {
      auto body = service.get_manifest(spec.name, tagged.tag,
                                       /*authenticated=*/true);
      ASSERT_TRUE(body.ok()) << spec.name << ":" << tagged.tag;
      auto manifest = registry::manifest_from_json(body.value());
      ASSERT_TRUE(manifest.ok());
      EXPECT_EQ(manifest.value().layers.size(), tagged.image.layers.size());
      for (const auto& ref : manifest.value().layers) {
        EXPECT_TRUE(service.stat_blob(ref.digest).ok());
      }
      ++checked;
    }
    if (checked > 60) break;
  }
  EXPECT_GT(checked, 30);

  // Cross-version sharing is visible in the blob store: logical pushes
  // exceed physical bytes.
  const auto blob_stats = service.blob_stats();
  EXPECT_GT(blob_stats.dedup_ratio(), 1.2);
}

}  // namespace
}  // namespace dockmine::synth
