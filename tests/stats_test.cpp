#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "dockmine/stats/cdf.h"
#include "dockmine/stats/distributions.h"
#include "dockmine/stats/histogram.h"
#include "dockmine/stats/sampling.h"
#include "dockmine/stats/summary.h"

namespace dockmine::stats {
namespace {

// ---------- Summary ----------

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryTest, MergeMatchesSequential) {
  util::Rng rng(1);
  Summary whole, a, b;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.normal() * 3 + 10;
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(SummaryTest, MergeWithEmpty) {
  Summary a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

// ---------- Ecdf ----------

TEST(EcdfTest, QuantilesOfKnownSample) {
  Ecdf cdf({5, 1, 3, 2, 4});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 3.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 5.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 3.0);
}

TEST(EcdfTest, FractionAtOrBelowAndEqual) {
  Ecdf cdf({1, 1, 2, 3, 3, 3, 10});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1), 2.0 / 7);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(3), 6.0 / 7);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(100), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_equal(3), 3.0 / 7);
  EXPECT_DOUBLE_EQ(cdf.fraction_equal(5), 0.0);
}

TEST(EcdfTest, AddKeepsSorting) {
  Ecdf cdf;
  cdf.add(3);
  cdf.add(1);
  EXPECT_DOUBLE_EQ(cdf.median(), 2.0);
  cdf.add(2);
  EXPECT_DOUBLE_EQ(cdf.median(), 2.0);
}

TEST(EcdfTest, CurveIsMonotone) {
  util::Rng rng(2);
  Ecdf cdf;
  for (int i = 0; i < 1000; ++i) cdf.add(rng.uniform01());
  auto curve = cdf.curve(50);
  ASSERT_EQ(curve.size(), 50u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
}

// ---------- Histograms ----------

TEST(LinearHistogramTest, BucketsAndClamping) {
  LinearHistogram hist(0, 100, 10);
  hist.add(5);        // bucket 0
  hist.add(15);       // bucket 1
  hist.add(-3);       // clamped to bucket 0
  hist.add(1000);     // clamped to last bucket
  EXPECT_EQ(hist.bucket(0), 2u);
  EXPECT_EQ(hist.bucket(1), 1u);
  EXPECT_EQ(hist.bucket(9), 1u);
  EXPECT_EQ(hist.total(), 4u);
  EXPECT_DOUBLE_EQ(hist.bucket_lo(1), 10.0);
  EXPECT_DOUBLE_EQ(hist.bucket_hi(1), 20.0);
}

TEST(LinearHistogramTest, ModeBucket) {
  LinearHistogram hist(0, 10, 10);
  hist.add(3.5);
  hist.add(3.2, 5);
  hist.add(7.0);
  EXPECT_EQ(hist.mode_bucket(), 3u);
}

TEST(LinearHistogramTest, MergeAddsCounts) {
  LinearHistogram a(0, 10, 5), b(0, 10, 5);
  a.add(1);
  b.add(1);
  b.add(9);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.bucket(0), 2u);
  EXPECT_THROW(a.merge(LinearHistogram(0, 20, 5)), std::invalid_argument);
}

TEST(Log2HistogramTest, QuantileApproximatesWithin2x) {
  util::Rng rng(3);
  const LogNormal model(std::log(5000.0), 1.5);
  Log2Histogram hist;
  Ecdf exact;
  for (int i = 0; i < 40000; ++i) {
    const double x = model.sample(rng);
    hist.add(x);
    exact.add(x);
  }
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const double approx = hist.quantile(q);
    const double truth = exact.quantile(q);
    EXPECT_LT(approx / truth, 2.01) << "q=" << q;
    EXPECT_GT(approx / truth, 0.49) << "q=" << q;
  }
}

TEST(Log2HistogramTest, ZeroBucketAndFraction) {
  Log2Histogram hist;
  hist.add(0);
  hist.add(0.5);
  hist.add(100);
  EXPECT_EQ(hist.zero_count(), 2u);
  EXPECT_NEAR(hist.fraction_at_or_below(0.9), 2.0 / 3, 1e-9);
  EXPECT_NEAR(hist.fraction_at_or_below(1e9), 1.0, 1e-9);
}

// ---------- Distributions ----------

TEST(LogNormalTest, MedianAndP90MatchConstruction) {
  const LogNormal model = LogNormal::from_median_p90(4e6, 63e6);
  util::Rng rng(4);
  Ecdf cdf;
  for (int i = 0; i < 60000; ++i) cdf.add(model.sample(rng));
  EXPECT_NEAR(cdf.median() / 4e6, 1.0, 0.08);
  EXPECT_NEAR(cdf.quantile(0.9) / 63e6, 1.0, 0.10);
}

TEST(LogNormalTest, AnalyticQuantileMatchesEmpirical) {
  const LogNormal model(std::log(100.0), 0.8);
  util::Rng rng(5);
  Ecdf cdf;
  for (int i = 0; i < 60000; ++i) cdf.add(model.sample(rng));
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(model.quantile(q) / cdf.quantile(q), 1.0, 0.07) << q;
  }
}

TEST(ParetoTest, QuantileInvertsSampling) {
  const Pareto model(10.0, 1.5);
  util::Rng rng(6);
  Ecdf cdf;
  for (int i = 0; i < 60000; ++i) cdf.add(model.sample(rng));
  EXPECT_GE(cdf.min(), 10.0);
  EXPECT_NEAR(model.quantile(0.5) / cdf.median(), 1.0, 0.05);
  EXPECT_NEAR(model.quantile(0.9) / cdf.quantile(0.9), 1.0, 0.08);
}

TEST(ZipfTest, RanksWithinBoundsAndHeadHeavy) {
  const Zipf zipf(1000, 1.0);
  util::Rng rng(7);
  std::vector<int> counts(1001, 0);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t rank = zipf.sample(rng);
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, 1000u);
    ++counts[rank];
  }
  // P(1)/P(2) should be ~2 for s=1.
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[2], 2.0, 0.35);
  // Head (top 1%) carries far more than 1% of mass.
  int head = 0;
  for (int r = 1; r <= 10; ++r) head += counts[r];
  EXPECT_GT(head, 25000);
}

TEST(ZipfTest, SingleElementAlwaysRankOne) {
  const Zipf zipf(1, 1.2);
  util::Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 1u);
}

TEST(AliasTableTest, MatchesWeights) {
  const AliasTable table({1.0, 2.0, 3.0, 4.0});
  util::Rng rng(9);
  int counts[4] = {};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[table.sample(rng)];
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(counts[i], kDraws * (i + 1) / 10.0, kDraws * 0.01);
  }
}

TEST(AliasTableTest, ZeroWeightNeverDrawn) {
  const AliasTable table({0.0, 1.0, 0.0});
  util::Rng rng(10);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(table.sample(rng), 1u);
}

TEST(AliasTableTest, RejectsInvalidWeights) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasTable({-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable({0.0, 0.0}), std::invalid_argument);
}

TEST(BodyTailTest, TailFractionRoughlyHonored) {
  const BodyTail model(LogNormal(std::log(10.0), 0.1), Pareto(1e6, 1.0), 0.1);
  util::Rng rng(11);
  int tail = 0;
  for (int i = 0; i < 20000; ++i) {
    if (model.sample(rng) > 1000.0) ++tail;
  }
  EXPECT_NEAR(tail / 20000.0, 0.1, 0.01);
}

// ---------- sampling ----------

TEST(SamplingTest, SampleIndicesDistinctAndInRange) {
  util::Rng rng(12);
  const auto sample = sample_indices(1000, 100, rng);
  EXPECT_EQ(sample.size(), 100u);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 100u);
  for (auto v : sample) EXPECT_LT(v, 1000u);
}

TEST(SamplingTest, SampleAllWhenKGeN) {
  util::Rng rng(13);
  const auto sample = sample_indices(10, 20, rng);
  EXPECT_EQ(sample.size(), 10u);
}

TEST(SamplingTest, ReservoirKeepsCapacityAndIsRoughlyUniform) {
  constexpr int kRuns = 2000;
  int first_half = 0;
  for (int run = 0; run < kRuns; ++run) {
    Reservoir<int> reservoir(10, util::Rng(run));
    for (int i = 0; i < 100; ++i) reservoir.add(i);
    EXPECT_EQ(reservoir.items().size(), 10u);
    for (int v : reservoir.items()) first_half += (v < 50);
  }
  // Expect ~half the kept items from the first half of the stream.
  EXPECT_NEAR(first_half / (kRuns * 10.0), 0.5, 0.03);
}

TEST(SamplingTest, ShufflePermutes) {
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  util::Rng rng(14);
  shuffle(items, rng);
  std::vector<int> sorted = items;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
  EXPECT_FALSE(std::is_sorted(items.begin(), items.end()));
}

}  // namespace
}  // namespace dockmine::stats
