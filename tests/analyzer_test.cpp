#include <gtest/gtest.h>

#include <map>
#include <set>

#include "dockmine/analyzer/image_analyzer.h"
#include "dockmine/analyzer/layer_analyzer.h"
#include "dockmine/analyzer/pipeline.h"
#include "dockmine/compress/gzip.h"
#include "dockmine/registry/service.h"
#include "dockmine/synth/generator.h"
#include "dockmine/synth/materialize.h"
#include "dockmine/tar/writer.h"

namespace dockmine::analyzer {
namespace {

TEST(LayerAnalyzerTest, ProfilesHandcraftedTar) {
  tar::Writer writer;
  writer.add_directory("usr");
  writer.add_directory("usr/lib");
  writer.add_directory("usr/lib/python");
  writer.add_file("usr/lib/python/mod.py", "#!/usr/bin/env python\npass\n");
  writer.add_file("usr/lib/libz.so",
                  std::string("\x7f" "ELF\x02\x01\x01\x00"
                              "\x00\x00\x00\x00\x00\x00\x00\x00\x03\x00", 18) +
                      std::string(100, 'b'));
  writer.add_file("README", "plain text here\n");
  writer.add_symlink("usr/lib/alias", "libz.so");
  writer.add_whiteout("usr", "deleted.bin");

  std::map<std::string, filetype::Type> seen;
  FileVisitor visitor = [&](std::string_view path, const FileRecord& record) {
    seen[std::string(path)] = record.type;
  };
  const LayerAnalyzer analyzer;
  auto profile = analyzer.analyze_tar(writer.finish(), &visitor);
  ASSERT_TRUE(profile.ok());

  // Whiteouts and symlinks are not regular files.
  EXPECT_EQ(profile.value().file_count, 3u);
  EXPECT_EQ(profile.value().dir_count, 3u);
  EXPECT_EQ(profile.value().max_depth, 3u);
  EXPECT_EQ(profile.value().fls, 27u + 118u + 16u);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen.at("usr/lib/python/mod.py"), filetype::Type::kPythonScript);
  EXPECT_EQ(seen.at("usr/lib/libz.so"), filetype::Type::kElfSharedObject);
  EXPECT_EQ(seen.at("README"), filetype::Type::kAsciiText);
}

TEST(LayerAnalyzerTest, DirectoryMetadataMatchesPaperProfile) {
  // Paper §III-C: "directory metadata (for every directory in the layer):
  // directory name; directory depth; file count".
  tar::Writer writer;
  writer.add_directory("usr");
  writer.add_directory("usr/lib");
  writer.add_file("usr/lib/a.so", "xx");
  writer.add_file("usr/lib/b.so", "yy");
  writer.add_file("usr/top.txt", "top level text");
  writer.add_file("rootfile", "at the root");

  std::map<std::string, DirectoryRecord> dirs;
  DirectoryVisitor dir_visitor = [&](const DirectoryRecord& record) {
    dirs[record.path] = record;
  };
  const LayerAnalyzer analyzer;
  auto profile = analyzer.analyze_tar(writer.finish(), nullptr, &dir_visitor);
  ASSERT_TRUE(profile.ok());
  ASSERT_EQ(dirs.size(), 3u);  // usr, usr/lib, and the implicit root
  EXPECT_EQ(dirs.at("usr/lib").file_count, 2u);
  EXPECT_EQ(dirs.at("usr/lib").depth, 2u);
  EXPECT_EQ(dirs.at("usr").file_count, 1u);
  EXPECT_EQ(dirs.at("usr").depth, 1u);
  EXPECT_EQ(dirs.at(".").file_count, 1u);
}

TEST(LayerAnalyzerTest, EmptyTarHasImplicitRoot) {
  tar::Writer writer;
  const LayerAnalyzer analyzer;
  auto profile = analyzer.analyze_tar(writer.finish(), nullptr);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile.value().file_count, 0u);
  EXPECT_EQ(profile.value().dir_count, 1u);
  EXPECT_EQ(profile.value().max_depth, 1u);
  EXPECT_DOUBLE_EQ(profile.value().compression_ratio(), 0.0);
}

TEST(LayerAnalyzerTest, BlobPathSetsClsAndDigest) {
  tar::Writer writer;
  writer.add_file("f", std::string(5000, 'x'));
  auto blob = compress::gzip_compress(writer.finish());
  ASSERT_TRUE(blob.ok());
  const LayerAnalyzer analyzer;
  auto profile = analyzer.analyze_blob(blob.value(), nullptr);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile.value().cls, blob.value().size());
  EXPECT_EQ(profile.value().digest, digest::Digest::of(blob.value()));
  EXPECT_EQ(profile.value().fls, 5000u);
  EXPECT_GT(profile.value().compression_ratio(), 3.0);
}

TEST(LayerAnalyzerTest, RejectsCorruptInputs) {
  const LayerAnalyzer analyzer;
  EXPECT_FALSE(analyzer.analyze_blob("not gzip at all", nullptr).ok());
  std::string garbage_tar(512, 'Z');
  auto blob = compress::gzip_compress(garbage_tar);
  ASSERT_TRUE(blob.ok());
  EXPECT_FALSE(analyzer.analyze_blob(blob.value(), nullptr).ok());
}

TEST(ImageProfileTest, AccumulateSumsLayers) {
  LayerProfile a;
  a.fls = 100;
  a.cls = 40;
  a.file_count = 3;
  a.dir_count = 2;
  LayerProfile b;
  b.fls = 50;
  b.cls = 30;
  b.file_count = 1;
  b.dir_count = 1;
  ImageProfile image;
  image.accumulate(a);
  image.accumulate(b);
  EXPECT_EQ(image.fis, 150u);
  EXPECT_EQ(image.cis, 70u);
  EXPECT_EQ(image.file_count, 4u);
  EXPECT_EQ(image.dir_count, 3u);
  EXPECT_EQ(image.layer_count, 2u);
  EXPECT_NEAR(image.compression_ratio(), 150.0 / 70.0, 1e-12);
}

TEST(ProfileStoreTest, PutFindAndMissingLayer) {
  ProfileStore store;
  LayerProfile p;
  p.digest = digest::Digest::of("layer");
  p.fls = 9;
  store.put(p);
  EXPECT_TRUE(store.contains(p.digest));
  EXPECT_EQ(store.find(p.digest)->fls, 9u);

  registry::Manifest manifest;
  manifest.repository = "a/b";
  manifest.layers.push_back({digest::Digest::of("other"), 1});
  auto image = build_image_profile(manifest, store);
  ASSERT_FALSE(image.ok());
  EXPECT_EQ(image.error().code(), util::ErrorCode::kNotFound);
}

// ---- The cornerstone equivalence property: bytes-mode analysis of a
// materialized layer must reproduce the metadata-mode spec exactly. ----

TEST(EquivalenceTest, MaterializedLayersMatchModelSpecs) {
  const synth::HubModel hub(synth::Calibration::paper(), synth::Scale{120, 31});
  const synth::Materializer materializer(hub, /*gzip_level=*/1);
  const LayerAnalyzer analyzer;

  int checked = 0;
  for (synth::LayerId id : hub.unique_layers()) {
    const synth::LayerSpec spec = hub.layer_spec(id);
    if (spec.file_count > 4000) continue;  // keep runtime modest
    // Model-side expectations.
    std::vector<std::pair<std::uint64_t, filetype::Type>> model_files;
    hub.layers().for_each_file(spec, [&](const synth::FileInstance& f) {
      model_files.emplace_back(f.size, f.type);
    });

    // Bytes-side measurement.
    std::vector<std::pair<std::uint64_t, filetype::Type>> measured_files;
    FileVisitor visitor = [&](std::string_view, const FileRecord& record) {
      measured_files.emplace_back(record.size, record.type);
    };
    auto profile = analyzer.analyze_tar(materializer.layer_tar(spec), &visitor);
    ASSERT_TRUE(profile.ok());

    EXPECT_EQ(profile.value().file_count, spec.file_count) << "layer " << id;
    EXPECT_EQ(profile.value().dir_count, spec.dir_count) << "layer " << id;
    EXPECT_EQ(profile.value().max_depth, spec.max_depth) << "layer " << id;
    ASSERT_EQ(measured_files.size(), model_files.size());
    for (std::size_t i = 0; i < model_files.size(); ++i) {
      EXPECT_EQ(measured_files[i].first, model_files[i].first);
      EXPECT_EQ(measured_files[i].second, model_files[i].second)
          << "layer " << id << " file " << i << ": want "
          << filetype::to_string(model_files[i].second) << " got "
          << filetype::to_string(measured_files[i].second);
    }
    if (++checked >= 40) break;
  }
  EXPECT_GE(checked, 20);
}

TEST(PipelineTest, AnalyzesUniqueLayersOnceAndBuildsImages) {
  const synth::HubModel hub(synth::Calibration::light(), synth::Scale{60, 17});
  registry::Service service;
  const synth::Materializer materializer(hub, 1);
  ASSERT_TRUE(materializer.populate(service).ok());

  // Collect the public manifests.
  std::vector<registry::Manifest> manifests;
  for (const synth::RepoSpec& repo : hub.repositories()) {
    if (!repo.has_latest || repo.requires_auth) continue;
    auto body = service.get_manifest(repo.name, "latest");
    ASSERT_TRUE(body.ok());
    manifests.push_back(registry::manifest_from_json(body.value()).value());
  }

  AnalysisPipeline::Options options;
  options.workers = 3;
  AnalysisPipeline pipeline(options);
  std::size_t layer_events = 0, image_events = 0, file_events = 0;
  AnalysisPipeline::Sink sink;
  sink.on_layer = [&](const LayerProfile&) { ++layer_events; };
  sink.on_file = [&](const digest::Digest&, const FileRecord&) {
    ++file_events;
  };
  sink.on_image = [&](const ImageProfile& image) {
    EXPECT_FALSE(image.repository.empty());
    ++image_events;
  };
  auto store = pipeline.run(
      manifests,
      [&](const digest::Digest& d) { return service.get_blob(d); }, sink);
  ASSERT_TRUE(store.ok());

  std::set<std::string> unique_digests;
  for (const auto& m : manifests) {
    for (const auto& ref : m.layers) unique_digests.insert(ref.digest.to_string());
  }
  EXPECT_EQ(layer_events, unique_digests.size());
  EXPECT_EQ(store.value().size(), unique_digests.size());
  EXPECT_EQ(image_events, manifests.size());
  EXPECT_GT(file_events, 0u);
}

TEST(PipelineTest, PropagatesFetchErrors) {
  registry::Manifest manifest;
  manifest.repository = "x/y";
  manifest.layers.push_back({digest::Digest::of("gone"), 5});
  AnalysisPipeline pipeline;
  auto result = pipeline.run(
      {manifest},
      [&](const digest::Digest&) -> util::Result<blob::BlobPtr> {
        return util::not_found("no such blob");
      },
      {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), util::ErrorCode::kNotFound);
}

}  // namespace
}  // namespace dockmine::analyzer
