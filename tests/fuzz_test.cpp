// Robustness fuzzing: the parsers and the classifier must never crash or
// loop on arbitrary input — they sit on the pipeline's untrusted side
// (the paper's analyzer ingested whatever Docker Hub served).
#include <gtest/gtest.h>

#include "dockmine/compress/gzip.h"
#include "dockmine/filetype/classifier.h"
#include "dockmine/http/message.h"
#include "dockmine/json/json.h"
#include "dockmine/registry/http_gateway.h"
#include "dockmine/tar/reader.h"
#include "dockmine/util/rng.h"

namespace dockmine {
namespace {

std::string random_blob(util::Rng& rng, std::size_t max_size) {
  std::string out;
  const std::size_t size = rng.uniform(max_size);
  out.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    // Mix of printable and arbitrary bytes.
    out += rng.chance(0.5) ? static_cast<char>(32 + rng.uniform(95))
                           : static_cast<char>(rng.uniform(256));
  }
  return out;
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, ClassifierTotalOnArbitraryBytes) {
  util::Rng rng(GetParam() * 2654435761ULL);
  for (int i = 0; i < 200; ++i) {
    const std::string content = random_blob(rng, 600);
    const std::string path = random_blob(rng, 80);
    const auto type = filetype::classify(path, content);
    EXPECT_LT(static_cast<std::size_t>(type), filetype::kTypeCount);
    // And deterministic.
    EXPECT_EQ(filetype::classify(path, content), type);
  }
}

TEST_P(FuzzTest, JsonParserNeverCrashes) {
  util::Rng rng(GetParam() * 40503);
  for (int i = 0; i < 200; ++i) {
    const std::string text = random_blob(rng, 300);
    auto doc = json::parse(text);
    if (doc.ok()) {
      // Whatever parsed must re-serialize and re-parse.
      EXPECT_TRUE(json::parse(doc.value().dump()).ok());
    }
  }
}

TEST_P(FuzzTest, TarReaderTerminatesOnGarbage) {
  util::Rng rng(GetParam() * 97);
  for (int i = 0; i < 50; ++i) {
    const std::string archive = random_blob(rng, 4096);
    tar::Reader reader(archive);
    int entries = 0;
    auto status = reader.for_each([&](const tar::Entry&) { ++entries; });
    (void)status;           // error or success both fine
    EXPECT_LT(entries, 10);  // garbage can't produce a long valid archive
  }
}

TEST_P(FuzzTest, GzipDecompressorRejectsGarbage) {
  util::Rng rng(GetParam() * 131);
  for (int i = 0; i < 50; ++i) {
    const std::string member = random_blob(rng, 2048);
    auto result = compress::gzip_decompress(member);
    // Random bytes essentially never form a valid member (magic + CRC).
    EXPECT_FALSE(result.ok());
  }
}

TEST_P(FuzzTest, HttpParserErrorsOrWaitsNeverCrashes) {
  util::Rng rng(GetParam() * 1009);
  for (int i = 0; i < 100; ++i) {
    http::MessageReader reader;
    reader.feed(random_blob(rng, 512));
    http::Request request;
    auto result = reader.next_request(request);
    (void)result;  // kCorrupt or "need more" are both acceptable
  }
}

TEST_P(FuzzTest, GatewayRepliesToArbitraryRequests) {
  registry::Service service;
  registry::HttpGateway gateway(service);
  util::Rng rng(GetParam() * 8191);
  for (int i = 0; i < 100; ++i) {
    http::Request request;
    request.method = rng.chance(0.5) ? "GET" : random_blob(rng, 6);
    request.target = "/" + random_blob(rng, 60);
    const http::Response response = gateway.handle(request);
    EXPECT_GE(response.status, 200);
    EXPECT_LT(response.status, 600);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace dockmine
