// Robustness fuzzing: the parsers and the classifier must never crash or
// loop on arbitrary input — they sit on the pipeline's untrusted side
// (the paper's analyzer ingested whatever Docker Hub served).
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "dockmine/analyzer/layer_analyzer.h"
#include "dockmine/compress/gzip.h"
#include "dockmine/core/serve.h"
#include "dockmine/core/wire.h"
#include "dockmine/filetype/classifier.h"
#include "dockmine/http/message.h"
#include "dockmine/json/json.h"
#include "dockmine/registry/http_gateway.h"
#include "dockmine/shard/merger.h"
#include "dockmine/shard/run_format.h"
#include "dockmine/tar/reader.h"
#include "dockmine/util/rng.h"

namespace dockmine {
namespace {

std::string random_blob(util::Rng& rng, std::size_t max_size) {
  std::string out;
  const std::size_t size = rng.uniform(max_size);
  out.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    // Mix of printable and arbitrary bytes.
    out += rng.chance(0.5) ? static_cast<char>(32 + rng.uniform(95))
                           : static_cast<char>(rng.uniform(256));
  }
  return out;
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, ClassifierTotalOnArbitraryBytes) {
  util::Rng rng(GetParam() * 2654435761ULL);
  for (int i = 0; i < 200; ++i) {
    const std::string content = random_blob(rng, 600);
    const std::string path = random_blob(rng, 80);
    const auto type = filetype::classify(path, content);
    EXPECT_LT(static_cast<std::size_t>(type), filetype::kTypeCount);
    // And deterministic.
    EXPECT_EQ(filetype::classify(path, content), type);
  }
}

TEST_P(FuzzTest, JsonParserNeverCrashes) {
  util::Rng rng(GetParam() * 40503);
  for (int i = 0; i < 200; ++i) {
    const std::string text = random_blob(rng, 300);
    auto doc = json::parse(text);
    if (doc.ok()) {
      // Whatever parsed must re-serialize and re-parse.
      EXPECT_TRUE(json::parse(doc.value().dump()).ok());
    }
  }
}

TEST_P(FuzzTest, TarReaderTerminatesOnGarbage) {
  util::Rng rng(GetParam() * 97);
  for (int i = 0; i < 50; ++i) {
    const std::string archive = random_blob(rng, 4096);
    tar::Reader reader(archive);
    int entries = 0;
    auto status = reader.for_each([&](const tar::Entry&) { ++entries; });
    (void)status;           // error or success both fine
    EXPECT_LT(entries, 10);  // garbage can't produce a long valid archive
  }
}

TEST_P(FuzzTest, GzipDecompressorRejectsGarbage) {
  util::Rng rng(GetParam() * 131);
  for (int i = 0; i < 50; ++i) {
    const std::string member = random_blob(rng, 2048);
    auto result = compress::gzip_decompress(member);
    // Random bytes essentially never form a valid member (magic + CRC).
    EXPECT_FALSE(result.ok());
  }
}

TEST_P(FuzzTest, HttpParserErrorsOrWaitsNeverCrashes) {
  util::Rng rng(GetParam() * 1009);
  for (int i = 0; i < 100; ++i) {
    http::MessageReader reader;
    reader.feed(random_blob(rng, 512));
    http::Request request;
    auto result = reader.next_request(request);
    (void)result;  // kCorrupt or "need more" are both acceptable
  }
}

TEST_P(FuzzTest, GatewayRepliesToArbitraryRequests) {
  registry::Service service;
  registry::HttpGateway gateway(service);
  util::Rng rng(GetParam() * 8191);
  for (int i = 0; i < 100; ++i) {
    http::Request request;
    request.method = rng.chance(0.5) ? "GET" : random_blob(rng, 6);
    request.target = "/" + random_blob(rng, 60);
    const http::Response response = gateway.handle(request);
    EXPECT_GE(response.status, 200);
    EXPECT_LT(response.status, 600);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Regression corpus replay. tests/corpus/ holds committed inputs (generated
// by make_corpus.py, byte-reproducible) that exercise the parser edge cases
// random fuzzing rarely hits: truncated gzip members, torn GNU long-name
// headers, degenerate ustar blocks, and every `.wh.` whiteout spelling.
// Each file is replayed twice so flaky (input-order- or state-dependent)
// parsing shows up as a diff, not a shrug.
// ---------------------------------------------------------------------------

std::string read_corpus(const std::string& name) {
  const std::filesystem::path path =
      std::filesystem::path(DOCKMINE_CORPUS_DIR) / name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing corpus file " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

struct TarReplay {
  bool ok = false;
  int entries = 0;
  int whiteouts = 0;
};

TarReplay replay_tar(const std::string& archive) {
  TarReplay replay;
  tar::Reader reader(archive);
  replay.ok = reader
                  .for_each([&](const tar::Entry& entry) {
                    ++replay.entries;
                    if (entry.is_whiteout()) ++replay.whiteouts;
                  })
                  .ok();
  return replay;
}

TEST(CorpusTest, TruncatedGzipMemberIsRejected) {
  const std::string blob = read_corpus("gzip_truncated_member.bin");
  ASSERT_FALSE(blob.empty());
  EXPECT_FALSE(compress::gzip_decompress(blob).ok());
  EXPECT_FALSE(compress::gzip_decompress(blob).ok());  // deterministic
}

TEST(CorpusTest, BadCrcGzipMemberIsRejected) {
  const std::string blob = read_corpus("gzip_bad_crc.bin");
  ASSERT_FALSE(blob.empty());
  EXPECT_FALSE(compress::gzip_decompress(blob).ok());
}

TEST(CorpusTest, TornGnuLongNameHeaderTerminates) {
  const std::string archive = read_corpus("tar_torn_longname.bin");
  ASSERT_FALSE(archive.empty());
  const TarReplay first = replay_tar(archive);
  // The archive ends inside the long-name payload: no entry can complete.
  EXPECT_EQ(first.entries, 0);
  const TarReplay again = replay_tar(archive);
  EXPECT_EQ(first.ok, again.ok);
  EXPECT_EQ(first.entries, again.entries);
}

TEST(CorpusTest, ZeroLengthUstarEntryTerminates) {
  const std::string archive = read_corpus("tar_zero_length_ustar.bin");
  ASSERT_EQ(archive.size(), 1536u);  // one header + end-of-archive marker
  const TarReplay first = replay_tar(archive);
  EXPECT_LE(first.entries, 1);  // nameless zero-size file or rejection
  const TarReplay again = replay_tar(archive);
  EXPECT_EQ(first.ok, again.ok);
  EXPECT_EQ(first.entries, again.entries);
}

TEST(CorpusTest, WhiteoutSpellingsClassifyConsistently) {
  const std::string archive = read_corpus("tar_whiteout_edges.bin");
  const TarReplay replay = replay_tar(archive);
  EXPECT_TRUE(replay.ok);
  EXPECT_EQ(replay.entries, 6);
  // `.wh.removed`, `.wh..wh..opq`, bare `.wh.`, `.wh..wh.double` are
  // whiteouts; `file.wh.inside` (mid-name) and `etc/config` are not.
  EXPECT_EQ(replay.whiteouts, 4);
}

TEST_P(FuzzTest, ShardRunDecoderRejectsGarbage) {
  util::Rng rng(GetParam() * 523);
  for (int i = 0; i < 100; ++i) {
    const std::string bytes = random_blob(rng, 512);
    auto decoded = shard::decode_run(bytes);
    // A random blob essentially never carries the magic, the exact size,
    // and a matching CRC at once.
    EXPECT_FALSE(decoded.ok());
  }
}

// ---------------------------------------------------------------------------
// Shard-run corpus: a valid spill run plus truncated and bit-flipped copies.
// The decoder and the merger must reject damage with a clean error — a
// corrupt run may fail a merge, but it must never crash the process or
// contribute a single entry to an aggregate.
// ---------------------------------------------------------------------------

// Write a corpus blob to a temp file so the streaming RunReader/merger path
// sees exactly the committed bytes.
std::string corpus_as_file(const std::string& name, const std::string& blob) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / ("dockmine_fuzz_" + name);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << blob;
  out.close();
  return path.string();
}

TEST(CorpusTest, ValidShardRunDecodesAndMergesExactly) {
  const std::string blob = read_corpus("shard_run_valid.bin");
  ASSERT_EQ(blob.size(), 128u);  // 32-byte header + 3 * 32-byte entries

  std::uint32_t shard_count = 0, shard_index = 0;
  auto decoded = shard::decode_run(blob, &shard_count, &shard_index);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message();
  EXPECT_EQ(shard_count, 4u);
  EXPECT_EQ(shard_index, 2u);
  ASSERT_EQ(decoded.value().size(), 3u);

  // Both ingestion paths (in-memory decode, streaming file reader) must
  // fold to the numbers make_corpus.py encodes: 16 instances, 3 contents.
  for (bool via_file : {false, true}) {
    SCOPED_TRACE(via_file ? "file run" : "memory run");
    shard::ShardMerger merger;
    if (via_file) {
      const std::string path = corpus_as_file("valid.dmrun", blob);
      ASSERT_TRUE(merger.add_run_file(path).ok());
      std::filesystem::remove(path);
    } else {
      merger.add_memory_run(decoded.value());
    }
    auto aggregates = merger.merge_aggregates();
    ASSERT_TRUE(aggregates.ok()) << aggregates.error().message();
    EXPECT_EQ(aggregates.value().totals.total_files, 16u);
    EXPECT_EQ(aggregates.value().totals.unique_files, 3u);
    EXPECT_EQ(aggregates.value().totals.total_bytes, 49182u);
    EXPECT_EQ(aggregates.value().totals.unique_bytes, 4106u);
    EXPECT_EQ(aggregates.value().max_repeat.count, 12u);
  }
}

TEST(CorpusTest, TruncatedShardRunIsRejectedWithoutSkewingAggregates) {
  const std::string good = read_corpus("shard_run_valid.bin");
  const std::string bad = read_corpus("shard_run_truncated.bin");
  ASSERT_LT(bad.size(), good.size());
  EXPECT_FALSE(shard::decode_run(bad).ok());
  EXPECT_FALSE(shard::decode_run(bad).ok());  // deterministic

  // A merger that already holds the good run refuses the damaged file at
  // add time; what it then merges is exactly the good run — nothing more.
  shard::ShardMerger merger;
  const std::string good_path = corpus_as_file("good.dmrun", good);
  const std::string bad_path = corpus_as_file("trunc.dmrun", bad);
  ASSERT_TRUE(merger.add_run_file(good_path).ok());
  EXPECT_FALSE(merger.add_run_file(bad_path).ok());
  auto aggregates = merger.merge_aggregates();
  ASSERT_TRUE(aggregates.ok());
  EXPECT_EQ(aggregates.value().totals.total_files, 16u);
  EXPECT_EQ(aggregates.value().totals.unique_files, 3u);
  std::filesystem::remove(good_path);
  std::filesystem::remove(bad_path);
}

TEST(CorpusTest, BitflippedShardRunIsRejectedByChecksum) {
  const std::string good = read_corpus("shard_run_valid.bin");
  const std::string bad = read_corpus("shard_run_bitflip.bin");
  ASSERT_EQ(bad.size(), good.size());
  ASSERT_NE(bad, good);
  EXPECT_FALSE(shard::decode_run(bad).ok());

  const std::string path = corpus_as_file("flip.dmrun", bad);
  EXPECT_FALSE(shard::RunReader::open(path).ok());
  shard::ShardMerger merger;
  EXPECT_FALSE(merger.add_run_file(path).ok());
  std::filesystem::remove(path);
}

TEST(CorpusTest, EveryPossibleSingleBitFlipOfAValidRunIsRejected) {
  // The format has no slack: the CRC covers the whole entry section and
  // every header field is range-checked, so no single-bit flip anywhere in
  // the file can survive validation.
  const std::string good = read_corpus("shard_run_valid.bin");
  ASSERT_TRUE(shard::decode_run(good).ok());
  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = good;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      EXPECT_FALSE(shard::decode_run(flipped).ok())
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST_P(FuzzTest, WireFrameBufferTotalOnArbitraryBytes) {
  util::Rng rng(GetParam() * 6151);
  for (int i = 0; i < 100; ++i) {
    core::wire::FrameBuffer buffer;
    buffer.feed(random_blob(rng, 512));
    core::wire::Frame frame;
    auto polled = buffer.poll(frame);
    // Random bytes essentially never form the magic + a matching CRC:
    // the only outcomes are "need more" (a short buffer) or a poisoned
    // stream — and a poisoned stream must stay poisoned.
    if (!polled.ok()) {
      EXPECT_TRUE(buffer.corrupt());
      buffer.feed(core::wire::encode_frame(core::wire::FrameKind::kJson, "{}"));
      EXPECT_FALSE(buffer.poll(frame).ok());
    } else {
      EXPECT_FALSE(polled.value());
    }
  }
}

TEST_P(FuzzTest, WireFrameSurvivesRandomTearAndFlip) {
  util::Rng rng(GetParam() * 26227);
  for (int i = 0; i < 50; ++i) {
    const std::string payload = random_blob(rng, 256);
    const auto kind = rng.chance(0.5) ? core::wire::FrameKind::kJson
                                      : core::wire::FrameKind::kBinary;
    const std::string encoded = core::wire::encode_frame(kind, payload);

    // Tear at a random point: must read as incomplete, then complete
    // exactly once the remainder arrives.
    core::wire::FrameBuffer torn;
    const std::size_t cut = rng.uniform(encoded.size());
    torn.feed(std::string_view(encoded).substr(0, cut));
    core::wire::Frame frame;
    auto first = torn.poll(frame);
    ASSERT_TRUE(first.ok());
    EXPECT_FALSE(first.value());
    torn.feed(std::string_view(encoded).substr(cut));
    auto second = torn.poll(frame);
    ASSERT_TRUE(second.ok());
    ASSERT_TRUE(second.value());
    EXPECT_EQ(frame.payload, payload);
    EXPECT_EQ(frame.kind, kind);

    // Flip a random bit: the altered frame must never be delivered.
    std::string flipped = encoded;
    const std::size_t byte = rng.uniform(flipped.size());
    flipped[byte] =
        static_cast<char>(flipped[byte] ^ (1 << rng.uniform(8)));
    core::wire::FrameBuffer damaged;
    damaged.feed(flipped);
    auto polled = damaged.poll(frame);
    EXPECT_FALSE(polled.ok() && polled.value())
        << "delivered a frame with byte " << byte << " flipped";
  }
}

// ---------------------------------------------------------------------------
// Wire-frame corpus: a committed coordinator<->worker control frame plus
// torn and bit-flipped copies (make_corpus.py). A malformed frame may cost
// the connection — and with it a lease — but must never crash the process
// or deliver altered bytes into a merged report.
// ---------------------------------------------------------------------------

TEST(CorpusTest, ValidWireFrameDecodesExactly) {
  const std::string blob = read_corpus("wire_frame_valid.bin");
  ASSERT_EQ(blob.size(), core::wire::kFrameHeaderBytes + 50);
  for (int replay = 0; replay < 2; ++replay) {
    core::wire::FrameBuffer buffer;
    buffer.feed(blob);
    core::wire::Frame frame;
    auto polled = buffer.poll(frame);
    ASSERT_TRUE(polled.ok()) << polled.error().message();
    ASSERT_TRUE(polled.value());
    EXPECT_EQ(frame.kind, core::wire::FrameKind::kJson);
    EXPECT_EQ(frame.payload,
              "{\"type\":\"heartbeat\",\"worker\":3,\"lease\":1,\"obs\":{}}");
    EXPECT_EQ(buffer.buffered(), blob.size());  // consumed, compacted lazily
  }
}

TEST(CorpusTest, TruncatedWireFrameWaitsWithoutPoisoning) {
  const std::string good = read_corpus("wire_frame_valid.bin");
  const std::string torn = read_corpus("wire_frame_truncated.bin");
  ASSERT_LT(torn.size(), good.size());
  ASSERT_EQ(torn, good.substr(0, torn.size()));

  core::wire::FrameBuffer buffer;
  buffer.feed(torn);
  core::wire::Frame frame;
  auto polled = buffer.poll(frame);
  ASSERT_TRUE(polled.ok());
  EXPECT_FALSE(polled.value());  // a read boundary, not corruption
  EXPECT_FALSE(buffer.corrupt());

  buffer.feed(good.substr(torn.size()));
  auto completed = buffer.poll(frame);
  ASSERT_TRUE(completed.ok());
  EXPECT_TRUE(completed.value());
}

TEST(CorpusTest, BitflippedWireFramePoisonsTheStream) {
  const std::string good = read_corpus("wire_frame_valid.bin");
  const std::string bad = read_corpus("wire_frame_bitflip.bin");
  ASSERT_EQ(bad.size(), good.size());
  ASSERT_NE(bad, good);

  core::wire::FrameBuffer buffer;
  buffer.feed(bad);
  core::wire::Frame frame;
  auto polled = buffer.poll(frame);
  ASSERT_FALSE(polled.ok());  // CRC mismatch
  EXPECT_TRUE(buffer.corrupt());
  // No resynchronization: a subsequent pristine frame stays undelivered.
  buffer.feed(good);
  EXPECT_FALSE(buffer.poll(frame).ok());
}

// ---------------------------------------------------------------------------
// Serve-request corpus: the daemon's query protocol rides the same DMWF
// framing, so the replay mirrors the wire-frame trio (valid/torn/flipped)
// plus the serve-specific layer: a perfectly framed document that is not a
// request, which the total parser must reject — the daemon turns that
// rejection into an error response while the connection lives on.
// ---------------------------------------------------------------------------

TEST(CorpusTest, ValidServeRequestDecodesParsesAndRoundtrips) {
  namespace serve = core::serve;
  const std::string blob = read_corpus("serve_request_valid.bin");
  for (int replay = 0; replay < 2; ++replay) {
    core::wire::FrameBuffer buffer;
    buffer.feed(blob);
    core::wire::Frame frame;
    auto polled = buffer.poll(frame);
    ASSERT_TRUE(polled.ok()) << polled.error().message();
    ASSERT_TRUE(polled.value());
    ASSERT_EQ(frame.kind, core::wire::FrameKind::kJson);

    auto doc = json::parse(frame.payload);
    ASSERT_TRUE(doc.ok());
    auto request = serve::request_from_json(doc.value());
    ASSERT_TRUE(request.ok()) << request.error().to_string();
    EXPECT_EQ(request.value().kind, serve::RequestKind::kQuery);
    EXPECT_EQ(request.value().q, "ecdf");
    EXPECT_EQ(request.value().name, "layers.cls");
    EXPECT_EQ(request.value().quantile, 0.5);
    // The committed payload is in canonical field order: re-encoding the
    // parsed request reproduces it byte for byte.
    EXPECT_EQ(serve::request_to_json(request.value()).dump(), frame.payload);
  }
}

TEST(CorpusTest, TruncatedServeRequestIsAReadBoundary) {
  const std::string good = read_corpus("serve_request_valid.bin");
  const std::string torn = read_corpus("serve_request_truncated.bin");
  ASSERT_EQ(torn, good.substr(0, torn.size()));

  core::wire::FrameBuffer buffer;
  buffer.feed(torn);
  core::wire::Frame frame;
  auto polled = buffer.poll(frame);
  ASSERT_TRUE(polled.ok());
  EXPECT_FALSE(polled.value());
  EXPECT_FALSE(buffer.corrupt());
  buffer.feed(good.substr(torn.size()));
  auto completed = buffer.poll(frame);
  ASSERT_TRUE(completed.ok());
  EXPECT_TRUE(completed.value());
}

TEST(CorpusTest, BitflippedServeRequestPoisonsOnlyItsStream) {
  const std::string good = read_corpus("serve_request_valid.bin");
  const std::string bad = read_corpus("serve_request_bitflip.bin");
  ASSERT_EQ(bad.size(), good.size());
  ASSERT_NE(bad, good);

  core::wire::FrameBuffer buffer;
  buffer.feed(bad);
  core::wire::Frame frame;
  EXPECT_FALSE(buffer.poll(frame).ok());
  EXPECT_TRUE(buffer.corrupt());
  // A fresh stream (a new connection) is unaffected.
  core::wire::FrameBuffer fresh;
  fresh.feed(good);
  auto polled = fresh.poll(frame);
  ASSERT_TRUE(polled.ok());
  EXPECT_TRUE(polled.value());
}

TEST(CorpusTest, ValidMetricsRequestDecodesParsesAndRoundtrips) {
  namespace serve = core::serve;
  const std::string blob = read_corpus("serve_request_metrics_valid.bin");
  for (int replay = 0; replay < 2; ++replay) {
    core::wire::FrameBuffer buffer;
    buffer.feed(blob);
    core::wire::Frame frame;
    auto polled = buffer.poll(frame);
    ASSERT_TRUE(polled.ok()) << polled.error().message();
    ASSERT_TRUE(polled.value());
    ASSERT_EQ(frame.kind, core::wire::FrameKind::kJson);

    auto doc = json::parse(frame.payload);
    ASSERT_TRUE(doc.ok());
    auto request = serve::request_from_json(doc.value());
    ASSERT_TRUE(request.ok()) << request.error().to_string();
    EXPECT_EQ(request.value().kind, serve::RequestKind::kQuery);
    EXPECT_EQ(request.value().q, "metrics");
    EXPECT_EQ(request.value().name, "dockmine_serve_requests_total");
    EXPECT_EQ(request.value().op, "rate");
    EXPECT_EQ(request.value().window_ms, 60000u);
    EXPECT_EQ(serve::request_to_json(request.value()).dump(), frame.payload);
  }
}

TEST(CorpusTest, TruncatedMetricsRequestIsAReadBoundary) {
  const std::string good = read_corpus("serve_request_metrics_valid.bin");
  const std::string torn = read_corpus("serve_request_metrics_truncated.bin");
  ASSERT_EQ(torn, good.substr(0, torn.size()));

  core::wire::FrameBuffer buffer;
  buffer.feed(torn);
  core::wire::Frame frame;
  auto polled = buffer.poll(frame);
  ASSERT_TRUE(polled.ok());
  EXPECT_FALSE(polled.value());
  EXPECT_FALSE(buffer.corrupt());
  buffer.feed(good.substr(torn.size()));
  auto completed = buffer.poll(frame);
  ASSERT_TRUE(completed.ok());
  EXPECT_TRUE(completed.value());
}

TEST(CorpusTest, BitflippedMetricsRequestPoisonsOnlyItsStream) {
  const std::string good = read_corpus("serve_request_metrics_valid.bin");
  const std::string bad = read_corpus("serve_request_metrics_bitflip.bin");
  ASSERT_EQ(bad.size(), good.size());
  ASSERT_NE(bad, good);

  core::wire::FrameBuffer buffer;
  buffer.feed(bad);
  core::wire::Frame frame;
  EXPECT_FALSE(buffer.poll(frame).ok());
  EXPECT_TRUE(buffer.corrupt());
  core::wire::FrameBuffer fresh;
  fresh.feed(good);
  auto polled = fresh.poll(frame);
  ASSERT_TRUE(polled.ok());
  EXPECT_TRUE(polled.value());
}

TEST(CorpusTest, WellFramedNonRequestIsRejectedByTheTotalParser) {
  const std::string blob = read_corpus("serve_request_bad_doc.bin");
  core::wire::FrameBuffer buffer;
  buffer.feed(blob);
  core::wire::Frame frame;
  auto polled = buffer.poll(frame);
  ASSERT_TRUE(polled.ok());  // framing layer accepts it
  ASSERT_TRUE(polled.value());
  auto doc = json::parse(frame.payload);
  ASSERT_TRUE(doc.ok());  // JSON layer accepts it
  auto request = core::serve::request_from_json(doc.value());
  ASSERT_FALSE(request.ok());  // request layer rejects it
  EXPECT_EQ(request.error().code(), util::ErrorCode::kCorrupt);
}

// Mutate a valid serve request document at random: the parser must accept
// or reject with kCorrupt — never crash — and everything it accepts must
// survive a re-encode/re-parse round trip.
TEST_P(FuzzTest, ServeRequestParserTotalUnderRandomMutation) {
  namespace serve = core::serve;
  util::Rng rng(GetParam() * 48611);
  const std::string seed_doc =
      R"({"type":"query","id":7,"q":"ecdf","name":"layers.cls","quantile":0.5})";
  for (int i = 0; i < 200; ++i) {
    std::string text = seed_doc;
    const int mutations = 1 + static_cast<int>(rng.uniform(4));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t at = rng.uniform(text.size());
      if (rng.chance(0.5)) {
        text[at] = static_cast<char>(rng.uniform(256));
      } else {
        text.erase(at, 1);
      }
    }
    auto doc = json::parse(text);
    if (!doc.ok()) continue;  // the JSON layer already rejected it
    auto request = serve::request_from_json(doc.value());
    if (!request.ok()) {
      EXPECT_EQ(request.error().code(), util::ErrorCode::kCorrupt);
      continue;
    }
    // Accepted: the codec must round-trip it losslessly.
    auto again =
        serve::request_from_json(serve::request_to_json(request.value()));
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(serve::request_to_json(again.value()).dump(),
              serve::request_to_json(request.value()).dump());
  }
}

TEST(CorpusTest, WhiteoutLayerBlobAnalyzesDeterministically) {
  const std::string blob = read_corpus("layer_whiteout_edges.bin");
  const analyzer::LayerAnalyzer layer_analyzer;

  std::vector<std::string> paths;
  analyzer::FileVisitor visitor =
      [&](std::string_view path, const analyzer::FileRecord&) {
        paths.emplace_back(path);
      };
  auto profile = layer_analyzer.analyze_blob(blob, &visitor);
  ASSERT_TRUE(profile.ok()) << profile.error().message();
  // Whiteout markers are metadata, not content: only the two real files
  // survive into the profile.
  EXPECT_EQ(profile.value().file_count, 2u);
  EXPECT_EQ(paths, (std::vector<std::string>{"etc/config", "srv/file.wh.inside"}));

  auto again = layer_analyzer.analyze_blob(blob);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(profile.value().digest, again.value().digest);
  EXPECT_EQ(profile.value().fls, again.value().fls);
}

}  // namespace
}  // namespace dockmine
