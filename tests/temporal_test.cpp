// dockmine::temporal — epoch model + incremental delta analysis
// (DESIGN.md §15).
//
// The suite pins the subsystem's one contract from three directions:
//
//   1. The churn process is a deterministic, calibrated function of
//      (seed, epoch, image): same inputs, same churn set, base layers
//      never move, and the re-push fraction sits in the configured band.
//   2. Epoch equivalence: after apply_epoch(K), the incrementally
//      maintained analysis report is byte-identical to a from-scratch
//      batch run over the epoch-K registry — for every seed, epoch depth,
//      and batch execution mode (serial/staged/streamed, and the sharded
//      dedup backend), because the canonical serializer is shared and
//      built from order-independent aggregates only.
//   3. Crash shapes: a canceled epoch commits nothing; a re-applied epoch
//      resumes verified blobs from the checkpoint; a full restart-replay
//      (fresh analyzer, same checkpoint) reproduces the same bytes. The
//      serve daemon's ingest-epoch path inherits all of it through
//      restart-replay of state.json v2.
//
// Monolithic (one ctest entry): the evolving registries are shared
// fixtures and the serve tests mutate daemon state in a fixed order.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dockmine/core/pipeline.h"
#include "dockmine/core/serve.h"
#include "dockmine/downloader/checkpoint.h"
#include "dockmine/json/json.h"
#include "dockmine/registry/service.h"
#include "dockmine/synth/generator.h"
#include "dockmine/temporal/delta_analyzer.h"
#include "dockmine/temporal/epoch_model.h"
#include "dockmine/temporal/trend.h"

namespace core = dockmine::core;
namespace serve = dockmine::core::serve;
namespace synth = dockmine::synth;
namespace temporal = dockmine::temporal;
namespace registry = dockmine::registry;
namespace downloader = dockmine::downloader;
namespace json = dockmine::json;
namespace util = dockmine::util;
namespace fs = std::filesystem;

namespace {

constexpr std::uint64_t kRepos = 12;
constexpr int kGzip = 1;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& name)
      : path(fs::temp_directory_path() / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

/// One evolving registry plus its delta analyzer — the incremental side of
/// every equivalence below.
struct Stack {
  synth::HubModel hub;
  temporal::EpochModel model;
  registry::Service service;
  temporal::EvolvingRegistry evolving;
  temporal::DeltaAnalyzer analyzer;

  explicit Stack(std::uint64_t seed, std::uint64_t repos = kRepos,
                 temporal::DeltaOptions options = {})
      : hub(synth::Calibration::light(), synth::Scale{repos, seed}),
        model(hub),
        evolving(model, kGzip),
        analyzer(std::move(options)) {}

  std::vector<std::string> all_repositories() const {
    std::vector<std::string> names;
    names.reserve(hub.repositories().size());
    for (const auto& repo : hub.repositories()) names.push_back(repo.name);
    return names;
  }

  util::Result<temporal::EpochDelta> advance() {
    if (!analyzer.initialized()) {
      auto pushed = evolving.initialize(service);
      if (!pushed.ok()) return std::move(pushed).error();
      return analyzer.apply_epoch(service, 0, all_repositories());
    }
    auto pushed = evolving.advance(service);
    if (!pushed.ok()) return std::move(pushed).error();
    return analyzer.apply_epoch(service, evolving.epoch(),
                                pushed.value().repushed);
  }

  std::string report_dump() {
    auto report = analyzer.report();
    if (!report.ok()) {
      ADD_FAILURE() << report.error().to_string();
      return std::string();
    }
    return report.value().dump();
  }
};

/// The from-scratch side: rebuild the epoch-K registry and run the batch
/// pipeline over it through the external-service hook.
std::string batch_oracle_dump(std::uint64_t seed, std::uint32_t epoch,
                              core::ExecutionMode mode,
                              std::uint32_t shards = 0,
                              std::uint64_t repos = kRepos) {
  synth::HubModel hub(synth::Calibration::light(), synth::Scale{repos, seed});
  temporal::EpochModel model(hub);
  registry::Service service;
  auto built = temporal::build_registry_at_epoch(model, epoch, kGzip, service);
  EXPECT_TRUE(built.ok()) << (built.ok() ? "" : built.error().to_string());
  if (!built.ok()) return std::string();

  core::PipelineOptions options;
  options.scale = synth::Scale{repos, seed};
  options.calibration = synth::Calibration::light();
  options.gzip_level = kGzip;
  options.mode = mode;
  options.download_workers = 2;
  options.analyze_workers = 2;
  options.shard.shards = shards;
  options.external_service = &service;
  auto run = core::run_end_to_end(options);
  EXPECT_TRUE(run.ok()) << (run.ok() ? "" : run.error().to_string());
  if (!run.ok()) return std::string();
  return core::analysis_report_json(run.value()).dump();
}

// ---- 1. the churn process ----------------------------------------------

TEST(EpochModel, ChurnIsDeterministicAndOrdered) {
  Stack a(20170530);
  Stack b(20170530);
  for (std::uint32_t epoch = 1; epoch <= 6; ++epoch) {
    const auto lhs = a.model.churned_repositories(epoch);
    const auto rhs = b.model.churned_repositories(epoch);
    EXPECT_EQ(lhs, rhs) << "epoch " << epoch;
    // Churn sets never repeat a repository within an epoch.
    const std::set<std::string> unique(lhs.begin(), lhs.end());
    EXPECT_EQ(unique.size(), lhs.size());
  }
}

TEST(EpochModel, RepushFractionSitsInTheCalibratedBand) {
  // Aggregate over many epochs of a larger population so the binomial
  // noise shrinks: 60 images x 20 epochs at p = 0.14 => mean 168,
  // sigma ~ 12. A +/- 5-sigma band still rejects a broken generator.
  Stack stack(991, /*repos=*/60);
  std::uint64_t repushes = 0;
  const std::uint32_t epochs = 20;
  for (std::uint32_t epoch = 1; epoch <= epochs; ++epoch) {
    repushes += stack.model.churned_repositories(epoch).size();
  }
  const double expected =
      60.0 * epochs * stack.model.config().repush_fraction;
  EXPECT_GT(static_cast<double>(repushes), expected * 0.6);
  EXPECT_LT(static_cast<double>(repushes), expected * 1.4);
}

TEST(EpochModel, RebuildsTouchOnlyTheTopOfStack) {
  Stack stack(20170530, /*repos=*/40);
  const std::uint32_t churn_layers = stack.model.config().churn_layers;
  bool saw_repush = false;
  // Not every repository carries an image; iterate the image population.
  const std::uint64_t images = stack.hub.images().size();
  for (std::uint64_t image = 0; image < images; ++image) {
    const synth::ImageSpec base = stack.model.image_at(image, 0);
    const synth::ImageSpec evolved = stack.model.image_at(image, 5);
    ASSERT_EQ(base.layers.size(), evolved.layers.size());
    const std::size_t depth = base.layers.size();
    const std::size_t churned =
        std::min<std::size_t>(churn_layers, depth);
    // The base of the stack (FROM lines) never moves...
    for (std::size_t k = 0; k + churned < depth; ++k) {
      EXPECT_EQ(base.layers[k], evolved.layers[k]) << "image " << image;
    }
    // ...and a re-pushed image differs exactly in its top layers.
    if (stack.model.effective_epoch(image, 5) != 0) {
      saw_repush = true;
      for (std::size_t k = depth - churned; k < depth; ++k) {
        EXPECT_NE(base.layers[k], evolved.layers[k]) << "image " << image;
      }
    } else {
      EXPECT_EQ(base.layers, evolved.layers);
    }
  }
  EXPECT_TRUE(saw_repush);
}

TEST(EpochModel, EvolvingRegistryReusesUnchangedBlobs) {
  Stack stack(20170530);
  auto init = stack.evolving.initialize(stack.service);
  ASSERT_TRUE(init.ok()) << init.error().to_string();
  // One manifest per repository that carries an image (repos without one
  // exist in the search index but push nothing).
  EXPECT_GT(init.value().manifests, 0u);
  EXPECT_LE(init.value().manifests, kRepos);
  EXPECT_GT(init.value().layers_materialized, 0u);

  std::uint64_t repushed = 0;
  for (std::uint32_t epoch = 1; epoch <= 4; ++epoch) {
    auto advanced = stack.evolving.advance(stack.service);
    ASSERT_TRUE(advanced.ok()) << advanced.error().to_string();
    repushed += advanced.value().manifests;
    // A re-push re-materializes only rebuilt layers; the rest of the
    // stack is served from the persistent blob cache.
    EXPECT_EQ(advanced.value().repushed.size(), advanced.value().manifests);
    if (advanced.value().manifests > 0) {
      EXPECT_GT(advanced.value().layers_reused, 0u);
    }
  }
  EXPECT_GT(repushed, 0u);
}

// ---- 2. epoch equivalence ----------------------------------------------

TEST(EpochEquivalence, IncrementalMatchesBatchForEverySeedDepthAndMode) {
  const std::uint64_t seeds[] = {20170530, 777, 424242};
  const std::uint32_t checkpoints[] = {1, 3, 8};
  const core::ExecutionMode modes[] = {core::ExecutionMode::kSerial,
                                       core::ExecutionMode::kStaged,
                                       core::ExecutionMode::kStreamed};
  for (const std::uint64_t seed : seeds) {
    Stack stack(seed);
    std::uint32_t next = 0;
    for (const std::uint32_t epoch : checkpoints) {
      for (; next <= epoch; ++next) {
        auto delta = stack.advance();
        ASSERT_TRUE(delta.ok()) << delta.error().to_string();
      }
      const std::string incremental = stack.report_dump();
      ASSERT_FALSE(incremental.empty());
      for (const core::ExecutionMode mode : modes) {
        EXPECT_EQ(incremental, batch_oracle_dump(seed, epoch, mode))
            << "seed " << seed << " epoch " << epoch << " mode "
            << static_cast<int>(mode);
      }
    }
  }
}

TEST(EpochEquivalence, HoldsAgainstTheShardedDedupBackend) {
  Stack stack(20170530);
  for (std::uint32_t epoch = 0; epoch <= 3; ++epoch) {
    auto delta = stack.advance();
    ASSERT_TRUE(delta.ok()) << delta.error().to_string();
  }
  EXPECT_EQ(stack.report_dump(),
            batch_oracle_dump(20170530, 3, core::ExecutionMode::kStaged,
                              /*shards=*/2));
}

TEST(EpochEquivalence, DeltasActuallyShrinkTheWork) {
  Stack stack(20170530, /*repos=*/40);
  auto initial = stack.advance();
  ASSERT_TRUE(initial.ok()) << initial.error().to_string();
  const std::uint64_t full = initial.value().layers_changed;
  ASSERT_GT(full, 0u);
  std::uint64_t churn_total = 0;
  std::uint64_t retired_total = 0;
  for (std::uint32_t epoch = 1; epoch <= 4; ++epoch) {
    auto delta = stack.advance();
    ASSERT_TRUE(delta.ok()) << delta.error().to_string();
    EXPECT_LT(delta.value().layers_changed, full / 2)
        << "a churn epoch re-analyzed most of the corpus";
    churn_total += delta.value().layers_changed;
    retired_total += delta.value().layers_removed;
  }
  EXPECT_GT(churn_total, 0u);
  EXPECT_GT(retired_total, 0u);  // superseded rebuilds actually retire
}

TEST(EpochEquivalence, TrendReportTracksTheSeries) {
  Stack stack(20170530);
  temporal::TrendReport trend;
  for (std::uint32_t epoch = 0; epoch <= 2; ++epoch) {
    ASSERT_TRUE(stack.advance().ok());
    ASSERT_TRUE(trend.observe(stack.analyzer).ok());
  }
  const json::Value doc = trend.to_json();
  EXPECT_EQ(doc["epochs"].as_uint(), 3u);
  const json::Value& series = doc["series"];
  for (const char* column :
       {"epoch", "images", "distinct_layers", "layers_changed",
        "total_files", "unique_files", "total_bytes", "unique_bytes",
        "count_ratio", "capacity_ratio", "sharing_ratio",
        "unique_bytes_growth"}) {
    ASSERT_TRUE(series[column].is_array()) << column;
    EXPECT_EQ(series[column].items().size(), 3u) << column;
  }
  // Epoch 0 carries the full corpus; its growth entry is the whole store.
  EXPECT_GT(series["unique_bytes_growth"].items()[0].as_uint(), 0u);
}

// ---- 3. crash shapes ----------------------------------------------------

TEST(EpochChaos, CanceledEpochCommitsNothingAndResumesFromCheckpoint) {
  TempDir dir("dockmine-temporal-chaos");
  auto checkpoint = downloader::Checkpoint::open(dir.path / "ckpt");
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.error().to_string();

  // The trigger cancels after the first analyzed layer, but only once
  // armed — epochs 0 and 1 run uninterrupted, epoch 2 gets killed.
  std::atomic<bool> cancel{false};
  std::atomic<bool> armed{false};
  temporal::DeltaOptions chaos;
  chaos.checkpoint = &checkpoint.value();
  chaos.cancel = &cancel;
  chaos.on_layer_analyzed = [&cancel, &armed](std::uint64_t analyzed) {
    if (armed.load() && analyzed >= 1) cancel.store(true);
  };
  Stack victim(20170530, /*repos=*/24, std::move(chaos));
  Stack oracle(20170530, /*repos=*/24);

  for (std::uint32_t epoch = 0; epoch <= 1; ++epoch) {
    ASSERT_TRUE(victim.advance().ok());
    ASSERT_TRUE(oracle.advance().ok());
  }
  const std::string before = victim.report_dump();
  EXPECT_EQ(before, oracle.report_dump());

  // Kill epoch 2 after one analyzed layer.
  auto pushed = victim.evolving.advance(victim.service);
  ASSERT_TRUE(pushed.ok()) << pushed.error().to_string();
  ASSERT_FALSE(pushed.value().repushed.empty())
      << "seed produced an empty churn set; pick another seed";
  armed.store(true);
  auto killed = victim.analyzer.apply_epoch(victim.service, 2,
                                            pushed.value().repushed);
  ASSERT_TRUE(killed.ok()) << killed.error().to_string();
  ASSERT_TRUE(killed.value().canceled);

  // Nothing committed: resident state and report are still epoch 1.
  EXPECT_EQ(victim.analyzer.epoch(), 1u);
  EXPECT_EQ(victim.report_dump(), before);

  // Retry with the trigger disarmed: verified blobs stream from the
  // checkpoint, and the result is byte-identical to the uninterrupted run.
  armed.store(false);
  cancel.store(false);
  auto resumed = victim.analyzer.apply_epoch(victim.service, 2,
                                             pushed.value().repushed);
  ASSERT_TRUE(resumed.ok()) << resumed.error().to_string();
  EXPECT_FALSE(resumed.value().canceled);
  EXPECT_GT(resumed.value().layers_resumed, 0u);

  ASSERT_TRUE(oracle.advance().ok());
  EXPECT_EQ(victim.report_dump(), oracle.report_dump());
}

TEST(EpochChaos, RestartReplayReproducesTheResidentStateByteForByte) {
  TempDir dir("dockmine-temporal-replay");
  auto checkpoint = downloader::Checkpoint::open(dir.path / "ckpt");
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.error().to_string();

  std::string before;
  {
    temporal::DeltaOptions options;
    options.checkpoint = &checkpoint.value();
    Stack first(777, kRepos, std::move(options));
    for (std::uint32_t epoch = 0; epoch <= 3; ++epoch) {
      ASSERT_TRUE(first.advance().ok());
    }
    before = first.report_dump();
  }

  // "Restart": a fresh analyzer over a fresh registry, same checkpoint.
  // Every verified blob streams from disk, none from the network.
  temporal::DeltaOptions options;
  options.checkpoint = &checkpoint.value();
  Stack second(777, kRepos, std::move(options));
  std::uint64_t resumed = 0;
  std::uint64_t fetched = 0;
  for (std::uint32_t epoch = 0; epoch <= 3; ++epoch) {
    auto delta = second.advance();
    ASSERT_TRUE(delta.ok()) << delta.error().to_string();
    resumed += delta.value().layers_resumed;
    fetched += delta.value().layers_changed;
  }
  EXPECT_EQ(resumed, fetched);
  EXPECT_EQ(second.report_dump(), before);
}

TEST(EpochGuards, SequencingAndRangeViolationsAreRejected) {
  Stack stack(20170530);
  // Epoch 1 before epoch 0:
  auto out_of_order = stack.analyzer.apply_epoch(stack.service, 1, {});
  EXPECT_FALSE(out_of_order.ok());
  ASSERT_TRUE(stack.advance().ok());
  // Skipping an epoch:
  auto skipped = stack.analyzer.apply_epoch(stack.service, 2, {});
  EXPECT_FALSE(skipped.ok());
  // Beyond the version-space ceiling:
  auto too_deep = stack.analyzer.apply_epoch(
      stack.service, temporal::EpochModel::kMaxEpoch + 1, {});
  EXPECT_FALSE(too_deep.ok());
}

// ---- 4. serve: ingest-epoch + restart replay ---------------------------

serve::ServeOptions temporal_serve_options(
    const std::shared_ptr<Stack>& stack, const std::string& state_dir) {
  serve::ServeOptions options;
  options.job.repositories = kRepos;
  options.job.seed = 20170530;
  options.job.shards = 1;
  options.state_dir = state_dir;
  options.temporal_advance =
      [stack](std::uint32_t epoch) -> util::Result<core::PipelineResult> {
    if (epoch != (stack->analyzer.initialized()
                      ? stack->analyzer.epoch() + 1
                      : 0)) {
      return util::invalid_argument("temporal_advance: unexpected epoch");
    }
    auto delta = stack->advance();
    if (!delta.ok()) return std::move(delta).error();
    return stack->analyzer.result();
  };
  return options;
}

TEST(ServeTemporal, IngestEpochAdvancesAndMatchesTheBatchOracle) {
  TempDir dir("dockmine-temporal-serve");
  auto stack = std::make_shared<Stack>(20170530);
  serve::ServeDaemon daemon(temporal_serve_options(stack, dir.str()));
  ASSERT_TRUE(daemon.start().ok());

  auto snapshot = daemon.snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_TRUE(snapshot->temporal);
  EXPECT_EQ(snapshot->epoch, 0u);
  EXPECT_NE(snapshot->resident, nullptr);
  EXPECT_EQ(snapshot->images.size(), snapshot->repo_metrics.size());

  auto client = serve::Client::connect(daemon.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value().set_timeout_ms(600000).ok());

  // Regular batch ingest is rejected in temporal mode.
  serve::Request ingest;
  ingest.kind = serve::RequestKind::kIngest;
  ingest.id = 1;
  ingest.repositories = 4;
  ingest.seed = 99;
  auto rejected = client.value().call(ingest);
  ASSERT_TRUE(rejected.ok());
  EXPECT_FALSE(rejected.value().ok);

  // Two epoch advances through the wire.
  for (std::uint64_t id = 2; id <= 3; ++id) {
    serve::Request advance;
    advance.kind = serve::RequestKind::kIngestEpoch;
    advance.id = id;
    auto response = client.value().call(advance);
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response.value().ok) << response.value().error;
    EXPECT_EQ(response.value().body["epoch"].as_uint(), id - 1);
  }
  EXPECT_EQ(daemon.snapshot()->epoch, 2u);

  // The served analysis slice is byte-identical to a from-scratch batch
  // run over the epoch-2 registry.
  serve::Request report;
  report.q = "report";
  report.path = "analysis";
  report.id = 4;
  auto served = client.value().call(report);
  ASSERT_TRUE(served.ok());
  ASSERT_TRUE(served.value().ok) << served.value().error;
  EXPECT_EQ(served.value().body.dump(),
            batch_oracle_dump(20170530, 2, core::ExecutionMode::kStaged));

  // Restart replay: a second daemon over the same state dir and a fresh
  // stack must reproduce the full pre-crash report byte-for-byte
  // (pipeline_report_json, download accounting included).
  const std::string before = daemon.snapshot()->report.dump();
  daemon.stop();

  auto replay_stack = std::make_shared<Stack>(20170530);
  serve::ServeDaemon replayed(temporal_serve_options(replay_stack, dir.str()));
  ASSERT_TRUE(replayed.start().ok());
  EXPECT_EQ(replayed.snapshot()->epoch, 2u);
  EXPECT_EQ(replayed.snapshot()->report.dump(), before);
  replayed.stop();
}

TEST(ServeTemporal, BatchStateDirIsNotAdoptedByATemporalDaemon) {
  TempDir dir("dockmine-temporal-mismatch");
  {
    serve::ServeOptions options;
    options.job.repositories = 4;
    options.job.seed = 20170530;
    options.job.shards = 1;
    options.job.download_workers = 2;
    options.job.analyze_workers = 2;
    options.state_dir = dir.str();
    serve::ServeDaemon batch_daemon(options);
    ASSERT_TRUE(batch_daemon.start().ok());
    batch_daemon.stop();
  }
  auto stack = std::make_shared<Stack>(20170530);
  serve::ServeDaemon temporal_daemon(
      temporal_serve_options(stack, dir.str()));
  auto status = temporal_daemon.start();
  EXPECT_FALSE(status.ok());
}

}  // namespace
