#include <gtest/gtest.h>

#include <set>

#include "dockmine/core/trace.h"

namespace dockmine::core {
namespace {

std::vector<CachedImage> toy_images(std::size_t n) {
  std::vector<CachedImage> images(n);
  for (std::size_t i = 0; i < n; ++i) {
    images[i].layer_keys = {i * 2 + 1, i * 2 + 2};
    images[i].layer_sizes = {1'000'000, 500'000};
    images[i].popularity_weight = 1.0;
  }
  return images;
}

TEST(TraceGeneratorTest, ArrivalRateAndOrdering) {
  PullTraceGenerator::Options options;
  options.rate_per_s = 50.0;
  options.seed = 7;
  PullTraceGenerator generator(std::vector<double>(20, 1.0), options);
  const auto trace = generator.generate(100.0);
  EXPECT_NEAR(static_cast<double>(trace.size()), 5000.0, 300.0);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].time_s, trace[i - 1].time_s);
    EXPECT_LT(trace[i].image, 20u);
  }
}

TEST(TraceGeneratorTest, DeterministicForSeed) {
  PullTraceGenerator::Options options;
  options.seed = 9;
  PullTraceGenerator a(std::vector<double>(10, 1.0), options);
  PullTraceGenerator b(std::vector<double>(10, 1.0), options);
  const auto ta = a.generate(20.0);
  const auto tb = b.generate(20.0);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].image, tb[i].image);
    EXPECT_DOUBLE_EQ(ta[i].time_s, tb[i].time_s);
  }
}

TEST(TraceGeneratorTest, WeightsSkewChoices) {
  std::vector<double> weights(10, 1.0);
  weights[3] = 1000.0;
  PullTraceGenerator::Options options;
  options.rate_per_s = 100.0;
  PullTraceGenerator generator(weights, options);
  std::size_t hot = 0, total = 0;
  generator.generate(100.0, [&](const PullEvent& event) {
    ++total;
    hot += event.image == 3;
  });
  EXPECT_GT(static_cast<double>(hot) / static_cast<double>(total), 0.9);
}

TEST(TraceGeneratorTest, DriftMovesMassToTrendingSet) {
  PullTraceGenerator::Options options;
  options.rate_per_s = 100.0;
  options.drift_fraction = 0.5;
  options.drift_period_s = 10.0;
  // Uniform base weights over many images: without drift, no image gets
  // a large share; with 50% drift to a small hot set, some must.
  PullTraceGenerator generator(std::vector<double>(500, 1.0), options);
  std::vector<std::size_t> counts(500, 0);
  std::size_t total = 0;
  generator.generate(50.0, [&](const PullEvent& event) {
    ++counts[event.image];
    ++total;
  });
  const std::size_t max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(static_cast<double>(max_count) / static_cast<double>(total),
            0.01);  // >> 1/500 = 0.002
}

TEST(ReplayTest, PerfectCacheBeatsNoCache) {
  const auto images = toy_images(50);
  PullTraceGenerator::Options options;
  options.rate_per_s = 100.0;
  PullTraceGenerator generator(std::vector<double>(50, 1.0), options);
  const auto trace = generator.generate(60.0);
  const registry::CostModel cost;

  const auto cold = replay_trace(trace, images, /*capacity=*/0, cost);
  const auto warm =
      replay_trace(trace, images, /*capacity=*/1ULL << 40, cost);
  EXPECT_EQ(cold.layer_hits, 0u);
  EXPECT_GT(warm.hit_ratio(), 0.9);
  EXPECT_LT(warm.pull_latency_ms.median(), cold.pull_latency_ms.median());
  EXPECT_GT(warm.origin_offload(), 0.9);
  EXPECT_EQ(cold.origin_offload(), 0.0);
  EXPECT_EQ(warm.pulls, trace.size());
  EXPECT_EQ(warm.served_bytes, cold.served_bytes);
}

TEST(ReplayTest, LatencyAccountsTransferCosts) {
  std::vector<CachedImage> images(1);
  images[0].layer_keys = {42};
  images[0].layer_sizes = {10'000'000};  // 10 MB
  images[0].popularity_weight = 1.0;
  std::vector<PullEvent> trace = {{0.0, 0}, {1.0, 0}};
  registry::CostModel cost;
  cost.base_ms = 40;
  cost.per_mb_ms = 10;
  const auto result = replay_trace(trace, images, 1ULL << 30, cost,
                                   /*cache_per_mb_ms=*/1.0);
  // First pull: 40 + 40 + 100 ms (base + origin base + 10 MB); second:
  // 40 + 10 (cache transfer).
  EXPECT_DOUBLE_EQ(result.pull_latency_ms.max(), 40 + cost.transfer_ms(10'000'000));
  EXPECT_DOUBLE_EQ(result.pull_latency_ms.min(), 40 + 10.0);
}

}  // namespace
}  // namespace dockmine::core
