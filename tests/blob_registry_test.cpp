#include <gtest/gtest.h>

#include "dockmine/blob/store.h"
#include "dockmine/registry/manifest.h"
#include "dockmine/registry/search.h"
#include "dockmine/registry/service.h"

namespace dockmine {
namespace {

using registry::LayerRef;
using registry::Manifest;
using registry::Repository;
using registry::Service;

// ---------- blob store ----------

TEST(BlobStoreTest, PutGetRoundTrip) {
  blob::Store store;
  const auto digest = store.put("layer bytes");
  auto fetched = store.get(digest);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*fetched.value(), "layer bytes");
  EXPECT_EQ(store.stat(digest).value(), 11u);
  EXPECT_TRUE(store.contains(digest));
}

TEST(BlobStoreTest, DedupAccountsLogicalVsPhysical) {
  blob::Store store;
  store.put("shared content");
  store.put("shared content");
  store.put("unique");
  const auto stats = store.stats();
  EXPECT_EQ(stats.puts, 3u);
  EXPECT_EQ(stats.dedup_hits, 1u);
  EXPECT_EQ(stats.unique_blobs, 2u);
  EXPECT_EQ(stats.logical_bytes, 14u + 14u + 6u);
  EXPECT_EQ(stats.physical_bytes, 14u + 6u);
  EXPECT_NEAR(stats.dedup_ratio(), 34.0 / 20.0, 1e-12);
}

TEST(BlobStoreTest, MissingBlobIsNotFound) {
  blob::Store store;
  auto missing = store.get(digest::Digest::of("nothing"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code(), util::ErrorCode::kNotFound);
}

TEST(BlobStoreTest, SyntheticDigestInsertAndCollisionGuard) {
  blob::Store store;
  const auto d = digest::Digest::from_u64(7);
  EXPECT_TRUE(store.put_with_digest(d, "aaaa").ok());
  EXPECT_TRUE(store.put_with_digest(d, "aaaa").ok());   // same size: dedup
  EXPECT_FALSE(store.put_with_digest(d, "aaaaa").ok()); // size mismatch
}

// ---------- repository names ----------

TEST(RepoNameTest, OfficialVsUser) {
  EXPECT_TRUE(registry::is_official_name("nginx"));
  EXPECT_FALSE(registry::is_official_name("alice/app"));
}

TEST(RepoNameTest, Validation) {
  EXPECT_TRUE(registry::is_valid_repository_name("nginx"));
  EXPECT_TRUE(registry::is_valid_repository_name("alice/my-app_1.0"));
  EXPECT_FALSE(registry::is_valid_repository_name(""));
  EXPECT_FALSE(registry::is_valid_repository_name("/app"));
  EXPECT_FALSE(registry::is_valid_repository_name("alice/"));
  EXPECT_FALSE(registry::is_valid_repository_name("a//b"));
  EXPECT_FALSE(registry::is_valid_repository_name("a/b/c"));
  EXPECT_FALSE(registry::is_valid_repository_name("UPPER/case"));
}

// ---------- manifest codec ----------

Manifest sample_manifest() {
  Manifest m;
  m.repository = "alice/app";
  m.tag = "latest";
  m.config_digest = digest::Digest::of("config");
  m.config_size = 42;
  m.layers.push_back(LayerRef{digest::Digest::of("l1"), 1000});
  m.layers.push_back(LayerRef{digest::Digest::of("l2"), 2000});
  return m;
}

TEST(ManifestTest, JsonRoundTrip) {
  const Manifest in = sample_manifest();
  auto out = registry::manifest_from_json(manifest_to_json(in));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().repository, in.repository);
  EXPECT_EQ(out.value().tag, "latest");
  ASSERT_EQ(out.value().layers.size(), 2u);
  EXPECT_EQ(out.value().layers[0].digest, in.layers[0].digest);
  EXPECT_EQ(out.value().layers[1].compressed_size, 2000u);
  EXPECT_EQ(out.value().config_digest, in.config_digest);
  EXPECT_EQ(out.value().compressed_image_size(), 3000u);
}

TEST(ManifestTest, SerializationIsByteStable) {
  // Manifests are content-addressed; serialization must be deterministic.
  EXPECT_EQ(manifest_to_json(sample_manifest()),
            manifest_to_json(sample_manifest()));
}

TEST(ManifestTest, RejectsBadSchema) {
  EXPECT_FALSE(registry::manifest_from_json("not json").ok());
  EXPECT_FALSE(registry::manifest_from_json("{}").ok());
  EXPECT_FALSE(
      registry::manifest_from_json(R"({"schemaVersion":1,"layers":[]})").ok());
  std::string good = manifest_to_json(sample_manifest());
  // Corrupt a digest in place.
  const auto pos = good.find("sha256:");
  std::string bad = good;
  bad.replace(pos, 12, "sha256:zzzz!");
  EXPECT_FALSE(registry::manifest_from_json(bad).ok());
}

// ---------- service ----------

TEST(ServiceTest, PushThenPullManifestAndBlobs) {
  Service service;
  const auto blob_digest = service.push_blob("layer-1 data");
  Manifest m;
  m.repository = "alice/app";
  m.layers.push_back(LayerRef{blob_digest, 12});
  ASSERT_TRUE(service.push_manifest(m).ok());

  auto body = service.get_manifest("alice/app", "latest");
  ASSERT_TRUE(body.ok());
  auto parsed = registry::manifest_from_json(body.value());
  ASSERT_TRUE(parsed.ok());
  auto blob = service.get_blob(parsed.value().layers[0].digest);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(*blob.value(), "layer-1 data");
}

TEST(ServiceTest, UnknownRepoAndTagAre404) {
  Service service;
  Manifest m;
  m.repository = "bob/tool";
  m.tag = "v1";  // no latest!
  ASSERT_TRUE(service.push_manifest(m).ok());

  auto missing_repo = service.get_manifest("nobody/nothing", "latest");
  EXPECT_EQ(missing_repo.error().code(), util::ErrorCode::kNotFound);
  auto missing_tag = service.get_manifest("bob/tool", "latest");
  EXPECT_EQ(missing_tag.error().code(), util::ErrorCode::kNotFound);
  EXPECT_NE(missing_tag.error().message().find("has no tag"),
            std::string::npos);
  EXPECT_EQ(service.stats().not_found, 2u);
}

TEST(ServiceTest, AuthGateReturns401WithoutToken) {
  Service service;
  Manifest m;
  m.repository = "corp/private";
  ASSERT_TRUE(service.push_manifest(m).ok());
  Repository repo = *service.find_repository("corp/private");
  repo.requires_auth = true;
  // put_repository must preserve tags set by push_manifest.
  service.put_repository(repo);

  auto denied = service.get_manifest("corp/private", "latest");
  EXPECT_EQ(denied.error().code(), util::ErrorCode::kUnauthorized);
  auto allowed = service.get_manifest("corp/private", "latest",
                                      /*authenticated=*/true);
  EXPECT_TRUE(allowed.ok());
  EXPECT_EQ(service.stats().unauthorized, 1u);
}

TEST(ServiceTest, RejectsInvalidRepositoryName) {
  Service service;
  Manifest m;
  m.repository = "Bad/Name!";
  EXPECT_FALSE(service.push_manifest(m).ok());
}

TEST(ServiceTest, CostModelAccumulates) {
  registry::CostModel cost;
  cost.base_ms = 10;
  cost.per_mb_ms = 5;
  Service service(cost);
  const auto d = service.push_blob(std::string(2'000'000, 'x'));
  (void)service.get_blob(d);
  EXPECT_NEAR(service.stats().simulated_ms, 10 + 5 * 2.0, 1e-9);
  EXPECT_EQ(service.stats().bytes_served, 2'000'000u);
}

// ---------- search ----------

TEST(SearchTest, PaginatesAndInjectsDuplicates) {
  Service service;
  for (int i = 0; i < 50; ++i) {
    Manifest m;
    m.repository = "user" + std::to_string(i) + "/app";
    ASSERT_TRUE(service.push_manifest(m).ok());
  }
  Manifest official;
  official.repository = "nginx";
  ASSERT_TRUE(service.push_manifest(official).ok());

  registry::SearchIndex index(service, /*duplicate_factor=*/1.4, /*seed=*/3);
  EXPECT_EQ(index.raw_entry_count(), 51 + (51 * 4) / 10);

  // Page through the "/" query: every hit is a user repo.
  std::size_t hits = 0;
  for (std::uint64_t page_no = 0;; ++page_no) {
    const auto page = index.page("/", page_no, 10);
    for (const auto& hit : page.hits) {
      EXPECT_NE(hit.repository.find('/'), std::string::npos);
      ++hits;
    }
    if (!page.has_next) break;
  }
  EXPECT_GE(hits, 50u);   // every user repo present (plus duplicates)
  EXPECT_LT(hits, 75u);

  // Empty query matches everything, including the official.
  const auto all = index.page("", 0, 1000);
  EXPECT_EQ(all.hits.size(), index.raw_entry_count());
  // Substring query.
  const auto sub = index.page("nginx", 0, 10);
  ASSERT_FALSE(sub.hits.empty());
  EXPECT_EQ(sub.hits[0].repository, "nginx");
}

TEST(SearchTest, OutOfRangePageIsEmpty) {
  Service service;
  Manifest m;
  m.repository = "a/b";
  ASSERT_TRUE(service.push_manifest(m).ok());
  registry::SearchIndex index(service, 1.0, 1);
  const auto page = index.page("/", 99, 10);
  EXPECT_TRUE(page.hits.empty());
  EXPECT_FALSE(page.has_next);
}

}  // namespace
}  // namespace dockmine
