// Unit tests for the coordinator<->worker wire protocol (core/wire) and
// the coordinator-side lease state machine (core/lease).
//
// The framing tests are deliberately adversarial: every truncation point
// of a valid frame must read as "need more bytes", and every single-bit
// flip of an encoded frame must be rejected (poisoning the stream) —
// corrupted frames may cost a lease but can never deliver altered bytes.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dockmine/core/lease.h"
#include "dockmine/core/wire.h"
#include "dockmine/digest/digest.h"
#include "dockmine/json/json.h"
#include "dockmine/util/error.h"

namespace wire = dockmine::core::wire;
using dockmine::core::JobSpec;
using dockmine::core::LeaseState;
using dockmine::core::LeaseTable;
using dockmine::util::ErrorCode;

namespace {

// Feed a byte string and poll a single frame out, expecting success.
wire::Frame decode_one(const std::string& bytes) {
  wire::FrameBuffer buffer;
  buffer.feed(bytes);
  wire::Frame frame;
  auto polled = buffer.poll(frame);
  EXPECT_TRUE(polled.ok()) << polled.error().message();
  EXPECT_TRUE(polled.ok() && polled.value());
  return frame;
}

TEST(DistWire, FrameRoundtrip) {
  const std::string payload = "{\"type\":\"hello\",\"worker\":7}";
  const std::string encoded = wire::encode_frame(wire::FrameKind::kJson, payload);
  ASSERT_EQ(encoded.size(), wire::kFrameHeaderBytes + payload.size());

  const wire::Frame frame = decode_one(encoded);
  EXPECT_EQ(frame.kind, wire::FrameKind::kJson);
  EXPECT_EQ(frame.payload, payload);
}

TEST(DistWire, EmptyAndBinaryPayloads) {
  const wire::Frame empty =
      decode_one(wire::encode_frame(wire::FrameKind::kJson, ""));
  EXPECT_TRUE(empty.payload.empty());

  std::string blob(4096, '\0');
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<char>(i * 31 + 7);
  }
  const wire::Frame binary =
      decode_one(wire::encode_frame(wire::FrameKind::kBinary, blob));
  EXPECT_EQ(binary.kind, wire::FrameKind::kBinary);
  EXPECT_EQ(binary.payload, blob);
}

TEST(DistWire, ByteAtATimeReassembly) {
  const std::string a = wire::encode_frame(wire::FrameKind::kJson, "{\"a\":1}");
  const std::string b = wire::encode_frame(wire::FrameKind::kBinary, "bytes");
  const std::string stream = a + b;

  wire::FrameBuffer buffer;
  std::vector<wire::Frame> frames;
  for (char byte : stream) {
    buffer.feed(std::string_view(&byte, 1));
    wire::Frame frame;
    auto polled = buffer.poll(frame);
    ASSERT_TRUE(polled.ok());
    if (polled.value()) frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].payload, "{\"a\":1}");
  EXPECT_EQ(frames[1].kind, wire::FrameKind::kBinary);
  EXPECT_EQ(frames[1].payload, "bytes");
}

TEST(DistWire, EveryTruncationNeedsMoreBytes) {
  const std::string encoded =
      wire::encode_frame(wire::FrameKind::kJson, "{\"type\":\"shutdown\"}");
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    wire::FrameBuffer buffer;
    buffer.feed(std::string_view(encoded).substr(0, cut));
    wire::Frame frame;
    auto polled = buffer.poll(frame);
    ASSERT_TRUE(polled.ok()) << "cut=" << cut << ": " << polled.error().message();
    EXPECT_FALSE(polled.value()) << "cut=" << cut;
    EXPECT_FALSE(buffer.corrupt());

    // The remainder completes the frame — truncation is never sticky.
    buffer.feed(std::string_view(encoded).substr(cut));
    auto finished = buffer.poll(frame);
    ASSERT_TRUE(finished.ok());
    EXPECT_TRUE(finished.value()) << "cut=" << cut;
    EXPECT_EQ(frame.payload, "{\"type\":\"shutdown\"}");
  }
}

TEST(DistWire, EverySingleBitFlipIsRejected) {
  const std::string payload = "{\"type\":\"heartbeat\",\"worker\":3,\"lease\":1}";
  const std::string encoded = wire::encode_frame(wire::FrameKind::kJson, payload);

  for (std::size_t byte = 0; byte < encoded.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = encoded;
      flipped[byte] = static_cast<char>(
          static_cast<unsigned char>(flipped[byte]) ^ (1u << bit));

      wire::FrameBuffer buffer;
      buffer.feed(flipped);
      wire::Frame frame;
      auto polled = buffer.poll(frame);
      // A flip may make the buffer wait for (nonexistent) extra payload
      // bytes, or poison the stream outright — but it must never deliver.
      if (polled.ok()) {
        EXPECT_FALSE(polled.value())
            << "delivered altered frame at byte " << byte << " bit " << bit;
      } else {
        EXPECT_EQ(polled.error().code(), ErrorCode::kCorrupt);
        EXPECT_TRUE(buffer.corrupt());
      }
    }
  }
}

TEST(DistWire, CorruptionPoisonsTheStream) {
  wire::FrameBuffer buffer;
  buffer.feed("XXXXgarbage that is definitely not a frame header");
  wire::Frame frame;
  auto first = buffer.poll(frame);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.error().code(), ErrorCode::kCorrupt);
  EXPECT_TRUE(buffer.corrupt());

  // Even a subsequently-fed valid frame must not resurrect the stream.
  buffer.feed(wire::encode_frame(wire::FrameKind::kJson, "{}"));
  auto second = buffer.poll(frame);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code(), ErrorCode::kCorrupt);
}

TEST(DistWire, OversizedLengthIsCorrupt) {
  std::string encoded = wire::encode_frame(wire::FrameKind::kJson, "x");
  const std::uint32_t huge = wire::kMaxFramePayload + 1;
  encoded[8] = static_cast<char>(huge & 0xff);
  encoded[9] = static_cast<char>((huge >> 8) & 0xff);
  encoded[10] = static_cast<char>((huge >> 16) & 0xff);
  encoded[11] = static_cast<char>((huge >> 24) & 0xff);

  wire::FrameBuffer buffer;
  buffer.feed(encoded);
  wire::Frame frame;
  auto polled = buffer.poll(frame);
  ASSERT_FALSE(polled.ok());
  EXPECT_EQ(polled.error().code(), ErrorCode::kCorrupt);
}

TEST(DistWire, UnknownKindAndNonzeroFlagsAreCorrupt) {
  for (int tweak = 0; tweak < 2; ++tweak) {
    std::string encoded = wire::encode_frame(wire::FrameKind::kJson, "{}");
    if (tweak == 0) {
      encoded[4] = 9;  // unknown kind
    } else {
      encoded[5] = 1;  // flags must be zero
    }
    wire::FrameBuffer buffer;
    buffer.feed(encoded);
    wire::Frame frame;
    auto polled = buffer.poll(frame);
    ASSERT_FALSE(polled.ok()) << "tweak=" << tweak;
    EXPECT_EQ(polled.error().code(), ErrorCode::kCorrupt);
  }
}

// ---- codec roundtrips --------------------------------------------------

TEST(DistWire, JobSpecRoundtrip) {
  JobSpec spec;
  spec.repositories = 123;
  spec.seed = 42;
  spec.light_calibration = false;
  spec.gzip_level = 6;
  spec.download_workers = 7;
  spec.analyze_workers = 3;
  spec.mode = dockmine::core::ExecutionMode::kStreamed;
  spec.shards = 16;
  spec.spill_threshold_bytes = 1ull << 30;

  auto parsed = wire::job_spec_from_json(wire::job_spec_to_json(spec));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  const JobSpec& got = parsed.value();
  EXPECT_EQ(got.repositories, spec.repositories);
  EXPECT_EQ(got.seed, spec.seed);
  EXPECT_EQ(got.light_calibration, spec.light_calibration);
  EXPECT_EQ(got.gzip_level, spec.gzip_level);
  EXPECT_EQ(got.download_workers, spec.download_workers);
  EXPECT_EQ(got.analyze_workers, spec.analyze_workers);
  EXPECT_EQ(got.mode, spec.mode);
  EXPECT_EQ(got.shards, spec.shards);
  EXPECT_EQ(got.spill_threshold_bytes, spec.spill_threshold_bytes);
}

TEST(DistWire, JobSpecRejectsOutOfRange) {
  JobSpec spec;
  dockmine::json::Value doc = wire::job_spec_to_json(spec);
  doc.set("download_workers", std::uint64_t{0});
  EXPECT_FALSE(wire::job_spec_from_json(doc).ok());

  doc = wire::job_spec_to_json(spec);
  doc.set("shards", std::uint64_t{5000});
  EXPECT_FALSE(wire::job_spec_from_json(doc).ok());

  doc = wire::job_spec_to_json(spec);
  doc.set("mode", "warp-speed");
  EXPECT_FALSE(wire::job_spec_from_json(doc).ok());
}

TEST(DistWire, ProfileRoundtrips) {
  dockmine::analyzer::LayerProfile layer;
  layer.digest = dockmine::digest::Digest::of("layer-bytes");
  layer.fls = 1000;
  layer.cls = 250;
  layer.file_count = 12;
  layer.dir_count = 3;
  layer.max_depth = 5;

  auto layer_parsed =
      wire::layer_profile_from_json(wire::layer_profile_to_json(layer));
  ASSERT_TRUE(layer_parsed.ok()) << layer_parsed.error().message();
  EXPECT_EQ(layer_parsed.value().digest, layer.digest);
  EXPECT_EQ(layer_parsed.value().fls, layer.fls);
  EXPECT_EQ(layer_parsed.value().cls, layer.cls);
  EXPECT_EQ(layer_parsed.value().file_count, layer.file_count);
  EXPECT_EQ(layer_parsed.value().dir_count, layer.dir_count);
  EXPECT_EQ(layer_parsed.value().max_depth, layer.max_depth);

  dockmine::analyzer::ImageProfile image;
  image.repository = "library/nginx";
  image.fis = 2000;
  image.cis = 800;
  image.file_count = 40;
  image.dir_count = 9;
  image.layer_count = 4;

  auto image_parsed =
      wire::image_profile_from_json(wire::image_profile_to_json(image));
  ASSERT_TRUE(image_parsed.ok()) << image_parsed.error().message();
  EXPECT_EQ(image_parsed.value().repository, image.repository);
  EXPECT_EQ(image_parsed.value().fis, image.fis);
  EXPECT_EQ(image_parsed.value().cis, image.cis);
  EXPECT_EQ(image_parsed.value().file_count, image.file_count);
  EXPECT_EQ(image_parsed.value().dir_count, image.dir_count);
  EXPECT_EQ(image_parsed.value().layer_count, image.layer_count);
}

wire::LeaseResult sample_result() {
  wire::LeaseResult result;
  result.worker = 2;
  result.lease = 1;
  result.attempt = 3;
  result.manifests_pushed = 17;

  dockmine::analyzer::ImageProfile image;
  image.repository = "alice/app";
  image.fis = 512;
  image.cis = 128;
  image.file_count = 6;
  image.dir_count = 2;
  image.layer_count = 2;
  result.images.push_back(image);

  dockmine::registry::Manifest manifest;
  manifest.repository = "alice/app";
  manifest.tag = "v1";
  manifest.config_digest = dockmine::digest::Digest::of("config");
  manifest.config_size = 99;
  manifest.layers.push_back(
      {dockmine::digest::Digest::of("layer-0"), 4096});
  result.manifests.push_back(manifest);

  dockmine::analyzer::LayerProfile layer;
  layer.digest = dockmine::digest::Digest::of("layer-0");
  layer.fls = 8192;
  layer.cls = 4096;
  layer.file_count = 3;
  layer.dir_count = 1;
  layer.max_depth = 2;
  result.layer_profiles.push_back(layer);

  result.shard_summary.enabled = true;
  result.shard_summary.shards = 4;
  result.shard_summary.observations = 3;
  result.files.push_back({"shard-000.run", 4096});
  result.files.push_back({"manifest.json", 128});
  return result;
}

TEST(DistWire, LeaseResultRoundtrip) {
  const wire::LeaseResult result = sample_result();
  auto parsed = wire::lease_result_from_json(wire::lease_result_to_json(result));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  const wire::LeaseResult& got = parsed.value();

  EXPECT_EQ(got.worker, result.worker);
  EXPECT_EQ(got.lease, result.lease);
  EXPECT_EQ(got.attempt, result.attempt);
  EXPECT_EQ(got.manifests_pushed, result.manifests_pushed);
  ASSERT_EQ(got.images.size(), 1u);
  EXPECT_EQ(got.images[0].repository, "alice/app");
  ASSERT_EQ(got.manifests.size(), 1u);
  EXPECT_EQ(got.manifests[0].tag, "v1");
  ASSERT_EQ(got.manifests[0].layers.size(), 1u);
  EXPECT_EQ(got.manifests[0].layers[0].compressed_size, 4096u);
  ASSERT_EQ(got.layer_profiles.size(), 1u);
  EXPECT_EQ(got.layer_profiles[0].fls, 8192u);
  ASSERT_EQ(got.files.size(), 2u);
  EXPECT_EQ(got.files[0].name, "shard-000.run");
  EXPECT_EQ(got.files[0].size, 4096u);
}

TEST(DistWire, LeaseResultRejectsUnsafeFileNames) {
  for (const char* name : {"../escape", "a/b", "sub\\dir", ".hidden", ""}) {
    wire::LeaseResult result = sample_result();
    result.files = {{name, 1}};
    auto parsed =
        wire::lease_result_from_json(wire::lease_result_to_json(result));
    EXPECT_FALSE(parsed.ok()) << "accepted unsafe name: " << name;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.error().code(), ErrorCode::kCorrupt);
    }
  }
}

// ---- lease state machine (virtual clock) -------------------------------

TEST(DistLease, AssignCompleteLifecycle) {
  LeaseTable table(3);
  EXPECT_EQ(table.count(), 3u);
  EXPECT_FALSE(table.all_done());

  auto next = table.next_pending(0.0);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 0u);

  ASSERT_TRUE(table.assign(0, /*worker=*/10, /*now_ms=*/100.0).ok());
  EXPECT_EQ(table.status(0).state, LeaseState::kRunning);
  EXPECT_EQ(table.status(0).attempts, 1u);

  // A running lease cannot be plain-assigned again.
  EXPECT_FALSE(table.assign(0, 11, 110.0).ok());

  // next_pending skips the running lease.
  next = table.next_pending(120.0);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 1u);

  EXPECT_TRUE(table.complete(0, 400.0));
  EXPECT_EQ(table.status(0).state, LeaseState::kDone);
  EXPECT_EQ(table.done(), 1u);

  ASSERT_TRUE(table.assign(1, 10, 500.0).ok());
  ASSERT_TRUE(table.assign(2, 11, 500.0).ok());
  EXPECT_TRUE(table.complete(1, 700.0));
  EXPECT_TRUE(table.complete(2, 900.0));
  EXPECT_TRUE(table.all_done());
  EXPECT_FALSE(table.next_pending(1000.0).has_value());
}

TEST(DistLease, DuplicateCompletionFirstWins) {
  LeaseTable table(1);
  ASSERT_TRUE(table.assign(0, 10, 0.0).ok());
  ASSERT_TRUE(table.assign_duplicate(0, 11).ok());
  EXPECT_EQ(table.status(0).owners.size(), 2u);
  EXPECT_EQ(table.status(0).attempts, 2u);

  EXPECT_TRUE(table.complete(0, 50.0));   // first completion counts
  EXPECT_FALSE(table.complete(0, 60.0));  // straggler's copy is discarded
  EXPECT_TRUE(table.all_done());
}

TEST(DistLease, ReleaseOwnerReassignsOrphanedLeases) {
  LeaseTable table(3);
  ASSERT_TRUE(table.assign(0, 10, 0.0).ok());
  ASSERT_TRUE(table.assign(1, 10, 0.0).ok());
  ASSERT_TRUE(table.assign(2, 11, 0.0).ok());

  // Worker 10 dies owning leases 0 and 1: both return to pending.
  const std::vector<std::uint32_t> orphaned =
      table.release_owner(10, /*backoff_until_ms=*/200.0);
  EXPECT_EQ(orphaned.size(), 2u);
  EXPECT_EQ(table.status(0).state, LeaseState::kPending);
  EXPECT_EQ(table.status(1).state, LeaseState::kPending);
  EXPECT_EQ(table.status(2).state, LeaseState::kRunning);

  // Backoff gates re-dispatch on the virtual clock.
  EXPECT_FALSE(table.next_pending(100.0).has_value());
  auto retry = table.next_pending(250.0);
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(*retry, 0u);
}

TEST(DistLease, DuplicateOwnerKeepsLeaseRunningAfterDeath) {
  LeaseTable table(1);
  ASSERT_TRUE(table.assign(0, 10, 0.0).ok());
  ASSERT_TRUE(table.assign_duplicate(0, 11).ok());

  // The original owner dies; the straggler duplicate still covers the
  // lease, so nothing returns to pending.
  const auto orphaned = table.release_owner(10, 100.0);
  EXPECT_TRUE(orphaned.empty());
  EXPECT_EQ(table.status(0).state, LeaseState::kRunning);
  ASSERT_EQ(table.status(0).owners.size(), 1u);
  EXPECT_EQ(table.status(0).owners[0], 11u);

  EXPECT_TRUE(table.complete(0, 150.0));
  EXPECT_TRUE(table.all_done());
}

TEST(DistLease, FailReturnsLeaseToPendingUnlessDuplicated) {
  LeaseTable table(2);
  ASSERT_TRUE(table.assign(0, 10, 0.0).ok());
  EXPECT_TRUE(table.fail(0, 10, /*backoff_until_ms=*/300.0));
  EXPECT_EQ(table.status(0).state, LeaseState::kPending);
  EXPECT_FALSE(table.next_pending(200.0).has_value() &&
               table.next_pending(200.0).value() == 0u);
  auto after_backoff = table.next_pending(350.0);
  ASSERT_TRUE(after_backoff.has_value());
  EXPECT_EQ(*after_backoff, 0u);

  // With a duplicate owner the failure of one worker keeps it running.
  ASSERT_TRUE(table.assign(1, 10, 400.0).ok());
  ASSERT_TRUE(table.assign_duplicate(1, 11).ok());
  EXPECT_FALSE(table.fail(1, 10, 500.0));
  EXPECT_EQ(table.status(1).state, LeaseState::kRunning);

  // fail() from a non-owner is a no-op.
  EXPECT_FALSE(table.fail(1, 99, 600.0));
}

TEST(DistLease, MedianCompletedRuntime) {
  LeaseTable table(3);
  EXPECT_EQ(table.median_completed_ms(), 0.0);

  ASSERT_TRUE(table.assign(0, 10, 0.0).ok());
  EXPECT_TRUE(table.complete(0, 100.0));
  EXPECT_EQ(table.median_completed_ms(), 100.0);

  ASSERT_TRUE(table.assign(1, 10, 0.0).ok());
  EXPECT_TRUE(table.complete(1, 300.0));
  ASSERT_TRUE(table.assign(2, 10, 0.0).ok());
  EXPECT_TRUE(table.complete(2, 500.0));
  EXPECT_EQ(table.median_completed_ms(), 300.0);
}

}  // namespace
