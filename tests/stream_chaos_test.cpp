// Chaos for the streamed pipeline: kill it mid-stream and resume from the
// checkpoint; run it over a faulty transport; in every case the converged
// canonical analysis report must be byte-identical to an undisturbed run.
//
// Mirrors the paper's operational reality — a weeks-long crawl that was
// killed, resumed, and rate-limited — on top of the seeded fault injector,
// so every scenario replays deterministically.
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "dockmine/core/pipeline.h"
#include "dockmine/downloader/checkpoint.h"

namespace dockmine::core {
namespace {

constexpr std::uint64_t kSeed = 20170530;

PipelineOptions chaos_options() {
  PipelineOptions options;
  // Light calibration: bytes-mode runs materialize every file for real.
  options.calibration = synth::Calibration::light();
  options.scale = synth::Scale{60, kSeed};
  options.gzip_level = 1;
  options.mode = ExecutionMode::kStreamed;
  options.queue_depth = 4;
  return options;
}

std::string fault_free_report() {
  static const std::string* report = [] {
    auto result = run_end_to_end(chaos_options());
    EXPECT_TRUE(result.ok());
    return new std::string(analysis_report_json(result.value()).dump());
  }();
  return *report;
}

TEST(StreamChaosTest, KillMidStreamThenResumeMatchesUninterruptedRun) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "stream_chaos_ckpt";
  std::filesystem::remove_all(dir);

  std::uint64_t interrupted_analyzed = 0;
  {
    auto checkpoint = downloader::Checkpoint::open(dir);
    ASSERT_TRUE(checkpoint.ok());

    // Kill: cancel the run once the analyzers have seen 25 layers, while
    // downloads are still in flight.
    std::atomic<bool> cancel{false};
    PipelineOptions options = chaos_options();
    options.checkpoint = &checkpoint.value();
    options.cancel = &cancel;
    options.on_layer_analyzed = [&](std::uint64_t analyzed) {
      if (analyzed >= 25) cancel.store(true, std::memory_order_relaxed);
    };

    auto interrupted = run_end_to_end(options);
    ASSERT_TRUE(interrupted.ok());
    EXPECT_GT(interrupted.value().download.repos_canceled, 0u)
        << "the kill fired too late to cancel anything";
    interrupted_analyzed = interrupted.value().stream.layers_analyzed;
    EXPECT_GE(interrupted_analyzed, 25u);
  }

  // Resume: a fresh process reopens the checkpoint. Completed repositories
  // replay from the journal + disk store (no re-transfer); the rest
  // download normally. The rebuilt report must match a never-killed run.
  {
    auto checkpoint = downloader::Checkpoint::open(dir);
    ASSERT_TRUE(checkpoint.ok());
    PipelineOptions options = chaos_options();
    options.checkpoint = &checkpoint.value();

    auto resumed = run_end_to_end(options);
    ASSERT_TRUE(resumed.ok());
    const PipelineResult& result = resumed.value();
    EXPECT_GT(result.download.repos_resumed, 0u);
    EXPECT_GT(result.download.layers_resumed, 0u);
    EXPECT_EQ(analysis_report_json(result).dump(), fault_free_report());
  }
  std::filesystem::remove_all(dir);
}

TEST(StreamChaosTest, TransientFaultsAndCorruptionConvergeToFaultFreeReport) {
  // ~25% of requests fail transiently; ~1% of blob fetches are delivered
  // corrupted (truncated or bit-flipped). Retry/backoff handles the former
  // below the downloader, digest verification + re-fetch the latter above
  // the cache.
  registry::FaultSpec faults;
  faults.seed = 20170530;
  faults.p_unavailable = 0.15;
  faults.p_reset = 0.10;
  faults.p_slow = 0.05;
  faults.p_truncate = 0.005;
  faults.p_bitflip = 0.005;

  PipelineOptions options = chaos_options();
  options.faults = &faults;
  options.retry = {/*max_attempts=*/8, /*base_delay_ms=*/0.01,
                   /*max_delay_ms=*/0.5, /*retry_budget=*/1'000'000};
  options.breaker = {/*failure_threshold=*/12, /*cooldown_ms=*/1.0,
                     /*close_threshold=*/1};

  auto chaos = run_end_to_end(options);
  ASSERT_TRUE(chaos.ok()) << chaos.error().message();
  const PipelineResult& result = chaos.value();

  // The chaos was real...
  EXPECT_GT(result.fault_stats.total_injected(), 50u);
  EXPECT_GT(result.resilience.retries, 0u);
  // ...every corrupt blob was caught by digest verification (zero corrupt
  // profiles reached the analyzer)...
  EXPECT_EQ(result.download.failed_digest, 0u);
  // ...and the converged dataset is byte-identical to the fault-free run.
  EXPECT_EQ(analysis_report_json(result).dump(), fault_free_report());
}

TEST(StreamChaosTest, CorruptionIsAccountedNotSilentlyAnalyzed) {
  registry::FaultSpec faults;
  faults.seed = 42;
  faults.p_truncate = 0.02;
  faults.p_bitflip = 0.02;

  PipelineOptions options = chaos_options();
  options.faults = &faults;

  auto chaos = run_end_to_end(options);
  ASSERT_TRUE(chaos.ok()) << chaos.error().message();
  const PipelineResult& result = chaos.value();
  EXPECT_GT(result.fault_stats.injected_truncate +
                result.fault_stats.injected_bitflip,
            0u);
  // Corrupt transfers were detected and discarded; whatever was analyzed
  // came from verified bytes only, so the profiles referenced by delivered
  // manifests are a subset of the fault-free dataset.
  EXPECT_GT(result.download.bytes_discarded, 0u);
  EXPECT_EQ(result.stream.layers_analyzed,
            static_cast<std::uint64_t>(result.layer_profiles.size()));
}

}  // namespace
}  // namespace dockmine::core
