#include <gtest/gtest.h>

#include <set>

#include "dockmine/crawler/crawler.h"
#include "dockmine/downloader/downloader.h"
#include "dockmine/synth/generator.h"
#include "dockmine/synth/materialize.h"

namespace dockmine {
namespace {

// One materialized registry shared by every test in this binary (built
// with the light calibration: full logic, small layers).
struct Fixture {
  static Fixture& get() {
    static Fixture instance;
    return instance;
  }
  synth::HubModel hub;
  registry::Service service;

 private:
  Fixture() : hub(synth::Calibration::light(), synth::Scale{150, 77}) {
    synth::Materializer materializer(hub, /*gzip_level=*/1);
    auto pushed = materializer.populate(service);
    EXPECT_TRUE(pushed.ok());
  }
};

// ---------- crawler ----------

TEST(CrawlerTest, FindsEveryRepositoryExactlyOnce) {
  Fixture& fx = Fixture::get();
  registry::SearchIndex index(fx.service,
                              synth::Calibration::kSearchDuplicateFactor, 5);
  crawler::Crawler crawler(index, /*page_size=*/37);
  const auto result = crawler.crawl_all();

  EXPECT_EQ(result.repositories.size(), fx.hub.repositories().size());
  std::set<std::string> found(result.repositories.begin(),
                              result.repositories.end());
  for (const auto& repo : fx.hub.repositories()) {
    EXPECT_TRUE(found.count(repo.name)) << repo.name;
  }
  // Raw hits exceed distinct (the paper's 634,412 vs 457,627).
  EXPECT_GT(result.raw_hits, result.repositories.size());
  EXPECT_EQ(result.raw_hits - result.duplicates_removed,
            result.repositories.size());
  EXPECT_NEAR(static_cast<double>(result.raw_hits) /
                  static_cast<double>(result.repositories.size()),
              synth::Calibration::kSearchDuplicateFactor, 0.15);
  EXPECT_GT(result.pages_fetched, 2u);
}

TEST(CrawlerTest, QueryCrawlFiltersBySubstring) {
  Fixture& fx = Fixture::get();
  registry::SearchIndex index(fx.service, 1.0, 5);
  crawler::Crawler crawler(index);
  const auto slash = crawler.crawl("/");
  for (const auto& name : slash.repositories) {
    EXPECT_NE(name.find('/'), std::string::npos);
  }
  const auto nginx = crawler.crawl("nginx");
  ASSERT_FALSE(nginx.repositories.empty());
}

// ---------- downloader ----------

TEST(DownloaderTest, StatsAccountForEveryAttempt) {
  Fixture& fx = Fixture::get();
  std::vector<std::string> repos;
  for (const auto& repo : fx.hub.repositories()) repos.push_back(repo.name);

  downloader::Options options;
  options.workers = 4;
  downloader::Downloader downloader(fx.service, options);
  std::vector<downloader::DownloadedImage> images;
  const auto stats = downloader.run(
      repos, [&](downloader::DownloadedImage&& image) {
        images.push_back(std::move(image));
      });

  EXPECT_EQ(stats.attempted, repos.size());
  EXPECT_EQ(stats.accounted(), stats.attempted);
  EXPECT_EQ(stats.succeeded, fx.hub.downloadable_images());
  EXPECT_EQ(images.size(), stats.succeeded);
  EXPECT_EQ(stats.failed_missing, 0u);
  EXPECT_EQ(stats.failed_other, 0u);
  EXPECT_GT(stats.failed_no_tag, stats.failed_auth);  // 87% vs 13%
  EXPECT_GT(stats.bytes_downloaded, 0u);

  // Unique-layer economy: fetched layers == distinct layers across images.
  std::set<std::string> distinct;
  for (const auto& image : images) {
    for (const auto& ref : image.manifest.layers) {
      distinct.insert(ref.digest.to_string());
    }
  }
  EXPECT_EQ(stats.layers_fetched, distinct.size());
  EXPECT_GT(stats.layers_deduped, 0u);  // the empty layer alone guarantees this
}

TEST(DownloaderTest, BlobsMatchManifestSizes) {
  Fixture& fx = Fixture::get();
  std::string target;
  for (const auto& repo : fx.hub.repositories()) {
    if (repo.has_latest && !repo.requires_auth) {
      target = repo.name;
      break;
    }
  }
  ASSERT_FALSE(target.empty());
  downloader::Downloader downloader(fx.service);
  auto image = downloader.download_one(target);
  ASSERT_TRUE(image.ok());
  ASSERT_EQ(image.value().layer_blobs.size(), image.value().manifest.layers.size());
  for (std::size_t i = 0; i < image.value().layer_blobs.size(); ++i) {
    EXPECT_EQ(image.value().layer_blobs[i]->size(),
              image.value().manifest.layers[i].compressed_size);
  }
}

TEST(DownloaderTest, AuthenticationUnlocksGatedRepos) {
  Fixture& fx = Fixture::get();
  std::string gated;
  for (const auto& repo : fx.hub.repositories()) {
    if (repo.requires_auth && repo.has_latest) {
      gated = repo.name;
      break;
    }
  }
  if (gated.empty()) GTEST_SKIP() << "no auth-gated repo at this seed";

  downloader::Downloader anonymous(fx.service);
  auto denied = anonymous.download_one(gated);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.error().code(), util::ErrorCode::kUnauthorized);

  downloader::Options options;
  options.authenticated = true;
  downloader::Downloader tokened(fx.service, options);
  EXPECT_TRUE(tokened.download_one(gated).ok());
}

TEST(DownloaderTest, DedupOffRefetchesSharedLayers) {
  Fixture& fx = Fixture::get();
  std::vector<std::string> repos;
  for (const auto& repo : fx.hub.repositories()) {
    if (repo.has_latest && !repo.requires_auth) repos.push_back(repo.name);
  }

  downloader::Options with;
  with.dedup_unique_layers = true;
  downloader::Downloader dedup_on(fx.service, with);
  const auto on = dedup_on.run(repos, nullptr);

  registry::Service fresh;  // separate service for clean transfer stats
  synth::Materializer materializer(fx.hub, 1);
  ASSERT_TRUE(materializer.populate(fresh).ok());
  downloader::Options without;
  without.dedup_unique_layers = false;
  downloader::Downloader dedup_off(fresh, without);
  const auto off = dedup_off.run(repos, nullptr);

  EXPECT_EQ(on.succeeded, off.succeeded);
  EXPECT_GT(off.bytes_downloaded, on.bytes_downloaded);
  EXPECT_EQ(off.layers_deduped, 0u);
}

TEST(DownloaderTest, MissingRepositoryCountsAsMissing) {
  Fixture& fx = Fixture::get();
  downloader::Downloader downloader(fx.service);
  const auto stats = downloader.run({"ghost/none"}, nullptr);
  EXPECT_EQ(stats.failed_missing, 1u);
  EXPECT_EQ(stats.succeeded, 0u);
}

}  // namespace
}  // namespace dockmine
