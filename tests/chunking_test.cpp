#include <gtest/gtest.h>

#include <set>

#include "dockmine/compress/content_gen.h"
#include "dockmine/dedup/chunking.h"
#include "dockmine/digest/digest.h"
#include "dockmine/util/rng.h"

namespace dockmine::dedup {
namespace {

std::string random_bytes(std::size_t size, std::uint64_t seed) {
  util::Rng rng(seed);
  std::string out;
  compress::append_random(out, size, rng);
  return out;
}

std::uint64_t cover_and_check(const std::vector<Chunk>& chunks,
                              std::size_t total) {
  std::uint64_t offset = 0;
  for (const Chunk& chunk : chunks) {
    EXPECT_EQ(chunk.offset, offset);
    EXPECT_GT(chunk.size, 0u);
    offset += chunk.size;
  }
  EXPECT_EQ(offset, total);
  return offset;
}

TEST(FixedChunkerTest, ExactCoverage) {
  const std::string content = random_bytes(10000, 1);
  const FixedChunker chunker(4096);
  const auto chunks = chunker.chunk(content);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].size, 4096u);
  EXPECT_EQ(chunks[2].size, 10000u - 8192u);
  cover_and_check(chunks, content.size());
  EXPECT_TRUE(chunker.chunk("").empty());
}

TEST(GearChunkerTest, CoverageAndBounds) {
  const std::string content = random_bytes(256 * 1024, 2);
  const GearChunker chunker(4096);
  const auto chunks = chunker.chunk(content);
  cover_and_check(chunks, content.size());
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {  // last may be short
    EXPECT_GE(chunks[i].size, chunker.min_size());
    EXPECT_LE(chunks[i].size, chunker.max_size());
  }
  // Average chunk size within 2x of the target.
  const double average =
      static_cast<double>(content.size()) / static_cast<double>(chunks.size());
  EXPECT_GT(average, 4096.0 / 2);
  EXPECT_LT(average, 4096.0 * 2);
}

TEST(GearChunkerTest, Deterministic) {
  const std::string content = random_bytes(64 * 1024, 3);
  const GearChunker chunker(2048);
  const auto a = chunker.chunk(content);
  const auto b = chunker.chunk(content);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].size, b[i].size);
  }
}

TEST(GearChunkerTest, InsertionShiftsBoundariesOnlyLocally) {
  // The CDC property that fixed chunking lacks: prepend bytes and most
  // chunk CONTENT hashes survive.
  const std::string base = random_bytes(512 * 1024, 4);
  const std::string shifted = random_bytes(100, 5) + base;
  const GearChunker chunker(4096);

  auto digest_set = [&](const std::string& content) {
    std::set<std::uint64_t> keys;
    for (const Chunk& chunk : chunker.chunk(content)) {
      keys.insert(digest::Digest::of(content.data() + chunk.offset,
                                     chunk.size)
                      .key64());
    }
    return keys;
  };
  const auto base_keys = digest_set(base);
  const auto shifted_keys = digest_set(shifted);
  std::size_t survived = 0;
  for (std::uint64_t key : base_keys) survived += shifted_keys.count(key);
  EXPECT_GT(static_cast<double>(survived) /
                static_cast<double>(base_keys.size()),
            0.9)
      << "CDC should re-synchronize after an insertion";

  // Fixed chunking does NOT survive the shift (control).
  const FixedChunker fixed(4096);
  auto fixed_set = [&](const std::string& content) {
    std::set<std::uint64_t> keys;
    for (const Chunk& chunk : fixed.chunk(content)) {
      keys.insert(digest::Digest::of(content.data() + chunk.offset,
                                     chunk.size)
                      .key64());
    }
    return keys;
  };
  const auto fixed_base = fixed_set(base);
  const auto fixed_shifted = fixed_set(shifted);
  std::size_t fixed_survived = 0;
  for (std::uint64_t key : fixed_base) {
    fixed_survived += fixed_shifted.count(key);
  }
  EXPECT_LT(fixed_survived, fixed_base.size() / 10);
}

TEST(ChunkDedupIndexTest, ByteAccounting) {
  ChunkDedupIndex index;
  index.add(1, 100);
  index.add(1, 100);
  index.add(2, 50);
  EXPECT_EQ(index.total_chunks(), 3u);
  EXPECT_EQ(index.unique_chunks(), 2u);
  EXPECT_EQ(index.total_bytes(), 250u);
  EXPECT_EQ(index.unique_bytes(), 150u);
  EXPECT_NEAR(index.capacity_ratio(), 250.0 / 150.0, 1e-12);
  EXPECT_EQ(index.index_overhead_bytes(),
            2u * ChunkDedupIndex::kIndexEntryBytes);
}

TEST(ChunkDedupIndexTest, ZeroRunsCollapse) {
  // A sparse file's zero chunks all hash identically under fixed chunking.
  const std::string zeros(64 * 1024, '\0');
  const FixedChunker chunker(4096);
  ChunkDedupIndex index;
  for (const Chunk& chunk : chunker.chunk(zeros)) {
    index.add(digest::Digest::of(zeros.data() + chunk.offset, chunk.size)
                  .key64(),
              chunk.size);
  }
  EXPECT_EQ(index.unique_chunks(), 1u);
  EXPECT_EQ(index.unique_bytes(), 4096u);
}

}  // namespace
}  // namespace dockmine::dedup
