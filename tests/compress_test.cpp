#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "dockmine/compress/content_gen.h"
#include "dockmine/compress/crc32.h"
#include "dockmine/compress/gzip.h"
#include "dockmine/util/rng.h"

namespace dockmine::compress {
namespace {

// ---------- CRC-32 ----------

TEST(Crc32Test, KnownVectors) {
  EXPECT_EQ(Crc32::of(""), 0x00000000u);
  EXPECT_EQ(Crc32::of("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32::of("The quick brown fox jumps over the lazy dog"),
            0x414fa339u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  Crc32 crc;
  crc.update("The quick brown fox ");
  crc.update("jumps over the lazy dog");
  EXPECT_EQ(crc.value(), 0x414fa339u);
}

// ---------- gzip ----------

TEST(GzipTest, RoundTripsText) {
  const std::string raw = "hello hello hello gzip world";
  auto member = gzip_compress(raw);
  ASSERT_TRUE(member.ok());
  auto back = gzip_decompress(member.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), raw);
}

TEST(GzipTest, RoundTripsEmpty) {
  auto member = gzip_compress("");
  ASSERT_TRUE(member.ok());
  auto back = gzip_decompress(member.value());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
}

TEST(GzipTest, RoundTripsLargeBinary) {
  util::Rng rng(1);
  std::string raw;
  append_random(raw, 3 * 1024 * 1024, rng);
  auto member = gzip_compress(raw, 1);
  ASSERT_TRUE(member.ok());
  // Random data does not compress.
  EXPECT_GT(member.value().size(), raw.size() * 95 / 100);
  auto back = gzip_decompress(member.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), raw);
}

TEST(GzipTest, ZerosCompressEnormously) {
  std::string raw(1 << 20, '\0');
  auto member = gzip_compress(raw);
  ASSERT_TRUE(member.ok());
  EXPECT_LT(member.value().size(), raw.size() / 500);
  EXPECT_EQ(gzip_decompress(member.value()).value(), raw);
}

TEST(GzipTest, DetectsCrcCorruption) {
  auto member = gzip_compress("content to protect");
  ASSERT_TRUE(member.ok());
  std::string corrupted = member.value();
  corrupted[corrupted.size() - 6] ^= 0x42;  // flip a CRC byte
  auto back = gzip_decompress(corrupted);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.error().code(), util::ErrorCode::kCorrupt);
}

TEST(GzipTest, DetectsTruncation) {
  auto member = gzip_compress(std::string(10000, 'a'));
  ASSERT_TRUE(member.ok());
  const std::string truncated = member.value().substr(0, 40);
  EXPECT_FALSE(gzip_decompress(truncated).ok());
}

TEST(GzipTest, RejectsBadMagicAndLevel) {
  EXPECT_FALSE(gzip_decompress("definitely not gzip data....").ok());
  EXPECT_FALSE(gzip_compress("x", 0).ok());
  EXPECT_FALSE(gzip_compress("x", 10).ok());
}

TEST(GzipTest, EnforcesOutputCap) {
  auto member = gzip_compress(std::string(1 << 20, '\0'));
  ASSERT_TRUE(member.ok());
  auto back = gzip_decompress(member.value(), /*max_output=*/1024);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.error().code(), util::ErrorCode::kOutOfRange);
}

TEST(GzipTest, ProbeParsesOptionalHeaderFields) {
  // Hand-build a member with FNAME, then our deflate body from a real
  // member (header fields do not affect the body offsets computed by probe).
  auto member = gzip_compress("payload");
  ASSERT_TRUE(member.ok());
  std::string with_name = member.value();
  with_name[3] = 0x08;  // FLG.FNAME
  with_name.insert(10, std::string("layer.tar\0", 10));
  auto info = gzip_probe(with_name);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().original_name, "layer.tar");
  EXPECT_EQ(info.value().header_size, 20u);
  // And the full decompress still works with the shifted header.
  EXPECT_EQ(gzip_decompress(with_name).value(), "payload");
}

// ---------- content generator ----------

class ContentRatioTest : public ::testing::TestWithParam<double> {};

TEST_P(ContentRatioTest, AchievesTargetWithin35Percent) {
  const double target = GetParam();
  util::Rng rng(42);
  const std::string raw = generate(512 * 1024, target, rng);
  ASSERT_EQ(raw.size(), 512u * 1024u);
  auto member = gzip_compress(raw);
  ASSERT_TRUE(member.ok());
  const double achieved =
      static_cast<double>(raw.size()) / static_cast<double>(member.value().size());
  EXPECT_GT(achieved, target * 0.65) << "target " << target;
  EXPECT_LT(achieved, target * 1.65) << "target " << target;
}

INSTANTIATE_TEST_SUITE_P(Targets, ContentRatioTest,
                         ::testing::Values(1.0, 1.5, 2.0, 2.6, 3.5, 5.0, 8.0,
                                           30.0, 120.0, 700.0));

class AsciiRatioTest : public ::testing::TestWithParam<double> {};

TEST_P(AsciiRatioTest, AsciiSafeStaysPrintableAndOnTarget) {
  const double target = GetParam();
  util::Rng rng(11);
  const std::string raw = generate(256 * 1024, target, rng, /*ascii_safe=*/true);
  for (char c : raw) {
    ASSERT_TRUE((c >= 0x20 && c < 0x7f) || c == '\n') << int(c);
  }
  auto member = gzip_compress(raw);
  ASSERT_TRUE(member.ok());
  const double achieved =
      static_cast<double>(raw.size()) /
      static_cast<double>(member.value().size());
  EXPECT_GT(achieved, target * 0.6);
  EXPECT_LT(achieved, target * 1.7);
}

INSTANTIATE_TEST_SUITE_P(Targets, AsciiRatioTest,
                         ::testing::Values(1.5, 2.6, 3.6, 4.2, 5.0));

TEST(ContentGenTest, MagicPrefixPreserved) {
  util::Rng rng(7);
  const std::string content = generate_with_magic("\x7f""ELF", 1000, 2.0, rng);
  EXPECT_EQ(content.size(), 1000u);
  EXPECT_EQ(content.substr(0, 4), "\x7f""ELF");
}

TEST(ContentGenTest, MagicLongerThanSizeIsTruncated) {
  util::Rng rng(7);
  const std::string content = generate_with_magic("ABCDEFGH", 3, 2.0, rng);
  EXPECT_EQ(content, "ABC");
}

TEST(ContentGenTest, DeterministicForSeed) {
  util::Rng a(5), b(5);
  EXPECT_EQ(generate(4096, 3.0, a), generate(4096, 3.0, b));
}

TEST(ContentGenTest, TextIsAsciiAndWordy) {
  util::Rng rng(9);
  std::string out;
  append_text(out, 1024, rng);
  EXPECT_EQ(out.size(), 1024u);
  for (char c : out) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || c == ' ' || c == '\n') << int(c);
  }
}

}  // namespace
}  // namespace dockmine::compress
