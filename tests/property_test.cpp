// Randomized property tests across the substrate formats: whatever the
// writer produces, the reader must reproduce, for arbitrary content.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <unordered_map>

#include "dockmine/compress/content_gen.h"
#include "dockmine/compress/gzip.h"
#include "dockmine/json/json.h"
#include "dockmine/tar/reader.h"
#include "dockmine/tar/writer.h"
#include "dockmine/util/flat_map.h"
#include "dockmine/util/rng.h"

namespace dockmine {
namespace {

// ---------- tar round-trip under random archives ----------

class TarPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TarPropertyTest, RandomArchiveRoundTrips) {
  util::Rng rng(GetParam());
  tar::Writer writer;
  std::map<std::string, std::string> files;
  std::size_t dirs = 0, symlinks = 0;
  const std::size_t entries = 1 + rng.uniform(40);
  for (std::size_t i = 0; i < entries; ++i) {
    const std::uint64_t kind = rng.uniform(10);
    // Name length sweeps across the 100-byte ustar limit.
    std::string name = "p" + std::to_string(i);
    const std::size_t pad = rng.uniform(160);
    for (std::size_t k = 0; k < pad; ++k) {
      name += (k % 23 == 22) ? '/' : 'x';
    }
    if (kind < 2) {
      writer.add_directory(name);
      ++dirs;
    } else if (kind < 3) {
      writer.add_symlink(name, "target" + std::to_string(i));
      ++symlinks;
    } else {
      std::string content;
      const std::size_t size = rng.uniform(3000);
      compress::append_random(content, size, rng);
      files[name] = content;
      writer.add_file(name, content);
    }
  }

  // Through gzip and back, like a layer blob.
  auto blob = compress::gzip_compress(writer.finish(), 1);
  ASSERT_TRUE(blob.ok());
  auto tar_bytes = compress::gzip_decompress(blob.value());
  ASSERT_TRUE(tar_bytes.ok());

  std::size_t seen_files = 0, seen_dirs = 0, seen_symlinks = 0;
  tar::Reader reader(tar_bytes.value());
  auto status = reader.for_each([&](const tar::Entry& entry) {
    if (entry.is_file()) {
      ASSERT_EQ(files.at(entry.header.name), entry.content)
          << entry.header.name;
      ++seen_files;
    } else if (entry.is_directory()) {
      ++seen_dirs;
    } else if (entry.is_symlink()) {
      ++seen_symlinks;
    }
  });
  ASSERT_TRUE(status.ok()) << status.error().to_string();
  EXPECT_EQ(seen_files, files.size());
  EXPECT_EQ(seen_dirs, dirs);
  EXPECT_EQ(seen_symlinks, symlinks);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TarPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 17));

// ---------- gzip round-trip under random content mixes ----------

class GzipPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GzipPropertyTest, ArbitraryBytesRoundTrip) {
  util::Rng rng(GetParam() * 7919);
  std::string raw;
  const std::size_t blocks = rng.uniform(8);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t size = rng.uniform(50000);
    switch (rng.uniform(3)) {
      case 0: compress::append_random(raw, size, rng); break;
      case 1: compress::append_text(raw, size, rng); break;
      default: compress::append_zeros(raw, size); break;
    }
  }
  const int level = 1 + static_cast<int>(rng.uniform(9));
  auto member = compress::gzip_compress(raw, level);
  ASSERT_TRUE(member.ok());
  auto back = compress::gzip_decompress(member.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), raw);
}

TEST_P(GzipPropertyTest, SingleBitFlipsAreDetected) {
  util::Rng rng(GetParam() * 104729);
  std::string raw;
  compress::append_text(raw, 2000 + rng.uniform(2000), rng);
  auto member = compress::gzip_compress(raw);
  ASSERT_TRUE(member.ok());
  std::string corrupted = member.value();
  const std::size_t bit = rng.uniform(corrupted.size() * 8);
  corrupted[bit / 8] ^= static_cast<char>(1u << (bit % 8));
  auto back = compress::gzip_decompress(corrupted);
  // Either an error, or (if the flip hit a gzip header filler byte that
  // does not affect decoding, e.g. MTIME/XFL/OS) the same bytes back.
  if (back.ok()) {
    EXPECT_EQ(back.value(), raw);
  } else {
    SUCCEED();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GzipPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------- JSON dump/parse fixed point ----------

json::Value random_json(util::Rng& rng, int depth) {
  const std::uint64_t kind = rng.uniform(depth > 3 ? 5 : 7);
  switch (kind) {
    case 0: return json::Value(nullptr);
    case 1: return json::Value(rng.chance(0.5));
    case 2: return json::Value(static_cast<std::int64_t>(rng()) / 2);
    case 3: return json::Value(rng.uniform01() * 1e6);
    case 4: {
      std::string text;
      const std::size_t size = rng.uniform(20);
      for (std::size_t i = 0; i < size; ++i) {
        text += static_cast<char>(rng.uniform(95) + 32);
      }
      return json::Value(std::move(text));
    }
    case 5: {
      json::Value array = json::Value::array();
      const std::size_t size = rng.uniform(5);
      for (std::size_t i = 0; i < size; ++i) {
        array.push_back(random_json(rng, depth + 1));
      }
      return array;
    }
    default: {
      json::Value object = json::Value::object();
      const std::size_t size = rng.uniform(5);
      for (std::size_t i = 0; i < size; ++i) {
        object.set("k" + std::to_string(i), random_json(rng, depth + 1));
      }
      return object;
    }
  }
}

class JsonPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonPropertyTest, DumpParseDumpIsFixedPoint) {
  util::Rng rng(GetParam() * 31337);
  const json::Value value = random_json(rng, 0);
  const std::string once = value.dump();
  auto parsed = json::parse(once);
  ASSERT_TRUE(parsed.ok()) << once;
  EXPECT_EQ(parsed.value().dump(), once);
  // Pretty form parses back to the same compact form.
  auto pretty = json::parse(value.dump_pretty());
  ASSERT_TRUE(pretty.ok());
  EXPECT_EQ(pretty.value().dump(), once);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------- FlatMap64 vs std::unordered_map fuzz ----------

class FlatMapPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlatMapPropertyTest, AgreesWithReferenceMap) {
  util::Rng rng(GetParam() * 65537);
  util::FlatMap64<std::uint64_t> flat(1 + rng.uniform(64));
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  const std::size_t ops = 5000;
  for (std::size_t i = 0; i < ops; ++i) {
    const std::uint64_t key = 1 + rng.uniform(1 + rng.uniform(10000));
    if (rng.chance(0.7)) {
      const std::uint64_t delta = rng.uniform(100);
      flat[key] += delta;
      reference[key] += delta;
    } else {
      const auto* found = flat.find(key);
      const auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(*found, it->second);
      }
    }
  }
  EXPECT_EQ(flat.size(), reference.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatMapPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace dockmine
