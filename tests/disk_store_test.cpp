#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "dockmine/blob/disk_store.h"

namespace dockmine::blob {
namespace {

namespace fs = std::filesystem;

class DiskStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("dockmine-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }
  fs::path root_;
};

TEST_F(DiskStoreTest, PutGetRoundTrip) {
  auto store = DiskStore::open(root_);
  ASSERT_TRUE(store.ok());
  auto digest = store.value().put("layer bytes on disk");
  ASSERT_TRUE(digest.ok());
  EXPECT_TRUE(store.value().contains(digest.value()));
  EXPECT_EQ(store.value().get(digest.value()).value(), "layer bytes on disk");
  EXPECT_EQ(store.value().stat(digest.value()).value(), 19u);
}

TEST_F(DiskStoreTest, LayoutMatchesRegistryConvention) {
  auto store = DiskStore::open(root_);
  ASSERT_TRUE(store.ok());
  const auto digest = store.value().put("abc").value();
  const std::string hex = digest.to_string().substr(7);
  EXPECT_TRUE(fs::exists(root_ / "blobs" / "sha256" / hex.substr(0, 2) / hex /
                         "data"));
}

TEST_F(DiskStoreTest, IdempotentPutAndUsage) {
  auto store = DiskStore::open(root_);
  ASSERT_TRUE(store.ok());
  (void)store.value().put("same");
  (void)store.value().put("same");
  (void)store.value().put("other");
  auto usage = store.value().usage();
  ASSERT_TRUE(usage.ok());
  EXPECT_EQ(usage.value().blobs, 2u);
  EXPECT_EQ(usage.value().bytes, 4u + 5u);
}

TEST_F(DiskStoreTest, MissingAndRemove) {
  auto store = DiskStore::open(root_);
  ASSERT_TRUE(store.ok());
  const auto ghost = digest::Digest::of("never stored");
  EXPECT_FALSE(store.value().contains(ghost));
  EXPECT_FALSE(store.value().get(ghost).ok());
  EXPECT_FALSE(store.value().remove(ghost).ok());

  const auto digest = store.value().put("transient").value();
  EXPECT_TRUE(store.value().remove(digest).ok());
  EXPECT_FALSE(store.value().contains(digest));
}

TEST_F(DiskStoreTest, BinaryContentSurvives) {
  auto store = DiskStore::open(root_);
  ASSERT_TRUE(store.ok());
  std::string binary;
  for (int i = 0; i < 1024; ++i) binary += static_cast<char>(i * 31);
  const auto digest = store.value().put(binary).value();
  EXPECT_EQ(store.value().get(digest).value(), binary);
  EXPECT_EQ(digest::Digest::of(store.value().get(digest).value()), digest);
}

TEST_F(DiskStoreTest, ConcurrentWritersAgree) {
  auto opened = DiskStore::open(root_);
  ASSERT_TRUE(opened.ok());
  DiskStore& store = opened.value();
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&store, t] {
      for (int i = 0; i < 50; ++i) {
        // Half shared content across threads, half private.
        const std::string content =
            (i % 2 == 0) ? "shared-" + std::to_string(i)
                         : "t" + std::to_string(t) + "-" + std::to_string(i);
        auto digest = store.put(content);
        ASSERT_TRUE(digest.ok());
      }
    });
  }
  for (auto& w : writers) w.join();
  auto usage = store.usage();
  ASSERT_TRUE(usage.ok());
  EXPECT_EQ(usage.value().blobs, 25u + 4u * 25u);
}

TEST_F(DiskStoreTest, WrongDigestStoresUnderGivenName) {
  auto store = DiskStore::open(root_);
  ASSERT_TRUE(store.ok());
  const auto synthetic = digest::Digest::from_u64(99);
  ASSERT_TRUE(store.value().put_with_digest(synthetic, "metadata blob").ok());
  EXPECT_EQ(store.value().get(synthetic).value(), "metadata blob");
}

}  // namespace
}  // namespace dockmine::blob
