#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "dockmine/compress/gzip.h"
#include "dockmine/tar/header.h"
#include "dockmine/tar/reader.h"
#include "dockmine/tar/writer.h"

namespace dockmine::tar {
namespace {

std::vector<Entry> read_all(std::string_view archive) {
  Reader reader(archive);
  std::vector<Entry> entries;
  auto status = reader.for_each([&](const Entry& e) { entries.push_back(e); });
  EXPECT_TRUE(status.ok()) << status.error().to_string();
  return entries;
}

TEST(TarOctalTest, RoundTrips) {
  char field[12];
  for (std::uint64_t v : {0ULL, 1ULL, 0644ULL, 123456ULL, 077777777ULL}) {
    write_octal(field, sizeof field, v);
    EXPECT_EQ(read_octal({field, sizeof field}).value(), v);
  }
}

TEST(TarOctalTest, RejectsGarbage) {
  EXPECT_FALSE(read_octal("12x4").ok());
  EXPECT_EQ(read_octal("   7 ").value(), 7u);
  EXPECT_EQ(read_octal(std::string_view("\0\0\0", 3)).value(), 0u);
}

TEST(TarHeaderTest, EncodeDecodeRoundTrip) {
  Header in;
  in.name = "usr/bin/tool";
  in.mode = 0755;
  in.size = 1234;
  in.mtime = 1496102400;
  in.type = EntryType::kFile;
  in.uname = "root";
  std::string block;
  encode_header(in, block);
  ASSERT_EQ(block.size(), kBlockSize);
  auto out = decode_header(block);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().name, in.name);
  EXPECT_EQ(out.value().mode, in.mode);
  EXPECT_EQ(out.value().size, in.size);
  EXPECT_EQ(out.value().mtime, in.mtime);
  EXPECT_EQ(out.value().uname, "root");
}

TEST(TarHeaderTest, ChecksumMismatchDetected) {
  Header in;
  in.name = "f";
  std::string block;
  encode_header(in, block);
  block[0] ^= 0x7;
  auto out = decode_header(block);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code(), util::ErrorCode::kCorrupt);
}

TEST(TarHeaderTest, ZeroBlockIsEndMarker) {
  const std::string zeros(kBlockSize, '\0');
  EXPECT_TRUE(is_zero_block(zeros));
  EXPECT_EQ(decode_header(zeros).error().code(), util::ErrorCode::kNotFound);
}

TEST(TarWriterTest, FilesDirsLinksRoundTrip) {
  Writer writer;
  writer.add_directory("etc", 0755);
  writer.add_file("etc/hostname", "dockmine\n", 0644, 12345);
  writer.add_symlink("etc/alias", "hostname");
  writer.add_hardlink("etc/hard", "etc/hostname");
  writer.add_file("empty", "");
  const std::string archive = writer.finish();
  EXPECT_EQ(archive.size() % kBlockSize, 0u);

  const auto entries = read_all(archive);
  ASSERT_EQ(entries.size(), 5u);
  EXPECT_TRUE(entries[0].is_directory());
  EXPECT_EQ(entries[0].header.name, "etc/");
  EXPECT_TRUE(entries[1].is_file());
  EXPECT_EQ(entries[1].content, "dockmine\n");
  EXPECT_EQ(entries[1].header.mtime, 12345u);
  EXPECT_TRUE(entries[2].is_symlink());
  EXPECT_EQ(entries[2].header.linkname, "hostname");
  EXPECT_EQ(entries[3].header.type, EntryType::kHardLink);
  EXPECT_TRUE(entries[4].is_file());
  EXPECT_TRUE(entries[4].content.empty());
}

TEST(TarWriterTest, LongNamesUseGnuExtension) {
  std::string long_path = "very";
  while (long_path.size() < 180) long_path += "/deeply/nested";
  long_path += "/file.txt";
  Writer writer;
  writer.add_file(long_path, "x");
  const auto entries = read_all(writer.finish());
  ASSERT_EQ(entries.size(), 1u);  // 'L' entry is transparent
  EXPECT_EQ(entries[0].header.name, long_path);
  EXPECT_EQ(entries[0].content, "x");
}

TEST(TarWriterTest, VeryLongNameBeyond255) {
  std::string long_path(400, 'a');
  long_path.insert(200, "/");
  Writer writer;
  writer.add_file(long_path, "y");
  const auto entries = read_all(writer.finish());
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].header.name, long_path);
}

TEST(TarWriterTest, WhiteoutMarker) {
  Writer writer;
  writer.add_whiteout("usr/lib", "removed.so");
  const auto entries = read_all(writer.finish());
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].header.name, "usr/lib/.wh.removed.so");
  EXPECT_TRUE(entries[0].is_whiteout());
  EXPECT_TRUE(entries[0].is_file());
}

TEST(TarWriterTest, EmptyArchiveHasTrailerOnly) {
  Writer writer;
  const std::string archive = writer.finish();
  EXPECT_EQ(archive.size(), 2 * kBlockSize);
  EXPECT_TRUE(read_all(archive).empty());
}

TEST(TarWriterTest, ContentPaddedToBlocks) {
  Writer writer;
  writer.add_file("a", std::string(513, 'q'));
  const std::string archive = writer.finish();
  // header + 2 content blocks + 2 trailer blocks
  EXPECT_EQ(archive.size(), 5 * kBlockSize);
}

TEST(TarReaderTest, BodyPastEndIsCorrupt) {
  Writer writer;
  writer.add_file("a", std::string(2000, 'z'));
  std::string archive = writer.finish();
  archive.resize(kBlockSize + 512);  // keep header, cut body
  Reader reader(archive);
  auto first = reader.next();
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.error().code(), util::ErrorCode::kCorrupt);
  // Errors are sticky.
  EXPECT_FALSE(reader.next().ok());
}

TEST(TarReaderTest, GarbageHeaderIsCorrupt) {
  std::string garbage(kBlockSize, 'G');
  Reader reader(garbage);
  auto entry = reader.next();
  ASSERT_FALSE(entry.ok());
}

TEST(TarReaderTest, MissingTrailerTolerated) {
  Writer writer;
  writer.add_file("a", "b");
  std::string archive = writer.finish();
  archive.resize(archive.size() - 2 * kBlockSize);  // strip trailer
  const auto entries = read_all(archive);
  ASSERT_EQ(entries.size(), 1u);
}

TEST(TarIntegrationTest, GzippedTarRoundTrip) {
  Writer writer;
  writer.add_directory("opt");
  std::map<std::string, std::string> files;
  for (int i = 0; i < 50; ++i) {
    const std::string path = "opt/file" + std::to_string(i) + ".txt";
    files[path] = std::string(i * 37, static_cast<char>('a' + i % 26));
    writer.add_file(path, files[path]);
  }
  auto blob = compress::gzip_compress(writer.finish());
  ASSERT_TRUE(blob.ok());
  auto tar_bytes = compress::gzip_decompress(blob.value());
  ASSERT_TRUE(tar_bytes.ok());
  std::size_t seen = 0;
  Reader reader(tar_bytes.value());
  auto status = reader.for_each([&](const Entry& entry) {
    if (!entry.is_file()) return;
    ASSERT_EQ(files.at(entry.header.name), entry.content);
    ++seen;
  });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(seen, files.size());
}

}  // namespace
}  // namespace dockmine::tar
