#include <gtest/gtest.h>

#include <string>

#include "dockmine/filetype/classifier.h"
#include "dockmine/filetype/taxonomy.h"
#include "dockmine/util/rng.h"

namespace dockmine::filetype {
namespace {

// ---------- taxonomy ----------

TEST(TaxonomyTest, EveryTypeHasGroupAndName) {
  for (std::size_t t = 0; t < kTypeCount; ++t) {
    const Type type = static_cast<Type>(t);
    EXPECT_NE(to_string(type), "?");
    const Group group = group_of(type);
    EXPECT_LT(static_cast<std::size_t>(group), kGroupCount);
    EXPECT_NE(to_string(group), "?");
  }
}

TEST(TaxonomyTest, PaperGroupAssignments) {
  EXPECT_EQ(group_of(Type::kElfExecutable), Group::kEol);
  EXPECT_EQ(group_of(Type::kPythonBytecode), Group::kEol);
  EXPECT_EQ(group_of(Type::kCSource), Group::kSourceCode);
  EXPECT_EQ(group_of(Type::kPythonScript), Group::kScripts);
  EXPECT_EQ(group_of(Type::kAsciiText), Group::kDocuments);
  EXPECT_EQ(group_of(Type::kZipGzip), Group::kArchival);
  EXPECT_EQ(group_of(Type::kPng), Group::kImages);
  EXPECT_EQ(group_of(Type::kSqlite), Group::kDatabases);
  EXPECT_EQ(group_of(Type::kEmpty), Group::kOther);
}

TEST(TaxonomyTest, SuperTypePredicates) {
  EXPECT_TRUE(is_elf(Type::kElfSharedObject));
  EXPECT_FALSE(is_elf(Type::kCoff));
  EXPECT_TRUE(is_intermediate_representation(Type::kPythonBytecode));
  EXPECT_TRUE(is_intermediate_representation(Type::kJavaClass));
  EXPECT_TRUE(is_intermediate_representation(Type::kTerminfo));
  EXPECT_FALSE(is_intermediate_representation(Type::kElfExecutable));
}

// ---------- classifier: the generator/classifier round-trip property ----------
// For every type in the taxonomy, content stamped with magic_for(type) and
// named representative_path(type) must classify back to exactly that type.
// This property is what makes the Figs. 14-22 benches real measurements.

class RoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RoundTripTest, MagicAndPathClassifyBack) {
  const Type type = static_cast<Type>(GetParam());
  util::Rng rng(GetParam());
  const std::string path = representative_path(type, 123);
  std::string content(magic_for(type));
  if (type == Type::kEmpty) {
    content.clear();
  } else {
    // ASCII filler, as the materializer produces for text-ish types.
    content += "config value package install return static module\n";
  }
  EXPECT_EQ(classify(path, content), type)
      << "path=" << path << " got=" << to_string(classify(path, content));
}

INSTANTIATE_TEST_SUITE_P(AllTypes, RoundTripTest,
                         ::testing::Range<std::size_t>(0, kTypeCount));

// ---------- classifier: specific signatures ----------

TEST(ClassifierTest, ElfSubtypesByEType) {
  std::string elf("\x7f" "ELF\x02\x01\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00", 16);
  std::string rel = elf + std::string("\x01\x00", 2);
  std::string exec = elf + std::string("\x02\x00", 2);
  std::string dyn = elf + std::string("\x03\x00", 2);
  EXPECT_EQ(classify("x", rel), Type::kElfRelocatable);
  EXPECT_EQ(classify("x", exec), Type::kElfExecutable);
  EXPECT_EQ(classify("x", dyn), Type::kElfSharedObject);
}

TEST(ClassifierTest, ShebangsBeatExtensions) {
  EXPECT_EQ(classify("tool", "#!/usr/bin/env python\nprint(1)\n"),
            Type::kPythonScript);
  EXPECT_EQ(classify("tool", "#!/bin/sh\necho hi\n"), Type::kShellScript);
  EXPECT_EQ(classify("tool", "#!/usr/bin/perl -w\n"), Type::kPerlScript);
  EXPECT_EQ(classify("tool", "#!/usr/bin/awk -f\n{print}"), Type::kAwkScript);
  EXPECT_EQ(classify("tool", "#!/usr/bin/env node\n"), Type::kNodeScript);
  EXPECT_EQ(classify("tool", "#!/usr/bin/ruby\n"), Type::kRubyScript);
  EXPECT_EQ(classify("tool", "#!/usr/bin/mystery\n"), Type::kOtherScript);
}

TEST(ClassifierTest, ExtensionsForSourceFiles) {
  EXPECT_EQ(classify("main.c", "int main() { return 0; }\n"), Type::kCSource);
  EXPECT_EQ(classify("lib.CPP", "class X {};\n"), Type::kCSource);
  EXPECT_EQ(classify("Mod.pm", "package Mod;\n"), Type::kPerlModule);
  EXPECT_EQ(classify("gem.rb", "module Gem\nend\n"), Type::kRubyModule);
  EXPECT_EQ(classify("unit.pas", "program x;\n"), Type::kPascalSource);
  EXPECT_EQ(classify("sim.f90", "program sim\n"), Type::kFortranSource);
  EXPECT_EQ(classify("x.lisp", "(defun f ())\n"), Type::kLispSource);
  EXPECT_EQ(classify("Makefile", "all:\n\tcc main.c\n"), Type::kMakefile);
}

TEST(ClassifierTest, UnsuffixedCSourceByContent) {
  EXPECT_EQ(classify("README", "#include <stdio.h>\nint main(){}\n"),
            Type::kCSource);
}

TEST(ClassifierTest, ArchiveMagics) {
  EXPECT_EQ(classify("a", std::string("\x1f\x8b\x08", 3)), Type::kZipGzip);
  EXPECT_EQ(classify("a", "PK\x03\x04...."), Type::kZipGzip);
  EXPECT_EQ(classify("a", "BZh91AY"), Type::kBzip2);
  EXPECT_EQ(classify("a", std::string("\xfd" "7zXZ\x00", 6)), Type::kXz);
}

TEST(ClassifierTest, TarByUstarAtOffset257) {
  std::string content(300, 'x');
  content.replace(257, 5, "ustar");
  EXPECT_EQ(classify("blob.bin", content), Type::kTarArchive);
  // A short buffer falls back to the extension.
  EXPECT_EQ(classify("dump.tar", "short"), Type::kTarArchive);
}

TEST(ClassifierTest, DatabaseMagics) {
  EXPECT_EQ(classify("a", std::string_view("SQLite format 3\x00more", 20)),
            Type::kSqlite);
  std::string bdb(20, '\0');
  bdb.replace(12, 4, "\x62\x31\x05\x00");
  EXPECT_EQ(classify("a", bdb), Type::kBerkeleyDb);
  EXPECT_EQ(classify("t.frm", std::string("\xfe\x01\x09\x09", 4)), Type::kMysql);
}

TEST(ClassifierTest, MediaMagics) {
  EXPECT_EQ(classify("a", "\x89PNG\r\n\x1a\n...."), Type::kPng);
  EXPECT_EQ(classify("a", "\xff\xd8\xff\xe0"), Type::kJpeg);
  EXPECT_EQ(classify("a", "GIF89a...."), Type::kGif);
  EXPECT_EQ(classify("a", "<svg xmlns='x'>"), Type::kSvg);
  EXPECT_EQ(classify("a", "<?xml version='1'?><svg>"), Type::kSvg);
  EXPECT_EQ(classify("a", "<?xml version='1'?><root>"), Type::kXmlHtml);
  std::string avi = "RIFF";
  avi += std::string(4, '\x10');
  avi += "AVI ";
  EXPECT_EQ(classify("a", avi), Type::kVideo);
}

TEST(ClassifierTest, DocumentsAndText) {
  EXPECT_EQ(classify("doc", "%PDF-1.4 ..."), Type::kPdfPs);
  EXPECT_EQ(classify("doc", "%!PS-Adobe"), Type::kPdfPs);
  EXPECT_EQ(classify("paper.tex", "\\documentclass{article}"), Type::kLatex);
  EXPECT_EQ(classify("index.html", "<html><body>"), Type::kXmlHtml);
  EXPECT_EQ(classify("page", "<!DOCTYPE html><p>"), Type::kXmlHtml);
  EXPECT_EQ(classify("notes", "plain readable ascii text\n"), Type::kAsciiText);
  EXPECT_EQ(classify("msg", "caf\xc3\xa9 UTF-8 text"), Type::kUtf8Text);
  EXPECT_EQ(classify("latin", "caf\xe9 latin-1 text"), Type::kIso8859Text);
}

TEST(ClassifierTest, EmptyAndBinaryFallback) {
  EXPECT_EQ(classify("anything.xyz", ""), Type::kEmpty);
  std::string junk;
  for (int i = 0; i < 64; ++i) junk += static_cast<char>(i * 7 + 1);
  junk[3] = '\x01';
  junk[10] = '\x02';
  EXPECT_EQ(classify("mystery", junk), Type::kOtherBinary);
}

TEST(ClassifierTest, PackagesAndLibraries) {
  EXPECT_EQ(classify("a", "!<arch>\ndebian-binary   "), Type::kDebRpmPackage);
  EXPECT_EQ(classify("a", std::string("\xed\xab\xee\xdb", 4)), Type::kDebRpmPackage);
  EXPECT_EQ(classify("a", "!<arch>\n/       "), Type::kStaticLibrary);
  EXPECT_EQ(classify("a", std::string("\xca\xfe\xba\xbe\x00", 5)), Type::kJavaClass);
  EXPECT_EQ(classify("a", "MZ\x90\x00"), Type::kMsExecutable);
  EXPECT_EQ(classify("a", std::string("\xcf\xfa\xed\xfe", 4)), Type::kMachO);
}

TEST(ClassifierTest, PhpByTag) {
  EXPECT_EQ(classify("page", "<?php echo 1; ?>"), Type::kPhpScript);
}

TEST(ClassifierTest, RepresentativePathsVaryWithSalt) {
  EXPECT_NE(representative_path(Type::kPng, 1),
            representative_path(Type::kPng, 999));
}

TEST(ClassifierTest, LooksAsciiHeuristic) {
  EXPECT_TRUE(looks_ascii("hello\nworld\t!"));
  EXPECT_FALSE(looks_ascii(""));
  EXPECT_FALSE(looks_ascii("caf\xc3\xa9"));
  EXPECT_FALSE(looks_ascii(std::string("ab\x01\x02\x03\x04", 6)));
}

}  // namespace
}  // namespace dockmine::filetype
