// Protocol conformance + query-oracle tests for the serve daemon
// (core/serve, DESIGN.md §13).
//
// Two invariants carry the suite:
//
//   1. Framing and request validity fail at different blast radii: a
//      malformed DMWF frame poisons only its connection (the daemon keeps
//      serving), while a well-framed but invalid request gets an error
//      response and the session lives on.
//   2. Byte equality against the batch pipeline: every query answer must
//      be the exact bytes of the corresponding slice of an independently
//      executed batch run's pipeline_report_json (or of the shared
//      per-image / type-breakdown serializers applied to that run). The
//      daemon's data path — resident fold over committed batches — is
//      what the equality pins.
//
// The suite is monolithic (one ctest entry): the daemon and its oracle
// run are built once and shared across tests, and the ingest/restart
// tests at the end mutate daemon state in a fixed order.

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dockmine/core/multi_node.h"
#include "dockmine/core/pipeline.h"
#include "dockmine/core/serve.h"
#include "dockmine/core/wire.h"
#include "dockmine/http/socket.h"
#include "dockmine/json/json.h"
#include "dockmine/obs/export.h"
#include "dockmine/obs/journal.h"
#include "dockmine/obs/obs.h"
#include "dockmine/shard/lookup.h"
#include "dockmine/shard/merger.h"
#include "dockmine/util/error.h"

namespace core = dockmine::core;
namespace serve = dockmine::core::serve;
namespace wire = dockmine::core::wire;
namespace json = dockmine::json;
namespace util = dockmine::util;
namespace fs = std::filesystem;

using dockmine::util::ErrorCode;

namespace {

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& name)
      : path(fs::temp_directory_path() / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

// Small but real: the batch crawls, downloads, analyzes, and exports a
// sharded index. Shared by the daemon and the oracle run.
core::JobSpec test_spec() {
  core::JobSpec spec;
  spec.repositories = 8;
  spec.seed = 20170530;
  spec.light_calibration = true;
  spec.gzip_level = 1;
  spec.download_workers = 2;
  spec.analyze_workers = 2;
  spec.mode = core::ExecutionMode::kStaged;
  spec.shards = 2;
  return spec;
}

constexpr std::uint64_t kIngestRepos = 6;
constexpr std::uint64_t kIngestSeed = 777;

core::NodeContribution contribution_of(core::PipelineResult& result,
                                       const std::string& shard_set_dir) {
  core::NodeContribution contribution;
  contribution.images = result.images;
  contribution.manifests = result.manifests;
  result.layer_profiles.for_each(
      [&contribution](const dockmine::analyzer::LayerProfile& profile) {
        contribution.layer_profiles.push_back(profile);
      });
  contribution.manifests_pushed = result.manifests_pushed;
  contribution.shard_set_dir = shard_set_dir;
  contribution.shard_summary = result.shard_summary;
  return contribution;
}

// The daemon under test plus the independently executed batch run every
// answer is compared against. Built lazily, torn down by a gtest global
// environment so no daemon thread outlives main().
struct Fixture {
  TempDir state{"dockmine-serve-test-state"};
  TempDir oracle_dir{"dockmine-serve-test-oracle"};
  std::unique_ptr<serve::ServeDaemon> daemon;
  core::PipelineResult oracle;
  json::Value oracle_report;

  Fixture() {
    auto run = core::run_end_to_end(
        core::lease_pipeline_options(test_spec(), 0, 1, oracle_dir.str()));
    EXPECT_TRUE(run.ok()) << (run.ok() ? "" : run.error().to_string());
    oracle = std::move(run).value();
    oracle_report = core::pipeline_report_json(oracle);

    serve::ServeOptions options;
    options.job = test_spec();
    options.state_dir = state.str();
    daemon = std::make_unique<serve::ServeDaemon>(std::move(options));
    auto started = daemon->start();
    EXPECT_TRUE(started.ok())
        << (started.ok() ? "" : started.error().to_string());
  }
};

std::unique_ptr<Fixture>& fixture_slot() {
  static std::unique_ptr<Fixture> slot;
  return slot;
}

Fixture& fixture() {
  if (!fixture_slot()) fixture_slot() = std::make_unique<Fixture>();
  return *fixture_slot();
}

class ServeEnvironment : public ::testing::Environment {
 public:
  void TearDown() override { fixture_slot().reset(); }
};

[[maybe_unused]] const auto* const kServeEnvironment =
    ::testing::AddGlobalTestEnvironment(new ServeEnvironment);

serve::Client connect() {
  auto client = serve::Client::connect(fixture().daemon->port(), 10000);
  EXPECT_TRUE(client.ok())
      << (client.ok() ? "" : client.error().to_string());
  return std::move(client).value();
}

serve::Request query(const std::string& q) {
  serve::Request request;
  request.kind = serve::RequestKind::kQuery;
  request.id = 42;
  request.q = q;
  return request;
}

// One-shot query against the shared daemon, expecting a result response.
json::Value ask(const serve::Request& request) {
  serve::Client client = connect();
  auto response = client.call(request);
  EXPECT_TRUE(response.ok())
      << (response.ok() ? "" : response.error().to_string());
  EXPECT_TRUE(response.value().ok) << response.value().error;
  return response.value().body;
}

// One-shot query expecting an error response (not a dropped connection).
std::string ask_error(const serve::Request& request) {
  serve::Client client = connect();
  auto response = client.call(request);
  EXPECT_TRUE(response.ok())
      << (response.ok() ? "" : response.error().to_string());
  EXPECT_FALSE(response.value().ok);
  return response.value().error;
}

// ---- codec conformance -------------------------------------------------

TEST(ServeCodec, RequestRoundtripsEveryKind) {
  std::vector<serve::Request> requests;
  requests.push_back(query("report"));
  requests.back().path = "analysis.dedup";
  requests.push_back(query("image"));
  requests.back().repository = "library/redis";
  requests.push_back(query("layer"));
  requests.back().key = 0x1234567890abcdefULL;
  requests.push_back(query("content"));
  requests.back().key = 7;
  requests.push_back(query("types"));
  requests.push_back(query("ecdf"));
  requests.back().name = "layers.cls";
  requests.back().quantile = 0.5;
  requests.push_back(query("ecdf"));
  requests.back().name = "images.fis";  // no quantile: whole slice
  requests.push_back(query("status"));
  requests.push_back(query("stats"));
  serve::Request ingest;
  ingest.kind = serve::RequestKind::kIngest;
  ingest.id = 9;
  ingest.repositories = 12;
  ingest.seed = 999;
  requests.push_back(ingest);
  requests.push_back(query("top"));
  requests.back().metric = "cis";
  requests.back().n = 10;
  requests.push_back(query("top"));
  requests.back().metric = "layers";
  requests.back().n = 1;
  requests.push_back(query("repos"));  // no prefix: whole population
  requests.push_back(query("repos"));
  requests.back().prefix = "library/";
  requests.push_back(query("metrics"));  // bare: every series, latest only
  requests.push_back(query("metrics"));
  requests.back().name = "dockmine_serve_requests_total";
  requests.back().op = "rate";
  requests.back().window_ms = 60000;
  requests.push_back(query("metrics"));
  requests.back().name = "dockmine_serve_request_ms";
  requests.back().op = "quantile";
  requests.back().quantile = 0.99;
  requests.back().window_ms = 30000;
  requests.push_back(query("metrics"));
  requests.back().name = "dockmine_serve_epoch";
  requests.back().range_ms = 120000;
  requests.push_back(query("trace-tail"));  // no n: server default
  requests.push_back(query("trace-tail"));
  requests.back().n = 32;
  requests.push_back(query("slowlog"));
  serve::Request epoch;
  epoch.kind = serve::RequestKind::kIngestEpoch;
  epoch.id = 8;
  requests.push_back(epoch);
  serve::Request shutdown;
  shutdown.kind = serve::RequestKind::kShutdown;
  shutdown.id = 10;
  requests.push_back(shutdown);

  for (const serve::Request& request : requests) {
    const json::Value encoded = serve::request_to_json(request);
    auto decoded = serve::request_from_json(encoded);
    ASSERT_TRUE(decoded.ok()) << encoded.dump() << ": "
                              << decoded.error().to_string();
    EXPECT_EQ(serve::request_to_json(decoded.value()).dump(), encoded.dump());
  }
}

TEST(ServeCodec, ResponseRoundtrips) {
  serve::Response ok;
  ok.id = 3;
  ok.ok = true;
  ok.epoch = 2;
  auto body = json::Value::object();
  body.set("answer", std::uint64_t{42});
  ok.body = std::move(body);
  serve::Response error;
  error.id = 4;
  error.epoch = 1;
  error.error = "serve: unknown layer key";
  serve::Response attributed = ok;  // telemetry stamps server-side timings
  attributed.id = 5;
  attributed.parse_ms = 0.125;
  attributed.handle_ms = 2.5;
  for (const serve::Response& response : {ok, error, attributed}) {
    const json::Value encoded = serve::response_to_json(response);
    auto decoded = serve::response_from_json(encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
    EXPECT_EQ(serve::response_to_json(decoded.value()).dump(),
              encoded.dump());
  }
}

TEST(ServeCodec, BatchSpecRoundtrips) {
  const serve::BatchSpec spec{40, 20170530};
  auto decoded = serve::batch_spec_from_json(serve::batch_spec_to_json(spec));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().repositories, spec.repositories);
  EXPECT_EQ(decoded.value().seed, spec.seed);
}

// The parser is total: every malformed document must come back kCorrupt,
// never crash, never half-parse.
TEST(ServeCodec, RequestParserRejectsMalformedDocuments) {
  const std::vector<std::string> bad = {
      "[]",                                             // not an object
      "{}",                                             // no discriminator
      R"({"type":"query","q":"report"})",               // missing id
      R"({"type":"query","id":-1,"q":"report"})",       // negative id
      R"({"type":"query","id":1})",                     // missing q
      R"({"type":"query","id":1,"q":"bogus"})",         // unknown selector
      R"({"type":"query","id":1,"q":7})",               // q not a string
      R"({"type":"query","id":1,"q":"report","path":7})",
      R"({"type":"query","id":1,"q":"image"})",         // missing repository
      R"({"type":"query","id":1,"q":"image","repository":""})",
      R"({"type":"query","id":1,"q":"layer"})",         // missing key
      R"({"type":"query","id":1,"q":"layer","key":0})",
      R"({"type":"query","id":1,"q":"content","key":"x"})",
      R"({"type":"query","id":1,"q":"ecdf"})",          // missing name
      R"({"type":"query","id":1,"q":"ecdf","name":"layers.cls","quantile":"p50"})",
      R"({"type":"query","id":1,"q":"ecdf","name":"layers.cls","quantile":1.5})",
      R"({"type":"ingest","id":1})",                    // missing batch spec
      R"({"type":"ingest","id":1,"repositories":0,"seed":1})",
      R"({"type":"ingest","id":1,"repositories":-4,"seed":1})",
      R"({"type":"ingest","id":1,"repositories":4})",   // missing seed
      R"({"type":"query","id":1,"q":"top"})",           // missing metric
      R"({"type":"query","id":1,"q":"top","metric":"cis"})",  // missing n
      R"({"type":"query","id":1,"q":"top","metric":"cis","n":0})",
      R"({"type":"query","id":1,"q":"top","metric":"bogus","n":5})",
      R"({"type":"query","id":1,"q":"top","metric":7,"n":5})",
      R"({"type":"query","id":1,"q":"repos","prefix":7})",
      R"({"type":"query","id":1,"q":"metrics","op":"bogus"})",
      R"({"type":"query","id":1,"q":"metrics","op":7})",
      R"({"type":"query","id":1,"q":"metrics","window_ms":0})",
      R"({"type":"query","id":1,"q":"metrics","range_ms":0})",
      R"({"type":"query","id":1,"q":"metrics","range_ms":"all"})",
      // quantile without op=quantile is ambiguous, not defaulted
      R"({"type":"query","id":1,"q":"metrics","quantile":0.99})",
      R"({"type":"query","id":1,"q":"metrics","op":"rate","quantile":0.99})",
      R"({"type":"query","id":1,"q":"metrics","op":"quantile"})",
      R"({"type":"query","id":1,"q":"metrics","op":"quantile","quantile":0})",
      R"({"type":"query","id":1,"q":"metrics","op":"quantile","quantile":1.5})",
      R"({"type":"query","id":1,"q":"trace-tail","n":0})",
      R"({"type":"query","id":1,"q":"trace-tail","n":"many"})",
      R"({"type":"ingest-epoch"})",                     // missing id
      R"({"type":"bogus","id":1})",                     // unknown type
  };
  for (const std::string& text : bad) {
    auto doc = json::parse(text);
    ASSERT_TRUE(doc.ok()) << text;
    auto decoded = serve::request_from_json(doc.value());
    EXPECT_FALSE(decoded.ok()) << "accepted: " << text;
    if (!decoded.ok()) EXPECT_EQ(decoded.error().code(), ErrorCode::kCorrupt);
  }
}

// ---- errno taxonomy (the accept-loop fix) ------------------------------

TEST(ServeErrno, ClassifiesDescriptorExhaustionAsRetryable) {
  const auto code = [](int err) {
    return dockmine::http::classify_errno(err, "accept").code();
  };
  // Transient: the accept loop must back off and retry, never die.
  EXPECT_EQ(code(EMFILE), ErrorCode::kUnavailable);
  EXPECT_EQ(code(ENFILE), ErrorCode::kUnavailable);
  EXPECT_EQ(code(ENOBUFS), ErrorCode::kUnavailable);
  EXPECT_EQ(code(ENOMEM), ErrorCode::kUnavailable);
  EXPECT_EQ(code(EAGAIN), ErrorCode::kTimeout);
  EXPECT_EQ(code(ETIMEDOUT), ErrorCode::kTimeout);
  EXPECT_EQ(code(ECONNRESET), ErrorCode::kReset);
  EXPECT_EQ(code(ECONNABORTED), ErrorCode::kReset);
  EXPECT_TRUE(dockmine::http::classify_errno(EMFILE, "accept").retryable());
  EXPECT_TRUE(dockmine::http::classify_errno(ECONNRESET, "accept").retryable());
  // Fatal: a bad descriptor is a programming error, not load.
  EXPECT_EQ(code(EBADF), ErrorCode::kInternal);
  EXPECT_FALSE(dockmine::http::classify_errno(EBADF, "accept").retryable());
}

// ---- shard read path ---------------------------------------------------

// ShardSetIndex::open must fold runs to exactly the entries ShardMerger
// visits — same keys, same counts, same sizes — and answer point lookups.
TEST(ServeShardLookup, IndexMatchesMergerVisitation) {
  Fixture& f = fixture();
  std::map<std::uint64_t, dockmine::dedup::ContentEntry> expected;
  dockmine::shard::ShardMerger merger;
  ASSERT_TRUE(merger.add_shard_set(f.oracle_dir.str()).ok());
  ASSERT_TRUE(merger
                  .merge([&expected](std::uint64_t key,
                                     const dockmine::dedup::ContentEntry& e) {
                    expected.emplace(key, e);
                  })
                  .ok());

  auto opened = dockmine::shard::ShardSetIndex::open({f.oracle_dir.str()});
  ASSERT_TRUE(opened.ok()) << opened.error().to_string();
  const dockmine::shard::ShardSetIndex& index = opened.value();
  EXPECT_EQ(index.distinct_contents(), expected.size());

  std::uint64_t visited = 0;
  std::uint64_t last_key = 0;
  index.for_each([&](std::uint64_t key,
                     const dockmine::dedup::ContentEntry& entry) {
    if (visited != 0) EXPECT_LT(last_key, key) << "unsorted or duplicate key";
    last_key = key;
    ++visited;
    const auto it = expected.find(key);
    ASSERT_NE(it, expected.end());
    EXPECT_EQ(entry.count, it->second.count);
    EXPECT_EQ(entry.size, it->second.size);
    EXPECT_EQ(entry.type, it->second.type);
  });
  EXPECT_EQ(visited, expected.size());

  for (const auto& [key, entry] : expected) {
    const auto* found = index.find(key);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->count, entry.count);
    if (expected.find(key + 1) == expected.end()) {
      EXPECT_EQ(index.find(key + 1), nullptr);
    }
  }
  EXPECT_EQ(index.find(0), nullptr);
}

// ---- query-vs-batch oracle ---------------------------------------------

TEST(ServeOracle, FullReportIsByteIdenticalToBatchRun) {
  Fixture& f = fixture();
  EXPECT_EQ(ask(query("report")).dump(), f.oracle_report.dump());
}

TEST(ServeOracle, ReportPathQueriesReturnExactSlices) {
  Fixture& f = fixture();
  const std::vector<std::string> paths = {
      "download",
      "analysis",
      "analysis.images",
      "analysis.images.cis",
      "analysis.layers",
      "analysis.layers.files_per_layer",
      "analysis.sharing",
      "analysis.sharing.sharing_ratio",
      "analysis.dedup",
      "analysis.dedup.repeat_counts",
  };
  for (const std::string& path : paths) {
    serve::Request request = query("report");
    request.path = path;
    const json::Value* slice = &f.oracle_report;
    std::size_t begin = 0;
    while (true) {
      const std::size_t dot = path.find('.', begin);
      slice = &(*slice)[path.substr(
          begin, dot == std::string::npos ? std::string::npos : dot - begin)];
      if (dot == std::string::npos) break;
      begin = dot + 1;
    }
    EXPECT_EQ(ask(request).dump(), slice->dump()) << path;
  }

  serve::Request bad = query("report");
  bad.path = "analysis.nope";
  EXPECT_NE(ask_error(bad).find("no such report path"), std::string::npos);
}

TEST(ServeOracle, EcdfQueriesMatchReportSlices) {
  Fixture& f = fixture();
  const std::vector<std::pair<std::string, std::pair<std::string, std::string>>>
      names = {
          {"images.cis", {"images", "cis"}},
          {"images.fis", {"images", "fis"}},
          {"images.layers_per_image", {"images", "layers_per_image"}},
          {"images.files_per_image", {"images", "files_per_image"}},
          {"layers.cls", {"layers", "cls"}},
          {"layers.fls", {"layers", "fls"}},
          {"layers.files_per_layer", {"layers", "files_per_layer"}},
          {"dedup.repeat_counts", {"dedup", "repeat_counts"}},
      };
  const double grid[] = {0.0, 0.01, 0.05, 0.1,  0.25, 0.5,
                         0.75, 0.9,  0.95, 0.99, 1.0};
  for (const auto& [name, loc] : names) {
    const json::Value& slice =
        f.oracle_report["analysis"][loc.first][loc.second];
    serve::Request whole = query("ecdf");
    whole.name = name;
    EXPECT_EQ(ask(whole).dump(), slice.dump()) << name;

    for (std::size_t i = 0; i < std::size(grid); ++i) {
      serve::Request point = query("ecdf");
      point.name = name;
      point.quantile = grid[i];
      const json::Value body = ask(point);
      EXPECT_EQ(body["samples"].dump(), slice["samples"].dump());
      EXPECT_EQ(body["value"].dump(), slice["quantiles"].at(i).dump())
          << name << " @ " << grid[i];
    }
  }

  serve::Request off_grid = query("ecdf");
  off_grid.name = "layers.cls";
  off_grid.quantile = 0.33;
  EXPECT_NE(ask_error(off_grid).find("not on the report grid"),
            std::string::npos);

  serve::Request unknown = query("ecdf");
  unknown.name = "layers.bogus";
  EXPECT_NE(ask_error(unknown).find("unknown ecdf"), std::string::npos);
}

TEST(ServeOracle, ImageQueriesMatchSharedSerializerOverBatchRun) {
  Fixture& f = fixture();
  ASSERT_FALSE(f.oracle.images.empty());
  std::map<std::string, const dockmine::registry::Manifest*> manifests;
  for (const auto& manifest : f.oracle.manifests) {
    manifests[manifest.repository] = &manifest;
  }
  for (const auto& profile : f.oracle.images) {
    const auto it = manifests.find(profile.repository);
    ASSERT_NE(it, manifests.end()) << profile.repository;
    serve::Request request = query("image");
    request.repository = profile.repository;
    EXPECT_EQ(ask(request).dump(),
              serve::image_report_json(profile, *it->second, f.oracle.sharing)
                  .dump())
        << profile.repository;
  }
  serve::Request unknown = query("image");
  unknown.repository = "no/such-repo";
  EXPECT_NE(ask_error(unknown).find("unknown repository"), std::string::npos);
}

TEST(ServeOracle, LayerQueriesMatchBatchSharingAnalysis) {
  Fixture& f = fixture();
  std::uint64_t probed = 0;
  for (const auto& manifest : f.oracle.manifests) {
    for (const auto& ref : manifest.layers) {
      const std::uint64_t key = ref.digest.key64();
      const auto info = f.oracle.sharing.lookup(key);
      ASSERT_TRUE(info.has_value());
      serve::Request request = query("layer");
      request.key = key;
      const json::Value body = ask(request);
      EXPECT_EQ(body["references"].as_uint(), info->references);
      EXPECT_EQ(body["cls"].as_uint(), info->cls);
      EXPECT_EQ(body["shared"].dump(), info->references > 1 ? "true" : "false");
      ++probed;
    }
    if (probed >= 24) break;  // a few manifests pin the mapping
  }
  ASSERT_GT(probed, 0u);
  serve::Request unknown = query("layer");
  unknown.key = 0xdeadbeefdeadbeefULL;
  EXPECT_NE(ask_error(unknown).find("unknown layer key"), std::string::npos);
}

TEST(ServeOracle, ContentQueriesMatchBatchShardExport) {
  Fixture& f = fixture();
  auto opened = dockmine::shard::ShardSetIndex::open({f.oracle_dir.str()});
  ASSERT_TRUE(opened.ok());
  std::uint64_t probed = 0;
  opened.value().for_each([&](std::uint64_t key,
                              const dockmine::dedup::ContentEntry& entry) {
    if (probed >= 32) return;
    ++probed;
    serve::Request request = query("content");
    request.key = key;
    const json::Value body = ask(request);
    EXPECT_EQ(body["count"].as_uint(), entry.count);
    EXPECT_EQ(body["size"].as_uint(), entry.size);
    EXPECT_EQ(body["type"].as_string(),
              std::string(dockmine::filetype::to_string(entry.type)));
  });
  ASSERT_GT(probed, 0u);
  serve::Request unknown = query("content");
  unknown.key = 0xfeedfacefeedfaceULL;
  EXPECT_NE(ask_error(unknown).find("unknown content key"), std::string::npos);
}

TEST(ServeOracle, TypesQueryMatchesSharedSerializerOverBatchRun) {
  Fixture& f = fixture();
  ASSERT_TRUE(f.oracle.shard_dedup.has_value());
  EXPECT_EQ(ask(query("types")).dump(),
            serve::type_breakdown_json(f.oracle.shard_dedup->by_type).dump());
}

TEST(ServeOracle, StatusReportsEpochAndCommittedBatches) {
  const json::Value body = ask(query("status"));
  EXPECT_EQ(body["epoch"].as_uint(), 1u);
  ASSERT_EQ(body["batches"].size(), 1u);
  EXPECT_EQ(body["batches"].at(0)["repositories"].as_uint(),
            test_spec().repositories);
  EXPECT_EQ(body["batches"].at(0)["seed"].as_uint(), test_spec().seed);
  EXPECT_EQ(body["images"].as_uint(), fixture().oracle.images.size());
}

TEST(ServeOracle, ResponsesAreStampedWithTheSnapshotEpoch) {
  serve::Client client = connect();
  auto response = client.call(query("status"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().epoch, 1u);
  EXPECT_EQ(response.value().id, 42u);
}

// ---- aggregation queries (top / repos) ---------------------------------

std::uint64_t metric_of(const dockmine::analyzer::ImageProfile& profile,
                        const std::string& metric) {
  if (metric == "cis") return profile.cis;
  if (metric == "fis") return profile.fis;
  if (metric == "files") return profile.file_count;
  return profile.layer_count;
}

TEST(ServeOracle, TopQueryRanksRepositoriesByEveryMetric) {
  Fixture& f = fixture();
  for (const std::string metric : {"cis", "fis", "files", "layers"}) {
    serve::Request request = query("top");
    request.metric = metric;
    request.n = 3;
    const json::Value body = ask(request);
    EXPECT_EQ(body["metric"].as_string(), metric);
    const json::Value& rows = body["rows"];
    ASSERT_TRUE(rows.is_array());
    ASSERT_LE(rows.size(), 3u);
    ASSERT_GT(rows.size(), 0u);

    // Expected ranking from the oracle run: value desc, name asc on ties.
    std::vector<std::pair<std::uint64_t, std::string>> expected;
    for (const auto& profile : f.oracle.images) {
      expected.emplace_back(metric_of(profile, metric), profile.repository);
    }
    std::sort(expected.begin(), expected.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first > b.first
                                          : a.second < b.second;
              });
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows.at(i)["repository"].as_string(), expected[i].second)
          << metric << " row " << i;
      EXPECT_EQ(rows.at(i)["value"].as_uint(), expected[i].first)
          << metric << " row " << i;
    }
  }
}

TEST(ServeOracle, TopQueryCapsAtThePopulation) {
  serve::Request request = query("top");
  request.metric = "cis";
  request.n = 10000;
  const json::Value body = ask(request);
  EXPECT_EQ(body["rows"].size(), fixture().oracle.images.size());
}

TEST(ServeOracle, ReposQueryAggregatesThePrefixSlice) {
  Fixture& f = fixture();
  // Empty prefix: the whole delivered population, totals equal the sums
  // over the oracle's image profiles.
  const json::Value all = ask(query("repos"));
  EXPECT_EQ(all["count"].as_uint(), f.oracle.images.size());
  std::uint64_t cis = 0, fis = 0, files = 0, layers = 0;
  for (const auto& profile : f.oracle.images) {
    cis += profile.cis;
    fis += profile.fis;
    files += profile.file_count;
    layers += profile.layer_count;
  }
  EXPECT_EQ(all["total_cis"].as_uint(), cis);
  EXPECT_EQ(all["total_fis"].as_uint(), fis);
  EXPECT_EQ(all["total_files"].as_uint(), files);
  EXPECT_EQ(all["total_layers"].as_uint(), layers);

  // A real repository name as its own prefix: exactly that repository.
  const std::string name = f.oracle.images.front().repository;
  serve::Request one = query("repos");
  one.prefix = name;
  const json::Value slice = ask(one);
  EXPECT_EQ(slice["prefix"].as_string(), name);
  EXPECT_GE(slice["count"].as_uint(), 1u);
  EXPECT_LE(slice["total_cis"].as_uint(), cis);

  // A prefix matching nothing: zero rows, zero totals, still a result.
  serve::Request none = query("repos");
  none.prefix = "no-such-namespace/";
  const json::Value empty = ask(none);
  EXPECT_EQ(empty["count"].as_uint(), 0u);
  EXPECT_EQ(empty["total_cis"].as_uint(), 0u);
}

TEST(ServeOracle, IngestEpochIsRejectedOutsideTemporalMode) {
  serve::Request request;
  request.kind = serve::RequestKind::kIngestEpoch;
  request.id = 42;
  const std::string error = ask_error(request);
  EXPECT_NE(error.find("temporal"), std::string::npos) << error;
}

// ---- failure containment -----------------------------------------------

// A well-framed frame carrying garbage gets an error response; the same
// connection then answers a real query. Three escalating layers of "bad".
TEST(ServeContainment, BadRequestsGetErrorsAndTheSessionSurvives) {
  serve::Client client = connect();

  // Unparseable JSON payload.
  ASSERT_TRUE(client.socket()
                  .write_all(wire::encode_frame(wire::FrameKind::kJson,
                                                "{not json at all"))
                  .ok());
  // Parseable but invalid request document.
  ASSERT_TRUE(client.socket()
                  .write_all(wire::encode_frame(
                      wire::FrameKind::kJson,
                      R"({"type":"query","id":5,"q":"bogus"})"))
                  .ok());

  // Both must come back as error responses on the SAME connection.
  wire::FrameBuffer frames;
  std::vector<serve::Response> responses;
  while (responses.size() < 2) {
    wire::Frame frame;
    auto polled = frames.poll(frame);
    ASSERT_TRUE(polled.ok());
    if (polled.value()) {
      auto doc = json::parse(frame.payload);
      ASSERT_TRUE(doc.ok());
      auto response = serve::response_from_json(doc.value());
      ASSERT_TRUE(response.ok());
      responses.push_back(response.value());
      continue;
    }
    auto chunk = client.socket().read_some();
    ASSERT_TRUE(chunk.ok()) << chunk.error().to_string();
    ASSERT_FALSE(chunk.value().empty()) << "daemon dropped the session";
    frames.feed(chunk.value());
  }
  EXPECT_FALSE(responses[0].ok);
  EXPECT_FALSE(responses[1].ok);
  EXPECT_EQ(responses[1].id, 5u);  // id recovered from the bad document

  // The session still answers real queries.
  auto after = client.call(query("status"));
  ASSERT_TRUE(after.ok()) << after.error().to_string();
  EXPECT_TRUE(after.value().ok);
}

// A corrupted frame (bad magic / flipped CRC) poisons its connection —
// the daemon drops it without answering — but keeps serving new ones.
TEST(ServeContainment, CorruptFramesDropOnlyTheirConnection) {
  const std::string valid = wire::encode_frame(
      wire::FrameKind::kJson, serve::request_to_json(query("status")).dump());

  // Flip one bit in each deterministically-checked region: magic, kind,
  // flags, CRC, payload. (A flipped length byte is indistinguishable from
  // an incomplete frame and is covered by the slowloris chaos test.)
  for (const std::size_t flip : {std::size_t{0}, std::size_t{4},
                                 std::size_t{5}, std::size_t{13},
                                 valid.size() - 1}) {
    std::string corrupt = valid;
    corrupt[flip] = static_cast<char>(corrupt[flip] ^ 0x01);
    serve::Client client = connect();
    ASSERT_TRUE(client.socket().write_all(corrupt).ok());
    // The daemon must close this connection without a response.
    auto chunk = client.socket().read_some();
    if (chunk.ok()) {
      EXPECT_TRUE(chunk.value().empty()) << "got bytes after a corrupt frame";
    } else {
      EXPECT_EQ(chunk.error().code(), ErrorCode::kReset);
    }
  }

  // And a binary frame is not a request either.
  serve::Client binary = connect();
  ASSERT_TRUE(binary.socket()
                  .write_all(wire::encode_frame(wire::FrameKind::kBinary,
                                                "not a request"))
                  .ok());
  auto chunk = binary.socket().read_some();
  if (chunk.ok()) EXPECT_TRUE(chunk.value().empty());

  // Daemon is still alive and correct.
  EXPECT_EQ(ask(query("report")).dump(), fixture().oracle_report.dump());
}

// Injected EMFILE bursts on accept must back off and recover, not kill
// the accept thread: connections made after the burst still get served.
TEST(ServeContainment, AcceptLoopSurvivesDescriptorExhaustion) {
  TempDir state{"dockmine-serve-test-emfile"};
  std::atomic<int> bursts{6};
  serve::ServeOptions options;
  options.job = test_spec();
  options.job.repositories = 4;
  options.state_dir = state.str();
  options.accept_backoff_ms = 1;
  options.accept_error_injector = [&bursts]() -> std::optional<util::Error> {
    if (bursts.fetch_sub(1) > 0) {
      return dockmine::http::classify_errno(EMFILE, "accept");
    }
    return std::nullopt;
  };
  serve::ServeDaemon daemon(std::move(options));
  ASSERT_TRUE(daemon.start().ok());

  auto client = serve::Client::connect(daemon.port(), 10000);
  ASSERT_TRUE(client.ok()) << client.error().to_string();
  auto response = client.value().call(query("status"));
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_TRUE(response.value().ok);
  EXPECT_LE(bursts.load(), 0) << "injector was never consulted";
  daemon.stop();
}

// ---- ingest: snapshot commit + union oracle ----------------------------
// Ordered suffix of the suite: these mutate the shared daemon's state.

TEST(ServeZIngest, CommittedUnionIsByteIdenticalToFoldedBatchRuns) {
  Fixture& f = fixture();

  // Independent oracle for the union: run the ingest batch standalone,
  // fold both contributions exactly as a multi-node recombination would,
  // and sum the per-batch download accounting.
  TempDir batch_b{"dockmine-serve-test-oracle-b"};
  core::JobSpec spec_b = test_spec();
  spec_b.repositories = kIngestRepos;
  spec_b.seed = kIngestSeed;
  auto run_b = core::run_end_to_end(
      core::lease_pipeline_options(spec_b, 0, 1, batch_b.str()));
  ASSERT_TRUE(run_b.ok()) << run_b.error().to_string();

  auto folded = core::fold_contributions(
      {contribution_of(f.oracle, f.oracle_dir.str()),
       contribution_of(run_b.value(), batch_b.str())});
  ASSERT_TRUE(folded.ok()) << folded.error().to_string();
  core::PipelineResult& expected = folded.value();
  dockmine::downloader::DownloadStats downloads = f.oracle.download;
  const dockmine::downloader::DownloadStats& b = run_b.value().download;
  downloads.attempted += b.attempted;
  downloads.succeeded += b.succeeded;
  downloads.failed_auth += b.failed_auth;
  downloads.failed_no_tag += b.failed_no_tag;
  downloads.failed_missing += b.failed_missing;
  downloads.failed_digest += b.failed_digest;
  downloads.failed_other += b.failed_other;
  downloads.repos_resumed += b.repos_resumed;
  downloads.repos_canceled += b.repos_canceled;
  downloads.layers_fetched += b.layers_fetched;
  downloads.layers_deduped += b.layers_deduped;
  downloads.layers_resumed += b.layers_resumed;
  downloads.bytes_downloaded += b.bytes_downloaded;
  expected.download = downloads;
  const std::string expected_report =
      core::pipeline_report_json(expected).dump();

  // Ingest through the wire.
  serve::Request ingest;
  ingest.kind = serve::RequestKind::kIngest;
  ingest.id = 77;
  ingest.repositories = kIngestRepos;
  ingest.seed = kIngestSeed;
  serve::Client client = connect();
  ASSERT_TRUE(client.set_timeout_ms(120000).ok());
  auto committed = client.call(ingest);
  ASSERT_TRUE(committed.ok()) << committed.error().to_string();
  ASSERT_TRUE(committed.value().ok) << committed.value().error;
  EXPECT_EQ(committed.value().epoch, 2u);
  EXPECT_EQ(committed.value().body["epoch"].as_uint(), 2u);

  // The served union report is the folded report, byte for byte.
  EXPECT_EQ(ask(query("report")).dump(), expected_report);

  // Post-commit answers carry the new epoch.
  serve::Client reader = connect();
  auto status = reader.call(query("status"));
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().epoch, 2u);
  EXPECT_EQ(status.value().body["batches"].size(), 2u);

  // Per-image answers now come from the union sharing analysis.
  std::map<std::string, const dockmine::registry::Manifest*> manifests;
  for (const auto& manifest : expected.manifests) {
    manifests[manifest.repository] = &manifest;
  }
  std::uint64_t checked = 0;
  for (const auto& profile : expected.images) {
    const auto it = manifests.find(profile.repository);
    ASSERT_NE(it, manifests.end());
    serve::Request request = query("image");
    request.repository = profile.repository;
    EXPECT_EQ(
        ask(request).dump(),
        serve::image_report_json(profile, *it->second, expected.sharing).dump())
        << profile.repository;
    if (++checked >= 6) break;
  }

  // And the type breakdown is the folded breakdown.
  ASSERT_TRUE(expected.shard_dedup.has_value());
  EXPECT_EQ(ask(query("types")).dump(),
            serve::type_breakdown_json(expected.shard_dedup->by_type).dump());
}

TEST(ServeZIngest, RestartReplaysCommittedBatchesToTheSameAnswers) {
  Fixture& f = fixture();
  const std::string before = ask(query("report")).dump();
  const std::string status_before = ask(query("status")).dump();
  f.daemon->stop();
  f.daemon.reset();

  // Same state dir, fresh process-equivalent: replay must reproduce epoch
  // 2 and byte-identical answers from state.json alone.
  serve::ServeOptions options;
  options.job = test_spec();
  options.state_dir = f.state.str();
  f.daemon = std::make_unique<serve::ServeDaemon>(std::move(options));
  ASSERT_TRUE(f.daemon->start().ok());
  EXPECT_EQ(f.daemon->snapshot()->epoch, 2u);
  EXPECT_EQ(ask(query("report")).dump(), before);
  EXPECT_EQ(ask(query("status")).dump(), status_before);
}

TEST(ServeZIngest, ShutdownRequestFlagsTheOwnerAndAnswersFirst) {
  Fixture& f = fixture();
  EXPECT_FALSE(f.daemon->shutdown_requested());
  serve::Request request;
  request.kind = serve::RequestKind::kShutdown;
  request.id = 99;
  serve::Client client = connect();
  auto response = client.call(request);
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_TRUE(response.value().ok);
  EXPECT_TRUE(f.daemon->shutdown_requested());
  f.daemon->stop();
  f.daemon.reset();
}

// ---- continuous telemetry (its own daemon; the shared fixture stays
// telemetry-off so the oracle byte-equalities above are undisturbed) ------

TEST(ServeZTelemetry, LiveMetricsTraceTailAndSlowlogAnswer) {
  if constexpr (!dockmine::obs::kCompiledIn) GTEST_SKIP();
  dockmine::obs::reset_all();
  dockmine::obs::set_enabled(true);
  dockmine::obs::set_journal_enabled(true);

  TempDir state{"dockmine-serve-test-telemetry"};
  serve::ServeOptions options;
  options.job = test_spec();
  options.state_dir = state.str();
  options.telemetry.enabled = true;
  options.telemetry.sample_interval_ms = 10;
  options.telemetry.ring_capacity = 64;
  options.telemetry.slowlog_threshold_ms = 0.0;  // journal every query
  serve::ServeDaemon daemon(options);
  ASSERT_TRUE(daemon.start().ok());

  auto client = serve::Client::connect(daemon.port(), 10000);
  ASSERT_TRUE(client.ok());
  const auto call = [&client](serve::Request request) {
    auto response = client.value().call(request);
    EXPECT_TRUE(response.ok());
    EXPECT_TRUE(response.value().ok) << response.value().error;
    return std::move(response).value();
  };

  // Generate some traffic, then give the 10 ms sampler a few ticks.
  for (int i = 0; i < 5; ++i) (void)call(query("status"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Per-request latency attribution stamps server-side timings.
  const serve::Response stamped = call(query("status"));
  EXPECT_GE(stamped.parse_ms, 0.0);
  EXPECT_GE(stamped.handle_ms, 0.0);

  // status carries the alert block; the healthy daemon fires nothing.
  const json::Value status = stamped.body;
  ASSERT_TRUE(status["alerts"].is_object());
  EXPECT_EQ(status["alerts"]["firing"].as_int(), 0);

  // metrics: the sampled request-counter series exists and has samples.
  serve::Request metrics = query("metrics");
  metrics.name = "dockmine_serve_requests_total";
  const json::Value sampled = call(metrics).body;
  ASSERT_TRUE(sampled["series"].is_array());
  ASSERT_GT(sampled["series"].size(), 0u);
  EXPECT_GT(sampled["samples_taken"].as_uint(), 0u);

  // metrics op=rate answers for the same selector.
  metrics.op = "rate";
  metrics.window_ms = 60000;
  const json::Value rated = call(metrics).body;
  ASSERT_TRUE(rated["series"].is_array());

  // trace-tail: the journal recorded the handled requests.
  serve::Request tail = query("trace-tail");
  tail.n = 16;
  const json::Value trace = call(tail).body;
  ASSERT_TRUE(trace["events"].is_array());
  EXPECT_GT(trace["recorded"].as_uint(), 0u);

  // slowlog at threshold 0: every prior query is an entry.
  const json::Value slow = call(query("slowlog")).body;
  ASSERT_TRUE(slow["entries"].is_array());
  EXPECT_GT(slow["entries"].size(), 0u);
  EXPECT_DOUBLE_EQ(slow["threshold_ms"].as_double(), 0.0);

  daemon.stop();
  dockmine::obs::set_journal_enabled(false);
  dockmine::obs::set_enabled(false);
  dockmine::obs::reset_all();
}

}  // namespace
