// dockmine::shard unit tests: run-format round trips and strict-validation
// rejections, sharded-vs-monolithic equivalence (resident, spilled, and
// concurrent), shard-set export/import, and deterministic conflict folding.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "dockmine/compress/crc32.h"
#include "dockmine/dedup/by_type.h"
#include "dockmine/dedup/file_dedup.h"
#include "dockmine/shard/merger.h"
#include "dockmine/shard/run_format.h"
#include "dockmine/shard/sharded_index.h"
#include "dockmine/synth/generator.h"

namespace dockmine::shard {
namespace {

using dedup::ContentEntry;
using dedup::FileDedupIndex;
using filetype::Type;

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

RunEntry make_entry(std::uint64_t key, std::uint64_t count, std::uint64_t size,
                    Type type, std::uint32_t first_layer = 0,
                    bool multi = false) {
  RunEntry e;
  e.key = key;
  e.entry.count = count;
  e.entry.size = size;
  e.entry.type = type;
  e.entry.first_layer = first_layer;
  e.entry.multi_layer = multi;
  return e;
}

// Keys for shard 2 of 4: top two bits == 10.
std::vector<RunEntry> sample_entries() {
  const std::uint64_t base = 0x8000000000000000ULL;
  return {
      make_entry(base + 1, 3, 10, Type::kAsciiText, 0, true),
      make_entry(base + 7, 1, 0, Type::kEmpty, 2),
      make_entry(base + 0x100, 12, 4096, Type::kElfExecutable, 1, true),
  };
}

// Recompute the payload CRC after a deliberate payload mutation, so the
// validator under test is the semantic check, not the checksum.
void patch_crc(std::string& bytes) {
  const std::uint32_t crc =
      compress::Crc32::of(std::string_view(bytes).substr(kRunHeaderBytes));
  bytes[20] = static_cast<char>(crc & 0xff);
  bytes[21] = static_cast<char>((crc >> 8) & 0xff);
  bytes[22] = static_cast<char>((crc >> 16) & 0xff);
  bytes[23] = static_cast<char>((crc >> 24) & 0xff);
}

// ---------- run format ----------

TEST(RunFormatTest, EncodeDecodeRoundTrip) {
  const auto entries = sample_entries();
  const std::string bytes = encode_run(4, 2, entries);
  EXPECT_EQ(bytes.size(), kRunHeaderBytes + entries.size() * kRunEntryBytes);

  std::uint32_t shard_count = 0, shard_index = 0;
  auto decoded = decode_run(bytes, &shard_count, &shard_index);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message();
  EXPECT_EQ(shard_count, 4u);
  EXPECT_EQ(shard_index, 2u);
  ASSERT_EQ(decoded.value().size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(decoded.value()[i].key, entries[i].key);
    EXPECT_EQ(decoded.value()[i].entry.count, entries[i].entry.count);
    EXPECT_EQ(decoded.value()[i].entry.size, entries[i].entry.size);
    EXPECT_EQ(decoded.value()[i].entry.type, entries[i].entry.type);
    EXPECT_EQ(decoded.value()[i].entry.first_layer,
              entries[i].entry.first_layer);
    EXPECT_EQ(decoded.value()[i].entry.multi_layer,
              entries[i].entry.multi_layer);
  }
}

TEST(RunFormatTest, EmptyRunRoundTrips) {
  const std::string bytes = encode_run(1, 0, {});
  EXPECT_EQ(bytes.size(), kRunHeaderBytes);
  auto decoded = decode_run(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(RunFormatTest, FileWriteAndStreamingReaderRoundTrip) {
  TempDir dir("dockmine_shard_runfmt");
  const auto entries = sample_entries();
  const std::string path = (dir.path / "shard.dmrun").string();
  ASSERT_TRUE(write_run_file(path, 4, 2, entries).ok());

  auto reader = RunReader::open(path);
  ASSERT_TRUE(reader.ok()) << reader.error().message();
  EXPECT_EQ(reader.value().shard_count(), 4u);
  EXPECT_EQ(reader.value().shard_index(), 2u);
  EXPECT_EQ(reader.value().entry_count(), entries.size());

  RunEntry e;
  std::size_t i = 0;
  while (reader.value().next(e)) {
    ASSERT_LT(i, entries.size());
    EXPECT_EQ(e.key, entries[i].key);
    EXPECT_EQ(e.entry.count, entries[i].entry.count);
    ++i;
  }
  EXPECT_EQ(i, entries.size());
  EXPECT_TRUE(reader.value().exhausted());
}

TEST(RunFormatTest, RejectsHeaderDamage) {
  const std::string good = encode_run(4, 2, sample_entries());

  {
    std::string bad = good;
    bad[0] = 'X';  // magic
    EXPECT_FALSE(decode_run(bad).ok());
  }
  {
    std::string bad = good;
    bad[8] = 9;  // version
    EXPECT_FALSE(decode_run(bad).ok());
  }
  {
    std::string bad = good;
    bad[12] = 3;  // shard_count not a power of two
    EXPECT_FALSE(decode_run(bad).ok());
  }
  {
    std::string bad = good;
    bad[16] = 4;  // shard_index >= shard_count
    EXPECT_FALSE(decode_run(bad).ok());
  }
  {
    std::string bad = good;
    bad[24] = 2;  // entry_count disagrees with the file size
    EXPECT_FALSE(decode_run(bad).ok());
  }
  EXPECT_FALSE(decode_run(good.substr(0, good.size() - 1)).ok());  // truncated
  EXPECT_FALSE(decode_run(good + "x").ok());                       // trailing
  EXPECT_FALSE(decode_run(good.substr(0, 16)).ok());  // partial header
}

TEST(RunFormatTest, RejectsPayloadBitFlipViaChecksum) {
  std::string bad = encode_run(4, 2, sample_entries());
  bad[kRunHeaderBytes + 9] ^= 0x40;  // flip one payload bit
  auto decoded = decode_run(bad);
  ASSERT_FALSE(decoded.ok());
}

TEST(RunFormatTest, RejectsSemanticDamageEvenWithValidChecksum) {
  const std::uint64_t base = 0x8000000000000000ULL;

  {  // descending keys
    std::string bad = encode_run(
        4, 2, {make_entry(base + 9, 1, 1, Type::kPng),
               make_entry(base + 9, 1, 1, Type::kPng)});  // duplicate == not
    patch_crc(bad);                                       // strictly ascending
    EXPECT_FALSE(decode_run(bad).ok());
  }
  {  // key outside the declared partition
    std::string bad =
        encode_run(4, 2, {make_entry(base + 1, 1, 1, Type::kPng)});
    bad[16] = 3;  // claim shard 3; key's top bits still say shard 2
    patch_crc(bad);
    EXPECT_FALSE(decode_run(bad).ok());
  }
  {  // zero key
    std::string bad =
        encode_run(4, 2, {make_entry(base + 1, 1, 1, Type::kPng)});
    for (int i = 0; i < 8; ++i) bad[kRunHeaderBytes + i] = 0;
    bad[12] = 1;  // single shard so the partition check cannot mask it
    bad[16] = 0;
    patch_crc(bad);
    EXPECT_FALSE(decode_run(bad).ok());
  }
  {  // zero count
    std::string bad =
        encode_run(4, 2, {make_entry(base + 1, 0, 1, Type::kPng)});
    patch_crc(bad);
    EXPECT_FALSE(decode_run(bad).ok());
  }
  {  // type out of range
    std::string bad =
        encode_run(4, 2, {make_entry(base + 1, 1, 1, Type::kPng)});
    bad[kRunHeaderBytes + 28] = static_cast<char>(filetype::kTypeCount);
    patch_crc(bad);
    EXPECT_FALSE(decode_run(bad).ok());
  }
  {  // reserved flag bits
    std::string bad =
        encode_run(4, 2, {make_entry(base + 1, 1, 1, Type::kPng)});
    bad[kRunHeaderBytes + 29] = 0x02;
    patch_crc(bad);
    EXPECT_FALSE(decode_run(bad).ok());
  }
  {  // nonzero padding
    std::string bad =
        encode_run(4, 2, {make_entry(base + 1, 1, 1, Type::kPng)});
    bad[kRunHeaderBytes + 31] = 0x01;
    patch_crc(bad);
    EXPECT_FALSE(decode_run(bad).ok());
  }
}

TEST(RunFormatTest, ReaderOpenRejectsTruncatedFile) {
  TempDir dir("dockmine_shard_trunc");
  const std::string path = (dir.path / "t.dmrun").string();
  ASSERT_TRUE(write_run_file(path, 4, 2, sample_entries()).ok());
  std::error_code ec;
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 7, ec);
  ASSERT_FALSE(ec);
  EXPECT_FALSE(RunReader::open(path).ok());
  EXPECT_FALSE(RunReader::open((dir.path / "missing.dmrun").string()).ok());
}

// ---------- sharded index vs monolithic ----------

struct Population {
  FileDedupIndex monolithic{1 << 12};
  std::vector<std::vector<synth::FileInstance>> layer_files;

  explicit Population(std::uint64_t seed) {
    const synth::HubModel hub(synth::Calibration::paper(),
                              synth::Scale{80, seed});
    const auto& layers = hub.unique_layers();
    layer_files.resize(layers.size());
    for (std::size_t i = 0; i < layers.size(); ++i) {
      const synth::LayerSpec spec = hub.layer_spec(layers[i]);
      hub.layers().for_each_file(spec, [&](const synth::FileInstance& f) {
        layer_files[i].push_back(f);
        monolithic.add(f.content, f.size, f.type,
                       static_cast<std::uint32_t>(i));
      });
    }
  }
};

void expect_index_equals(const FileDedupIndex& merged,
                         const FileDedupIndex& expected) {
  EXPECT_EQ(merged.distinct_contents(), expected.distinct_contents());
  const auto a = merged.totals();
  const auto b = expected.totals();
  EXPECT_EQ(a.total_files, b.total_files);
  EXPECT_EQ(a.unique_files, b.unique_files);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.unique_bytes, b.unique_bytes);
  std::size_t mismatches = 0;
  expected.for_each([&](std::uint64_t key, const ContentEntry& entry) {
    const ContentEntry* other = merged.find(key);
    if (other == nullptr || other->count != entry.count ||
        other->size != entry.size || other->type != entry.type ||
        other->first_layer != entry.first_layer ||
        other->multi_layer != entry.multi_layer) {
      ++mismatches;
    }
  });
  EXPECT_EQ(mismatches, 0u);
}

TEST(ShardedIndexTest, ResidentEquivalenceAcrossShardCounts) {
  const Population pop(21);
  for (std::uint32_t shards : {1u, 4u, 16u}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    Config config;
    config.shards = shards;
    ShardedDedupIndex index(config);
    auto& writer = index.local_writer();
    for (std::size_t i = 0; i < pop.layer_files.size(); ++i) {
      for (const auto& f : pop.layer_files[i]) {
        writer.add(f.content, f.size, f.type, static_cast<std::uint32_t>(i));
      }
    }
    ShardMerger merger;
    { auto seal_status = index.seal_into(merger); ASSERT_TRUE(seal_status.ok()) << seal_status.error().message(); }
    auto merged = merger.merge_to_index(1 << 12);
    ASSERT_TRUE(merged.ok()) << merged.error().message();
    expect_index_equals(merged.value(), pop.monolithic);
    EXPECT_EQ(index.stats().spills, 0u);  // no spill dir configured
  }
}

TEST(ShardedIndexTest, ForcedSpillEquivalenceAndMemoryBound) {
  const Population pop(22);
  TempDir dir("dockmine_shard_spill");
  Config config;
  config.shards = 4;
  config.spill_dir = dir.path.string();
  config.spill_threshold_bytes = 1;  // clamped up to the floor; spills a lot
  ShardedDedupIndex index(config);
  auto& writer = index.local_writer();
  for (std::size_t i = 0; i < pop.layer_files.size(); ++i) {
    for (const auto& f : pop.layer_files[i]) {
      writer.add(f.content, f.size, f.type, static_cast<std::uint32_t>(i));
    }
  }
  const SpillStats stats = index.stats();
  EXPECT_GT(stats.spills, 0u);
  EXPECT_GT(stats.spilled_entries, 0u);
  EXPECT_GT(stats.spilled_bytes, 0u);
  // Out-of-core contract: the peak resident table footprint stays far below
  // the monolithic index, bounded per (writer, shard) by the spill trigger.
  EXPECT_LT(stats.peak_resident_bytes, pop.monolithic.memory_bytes());

  ShardMerger merger;
  { auto seal_status = index.seal_into(merger); ASSERT_TRUE(seal_status.ok()) << seal_status.error().message(); }
  EXPECT_GT(merger.stats().file_runs, 0u);
  auto merged = merger.merge_to_index(1 << 12);
  ASSERT_TRUE(merged.ok()) << merged.error().message();
  expect_index_equals(merged.value(), pop.monolithic);
}

TEST(ShardedIndexTest, ConcurrentWritersMatchMonolithic) {
  const Population pop(23);
  TempDir dir("dockmine_shard_mt");
  Config config;
  config.shards = 8;
  config.spill_dir = dir.path.string();
  config.spill_threshold_bytes = 1;
  ShardedDedupIndex index(config);

  const std::size_t kThreads = 4;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& writer = index.local_writer();
      for (std::size_t i = t; i < pop.layer_files.size(); i += kThreads) {
        for (const auto& f : pop.layer_files[i]) {
          writer.add(f.content, f.size, f.type, static_cast<std::uint32_t>(i));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(index.observations(), pop.monolithic.totals().total_files);
  ShardMerger merger;
  { auto seal_status = index.seal_into(merger); ASSERT_TRUE(seal_status.ok()) << seal_status.error().message(); }
  auto merged = merger.merge_to_index(1 << 12);
  ASSERT_TRUE(merged.ok()) << merged.error().message();
  expect_index_equals(merged.value(), pop.monolithic);
}

// ---------- backend spill equivalence ----------

// The DMSHRUN1 contract is backend-independent: a run frozen from an ART
// store must be byte-identical to one frozen from a sorted map holding the
// same observations. Feed the identical stream into both backends, export
// both shard sets, and cmp every run file pairwise.
TEST(ShardBackendEquivalenceTest, ArtRunFilesByteIdenticalToMapRuns) {
  for (std::uint64_t seed : {31u, 32u, 33u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const Population pop(seed);
    TempDir map_dir("dockmine_shard_eq_map");
    TempDir art_dir("dockmine_shard_eq_art");

    auto feed_and_export = [&](IndexBackend backend,
                               const std::string& dir) -> std::string {
      Config config;
      config.shards = 8;
      config.backend = backend;
      ShardedDedupIndex index(config);
      auto& writer = index.local_writer();
      for (std::size_t i = 0; i < pop.layer_files.size(); ++i) {
        for (const auto& f : pop.layer_files[i]) {
          writer.add(f.content, f.size, f.type, static_cast<std::uint32_t>(i));
        }
      }
      auto manifest = index.export_shard_set(dir);
      EXPECT_TRUE(manifest.ok());
      return manifest.ok() ? manifest.value() : std::string{};
    };

    const std::string map_manifest =
        feed_and_export(IndexBackend::kMap, map_dir.path.string());
    const std::string art_manifest =
        feed_and_export(IndexBackend::kArt, art_dir.path.string());
    ASSERT_FALSE(map_manifest.empty());
    ASSERT_FALSE(art_manifest.empty());

    auto slurp = [](const std::filesystem::path& path) {
      std::ifstream in(path, std::ios::binary);
      return std::string(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
    };
    auto run_names = [](const std::filesystem::path& dir) {
      std::vector<std::string> names;
      for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() == ".dmrun")
          names.push_back(entry.path().filename().string());
      }
      std::sort(names.begin(), names.end());
      return names;
    };

    const auto map_runs = run_names(map_dir.path);
    const auto art_runs = run_names(art_dir.path);
    ASSERT_FALSE(map_runs.empty());
    ASSERT_EQ(map_runs, art_runs) << "same (writer, shard) freeze schedule";
    for (const std::string& name : map_runs) {
      SCOPED_TRACE(name);
      const std::string map_bytes = slurp(map_dir.path / name);
      const std::string art_bytes = slurp(art_dir.path / name);
      ASSERT_FALSE(map_bytes.empty());
      EXPECT_EQ(map_bytes, art_bytes) << "run bytes diverge between backends";
    }
    // The manifests describe identical run sets, so they match too.
    EXPECT_EQ(slurp(map_manifest), slurp(art_manifest));
  }
}

// Validation must not have weakened with the backend swap: a single bit
// flip anywhere in an ART-written run file still gets the file rejected.
TEST(ShardBackendEquivalenceTest, ArtWrittenRunsStillRejectBitFlips) {
  const Population pop(34);
  TempDir dir("dockmine_shard_eq_flip");
  Config config;
  config.shards = 4;
  config.backend = IndexBackend::kArt;
  ShardedDedupIndex index(config);
  auto& writer = index.local_writer();
  for (std::size_t i = 0; i < pop.layer_files.size(); ++i) {
    for (const auto& f : pop.layer_files[i]) {
      writer.add(f.content, f.size, f.type, static_cast<std::uint32_t>(i));
    }
  }
  ASSERT_TRUE(index.export_shard_set(dir.path.string()).ok());

  std::size_t runs_checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    if (entry.path().extension() != ".dmrun") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes{std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>()};
    ASSERT_TRUE(decode_run(bytes).ok()) << "pristine run must validate";
    // Walk a bit position across files so the corpus collectively covers
    // header, key, and payload offsets.
    const std::size_t byte_pos = (runs_checked * 13) % bytes.size();
    const char flipped = static_cast<char>(
        bytes[byte_pos] ^ static_cast<char>(1u << (runs_checked % 8)));
    std::string damaged = bytes;
    damaged[byte_pos] = flipped;
    EXPECT_FALSE(decode_run(damaged).ok())
        << "bit flip at byte " << byte_pos << " must be rejected";
    ++runs_checked;
  }
  EXPECT_GT(runs_checked, 0u);
}

TEST(ShardedIndexTest, MergedAggregatesMatchMonolithicBreakdown) {
  const Population pop(24);
  Config config;
  config.shards = 4;
  ShardedDedupIndex index(config);
  auto& writer = index.local_writer();
  for (std::size_t i = 0; i < pop.layer_files.size(); ++i) {
    for (const auto& f : pop.layer_files[i]) {
      writer.add(f.content, f.size, f.type, static_cast<std::uint32_t>(i));
    }
  }
  ShardMerger merger;
  { auto seal_status = index.seal_into(merger); ASSERT_TRUE(seal_status.ok()) << seal_status.error().message(); }
  auto aggregates = merger.merge_aggregates();
  ASSERT_TRUE(aggregates.ok()) << aggregates.error().message();
  const MergedAggregates& agg = aggregates.value();

  const auto expected = pop.monolithic.totals();
  EXPECT_EQ(agg.totals.total_files, expected.total_files);
  EXPECT_EQ(agg.totals.unique_files, expected.unique_files);
  EXPECT_EQ(agg.totals.total_bytes, expected.total_bytes);
  EXPECT_EQ(agg.totals.unique_bytes, expected.unique_bytes);
  EXPECT_EQ(agg.distinct_contents, pop.monolithic.distinct_contents());
  EXPECT_EQ(agg.metadata_conflicts, 0u);

  const auto expected_cdf = pop.monolithic.repeat_count_cdf();
  EXPECT_EQ(agg.repeat_counts.size(), expected_cdf.size());
  EXPECT_DOUBLE_EQ(agg.repeat_counts.max(), expected_cdf.max());
  EXPECT_DOUBLE_EQ(agg.repeat_counts.quantile(0.5),
                   expected_cdf.quantile(0.5));

  EXPECT_EQ(agg.max_repeat.count, pop.monolithic.max_repeat().count);

  const dedup::TypeBreakdown expected_types(pop.monolithic);
  EXPECT_EQ(agg.by_type.overall().count, expected_types.overall().count);
  EXPECT_EQ(agg.by_type.overall().bytes, expected_types.overall().bytes);
  for (std::size_t t = 0; t < filetype::kTypeCount; ++t) {
    const Type type = static_cast<Type>(t);
    EXPECT_EQ(agg.by_type.by_type(type).count,
              expected_types.by_type(type).count);
    EXPECT_EQ(agg.by_type.by_type(type).unique_bytes,
              expected_types.by_type(type).unique_bytes);
  }
}

// ---------- shard set export / import ----------

TEST(ShardedIndexTest, ExportedShardSetMergesBackExactly) {
  const Population pop(25);
  TempDir dir("dockmine_shard_export");
  Config config;
  config.shards = 4;
  ShardedDedupIndex index(config);
  auto& writer = index.local_writer();
  for (std::size_t i = 0; i < pop.layer_files.size(); ++i) {
    for (const auto& f : pop.layer_files[i]) {
      writer.add(f.content, f.size, f.type, static_cast<std::uint32_t>(i));
    }
  }
  auto manifest = index.export_shard_set((dir.path / "set").string());
  ASSERT_TRUE(manifest.ok()) << manifest.error().message();
  EXPECT_TRUE(std::filesystem::exists(manifest.value()));

  ShardMerger merger;
  ASSERT_TRUE(merger.add_shard_set((dir.path / "set").string()).ok());
  auto merged = merger.merge_to_index(1 << 12);
  ASSERT_TRUE(merged.ok()) << merged.error().message();
  expect_index_equals(merged.value(), pop.monolithic);
}

TEST(ShardMergerTest, ShardSetWithDamagedRunFailsTheAdd) {
  const Population pop(26);
  TempDir dir("dockmine_shard_damaged");
  Config config;
  config.shards = 2;
  ShardedDedupIndex index(config);
  auto& writer = index.local_writer();
  for (std::size_t i = 0; i < pop.layer_files.size(); ++i) {
    for (const auto& f : pop.layer_files[i]) {
      writer.add(f.content, f.size, f.type, static_cast<std::uint32_t>(i));
    }
  }
  const std::string set_dir = (dir.path / "set").string();
  ASSERT_TRUE(index.export_shard_set(set_dir).ok());

  // Flip one byte in the first run file: the set must be rejected outright,
  // never partially aggregated.
  for (const auto& entry : std::filesystem::directory_iterator(set_dir)) {
    if (entry.path().extension() != ".dmrun") continue;
    std::fstream f(entry.path(), std::ios::in | std::ios::out |
                                     std::ios::binary);
    f.seekp(static_cast<std::streamoff>(kRunHeaderBytes + 3));
    char byte = 0;
    f.seekg(static_cast<std::streamoff>(kRunHeaderBytes + 3));
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    f.seekp(static_cast<std::streamoff>(kRunHeaderBytes + 3));
    f.write(&byte, 1);
    break;
  }
  ShardMerger merger;
  EXPECT_FALSE(merger.add_shard_set(set_dir).ok());
}

TEST(ShardMergerTest, MissingManifestFailsCleanly) {
  TempDir dir("dockmine_shard_nomanifest");
  ShardMerger merger;
  EXPECT_FALSE(merger.add_shard_set(dir.path.string()).ok());
}

// ---------- fold semantics through the merger ----------

TEST(ShardMergerTest, ConflictingMetadataFoldsDeterministicallyBothOrders) {
  const std::uint64_t key = 0x4000000000000001ULL;  // shard 1 of 4
  const RunEntry small = make_entry(key, 2, 10, Type::kAsciiText, 3);
  const RunEntry large = make_entry(key, 5, 99, Type::kPng, 7);

  for (bool swap : {false, true}) {
    SCOPED_TRACE(swap ? "large first" : "small first");
    ShardMerger merger;
    merger.add_memory_run({swap ? large : small});
    merger.add_memory_run({swap ? small : large});
    std::vector<std::pair<std::uint64_t, ContentEntry>> seen;
    ASSERT_TRUE(merger
                    .merge([&](std::uint64_t k, const ContentEntry& e) {
                      seen.emplace_back(k, e);
                    })
                    .ok());
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0].first, key);
    EXPECT_EQ(seen[0].second.count, 7u);
    // Deterministic winner: lexicographically smallest (size, type).
    EXPECT_EQ(seen[0].second.size, 10u);
    EXPECT_EQ(seen[0].second.type, Type::kAsciiText);
    EXPECT_EQ(seen[0].second.first_layer, 3u);
    EXPECT_TRUE(seen[0].second.multi_layer);  // differing first layers
    EXPECT_EQ(merger.stats().metadata_conflicts, 1u);
    EXPECT_EQ(merger.stats().distinct_contents, 1u);
    EXPECT_EQ(merger.stats().entries_read, 2u);
  }
}

TEST(ShardMergerTest, EmptyMergerYieldsEmptyAggregates) {
  ShardMerger merger;
  auto aggregates = merger.merge_aggregates();
  ASSERT_TRUE(aggregates.ok());
  EXPECT_EQ(aggregates.value().totals.total_files, 0u);
  EXPECT_EQ(aggregates.value().distinct_contents, 0u);
  EXPECT_EQ(aggregates.value().repeat_counts.size(), 0u);
}

TEST(ShardMergerTest, SingleEntryRunSurvivesUnchanged)
{
  const std::uint64_t key = 0x123456789abcdefULL;  // shard 0 of 4
  ShardMerger merger;
  merger.add_memory_run({make_entry(key, 4, 77, Type::kJpeg, 9, true)});
  auto merged = merger.merge_to_index(16);
  ASSERT_TRUE(merged.ok());
  const ContentEntry* entry = merged.value().find(key);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->count, 4u);
  EXPECT_EQ(entry->size, 77u);
  EXPECT_EQ(entry->type, Type::kJpeg);
  EXPECT_EQ(entry->first_layer, 9u);
  EXPECT_TRUE(entry->multi_layer);
  EXPECT_EQ(merged.value().metadata_conflicts(), 0u);
}

}  // namespace
}  // namespace dockmine::shard
