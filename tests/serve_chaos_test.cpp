// Chaos + concurrency tests for the serve daemon (core/serve).
//
// Where serve_test pins the protocol and the query-vs-batch oracle, this
// suite attacks the daemon's liveness and isolation guarantees:
//
//   * misbehaving clients (disconnect mid-request, slowloris dribble)
//     cost only their own connection;
//   * concurrent readers during an ingest commit see either the old
//     snapshot or the new one, byte-exact, never a torn mix — and the
//     epoch stamp always matches the bytes;
//   * killing the daemon mid-ingest loses the in-flight batch cleanly: a
//     restart replays the committed state and can re-ingest the batch;
//   * a mixed query/ingest hammer across threads is data-race-free (this
//     suite runs under TSan in tools/run_checks.sh and CI).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dockmine/core/pipeline.h"
#include "dockmine/core/serve.h"
#include "dockmine/core/wire.h"
#include "dockmine/http/socket.h"
#include "dockmine/json/json.h"
#include "dockmine/util/error.h"

namespace core = dockmine::core;
namespace serve = dockmine::core::serve;
namespace wire = dockmine::core::wire;
namespace json = dockmine::json;
namespace fs = std::filesystem;

namespace {

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& name)
      : path(fs::temp_directory_path() / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

// Smaller than serve_test's: chaos tests start several daemons and the
// hammer ingests extra batches.
core::JobSpec chaos_spec(std::uint64_t repositories = 6) {
  core::JobSpec spec;
  spec.repositories = repositories;
  spec.seed = 20170530;
  spec.light_calibration = true;
  spec.gzip_level = 1;
  spec.download_workers = 2;
  spec.analyze_workers = 2;
  spec.mode = core::ExecutionMode::kStaged;
  spec.shards = 2;
  return spec;
}

serve::Request query(const std::string& q) {
  serve::Request request;
  request.kind = serve::RequestKind::kQuery;
  request.id = 1;
  request.q = q;
  return request;
}

serve::Response must_call(serve::Client& client, const serve::Request& request) {
  auto response = client.call(request);
  EXPECT_TRUE(response.ok())
      << (response.ok() ? "" : response.error().to_string());
  return response.ok() ? response.value() : serve::Response{};
}

// ---- misbehaving clients -----------------------------------------------

TEST(ServeChaos, DisconnectMidRequestCostsOnlyThatConnection) {
  TempDir state{"dockmine-serve-chaos-disconnect"};
  serve::ServeOptions options;
  options.job = chaos_spec();
  options.state_dir = state.str();
  serve::ServeDaemon daemon(std::move(options));
  ASSERT_TRUE(daemon.start().ok());

  const std::string frame = wire::encode_frame(
      wire::FrameKind::kJson, serve::request_to_json(query("status")).dump());
  for (int round = 0; round < 8; ++round) {
    auto socket = dockmine::http::Socket::connect_loopback(daemon.port());
    ASSERT_TRUE(socket.ok());
    // Half a request, then vanish: header-only, mid-payload, or nothing.
    const std::size_t cut = round % 3 == 0   ? 0
                            : round % 3 == 1 ? wire::kFrameHeaderBytes
                                             : frame.size() - 3;
    if (cut != 0) {
      ASSERT_TRUE(socket.value().write_all(frame.substr(0, cut)).ok());
    }
    socket.value().close();
  }

  // The daemon shrugged all eight off; a real client still gets answers.
  auto client = serve::Client::connect(daemon.port(), 10000);
  ASSERT_TRUE(client.ok());
  const serve::Response response = must_call(client.value(), query("status"));
  EXPECT_TRUE(response.ok);
  EXPECT_EQ(response.epoch, 1u);
  daemon.stop();
}

TEST(ServeChaos, SlowlorisDribbleIsDroppedWithoutStallingOthers) {
  TempDir state{"dockmine-serve-chaos-slowloris"};
  serve::ServeOptions options;
  options.job = chaos_spec();
  options.state_dir = state.str();
  options.io_timeout_ms = 40;
  options.slowloris_ms = 250;  // drop a dribbler after a quarter second
  serve::ServeDaemon daemon(std::move(options));
  ASSERT_TRUE(daemon.start().ok());

  const std::string frame = wire::encode_frame(
      wire::FrameKind::kJson, serve::request_to_json(query("status")).dump());
  auto dribbler = dockmine::http::Socket::connect_loopback(daemon.port());
  ASSERT_TRUE(dribbler.ok());
  ASSERT_TRUE(dribbler.value().set_timeout_ms(200).ok());
  // One byte, then silence: never enough to complete the frame.
  ASSERT_TRUE(dribbler.value().write_all(frame.substr(0, 1)).ok());

  // While the dribbler hangs, other clients are served normally.
  auto client = serve::Client::connect(daemon.port(), 10000);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(must_call(client.value(), query("report")).ok);

  // The daemon eventually cuts the dribbler loose (EOF or reset).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool dropped = false;
  while (!dropped && std::chrono::steady_clock::now() < deadline) {
    auto chunk = dribbler.value().read_some();
    if (!chunk.ok()) {
      dropped = chunk.error().code() != dockmine::util::ErrorCode::kTimeout;
    } else if (chunk.value().empty()) {
      dropped = true;
    }
  }
  EXPECT_TRUE(dropped) << "slowloris connection was never dropped";

  // And the daemon still answers afterwards.
  EXPECT_TRUE(must_call(client.value(), query("status")).ok);
  daemon.stop();
}

// ---- snapshot isolation ------------------------------------------------

// Readers hammer the full report while an ingest commits. Every answer
// must be byte-identical to the pre-commit report or the post-commit
// report — never a torn mix — and its epoch stamp must match the bytes.
TEST(ServeChaos, NoTornReportsUnderConcurrentIngest) {
  TempDir state{"dockmine-serve-chaos-isolation"};
  serve::ServeOptions options;
  options.job = chaos_spec();
  options.state_dir = state.str();
  serve::ServeDaemon daemon(std::move(options));
  ASSERT_TRUE(daemon.start().ok());

  auto probe = serve::Client::connect(daemon.port(), 10000);
  ASSERT_TRUE(probe.ok());
  const serve::Response first = must_call(probe.value(), query("report"));
  ASSERT_TRUE(first.ok);
  const std::string epoch1_report = first.body.dump();

  struct Observation {
    std::uint64_t epoch;
    std::string report;
  };
  constexpr int kReaders = 4;
  std::atomic<bool> ingest_done{false};
  std::vector<std::vector<Observation>> observations(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      auto client = serve::Client::connect(daemon.port(), 10000);
      ASSERT_TRUE(client.ok());
      // Keep reading a little past the commit so both epochs are seen.
      int after_commit = 8;
      while (after_commit > 0) {
        auto response = client.value().call(query("report"));
        ASSERT_TRUE(response.ok()) << response.error().to_string();
        ASSERT_TRUE(response.value().ok);
        observations[r].push_back(
            {response.value().epoch, response.value().body.dump()});
        if (ingest_done.load(std::memory_order_acquire)) --after_commit;
      }
    });
  }

  serve::Request ingest;
  ingest.kind = serve::RequestKind::kIngest;
  ingest.id = 2;
  ingest.repositories = 5;
  ingest.seed = 4242;
  auto writer = serve::Client::connect(daemon.port(), 120000);
  serve::Response committed;
  if (writer.ok()) committed = must_call(writer.value(), ingest);
  // Release the readers before asserting: a failed ingest must not leave
  // them spinning past the test body.
  ingest_done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(committed.ok) << committed.error;
  EXPECT_EQ(committed.epoch, 2u);

  const serve::Response second = must_call(probe.value(), query("report"));
  ASSERT_TRUE(second.ok);
  ASSERT_EQ(second.epoch, 2u);
  const std::string epoch2_report = second.body.dump();
  ASSERT_NE(epoch1_report, epoch2_report);

  std::uint64_t saw_epoch1 = 0;
  std::uint64_t saw_epoch2 = 0;
  for (const auto& reader : observations) {
    std::uint64_t last_epoch = 0;
    for (const Observation& obs : reader) {
      // Epochs are monotone per connection, and the bytes match the epoch.
      EXPECT_GE(obs.epoch, last_epoch);
      last_epoch = obs.epoch;
      if (obs.epoch == 1) {
        EXPECT_EQ(obs.report, epoch1_report);
        ++saw_epoch1;
      } else {
        ASSERT_EQ(obs.epoch, 2u);
        EXPECT_EQ(obs.report, epoch2_report);
        ++saw_epoch2;
      }
    }
  }
  // The readers straddled the commit: both epochs were actually observed.
  EXPECT_GT(saw_epoch1, 0u);
  EXPECT_GT(saw_epoch2, 0u);
  daemon.stop();
}

// ---- crash mid-ingest --------------------------------------------------

// stop() lands while an ingest batch is running. The in-flight batch must
// be lost cleanly: a restart over the same state dir replays epoch 1 with
// byte-identical answers, and the same batch ingests fine afterwards.
TEST(ServeChaos, KillMidIngestLosesOnlyTheInFlightBatch) {
  TempDir state{"dockmine-serve-chaos-kill"};
  std::string epoch1_report;
  {
    serve::ServeOptions options;
    options.job = chaos_spec();
    options.state_dir = state.str();
    std::atomic<bool> ingest_started{false};
    options.on_ingest_begin = [&ingest_started] {
      ingest_started.store(true, std::memory_order_release);
    };
    serve::ServeDaemon daemon(std::move(options));
    ASSERT_TRUE(daemon.start().ok());
    epoch1_report = daemon.snapshot()->report.dump();

    // The killer waits for the ingest to be in flight, then stops the
    // daemon from outside (as the CLI owner would on SIGKILL-ish exit).
    std::thread killer([&daemon, &ingest_started] {
      while (!ingest_started.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      daemon.stop();
    });

    serve::Request ingest;
    ingest.kind = serve::RequestKind::kIngest;
    ingest.id = 3;
    ingest.repositories = 5;
    ingest.seed = 4242;
    auto client = serve::Client::connect(daemon.port(), 120000);
    ASSERT_TRUE(client.ok());
    auto response = client.value().call(ingest);
    // Either the error response got out before the socket died, or the
    // connection dropped — both are acceptable; a commit is not.
    if (response.ok()) EXPECT_FALSE(response.value().ok);
    killer.join();
  }

  // Restart: only the committed epoch-1 batch replays.
  serve::ServeOptions options;
  options.job = chaos_spec();
  options.state_dir = state.str();
  serve::ServeDaemon daemon(std::move(options));
  ASSERT_TRUE(daemon.start().ok());
  EXPECT_EQ(daemon.snapshot()->epoch, 1u);
  EXPECT_EQ(daemon.snapshot()->report.dump(), epoch1_report);

  // The lost batch ingests cleanly on the restarted daemon.
  serve::Request ingest;
  ingest.kind = serve::RequestKind::kIngest;
  ingest.id = 4;
  ingest.repositories = 5;
  ingest.seed = 4242;
  auto client = serve::Client::connect(daemon.port(), 120000);
  ASSERT_TRUE(client.ok());
  const serve::Response committed = must_call(client.value(), ingest);
  EXPECT_TRUE(committed.ok) << committed.error;
  EXPECT_EQ(committed.epoch, 2u);
  daemon.stop();
}

// ---- concurrency hammer (TSan target) ----------------------------------

// N reader threads fire mixed queries while the main thread commits two
// ingest batches. Run under TSan this is the daemon's data-race gate; the
// functional asserts keep it honest under the plain build too.
TEST(ServeChaos, MixedQueryIngestHammerIsRaceFree) {
  TempDir state{"dockmine-serve-chaos-hammer"};
  serve::ServeOptions options;
  options.job = chaos_spec(5);
  options.state_dir = state.str();
  serve::ServeDaemon daemon(std::move(options));
  ASSERT_TRUE(daemon.start().ok());

  constexpr int kReaders = 4;
  std::atomic<bool> stop_readers{false};
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      auto client = serve::Client::connect(daemon.port(), 30000);
      ASSERT_TRUE(client.ok());
      const std::vector<serve::Request> mix = [r] {
        std::vector<serve::Request> requests;
        requests.push_back(query("status"));
        serve::Request slice = query("report");
        slice.path = r % 2 == 0 ? "analysis.dedup" : "analysis.sharing";
        requests.push_back(slice);
        serve::Request ecdf = query("ecdf");
        ecdf.name = r % 2 == 0 ? "layers.cls" : "images.fis";
        ecdf.quantile = 0.5;
        requests.push_back(ecdf);
        requests.push_back(query("types"));
        return requests;
      }();
      std::uint64_t last_epoch = 0;
      std::size_t i = 0;
      while (!stop_readers.load(std::memory_order_acquire)) {
        auto response = client.value().call(mix[i++ % mix.size()]);
        ASSERT_TRUE(response.ok()) << response.error().to_string();
        ASSERT_TRUE(response.value().ok) << response.value().error;
        EXPECT_GE(response.value().epoch, last_epoch);
        last_epoch = response.value().epoch;
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  auto writer = serve::Client::connect(daemon.port(), 120000);
  std::vector<serve::Response> commits;
  if (writer.ok()) {
    for (std::uint64_t batch = 0; batch < 2; ++batch) {
      serve::Request ingest;
      ingest.kind = serve::RequestKind::kIngest;
      ingest.id = 10 + batch;
      ingest.repositories = 4;
      ingest.seed = 9000 + batch;
      commits.push_back(must_call(writer.value(), ingest));
    }
  }
  // Readers first, asserts after: no thread may outlive the test body.
  stop_readers.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  ASSERT_TRUE(writer.ok());
  ASSERT_EQ(commits.size(), 2u);
  for (std::uint64_t batch = 0; batch < 2; ++batch) {
    ASSERT_TRUE(commits[batch].ok) << commits[batch].error;
    EXPECT_EQ(commits[batch].epoch, 2 + batch);
  }
  EXPECT_GT(answered.load(), 0u);

  const std::shared_ptr<const serve::Snapshot> final = daemon.snapshot();
  EXPECT_EQ(final->epoch, 3u);
  EXPECT_EQ(final->batches.size(), 3u);
  daemon.stop();
}

}  // namespace
