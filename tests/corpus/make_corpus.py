#!/usr/bin/env python3
"""Deterministic generator for the fuzz regression corpus.

Each file is a malformed (or edge-case) input that once tripped — or is
designed to trip — the untrusted-side parsers: the gzip decompressor, the
tar reader, and the layer analyzer's whiteout handling. The corpus is
committed; fuzz_test replays every file on each run so the failure modes
stay covered forever. Re-running this script must reproduce the files
byte-for-byte (no timestamps, no randomness).

Usage: python3 make_corpus.py [output_dir]
"""

import gzip
import io
import os
import struct
import sys
import tarfile
import zlib


def tar_bytes(build):
    """Serialize a tar archive built by `build(tarfile.TarFile)`."""
    buf = io.BytesIO()
    # GNU format matches what docker layer tars in the wild mostly use.
    with tarfile.open(fileobj=buf, mode="w", format=tarfile.GNU_FORMAT) as tf:
        build(tf)
    return buf.getvalue()


def add_file(tf, name, data=b"", mode=0o644):
    info = tarfile.TarInfo(name)
    info.size = len(data)
    info.mode = mode
    info.mtime = 0
    tf.addfile(info, io.BytesIO(data))


def gzip_bytes(data):
    buf = io.BytesIO()
    with gzip.GzipFile(fileobj=buf, mode="wb", mtime=0) as gz:
        gz.write(data)
    return buf.getvalue()


def truncated_gzip_member():
    """A valid member with the tail (part of payload + CRC/ISIZE) cut off."""
    whole = gzip_bytes(b"x" * 4096)
    return whole[: len(whole) // 2]


def bad_crc_gzip_member():
    """Valid deflate stream, corrupted CRC32 trailer."""
    whole = bytearray(gzip_bytes(b"docker layer bytes " * 64))
    whole[-5] ^= 0xFF  # flip a CRC byte, leave ISIZE alone
    return bytes(whole)


def torn_longname_tar():
    """A GNU long-name ('L') header whose payload is cut mid-name.

    The reader sees typeflag L promising 300 bytes of name, but the
    archive ends inside the name payload — no data blocks, no terminator.
    """
    long_name = ("deeply/" * 42 + "leaf").encode()
    whole = tar_bytes(lambda tf: add_file(tf, long_name.decode(), b"payload"))
    # The GNU long-name member is the first 512-byte header + name blocks;
    # cut inside the name payload block.
    return whole[: 512 + 100]


def zero_length_ustar_entry():
    """A ustar header block whose name field is entirely NUL.

    Structurally a 'present' header (checksum valid) describing a nameless,
    zero-size regular file — degenerate but seen from sloppy writers. The
    reader must neither crash nor loop.
    """
    header = bytearray(512)
    # mode/uid/gid/size/mtime as zero octal fields.
    header[100:108] = b"0000644\x00"
    header[108:116] = b"0000000\x00"
    header[116:124] = b"0000000\x00"
    header[124:136] = b"00000000000\x00"
    header[136:148] = b"00000000000\x00"
    header[156] = ord("0")  # typeflag: regular file
    header[257:263] = b"ustar\x00"
    header[263:265] = b"00"
    # Checksum over the header with the checksum field spaced out.
    header[148:156] = b" " * 8
    checksum = sum(header)
    header[148:156] = ("%06o" % checksum).encode() + b"\x00 "
    return bytes(header) + b"\x00" * 1024  # end-of-archive marker


def whiteout_edges_tar():
    """Every `.wh.` whiteout spelling the analyzer must take a stance on:
    a plain whiteout, an opaque-directory marker, a bare `.wh.` name, a
    whiteout of a whiteout, and a normal file that merely contains `.wh.`
    mid-name (NOT a whiteout)."""

    def build(tf):
        add_file(tf, "etc/config", b"kept")
        add_file(tf, "etc/.wh.removed", b"")
        add_file(tf, "opt/.wh..wh..opq", b"")
        add_file(tf, ".wh.", b"")
        add_file(tf, "tmp/.wh..wh.double", b"")
        add_file(tf, "srv/file.wh.inside", b"not a whiteout")

    return tar_bytes(build)


def shard_run_bytes(shard_count, shard_index, entries):
    """Encode a dockmine::shard spill run (run_format.h, DMSHRUN1 v1).

    entries: list of (key, count, size, first_layer, type, multi_layer),
    sorted strictly ascending by key, keys in the declared partition.
    """
    payload = b"".join(
        struct.pack("<QQQIBBH", key, count, size, first_layer, ftype,
                    1 if multi else 0, 0)
        for key, count, size, first_layer, ftype, multi in entries
    )
    header = struct.pack(
        "<8sIIIIQ", b"DMSHRUN1", 1, shard_count, shard_index,
        zlib.crc32(payload) & 0xFFFFFFFF, len(entries)
    )
    return header + payload


def valid_shard_run():
    """A well-formed 3-entry run for shard 2 of 4 (keys' top bits = 0b10).

    fuzz_test asserts the exact fold of this run: 16 file instances over 3
    distinct contents, 3*10 + 1*0 + 12*4096 = 49182 total bytes.
    """
    base = 0x8000000000000000
    return shard_run_bytes(4, 2, [
        (base + 0x01, 3, 10, 0, 1, True),
        (base + 0x07, 1, 0, 2, 0, False),
        (base + 0x100, 12, 4096, 1, 2, True),
    ])


def truncated_shard_run():
    """The valid run cut mid-entry: the size/count check must reject it
    before the checksum is even consulted."""
    return valid_shard_run()[:-9]


def bitflipped_shard_run():
    """The valid run with one payload bit flipped (a count byte): structure
    still parses, the CRC must catch it — a damaged run can fail a merge but
    never skew one."""
    whole = bytearray(valid_shard_run())
    whole[32 + 8] ^= 0x04  # entry 0's count field
    return bytes(whole)


def wire_frame(kind, payload):
    """Encode a coordinator<->worker wire frame (core/wire.h, "DMWF"):
    magic, kind, zero flags/reserved, payload length, payload CRC32."""
    return (b"DMWF" + struct.pack("<BBHII", kind, 0, 0, len(payload),
                                  zlib.crc32(payload) & 0xFFFFFFFF)
            + payload)


def valid_wire_frame():
    """A well-formed JSON control frame (a worker heartbeat)."""
    return wire_frame(1, b'{"type":"heartbeat","worker":3,"lease":1,"obs":{}}')


def truncated_wire_frame():
    """The valid frame cut mid-payload: the reassembler must keep waiting
    for bytes (a TCP read boundary), never deliver or poison."""
    return valid_wire_frame()[:24]


def bitflipped_wire_frame():
    """The valid frame with one payload bit flipped: header parses, the
    CRC must reject it and poison the stream — a flipped frame may cost
    the connection (and its lease) but can never smuggle altered bytes."""
    whole = bytearray(valid_wire_frame())
    whole[16 + 9] ^= 0x10
    return bytes(whole)


SERVE_REQUEST = (b'{"type":"query","id":7,"q":"ecdf","name":"layers.cls",'
                 b'"quantile":0.5}')


def valid_serve_request():
    """A well-formed serve-daemon query frame (core/serve protocol): the
    richest request shape (ecdf + quantile), canonical field order so the
    round-trip dump comparison in fuzz_test is byte-exact."""
    return wire_frame(1, SERVE_REQUEST)


def truncated_serve_request():
    """The valid request cut mid-payload: the daemon's session loop must
    treat it as a read boundary and keep waiting (until slowloris)."""
    return valid_serve_request()[:30]


def bitflipped_serve_request():
    """The valid request with one payload bit flipped: CRC rejection must
    poison only that connection, never crash the daemon."""
    whole = bytearray(valid_serve_request())
    whole[16 + 20] ^= 0x08
    return bytes(whole)


def bad_document_serve_request():
    """A perfectly framed request whose JSON is valid but whose content is
    not a request (unknown selector): frame layer accepts, the total
    request parser must reject with kCorrupt — the error-response path."""
    return wire_frame(1, b'{"type":"query","id":3,"q":"drop-tables"}')


SERVE_METRICS_REQUEST = (b'{"type":"query","id":11,"q":"metrics",'
                         b'"name":"dockmine_serve_requests_total",'
                         b'"op":"rate","window_ms":60000}')


def valid_serve_metrics_request():
    """A well-formed telemetry query frame (query metrics op=rate):
    canonical field order matches request_to_json so the round-trip dump
    comparison in fuzz_test is byte-exact."""
    return wire_frame(1, SERVE_METRICS_REQUEST)


def truncated_serve_metrics_request():
    """The metrics request cut mid-payload: a read boundary, not an
    error — the session loop keeps waiting."""
    return valid_serve_metrics_request()[:40]


def bitflipped_serve_metrics_request():
    """The metrics request with one payload bit flipped: the frame CRC
    must reject it and poison only that connection."""
    whole = bytearray(valid_serve_metrics_request())
    whole[16 + 20] ^= 0x08
    return bytes(whole)


CORPUS = {
    "gzip_truncated_member.bin": truncated_gzip_member,
    "gzip_bad_crc.bin": bad_crc_gzip_member,
    "tar_torn_longname.bin": torn_longname_tar,
    "tar_zero_length_ustar.bin": zero_length_ustar_entry,
    "tar_whiteout_edges.bin": whiteout_edges_tar,
    # The whiteout tar again, as a gzip'd layer blob for the full
    # gunzip -> untar -> classify path.
    "layer_whiteout_edges.bin": lambda: gzip_bytes(whiteout_edges_tar()),
    # Shard spill runs (dockmine::shard run_format): one good, two damaged.
    "shard_run_valid.bin": valid_shard_run,
    "shard_run_truncated.bin": truncated_shard_run,
    "shard_run_bitflip.bin": bitflipped_shard_run,
    # Coordinator<->worker wire frames (core/wire): good, torn, damaged.
    "wire_frame_valid.bin": valid_wire_frame,
    "wire_frame_truncated.bin": truncated_wire_frame,
    "wire_frame_bitflip.bin": bitflipped_wire_frame,
    # Serve-daemon request frames (core/serve): good, torn, damaged, and a
    # well-framed non-request.
    "serve_request_valid.bin": valid_serve_request,
    "serve_request_truncated.bin": truncated_serve_request,
    "serve_request_bitflip.bin": bitflipped_serve_request,
    "serve_request_bad_doc.bin": bad_document_serve_request,
    # Telemetry query frames (query metrics): good, torn, damaged.
    "serve_request_metrics_valid.bin": valid_serve_metrics_request,
    "serve_request_metrics_truncated.bin": truncated_serve_metrics_request,
    "serve_request_metrics_bitflip.bin": bitflipped_serve_metrics_request,
}


def main():
    out_dir = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(__file__)
    for name, gen in sorted(CORPUS.items()):
        data = gen()
        path = os.path.join(out_dir, name)
        with open(path, "wb") as f:
            f.write(data)
        print(f"{name}: {len(data)} bytes")


if __name__ == "__main__":
    main()
