#include <gtest/gtest.h>

#include <filesystem>

#include "dockmine/registry/gc.h"

namespace dockmine::registry {
namespace {

namespace fs = std::filesystem;

class GcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("dockmine-gc-" + std::to_string(::getpid()));
    fs::remove_all(root_);
    auto opened = blob::DiskStore::open(root_);
    ASSERT_TRUE(opened.ok());
    store_ = std::make_unique<blob::DiskStore>(std::move(opened).value());
  }
  void TearDown() override { fs::remove_all(root_); }

  /// Store an image: layer blobs + config + manifest blob; returns the
  /// manifest JSON.
  std::string push_image(const std::string& repo,
                         std::initializer_list<std::string> layers) {
    Manifest manifest;
    manifest.repository = repo;
    for (const std::string& content : layers) {
      const auto digest = store_->put(content).value();
      manifest.layers.push_back(
          {digest, static_cast<std::uint64_t>(content.size())});
    }
    const std::string config = "config-of-" + repo;
    manifest.config_digest = store_->put(config).value();
    manifest.config_size = config.size();
    const std::string body = manifest_to_json(manifest);
    EXPECT_TRUE(store_->put(body).ok());
    return body;
  }

  fs::path root_;
  std::unique_ptr<blob::DiskStore> store_;
};

TEST_F(GcTest, SweepsOnlyUnreachableBlobs) {
  // Two images sharing a base layer; image B also has a private layer.
  const std::string a = push_image("team/a", {"shared-base-layer", "a-top"});
  const std::string b = push_image("team/b", {"shared-base-layer", "b-top"});
  const auto before = store_->usage().value();
  ASSERT_EQ(before.blobs, 2u /*manifests*/ + 2u /*configs*/ + 3u /*layers*/);

  // Delete image B: GC with only A live.
  const std::vector<std::string> live = {a};
  auto report = collect_garbage(live, *store_);
  ASSERT_TRUE(report.ok());
  // Swept: B's manifest, B's config, b-top. Kept: A's three + shared base.
  EXPECT_EQ(report.value().swept_blobs, 3u);
  EXPECT_EQ(report.value().live_blobs, 4u);

  // The shared base layer survived (the Fig. 23 hazard).
  EXPECT_TRUE(store_->contains(digest::Digest::of("shared-base-layer")));
  EXPECT_FALSE(store_->contains(digest::Digest::of("b-top")));
  // A is still fully pullable.
  auto manifest = manifest_from_json(a).value();
  for (const auto& layer : manifest.layers) {
    EXPECT_TRUE(store_->contains(layer.digest));
  }
  EXPECT_TRUE(store_->contains(manifest.config_digest));
}

TEST_F(GcTest, NoLiveManifestsSweepsEverything) {
  push_image("gone/one", {"l1", "l2"});
  auto report = collect_garbage({}, *store_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().live_blobs, 0u);
  EXPECT_EQ(store_->usage().value().blobs, 0u);
  EXPECT_GT(report.value().swept_bytes, 0u);
}

TEST_F(GcTest, IdempotentAndSafeOnAllLive) {
  const std::string a = push_image("keep/me", {"layer"});
  const std::vector<std::string> live = {a};
  auto first = collect_garbage(live, *store_);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().swept_blobs, 0u);
  auto second = collect_garbage(live, *store_);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().swept_blobs, 0u);
  EXPECT_EQ(second.value().live_blobs, 3u);
}

TEST_F(GcTest, MalformedLiveManifestAborts) {
  push_image("x/y", {"layer"});
  const std::vector<std::string> live = {"{not a manifest"};
  auto report = collect_garbage(live, *store_);
  ASSERT_FALSE(report.ok());
  // Nothing was swept on failure.
  EXPECT_GT(store_->usage().value().blobs, 0u);
}

}  // namespace
}  // namespace dockmine::registry
