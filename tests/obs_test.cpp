// dockmine::obs suite: concurrency hammers for every instrument kind,
// registry interning, tracer aggregation, the determinism property (two
// same-seed pipeline runs on a virtual clock report bit-identical metrics),
// and the overhead guard (the disabled path allocates nothing and records
// nothing). Built both ways by tools/run_checks.sh: the default tree and a
// -DDOCKMINE_OBS=OFF tree, where `kCompiledIn == false` flips the
// expectations below from "counted" to "compiled away".
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <thread>
#include <vector>

#include "dockmine/core/pipeline.h"
#include "dockmine/obs/export.h"
#include "dockmine/obs/heartbeat.h"
#include "dockmine/obs/journal.h"
#include "dockmine/obs/obs.h"
#include "dockmine/obs/span.h"

// ---- allocation probe (for the overhead guard) ----
//
// Program-wide operator new replacement that counts allocations while
// tracking is switched on. The probe window only ever wraps instrument
// record calls, so gtest's own allocations stay out of the tally.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_alloc_tracking{false};

void* counted_alloc(std::size_t size) {
  if (g_alloc_tracking.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dockmine {
namespace {

/// RAII: enables obs for one test and always switches it back off.
struct EnabledScope {
  EnabledScope() { obs::set_enabled(true); }
  ~EnabledScope() {
    obs::set_enabled(false);
    obs::reset_clock();
  }
};

// ---------- concurrency hammers ----------

TEST(ObsConcurrencyTest, CounterAndGaugeSurviveThreadHammer) {
  EnabledScope on;
  auto& counter = obs::Registry::global().counter("test_hammer_counter");
  auto& gauge = obs::Registry::global().gauge("test_hammer_gauge");
  counter.reset();
  gauge.reset();

  constexpr int kThreads = 8;
  constexpr int kIters = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        counter.add();
        gauge.add(3);
        gauge.sub(3);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  if constexpr (obs::kCompiledIn) {
    EXPECT_EQ(counter.value(),
              static_cast<std::uint64_t>(kThreads) * kIters);
  } else {
    EXPECT_EQ(counter.value(), 0u);
  }
  EXPECT_EQ(gauge.value(), 0);  // balanced add/sub in every outcome
}

TEST(ObsConcurrencyTest, HistogramShardsMergeToExactTotals) {
  EnabledScope on;
  auto& hist = obs::Registry::global().histogram("test_hammer_hist");
  hist.reset();

  constexpr int kThreads = 8;
  constexpr int kIters = 20'000;
  // Integral values: double sums are exact regardless of which shard each
  // thread lands in, so the totals below are equalities, not tolerances.
  double per_thread_sum = 0.0;
  for (int i = 0; i < kIters; ++i) per_thread_sum += (i % 1000) + 1;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        hist.observe(static_cast<double>((i % 1000) + 1));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  if constexpr (obs::kCompiledIn) {
    EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(hist.sum(), kThreads * per_thread_sum);
    const auto merged = hist.merged();
    EXPECT_EQ(merged.total(), hist.count());
    EXPECT_GT(merged.quantile(0.5), 0.0);
  } else {
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.sum(), 0.0);
  }
}

TEST(ObsConcurrencyTest, RegistryInterningIsStableUnderContention) {
  EnabledScope on;
  constexpr int kThreads = 8;
  std::vector<obs::Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        seen[t] = &obs::Registry::global().counter("test_intern_counter");
        // Snapshots race against interning of fresh names too.
        (void)obs::Registry::global().counter("test_intern_counter_" +
                                              std::to_string(t));
        if (i % 100 == 0) (void)obs::Registry::global().snapshot();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0]);  // one name, one instrument, one address
  }
}

TEST(ObsConcurrencyTest, TracerAggregatesAcrossThreads) {
  EnabledScope on;
  obs::Tracer::global().reset();

  constexpr int kThreads = 6;
  constexpr int kIters = 2'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        auto outer = obs::Tracer::global().span("hammer");
        obs::Tracer::global().record("inner", /*wall_ms=*/1.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto rows = obs::Tracer::global().snapshot();
  if constexpr (obs::kCompiledIn) {
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].path, "hammer");
    EXPECT_EQ(rows[0].count, static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(rows[1].path, "hammer/inner");
    EXPECT_EQ(rows[1].count, static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(rows[1].wall_ms, static_cast<double>(kThreads) * kIters);
  } else {
    EXPECT_TRUE(rows.empty());
  }
}

// ---------- span hierarchy ----------

TEST(ObsSpanTest, NestingBuildsSlashPathsOnVirtualClock) {
  EnabledScope on;
  obs::Tracer::global().reset();
  auto tick = std::make_shared<std::atomic<double>>(0.0);
  obs::set_clock([tick] { return tick->fetch_add(1.0); });

  {
    auto pipeline = obs::Tracer::global().span("pipeline");
    EXPECT_EQ(obs::Tracer::global().current_path(),
              obs::kCompiledIn ? "pipeline" : "");
    {
      auto download = obs::Tracer::global().span("download");
      obs::Tracer::global().record_at("pipeline/download/untar", 5.0, 2.0, 3);
    }
    auto analyze = obs::Tracer::global().span("analyze");
  }
  EXPECT_EQ(obs::Tracer::global().current_path(), "");

  const auto rows = obs::Tracer::global().snapshot();
  if constexpr (obs::kCompiledIn) {
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].path, "pipeline");
    EXPECT_EQ(rows[1].path, "pipeline/analyze");
    EXPECT_EQ(rows[2].path, "pipeline/download");
    EXPECT_EQ(rows[3].path, "pipeline/download/untar");
    EXPECT_EQ(rows[3].count, 3u);
    EXPECT_EQ(rows[3].wall_ms, 5.0);
    EXPECT_EQ(rows[3].cpu_ms, 2.0);
    // Virtual clock ticks once per read: every span saw a positive wall.
    EXPECT_GT(rows[0].wall_ms, 0.0);
    EXPECT_GT(rows[0].wall_ms, rows[1].wall_ms);  // parent covers children
  } else {
    EXPECT_TRUE(rows.empty());
  }
}

// ---------- determinism ----------

std::string instrumented_pipeline_dump() {
  obs::reset_all();
  auto tick = std::make_shared<std::atomic<double>>(0.0);
  obs::set_clock([tick] { return tick->fetch_add(1.0); });
  obs::set_enabled(true);

  core::PipelineOptions options;
  options.scale = synth::Scale{60, 5};
  options.calibration = synth::Calibration::light();
  // Single-worker pools: the order of every clock read and metric update is
  // scheduling-independent, so the whole report must reproduce exactly.
  options.download_workers = 1;
  options.analyze_workers = 1;
  options.gzip_level = 1;
  auto run = core::run_end_to_end(options);
  obs::set_enabled(false);
  obs::reset_clock();
  EXPECT_TRUE(run.ok());
  return obs::to_json(obs::collect()).dump();
}

TEST(ObsDeterminismTest, SameSeedPipelineReportsIdenticalMetrics) {
  const std::string first = instrumented_pipeline_dump();
  const std::string second = instrumented_pipeline_dump();
  EXPECT_EQ(first, second);
  if constexpr (obs::kCompiledIn) {
    EXPECT_NE(first.find("dockmine_download_layers_total"),
              std::string::npos);
    EXPECT_NE(first.find("dockmine_crawler_pages_total"), std::string::npos);
    EXPECT_NE(first.find("pipeline/analyze/classify"), std::string::npos);
    EXPECT_NE(first.find("pipeline/dedup"), std::string::npos);
  }
}

// ---------- overhead guard ----------

TEST(ObsOverheadTest, DisabledPathAllocatesAndRecordsNothing) {
  // Resolve every instrument (and the tracer singleton) before the probe
  // window: interning is the documented cold path.
  auto& counter = obs::Registry::global().counter("test_overhead_counter");
  auto& gauge = obs::Registry::global().gauge("test_overhead_gauge");
  auto& hist = obs::Registry::global().histogram("test_overhead_hist");
  auto& tracer = obs::Tracer::global();
  counter.reset();
  gauge.reset();
  hist.reset();
  obs::set_enabled(false);
  const std::size_t tracer_rows_before = tracer.snapshot().size();
  const std::uint64_t journal_before = obs::TraceJournal::global().recorded();

  g_alloc_count.store(0);
  g_alloc_tracking.store(true);
  for (int i = 0; i < 100'000; ++i) {
    counter.add();
    gauge.add(1);
    hist.observe(static_cast<double>(i));
    const obs::Timer timer;        // no clock read while disabled
    hist.observe(timer.ms());
    auto span = tracer.span("overhead");  // inert handle
    tracer.record("overhead_leaf", 1.0);
    // Journal half: every record site is one relaxed flag load while off.
    const obs::EventSpan event("overhead_event");
    obs::record_event("overhead_wait", obs::EventKind::kQueueWait, 0.0, 1.0,
                      obs::current_trace_context());
    const obs::ContextGuard adopt(obs::TraceContext{1, 1});
  }
  g_alloc_tracking.store(false);

  EXPECT_EQ(g_alloc_count.load(), 0u);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(tracer.snapshot().size(), tracer_rows_before);
  EXPECT_EQ(obs::TraceJournal::global().recorded(), journal_before);

  if constexpr (!obs::kCompiledIn) {
    // Compiled out: even the enabled path records nothing.
    obs::set_enabled(true);
    EXPECT_FALSE(obs::enabled());
    counter.add();
    hist.observe(1.0);
    EXPECT_EQ(counter.value(), 0u);
    EXPECT_EQ(hist.count(), 0u);
    obs::set_enabled(false);
  }
}

// ---------- reset_all fresh-start invariant ----------

TEST(ObsResetTest, ResetAllRestoresFreshStart) {
  obs::set_enabled(true);
  obs::set_journal_enabled(true);
  obs::set_node_id(7);
  auto& counter = obs::Registry::global().counter("test_reset_counter");
  auto& hist = obs::Registry::global().histogram("test_reset_hist");
  counter.add(3);
  hist.observe(42.0);
  obs::Tracer::global().record("reset_leaf", 1.0);
  { const obs::EventSpan span("reset_event"); }
  if constexpr (obs::kCompiledIn) {
    EXPECT_GT(obs::TraceJournal::global().recorded(), 0u);
    EXPECT_EQ(obs::node_id(), 7u);
  }

  obs::reset_all();

  // Everything observable starts over: registry values zeroed, tracer and
  // journal emptied, heartbeat stopped, node id back to 0. The enable
  // switches are configuration, not state, and stay as the caller set them.
  EXPECT_EQ(obs::node_id(), 0u);
  EXPECT_FALSE(obs::heartbeat_running());
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(obs::Tracer::global().snapshot().size(), 0u);
  EXPECT_EQ(obs::TraceJournal::global().recorded(), 0u);
  EXPECT_EQ(obs::TraceJournal::global().dropped(), 0u);
  EXPECT_TRUE(obs::TraceJournal::global().snapshot().empty());
  const auto report = obs::collect();
  for (const auto& [name, value] : report.metrics.counters) {
    EXPECT_EQ(value, 0u) << name;
  }
  EXPECT_TRUE(report.spans.empty());
  EXPECT_EQ(report.node, 0u);

  if constexpr (obs::kCompiledIn) {
    EXPECT_TRUE(obs::journal_enabled());  // switch untouched by reset_all
    // Id allocators restart, so the next seeded run reproduces: the first
    // span after reset gets trace 1 / span 1.
    obs::EventSpan probe("reset_probe");
    EXPECT_EQ(probe.context().trace_id, 1u);
    EXPECT_EQ(probe.context().span_id, 1u);
  }
  obs::set_journal_enabled(false);
  obs::set_enabled(false);
  obs::reset_all();
}

}  // namespace
}  // namespace dockmine
