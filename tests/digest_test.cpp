#include <gtest/gtest.h>

#include <set>
#include <string>

#include "dockmine/digest/digest.h"
#include "dockmine/digest/sha256.h"
#include "dockmine/util/rng.h"

namespace dockmine::digest {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256Test, NistVectors) {
  EXPECT_EQ(to_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(to_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(to_hex(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  EXPECT_EQ(to_hex(hasher.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShotAtAllSplitPoints) {
  const std::string message =
      "The quick brown fox jumps over the lazy dog, repeatedly, to cross "
      "block boundaries in interesting ways. 0123456789abcdef0123456789";
  const auto expected = Sha256::hash(message);
  for (std::size_t split = 0; split <= message.size(); split += 7) {
    Sha256 hasher;
    hasher.update(message.substr(0, split));
    hasher.update(message.substr(split));
    EXPECT_EQ(hasher.finish(), expected) << "split=" << split;
  }
}

TEST(Sha256Test, BlockBoundaryLengths) {
  // Lengths around the 64-byte block and 56-byte padding threshold.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string message(len, 'x');
    Sha256 incremental;
    for (char c : message) incremental.update(&c, 1);
    EXPECT_EQ(incremental.finish(), Sha256::hash(message)) << len;
  }
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 hasher;
  hasher.update("garbage");
  (void)hasher.finish();
  hasher.reset();
  hasher.update("abc");
  EXPECT_EQ(to_hex(hasher.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(DigestTest, ToStringRoundTrips) {
  const Digest d = Digest::of("layer content");
  const auto parsed = Digest::parse(d.to_string());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), d);
}

TEST(DigestTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Digest::parse("md5:abcd").ok());
  EXPECT_FALSE(Digest::parse("sha256:123").ok());
  EXPECT_FALSE(Digest::parse("sha256:" + std::string(64, 'z')).ok());
  EXPECT_TRUE(Digest::parse("sha256:" + std::string(64, 'a')).ok());
}

TEST(DigestTest, ShortHexIsPrefix) {
  const Digest d = Digest::of("abc");
  EXPECT_EQ(d.short_hex(), d.to_string().substr(7, 12));
}

TEST(DigestTest, FromU64DeterministicAndSpread) {
  EXPECT_EQ(Digest::from_u64(42), Digest::from_u64(42));
  std::set<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    keys.insert(Digest::from_u64(i).key64());
  }
  EXPECT_EQ(keys.size(), 10000u);  // no key64 collisions on sequential ids
}

TEST(DigestTest, EqualContentEqualDigestDifferentContentDifferent) {
  EXPECT_EQ(Digest::of("same"), Digest::of("same"));
  EXPECT_NE(Digest::of("same"), Digest::of("Same"));
  EXPECT_FALSE(Digest::of("x").is_zero());
  EXPECT_TRUE(Digest().is_zero());
}

}  // namespace
}  // namespace dockmine::digest
