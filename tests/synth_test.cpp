#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "dockmine/filetype/classifier.h"
#include "dockmine/synth/generator.h"
#include "dockmine/synth/materialize.h"
#include "dockmine/synth/popularity.h"

namespace dockmine::synth {
namespace {

Scale tiny() { return Scale{200, 99}; }

// ---------- FileModel ----------

class FileModelTest : public ::testing::Test {
 protected:
  Calibration cal = Calibration::paper();
  FileModel model{cal, 1'000'000, 42};
};

TEST_F(FileModelTest, ContentAttributesAreDeterministic) {
  util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const ContentId id = model.draw_content(rng);
    EXPECT_EQ(model.size_of(id), model.size_of(id));
    EXPECT_EQ(model.type_of(id), model.type_of(id));
    EXPECT_EQ(model.gzip_ratio_of(id), model.gzip_ratio_of(id));
  }
}

TEST_F(FileModelTest, EmptyContentHasZeroSize) {
  EXPECT_EQ(model.size_of(FileModel::kEmptyContentId), 0u);
  EXPECT_EQ(model.type_of(FileModel::kEmptyContentId), filetype::Type::kEmpty);
  EXPECT_TRUE(model.materialize(FileModel::kEmptyContentId).empty());
}

TEST_F(FileModelTest, EmptyFileFrequencyMatchesCalibration) {
  util::Rng rng(2);
  int empty = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    empty += FileModel::is_empty(model.draw_content(rng));
  }
  EXPECT_NEAR(empty / double(kDraws), cal.empty_file_prob, 0.002);
}

TEST_F(FileModelTest, PoolDrawsRepeatFreshDrawsDoNot) {
  util::Rng rng(3);
  std::unordered_set<ContentId> fresh_seen;
  std::unordered_set<ContentId> pool_seen;
  std::uint64_t pool_repeats = 0;
  for (int i = 0; i < 100000; ++i) {
    const ContentId id = model.draw_content(rng);
    if (FileModel::is_empty(id)) continue;
    if (FileModel::is_fresh(id)) {
      EXPECT_TRUE(fresh_seen.insert(id).second) << "fresh id repeated";
    } else if (!pool_seen.insert(id).second) {
      ++pool_repeats;
    }
  }
  EXPECT_GT(pool_repeats, 20000u);  // pool hits repeat heavily
  EXPECT_GT(fresh_seen.size(), 100u);
}

TEST_F(FileModelTest, MaterializedBytesMatchSizeAndType) {
  util::Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    const ContentId id = model.draw_content(rng);
    const std::string bytes = model.materialize(id);
    EXPECT_EQ(bytes.size(), model.size_of(id));
    const std::string path = model.path_for(id, i);
    // Only look at a classifier-sized prefix, as the analyzer does.
    const auto type = filetype::classify(
        path, std::string_view(bytes).substr(0, std::max<std::size_t>(512, 262)));
    EXPECT_EQ(type, model.type_of(id))
        << "path=" << path << " want=" << filetype::to_string(model.type_of(id))
        << " got=" << filetype::to_string(type);
  }
}

TEST_F(FileModelTest, MaterializeIsDeterministic) {
  util::Rng rng(5);
  const ContentId id = model.draw_content(rng);
  EXPECT_EQ(model.materialize(id), model.materialize(id));
}

TEST_F(FileModelTest, BigBiasProducesLargerFiles) {
  util::Rng rng(6);
  double big_bytes = 0, small_bytes = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    big_bytes += model.size_of(model.draw_content(rng, SizeBias::kBigFiles));
    small_bytes += model.size_of(model.draw_content(rng, SizeBias::kSmallFiles));
  }
  EXPECT_GT(big_bytes / kDraws, 3.0 * small_bytes / kDraws);
}

TEST_F(FileModelTest, PoolSizesFollowHeapsBudget) {
  const FileModel small_model(cal, 100'000, 42);
  const FileModel large_model(cal, 100'000'000, 42);
  EXPECT_GT(large_model.total_pool_entries(),
            small_model.total_pool_entries() * 5);
  // Sub-linear: x1000 instances should NOT mean x1000 contents.
  EXPECT_LT(large_model.total_pool_entries(),
            small_model.total_pool_entries() * 200);
}

// ---------- LayerModel ----------

TEST(LayerModelTest, SpecsDeterministicAndValid) {
  const Calibration cal = Calibration::paper();
  const FileModel files(cal, 1'000'000, 7);
  const LayerModel layers(cal, files, 7);
  for (LayerId id = 100; id < 400; ++id) {
    const LayerSpec a = layers.make_spec(id, LayerKind::kApp);
    const LayerSpec b = layers.make_spec(id, LayerKind::kApp);
    EXPECT_EQ(a.file_count, b.file_count);
    EXPECT_EQ(a.dir_count, b.dir_count);
    EXPECT_EQ(a.max_depth, b.max_depth);
    EXPECT_GE(a.dir_count, 1u);
    EXPECT_GE(a.max_depth, 1u);
    EXPECT_LE(a.max_depth, a.dir_count);
    EXPECT_LE(a.file_count, cal.files_max);
  }
}

TEST(LayerModelTest, EmptyLayerSpec) {
  const Calibration cal = Calibration::paper();
  const FileModel files(cal, 1'000'000, 7);
  const LayerModel layers(cal, files, 7);
  const LayerSpec spec =
      layers.make_spec(LayerModel::kEmptyLayerId, LayerKind::kEmpty);
  EXPECT_EQ(spec.file_count, 0u);
  EXPECT_EQ(spec.dir_count, 1u);
  const LayerSizes sizes = layers.sizes(spec);
  EXPECT_EQ(sizes.fls, 0u);
  EXPECT_GT(sizes.cls, 0u);  // even an empty gzip'd tar has bytes
}

TEST(LayerModelTest, FileStreamIsReplayable) {
  const Calibration cal = Calibration::paper();
  const FileModel files(cal, 1'000'000, 7);
  const LayerModel layers(cal, files, 7);
  const LayerSpec spec = layers.make_spec(12345, LayerKind::kApp);
  std::vector<ContentId> first, second;
  layers.for_each_file(spec, [&](const FileInstance& f) {
    first.push_back(f.content);
  });
  layers.for_each_file(spec, [&](const FileInstance& f) {
    second.push_back(f.content);
  });
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.size(), spec.file_count);
}

TEST(LayerModelTest, SizesAccumulateFiles) {
  const Calibration cal = Calibration::paper();
  const FileModel files(cal, 1'000'000, 7);
  const LayerModel layers(cal, files, 7);
  const LayerSpec spec = layers.make_spec(777, LayerKind::kApp);
  std::uint64_t sum = 0;
  layers.for_each_file(spec, [&](const FileInstance& f) { sum += f.size; });
  const LayerSizes sizes = layers.sizes(spec);
  EXPECT_EQ(sizes.fls, sum);
  EXPECT_GE(sizes.cls, LayerModel::kGzipBaseOverhead);
  if (sum > 0) EXPECT_LT(sizes.cls, sizes.fls + spec.file_count * 100 + 64);
}

// ---------- LineageModel ----------

TEST(LineageTest, ComposeDeterministicAndBounded) {
  const Calibration cal = Calibration::paper();
  const LineageModel lineage(cal, 10000, 5);
  for (std::uint64_t i = 0; i < 500; ++i) {
    const ImageSpec a = lineage.compose(0, i);
    const ImageSpec b = lineage.compose(0, i);
    EXPECT_EQ(a.layers, b.layers);
    EXPECT_GE(a.layers.size(), 1u);
    EXPECT_LE(a.layers.size(), cal.layers_max);
    std::set<LayerId> unique(a.layers.begin(), a.layers.end());
    EXPECT_EQ(unique.size(), a.layers.size()) << "duplicate layer in image";
  }
}

TEST(LineageTest, KindRecoverableFromId) {
  EXPECT_EQ(LineageModel::kind_of(LayerModel::kEmptyLayerId),
            LayerKind::kEmpty);
  EXPECT_EQ(LineageModel::kind_of(LineageModel::base_layer_id(3, 1)),
            LayerKind::kBase);
  EXPECT_EQ(LineageModel::kind_of(LineageModel::app_layer_id(9, 2)),
            LayerKind::kApp);
}

TEST(LineageTest, TwinsShareLayersWithClusterHead) {
  const Calibration cal = Calibration::paper();
  const LineageModel lineage(cal, 10000, 5);
  int twins_checked = 0;
  for (std::uint64_t i = 1; i < 4000 && twins_checked < 20; ++i) {
    if (!lineage.is_twin(i)) continue;
    const std::uint64_t head = i - i % cal.twin_cluster_size;
    const ImageSpec twin = lineage.compose(0, i);
    const ImageSpec head_image = lineage.compose(0, head);
    std::set<LayerId> head_layers(head_image.layers.begin(),
                                  head_image.layers.end());
    std::size_t shared = 0;
    for (LayerId id : twin.layers) shared += head_layers.count(id);
    EXPECT_GT(shared, 0u) << "twin " << i << " shares nothing with head";
    ++twins_checked;
  }
  EXPECT_GE(twins_checked, 10);
}

TEST(LineageTest, EmptyLayerAppearsInAboutHalfOfImages) {
  const Calibration cal = Calibration::paper();
  const LineageModel lineage(cal, 10000, 5);
  int with_empty = 0;
  constexpr int kImages = 4000;
  for (std::uint64_t i = 0; i < kImages; ++i) {
    const ImageSpec image = lineage.compose(0, i);
    for (LayerId id : image.layers) {
      if (id == LayerModel::kEmptyLayerId) {
        ++with_empty;
        break;
      }
    }
  }
  EXPECT_NEAR(with_empty / double(kImages), cal.empty_layer_prob, 0.05);
}

// ---------- PopularityModel ----------

TEST(PopularityTest, TopRepositoriesMatchPaper) {
  const auto top = PopularityModel::top_repositories();
  ASSERT_EQ(top.size(), 5u);
  EXPECT_EQ(top[0].name, "nginx");
  EXPECT_EQ(top[0].pulls, 650000000u);
  EXPECT_EQ(top[4].name, "ubuntu");
}

TEST(PopularityTest, MedianNearPaper) {
  const Calibration cal = Calibration::paper();
  const PopularityModel model(cal);
  util::Rng rng(8);
  std::vector<double> pulls;
  for (int i = 0; i < 50000; ++i) {
    pulls.push_back(static_cast<double>(model.sample(rng)));
  }
  std::sort(pulls.begin(), pulls.end());
  const double median = pulls[pulls.size() / 2];
  EXPECT_GT(median, 20);   // paper: 40
  EXPECT_LT(median, 80);
  EXPECT_LE(pulls.back(), cal.pulls_max);
}

// ---------- HubModel ----------

TEST(HubModelTest, DeterministicAcrossConstructions) {
  const HubModel a(Calibration::paper(), tiny());
  const HubModel b(Calibration::paper(), tiny());
  ASSERT_EQ(a.repositories().size(), b.repositories().size());
  ASSERT_EQ(a.images().size(), b.images().size());
  EXPECT_EQ(a.unique_layers(), b.unique_layers());
  for (std::size_t i = 0; i < a.repositories().size(); ++i) {
    EXPECT_EQ(a.repositories()[i].name, b.repositories()[i].name);
    EXPECT_EQ(a.repositories()[i].pull_count, b.repositories()[i].pull_count);
  }
}

TEST(HubModelTest, RepositoryNamesUniqueAndValid) {
  const HubModel hub(Calibration::paper(), tiny());
  std::set<std::string> names;
  for (const RepoSpec& repo : hub.repositories()) {
    EXPECT_TRUE(registry::is_valid_repository_name(repo.name)) << repo.name;
    EXPECT_TRUE(names.insert(repo.name).second) << "duplicate " << repo.name;
  }
  EXPECT_EQ(names.size(), tiny().repositories);
}

TEST(HubModelTest, FailureClassesRoughlyMatchPaperRates) {
  const HubModel hub(Calibration::paper(), Scale{4000, 11});
  std::uint64_t auth = 0, no_latest = 0;
  for (const RepoSpec& repo : hub.repositories()) {
    auth += repo.requires_auth;
    no_latest += !repo.has_latest;
  }
  const double n = static_cast<double>(hub.repositories().size());
  // Paper: 23.9% failures split 13% auth / 87% no-latest.
  EXPECT_NEAR(auth / n, 0.239 * 0.13, 0.02);
  EXPECT_NEAR(no_latest / n, 0.239 * 0.87, 0.03);
  EXPECT_EQ(hub.downloadable_images(),
            static_cast<std::uint64_t>(std::count_if(
                hub.repositories().begin(), hub.repositories().end(),
                [](const RepoSpec& r) {
                  return r.has_latest && !r.requires_auth;
                })));
}

TEST(HubModelTest, UniqueLayersCoverDownloadableImagesOnly) {
  const HubModel hub(Calibration::paper(), tiny());
  std::set<LayerId> expected;
  for (const RepoSpec& repo : hub.repositories()) {
    if (repo.image_index < 0 || repo.requires_auth) continue;
    const ImageSpec& image = hub.images()[repo.image_index];
    expected.insert(image.layers.begin(), image.layers.end());
  }
  std::set<LayerId> actual(hub.unique_layers().begin(),
                           hub.unique_layers().end());
  EXPECT_EQ(actual, expected);
}

// ---------- Materializer ----------

TEST(MaterializerTest, LayerBlobIsValidGzipTar) {
  const HubModel hub(Calibration::paper(), tiny());
  const Materializer materializer(hub);
  // Find a modest layer to keep the test fast.
  LayerSpec spec;
  for (LayerId id : hub.unique_layers()) {
    spec = hub.layer_spec(id);
    if (spec.file_count >= 3 && spec.file_count <= 50) break;
  }
  ASSERT_GE(spec.file_count, 3u);
  auto blob = materializer.layer_blob(spec);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob.value().substr(0, 2), "\x1f\x8b");
  // Deterministic bytes => deterministic digest (layer identity).
  auto again = materializer.layer_blob(spec);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(blob.value(), again.value());
}

TEST(MaterializerTest, PopulatePushesEveryTaggedImage) {
  const Scale scale{60, 123};
  const HubModel hub(Calibration::light(), scale);
  registry::Service service;
  const Materializer materializer(hub, /*gzip_level=*/1);
  auto pushed = materializer.populate(service);
  ASSERT_TRUE(pushed.ok());
  std::uint64_t tagged = 0;
  for (const RepoSpec& repo : hub.repositories()) tagged += repo.has_latest;
  EXPECT_EQ(pushed.value(), tagged);
  EXPECT_EQ(service.repository_count(), scale.repositories);

  // Auth-gated repos exist but refuse anonymous pulls.
  for (const RepoSpec& repo : hub.repositories()) {
    if (!repo.has_latest) continue;
    auto body = service.get_manifest(repo.name, "latest");
    if (repo.requires_auth) {
      EXPECT_FALSE(body.ok());
    } else {
      ASSERT_TRUE(body.ok()) << repo.name;
    }
  }
}

}  // namespace
}  // namespace dockmine::synth
