// Arena invariants: reset/reuse semantics, the no-escape lifetime rule
// (enforced by ASan poisoning when available), per-thread isolation under
// TSan, and the obs peak-residency gauge.
#include "dockmine/mem/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "dockmine/obs/obs.h"

#if defined(__SANITIZE_ADDRESS__)
#define ARENA_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ARENA_TEST_ASAN 1
#endif
#endif

#if defined(ARENA_TEST_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace dockmine::mem {
namespace {

TEST(ArenaTest, FreshArenaIsEmpty) {
  Arena arena;
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.high_water(), 0u);
  EXPECT_EQ(arena.resets(), 0u);
}

TEST(ArenaTest, AllocateBumpsAndAligns) {
  Arena arena;
  void* a = arena.allocate(1, 1);
  ASSERT_NE(a, nullptr);
  void* b = arena.allocate(8, 8);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  void* c = arena.allocate(64, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
  EXPECT_GE(arena.bytes_used(), 1u + 8u + 64u);
  // Distinct live allocations never alias.
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
}

TEST(ArenaTest, ResetReturnsUsedToZeroAndReusesCapacity) {
  Arena arena(1024);
  (void)arena.allocate(500);
  ASSERT_GE(arena.bytes_used(), 500u);
  const std::size_t reserved = arena.bytes_reserved();
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.resets(), 1u);
  // Capacity is retained, not freed: the next unit reuses the same block.
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  void* again = arena.allocate(500);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(arena.bytes_reserved(), reserved) << "steady state must not grow";
}

TEST(ArenaTest, HighWaterTracksMaxAcrossResets) {
  Arena arena(1024);
  (void)arena.allocate(300);
  arena.reset();
  EXPECT_EQ(arena.high_water(), arena.bytes_used() + 300u);
  (void)arena.allocate(100);
  arena.reset();
  EXPECT_GE(arena.high_water(), 300u) << "high water is a max, not last-unit";
  (void)arena.allocate(5000);
  EXPECT_GE(arena.high_water(), 5000u);
}

TEST(ArenaTest, OverflowGrowsThenResetCoalesces) {
  Arena arena(1024);
  // Overflow the first block several times within one unit.
  for (int i = 0; i < 40; ++i) (void)arena.allocate(1000);
  const std::size_t high = arena.high_water();
  ASSERT_GE(high, 40u * 1000u);
  arena.reset();
  // The retained capacity must hold the whole observed working set so the
  // steady state bumps within a single block.
  EXPECT_GE(arena.bytes_reserved(), high);
  const std::size_t reserved = arena.bytes_reserved();
  for (int i = 0; i < 40; ++i) (void)arena.allocate(1000);
  EXPECT_EQ(arena.bytes_reserved(), reserved) << "re-split after coalesce";
}

TEST(ArenaTest, InternCopiesBytes) {
  Arena arena;
  std::string source = "var/lib/docker";
  const std::string_view interned = arena.intern(source);
  source.assign("XXXXXXXXXXXXXX");  // mutating the source must not matter
  EXPECT_EQ(interned, "var/lib/docker");
  EXPECT_TRUE(arena.intern("").empty());
  // Binary safety: embedded zero bytes survive.
  const std::string_view blob = arena.intern(std::string_view("a\0b", 3));
  ASSERT_EQ(blob.size(), 3u);
  EXPECT_EQ(blob[1], '\0');
}

TEST(ArenaTest, CreateConstructsTriviallyDestructibleTypes) {
  struct Pod {
    std::uint64_t a;
    std::uint32_t b;
  };
  Arena arena;
  Pod* pod = arena.create<Pod>(Pod{7, 9});
  ASSERT_NE(pod, nullptr);
  EXPECT_EQ(pod->a, 7u);
  EXPECT_EQ(pod->b, 9u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(pod) % alignof(Pod), 0u);
}

TEST(ArenaTest, AllocatorWorksWithStdContainers) {
  Arena arena;
  using Alloc = ArenaAllocator<std::pair<const std::string_view, int>>;
  std::map<std::string_view, int, std::less<>, Alloc> map{std::less<>{},
                                                          Alloc(arena)};
  for (int i = 0; i < 100; ++i) {
    map.emplace(arena.intern("key" + std::to_string(i)), i);
  }
  EXPECT_EQ(map.size(), 100u);
  EXPECT_EQ(map.find("key42")->second, 42);
  EXPECT_GE(arena.bytes_used(), 100 * sizeof(std::pair<std::string_view, int>));

  std::vector<int, ArenaAllocator<int>> vec{ArenaAllocator<int>(arena)};
  for (int i = 0; i < 1000; ++i) vec.push_back(i);
  EXPECT_EQ(vec[999], 999);
}

// The lifetime rule (DESIGN.md §14): nothing survives reset(). Under ASan
// the retained block is poisoned, so a stale pointer is not just invalid
// by contract but actively faults — this test proves the poison is armed.
TEST(ArenaTest, ResetPoisonsRetainedCapacityUnderAsan) {
#if defined(ARENA_TEST_ASAN)
  Arena arena(1024);
  char* stale = static_cast<char*>(arena.allocate(64));
  std::memset(stale, 0xAB, 64);
  EXPECT_FALSE(__asan_address_is_poisoned(stale));
  arena.reset();
  EXPECT_TRUE(__asan_address_is_poisoned(stale))
      << "stale pointer must fault after reset, not read recycled scratch";
  // Fresh allocations from the recycled block are unpoisoned again.
  char* fresh = static_cast<char*>(arena.allocate(64));
  EXPECT_FALSE(__asan_address_is_poisoned(fresh));
  std::memset(fresh, 0xCD, 64);
#else
  GTEST_SKIP() << "AddressSanitizer not enabled in this build";
#endif
}

// Per-thread arenas share only the process-wide peak publication (a relaxed
// atomic); everything else is thread-private. Run a hammer so TSan can
// certify there is no hidden sharing.
TEST(ArenaTest, PerThreadArenasAreIsolated) {
  constexpr int kThreads = 4;
  constexpr int kUnits = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      Arena arena(2048);
      for (int unit = 0; unit < kUnits; ++unit) {
        std::vector<std::string_view> mine;
        for (int i = 0; i < 50; ++i) {
          const std::string value =
              "t" + std::to_string(t) + "u" + std::to_string(unit) + "i" +
              std::to_string(i);
          mine.push_back(arena.intern(value));
        }
        // Verify under concurrency: another thread corrupting our block
        // would break these equalities.
        for (int i = 0; i < 50; ++i) {
          const std::string want =
              "t" + std::to_string(t) + "u" + std::to_string(unit) + "i" +
              std::to_string(i);
          ASSERT_EQ(mine[static_cast<std::size_t>(i)], want);
        }
        arena.reset();
        ASSERT_EQ(arena.bytes_used(), 0u);
      }
      ASSERT_EQ(arena.resets(), static_cast<std::uint64_t>(kUnits));
    });
  }
  for (auto& thread : threads) thread.join();
}

TEST(ArenaTest, ObsGaugeTracksPeakResidency) {
  auto& registry = obs::Registry::global();
  obs::set_enabled(true);
  auto& peak = registry.gauge("dockmine_arena_peak_bytes");
  auto& resets = registry.counter("dockmine_arena_resets_total");
  const std::uint64_t resets_before = resets.value();

  Arena arena;
  (void)arena.allocate(100000);
  arena.reset();  // metrics publish at unit boundaries

  EXPECT_GE(peak.value(), 100000) << "peak gauge must cover the high water";
  EXPECT_GE(resets.value(), resets_before + 1);
  obs::set_enabled(false);
}

}  // namespace
}  // namespace dockmine::mem
