#include <gtest/gtest.h>

#include <unordered_map>

#include "dockmine/core/cache_sim.h"
#include "dockmine/core/dataset.h"

namespace dockmine::core {
namespace {

TEST(LruCacheTest, HitAfterAdmission) {
  LruCache cache(100);
  EXPECT_FALSE(cache.access(1, 10));
  EXPECT_TRUE(cache.access(1, 10));
  EXPECT_EQ(cache.used_bytes(), 10u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedByBytes) {
  LruCache cache(120);
  cache.access(1, 60);
  cache.access(2, 40);
  cache.access(1, 60);   // touch 1; 2 becomes LRU
  cache.access(3, 50);   // 150 > 120: must evict 2 (and only 2)
  EXPECT_TRUE(cache.access(1, 60));
  EXPECT_FALSE(cache.access(2, 40));
  EXPECT_LE(cache.used_bytes(), 120u);
}

TEST(LruCacheTest, OversizedObjectNeverAdmitted) {
  LruCache cache(50);
  EXPECT_FALSE(cache.access(1, 100));
  EXPECT_FALSE(cache.access(1, 100));
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(CacheSimTest, DeterministicAndAccountsBytes) {
  std::vector<CachedImage> images(3);
  for (int i = 0; i < 3; ++i) {
    images[i].layer_keys = {static_cast<std::uint64_t>(i * 10 + 1),
                            static_cast<std::uint64_t>(i * 10 + 2)};
    images[i].layer_sizes = {100, 200};
    images[i].popularity_weight = i + 1.0;
  }
  const auto a = simulate_layer_cache(images, 10'000, 5000, 42);
  const auto b = simulate_layer_cache(images, 10'000, 5000, 42);
  EXPECT_EQ(a.layer_hits, b.layer_hits);
  EXPECT_EQ(a.pulls, 5000u);
  EXPECT_EQ(a.layer_requests, 10000u);
  EXPECT_EQ(a.bytes_requested, 5000u * 300u);
  // Everything fits: after warmup, hit ratio ~1.
  EXPECT_GT(a.hit_ratio(), 0.99);
}

TEST(CacheSimTest, HitRatioGrowsWithCapacity) {
  // Popularity-skewed pulls against a synthetic snapshot.
  const synth::HubModel hub(synth::Calibration::paper(), synth::Scale{150, 3});
  DatasetOptions options;
  options.file_dedup = false;
  const DatasetStats stats = DatasetStats::compute(hub, options);

  std::vector<CachedImage> images;
  const auto& aggs = stats.layer_aggregates();
  std::unordered_map<synth::LayerId, std::size_t> dense;
  for (std::size_t i = 0; i < hub.unique_layers().size(); ++i) {
    dense[hub.unique_layers()[i]] = i;
  }
  for (const synth::RepoSpec& repo : hub.repositories()) {
    if (repo.image_index < 0 || repo.requires_auth) continue;
    CachedImage entry;
    for (synth::LayerId id : hub.images()[repo.image_index].layers) {
      entry.layer_keys.push_back(id);
      entry.layer_sizes.push_back(aggs[dense.at(id)].cls);
    }
    entry.popularity_weight = static_cast<double>(repo.pull_count) + 1.0;
    images.push_back(std::move(entry));
  }

  double previous = -1.0;
  for (std::uint64_t capacity : {64ULL << 20, 1ULL << 30, 64ULL << 30}) {
    const auto result = simulate_layer_cache(images, capacity, 20000, 7);
    EXPECT_GE(result.hit_ratio(), previous);
    previous = result.hit_ratio();
  }
  // A big cache on Zipf-skewed pulls should serve most requests (the
  // paper's caching motivation, Fig. 8).
  EXPECT_GT(previous, 0.8);
}

TEST(CacheSimTest, EmptyInputsAreSafe) {
  const auto result = simulate_layer_cache({}, 1000, 100, 1);
  EXPECT_EQ(result.pulls, 0u);
  EXPECT_EQ(result.hit_ratio(), 0.0);
}

}  // namespace
}  // namespace dockmine::core
