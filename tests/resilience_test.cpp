// Chaos and resilience suite: fault injection, retry/backoff, circuit
// breaker, digest verification, and checkpoint/resume. The headline test
// asserts the property the whole subsystem exists for — under seeded
// transient faults and blob corruption, the downloader converges to exactly
// the fault-free outcome, delivering zero corrupt bytes.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <thread>

#include "dockmine/blob/disk_store.h"
#include "dockmine/core/report.h"
#include "dockmine/crawler/crawler.h"
#include "dockmine/downloader/downloader.h"
#include "dockmine/http/client.h"
#include "dockmine/http/server.h"
#include "dockmine/registry/faults.h"
#include "dockmine/registry/resilient.h"
#include "dockmine/synth/generator.h"
#include "dockmine/synth/materialize.h"

namespace dockmine {
namespace {

// One materialized registry shared by every test in this binary.
struct Fixture {
  static Fixture& get() {
    static Fixture instance;
    return instance;
  }
  synth::HubModel hub;
  registry::Service service;
  std::vector<std::string> all_repos;

 private:
  Fixture() : hub(synth::Calibration::light(), synth::Scale{150, 77}) {
    synth::Materializer materializer(hub, /*gzip_level=*/1);
    auto pushed = materializer.populate(service);
    EXPECT_TRUE(pushed.ok());
    for (const auto& repo : hub.repositories()) all_repos.push_back(repo.name);
  }
};

/// Virtual clock: sleep() advances now() instantly, so backoff schedules
/// and breaker cooldowns run in microseconds of real time.
registry::TimeSource virtual_time(std::shared_ptr<std::atomic<double>> clock) {
  return registry::TimeSource{
      [clock] { return clock->load(); },
      [clock](double ms) { clock->fetch_add(ms); }};
}

// ---------- backoff ----------

TEST(BackoffTest, DecorrelatedJitterIsDeterministicAndBounded) {
  util::Rng rng_a(42), rng_b(42);
  double prev_a = 0.0, prev_b = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double a = registry::decorrelated_jitter(10.0, 500.0, prev_a, rng_a);
    const double b = registry::decorrelated_jitter(10.0, 500.0, prev_b, rng_b);
    EXPECT_EQ(a, b);  // same seed, same schedule — exactly
    EXPECT_GE(a, 10.0);
    EXPECT_LE(a, 500.0);
    // Decorrelated jitter growth bound: next <= max(base, 3 * prev).
    const double anchor = prev_a > 0.0 ? prev_a : 10.0;
    EXPECT_LE(a, std::max(10.0, 3.0 * anchor) + 1e-9);
    prev_a = a;
    prev_b = b;
  }
}

TEST(BackoffTest, CapClampsTheSchedule) {
  util::Rng rng(7);
  double prev = 0.0;
  double peak = 0.0;
  for (int i = 0; i < 64; ++i) {
    prev = registry::decorrelated_jitter(50.0, 120.0, prev, rng);
    peak = std::max(peak, prev);
  }
  EXPECT_LE(peak, 120.0);
  EXPECT_GT(peak, 50.0);  // the schedule did leave the base
}

// ---------- circuit breaker ----------

TEST(CircuitBreakerTest, OpensHalfOpensAndCloses) {
  registry::BreakerPolicy policy;
  policy.failure_threshold = 3;
  policy.cooldown_ms = 100.0;
  policy.close_threshold = 2;
  registry::CircuitBreaker breaker(policy);

  using State = registry::CircuitBreaker::State;
  EXPECT_EQ(breaker.state(), State::kClosed);
  EXPECT_FALSE(breaker.on_failure(0.0));
  EXPECT_FALSE(breaker.on_failure(1.0));
  EXPECT_EQ(breaker.state(), State::kClosed);
  EXPECT_TRUE(breaker.on_failure(2.0));  // third consecutive: opens
  EXPECT_EQ(breaker.state(), State::kOpen);

  EXPECT_FALSE(breaker.allow(50.0));   // still cooling down
  EXPECT_TRUE(breaker.allow(103.0));   // cooldown elapsed: half-open probe
  EXPECT_EQ(breaker.state(), State::kHalfOpen);

  EXPECT_FALSE(breaker.on_success());  // needs close_threshold successes
  EXPECT_EQ(breaker.state(), State::kHalfOpen);
  EXPECT_TRUE(breaker.on_success());
  EXPECT_EQ(breaker.state(), State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenFailureReopens) {
  registry::BreakerPolicy policy;
  policy.failure_threshold = 1;
  policy.cooldown_ms = 10.0;
  registry::CircuitBreaker breaker(policy);

  using State = registry::CircuitBreaker::State;
  EXPECT_TRUE(breaker.on_failure(0.0));
  EXPECT_TRUE(breaker.allow(11.0));
  EXPECT_EQ(breaker.state(), State::kHalfOpen);
  EXPECT_TRUE(breaker.on_failure(11.0));  // probe failed: re-opens
  EXPECT_EQ(breaker.state(), State::kOpen);
  EXPECT_FALSE(breaker.allow(12.0));
  EXPECT_TRUE(breaker.allow(22.0));
}

// ---------- fault injector ----------

TEST(FaultInjectorTest, ScriptModeFailsExactlyFirstN) {
  Fixture& fx = Fixture::get();
  std::string repo;
  for (const auto& spec : fx.hub.repositories()) {
    if (spec.has_latest && !spec.requires_auth) {
      repo = spec.name;
      break;
    }
  }
  ASSERT_FALSE(repo.empty());

  registry::FaultySource faulty(fx.service);  // zero probabilities
  faulty.injector().fail_next(repo + ":latest", 2,
                              util::ErrorCode::kUnavailable);
  auto first = faulty.fetch_manifest(repo, "latest", false);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.error().code(), util::ErrorCode::kUnavailable);
  auto second = faulty.fetch_manifest(repo, "latest", false);
  ASSERT_FALSE(second.ok());
  auto third = faulty.fetch_manifest(repo, "latest", false);
  EXPECT_TRUE(third.ok());
  EXPECT_EQ(faulty.stats().injected_scripted, 2u);
  EXPECT_EQ(faulty.injector().attempts(repo + ":latest"), 3u);
}

TEST(FaultInjectorTest, SameSeedSameFaultSequencePerKey) {
  registry::FaultSpec spec;
  spec.seed = 99;
  spec.p_unavailable = 0.4;
  spec.p_reset = 0.2;
  registry::FaultInjector a(spec), b(spec);
  for (int i = 0; i < 200; ++i) {
    auto da = a.next("some:key", false);
    auto db = b.next("some:key", false);
    EXPECT_EQ(da.fail, db.fail);
    if (da.fail) EXPECT_EQ(da.error.code(), db.error.code());
  }
  const auto sa = a.stats(), sb = b.stats();
  EXPECT_EQ(sa.injected_unavailable, sb.injected_unavailable);
  EXPECT_EQ(sa.injected_reset, sb.injected_reset);
  EXPECT_GT(sa.injected_unavailable + sa.injected_reset, 0u);
}

// ---------- resilient source ----------

TEST(ResilientSourceTest, RetriesTransientsToSuccess) {
  Fixture& fx = Fixture::get();
  std::string repo;
  for (const auto& spec : fx.hub.repositories()) {
    if (spec.has_latest && !spec.requires_auth) {
      repo = spec.name;
      break;
    }
  }
  registry::FaultySource faulty(fx.service);
  faulty.injector().fail_next(repo + ":latest", 2,
                              util::ErrorCode::kUnavailable);

  auto clock = std::make_shared<std::atomic<double>>(0.0);
  registry::RetryPolicy retry;
  retry.max_attempts = 5;
  retry.base_delay_ms = 10.0;
  registry::ResilientSource resilient(faulty, retry, {}, /*seed=*/1,
                                      virtual_time(clock));
  auto manifest = resilient.fetch_manifest(repo, "latest", false);
  EXPECT_TRUE(manifest.ok());
  const auto stats = resilient.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.successes, 1u);
  EXPECT_GE(stats.backoff_ms, 2 * retry.base_delay_ms);
  EXPECT_GT(clock->load(), 0.0);  // backoff ran on the virtual clock
}

TEST(ResilientSourceTest, PermanentErrorsAreNotRetried) {
  Fixture& fx = Fixture::get();
  registry::FaultySource faulty(fx.service);
  auto clock = std::make_shared<std::atomic<double>>(0.0);
  registry::ResilientSource resilient(faulty, {}, {}, 1, virtual_time(clock));
  auto missing = resilient.fetch_manifest("ghost/none", "latest", false);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code(), util::ErrorCode::kNotFound);
  const auto stats = resilient.stats();
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.permanent_failures, 1u);
  EXPECT_EQ(clock->load(), 0.0);  // no backoff for a permanent answer
}

TEST(ResilientSourceTest, GivesUpAfterAttemptLimit) {
  Fixture& fx = Fixture::get();
  std::string repo = fx.all_repos.front();
  registry::FaultySource faulty(fx.service);
  faulty.injector().fail_next(repo + ":latest", 100,
                              util::ErrorCode::kReset);
  auto clock = std::make_shared<std::atomic<double>>(0.0);
  registry::RetryPolicy retry;
  retry.max_attempts = 3;
  retry.base_delay_ms = 1.0;
  registry::ResilientSource resilient(faulty, retry, {}, 1,
                                      virtual_time(clock));
  auto result = resilient.fetch_manifest(repo, "latest", false);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), util::ErrorCode::kReset);
  const auto stats = resilient.stats();
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.attempts_exhausted, 1u);
}

TEST(ResilientSourceTest, RetryBudgetBoundsTotalRetries) {
  Fixture& fx = Fixture::get();
  registry::FaultySource faulty(fx.service);
  for (int i = 0; i < 4; ++i) {
    faulty.injector().fail_next("repo" + std::to_string(i) + ":latest", 100,
                                util::ErrorCode::kUnavailable);
  }
  auto clock = std::make_shared<std::atomic<double>>(0.0);
  registry::RetryPolicy retry;
  retry.max_attempts = 10;
  retry.base_delay_ms = 1.0;
  retry.retry_budget = 5;  // far fewer than 4 requests * 9 retries
  registry::ResilientSource resilient(faulty, retry, {}, 1,
                                      virtual_time(clock));
  for (int i = 0; i < 4; ++i) {
    auto result =
        resilient.fetch_manifest("repo" + std::to_string(i), "latest", false);
    EXPECT_FALSE(result.ok());
  }
  const auto stats = resilient.stats();
  EXPECT_EQ(stats.retries, 5u);  // budget spent to the cent, never beyond
  EXPECT_GT(stats.budget_exhausted, 0u);
}

TEST(ResilientSourceTest, BreakerOpensRejectsAndRecovers) {
  Fixture& fx = Fixture::get();
  std::string repo;
  for (const auto& spec : fx.hub.repositories()) {
    if (spec.has_latest && !spec.requires_auth) {
      repo = spec.name;
      break;
    }
  }
  registry::FaultySource faulty(fx.service);
  faulty.injector().fail_next(repo + ":latest", 2, util::ErrorCode::kReset);

  auto clock = std::make_shared<std::atomic<double>>(0.0);
  registry::RetryPolicy retry;
  retry.max_attempts = 2;
  retry.base_delay_ms = 1.0;
  retry.max_delay_ms = 2.0;
  registry::BreakerPolicy breaker;
  breaker.failure_threshold = 2;
  breaker.cooldown_ms = 10'000.0;  // far beyond any backoff sleep
  registry::ResilientSource resilient(faulty, retry, breaker, 1,
                                      virtual_time(clock));

  // Request 1: two transient failures trip the breaker.
  EXPECT_FALSE(resilient.fetch_manifest(repo, "latest", false).ok());
  EXPECT_EQ(resilient.breaker_state("repo/" + repo),
            registry::CircuitBreaker::State::kOpen);
  EXPECT_EQ(resilient.stats().breaker_opens, 1u);

  // Request 2: fails fast — the upstream is never touched while open.
  const auto attempts_before = resilient.stats().attempts;
  auto rejected = resilient.fetch_manifest(repo, "latest", false);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code(), util::ErrorCode::kUnavailable);
  EXPECT_EQ(resilient.stats().attempts, attempts_before);
  EXPECT_GT(resilient.stats().breaker_rejections, 0u);

  // Cooldown passes (virtual time): half-open probe succeeds and closes.
  clock->fetch_add(20'000.0);
  EXPECT_TRUE(resilient.fetch_manifest(repo, "latest", false).ok());
  EXPECT_EQ(resilient.breaker_state("repo/" + repo),
            registry::CircuitBreaker::State::kClosed);
  EXPECT_EQ(resilient.stats().breaker_closes, 1u);
}

// ---------- the chaos test ----------

struct ChaosOutcome {
  downloader::DownloadStats download;
  registry::ResilienceStats resilience;
  registry::FaultStats faults;
  std::uint64_t delivered_blobs = 0;
  std::uint64_t digest_mismatches_delivered = 0;
};

ChaosOutcome run_chaos(std::uint64_t seed) {
  Fixture& fx = Fixture::get();
  registry::FaultSpec spec;
  spec.seed = seed;
  spec.p_unavailable = 0.15;  // ~23.5% transient fault rate overall
  spec.p_reset = 0.10;
  spec.p_slow = 0.05;
  spec.p_truncate = 0.005;  // 1% corruption overall, caught by verification
  spec.p_bitflip = 0.005;
  registry::FaultySource faulty(fx.service, spec);

  auto clock = std::make_shared<std::atomic<double>>(0.0);
  registry::RetryPolicy retry;
  retry.max_attempts = 8;
  retry.base_delay_ms = 1.0;
  retry.max_delay_ms = 50.0;
  registry::BreakerPolicy breaker;
  breaker.failure_threshold = 12;  // a 23% storm must not trip it
  breaker.cooldown_ms = 100.0;
  registry::ResilientSource resilient(faulty, retry, breaker, seed,
                                      virtual_time(clock));

  downloader::Options options;
  options.workers = 4;
  downloader::Downloader downloader(resilient, options);

  ChaosOutcome outcome;
  outcome.download = downloader.run(
      fx.all_repos, [&](downloader::DownloadedImage&& image) {
        for (std::size_t i = 0; i < image.manifest.layers.size(); ++i) {
          ++outcome.delivered_blobs;
          if (digest::Digest::of(*image.layer_blobs[i]) !=
              image.manifest.layers[i].digest) {
            ++outcome.digest_mismatches_delivered;
          }
        }
      });
  outcome.resilience = resilient.stats();
  outcome.faults = faulty.stats();
  return outcome;
}

TEST(ChaosTest, ConvergesToFaultFreeBaselineWithZeroCorruptDeliveries) {
  Fixture& fx = Fixture::get();

  // Fault-free baseline on a twin service (clean transfer stats).
  downloader::Options options;
  options.workers = 4;
  downloader::Downloader baseline_downloader(fx.service, options);
  const auto baseline = baseline_downloader.run(fx.all_repos, nullptr);
  ASSERT_EQ(baseline.succeeded, fx.hub.downloadable_images());

  const ChaosOutcome chaos = run_chaos(/*seed=*/7);

  // The faults really happened...
  EXPECT_GT(chaos.faults.total_injected(), 0u);
  EXPECT_GT(chaos.faults.injected_truncate + chaos.faults.injected_bitflip, 0u);
  EXPECT_GT(chaos.resilience.retries, 0u);

  // ...and the outcome is byte-for-byte the baseline's.
  EXPECT_EQ(chaos.download.succeeded, baseline.succeeded);
  EXPECT_EQ(chaos.download.failed_auth, baseline.failed_auth);
  EXPECT_EQ(chaos.download.failed_no_tag, baseline.failed_no_tag);
  EXPECT_EQ(chaos.download.failed_missing, baseline.failed_missing);
  EXPECT_EQ(chaos.download.failed_digest, 0u);
  EXPECT_EQ(chaos.download.failed_other, 0u);
  EXPECT_EQ(chaos.download.layers_fetched, baseline.layers_fetched);
  EXPECT_EQ(chaos.download.layers_deduped, baseline.layers_deduped);
  EXPECT_EQ(chaos.download.bytes_downloaded, baseline.bytes_downloaded);
  EXPECT_EQ(chaos.download.accounted(), chaos.download.attempted);

  // Digest verification caught every corrupt transfer before delivery.
  EXPECT_GT(chaos.delivered_blobs, 0u);
  EXPECT_EQ(chaos.digest_mismatches_delivered, 0u);
  EXPECT_GT(chaos.download.retries + chaos.download.bytes_discarded, 0u);
}

TEST(ChaosTest, SameSeedProducesIdenticalResilienceStats) {
  const ChaosOutcome a = run_chaos(/*seed=*/21);
  const ChaosOutcome b = run_chaos(/*seed=*/21);
  EXPECT_TRUE(a.resilience == b.resilience);
  EXPECT_EQ(a.download.succeeded, b.download.succeeded);
  EXPECT_EQ(a.download.bytes_downloaded, b.download.bytes_downloaded);
  EXPECT_EQ(a.download.retries, b.download.retries);
  EXPECT_EQ(a.faults.total_injected(), b.faults.total_injected());
}

// ---------- checkpoint / resume ----------

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

TEST(CheckpointTest, ResumeSkipsCompletedWorkWithoutRefetching) {
  Fixture& fx = Fixture::get();
  TempDir dir("dockmine_resilience_ckpt");

  std::vector<std::string> downloadable;
  for (const auto& spec : fx.hub.repositories()) {
    if (spec.has_latest && !spec.requires_auth) downloadable.push_back(spec.name);
  }
  ASSERT_GT(downloadable.size(), 4u);
  const std::vector<std::string> first_half(
      downloadable.begin(), downloadable.begin() + downloadable.size() / 2);

  // Phase 1: download half the repositories, checkpointing as we go.
  std::uint64_t phase1_succeeded = 0;
  {
    auto checkpoint = downloader::Checkpoint::open(dir.path);
    ASSERT_TRUE(checkpoint.ok());
    downloader::Options options;
    options.workers = 4;
    options.checkpoint = &checkpoint.value();
    downloader::Downloader phase1(fx.service, options);
    const auto stats = phase1.run(first_half, nullptr);
    phase1_succeeded = stats.succeeded;
    EXPECT_EQ(stats.succeeded, first_half.size());
    EXPECT_EQ(stats.repos_resumed, 0u);
    EXPECT_EQ(checkpoint.value().repos_completed(), first_half.size());
    EXPECT_GT(checkpoint.value().layers_recorded(), 0u);
  }  // "kill": downloader and checkpoint handle dropped

  // Phase 2: a fresh process resumes over the full repository list.
  const std::uint64_t blob_requests_before = fx.service.stats().blob_requests;
  auto checkpoint = downloader::Checkpoint::open(dir.path);
  ASSERT_TRUE(checkpoint.ok());
  EXPECT_EQ(checkpoint.value().repos_completed(), first_half.size());

  downloader::Options options;
  options.workers = 4;
  options.checkpoint = &checkpoint.value();
  downloader::Downloader phase2(fx.service, options);
  const auto stats = phase2.run(downloadable, nullptr);

  EXPECT_EQ(stats.repos_resumed, phase1_succeeded);
  EXPECT_EQ(stats.succeeded, downloadable.size() - phase1_succeeded);
  EXPECT_EQ(stats.accounted(), stats.attempted);
  // Layers shared with phase-1 images were reloaded from the checkpoint...
  EXPECT_GT(stats.layers_resumed, 0u);
  // ...and only genuinely new layers hit the registry.
  const std::uint64_t blob_requests_made =
      fx.service.stats().blob_requests - blob_requests_before;
  EXPECT_EQ(blob_requests_made, stats.layers_fetched);
}

TEST(CheckpointTest, TornTrailingJournalLineIsDropped) {
  TempDir dir("dockmine_resilience_torn");
  {
    auto checkpoint = downloader::Checkpoint::open(dir.path);
    ASSERT_TRUE(checkpoint.ok());
    ASSERT_TRUE(checkpoint.value().mark_repo_done("alice/app").ok());
    ASSERT_TRUE(
        checkpoint.value().put_layer(digest::Digest::of("bytes"), "bytes").ok());
  }
  {
    // A kill mid-append leaves a torn line; a kill between blob write and
    // journal append leaves a layer record with no blob. Simulate both.
    std::ofstream journal(dir.path / "completed.log", std::ios::app);
    journal << "layer sha256:"
            << "00000000000000000000000000000000"
            << "00000000000000000000000000000000\n";  // blob never written
    journal << "repo torn/entr";                      // no newline: torn
  }
  auto checkpoint = downloader::Checkpoint::open(dir.path);
  ASSERT_TRUE(checkpoint.ok());
  EXPECT_TRUE(checkpoint.value().repo_done("alice/app"));
  EXPECT_TRUE(checkpoint.value().has_layer(digest::Digest::of("bytes")));
  EXPECT_EQ(checkpoint.value().repos_completed(), 1u);
  EXPECT_EQ(checkpoint.value().layers_recorded(), 1u);
  EXPECT_FALSE(checkpoint.value().repo_done("torn/entr"));
}

TEST(CheckpointTest, EmptyJournalIsACleanSlate) {
  TempDir dir("dockmine_resilience_empty");
  std::filesystem::create_directories(dir.path);
  { std::ofstream journal(dir.path / "completed.log"); }  // zero bytes

  auto checkpoint = downloader::Checkpoint::open(dir.path);
  ASSERT_TRUE(checkpoint.ok());
  EXPECT_EQ(checkpoint.value().repos_completed(), 0u);
  EXPECT_EQ(checkpoint.value().layers_recorded(), 0u);
  // The journal is still appendable after the empty open.
  ASSERT_TRUE(checkpoint.value().mark_repo_done("fresh/start").ok());
  auto reopened = downloader::Checkpoint::open(dir.path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened.value().repo_done("fresh/start"));
}

TEST(CheckpointTest, JournalWithOnlyATornLineIsDiscardedAndSealed) {
  TempDir dir("dockmine_resilience_torn_only");
  std::filesystem::create_directories(dir.path);
  {
    std::ofstream journal(dir.path / "completed.log");
    journal << "repo torn/entr";  // no newline: the kill landed mid-append
  }

  auto checkpoint = downloader::Checkpoint::open(dir.path);
  ASSERT_TRUE(checkpoint.ok());
  EXPECT_EQ(checkpoint.value().repos_completed(), 0u);
  EXPECT_FALSE(checkpoint.value().repo_done("torn/entr"));

  // The torn fragment was truncated away, so the next append starts a clean
  // line instead of fusing onto the fragment ("repo torn/entrrepo x").
  ASSERT_TRUE(checkpoint.value().mark_repo_done("alice/app").ok());
  auto reopened = downloader::Checkpoint::open(dir.path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened.value().repo_done("alice/app"));
  EXPECT_FALSE(reopened.value().repo_done("torn/entr"));
  EXPECT_EQ(reopened.value().repos_completed(), 1u);
}

TEST(CheckpointTest, OrphanBlobWithoutJournalRecordIsInvisible) {
  TempDir dir("dockmine_resilience_orphan");
  const std::string content = "orphaned layer bytes";
  const digest::Digest digest = digest::Digest::of(content);
  {
    // A kill between DiskStore write and journal append leaves exactly
    // this: a blob on disk, no journal record.
    auto store = blob::DiskStore::open(dir.path / "blobs");
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value().put_with_digest(digest, content).ok());
  }

  auto checkpoint = downloader::Checkpoint::open(dir.path);
  ASSERT_TRUE(checkpoint.ok());
  EXPECT_FALSE(checkpoint.value().has_layer(digest));
  EXPECT_EQ(checkpoint.value().layers_recorded(), 0u);

  // Re-admitting the layer through the front door records it properly.
  ASSERT_TRUE(checkpoint.value().put_layer(digest, content).ok());
  EXPECT_TRUE(checkpoint.value().has_layer(digest));
  auto restored = checkpoint.value().layer(digest);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored.value(), content);
  auto reopened = downloader::Checkpoint::open(dir.path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened.value().has_layer(digest));
}

TEST(CheckpointTest, DoubleResumeAfterTwoCrashesAccountsEveryRepo) {
  Fixture& fx = Fixture::get();
  TempDir dir("dockmine_resilience_double");

  std::vector<std::string> downloadable;
  for (const auto& spec : fx.hub.repositories()) {
    if (spec.has_latest && !spec.requires_auth) downloadable.push_back(spec.name);
  }
  ASSERT_GT(downloadable.size(), 6u);
  const std::size_t third = downloadable.size() / 3;
  const std::vector<std::string> first_third(downloadable.begin(),
                                             downloadable.begin() + third);
  const std::vector<std::string> two_thirds(
      downloadable.begin(), downloadable.begin() + 2 * third);

  auto run_phase = [&](const std::vector<std::string>& repos) {
    auto checkpoint = downloader::Checkpoint::open(dir.path);
    EXPECT_TRUE(checkpoint.ok());
    downloader::Options options;
    options.workers = 4;
    options.checkpoint = &checkpoint.value();
    downloader::Downloader phase(fx.service, options);
    return phase.run(repos, nullptr);
  };  // each return is a "crash": handles dropped mid-flight state

  // Crash 1 happened after the first third...
  const auto phase1 = run_phase(first_third);
  EXPECT_EQ(phase1.succeeded, first_third.size());
  {
    // ...tearing the journal mid-append.
    std::ofstream journal(dir.path / "completed.log", std::ios::app);
    journal << "repo torn/mid-cras";  // no newline
  }

  // Crash 2 happened after two thirds...
  const auto phase2 = run_phase(two_thirds);
  EXPECT_EQ(phase2.repos_resumed, phase1.succeeded);
  EXPECT_EQ(phase2.succeeded, two_thirds.size() - first_third.size());
  {
    // ...stranding an orphan blob with no journal record.
    auto store = blob::DiskStore::open(dir.path / "blobs");
    ASSERT_TRUE(store.ok());
    const std::string orphan = "stranded by the second crash";
    ASSERT_TRUE(
        store.value().put_with_digest(digest::Digest::of(orphan), orphan).ok());
  }

  // The third resume completes the workload with exact accounting.
  const std::uint64_t blob_requests_before = fx.service.stats().blob_requests;
  const auto phase3 = run_phase(downloadable);
  EXPECT_EQ(phase3.repos_resumed, phase1.succeeded + phase2.succeeded);
  EXPECT_EQ(phase3.succeeded, downloadable.size() - 2 * third);
  EXPECT_EQ(phase3.accounted(), phase3.attempted);
  // Only genuinely new layers hit the registry; resumed layers came from
  // the checkpoint store despite the two crashes in between.
  const std::uint64_t blob_requests_made =
      fx.service.stats().blob_requests - blob_requests_before;
  EXPECT_EQ(blob_requests_made, phase3.layers_fetched);
  EXPECT_GT(phase3.layers_resumed, 0u);
}

// ---------- crawler retries ----------

TEST(CrawlerResilienceTest, RetriesTransientPagesToFullCoverage) {
  Fixture& fx = Fixture::get();
  registry::SearchIndex index(fx.service,
                              synth::Calibration::kSearchDuplicateFactor, 5);
  registry::FaultSpec spec;
  spec.seed = 3;
  spec.p_unavailable = 0.3;
  registry::FaultySearchBackend faulty(index, spec);
  crawler::Crawler crawler(faulty, /*page_size=*/37, /*max_page_attempts=*/8);
  const auto result = crawler.crawl_all();

  EXPECT_EQ(result.repositories.size(), fx.hub.repositories().size());
  EXPECT_GT(result.pages_retried, 0u);
  EXPECT_EQ(result.pages_failed, 0u);
}

TEST(CrawlerResilienceTest, PermanentPageErrorAbortsVisibly) {
  Fixture& fx = Fixture::get();
  registry::SearchIndex index(fx.service, 1.0, 5);
  registry::FaultySearchBackend faulty(index);
  faulty.injector().fail_next("page:/:0", 1, util::ErrorCode::kNotFound);
  crawler::Crawler crawler(faulty, 37);
  const auto result = crawler.crawl("/");
  EXPECT_EQ(result.pages_failed, 1u);
  EXPECT_EQ(result.pages_fetched, 0u);
  EXPECT_TRUE(result.repositories.empty());
}

TEST(CrawlerResilienceTest, ScriptedTransientCostsExactRetries) {
  Fixture& fx = Fixture::get();
  registry::SearchIndex index(fx.service, 1.0, 5);
  registry::FaultySearchBackend faulty(index);
  faulty.injector().fail_next("page:/:0", 2, util::ErrorCode::kUnavailable);
  crawler::Crawler crawler(faulty, 37, /*max_page_attempts=*/4);
  const auto result = crawler.crawl("/");
  EXPECT_EQ(result.pages_retried, 2u);
  EXPECT_EQ(result.pages_failed, 0u);
  EXPECT_FALSE(result.repositories.empty());
}

// ---------- http timeout (gateway-path composition) ----------

TEST(HttpTimeoutTest, SilentServerYieldsRetryableTimeout) {
  http::Listener listener;
  ASSERT_TRUE(listener.bind_loopback().ok());
  std::atomic<bool> stop{false};
  std::thread sink([&] {
    // Accept and hold the connection open without ever responding.
    auto connection = listener.accept_one();
    while (!stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  http::ClientOptions options;
  options.timeout_ms = 100;
  http::Client client(listener.port(), options);
  http::Request request;
  request.method = "GET";
  request.target = "/v2/";
  request.headers.emplace_back("Host", "127.0.0.1");
  auto response = client.request(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error().code(), util::ErrorCode::kTimeout);
  EXPECT_TRUE(response.error().retryable());

  stop.store(true);
  sink.join();  // before close(): the sink thread touched the listener
  listener.close();
}

// ---------- report surfacing ----------

TEST(ReportTest, ResilienceAndDownloadPanelsRender) {
  downloader::DownloadStats download;
  download.attempted = 10;
  download.succeeded = 8;
  download.failed_digest = 1;
  download.retries = 3;
  registry::ResilienceStats resilience;
  resilience.requests = 42;
  resilience.retries = 7;
  resilience.breaker_opens = 1;

  std::ostringstream out;
  core::print_download_stats(out, download);
  core::print_resilience(out, resilience);
  const std::string text = out.str();
  EXPECT_NE(text.find("digest="), std::string::npos);
  EXPECT_NE(text.find("retries=7"), std::string::npos);
  EXPECT_NE(text.find("breaker"), std::string::npos);
}

}  // namespace
}  // namespace dockmine
