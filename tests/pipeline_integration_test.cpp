// End-to-end integration: the full Fig.-2 pipeline in bytes mode, checked
// for internal consistency and against metadata mode on the same snapshot.
#include <gtest/gtest.h>

#include "dockmine/core/dataset.h"
#include "dockmine/core/pipeline.h"
#include "dockmine/dedup/by_type.h"

namespace dockmine::core {
namespace {

class PipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PipelineOptions options;
    options.calibration = synth::Calibration::light();
    options.scale = synth::Scale{120, 2024};
    options.download_workers = 4;
    options.analyze_workers = 2;
    options.gzip_level = 1;
    auto run = run_end_to_end(options);
    ASSERT_TRUE(run.ok()) << run.error().to_string();
    result = new PipelineResult(std::move(run).value());
    hub = new synth::HubModel(synth::Calibration::light(), options.scale);
  }
  static void TearDownTestSuite() {
    delete result;
    delete hub;
    result = nullptr;
    hub = nullptr;
  }

  static PipelineResult* result;
  static synth::HubModel* hub;
};

PipelineResult* PipelineFixture::result = nullptr;
synth::HubModel* PipelineFixture::hub = nullptr;

TEST_F(PipelineFixture, CrawlerFoundEveryRepository) {
  EXPECT_EQ(result->crawl.repositories.size(), hub->repositories().size());
  EXPECT_GT(result->crawl.raw_hits, result->crawl.repositories.size());
}

TEST_F(PipelineFixture, DownloadMatchesFailureModel) {
  const auto& dl = result->download;
  EXPECT_EQ(dl.attempted, hub->repositories().size());
  EXPECT_EQ(dl.succeeded, hub->downloadable_images());
  EXPECT_EQ(dl.succeeded + dl.failed_auth + dl.failed_no_tag +
                dl.failed_missing + dl.failed_other,
            dl.attempted);
  EXPECT_EQ(dl.failed_other, 0u);
  EXPECT_EQ(dl.failed_missing, 0u);
}

TEST_F(PipelineFixture, AnalyzerProfiledEveryDownloadedImage) {
  EXPECT_EQ(result->images.size(), result->download.succeeded);
  EXPECT_EQ(result->layer_profiles.size(), result->download.layers_fetched);
  for (const auto& image : result->images) {
    EXPECT_GT(image.layer_count, 0u);
  }
}

TEST_F(PipelineFixture, BytesModeMatchesMetadataModeExactly) {
  // The strongest equivalence claim: the dedup index built from real
  // gunzipped tar bytes equals the metadata-mode index on every aggregate.
  DatasetOptions options;
  options.file_dedup = true;
  const DatasetStats meta = DatasetStats::compute(*hub, options);

  ASSERT_NE(result->file_index, nullptr);
  const auto measured = result->file_index->totals();
  const auto expected = meta.file_index->totals();
  EXPECT_EQ(measured.total_files, expected.total_files);
  EXPECT_EQ(measured.unique_files, expected.unique_files);
  EXPECT_EQ(measured.total_bytes, expected.total_bytes);
  EXPECT_EQ(measured.unique_bytes, expected.unique_bytes);

  // Per-group instance counts agree too (classifier vs model labels).
  const dedup::TypeBreakdown bytes_breakdown(*result->file_index);
  const dedup::TypeBreakdown meta_breakdown(*meta.file_index);
  for (std::size_t g = 0; g < filetype::kGroupCount; ++g) {
    const auto group = static_cast<filetype::Group>(g);
    EXPECT_EQ(bytes_breakdown.by_group(group).count,
              meta_breakdown.by_group(group).count)
        << filetype::to_string(group);
    EXPECT_EQ(bytes_breakdown.by_group(group).bytes,
              meta_breakdown.by_group(group).bytes)
        << filetype::to_string(group);
  }
}

TEST_F(PipelineFixture, LayerSharingConsistentWithModel) {
  DatasetOptions options;
  options.file_dedup = false;
  const DatasetStats meta = DatasetStats::compute(*hub, options);
  EXPECT_EQ(result->sharing.images_seen(), meta.sharing.images_seen());
  EXPECT_EQ(result->sharing.distinct_layers(), meta.sharing.distinct_layers());
  EXPECT_GT(result->sharing.sharing_ratio(), 1.0);
  // Reference-count distributions must be identical (same lineage).
  const auto bytes_cdf = result->sharing.reference_count_cdf();
  const auto meta_cdf = meta.sharing.reference_count_cdf();
  EXPECT_DOUBLE_EQ(bytes_cdf.fraction_equal(1), meta_cdf.fraction_equal(1));
  EXPECT_DOUBLE_EQ(bytes_cdf.max(), meta_cdf.max());
}

TEST_F(PipelineFixture, ServiceSawExpectedTraffic) {
  EXPECT_GT(result->service.manifest_requests, 0u);
  EXPECT_GT(result->service.blob_requests, 0u);
  EXPECT_GT(result->service.bytes_served, 0u);
  EXPECT_EQ(result->service.unauthorized, result->download.failed_auth);
}

TEST(PipelineOptionsTest, DedupCanBeDisabled) {
  PipelineOptions options;
  options.calibration = synth::Calibration::light();
  options.scale = synth::Scale{30, 5};
  options.gzip_level = 1;
  options.run_file_dedup = false;
  auto run = run_end_to_end(options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().file_index, nullptr);
  EXPECT_GT(run.value().images.size(), 0u);
}

}  // namespace
}  // namespace dockmine::core
