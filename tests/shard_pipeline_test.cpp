// Equivalence property for the sharded dedup backend: the pipeline's
// canonical reports are byte-identical whether file observations go through
// the monolithic FileDedupIndex or the hash-partitioned, disk-spilling
// dockmine::shard backend — across shard counts, spill pressure (none /
// some / everything), execution modes, seeds, and K-way multi-node splits.
// Sharding changes *where* aggregation state lives, never *what* the
// dataset looks like.
//
// DOCKMINE_SHARD_SPILL_BYTES overrides the forced-spill thresholds, which
// the CI low-spill job uses to drive every run through the spill path.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "dockmine/core/multi_node.h"
#include "dockmine/core/pipeline.h"
#include "dockmine/obs/obs.h"

namespace dockmine::core {
namespace {

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

PipelineOptions small_options(std::uint64_t seed) {
  PipelineOptions options;
  // Light calibration: bytes-mode runs materialize every file for real, so
  // the paper-scale file populations would swamp a unit test.
  options.calibration = synth::Calibration::light();
  options.scale = synth::Scale{40, seed};
  options.gzip_level = 1;
  return options;
}

// Spill pressure levels for the grid. `kAll` clamps to the index's spill
// floor, so effectively every insertion wave freezes a run; `kSome` spills
// the hot shards a few times and leaves the rest resident.
enum class Spill { kNone, kSome, kAll };

std::uint64_t spill_threshold(Spill spill) {
  const char* env = std::getenv("DOCKMINE_SHARD_SPILL_BYTES");
  if (env != nullptr) return std::strtoull(env, nullptr, 10);
  return spill == Spill::kAll ? 1 : 16ull << 10;
}

PipelineResult run_sharded(const PipelineOptions& base, std::uint32_t shards,
                           Spill spill, const std::string& spill_dir,
                           ExecutionMode mode,
                           shard::IndexBackend backend = shard::IndexBackend::kDefault) {
  PipelineOptions options = base;
  options.mode = mode;
  options.shard.shards = shards;
  options.shard.backend = backend;
  if (spill != Spill::kNone) {
    options.shard.spill_dir = spill_dir;
    options.shard.spill_threshold_bytes = spill_threshold(spill);
    // Small initial maps keep the spill floor low enough that a unit-test
    // population genuinely cycles through the spill path.
    options.shard.expected_contents_per_shard = 4;
  }
  auto result = run_end_to_end(options);
  EXPECT_TRUE(result.ok()) << result.error().message();
  return std::move(result).value();
}

TEST(ShardPipelineTest, ShardAndSpillGridMatchesMonolithicByteForByte) {
  const std::uint64_t seed = 20170530;
  TempDir dir("dockmine_shard_grid");
  PipelineOptions base = small_options(seed);

  auto monolithic = run_end_to_end(base);
  ASSERT_TRUE(monolithic.ok()) << monolithic.error().message();
  ASSERT_TRUE(monolithic.value().file_index != nullptr);
  const std::string golden = pipeline_report_json(monolithic.value()).dump();
  ASSERT_FALSE(golden.empty());

  int case_id = 0;
  for (shard::IndexBackend backend :
       {shard::IndexBackend::kMap, shard::IndexBackend::kArt}) {
    for (std::uint32_t shards : {1u, 4u, 16u}) {
      for (Spill spill : {Spill::kNone, Spill::kSome, Spill::kAll}) {
        SCOPED_TRACE(std::string("backend ") + shard::backend_name(backend) +
                     " shards " + std::to_string(shards) + " spill " +
                     std::to_string(static_cast<int>(spill)));
        const std::string spill_dir =
            (dir.path / ("case-" + std::to_string(case_id++))).string();
        PipelineResult sharded = run_sharded(base, shards, spill, spill_dir,
                                             ExecutionMode::kStaged, backend);
        EXPECT_EQ(golden, pipeline_report_json(sharded).dump());
        EXPECT_TRUE(sharded.shard_summary.enabled);
        EXPECT_TRUE(sharded.file_index == nullptr);
        EXPECT_GT(sharded.shard_summary.observations, 0u);
        EXPECT_GT(sharded.shard_summary.distinct_contents, 0u);
        EXPECT_GT(sharded.shard_summary.runs_merged, 0u);
        if (spill == Spill::kAll) {
          EXPECT_GT(sharded.shard_summary.spills, 0u);
          EXPECT_GT(sharded.shard_summary.spilled_bytes, 0u);
        }
      }
    }
  }

  // Execution modes route observations through different thread structures
  // (single writer / staged pool / streamed consumers); all fold the same,
  // with either index backend.
  for (shard::IndexBackend backend :
       {shard::IndexBackend::kMap, shard::IndexBackend::kArt}) {
    for (ExecutionMode mode :
         {ExecutionMode::kSerial, ExecutionMode::kStreamed}) {
      SCOPED_TRACE(std::string("backend ") + shard::backend_name(backend) +
                   " mode " + std::to_string(static_cast<int>(mode)));
      const std::string spill_dir =
          (dir.path /
           (std::string("mode-") + shard::backend_name(backend) + "-" +
            std::to_string(static_cast<int>(mode))))
              .string();
      PipelineResult sharded =
          run_sharded(base, 4, Spill::kSome, spill_dir, mode, backend);
      EXPECT_EQ(golden, pipeline_report_json(sharded).dump());
    }
  }
}

TEST(ShardPipelineTest, DiagonalSeedsMatchUnderMaxSpillStreamed) {
  for (std::uint64_t seed : {std::uint64_t{7}, std::uint64_t{99991}}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    TempDir dir("dockmine_shard_seed_" + std::to_string(seed));
    PipelineOptions base = small_options(seed);

    auto monolithic = run_end_to_end(base);
    ASSERT_TRUE(monolithic.ok()) << monolithic.error().message();
    const std::string golden = pipeline_report_json(monolithic.value()).dump();

    PipelineResult sharded = run_sharded(base, 16, Spill::kAll,
                                         dir.path.string(),
                                         ExecutionMode::kStreamed);
    EXPECT_EQ(golden, pipeline_report_json(sharded).dump());
    EXPECT_GT(sharded.shard_summary.spills, 0u);
  }
}

TEST(ShardPipelineTest, MultiNodeSplitReproducesSingleNodeReportExactly) {
  const std::uint64_t seed = 20170530;
  TempDir dir("dockmine_shard_nodes");
  PipelineOptions base = small_options(seed);
  base.shard.shards = 4;
  base.shard.spill_threshold_bytes = spill_threshold(Spill::kSome);

  // Single-node sharded run: the reference the K-way splits must reproduce.
  PipelineOptions single = base;
  single.shard.spill_dir = (dir.path / "single").string();
  std::filesystem::create_directories(single.shard.spill_dir);
  auto single_run = run_end_to_end(single);
  ASSERT_TRUE(single_run.ok()) << single_run.error().message();
  const std::string golden = analysis_report_json(single_run.value()).dump();
  ASSERT_FALSE(golden.empty());

  for (std::uint32_t nodes : {2u, 3u}) {
    SCOPED_TRACE("nodes " + std::to_string(nodes));
    MultiNodeOptions options;
    options.base = base;
    options.nodes = nodes;
    options.export_root =
        (dir.path / ("split-" + std::to_string(nodes))).string();
    auto result = run_multi_node(options);
    ASSERT_TRUE(result.ok()) << result.error().message();
    const MultiNodeResult& mn = result.value();
    ASSERT_EQ(mn.node_results.size(), nodes);
    ASSERT_EQ(mn.shard_set_dirs.size(), nodes);

    // Each unique layer is owned by exactly one node, so the folded union
    // is the single-node dataset — byte for byte.
    EXPECT_EQ(golden, analysis_report_json(mn.combined).dump());
    EXPECT_TRUE(mn.combined.shard_summary.enabled);
    EXPECT_GT(mn.combined.shard_summary.runs_merged, 0u);
    EXPECT_EQ(mn.combined.shard_summary.observations,
              single_run.value().shard_summary.observations);
    EXPECT_EQ(mn.combined.shard_summary.distinct_contents,
              single_run.value().shard_summary.distinct_contents);
    // Every node did real work: delivered images partition the full set.
    std::size_t images = 0;
    for (const auto& node : mn.node_results) {
      EXPECT_GT(node.images.size(), 0u);
      images += node.images.size();
    }
    EXPECT_EQ(images, single_run.value().images.size());
  }
}

TEST(ShardPipelineTest, ForcedSpillKeepsPeakResidencyUnderConfiguredBound) {
  TempDir dir("dockmine_shard_bound");
  PipelineOptions options = small_options(20170530);
  options.mode = ExecutionMode::kStreamed;
  options.shard.shards = 4;
  options.shard.spill_dir = dir.path.string();
  options.shard.spill_threshold_bytes = spill_threshold(Spill::kAll);

  obs::set_enabled(true);

  // The spill trigger is max(threshold, spill floor); read the floor off a
  // probe index with the same config instead of hardcoding internals. (An
  // empty ART store holds zero bytes, so measuring initial residency — the
  // old approach — says nothing about where spills fire.)
  std::uint64_t floor = 0;
  {
    const shard::ShardedDedupIndex probe(options.shard);
    floor = probe.spill_floor();
  }
  ASSERT_GT(floor, 0u);
  const std::uint64_t trigger =
      std::max<std::uint64_t>(options.shard.spill_threshold_bytes, floor);
  // Every (writer, shard) store spills before exceeding its trigger; map
  // tables double and ART grows per-node, so the instantaneous peak per
  // store is < 2x the trigger either way. Allow one writer per worker on
  // either side of the queue plus the main thread.
  const std::uint64_t writers =
      options.download_workers + options.analyze_workers + 1;
  const std::uint64_t bound = writers * options.shard.shards * 2 * trigger;

  auto run = run_end_to_end(options);
  obs::set_enabled(false);
  ASSERT_TRUE(run.ok()) << run.error().message();

  const ShardedDedupSummary& summary = run.value().shard_summary;
  EXPECT_GT(summary.spills, 0u);
  EXPECT_GT(summary.peak_resident_bytes, 0u);
  EXPECT_LE(summary.peak_resident_bytes, bound);

  // The obs gauge carries the same high-water mark for live monitoring.
  const std::int64_t gauge =
      obs::Registry::global().gauge("dockmine_shard_resident_peak_bytes")
          .value();
  EXPECT_EQ(static_cast<std::uint64_t>(gauge), summary.peak_resident_bytes);
  EXPECT_GT(
      obs::Registry::global().counter("dockmine_shard_spills_total").value(),
      0u);
}

TEST(ShardPipelineTest, PipelineExportedShardSetMergesToReportedTotals) {
  TempDir dir("dockmine_shard_pipeexport");
  PipelineOptions options = small_options(20170530);
  options.shard.shards = 4;
  options.shard_export_dir = (dir.path / "set").string();

  auto run = run_end_to_end(options);
  ASSERT_TRUE(run.ok()) << run.error().message();
  ASSERT_TRUE(run.value().shard_dedup.has_value());
  ASSERT_FALSE(run.value().shard_summary.export_manifest.empty());
  EXPECT_TRUE(
      std::filesystem::exists(run.value().shard_summary.export_manifest));

  // A second process folding the exported set reaches the same totals the
  // in-process merge reported.
  shard::ShardMerger merger;
  ASSERT_TRUE(merger.add_shard_set(options.shard_export_dir).ok());
  auto aggregates = merger.merge_aggregates();
  ASSERT_TRUE(aggregates.ok()) << aggregates.error().message();
  const auto& reported = run.value().shard_dedup->totals;
  EXPECT_EQ(aggregates.value().totals.total_files, reported.total_files);
  EXPECT_EQ(aggregates.value().totals.unique_files, reported.unique_files);
  EXPECT_EQ(aggregates.value().totals.total_bytes, reported.total_bytes);
  EXPECT_EQ(aggregates.value().totals.unique_bytes, reported.unique_bytes);
  EXPECT_EQ(aggregates.value().distinct_contents,
            run.value().shard_summary.distinct_contents);
}

}  // namespace
}  // namespace dockmine::core
