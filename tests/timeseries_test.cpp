// Continuous-telemetry suite (dockmine::obs v3 + dockmine watch): ring
// contents, range/rate/quantile answers, selector matching, alert rule
// transitions (threshold, debounce, burn-rate) and the JSONL alert log,
// the watch frame derivation with its `--jsonl` line pinned byte-for-byte
// — all driven by sample_once() under the injectable clock — plus the
// reset_all satellite pins (heartbeat sequence restart, journal drop
// counter) and a TSan-aimed scrape-while-ingest hammer that runs the real
// background sampler against concurrent writers and readers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dockmine/core/watch.h"
#include "dockmine/json/json.h"
#include "dockmine/obs/alert.h"
#include "dockmine/obs/export.h"
#include "dockmine/obs/heartbeat.h"
#include "dockmine/obs/journal.h"
#include "dockmine/obs/obs.h"
#include "dockmine/obs/timeseries.h"
#include "dockmine/stats/histogram.h"

namespace dockmine {
namespace {

/// Fresh observability on a virtual clock owned by the caller. Follows the
/// obs_export_test discipline: reset first (re-bases uptime on the real
/// clock), then install the tick source, then enable.
std::shared_ptr<std::atomic<double>> fresh_obs(double start_ms = 0.0) {
  obs::reset_all();
  auto tick = std::make_shared<std::atomic<double>>(start_ms);
  obs::set_clock([tick] { return tick->load(); });
  obs::set_enabled(true);
  return tick;
}

void teardown_obs() {
  obs::set_enabled(false);
  obs::reset_clock();
  obs::reset_all();
}

TEST(TimeSeriesTest, SampleOncePinsRingContents) {
  auto tick = fresh_obs(1000.0);
  obs::TimeSeriesStore store;
  ASSERT_TRUE(store.configure({.interval_ms = 1000, .capacity = 8}));

  auto& reg = obs::Registry::global();
  reg.counter("ts_test_events_total").add(100);
  reg.gauge("ts_test_depth").set(7);
  auto& hist = reg.histogram("ts_test_latency_ms");
  hist.observe(2.0);
  hist.observe(8.0);
  store.sample_once();

  tick->store(2000.0);
  reg.counter("ts_test_events_total").add(50);
  reg.gauge("ts_test_depth").set(-3);
  hist.observe(512.0);
  store.sample_once();

  if constexpr (obs::kCompiledIn) {
    EXPECT_EQ(store.samples_taken(), 2u);

    const auto counter = store.read("ts_test_events_total");
    ASSERT_EQ(counter.size(), 2u);
    EXPECT_DOUBLE_EQ(counter[0].ts_ms, 1000.0);
    EXPECT_DOUBLE_EQ(counter[0].value, 100.0);
    EXPECT_DOUBLE_EQ(counter[0].delta, 0.0);  // no previous sample
    EXPECT_DOUBLE_EQ(counter[1].ts_ms, 2000.0);
    EXPECT_DOUBLE_EQ(counter[1].value, 150.0);
    EXPECT_DOUBLE_EQ(counter[1].delta, 50.0);

    const auto gauge = store.read("ts_test_depth");
    ASSERT_EQ(gauge.size(), 2u);
    EXPECT_DOUBLE_EQ(gauge[0].value, 7.0);
    EXPECT_DOUBLE_EQ(gauge[1].value, -3.0);
    EXPECT_DOUBLE_EQ(gauge[1].delta, 0.0);  // gauges never carry deltas

    stats::Log2Histogram expect_first;
    expect_first.add(2.0);
    expect_first.add(8.0);
    stats::Log2Histogram expect_second = expect_first;
    expect_second.add(512.0);
    const auto latency = store.read("ts_test_latency_ms");
    ASSERT_EQ(latency.size(), 2u);
    EXPECT_DOUBLE_EQ(latency[0].value, 2.0);  // observation count
    EXPECT_DOUBLE_EQ(latency[0].sum, 10.0);
    EXPECT_DOUBLE_EQ(latency[0].p50, expect_first.quantile(0.50));
    EXPECT_DOUBLE_EQ(latency[0].p99, expect_first.quantile(0.99));
    EXPECT_DOUBLE_EQ(latency[1].value, 3.0);
    EXPECT_DOUBLE_EQ(latency[1].delta, 1.0);
    EXPECT_DOUBLE_EQ(latency[1].sum, 522.0);
    EXPECT_DOUBLE_EQ(latency[1].p90, expect_second.quantile(0.90));

    // A registry reset (back-to-back CLI runs) drops the cumulative total;
    // the counter delta clamps to zero instead of going negative.
    tick->store(3000.0);
    obs::Registry::global().reset();
    store.sample_once();
    const auto after_reset = store.read("ts_test_events_total");
    ASSERT_EQ(after_reset.size(), 3u);
    EXPECT_DOUBLE_EQ(after_reset[2].value, 0.0);
    EXPECT_DOUBLE_EQ(after_reset[2].delta, 0.0);

    const auto infos = store.series("ts_test_latency_ms");
    ASSERT_EQ(infos.size(), 1u);
    EXPECT_EQ(infos[0].kind, obs::SeriesKind::kHistogram);
    EXPECT_EQ(obs::to_string(infos[0].kind), "histogram");
  } else {
    EXPECT_TRUE(store.read("ts_test_events_total").empty());
  }
  teardown_obs();
}

TEST(TimeSeriesTest, RingWrapsAtCapacityAndFootprintIsTracked) {
  auto tick = fresh_obs(0.0);
  obs::TimeSeriesStore store;
  ASSERT_TRUE(store.configure({.interval_ms = 1000, .capacity = 3}));

  auto& counter = obs::Registry::global().counter("ts_wrap_total");
  for (int i = 1; i <= 5; ++i) {
    tick->store(i * 1000.0);
    counter.add(10);
    store.sample_once();
  }

  if constexpr (obs::kCompiledIn) {
    const auto ring = store.read("ts_wrap_total");
    ASSERT_EQ(ring.size(), 3u);  // capacity bound: oldest two evicted
    EXPECT_DOUBLE_EQ(ring[0].ts_ms, 3000.0);
    EXPECT_DOUBLE_EQ(ring[2].ts_ms, 5000.0);
    EXPECT_DOUBLE_EQ(ring[2].value, 50.0);
    ASSERT_TRUE(store.latest("ts_wrap_total").has_value());
    EXPECT_DOUBLE_EQ(store.latest("ts_wrap_total")->ts_ms, 5000.0);

    // The store watches itself: nonzero resident bytes, exported as a
    // gauge on every tick.
    EXPECT_GT(store.footprint_bytes(), 0u);
    const auto metrics = obs::Registry::global().snapshot();
    bool saw_self_gauge = false;
    for (const auto& [name, value] : metrics.gauges) {
      if (name == "dockmine_timeseries_bytes") {
        saw_self_gauge = true;
        EXPECT_GT(value, 0);
      }
    }
    EXPECT_TRUE(saw_self_gauge);

    store.reset();
    EXPECT_TRUE(store.read("ts_wrap_total").empty());
    EXPECT_FALSE(store.latest("ts_wrap_total").has_value());
  }
  teardown_obs();
}

TEST(TimeSeriesTest, RangeRateAndQuantileArePinned) {
  auto tick = fresh_obs(0.0);
  obs::TimeSeriesStore store;
  ASSERT_TRUE(store.configure({.interval_ms = 1000, .capacity = 16}));

  auto& counter = obs::Registry::global().counter("ts_rate_total");
  auto& gauge = obs::Registry::global().gauge("ts_rate_level");
  auto& hist = obs::Registry::global().histogram("ts_rate_ms");
  for (int i = 1; i <= 5; ++i) {
    tick->store(i * 1000.0);
    counter.add(100);
    gauge.set(i);
    hist.observe(static_cast<double>(1 << i));
    store.sample_once();
  }

  if constexpr (obs::kCompiledIn) {
    const auto window = store.range("ts_rate_total", 2000.0, 4000.0);
    ASSERT_EQ(window.size(), 3u);
    EXPECT_DOUBLE_EQ(window.front().ts_ms, 2000.0);
    EXPECT_DOUBLE_EQ(window.back().ts_ms, 4000.0);
    EXPECT_TRUE(store.range("ts_rate_total", 9000.0, 10000.0).empty());

    // 100 events per 1000 ms tick = exactly 100/s over any window that
    // holds >= 2 samples.
    ASSERT_TRUE(store.rate_per_s("ts_rate_total", 4000.0).has_value());
    EXPECT_DOUBLE_EQ(*store.rate_per_s("ts_rate_total", 4000.0), 100.0);
    ASSERT_TRUE(store.rate_per_s("ts_rate_total", 1000.0).has_value());
    EXPECT_DOUBLE_EQ(*store.rate_per_s("ts_rate_total", 1000.0), 100.0);
    // A window too short for two samples, a gauge, an unknown series:
    // nullopt, never a fabricated zero.
    EXPECT_FALSE(store.rate_per_s("ts_rate_total", 500.0).has_value());
    EXPECT_FALSE(store.rate_per_s("ts_rate_level", 4000.0).has_value());
    EXPECT_FALSE(store.rate_per_s("ts_missing", 4000.0).has_value());

    // Quantile = max of the sampled quantile across the window
    // (conservative envelope for alerting).
    stats::Log2Histogram all;
    for (int i = 1; i <= 5; ++i) all.add(static_cast<double>(1 << i));
    ASSERT_TRUE(store.quantile("ts_rate_ms", 0.99, 10000.0).has_value());
    EXPECT_DOUBLE_EQ(*store.quantile("ts_rate_ms", 0.99, 10000.0),
                     all.quantile(0.99));
    EXPECT_FALSE(store.quantile("ts_rate_ms", 0.75, 10000.0).has_value())
        << "off the sampled 0.5/0.9/0.99 grid";
    EXPECT_FALSE(store.quantile("ts_rate_total", 0.99, 10000.0).has_value())
        << "not a histogram";
  }
  teardown_obs();
}

TEST(TimeSeriesTest, SelectorMatchingTable) {
  using Store = obs::TimeSeriesStore;
  struct Row {
    const char* selector;
    const char* name;
    bool matches;
  };
  const Row rows[] = {
      {"", "anything_total", true},
      {"f_total", "f_total", true},
      {"f_total", "f_total{q=\"a\"}", true},  // bare base: every variant
      {"f_total{q=\"a\"}", "f_total{q=\"a\"}", true},
      {"f_total{q=\"a\"}", "f_total{q=\"a\",r=\"b\"}", true},  // subset
      {"f_total{q=\"a\",r=\"b\"}", "f_total{q=\"a\"}", false},
      {"f_total{q=\"b\"}", "f_total{q=\"a\"}", false},
      {"f_total", "g_total", false},
      {"f_total{q=\"a\"}", "g_total{q=\"a\"}", false},
      {"f", "f_total", false},  // base names don't prefix-match
  };
  for (const Row& row : rows) {
    EXPECT_EQ(Store::selector_matches(row.selector, row.name), row.matches)
        << "selector=" << row.selector << " name=" << row.name;
  }
}

TEST(TimeSeriesTest, ConfigureRefusedWhileSamplerRuns) {
  fresh_obs(0.0);
  obs::TimeSeriesStore store;
  ASSERT_TRUE(store.configure({.interval_ms = 5, .capacity = 16}));
  if constexpr (obs::kCompiledIn) {
    ASSERT_TRUE(store.start_sampler());
    EXPECT_TRUE(store.sampler_running());
    EXPECT_FALSE(store.start_sampler()) << "already running";
    EXPECT_FALSE(store.configure({.interval_ms = 10, .capacity = 8}))
        << "reconfigure must stop the sampler first";
    store.stop_sampler();
    EXPECT_FALSE(store.sampler_running());
    EXPECT_TRUE(store.configure({.interval_ms = 10, .capacity = 8}));
  } else {
    EXPECT_FALSE(store.start_sampler());
  }
  teardown_obs();
}

TEST(AlertRulesTest, ThresholdRuleWalksPendingFiringResolved) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  auto tick = fresh_obs(0.0);
  obs::TimeSeriesStore store;
  ASSERT_TRUE(store.configure({.interval_ms = 1000, .capacity = 16}));

  obs::AlertRule rule;
  rule.name = "depth_too_high";
  rule.series = "alert_test_depth";
  rule.source = obs::AlertRule::Source::kValue;
  rule.cmp = obs::AlertRule::Cmp::kGt;
  rule.threshold = 5.0;
  rule.for_ms = 1500.0;
  obs::AlertRules alerts({rule});

  auto& gauge = obs::Registry::global().gauge("alert_test_depth");

  // No data yet: condition-false, not firing.
  EXPECT_TRUE(alerts.evaluate(store, 500.0).empty());
  EXPECT_EQ(alerts.firing_count(), 0u);

  // Breach at t=1000: pending (for_ms not served), still no edge.
  tick->store(1000.0);
  gauge.set(9);
  store.sample_once();
  EXPECT_TRUE(alerts.evaluate(store, 1000.0).empty());
  {
    const auto statuses = alerts.snapshot();
    ASSERT_EQ(statuses.size(), 1u);
    EXPECT_TRUE(statuses[0].pending);
    EXPECT_FALSE(statuses[0].firing);
    EXPECT_DOUBLE_EQ(statuses[0].pending_since_ms, 1000.0);
    EXPECT_DOUBLE_EQ(statuses[0].last_value, 9.0);
  }

  // Still breached at t=3000 (>= 1500 ms pending): fires.
  tick->store(3000.0);
  store.sample_once();
  const auto fired = alerts.evaluate(store, 3000.0);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].name, "depth_too_high");
  EXPECT_TRUE(fired[0].firing);
  EXPECT_DOUBLE_EQ(fired[0].ts_ms, 3000.0);
  EXPECT_DOUBLE_EQ(fired[0].value, 9.0);
  EXPECT_EQ(alerts.firing_count(), 1u);

  // Back under the bound: resolves on the next tick.
  tick->store(4000.0);
  gauge.set(1);
  store.sample_once();
  const auto resolved = alerts.evaluate(store, 4000.0);
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_FALSE(resolved[0].firing);
  EXPECT_EQ(alerts.firing_count(), 0u);
  {
    const auto statuses = alerts.snapshot();
    ASSERT_EQ(statuses.size(), 1u);
    EXPECT_FALSE(statuses[0].pending);
    EXPECT_DOUBLE_EQ(statuses[0].fired_at_ms, 3000.0);
    EXPECT_DOUBLE_EQ(statuses[0].resolved_at_ms, 4000.0);
    EXPECT_EQ(statuses[0].transitions, 2u);
  }

  // The edges are mirrored into the registry.
  const auto metrics = obs::Registry::global().snapshot();
  bool saw_transitions = false;
  for (const auto& [name, value] : metrics.counters) {
    if (name ==
        "dockmine_alert_transitions_total{rule=\"depth_too_high\"}") {
      saw_transitions = true;
      EXPECT_EQ(value, 2u);
    }
  }
  EXPECT_TRUE(saw_transitions);

  // A momentary breach shorter than for_ms never fires.
  tick->store(5000.0);
  gauge.set(9);
  store.sample_once();
  EXPECT_TRUE(alerts.evaluate(store, 5000.0).empty());
  tick->store(5500.0);
  gauge.set(1);
  store.sample_once();
  EXPECT_TRUE(alerts.evaluate(store, 5500.0).empty());
  EXPECT_EQ(alerts.firing_count(), 0u);

  teardown_obs();
}

TEST(AlertRulesTest, BurnRateRuleComputesBurnMultiple) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  auto tick = fresh_obs(0.0);
  obs::TimeSeriesStore store;
  ASSERT_TRUE(store.configure({.interval_ms = 1000, .capacity = 16}));

  obs::AlertRule rule;
  rule.name = "error_budget_burn";
  rule.series = "burn_test_errors_total";
  rule.total_series = "burn_test_requests_total";
  rule.error_budget = 0.001;  // SLO: 99.9% success
  rule.window_ms = 10000.0;
  rule.cmp = obs::AlertRule::Cmp::kGt;
  rule.threshold = 50.0;  // firing at >50x budget burn
  rule.for_ms = 0.0;
  obs::AlertRules alerts({rule});

  auto& errors = obs::Registry::global().counter("burn_test_errors_total");
  auto& total = obs::Registry::global().counter("burn_test_requests_total");

  // 1000 requests and 100 errors per second: error fraction 0.1 =
  // 100 budgets/s burn — way past the 50x threshold.
  for (int i = 1; i <= 3; ++i) {
    tick->store(i * 1000.0);
    total.add(1000);
    errors.add(100);
    store.sample_once();
  }
  const auto fired = alerts.evaluate(store, 3000.0);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_TRUE(fired[0].firing);
  EXPECT_DOUBLE_EQ(fired[0].value, (100.0 / 1000.0) / 0.001);

  // Errors stop; the burn multiple collapses and the rule resolves.
  for (int i = 4; i <= 13; ++i) {
    tick->store(i * 1000.0);
    total.add(1000);
    store.sample_once();
  }
  const auto resolved = alerts.evaluate(store, 13000.0);
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_FALSE(resolved[0].firing);
  teardown_obs();
}

TEST(AlertRulesTest, TransitionsAppendToJsonlLog) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  auto tick = fresh_obs(0.0);
  obs::TimeSeriesStore store;
  ASSERT_TRUE(store.configure({.interval_ms = 1000, .capacity = 16}));

  const std::string log_path =
      (std::filesystem::temp_directory_path() /
       ("dockmine-alert-log-" + std::to_string(::getpid()) + ".jsonl"))
          .string();
  std::filesystem::remove(log_path);

  obs::AlertRule rule;
  rule.name = "level_high";
  rule.series = "alert_log_level";
  rule.cmp = obs::AlertRule::Cmp::kGt;
  rule.threshold = 10.0;
  obs::AlertRules alerts({rule});
  alerts.set_log_path(log_path);

  auto& gauge = obs::Registry::global().gauge("alert_log_level");
  tick->store(1000.0);
  gauge.set(25);
  store.sample_once();
  ASSERT_EQ(alerts.evaluate(store, 1000.0).size(), 1u);
  tick->store(2000.0);
  gauge.set(3);
  store.sample_once();
  ASSERT_EQ(alerts.evaluate(store, 2000.0).size(), 1u);

  std::ifstream in(log_path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            R"({"ts_ms":1000,"alert":"level_high","state":"firing","value":25})");
  EXPECT_EQ(lines[1],
            R"({"ts_ms":2000,"alert":"level_high","state":"resolved","value":3})");

  std::filesystem::remove(log_path);
  teardown_obs();
}

TEST(WatchTest, DeriveAndJsonlLinePinnedByteForByte) {
  const auto parse = [](const char* text) {
    auto parsed = json::parse(text);
    EXPECT_TRUE(parsed.ok());
    return std::move(parsed).value();
  };

  core::watch::Scrape first;
  first.ts_ms = 10000.0;
  first.stats = parse(R"({
    "counters": {"dockmine_serve_requests_total{q=\"report\"}": 100,
                 "dockmine_serve_requests_total{q=\"status\"}": 30},
    "gauges": {"dockmine_serve_active_sessions": 1,
               "dockmine_uptime_seconds": 10},
    "histograms": {}})");
  first.status = parse(R"({"epoch": 3, "alerts": {"firing": 0}})");
  first.trace = parse(R"({"events": [], "recorded": 12, "dropped": 0})");

  // First frame: no previous scrape, so rates are the lifetime average
  // (total / uptime) — `watch --once` still reports real traffic.
  const core::watch::WatchFrame lone = core::watch::derive(nullptr, first);
  EXPECT_EQ(core::watch::jsonl_line(lone),
            R"({"ts_ms":10000,"epoch":3,"uptime_s":10,"requests_total":130,)"
            R"("req_per_s":13,"rates":{"report":10,"status":3},"p50_ms":0,)"
            R"("p99_ms":0,"active_sessions":1,"alerts_firing":0,)"
            R"("journal":{"recorded":12,"dropped":0}})");

  core::watch::Scrape second = first;
  second.ts_ms = 20000.0;
  second.stats = parse(R"({
    "counters": {"dockmine_serve_requests_total{q=\"report\"}": 120,
                 "dockmine_serve_requests_total{q=\"status\"}": 40},
    "gauges": {"dockmine_serve_active_sessions": 2,
               "dockmine_uptime_seconds": 20},
    "histograms": {}})");
  second.trace = parse(R"({"events": [], "recorded": 40, "dropped": 2})");

  // Second frame: windowed rates over the 10 s between scrapes.
  const core::watch::WatchFrame windowed =
      core::watch::derive(&first, second);
  EXPECT_EQ(core::watch::jsonl_line(windowed),
            R"({"ts_ms":20000,"epoch":3,"uptime_s":20,"requests_total":160,)"
            R"("req_per_s":3,"rates":{"report":2,"status":1},"p50_ms":0,)"
            R"("p99_ms":0,"active_sessions":2,"alerts_firing":0,)"
            R"("journal":{"recorded":40,"dropped":2}})");

  // The human rendering carries the same numbers.
  const std::string block = core::watch::render(windowed);
  EXPECT_NE(block.find("epoch 3"), std::string::npos);
  EXPECT_NE(block.find("160 total"), std::string::npos);
  EXPECT_NE(block.find("0 firing"), std::string::npos);
}

TEST(WatchTest, DeriveMergesRequestHistogramsAndFlagsMissingTelemetry) {
  core::watch::Scrape scrape;
  scrape.ts_ms = 5000.0;
  auto parsed = json::parse(R"({
    "counters": {},
    "gauges": {"dockmine_uptime_seconds": 5},
    "histograms": {
      "dockmine_serve_request_ms{q=\"report\"}":
        {"count": 3, "sum": 6.0,
         "buckets": [{"lo": 0, "hi": 1, "count": 2},
                     {"lo": 4, "hi": 8, "count": 1}]},
      "dockmine_serve_request_ms{q=\"status\"}":
        {"count": 1, "sum": 16.0,
         "buckets": [{"lo": 16, "hi": 32, "count": 1}]},
      "dockmine_other_ms":
        {"count": 9, "sum": 900.0,
         "buckets": [{"lo": 64, "hi": 128, "count": 9}]}}})");
  ASSERT_TRUE(parsed.ok());
  scrape.stats = std::move(parsed).value();
  scrape.status = json::Value::object();  // no "alerts": telemetry off
  scrape.trace = json::Value::object();

  const core::watch::WatchFrame frame = core::watch::derive(nullptr, scrape);

  // Quantiles merge the request histograms only (dockmine_other_ms is not
  // part of the serve latency surface), reconstructed from bucket lows
  // exactly as report_from_json does.
  stats::Log2Histogram expected;
  expected.add(0.0, 2);
  expected.add(4.0, 1);
  expected.add(16.0, 1);
  EXPECT_DOUBLE_EQ(frame.p50_ms, expected.quantile(0.50));
  EXPECT_DOUBLE_EQ(frame.p99_ms, expected.quantile(0.99));
  EXPECT_EQ(frame.alerts_firing, -1) << "no alerts block = telemetry off";
  EXPECT_NE(core::watch::render(frame).find("(telemetry off)"),
            std::string::npos);
}

TEST(ResetAllTest, RestartsHeartbeatSeqAndJournalDropCounter) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  fresh_obs(0.0);
  obs::set_journal_enabled(true);

  // Heartbeat sequence numbers count up from 0...
  const auto seq_of = [](const std::string& line) {
    auto parsed = json::parse(line);
    EXPECT_TRUE(parsed.ok());
    return parsed.value()["seq"].as_uint();
  };
  EXPECT_EQ(seq_of(obs::heartbeat_line()), 0u);
  EXPECT_EQ(seq_of(obs::heartbeat_line()), 1u);
  EXPECT_EQ(obs::heartbeat_seq(), 2u);

  // ...and a one-event ring forced into eviction shows real drops.
  auto& journal = obs::TraceJournal::global();
  journal.set_capacity(1);
  for (int i = 0; i < 3; ++i) {
    obs::TraceEvent event;
    event.name = "reset_test_event";
    event.start_ms = static_cast<double>(i);
    event.end_ms = event.start_ms + 1.0;
    journal.record(std::move(event));
  }
  ASSERT_GT(journal.dropped(), 0u);

  // reset_all: the process observes like a freshly started one — heartbeat
  // sequence restarts at 0 and the journal's drop counter is clean.
  obs::reset_all();
  EXPECT_EQ(obs::heartbeat_seq(), 0u);
  EXPECT_EQ(seq_of(obs::heartbeat_line()), 0u);
  EXPECT_EQ(journal.recorded(), 0u);
  EXPECT_EQ(journal.dropped(), 0u);

  journal.set_capacity(obs::TraceJournal::kDefaultCapacity);
  obs::set_journal_enabled(false);
  teardown_obs();
}

TEST(ResetAllTest, StopsRunningSamplerAndDropsRings) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  fresh_obs(0.0);
  auto& store = obs::TimeSeriesStore::global();
  ASSERT_TRUE(store.configure({.interval_ms = 5, .capacity = 16}));
  obs::Registry::global().counter("reset_sampler_total").add(3);
  ASSERT_TRUE(store.start_sampler());
  EXPECT_TRUE(store.sampler_running());

  obs::reset_all();
  EXPECT_FALSE(store.sampler_running());
  EXPECT_TRUE(store.read("reset_sampler_total").empty());
  EXPECT_EQ(store.samples_taken(), 0u);
  teardown_obs();
}

TEST(ExportTest, BuildInfoAndUptimeAreInjected) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  auto tick = fresh_obs(0.0);
  tick->store(12500.0);  // reset_all re-based uptime on the real clock, so
                         // the virtual 12.5 s clamps to >= 0 regardless

  const obs::MetricsReport report = obs::collect();
  bool saw_build_info = false;
  for (const auto& [name, value] : report.metrics.gauges) {
    if (name.rfind("dockmine_build_info{", 0) == 0) {
      saw_build_info = true;
      EXPECT_EQ(value, 1);
      EXPECT_NE(name.find("backend=\"cpp\""), std::string::npos);
      EXPECT_NE(name.find("version=\""), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_build_info);
  bool saw_uptime = false;
  for (const auto& [name, value] : report.metrics.gauges) {
    if (name == "dockmine_uptime_seconds") {
      saw_uptime = true;
      EXPECT_GE(value, 0);
    }
  }
  EXPECT_TRUE(saw_uptime);

  // Synthesized into the snapshot, not registered: the registry itself
  // stays free of them (reset-and-collect would double-inject otherwise).
  const auto raw = obs::Registry::global().snapshot();
  for (const auto& [name, value] : raw.gauges) {
    EXPECT_NE(name, "dockmine_uptime_seconds");
    EXPECT_EQ(name.rfind("dockmine_build_info{", 0), std::string::npos);
  }
  teardown_obs();
}

// The TSan target: the real background sampler scraping at full tilt while
// writer threads mutate the registry and reader threads walk rings, rates,
// and quantiles. Correctness here is "no data race, no torn ring"; the
// snapshot-swap design makes both structural.
TEST(TimeSeriesTest, ScrapeWhileIngestHammer) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  fresh_obs(0.0);
  auto tick = std::make_shared<std::atomic<double>>(0.0);
  obs::set_clock([tick] { return tick->fetch_add(1.0); });

  obs::TimeSeriesStore store;
  ASSERT_TRUE(store.configure({.interval_ms = 1, .capacity = 64}));
  ASSERT_TRUE(store.start_sampler());

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&stop, w] {
      auto& counter = obs::Registry::global().counter(
          "hammer_events_total{lane=\"" + std::to_string(w) + "\"}");
      auto& hist = obs::Registry::global().histogram("hammer_latency_ms");
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        counter.add();
        hist.observe(static_cast<double>(i++ % 97));
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&stop, &store] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (const auto& info : store.series("")) {
          const auto ring = store.read(info.name);
          for (std::size_t i = 1; i < ring.size(); ++i) {
            // Rings are immutable snapshots: time within one never runs
            // backwards, no matter what the sampler is doing beside us.
            EXPECT_LE(ring[i - 1].ts_ms, ring[i].ts_ms);
          }
          (void)store.rate_per_s(info.name, 32.0);
          (void)store.quantile(info.name, 0.99, 32.0);
          (void)store.latest(info.name);
        }
        (void)store.footprint_bytes();
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : threads) thread.join();
  store.stop_sampler();
  EXPECT_GT(store.samples_taken(), 0u);
  teardown_obs();
}

}  // namespace
}  // namespace dockmine
