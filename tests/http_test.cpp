#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "dockmine/crawler/crawler.h"
#include "dockmine/downloader/downloader.h"
#include "dockmine/http/client.h"
#include "dockmine/http/message.h"
#include "dockmine/http/server.h"
#include "dockmine/registry/http_gateway.h"
#include "dockmine/synth/generator.h"
#include "dockmine/synth/materialize.h"

namespace dockmine {
namespace {

// ---------- message codec ----------

TEST(HttpMessageTest, RequestSerializeParseRoundTrip) {
  http::Request in;
  in.method = "GET";
  in.target = "/v2/alice/app/manifests/latest?x=1";
  in.headers.emplace_back("Host", "localhost");
  in.headers.emplace_back("Authorization", "Bearer tok");
  in.body = "payload";

  http::MessageReader reader;
  reader.feed(in.serialize());
  http::Request out;
  auto ready = reader.next_request(out);
  ASSERT_TRUE(ready.ok());
  ASSERT_TRUE(ready.value());
  EXPECT_EQ(out.method, "GET");
  EXPECT_EQ(out.target, in.target);
  EXPECT_EQ(out.path(), "/v2/alice/app/manifests/latest");
  EXPECT_EQ(out.query_param("x"), "1");
  EXPECT_EQ(out.query_param("missing"), "");
  EXPECT_EQ(http::find_header(out.headers, "authorization"), "Bearer tok");
  EXPECT_EQ(out.body, "payload");
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(HttpMessageTest, ResponseRoundTripAndPipelining) {
  http::Response a = http::Response::make(200, "first");
  http::Response b = http::Response::make(404, "second");
  http::MessageReader reader;
  reader.feed(a.serialize() + b.serialize());

  http::Response out;
  ASSERT_TRUE(reader.next_response(out).value());
  EXPECT_EQ(out.status, 200);
  EXPECT_EQ(out.body, "first");
  ASSERT_TRUE(reader.next_response(out).value());
  EXPECT_EQ(out.status, 404);
  EXPECT_EQ(out.reason, "Not Found");
  EXPECT_EQ(out.body, "second");
  EXPECT_FALSE(reader.next_response(out).value());
}

TEST(HttpMessageTest, IncrementalFeedAcrossBoundaries) {
  http::Request in;
  in.target = "/v2/";
  in.body = std::string(1000, 'z');
  const std::string wire = in.serialize();
  http::MessageReader reader;
  http::Request out;
  for (std::size_t i = 0; i < wire.size(); i += 7) {
    reader.feed(std::string_view(wire).substr(i, 7));
  }
  ASSERT_TRUE(reader.next_request(out).value());
  EXPECT_EQ(out.body.size(), 1000u);
}

TEST(HttpMessageTest, MalformedInputsRejected) {
  {
    http::MessageReader reader;
    reader.feed("NOT-HTTP\r\n\r\n");
    http::Request out;
    EXPECT_FALSE(reader.next_request(out).ok());
  }
  {
    http::MessageReader reader;
    reader.feed("GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
    http::Request out;
    EXPECT_FALSE(reader.next_request(out).ok());
  }
  {
    http::MessageReader reader;
    reader.feed("HTTP/1.1 abc OK\r\n\r\n");
    http::Response out;
    EXPECT_FALSE(reader.next_response(out).ok());
  }
}

// ---------- server + client ----------

TEST(HttpServerTest, EchoAndConcurrentClients) {
  std::atomic<int> handled{0};
  http::Server server(
      [&](const http::Request& request) {
        ++handled;
        return http::Response::make(200, "echo:" + request.body,
                                    "text/plain");
      },
      0, 3);
  ASSERT_TRUE(server.start().ok());
  ASSERT_NE(server.port(), 0);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      http::Client client(server.port());
      for (int i = 0; i < kPerThread; ++i) {
        http::Request request;
        request.method = "POST";
        request.target = "/echo";
        request.body = "t" + std::to_string(t) + "i" + std::to_string(i);
        auto response = client.request(request);
        if (response.ok() && response.value().status == 200 &&
            response.value().body == "echo:" + request.body) {
          ++ok;
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  EXPECT_EQ(server.requests_served(), static_cast<std::uint64_t>(kThreads * kPerThread));
  server.stop();
}

// ---------- the registry gateway, end to end ----------

class GatewayFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hub = new synth::HubModel(synth::Calibration::light(),
                              synth::Scale{80, 55});
    service = new registry::Service();
    synth::Materializer materializer(*hub, 1);
    ASSERT_TRUE(materializer.populate(*service).ok());
    search = new registry::SearchIndex(
        *service, synth::Calibration::kSearchDuplicateFactor, 5);
    gateway = new registry::HttpGateway(*service, search);
    auto started = gateway->serve(0, 4);
    ASSERT_TRUE(started.ok());
    server = std::move(started).value().release();
  }
  static void TearDownTestSuite() {
    server->stop();
    delete server;
    delete gateway;
    delete search;
    delete service;
    delete hub;
  }

  static synth::HubModel* hub;
  static registry::Service* service;
  static registry::SearchIndex* search;
  static registry::HttpGateway* gateway;
  static http::Server* server;
};

synth::HubModel* GatewayFixture::hub = nullptr;
registry::Service* GatewayFixture::service = nullptr;
registry::SearchIndex* GatewayFixture::search = nullptr;
registry::HttpGateway* GatewayFixture::gateway = nullptr;
http::Server* GatewayFixture::server = nullptr;

TEST_F(GatewayFixture, PingAndUnknownRoutes) {
  registry::RemoteRegistry remote(server->port());
  EXPECT_TRUE(remote.ping().ok());

  http::Client client(server->port());
  http::Request request;
  request.target = "/nope";
  auto response = client.request(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 404);
  request.method = "PUT";
  request.target = "/v2/";
  EXPECT_EQ(client.request(request).value().status, 405);
}

TEST_F(GatewayFixture, ManifestAndBlobMatchInProcess) {
  registry::RemoteRegistry remote(server->port());
  std::string repo;
  for (const auto& r : hub->repositories()) {
    if (r.has_latest && !r.requires_auth) {
      repo = r.name;
      break;
    }
  }
  ASSERT_FALSE(repo.empty());

  auto over_wire = remote.fetch_manifest(repo, "latest", false);
  auto in_proc = service->get_manifest(repo, "latest");
  ASSERT_TRUE(over_wire.ok());
  ASSERT_TRUE(in_proc.ok());
  EXPECT_EQ(over_wire.value(), in_proc.value());

  auto manifest = registry::manifest_from_json(over_wire.value());
  ASSERT_TRUE(manifest.ok());
  ASSERT_FALSE(manifest.value().layers.empty());
  const auto& digest = manifest.value().layers[0].digest;
  auto blob = remote.fetch_blob(digest);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(*blob.value(), *service->get_blob(digest).value());
  EXPECT_EQ(digest::Digest::of(*blob.value()), digest);  // content addressed
}

TEST_F(GatewayFixture, ErrorSemanticsSurviveTheWire) {
  registry::RemoteRegistry remote(server->port(), "secret-token");
  auto missing = remote.fetch_manifest("ghost/none", "latest", false);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code(), util::ErrorCode::kNotFound);

  std::string gated, untagged;
  for (const auto& r : hub->repositories()) {
    if (r.requires_auth && r.has_latest && gated.empty()) gated = r.name;
    if (!r.has_latest && untagged.empty()) untagged = r.name;
  }
  if (!gated.empty()) {
    auto denied = remote.fetch_manifest(gated, "latest", false);
    EXPECT_EQ(denied.error().code(), util::ErrorCode::kUnauthorized);
    EXPECT_TRUE(remote.fetch_manifest(gated, "latest", true).ok());
  }
  if (!untagged.empty()) {
    auto no_tag = remote.fetch_manifest(untagged, "latest", false);
    ASSERT_FALSE(no_tag.ok());
    EXPECT_EQ(no_tag.error().code(), util::ErrorCode::kNotFound);
    // The "has no tag" detail survives for the downloader's failure split.
    EXPECT_NE(no_tag.error().message().find("has no tag"), std::string::npos);
  }
}

TEST_F(GatewayFixture, CrawlerAndDownloaderRunOverHttp) {
  registry::RemoteRegistry remote(server->port(), "secret");
  crawler::Crawler crawler(remote, 64);
  const auto crawl = crawler.crawl_all();
  EXPECT_EQ(crawl.repositories.size(), hub->repositories().size());
  EXPECT_GT(crawl.raw_hits, crawl.repositories.size());

  downloader::Options options;
  options.workers = 4;
  downloader::Downloader downloader(remote, options);
  const auto stats = downloader.run(crawl.repositories, nullptr);
  EXPECT_EQ(stats.succeeded, hub->downloadable_images());
  EXPECT_EQ(stats.failed_missing, 0u);
  EXPECT_EQ(stats.failed_other, 0u);
  EXPECT_GT(stats.layers_deduped, 0u);

  // Same results as the in-process path.
  downloader::Downloader local(*service, options);
  const auto local_stats = local.run(crawl.repositories, nullptr);
  EXPECT_EQ(stats.succeeded, local_stats.succeeded);
  EXPECT_EQ(stats.failed_auth, local_stats.failed_auth);
  EXPECT_EQ(stats.failed_no_tag, local_stats.failed_no_tag);
  EXPECT_EQ(stats.layers_fetched, local_stats.layers_fetched);
  EXPECT_EQ(stats.bytes_downloaded, local_stats.bytes_downloaded);
}

TEST_F(GatewayFixture, HandleRoutesDirectly) {
  // Route dispatch without sockets: exercises the gateway's URL parsing.
  auto get = [&](const std::string& target) {
    http::Request request;
    request.target = target;
    return gateway->handle(request);
  };
  EXPECT_EQ(get("/v2/").status, 200);
  EXPECT_EQ(get("/v2").status, 200);
  EXPECT_EQ(get("/v2/a/b/manifests/").status, 404);      // empty tag
  EXPECT_EQ(get("/v2/unknown/manifests/latest").status, 404);
  EXPECT_EQ(get("/v2/a/blobs/not-a-digest").status, 400);
  EXPECT_EQ(get("/v2/a/blobs/sha256:" + std::string(64, '0')).status, 404);
  EXPECT_EQ(get("/v2/bare-name").status, 404);
  EXPECT_EQ(get("/v1/search?q=/&page=0&page_size=5").status, 200);
  EXPECT_EQ(get("/v1/search?page_size=0").status, 200);
  // Repository names contain '/': the split must take the LAST
  // "/manifests/" segment.
  EXPECT_EQ(get("/v2/user/manifests/manifests/latest").status, 404);
}

TEST_F(GatewayFixture, SearchRouteMatchesLocalIndex) {
  registry::RemoteRegistry remote(server->port());
  const auto remote_page = remote.page("/", 0, 17);
  const auto local_page = search->page("/", 0, 17);
  ASSERT_EQ(remote_page.hits.size(), local_page.hits.size());
  EXPECT_EQ(remote_page.has_next, local_page.has_next);
  for (std::size_t i = 0; i < remote_page.hits.size(); ++i) {
    EXPECT_EQ(remote_page.hits[i].repository, local_page.hits[i].repository);
    EXPECT_EQ(remote_page.hits[i].pull_count, local_page.hits[i].pull_count);
  }
}

TEST_F(GatewayFixture, PushRoundTripOverTheWire) {
  registry::RemoteRegistry remote(server->port());

  // Build a small image client-side and push it: blobs first, manifest last.
  const std::string layer_bytes = "pretend-gzip-layer-0123456789";
  const auto layer_digest = digest::Digest::of(layer_bytes);
  ASSERT_TRUE(remote.push_blob(layer_digest, layer_bytes).ok());
  // Re-push is idempotent (content addressed).
  ASSERT_TRUE(remote.push_blob(layer_digest, layer_bytes).ok());

  registry::Manifest manifest;
  manifest.repository = "pusher/app";
  manifest.tag = "latest";
  manifest.layers.push_back({layer_digest, layer_bytes.size()});
  ASSERT_TRUE(remote
                  .push_manifest("pusher/app", "latest",
                                 registry::manifest_to_json(manifest))
                  .ok());

  // The pushed image is immediately pullable.
  auto pulled = remote.fetch_manifest("pusher/app", "latest", false);
  ASSERT_TRUE(pulled.ok());
  auto parsed = registry::manifest_from_json(pulled.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().layers[0].digest, layer_digest);
  EXPECT_EQ(*remote.fetch_blob(layer_digest).value(), layer_bytes);
}

TEST_F(GatewayFixture, PushValidationRejectsBadUploads) {
  registry::RemoteRegistry remote(server->port());

  // Digest mismatch is refused.
  const auto wrong = digest::Digest::of("something else");
  EXPECT_FALSE(remote.push_blob(wrong, "not that content").ok());

  // Manifests referencing unuploaded layers are refused.
  registry::Manifest manifest;
  manifest.repository = "pusher/broken";
  manifest.layers.push_back({digest::Digest::of("never uploaded"), 13});
  EXPECT_FALSE(remote
                   .push_manifest("pusher/broken", "latest",
                                  registry::manifest_to_json(manifest))
                   .ok());

  // Malformed manifest JSON is refused.
  EXPECT_FALSE(remote.push_manifest("pusher/bad", "latest", "{oops").ok());
}

}  // namespace
}  // namespace dockmine
