// Equivalence property: serial, staged-parallel, and streamed execution of
// the end-to-end pipeline produce byte-identical canonical reports for a
// fixed seed, across queue depths. This is the determinism contract the
// streaming refactor must honor — overlap changes *when* work happens,
// never *what* the dataset looks like.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "dockmine/core/pipeline.h"

namespace dockmine::core {
namespace {

PipelineOptions small_options(std::uint64_t seed) {
  PipelineOptions options;
  // Light calibration: bytes-mode runs materialize every file for real, so
  // the paper-scale file populations would swamp a unit test.
  options.calibration = synth::Calibration::light();
  options.scale = synth::Scale{60, seed};
  options.gzip_level = 1;
  return options;
}

PipelineResult run_mode(std::uint64_t seed, ExecutionMode mode,
                        std::size_t queue_depth) {
  PipelineOptions options = small_options(seed);
  options.mode = mode;
  options.queue_depth = queue_depth;
  auto result = run_end_to_end(options);
  EXPECT_TRUE(result.ok()) << result.error().message();
  return std::move(result).value();
}

TEST(StreamEquivalenceTest, AllModesAndDepthsProduceByteIdenticalReports) {
  const std::uint64_t seeds[] = {20170530, 7, 99991};
  for (std::uint64_t seed : seeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));

    PipelineResult serial = run_mode(seed, ExecutionMode::kSerial, 16);
    const std::string golden = pipeline_report_json(serial).dump();
    ASSERT_FALSE(golden.empty());
    ASSERT_GT(serial.images.size(), 0u);
    ASSERT_GT(serial.layer_profiles.size(), 0u);

    PipelineResult staged = run_mode(seed, ExecutionMode::kStaged, 16);
    EXPECT_EQ(golden, pipeline_report_json(staged).dump());

    const std::size_t depths[] = {1, 4, 64};
    for (std::size_t depth : depths) {
      SCOPED_TRACE("queue depth " + std::to_string(depth));
      PipelineResult streamed = run_mode(seed, ExecutionMode::kStreamed, depth);
      EXPECT_EQ(golden, pipeline_report_json(streamed).dump());

      // The hand-off honored its bound: never more blobs resident in the
      // queue than the configured capacity.
      EXPECT_EQ(streamed.stream.queue_capacity, depth);
      EXPECT_LE(streamed.stream.queue_peak, depth);
      EXPECT_GT(streamed.stream.layers_enqueued, 0u);
      // Every enqueued blob was consumed (dedup'd digests analyze once).
      EXPECT_EQ(streamed.stream.layers_analyzed,
                static_cast<std::uint64_t>(streamed.layer_profiles.size()));
    }
  }
}

TEST(StreamEquivalenceTest, StreamedModeSkipsTheRunWideBlobCache) {
  PipelineResult streamed = run_mode(20170530, ExecutionMode::kStreamed, 4);
  // With retain_blobs off the downloader delivers images without bytes;
  // the analyzer saw every layer through the queue instead.
  EXPECT_EQ(streamed.stream.layers_enqueued, streamed.download.layers_fetched);
  EXPECT_GT(streamed.layer_profiles.size(), 0u);
}

}  // namespace
}  // namespace dockmine::core
