#include <gtest/gtest.h>

#include <sstream>

#include "dockmine/core/report.h"
#include "dockmine/util/log.h"

namespace dockmine::core {
namespace {

TEST(FormatTest, UnitsMatchPaperConventions) {
  EXPECT_EQ(fmt_bytes(4e6), "4.00 MB");
  EXPECT_EQ(fmt_bytes(47e12), "47.0 TB");
  EXPECT_EQ(fmt_count(5278465130.0), "5,278,465,130");
  EXPECT_EQ(fmt_ratio(31.5, 1), "31.5x");
  EXPECT_EQ(fmt_pct(0.032), "3.2%");
  EXPECT_EQ(fmt_pct(0.8569, 2), "85.69%");
  EXPECT_EQ(fmt_bytes(-5), "0 B");
}

TEST(FigureTableTest, PrintsAlignedRows) {
  FigureTable table("Fig. 99", "Test table");
  table.row("metric one", "1.8x", "1.76x", "close")
      .row("a much longer metric name", "47 TB", "10.4 GB");
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Fig. 99: Test table"), std::string::npos);
  EXPECT_NE(out.find("metric one"), std::string::npos);
  EXPECT_NE(out.find("1.76x"), std::string::npos);
  EXPECT_NE(out.find("close"), std::string::npos);
  // Columns align: "paper" header starts at the same offset as values.
  EXPECT_NE(out.find("paper"), std::string::npos);
}

TEST(PrintCdfTest, EmitsQuantilesAndHandlesEmpty) {
  stats::Ecdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(i);
  std::ostringstream os;
  print_cdf(os, "test values", cdf, fmt_count);
  EXPECT_NE(os.str().find("p50=51"), std::string::npos);  // quantile(0.5) of 1..100 = 50.5, rounded
  EXPECT_NE(os.str().find("max=100"), std::string::npos);

  std::ostringstream empty_os;
  print_cdf(empty_os, "empty", stats::Ecdf{}, fmt_count);
  EXPECT_NE(empty_os.str().find("<empty>"), std::string::npos);
}

TEST(PrintHistogramTest, BarsScaleToPeak) {
  stats::LinearHistogram hist(0, 10, 5);
  hist.add(1, 40);
  hist.add(5, 10);
  std::ostringstream os;
  print_histogram(os, "test", hist, fmt_count);
  const std::string out = os.str();
  // The peak bucket renders the longest bar.
  const std::size_t first_bar = out.find("####");
  EXPECT_NE(first_bar, std::string::npos);
}

TEST(LogTest, LevelGatesOutput) {
  const auto previous = util::log_level();
  util::set_log_level(util::LogLevel::kError);
  EXPECT_EQ(util::log_level(), util::LogLevel::kError);
  // These must be no-ops (nothing observable to assert beyond not crashing,
  // but the level check is the contract).
  util::log_debug("dropped ", 1);
  util::log_info("dropped ", 2);
  util::set_log_level(previous);
}

}  // namespace
}  // namespace dockmine::core
