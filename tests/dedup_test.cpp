#include <gtest/gtest.h>

#include <array>
#include <tuple>
#include <vector>

#include "dockmine/core/dataset.h"
#include "dockmine/dedup/by_type.h"
#include "dockmine/dedup/cross_dup.h"
#include "dockmine/dedup/file_dedup.h"
#include "dockmine/dedup/growth.h"
#include "dockmine/dedup/layer_sharing.h"

namespace dockmine::dedup {
namespace {

using filetype::Type;

// ---------- FileDedupIndex ----------

TEST(FileDedupTest, TotalsOnHandcraftedPopulation) {
  FileDedupIndex index;
  // Content A: 3 copies of 10 bytes across layers 0 and 1.
  index.add(100, 10, Type::kAsciiText, 0);
  index.add(100, 10, Type::kAsciiText, 1);
  index.add(100, 10, Type::kAsciiText, 1);
  // Content B: singleton, 100 bytes.
  index.add(200, 100, Type::kElfExecutable, 0);

  const DedupTotals totals = index.totals();
  EXPECT_EQ(totals.total_files, 4u);
  EXPECT_EQ(totals.unique_files, 2u);
  EXPECT_EQ(totals.total_bytes, 130u);
  EXPECT_EQ(totals.unique_bytes, 110u);
  EXPECT_DOUBLE_EQ(totals.count_ratio(), 2.0);
  EXPECT_NEAR(totals.capacity_ratio(), 130.0 / 110.0, 1e-12);
  EXPECT_DOUBLE_EQ(totals.unique_file_fraction(), 0.5);
  EXPECT_NEAR(totals.capacity_removed_fraction(), 20.0 / 130.0, 1e-12);
}

TEST(FileDedupTest, RepeatCdfAndMaxRepeat) {
  FileDedupIndex index;
  for (int i = 0; i < 7; ++i) index.add(1, 0, Type::kEmpty, 0);
  index.add(2, 5, Type::kPng, 0);
  index.add(2, 5, Type::kPng, 1);
  index.add(3, 9, Type::kJpeg, 2);

  const auto cdf = index.repeat_count_cdf();
  EXPECT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf.max(), 7.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_equal(1), 1.0 / 3);

  const ContentEntry top = index.max_repeat();
  EXPECT_EQ(top.count, 7u);
  EXPECT_EQ(top.type, Type::kEmpty);
  EXPECT_EQ(top.size, 0u);  // the paper's most-repeated file is empty
}

TEST(FileDedupTest, MultiLayerFlagTracksFirstLayer) {
  FileDedupIndex index;
  index.add(5, 1, Type::kAsciiText, 3);
  index.add(5, 1, Type::kAsciiText, 3);  // same layer: not cross-layer
  EXPECT_FALSE(index.find(std::uint64_t{5})->multi_layer);
  index.add(5, 1, Type::kAsciiText, 4);
  EXPECT_TRUE(index.find(std::uint64_t{5})->multi_layer);
  EXPECT_EQ(index.find(std::uint64_t{5})->first_layer, 3u);
}

TEST(FileDedupTest, ZeroKeyIsRemapped) {
  FileDedupIndex index;
  index.add(std::uint64_t{0}, 7, Type::kGif, 0);
  EXPECT_EQ(index.distinct_contents(), 1u);
  EXPECT_EQ(index.totals().total_files, 1u);
}

// ---------- layer sharing ----------

TEST(LayerSharingTest, ReferenceCountsAndSavings) {
  LayerSharingAnalysis sharing;
  using Use = LayerSharingAnalysis::LayerUse;
  const std::array<Use, 2> image1 = {Use{10, 100}, Use{11, 50}};
  const std::array<Use, 2> image2 = {Use{10, 100}, Use{12, 30}};
  const std::array<Use, 1> image3 = {Use{10, 100}};
  sharing.add_image(image1);
  sharing.add_image(image2);
  sharing.add_image(image3);

  EXPECT_EQ(sharing.images_seen(), 3u);
  EXPECT_EQ(sharing.distinct_layers(), 3u);
  EXPECT_EQ(sharing.logical_bytes(), 300u + 50u + 30u);
  EXPECT_EQ(sharing.physical_bytes(), 100u + 50u + 30u);
  EXPECT_NEAR(sharing.sharing_ratio(), 380.0 / 180.0, 1e-12);

  const auto cdf = sharing.reference_count_cdf();
  EXPECT_DOUBLE_EQ(cdf.fraction_equal(1), 2.0 / 3);
  EXPECT_DOUBLE_EQ(cdf.max(), 3.0);

  const auto top = sharing.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].layer_key, 10u);
  EXPECT_EQ(top[0].references, 3u);
  EXPECT_EQ(top[0].cls, 100u);
}

// ---------- cross duplicates ----------

TEST(CrossDupTest, HandcraftedScenario) {
  // Layers: 0 {A, B}, 1 {A, C}, 2 {C}; images: I0={0,1}, I1={2}, I2={2}.
  FileDedupIndex index;
  index.add(std::uint64_t{1}, 10, Type::kAsciiText, 0);  // A
  index.add(std::uint64_t{2}, 10, Type::kAsciiText, 0);  // B
  index.add(std::uint64_t{1}, 10, Type::kAsciiText, 1);  // A again
  index.add(std::uint64_t{3}, 10, Type::kAsciiText, 1);  // C
  index.add(std::uint64_t{3}, 10, Type::kAsciiText, 2);  // C again

  CrossDupAnalysis cross(index, /*layer_refcounts=*/{1, 1, 2});
  cross.observe(0, 1);
  cross.observe(0, 2);
  cross.observe(1, 1);
  cross.observe(1, 3);
  cross.observe(2, 3);

  // Layer 0: A cross-layer (also in layer 1), B not -> 1/2.
  EXPECT_EQ(cross.layer_tally(0).cross_layer, 1u);
  EXPECT_EQ(cross.layer_tally(0).files, 2u);
  // Layer 1: both A and C cross-layer -> 2/2.
  EXPECT_EQ(cross.layer_tally(1).cross_layer, 2u);
  // Layer 2: C cross-layer.
  EXPECT_EQ(cross.layer_tally(2).cross_layer, 1u);

  const auto layer_cdf = cross.cross_layer_cdf();
  EXPECT_EQ(layer_cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(layer_cdf.min(), 0.5);
  EXPECT_DOUBLE_EQ(layer_cdf.max(), 1.0);

  const std::vector<std::vector<std::uint32_t>> images = {{0, 1}, {2}, {2}};
  const auto image_cdf = cross.cross_image_cdf(images);
  EXPECT_EQ(image_cdf.size(), 3u);
  // I1/I2 contain only C, which lives in a layer referenced twice -> 1.0.
  EXPECT_DOUBLE_EQ(image_cdf.max(), 1.0);
}

// ---------- type breakdown ----------

TEST(TypeBreakdownTest, SharesAndPerTypeDedup) {
  FileDedupIndex index;
  index.add(std::uint64_t{1}, 100, Type::kCSource, 0);
  index.add(std::uint64_t{1}, 100, Type::kCSource, 1);
  index.add(std::uint64_t{2}, 300, Type::kElfExecutable, 0);
  index.add(std::uint64_t{3}, 50, Type::kPng, 0);

  const TypeBreakdown breakdown(index);
  EXPECT_EQ(breakdown.overall().count, 4u);
  EXPECT_EQ(breakdown.overall().bytes, 550u);
  EXPECT_EQ(breakdown.by_type(Type::kCSource).count, 2u);
  EXPECT_EQ(breakdown.by_type(Type::kCSource).unique_count, 1u);
  EXPECT_DOUBLE_EQ(breakdown.by_type(Type::kCSource).capacity_removed(), 0.5);
  EXPECT_DOUBLE_EQ(breakdown.by_group(filetype::Group::kEol).capacity_removed(),
                   0.0);
  EXPECT_DOUBLE_EQ(breakdown.count_share(filetype::Group::kSourceCode), 0.5);
  EXPECT_NEAR(breakdown.capacity_share(filetype::Group::kEol), 300.0 / 550.0,
              1e-12);
  // Within-group shares.
  EXPECT_DOUBLE_EQ(breakdown.count_share(Type::kCSource), 1.0);
  EXPECT_DOUBLE_EQ(breakdown.capacity_share(Type::kElfExecutable), 1.0);
  EXPECT_NEAR(breakdown.by_group(filetype::Group::kImages).avg_size(), 50.0,
              1e-12);
}

// ---------- growth ----------

TEST(GrowthTest, RatioGrowsWithSampleSizeOnHubModel) {
  const synth::HubModel hub(synth::Calibration::paper(), synth::Scale{150, 5});
  const auto& layers = hub.unique_layers();
  const std::vector<std::uint64_t> sizes = {layers.size() / 20,
                                            layers.size() / 4, layers.size()};
  const auto points = dedup_growth(
      layers.size(), sizes,
      [&](std::uint64_t ordinal, std::uint32_t dense, FileDedupIndex& index) {
        const synth::LayerSpec spec = hub.layer_spec(layers[ordinal]);
        hub.layers().for_each_file(spec, [&](const synth::FileInstance& f) {
          index.add(f.content, f.size, f.type, dense);
        });
      },
      /*seed=*/9);

  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[2].sample_layers, layers.size());
  // Monotone growth, the core claim of Fig. 25.
  EXPECT_GT(points[1].totals.count_ratio(), points[0].totals.count_ratio());
  EXPECT_GT(points[2].totals.count_ratio(), points[1].totals.count_ratio());
  EXPECT_GT(points[2].totals.capacity_ratio(),
            points[0].totals.capacity_ratio());
  // Capacity dedup trails count dedup (paper: 6.9x vs 31.5x).
  EXPECT_LT(points[2].totals.capacity_ratio(),
            points[2].totals.count_ratio());
}

TEST(GrowthTest, SampleLargerThanPopulationClamps) {
  const std::vector<std::uint64_t> sizes = {100};
  const auto points = dedup_growth(
      10, sizes,
      [&](std::uint64_t, std::uint32_t dense, FileDedupIndex& index) {
        index.add(dense + 1, 1, Type::kAsciiText, dense);
      },
      3);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].sample_layers, 10u);
  EXPECT_EQ(points[0].totals.total_files, 10u);
}

TEST(FileDedupTest, ShardMergeEqualsSerial) {
  // Build one index serially and two shards over disjoint layer slices;
  // after merge they must agree on every aggregate.
  const synth::HubModel hub(synth::Calibration::paper(), synth::Scale{80, 21});
  const auto& layers = hub.unique_layers();
  FileDedupIndex serial(1 << 12), shard_a(1 << 12), shard_b(1 << 12);
  const std::size_t half = layers.size() / 2;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const synth::LayerSpec spec = hub.layer_spec(layers[i]);
    FileDedupIndex& shard = i < half ? shard_a : shard_b;
    hub.layers().for_each_file(spec, [&](const synth::FileInstance& f) {
      serial.add(f.content, f.size, f.type, static_cast<std::uint32_t>(i));
      shard.add(f.content, f.size, f.type, static_cast<std::uint32_t>(i));
    });
  }
  shard_a.merge(shard_b);
  EXPECT_EQ(shard_a.distinct_contents(), serial.distinct_contents());
  const auto merged = shard_a.totals();
  const auto expected = serial.totals();
  EXPECT_EQ(merged.total_files, expected.total_files);
  EXPECT_EQ(merged.total_bytes, expected.total_bytes);
  EXPECT_EQ(merged.unique_bytes, expected.unique_bytes);
  // multi-layer flags agree everywhere.
  std::size_t mismatches = 0;
  serial.for_each([&](std::uint64_t key, const ContentEntry& entry) {
    const ContentEntry* other = shard_a.find(key);
    if (other == nullptr || other->multi_layer != entry.multi_layer ||
        other->count != entry.count) {
      ++mismatches;
    }
  });
  EXPECT_EQ(mismatches, 0u);
}

TEST(FileDedupTest, MergeConflictingMetadataIsDeterministicAndCounted) {
  // Two slices disagree about content 9's size/type (a 64-bit key collision
  // or a corrupted slice). The fold must pick the same winner regardless of
  // merge order — the lexicographically smallest (size, type) — and count
  // the disagreement instead of silently trusting the last writer.
  for (bool swap : {false, true}) {
    SCOPED_TRACE(swap ? "large merged into small" : "small merged into large");
    FileDedupIndex small_side, large_side;
    small_side.add(std::uint64_t{9}, 10, Type::kAsciiText, 2);
    large_side.add(std::uint64_t{9}, 99, Type::kPng, 5);
    FileDedupIndex& into = swap ? small_side : large_side;
    const FileDedupIndex& from = swap ? large_side : small_side;
    into.merge(from);

    const ContentEntry* entry = into.find(std::uint64_t{9});
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->count, 2u);
    EXPECT_EQ(entry->size, 10u);
    EXPECT_EQ(entry->type, Type::kAsciiText);
    EXPECT_EQ(entry->first_layer, 2u);
    EXPECT_TRUE(entry->multi_layer);
    EXPECT_EQ(into.metadata_conflicts(), 1u);
    EXPECT_EQ(into.totals().unique_bytes, 10u);
  }
}

TEST(FileDedupTest, MergeEmptyAndSingleEntryEdges) {
  FileDedupIndex empty_a, empty_b;
  empty_a.merge(empty_b);  // empty into empty
  EXPECT_EQ(empty_a.distinct_contents(), 0u);
  EXPECT_EQ(empty_a.totals().total_files, 0u);
  EXPECT_EQ(empty_a.metadata_conflicts(), 0u);

  FileDedupIndex single;
  single.add(std::uint64_t{42}, 7, Type::kJpeg, 3);
  single.merge(empty_a);  // empty into single: unchanged
  EXPECT_EQ(single.distinct_contents(), 1u);
  EXPECT_EQ(single.totals().total_files, 1u);

  FileDedupIndex target;
  target.merge(single);  // single into empty: exact copy
  const ContentEntry* entry = target.find(std::uint64_t{42});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->count, 1u);
  EXPECT_EQ(entry->size, 7u);
  EXPECT_EQ(entry->type, Type::kJpeg);
  EXPECT_EQ(entry->first_layer, 3u);
  EXPECT_FALSE(entry->multi_layer);
  EXPECT_EQ(target.metadata_conflicts(), 0u);
}

TEST(TypeBreakdownTest, MergedShardsMatchMonolithicBreakdown) {
  // §V-E per-type dedup through the merge path: the breakdown over a merged
  // index equals the breakdown over the serially built one.
  const synth::HubModel hub(synth::Calibration::paper(), synth::Scale{60, 31});
  const auto& layers = hub.unique_layers();
  FileDedupIndex serial(1 << 12), shard_a(1 << 12), shard_b(1 << 12);
  const std::size_t half = layers.size() / 2;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const synth::LayerSpec spec = hub.layer_spec(layers[i]);
    FileDedupIndex& shard = i < half ? shard_a : shard_b;
    hub.layers().for_each_file(spec, [&](const synth::FileInstance& f) {
      serial.add(f.content, f.size, f.type, static_cast<std::uint32_t>(i));
      shard.add(f.content, f.size, f.type, static_cast<std::uint32_t>(i));
    });
  }
  shard_a.merge(shard_b);
  const TypeBreakdown merged(shard_a);
  const TypeBreakdown expected(serial);
  EXPECT_EQ(merged.overall().count, expected.overall().count);
  EXPECT_EQ(merged.overall().bytes, expected.overall().bytes);
  EXPECT_EQ(merged.overall().unique_count, expected.overall().unique_count);
  EXPECT_EQ(merged.overall().unique_bytes, expected.overall().unique_bytes);
  for (std::size_t t = 0; t < filetype::kTypeCount; ++t) {
    const Type type = static_cast<Type>(t);
    EXPECT_EQ(merged.by_type(type).count, expected.by_type(type).count);
    EXPECT_EQ(merged.by_type(type).unique_bytes,
              expected.by_type(type).unique_bytes);
  }
  for (std::size_t g = 0; g < filetype::kGroupCount; ++g) {
    const auto group = static_cast<filetype::Group>(g);
    EXPECT_EQ(merged.by_group(group).count, expected.by_group(group).count);
    EXPECT_DOUBLE_EQ(merged.capacity_share(group),
                     expected.capacity_share(group));
  }
}

TEST(TypeBreakdownTest, StreamingObserveMatchesIndexConstructor) {
  FileDedupIndex index;
  index.add(std::uint64_t{1}, 100, Type::kCSource, 0);
  index.add(std::uint64_t{1}, 100, Type::kCSource, 1);
  index.add(std::uint64_t{2}, 300, Type::kElfExecutable, 0);
  index.add(std::uint64_t{3}, 50, Type::kPng, 0);

  TypeBreakdown streamed;
  index.for_each([&](std::uint64_t, const ContentEntry& entry) {
    streamed.observe(entry);
  });
  streamed.finalize();
  streamed.finalize();  // idempotent

  const TypeBreakdown direct(index);
  EXPECT_EQ(streamed.overall().count, direct.overall().count);
  EXPECT_EQ(streamed.overall().unique_bytes, direct.overall().unique_bytes);
  EXPECT_EQ(streamed.by_type(Type::kCSource).count,
            direct.by_type(Type::kCSource).count);
  EXPECT_DOUBLE_EQ(streamed.capacity_share(filetype::Group::kEol),
                   direct.capacity_share(filetype::Group::kEol));

  TypeBreakdown empty;
  empty.finalize();
  EXPECT_EQ(empty.overall().count, 0u);
  EXPECT_DOUBLE_EQ(empty.count_share(filetype::Group::kImages), 0.0);
}

TEST(CrossDupTest, MergedIndexAnswersSameAsMonolithic) {
  // Cross-layer duplication (Fig. 26) reads multi_layer off the index; a
  // merged index must answer identically to the serially built one.
  FileDedupIndex serial, part_a, part_b;
  const auto feed = [](FileDedupIndex& index, std::uint32_t only_layer,
                       bool all) {
    // Layers: 0 {A, B}, 1 {A, C}, 2 {C} (as in HandcraftedScenario).
    struct Obs { std::uint64_t key; std::uint32_t layer; };
    const Obs observations[] = {{1, 0}, {2, 0}, {1, 1}, {3, 1}, {3, 2}};
    for (const Obs& o : observations) {
      if (all || o.layer == only_layer)
        index.add(o.key, 10, Type::kAsciiText, o.layer);
    }
  };
  feed(serial, 0, true);
  feed(part_a, 0, false);
  feed(part_a, 1, false);
  feed(part_b, 2, false);
  part_a.merge(part_b);

  const std::vector<std::uint32_t> refcounts = {1, 1, 2};
  CrossDupAnalysis from_serial(serial, refcounts);
  CrossDupAnalysis from_merged(part_a, refcounts);
  const std::pair<std::uint32_t, std::uint64_t> observations[] = {
      {0, 1}, {0, 2}, {1, 1}, {1, 3}, {2, 3}};
  for (const auto& [layer, key] : observations) {
    from_serial.observe(layer, key);
    from_merged.observe(layer, key);
  }
  for (std::uint32_t layer = 0; layer < 3; ++layer) {
    EXPECT_EQ(from_merged.layer_tally(layer).cross_layer,
              from_serial.layer_tally(layer).cross_layer);
    EXPECT_EQ(from_merged.layer_tally(layer).files,
              from_serial.layer_tally(layer).files);
  }
  EXPECT_EQ(from_merged.cross_layer_cdf().size(),
            from_serial.cross_layer_cdf().size());
  EXPECT_DOUBLE_EQ(from_merged.cross_layer_cdf().max(),
                   from_serial.cross_layer_cdf().max());
}

TEST(DatasetParallelTest, WorkersMatchSerial) {
  const synth::HubModel hub(synth::Calibration::paper(), synth::Scale{100, 13});
  core::DatasetOptions serial_options;
  core::DatasetOptions parallel_options;
  parallel_options.workers = 4;
  const auto serial = core::DatasetStats::compute(hub, serial_options);
  const auto parallel = core::DatasetStats::compute(hub, parallel_options);
  EXPECT_EQ(serial.total_files, parallel.total_files);
  EXPECT_EQ(serial.total_fls_bytes, parallel.total_fls_bytes);
  EXPECT_DOUBLE_EQ(serial.layer_files.median(), parallel.layer_files.median());
  const auto a = serial.file_index->totals();
  const auto b = parallel.file_index->totals();
  EXPECT_EQ(a.unique_files, b.unique_files);
  EXPECT_EQ(a.unique_bytes, b.unique_bytes);
  EXPECT_EQ(a.total_files, b.total_files);
}

// ---------- retraction (fold . unfold) ----------

// Canonical view of an index: every live entry's report-relevant fields in
// key order. first_layer/multi_layer are deliberately absent — they are
// not invertible and the canonical report never reads them (DESIGN.md §15).
std::vector<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, Type>>
canonical_entries(const FileDedupIndex& index) {
  std::vector<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, Type>>
      out;
  index.for_each([&](std::uint64_t key, const ContentEntry& entry) {
    out.emplace_back(key, entry.count, entry.size, entry.type);
  });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RetractionTest, FoldUnfoldRoundTripsToTheBaselineExactly) {
  // Baseline: layer A's population alone.
  FileDedupIndex baseline;
  baseline.add(100, 10, Type::kAsciiText, 0);
  baseline.add(100, 10, Type::kAsciiText, 0);
  baseline.add(200, 64, Type::kElfExecutable, 0);
  baseline.add(300, 0, Type::kEmpty, 0);

  // Same index, plus layer B's pre-folded contribution (overlapping one
  // shared content and adding a private one), then B retired again.
  FileDedupIndex evolved;
  evolved.add(100, 10, Type::kAsciiText, 0);
  evolved.add(100, 10, Type::kAsciiText, 0);
  evolved.add(200, 64, Type::kElfExecutable, 0);
  evolved.add(300, 0, Type::kEmpty, 0);

  const std::vector<std::pair<std::uint64_t, ContentEntry>> contribution = {
      {100, ContentEntry{3, 10, 1, Type::kAsciiText, false}},
      {400, ContentEntry{2, 1024, 1, Type::kBzip2, false}},
  };
  for (const auto& [key, entry] : contribution) {
    evolved.insert_entry(key, entry);
  }
  EXPECT_EQ(evolved.totals().total_files, baseline.totals().total_files + 5);
  EXPECT_EQ(evolved.distinct_contents(), baseline.distinct_contents() + 1);

  for (const auto& [key, entry] : contribution) {
    EXPECT_TRUE(evolved.retract_entry(key, entry));
  }
  EXPECT_EQ(evolved.retract_underflows(), 0u);

  // Totals, distinct counts, the repeat-count ECDF, and every canonical
  // entry are back to the baseline.
  const DedupTotals a = baseline.totals();
  const DedupTotals b = evolved.totals();
  EXPECT_EQ(a.total_files, b.total_files);
  EXPECT_EQ(a.unique_files, b.unique_files);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.unique_bytes, b.unique_bytes);
  EXPECT_EQ(baseline.distinct_contents(), evolved.distinct_contents());
  const auto cdf_a = baseline.repeat_count_cdf();
  const auto cdf_b = evolved.repeat_count_cdf();
  EXPECT_EQ(cdf_a.size(), cdf_b.size());
  EXPECT_DOUBLE_EQ(cdf_a.max(), cdf_b.max());
  EXPECT_EQ(canonical_entries(baseline), canonical_entries(evolved));

  // The by-type breakdown reads through for_each, so it sees the same
  // world too (tombstones never reach it).
  TypeBreakdown bt_a(baseline);
  TypeBreakdown bt_b(evolved);
  EXPECT_EQ(bt_a.overall().count, bt_b.overall().count);
  EXPECT_EQ(bt_a.overall().bytes, bt_b.overall().bytes);
  EXPECT_EQ(bt_a.overall().unique_count, bt_b.overall().unique_count);
  EXPECT_EQ(bt_a.overall().unique_bytes, bt_b.overall().unique_bytes);
}

TEST(RetractionTest, TombstonesReadAsAbsentAndCanRevive) {
  FileDedupIndex index;
  index.add(700, 8, Type::kPng, 3);
  ASSERT_NE(index.find(std::uint64_t{700}), nullptr);

  ContentEntry whole{1, 8, 3, Type::kPng, false};
  EXPECT_TRUE(index.retract_entry(700, whole));  // emptied -> tombstone
  EXPECT_EQ(index.find(std::uint64_t{700}), nullptr);
  EXPECT_EQ(index.distinct_contents(), 0u);
  EXPECT_EQ(index.totals().total_files, 0u);
  std::size_t visited = 0;
  index.for_each([&](std::uint64_t, const ContentEntry&) { ++visited; });
  EXPECT_EQ(visited, 0u);

  // A re-observed content reuses its dead slot and counts as live again.
  index.add(700, 8, Type::kPng, 5);
  ASSERT_NE(index.find(std::uint64_t{700}), nullptr);
  EXPECT_EQ(index.find(std::uint64_t{700})->count, 1u);
  EXPECT_EQ(index.distinct_contents(), 1u);
}

TEST(RetractionTest, UnderflowsAreCountedAndClamped) {
  FileDedupIndex index;
  index.add(900, 4, Type::kJpeg, 0);

  // Unknown key: nothing to subtract from.
  ContentEntry ghost{1, 4, 0, Type::kJpeg, false};
  EXPECT_FALSE(index.retract_entry(12345, ghost));
  EXPECT_EQ(index.retract_underflows(), 1u);

  // Over-retraction clamps to empty instead of wrapping, and counts.
  ContentEntry too_many{5, 4, 0, Type::kJpeg, false};
  EXPECT_FALSE(index.retract_entry(900, too_many));
  EXPECT_EQ(index.retract_underflows(), 2u);
  EXPECT_EQ(index.find(std::uint64_t{900}), nullptr);
  EXPECT_EQ(index.totals().total_files, 0u);

  // Retracting nothing is a successful no-op, never an underflow.
  ContentEntry nothing{0, 0, 0, Type::kEmpty, false};
  EXPECT_TRUE(index.retract_entry(900, nothing));
  EXPECT_EQ(index.retract_underflows(), 2u);
}

}  // namespace
}  // namespace dockmine::dedup
