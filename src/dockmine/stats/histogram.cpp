#include "dockmine/stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dockmine::stats {

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  if (!(hi > lo) || buckets == 0) {
    throw std::invalid_argument("LinearHistogram: need hi > lo and buckets > 0");
  }
}

void LinearHistogram::add(double x, std::uint64_t weight) noexcept {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = std::min(counts_.size() - 1,
                   static_cast<std::size_t>((x - lo_) / width_));
  }
  counts_[idx] += weight;
  total_ += weight;
}

void LinearHistogram::merge(const LinearHistogram& other) {
  if (other.counts_.size() != counts_.size() || other.lo_ != lo_ ||
      other.hi_ != hi_) {
    throw std::invalid_argument("LinearHistogram::merge: shape mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double LinearHistogram::bucket_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double LinearHistogram::bucket_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::size_t LinearHistogram::mode_bucket() const noexcept {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

Log2Histogram::Log2Histogram() = default;

void Log2Histogram::add(double x, std::uint64_t weight) noexcept {
  total_ += weight;
  if (!(x >= 1.0)) {  // also catches NaN
    zero_ += weight;
    return;
  }
  int k = std::min(kBuckets - 1, static_cast<int>(std::log2(x)));
  if (k < 0) k = 0;
  counts_[k] += weight;
}

void Log2Histogram::merge(const Log2Histogram& other) {
  zero_ += other.zero_;
  total_ += other.total_;
  for (int i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
}

double Log2Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  std::uint64_t cum = zero_;
  if (target < cum) return 0.0;
  for (int k = 0; k < kBuckets; ++k) {
    if (counts_[k] == 0) continue;
    if (target < cum + counts_[k]) {
      const double lo = std::exp2(k);
      const double hi = std::exp2(k + 1);
      const double within = static_cast<double>(target - cum) /
                            static_cast<double>(counts_[k]);
      // Geometric interpolation inside the bucket.
      return lo * std::pow(hi / lo, within);
    }
    cum += counts_[k];
  }
  return std::exp2(kBuckets);
}

double Log2Histogram::fraction_at_or_below(double x) const {
  if (total_ == 0) return 0.0;
  if (x < 1.0) return static_cast<double>(zero_) / static_cast<double>(total_);
  std::uint64_t cum = zero_;
  const int kx = std::min(kBuckets - 1, static_cast<int>(std::log2(x)));
  for (int k = 0; k < kx; ++k) cum += counts_[k];
  // Partial credit within bucket kx by geometric position.
  const double lo = std::exp2(kx);
  const double hi = std::exp2(kx + 1);
  const double within = std::clamp(std::log(x / lo) / std::log(hi / lo), 0.0, 1.0);
  cum += static_cast<std::uint64_t>(within * static_cast<double>(counts_[kx]));
  return static_cast<double>(cum) / static_cast<double>(total_);
}

std::vector<Log2Histogram::Row> Log2Histogram::rows() const {
  std::vector<Row> out;
  if (zero_ > 0) out.push_back({0.0, 1.0, zero_});
  for (int k = 0; k < kBuckets; ++k) {
    if (counts_[k] > 0) out.push_back({std::exp2(k), std::exp2(k + 1), counts_[k]});
  }
  return out;
}

}  // namespace dockmine::stats
