// Bucketed histograms for the paper's "histogram of ..." panels
// (Figs. 3(b), 4(b), 7(b), 8(b), 10(b)) and as mergeable approximate CDFs
// for populations too large to keep exact samples for.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dockmine::stats {

/// Fixed-width linear histogram over [lo, hi); values outside are clamped
/// into the first/last bucket (the paper's histograms likewise truncate the
/// long tail, e.g. Fig. 3(b) zooms into 0-128 MB).
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t buckets);

  void add(double x, std::uint64_t weight = 1) noexcept;
  void merge(const LinearHistogram& other);

  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  std::uint64_t total() const noexcept { return total_; }

  double bucket_lo(std::size_t i) const noexcept;
  double bucket_hi(std::size_t i) const noexcept;

  /// Index of the fullest bucket (the mode bucket).
  std::size_t mode_bucket() const noexcept;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Log2-bucketed histogram for heavy-tailed quantities (file sizes span
/// 0 bytes to 498 GB). Bucket k covers [2^k, 2^(k+1)); values < 1 go to a
/// dedicated zero bucket. Also provides approximate quantiles, making it a
/// mergeable CDF sketch with <= 2x relative value error.
class Log2Histogram {
 public:
  Log2Histogram();

  void add(double x, std::uint64_t weight = 1) noexcept;
  void merge(const Log2Histogram& other);

  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t zero_count() const noexcept { return zero_; }

  /// Approximate value at quantile q (geometric mid-point of the bucket the
  /// quantile falls in, interpolated by rank within the bucket).
  double quantile(double q) const;

  /// Approximate P(X <= x).
  double fraction_at_or_below(double x) const;

  /// (bucket_lo, bucket_hi, count) rows for non-empty buckets.
  struct Row {
    double lo;
    double hi;
    std::uint64_t count;
  };
  std::vector<Row> rows() const;

 private:
  static constexpr int kBuckets = 64;
  std::uint64_t zero_ = 0;
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t total_ = 0;
};

}  // namespace dockmine::stats
