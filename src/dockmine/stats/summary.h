// Streaming summary statistics (Welford) — count, mean, variance, extrema.
// Used everywhere an average is reported (e.g., Fig. 15 "average file size
// by file type group") without buffering the population.
#pragma once

#include <cstdint>
#include <limits>

namespace dockmine::stats {

class Summary {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  /// Merge another summary (parallel reduction; Chan et al. formula).
  void merge(const Summary& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
  }
  double stddev() const noexcept;
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace dockmine::stats
