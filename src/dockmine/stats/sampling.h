// Sampling utilities for the dedup-growth experiment (Fig. 25 draws
// "4 random samples from the whole dataset") and for bounded-memory
// profiling of huge populations.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "dockmine/util/rng.h"

namespace dockmine::stats {

/// Classic reservoir sampling (Algorithm R): uniform k-subset of a stream of
/// unknown length.
template <typename T>
class Reservoir {
 public:
  Reservoir(std::size_t capacity, util::Rng rng)
      : capacity_(capacity), rng_(rng) {}

  void add(T item) {
    ++seen_;
    if (items_.size() < capacity_) {
      items_.push_back(std::move(item));
      return;
    }
    const std::uint64_t j = rng_.uniform(seen_);
    if (j < capacity_) items_[j] = std::move(item);
  }

  const std::vector<T>& items() const noexcept { return items_; }
  std::uint64_t seen() const noexcept { return seen_; }

 private:
  std::size_t capacity_;
  util::Rng rng_;
  std::uint64_t seen_ = 0;
  std::vector<T> items_;
};

/// Floyd's algorithm: k distinct indices uniformly drawn from [0, n).
/// O(k) expected time and memory independent of n.
std::vector<std::uint64_t> sample_indices(std::uint64_t n, std::size_t k,
                                          util::Rng& rng);

/// Fisher-Yates in-place shuffle.
template <typename T>
void shuffle(std::vector<T>& items, util::Rng& rng) {
  for (std::size_t i = items.size(); i > 1; --i) {
    const std::size_t j = rng.uniform(i);
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

}  // namespace dockmine::stats
