// Parametric samplers behind the synthetic Docker Hub model.
//
// The paper's populations are heavy-tailed (layer sizes span 0 B to 498 GB,
// pull counts 0 to 650 M). We model them with log-normals (body),
// Pareto tails, Zipf rank popularity, and weighted mixtures. Each sampler
// takes an explicit Rng so generation is deterministic and parallelizable.
#pragma once

#include <cstdint>
#include <vector>

#include "dockmine/util/rng.h"

namespace dockmine::stats {

/// Log-normal: X = exp(mu + sigma * Z). Natural fit for sizes.
class LogNormal {
 public:
  LogNormal(double mu, double sigma) noexcept : mu_(mu), sigma_(sigma) {}

  /// Construct from two quantile targets, the form the paper reports
  /// ("median 4 MB, 90% below 63 MB"). z(0.9) = 1.2815515655.
  static LogNormal from_median_p90(double median, double p90) noexcept;

  double sample(util::Rng& rng) const noexcept;
  double median() const noexcept;
  double quantile(double q) const noexcept;

  double mu() const noexcept { return mu_; }
  double sigma() const noexcept { return sigma_; }

 private:
  double mu_, sigma_;
};

/// Pareto (Type I): survival P(X > x) = (xm / x)^alpha for x >= xm.
class Pareto {
 public:
  Pareto(double xm, double alpha) noexcept : xm_(xm), alpha_(alpha) {}
  double sample(util::Rng& rng) const noexcept;
  double quantile(double q) const noexcept;

 private:
  double xm_, alpha_;
};

/// Zipf over ranks {1..n} with exponent s: P(rank=k) proportional to k^-s.
/// Uses Devroye's rejection method — O(1) per sample, no O(n) tables — so it
/// scales to n = hundreds of thousands of repositories.
class Zipf {
 public:
  Zipf(std::uint64_t n, double s) noexcept;
  std::uint64_t sample(util::Rng& rng) const noexcept;

  std::uint64_t n() const noexcept { return n_; }
  double s() const noexcept { return s_; }

 private:
  double h_integral(double x) const noexcept;
  double h_integral_inverse(double x) const noexcept;

  std::uint64_t n_;
  double s_;
  double h_x1_, h_n_;
  double threshold_;
};

/// Walker alias table: O(1) samples from an arbitrary finite discrete
/// distribution. Drives the file-type mixture (Figs. 14-22 shares).
class AliasTable {
 public:
  /// Empty table; sample() returns 0. Exists so the type can be a class
  /// member initialized after construction.
  AliasTable() = default;
  explicit AliasTable(const std::vector<double>& weights);
  std::size_t sample(util::Rng& rng) const noexcept;
  std::size_t size() const noexcept { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

/// Two-component size model: log-normal body with probability (1 - tail_p),
/// Pareto tail otherwise. Matches the paper's shape of "most values modest,
/// a few enormous" (Fig. 3: half the layers < 4 MB, max layer hundreds of GB).
class BodyTail {
 public:
  BodyTail(LogNormal body, Pareto tail, double tail_p) noexcept
      : body_(body), tail_(tail), tail_p_(tail_p) {}

  double sample(util::Rng& rng) const noexcept;

 private:
  LogNormal body_;
  Pareto tail_;
  double tail_p_;
};

}  // namespace dockmine::stats
