#include "dockmine/stats/cdf.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace dockmine::stats {

Ecdf::Ecdf(std::vector<double> samples) : samples_(std::move(samples)) {}

void Ecdf::ensure_sorted() const {
  if (dirty_) {
    std::sort(samples_.begin(), samples_.end());
    dirty_ = false;
  }
}

double Ecdf::quantile(double q) const {
  assert(!samples_.empty());
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  if (samples_.size() == 1) return samples_.front();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

double Ecdf::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double Ecdf::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double Ecdf::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Ecdf::fraction_at_or_below(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Ecdf::fraction_equal(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto range = std::equal_range(samples_.begin(), samples_.end(), x);
  return static_cast<double>(range.second - range.first) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Ecdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q =
        points == 1 ? 1.0 : static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(q, quantile(q));
  }
  return out;
}

const std::vector<double>& Ecdf::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

}  // namespace dockmine::stats
