// Empirical CDFs. Every distribution figure in the paper (Figs. 3-12, 23-26)
// is a CDF panel; this type is what the bench harness prints.
//
// `Ecdf` keeps the full sample (exact percentiles; fine for the 10^4-10^6
// sample counts our scaled runs produce). For the multi-billion-file cases a
// quantile sketch would be needed; the log-bucketed `Histogram` doubles as a
// mergeable approximate CDF for those paths.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dockmine::stats {

class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::vector<double> samples);

  void add(double x) { samples_.push_back(x); dirty_ = true; }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  /// Value at quantile q in [0, 1]; linear interpolation between order
  /// statistics. Precondition: non-empty.
  double quantile(double q) const;

  double median() const { return quantile(0.5); }
  double p90() const { return quantile(0.9); }
  double min() const;
  double max() const;
  double mean() const;

  /// P(X <= x): fraction of samples at or below x.
  double fraction_at_or_below(double x) const;

  /// Fraction of samples exactly equal to x (e.g., "27% of layers have a
  /// single file": fraction_equal(1)).
  double fraction_equal(double x) const;

  /// Evenly spaced (quantile, value) points for plotting/printing.
  std::vector<std::pair<double, double>> curve(std::size_t points = 100) const;

  const std::vector<double>& sorted_samples() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool dirty_ = true;
};

}  // namespace dockmine::stats
