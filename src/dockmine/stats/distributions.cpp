#include "dockmine/stats/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dockmine::stats {

namespace {
constexpr double kZ90 = 1.2815515655446004;  // standard normal 90th pct
}

LogNormal LogNormal::from_median_p90(double median, double p90) noexcept {
  const double mu = std::log(median);
  const double sigma = std::log(p90 / median) / kZ90;
  return {mu, sigma};
}

double LogNormal::sample(util::Rng& rng) const noexcept {
  return std::exp(mu_ + sigma_ * rng.normal());
}

double LogNormal::median() const noexcept { return std::exp(mu_); }

double LogNormal::quantile(double q) const noexcept {
  // Acklam's inverse-normal approximation is overkill; use the
  // Beasley-Springer/Moro-lite rational approximation adequate for
  // calibration checks (|err| < 1e-6 over (0.02, 0.98)).
  q = std::clamp(q, 1e-12, 1.0 - 1e-12);
  // Peter Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double z;
  if (q < plow) {
    const double u = std::sqrt(-2.0 * std::log(q));
    z = (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) /
        ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0);
  } else if (q <= 1.0 - plow) {
    const double u = q - 0.5;
    const double t = u * u;
    z = (((((a[0] * t + a[1]) * t + a[2]) * t + a[3]) * t + a[4]) * t + a[5]) * u /
        (((((b[0] * t + b[1]) * t + b[2]) * t + b[3]) * t + b[4]) * t + 1.0);
  } else {
    const double u = std::sqrt(-2.0 * std::log(1.0 - q));
    z = -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) /
        ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0);
  }
  return std::exp(mu_ + sigma_ * z);
}

double Pareto::sample(util::Rng& rng) const noexcept {
  double u = 0.0;
  while (u == 0.0) u = rng.uniform01();
  return xm_ / std::pow(u, 1.0 / alpha_);
}

double Pareto::quantile(double q) const noexcept {
  q = std::clamp(q, 0.0, 1.0 - 1e-15);
  return xm_ / std::pow(1.0 - q, 1.0 / alpha_);
}

// Zipf via Devroye's "Non-Uniform Random Variate Generation" rejection
// scheme as popularized in Apache Commons RNG.
Zipf::Zipf(std::uint64_t n, double s) noexcept : n_(n ? n : 1), s_(s) {
  h_x1_ = h_integral(1.5) - 1.0;
  h_n_ = h_integral(static_cast<double>(n_) + 0.5);
  threshold_ = 2.0 - h_integral_inverse(h_integral(2.5) - std::pow(2.0, -s_));
}

double Zipf::h_integral(double x) const noexcept {
  const double log_x = std::log(x);
  // helper((1-s) * ln x) * ln x  where helper(t) = (e^t - 1)/t.
  const double t = (1.0 - s_) * log_x;
  double helper;
  if (std::abs(t) > 1e-8) {
    helper = std::expm1(t) / t;
  } else {
    helper = 1.0 + t * 0.5 * (1.0 + t / 3.0 * (1.0 + 0.25 * t));
  }
  return helper * log_x;
}

double Zipf::h_integral_inverse(double x) const noexcept {
  double t = x * (1.0 - s_);
  if (t < -1.0) t = -1.0;
  double helper;
  if (std::abs(t) > 1e-8) {
    helper = std::log1p(t) / t;
  } else {
    helper = 1.0 - t * 0.5 * (1.0 - t / 3.0 * (1.0 - 0.25 * t));
  }
  return std::exp(helper * x);
}

std::uint64_t Zipf::sample(util::Rng& rng) const noexcept {
  if (n_ == 1) return 1;
  for (;;) {
    const double u = h_n_ + rng.uniform01() * (h_x1_ - h_n_);
    const double x = h_integral_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(std::clamp(
        x + 0.5, 1.0, static_cast<double>(n_)));
    const double kd = static_cast<double>(k);
    if (kd - x <= threshold_ ||
        u >= h_integral(kd + 0.5) - std::exp(-std::log(kd) * s_)) {
      return k;
    }
  }
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("AliasTable: empty weights");
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasTable: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("AliasTable: zero total weight");
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::uint32_t> small, large;
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back(); small.pop_back();
    const std::uint32_t l = large.back(); large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::size_t AliasTable::sample(util::Rng& rng) const noexcept {
  if (prob_.empty()) return 0;
  const std::size_t column = rng.uniform(prob_.size());
  return rng.uniform01() < prob_[column] ? column : alias_[column];
}

double BodyTail::sample(util::Rng& rng) const noexcept {
  return rng.chance(tail_p_) ? tail_.sample(rng) : body_.sample(rng);
}

}  // namespace dockmine::stats
