#include "dockmine/stats/sampling.h"

#include <algorithm>

namespace dockmine::stats {

std::vector<std::uint64_t> sample_indices(std::uint64_t n, std::size_t k,
                                          util::Rng& rng) {
  if (k >= n) {
    std::vector<std::uint64_t> all(n);
    for (std::uint64_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(k * 2);
  std::vector<std::uint64_t> out;
  out.reserve(k);
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = rng.uniform(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace dockmine::stats
