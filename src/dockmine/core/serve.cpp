#include "dockmine/core/serve.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <string_view>
#include <utility>

#include "dockmine/filetype/taxonomy.h"
#include "dockmine/obs/export.h"
#include "dockmine/obs/journal.h"
#include "dockmine/obs/obs.h"
#include "dockmine/obs/timeseries.h"

namespace dockmine::core::serve {
namespace {

double mono_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The report's fixed quantile grid (pipeline.cpp ecdf_json); quantile
/// queries must land on it exactly so their answers are slices of the
/// batch report, never interpolations of it.
constexpr double kQuantileGrid[] = {0.0,  0.01, 0.05, 0.1,  0.25, 0.5,
                                    0.75, 0.9,  0.95, 0.99, 1.0};

/// Grid index for `q`, or -1 when q is off-grid.
int grid_index(double q) {
  for (std::size_t i = 0; i < std::size(kQuantileGrid); ++i) {
    if (std::fabs(q - kQuantileGrid[i]) < 1e-9) return static_cast<int>(i);
  }
  return -1;
}

bool known_query(const std::string& q) {
  return q == "report" || q == "image" || q == "layer" || q == "content" ||
         q == "types" || q == "ecdf" || q == "status" || q == "stats" ||
         q == "top" || q == "repos" || q == "metrics" || q == "trace-tail" ||
         q == "slowlog";
}

bool known_metrics_op(const std::string& op) {
  return op.empty() || op == "rate" || op == "quantile";
}

bool known_top_metric(const std::string& metric) {
  return metric == "cis" || metric == "fis" || metric == "files" ||
         metric == "layers";
}

std::uint64_t metric_value(const RepoMetrics& metrics,
                           const std::string& metric) {
  if (metric == "cis") return metrics.cis;
  if (metric == "fis") return metrics.fis;
  if (metric == "files") return metrics.files;
  return metrics.layers;
}

/// Report location of one queryable ECDF: {section, field} under
/// report["analysis"], or nullopt for an unknown name.
std::optional<std::pair<std::string, std::string>> ecdf_location(
    const std::string& name) {
  const std::size_t dot = name.find('.');
  if (dot == std::string::npos) return std::nullopt;
  const std::string section = name.substr(0, dot);
  const std::string field = name.substr(dot + 1);
  const bool ok =
      (section == "images" &&
       (field == "cis" || field == "fis" || field == "layers_per_image" ||
        field == "files_per_image")) ||
      (section == "layers" &&
       (field == "cls" || field == "fls" || field == "files_per_layer")) ||
      (section == "dedup" && field == "repeat_counts");
  if (!ok) return std::nullopt;
  return std::make_pair(section, field);
}

obs::Counter& serve_counter(const std::string& name) {
  return obs::Registry::global().counter(name);
}

}  // namespace

// ---- request / response codecs ----------------------------------------

json::Value request_to_json(const Request& request) {
  auto doc = json::Value::object();
  switch (request.kind) {
    case RequestKind::kQuery:
      doc.set("type", "query");
      doc.set("id", request.id);
      doc.set("q", request.q);
      if (request.q == "report" && !request.path.empty()) {
        doc.set("path", request.path);
      }
      if (request.q == "image") doc.set("repository", request.repository);
      if (request.q == "layer" || request.q == "content") {
        doc.set("key", request.key);
      }
      if (request.q == "ecdf") {
        doc.set("name", request.name);
        if (request.quantile >= 0.0) doc.set("quantile", request.quantile);
      }
      if (request.q == "top") {
        doc.set("metric", request.metric);
        doc.set("n", request.n);
      }
      if (request.q == "repos" && !request.prefix.empty()) {
        doc.set("prefix", request.prefix);
      }
      if (request.q == "metrics") {
        if (!request.name.empty()) doc.set("name", request.name);
        if (!request.op.empty()) doc.set("op", request.op);
        if (request.window_ms > 0) doc.set("window_ms", request.window_ms);
        if (request.op == "quantile" && request.quantile >= 0.0) {
          doc.set("quantile", request.quantile);
        }
        if (request.range_ms > 0) doc.set("range_ms", request.range_ms);
      }
      if (request.q == "trace-tail" && request.n > 0) {
        doc.set("n", request.n);
      }
      break;
    case RequestKind::kIngest:
      doc.set("type", "ingest");
      doc.set("id", request.id);
      doc.set("repositories", request.repositories);
      doc.set("seed", request.seed);
      break;
    case RequestKind::kIngestEpoch:
      doc.set("type", "ingest-epoch");
      doc.set("id", request.id);
      break;
    case RequestKind::kShutdown:
      doc.set("type", "shutdown");
      doc.set("id", request.id);
      break;
  }
  return doc;
}

util::Result<Request> request_from_json(const json::Value& doc) {
  if (!doc.is_object() || !doc["type"].is_string() || !doc["id"].is_int() ||
      doc["id"].as_int() < 0) {
    return util::corrupt("serve: malformed request envelope");
  }
  Request request;
  request.id = doc["id"].as_uint();
  const std::string& type = doc["type"].as_string();
  if (type == "shutdown") {
    request.kind = RequestKind::kShutdown;
    return request;
  }
  if (type == "ingest") {
    request.kind = RequestKind::kIngest;
    if (!doc["repositories"].is_int() || !doc["seed"].is_int() ||
        doc["repositories"].as_int() <= 0 || doc["seed"].as_int() < 0) {
      return util::corrupt("serve: malformed ingest request");
    }
    request.repositories = doc["repositories"].as_uint();
    request.seed = doc["seed"].as_uint();
    return request;
  }
  if (type == "ingest-epoch") {
    request.kind = RequestKind::kIngestEpoch;
    return request;
  }
  if (type != "query") {
    return util::corrupt("serve: unknown request type: " + type);
  }
  request.kind = RequestKind::kQuery;
  if (!doc["q"].is_string() || !known_query(doc["q"].as_string())) {
    return util::corrupt("serve: unknown query selector");
  }
  request.q = doc["q"].as_string();
  if (request.q == "report") {
    if (doc.contains("path")) {
      if (!doc["path"].is_string()) {
        return util::corrupt("serve: report path must be a string");
      }
      request.path = doc["path"].as_string();
    }
  } else if (request.q == "image") {
    if (!doc["repository"].is_string() ||
        doc["repository"].as_string().empty()) {
      return util::corrupt("serve: image query requires a repository");
    }
    request.repository = doc["repository"].as_string();
  } else if (request.q == "layer" || request.q == "content") {
    if (!doc["key"].is_int() || doc["key"].as_int() == 0) {
      return util::corrupt("serve: " + request.q +
                           " query requires a nonzero key");
    }
    request.key = doc["key"].as_uint();
  } else if (request.q == "ecdf") {
    if (!doc["name"].is_string() || doc["name"].as_string().empty()) {
      return util::corrupt("serve: ecdf query requires a name");
    }
    request.name = doc["name"].as_string();
    if (doc.contains("quantile")) {
      if (!doc["quantile"].is_number()) {
        return util::corrupt("serve: ecdf quantile must be a number");
      }
      request.quantile = doc["quantile"].as_double();
      if (!(request.quantile >= 0.0 && request.quantile <= 1.0)) {
        return util::corrupt("serve: ecdf quantile out of [0,1]");
      }
    }
  } else if (request.q == "top") {
    if (!doc["metric"].is_string() ||
        !known_top_metric(doc["metric"].as_string())) {
      return util::corrupt("serve: top query requires a metric "
                           "(cis|fis|files|layers)");
    }
    request.metric = doc["metric"].as_string();
    if (!doc["n"].is_int() || doc["n"].as_int() <= 0) {
      return util::corrupt("serve: top query requires n >= 1");
    }
    request.n = doc["n"].as_uint();
  } else if (request.q == "repos") {
    if (doc.contains("prefix")) {
      if (!doc["prefix"].is_string()) {
        return util::corrupt("serve: repos prefix must be a string");
      }
      request.prefix = doc["prefix"].as_string();
    }
  } else if (request.q == "metrics") {
    if (doc.contains("name")) {
      if (!doc["name"].is_string()) {
        return util::corrupt("serve: metrics name must be a string");
      }
      request.name = doc["name"].as_string();
    }
    if (doc.contains("op")) {
      if (!doc["op"].is_string() ||
          !known_metrics_op(doc["op"].as_string())) {
        return util::corrupt("serve: metrics op must be rate|quantile");
      }
      request.op = doc["op"].as_string();
    }
    if (doc.contains("window_ms")) {
      if (!doc["window_ms"].is_int() || doc["window_ms"].as_int() <= 0) {
        return util::corrupt("serve: metrics window_ms must be >= 1");
      }
      request.window_ms = doc["window_ms"].as_uint();
    }
    if (doc.contains("range_ms")) {
      if (!doc["range_ms"].is_int() || doc["range_ms"].as_int() <= 0) {
        return util::corrupt("serve: metrics range_ms must be >= 1");
      }
      request.range_ms = doc["range_ms"].as_uint();
    }
    if (request.op == "quantile") {
      if (!doc["quantile"].is_number()) {
        return util::corrupt("serve: metrics quantile op requires a "
                             "quantile");
      }
      request.quantile = doc["quantile"].as_double();
      if (!(request.quantile > 0.0 && request.quantile < 1.0)) {
        return util::corrupt("serve: metrics quantile out of (0,1)");
      }
    } else if (doc.contains("quantile")) {
      return util::corrupt("serve: metrics quantile requires op=quantile");
    }
  } else if (request.q == "trace-tail") {
    if (doc.contains("n")) {
      if (!doc["n"].is_int() || doc["n"].as_int() <= 0) {
        return util::corrupt("serve: trace-tail n must be >= 1");
      }
      request.n = doc["n"].as_uint();
    }
  }
  return request;
}

json::Value response_to_json(const Response& response) {
  auto doc = json::Value::object();
  doc.set("type", response.ok ? "result" : "error");
  doc.set("id", response.id);
  doc.set("epoch", response.epoch);
  if (response.ok) {
    doc.set("body", response.body);
  } else {
    doc.set("error", response.error);
  }
  // Latency attribution rides along only when measured, so telemetry-off
  // responses are byte-identical to older builds.
  if (response.parse_ms >= 0.0) doc.set("parse_ms", response.parse_ms);
  if (response.handle_ms >= 0.0) doc.set("handle_ms", response.handle_ms);
  return doc;
}

util::Result<Response> response_from_json(const json::Value& doc) {
  if (!doc.is_object() || !doc["type"].is_string() || !doc["id"].is_int() ||
      doc["id"].as_int() < 0 || !doc["epoch"].is_int() ||
      doc["epoch"].as_int() < 0) {
    return util::corrupt("serve: malformed response envelope");
  }
  Response response;
  response.id = doc["id"].as_uint();
  response.epoch = doc["epoch"].as_uint();
  if (doc.contains("parse_ms")) {
    if (!doc["parse_ms"].is_number() || doc["parse_ms"].as_double() < 0.0) {
      return util::corrupt("serve: parse_ms must be a non-negative number");
    }
    response.parse_ms = doc["parse_ms"].as_double();
  }
  if (doc.contains("handle_ms")) {
    if (!doc["handle_ms"].is_number() ||
        doc["handle_ms"].as_double() < 0.0) {
      return util::corrupt("serve: handle_ms must be a non-negative number");
    }
    response.handle_ms = doc["handle_ms"].as_double();
  }
  const std::string& type = doc["type"].as_string();
  if (type == "result") {
    if (!doc.contains("body")) {
      return util::corrupt("serve: result response without body");
    }
    response.ok = true;
    response.body = doc["body"];
    return response;
  }
  if (type == "error") {
    if (!doc["error"].is_string()) {
      return util::corrupt("serve: error response without message");
    }
    response.ok = false;
    response.error = doc["error"].as_string();
    return response;
  }
  return util::corrupt("serve: unknown response type: " + type);
}

json::Value batch_spec_to_json(const BatchSpec& spec) {
  auto doc = json::Value::object();
  doc.set("repositories", spec.repositories);
  doc.set("seed", spec.seed);
  return doc;
}

util::Result<BatchSpec> batch_spec_from_json(const json::Value& doc) {
  if (!doc.is_object() || !doc["repositories"].is_int() ||
      !doc["seed"].is_int() || doc["repositories"].as_int() <= 0 ||
      doc["seed"].as_int() < 0) {
    return util::corrupt("serve: malformed batch spec");
  }
  BatchSpec spec;
  spec.repositories = doc["repositories"].as_uint();
  spec.seed = doc["seed"].as_uint();
  return spec;
}

// ---- shared serializers ------------------------------------------------

json::Value image_report_json(const analyzer::ImageProfile& profile,
                              const registry::Manifest& manifest,
                              const dedup::LayerSharingAnalysis& sharing) {
  std::uint64_t cls_total = 0;
  double cls_amortized = 0.0;
  std::uint64_t shared_layers = 0;
  for (const auto& ref : manifest.layers) {
    const auto info = sharing.lookup(ref.digest.key64());
    const std::uint64_t references = info ? info->references : 1;
    cls_total += ref.compressed_size;
    cls_amortized += static_cast<double>(ref.compressed_size) /
                     static_cast<double>(references);
    if (references > 1) ++shared_layers;
  }
  auto doc = json::Value::object();
  doc.set("repository", profile.repository);
  doc.set("cis", profile.cis);
  doc.set("fis", profile.fis);
  doc.set("files", profile.file_count);
  doc.set("dirs", profile.dir_count);
  doc.set("layers", std::uint64_t{profile.layer_count});
  doc.set("compression_ratio", profile.compression_ratio());
  doc.set("cls_total", cls_total);
  doc.set("cls_amortized", cls_amortized);
  doc.set("layer_dedup_ratio",
          cls_amortized == 0.0
              ? 1.0
              : static_cast<double>(cls_total) / cls_amortized);
  doc.set("shared_layers", shared_layers);
  return doc;
}

json::Value type_breakdown_json(const dedup::TypeBreakdown& breakdown) {
  const auto stats_json = [](const dedup::TypeStats& stats) {
    auto doc = json::Value::object();
    doc.set("count", stats.count);
    doc.set("bytes", stats.bytes);
    doc.set("unique_count", stats.unique_count);
    doc.set("unique_bytes", stats.unique_bytes);
    doc.set("count_removed", stats.count_removed());
    doc.set("capacity_removed", stats.capacity_removed());
    return doc;
  };
  auto doc = json::Value::object();
  doc.set("overall", stats_json(breakdown.overall()));
  auto groups = json::Value::array();
  for (std::size_t g = 0; g < filetype::kGroupCount; ++g) {
    const auto group = static_cast<filetype::Group>(g);
    auto row = json::Value::object();
    row.set("group", std::string(filetype::to_string(group)));
    row.set("count_share", breakdown.count_share(group));
    row.set("capacity_share", breakdown.capacity_share(group));
    row.set("stats", stats_json(breakdown.by_group(group)));
    groups.push_back(std::move(row));
  }
  doc.set("groups", std::move(groups));
  return doc;
}

// ---- daemon ------------------------------------------------------------

ServeDaemon::ServeDaemon(ServeOptions options)
    : options_(std::move(options)) {}

ServeDaemon::~ServeDaemon() { stop(); }

std::shared_ptr<const Snapshot> ServeDaemon::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

std::string ServeDaemon::batch_dir(std::size_t index) const {
  return (std::filesystem::path(options_.state_dir) /
          ("batch-" + std::to_string(index)))
      .string();
}

util::Status ServeDaemon::run_batch(const BatchSpec& spec) {
  const std::size_t index = batches_.size();
  const std::string dir = batch_dir(index);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  if (ec) return util::internal("serve: cannot create batch dir " + dir);

  JobSpec job = options_.job;
  job.repositories = spec.repositories;
  job.seed = spec.seed;
  PipelineOptions pipeline = lease_pipeline_options(job, 0, 1, dir);
  pipeline.cancel = &cancel_ingest_;
  auto run = run_end_to_end(pipeline);
  if (!run.ok()) {
    std::filesystem::remove_all(dir, ec);
    return run.error();
  }
  if (cancel_ingest_.load(std::memory_order_acquire) ||
      run.value().download.repos_canceled != 0) {
    // A canceled pipeline returns a partial result; committing it would
    // serve a corpus no batch run can reproduce. Abort the whole batch.
    std::filesystem::remove_all(dir, ec);
    return util::unavailable("serve: batch canceled by shutdown");
  }
  PipelineResult& result = run.value();
  BatchState state;
  state.spec = spec;
  state.download = result.download;
  state.contribution.images = std::move(result.images);
  state.contribution.manifests = std::move(result.manifests);
  result.layer_profiles.for_each(
      [&state](const analyzer::LayerProfile& profile) {
        state.contribution.layer_profiles.push_back(profile);
      });
  state.contribution.manifests_pushed = result.manifests_pushed;
  state.contribution.shard_set_dir = dir;
  state.contribution.shard_summary = result.shard_summary;
  batches_.push_back(std::move(state));
  return util::Status::success();
}

util::Result<std::shared_ptr<Snapshot>> ServeDaemon::build_snapshot() {
  std::vector<NodeContribution> contributions;
  contributions.reserve(batches_.size());
  for (const BatchState& batch : batches_) {
    contributions.push_back(batch.contribution);
  }
  auto folded = fold_contributions(contributions);
  if (!folded.ok()) return folded.error();
  PipelineResult& result = folded.value();

  // fold_contributions leaves download accounting to the caller: the union
  // corpus was downloaded batch by batch, so the union's accounting is the
  // field-wise sum (for a single batch, exactly that batch's stats — which
  // keeps the served pipeline_report_json byte-equal to the batch run's).
  downloader::DownloadStats total{};
  for (const BatchState& batch : batches_) {
    const downloader::DownloadStats& d = batch.download;
    total.attempted += d.attempted;
    total.succeeded += d.succeeded;
    total.failed_auth += d.failed_auth;
    total.failed_no_tag += d.failed_no_tag;
    total.failed_missing += d.failed_missing;
    total.failed_digest += d.failed_digest;
    total.failed_other += d.failed_other;
    total.repos_resumed += d.repos_resumed;
    total.repos_canceled += d.repos_canceled;
    total.layers_fetched += d.layers_fetched;
    total.layers_deduped += d.layers_deduped;
    total.layers_resumed += d.layers_resumed;
    total.bytes_downloaded += d.bytes_downloaded;
  }
  result.download = total;

  auto snapshot = std::make_shared<Snapshot>();
  snapshot->epoch = batches_.size();
  for (const BatchState& batch : batches_) {
    snapshot->batches.push_back(batch.spec);
  }
  snapshot->report = pipeline_report_json(result);
  if (result.shard_dedup) {
    snapshot->types = type_breakdown_json(result.shard_dedup->by_type);
  }

  std::map<std::string, const registry::Manifest*> manifests_by_repo;
  for (const registry::Manifest& manifest : result.manifests) {
    manifests_by_repo[manifest.repository] = &manifest;
  }
  for (const analyzer::ImageProfile& profile : result.images) {
    const auto it = manifests_by_repo.find(profile.repository);
    if (it == manifests_by_repo.end()) continue;  // delivered images always match
    snapshot->images.emplace(
        profile.repository,
        image_report_json(profile, *it->second, result.sharing));
    snapshot->repo_metrics.emplace(
        profile.repository,
        RepoMetrics{profile.cis, profile.fis, profile.file_count,
                    profile.layer_count});
  }
  snapshot->sharing = std::move(result.sharing);

  std::vector<std::string> dirs;
  for (const BatchState& batch : batches_) {
    dirs.push_back(batch.contribution.shard_set_dir);
  }
  auto contents = shard::ShardSetIndex::open(dirs);
  if (!contents.ok()) return contents.error();
  snapshot->contents = std::move(contents).value();
  return snapshot;
}

util::Result<std::shared_ptr<Snapshot>> ServeDaemon::apply_temporal_epoch(
    std::uint32_t epoch) {
  auto advanced = options_.temporal_advance(epoch);
  if (!advanced.ok()) return advanced.error();
  PipelineResult& result = advanced.value();
  if (!result.file_index) {
    return util::internal("serve: temporal epoch has no resident dedup index");
  }

  auto snapshot = std::make_shared<Snapshot>();
  snapshot->epoch = epoch;
  snapshot->temporal = true;
  snapshot->report = pipeline_report_json(result);
  snapshot->types = type_breakdown_json(dedup::TypeBreakdown(*result.file_index));

  std::map<std::string, const registry::Manifest*> manifests_by_repo;
  for (const registry::Manifest& manifest : result.manifests) {
    manifests_by_repo[manifest.repository] = &manifest;
  }
  for (const analyzer::ImageProfile& profile : result.images) {
    const auto it = manifests_by_repo.find(profile.repository);
    if (it == manifests_by_repo.end()) continue;
    snapshot->images.emplace(
        profile.repository,
        image_report_json(profile, *it->second, result.sharing));
    snapshot->repo_metrics.emplace(
        profile.repository,
        RepoMetrics{profile.cis, profile.fis, profile.file_count,
                    profile.layer_count});
  }
  snapshot->sharing = std::move(result.sharing);
  snapshot->resident =
      std::shared_ptr<const dedup::FileDedupIndex>(std::move(result.file_index));
  temporal_applied_ = epoch + 1;
  return snapshot;
}

util::Status ServeDaemon::persist_state() {
  auto doc = json::Value::object();
  if (options_.temporal_advance) {
    // Version 2: a temporal daemon's durable state is just the epoch count
    // — replay calls temporal_advance(0..K) and the hook's determinism
    // reproduces the pre-crash snapshot byte-for-byte.
    doc.set("version", std::uint64_t{2});
    doc.set("temporal", true);
    doc.set("epochs",
            std::uint64_t{temporal_applied_ == 0 ? 0 : temporal_applied_ - 1});
  } else {
    doc.set("version", std::uint64_t{1});
    auto specs = json::Value::array();
    for (const BatchState& batch : batches_) {
      specs.push_back(batch_spec_to_json(batch.spec));
    }
    doc.set("batches", std::move(specs));
  }

  const std::filesystem::path path =
      std::filesystem::path(options_.state_dir) / "state.json";
  const std::filesystem::path temp = path.string() + ".tmp";
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out.is_open() || !(out << doc.dump()) || !out.flush()) {
      return util::internal("serve: cannot write " + temp.string());
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) return util::internal("serve: cannot commit " + path.string());
  return util::Status::success();
}

util::Status ServeDaemon::start() {
  if (options_.state_dir.empty()) {
    return util::invalid_argument("serve: state_dir is required");
  }
  if (options_.job.shards == 0) {
    return util::invalid_argument("serve: job.shards must be >= 1");
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.state_dir, ec);
  if (ec) {
    return util::internal("serve: cannot create state_dir " +
                          options_.state_dir);
  }

  std::lock_guard<std::mutex> lock(ingest_mutex_);
  const std::filesystem::path state_path =
      std::filesystem::path(options_.state_dir) / "state.json";
  std::optional<json::Value> state;
  if (std::filesystem::exists(state_path, ec)) {
    std::ifstream in(state_path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof()) {
      return util::internal("serve: cannot read " + state_path.string());
    }
    auto parsed = json::parse(bytes);
    if (!parsed.ok() || !parsed.value().is_object() ||
        !parsed.value()["version"].is_int()) {
      return util::corrupt("serve: malformed state file " +
                           state_path.string());
    }
    state = std::move(parsed).value();
  }

  std::shared_ptr<Snapshot> built_snapshot;
  if (options_.temporal_advance) {
    std::uint32_t last_epoch = 0;
    if (state) {
      // A batch-mode state dir cannot be adopted by a temporal daemon (or
      // vice versa): the replay recipes are incompatible.
      if ((*state)["version"].as_uint() != 2 ||
          !(*state)["temporal"].is_bool() ||
          !(*state)["temporal"].as_bool() || !(*state)["epochs"].is_int() ||
          (*state)["epochs"].as_int() < 0) {
        return util::corrupt("serve: state file is not a temporal v2 state");
      }
      last_epoch = static_cast<std::uint32_t>((*state)["epochs"].as_uint());
    }
    for (std::uint32_t epoch = 0; epoch <= last_epoch; ++epoch) {
      auto applied = apply_temporal_epoch(epoch);
      if (!applied.ok()) return applied.error();
      built_snapshot = std::move(applied).value();
    }
  } else {
    std::vector<BatchSpec> replay;
    if (state) {
      if ((*state)["version"].as_uint() != 1 ||
          !(*state)["batches"].is_array()) {
        return util::corrupt("serve: malformed state file " +
                             state_path.string());
      }
      for (const json::Value& entry : (*state)["batches"].items()) {
        auto spec = batch_spec_from_json(entry);
        if (!spec.ok()) return spec.error();
        replay.push_back(spec.value());
      }
      if (replay.empty()) {
        return util::corrupt("serve: state file lists no batches");
      }
    } else {
      replay.push_back(BatchSpec{options_.job.repositories, options_.job.seed});
    }

    for (const BatchSpec& spec : replay) {
      if (auto ran = run_batch(spec); !ran.ok()) return ran;
    }
    auto built = build_snapshot();
    if (!built.ok()) return built.error();
    built_snapshot = std::move(built).value();
  }
  if (auto persisted = persist_state(); !persisted.ok()) return persisted;
  {
    std::lock_guard<std::mutex> snap_lock(snapshot_mutex_);
    snapshot_ = std::move(built_snapshot);
  }
  obs::Registry::global()
      .gauge("dockmine_serve_epoch")
      .set(static_cast<std::int64_t>(options_.temporal_advance
                                         ? temporal_applied_ - 1
                                         : batches_.size()));

  if (options_.telemetry.enabled) {
    // Continuous telemetry: own the global sampler for this daemon's
    // lifetime (unless some other component already started it) and
    // evaluate alert rules on the sampler thread after every scrape.
    // Latch the uptime baseline now — otherwise the first `query stats`
    // would capture it and every watch frame would report uptime ~0.
    (void)obs::collect();
    obs::TimeSeriesStore& store = obs::TimeSeriesStore::global();
    alerts_.configure(options_.telemetry.rules.empty()
                          ? obs::default_serve_rules()
                          : options_.telemetry.rules);
    alerts_.set_log_path(options_.telemetry.alert_log_path);
    if (!store.sampler_running()) {
      obs::TimeSeriesOptions ts;
      ts.interval_ms = options_.telemetry.sample_interval_ms;
      ts.capacity = options_.telemetry.ring_capacity;
      (void)store.configure(ts);
      telemetry_started_ = store.start_sampler([this](double sampled_at_ms) {
        alerts_.evaluate(obs::TimeSeriesStore::global(), sampled_at_ms);
      });
    }
  }

  if (auto bound = listener_.bind_loopback(options_.port); !bound.ok()) {
    return bound;
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return util::Status::success();
}

void ServeDaemon::stop() {
  stopping_.store(true, std::memory_order_release);
  cancel_ingest_.store(true, std::memory_order_release);
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions.swap(sessions_);
  }
  for (auto& session : sessions) {
    session->socket.shutdown_both();
  }
  for (auto& session : sessions) {
    if (session->thread.joinable()) session->thread.join();
  }
  if (telemetry_started_) {
    obs::TimeSeriesStore::global().stop_sampler();
    telemetry_started_ = false;
  }
}

void ServeDaemon::accept_loop() {
  const std::uint64_t initial_backoff =
      std::max<std::uint64_t>(1, options_.accept_backoff_ms);
  std::uint64_t backoff = initial_backoff;
  while (!stopping_.load(std::memory_order_acquire)) {
    auto accepted = [&]() -> util::Result<http::Socket> {
      if (options_.accept_error_injector) {
        if (auto injected = options_.accept_error_injector()) {
          return *injected;
        }
      }
      return listener_.accept_one();
    }();
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (accepted.error().retryable()) {
        // EMFILE/ENFILE/timeouts: degrade, don't die — connections drain,
        // descriptors come back. Exponential backoff keeps a busy-loop off
        // the CPU while the table is full.
        serve_counter("dockmine_serve_accept_retries_total").add();
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
        backoff = std::min<std::uint64_t>(backoff * 2, 1000);
        continue;
      }
      break;  // listener closed or unrecoverable
    }
    backoff = initial_backoff;

    {
      // Reap finished sessions so a long-lived daemon doesn't accumulate
      // one joinable thread per past connection.
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      for (auto it = sessions_.begin(); it != sessions_.end();) {
        if ((*it)->done.load(std::memory_order_acquire)) {
          if ((*it)->thread.joinable()) (*it)->thread.join();
          it = sessions_.erase(it);
        } else {
          ++it;
        }
      }
    }

    auto session = std::make_unique<Session>();
    session->socket = std::move(accepted).value();
    Session* raw = session.get();
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      sessions_.push_back(std::move(session));
    }
    raw->thread = std::thread([this, raw] { session_loop(raw); });
  }
}

void ServeDaemon::session_loop(Session* session) {
  serve_counter("dockmine_serve_connections_total").add();
  auto& active = obs::Registry::global().gauge("dockmine_serve_active_sessions");
  active.add(1);
  (void)session->socket.set_timeout_ms(options_.io_timeout_ms);

  wire::FrameBuffer frames;
  double partial_since = -1.0;
  bool drop = false;
  while (!drop && !stopping_.load(std::memory_order_acquire)) {
    auto chunk = session->socket.read_some();
    if (!chunk.ok()) {
      if (chunk.error().code() == util::ErrorCode::kTimeout) {
        if (frames.pending() != 0 && partial_since >= 0.0 &&
            mono_ms() - partial_since >
                static_cast<double>(options_.slowloris_ms)) {
          // Slowloris: a frame has been dribbling in for longer than any
          // honest client takes; cut it loose.
          serve_counter("dockmine_serve_slowloris_drops_total").add();
          break;
        }
        continue;
      }
      break;  // reset or closed
    }
    if (chunk.value().empty()) break;  // peer closed
    frames.feed(chunk.value());

    wire::Frame frame;
    while (!drop) {
      auto polled = frames.poll(frame);
      if (!polled.ok()) {
        // Poisoned stream: there is no resync inside TCP, so this
        // connection is done — but only this connection.
        serve_counter("dockmine_serve_malformed_frames_total").add();
        drop = true;
        break;
      }
      if (!polled.value()) break;
      if (frame.kind != wire::FrameKind::kJson) {
        serve_counter("dockmine_serve_malformed_frames_total").add();
        drop = true;
        break;
      }
      // A well-framed but invalid request gets an error response and the
      // session lives on: framing integrity and request validity fail at
      // different blast radii.
      Response response;
      const bool attribute =
          options_.telemetry.enabled && obs::enabled();
      const double parse_start = attribute ? mono_ms() : 0.0;
      double parse_ms = -1.0;
      auto parsed = json::parse(frame.payload);
      if (!parsed.ok()) {
        serve_counter("dockmine_serve_bad_requests_total").add();
        response.error = "unparseable request: " + parsed.error().to_string();
      } else {
        auto request = request_from_json(parsed.value());
        if (attribute) parse_ms = mono_ms() - parse_start;
        if (!request.ok()) {
          serve_counter("dockmine_serve_bad_requests_total").add();
          if (parsed.value().is_object() && parsed.value()["id"].is_int() &&
              parsed.value()["id"].as_int() >= 0) {
            response.id = parsed.value()["id"].as_uint();
          }
          response.error = request.error().to_string();
        } else {
          response = handle_request(request.value());
        }
      }
      if (parse_ms >= 0.0) response.parse_ms = parse_ms;
      if (!session->socket
               .write_all(wire::encode_frame(wire::FrameKind::kJson,
                                             response_to_json(response).dump()))
               .ok()) {
        drop = true;
      }
    }
    if (frames.pending() != 0) {
      if (partial_since < 0.0) partial_since = mono_ms();
    } else {
      partial_since = -1.0;
    }
  }
  // Shut down now, not at reap time: a dropped client must observe EOF
  // promptly, and reaping only happens on the next accept. shutdown (not
  // close) because stop() may call shutdown_both concurrently — both only
  // read the descriptor; the close happens after the join.
  session->socket.shutdown_both();
  active.sub(1);
  session->done.store(true, std::memory_order_release);
}

Response ServeDaemon::handle_request(const Request& request) {
  const std::string label =
      request.kind == RequestKind::kQuery         ? request.q
      : request.kind == RequestKind::kIngest      ? std::string("ingest")
      : request.kind == RequestKind::kIngestEpoch ? std::string("ingest-epoch")
                                                  : std::string("shutdown");
  const double start = mono_ms();
  Response response;
  response.id = request.id;
  switch (request.kind) {
    case RequestKind::kQuery:
      response = handle_query(request);
      break;
    case RequestKind::kIngest: {
      auto body = do_ingest(request);
      response.epoch = snapshot()->epoch;
      if (body.ok()) {
        response.ok = true;
        response.body = std::move(body).value();
      } else {
        response.error = body.error().to_string();
      }
      break;
    }
    case RequestKind::kIngestEpoch: {
      auto body = do_ingest_epoch(request);
      response.epoch = snapshot()->epoch;
      if (body.ok()) {
        response.ok = true;
        response.body = std::move(body).value();
      } else {
        response.error = body.error().to_string();
      }
      break;
    }
    case RequestKind::kShutdown: {
      response.ok = true;
      response.epoch = snapshot()->epoch;
      auto body = json::Value::object();
      body.set("stopping", true);
      response.body = std::move(body);
      shutdown_requested_.store(true, std::memory_order_release);
      break;
    }
  }
  // `label` is a member of a closed, parser-validated set — safe inside a
  // metric name.
  const double elapsed = mono_ms() - start;
  serve_counter("dockmine_serve_requests_total{q=\"" + label + "\"}").add();
  obs::Registry::global()
      .histogram("dockmine_serve_request_ms{q=\"" + label + "\"}")
      .observe(elapsed);
  if (options_.telemetry.enabled && obs::enabled()) {
    response.handle_ms = elapsed;
    note_slow_query(request, response, elapsed);
  }
  return response;
}

void ServeDaemon::note_slow_query(const Request& request,
                                  const Response& response,
                                  double handle_ms) {
  if (handle_ms < options_.telemetry.slowlog_threshold_ms) return;
  SlowQuery entry;
  entry.ts_ms = obs::now_ms();
  entry.q = request.kind == RequestKind::kQuery ? request.q
            : request.kind == RequestKind::kIngest
                ? std::string("ingest")
            : request.kind == RequestKind::kIngestEpoch
                ? std::string("ingest-epoch")
                : std::string("shutdown");
  entry.id = request.id;
  entry.ms = handle_ms;
  entry.ok = response.ok;
  std::lock_guard<std::mutex> lock(slowlog_mutex_);
  slowlog_.push_back(std::move(entry));
  while (slowlog_.size() > options_.telemetry.slowlog_capacity) {
    slowlog_.pop_front();
    ++slowlog_dropped_;
  }
}

Response ServeDaemon::handle_query(const Request& request) {
  Response response;
  response.id = request.id;
  const std::shared_ptr<const Snapshot> snap = snapshot();
  response.epoch = snap->epoch;

  const auto fail = [&response](const std::string& message) {
    response.ok = false;
    response.error = message;
    return response;
  };

  if (request.q == "report") {
    const json::Value* node = &snap->report;
    std::size_t begin = 0;
    while (begin <= request.path.size() && !request.path.empty()) {
      const std::size_t end = request.path.find('.', begin);
      const std::string segment =
          request.path.substr(begin, end == std::string::npos
                                         ? std::string::npos
                                         : end - begin);
      if (segment.empty() || !node->is_object() || !node->contains(segment)) {
        return fail("serve: no such report path: " + request.path);
      }
      node = &(*node)[segment];
      if (end == std::string::npos) break;
      begin = end + 1;
    }
    response.ok = true;
    response.body = *node;
    return response;
  }
  if (request.q == "image") {
    const auto it = snap->images.find(request.repository);
    if (it == snap->images.end()) {
      return fail("serve: unknown repository: " + request.repository);
    }
    response.ok = true;
    response.body = it->second;
    return response;
  }
  if (request.q == "layer") {
    const auto info = snap->sharing.lookup(request.key);
    if (!info) return fail("serve: unknown layer key");
    auto body = json::Value::object();
    body.set("key", request.key);
    body.set("references", info->references);
    body.set("cls", info->cls);
    body.set("shared", info->references > 1);
    response.ok = true;
    response.body = std::move(body);
    return response;
  }
  if (request.q == "content") {
    const dedup::ContentEntry* entry = snap->resident
                                           ? snap->resident->find(request.key)
                                           : snap->contents.find(request.key);
    if (entry == nullptr) return fail("serve: unknown content key");
    auto body = json::Value::object();
    body.set("key", request.key);
    body.set("count", entry->count);
    body.set("size", entry->size);
    body.set("multi_layer", entry->multi_layer);
    body.set("type", std::string(filetype::to_string(entry->type)));
    response.ok = true;
    response.body = std::move(body);
    return response;
  }
  if (request.q == "types") {
    response.ok = true;
    response.body = snap->types;
    return response;
  }
  if (request.q == "ecdf") {
    const auto location = ecdf_location(request.name);
    if (!location) return fail("serve: unknown ecdf: " + request.name);
    const json::Value& slice =
        snap->report["analysis"][location->first][location->second];
    if (request.quantile < 0.0) {
      response.ok = true;
      response.body = slice;
      return response;
    }
    const int index = grid_index(request.quantile);
    if (index < 0) {
      return fail("serve: quantile is not on the report grid");
    }
    if (slice["samples"].as_uint() == 0) {
      return fail("serve: ecdf has no samples: " + request.name);
    }
    auto body = json::Value::object();
    body.set("name", request.name);
    body.set("quantile", kQuantileGrid[index]);
    body.set("samples", slice["samples"].as_uint());
    body.set("value", slice["quantiles"].at(static_cast<std::size_t>(index)));
    response.ok = true;
    response.body = std::move(body);
    return response;
  }
  if (request.q == "status") {
    auto body = json::Value::object();
    body.set("epoch", snap->epoch);
    if (snap->temporal) {
      body.set("temporal", true);
    } else {
      auto specs = json::Value::array();
      for (const BatchSpec& spec : snap->batches) {
        specs.push_back(batch_spec_to_json(spec));
      }
      body.set("batches", std::move(specs));
    }
    body.set("images", static_cast<std::uint64_t>(snap->images.size()));
    body.set("distinct_layers", snap->sharing.distinct_layers());
    body.set("distinct_contents",
             snap->resident
                 ? static_cast<std::uint64_t>(snap->resident->distinct_contents())
                 : snap->contents.distinct_contents());
    if (options_.telemetry.enabled) {
      auto alerts = json::Value::object();
      alerts.set("firing", static_cast<std::uint64_t>(alerts_.firing_count()));
      alerts.set("rules", alerts_.to_json());
      body.set("alerts", std::move(alerts));
    }
    response.ok = true;
    response.body = std::move(body);
    return response;
  }
  if (request.q == "top") {
    // Map order is repository-name ascending, so a stable sort by value
    // descending leaves ties name-ordered — deterministic rows.
    std::vector<std::pair<std::string_view, std::uint64_t>> rows;
    rows.reserve(snap->repo_metrics.size());
    for (const auto& [repo, metrics] : snap->repo_metrics) {
      rows.emplace_back(repo, metric_value(metrics, request.metric));
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    if (rows.size() > request.n) rows.resize(request.n);
    auto body = json::Value::object();
    body.set("metric", request.metric);
    body.set("n", request.n);
    auto out = json::Value::array();
    for (const auto& [repo, value] : rows) {
      auto row = json::Value::object();
      row.set("repository", std::string(repo));
      row.set("value", value);
      out.push_back(std::move(row));
    }
    body.set("rows", std::move(out));
    response.ok = true;
    response.body = std::move(body);
    return response;
  }
  if (request.q == "repos") {
    RepoMetrics total;
    std::uint64_t count = 0;
    for (const auto& [repo, metrics] : snap->repo_metrics) {
      if (repo.compare(0, request.prefix.size(), request.prefix) != 0) {
        continue;
      }
      ++count;
      total.cis += metrics.cis;
      total.fis += metrics.fis;
      total.files += metrics.files;
      total.layers += metrics.layers;
    }
    auto body = json::Value::object();
    body.set("prefix", request.prefix);
    body.set("count", count);
    body.set("total_cis", total.cis);
    body.set("total_fis", total.fis);
    body.set("total_files", total.files);
    body.set("total_layers", total.layers);
    response.ok = true;
    response.body = std::move(body);
    return response;
  }
  if (request.q == "stats") {
    response.ok = true;
    response.body = obs::to_json(obs::collect());
    return response;
  }
  if (request.q == "metrics") {
    const obs::TimeSeriesStore& store = obs::TimeSeriesStore::global();
    const double window = request.window_ms > 0
                              ? static_cast<double>(request.window_ms)
                              : 60000.0;
    if (request.op == "quantile") {
      const double q = request.quantile;
      if (!(std::fabs(q - 0.50) < 1e-9 || std::fabs(q - 0.90) < 1e-9 ||
            std::fabs(q - 0.99) < 1e-9)) {
        return fail("serve: metrics quantile must be 0.5, 0.9, or 0.99");
      }
    }
    auto series_out = json::Value::array();
    for (const obs::TimeSeriesStore::SeriesInfo& info :
         store.series(request.name)) {
      auto row = json::Value::object();
      row.set("name", info.name);
      row.set("kind", std::string(obs::to_string(info.kind)));
      if (request.op == "rate") {
        const std::optional<double> rate =
            store.rate_per_s(info.name, window);
        if (!rate) continue;  // gauge / fewer than two samples in window
        row.set("rate_per_s", *rate);
      } else if (request.op == "quantile") {
        const std::optional<double> value =
            store.quantile(info.name, request.quantile, window);
        if (!value) continue;  // not a histogram / empty window
        row.set("quantile", request.quantile);
        row.set("value", *value);
      } else {
        std::vector<obs::TsSample> picked;
        const std::optional<obs::TsSample> newest = store.latest(info.name);
        if (newest) {
          picked = request.range_ms > 0
                       ? store.range(info.name,
                                     newest->ts_ms -
                                         static_cast<double>(request.range_ms),
                                     newest->ts_ms)
                       : std::vector<obs::TsSample>{*newest};
        }
        auto samples = json::Value::array();
        for (const obs::TsSample& sample : picked) {
          auto point = json::Value::object();
          point.set("ts_ms", sample.ts_ms);
          point.set("value", sample.value);
          if (info.kind != obs::SeriesKind::kGauge) {
            point.set("delta", sample.delta);
          }
          if (info.kind == obs::SeriesKind::kHistogram) {
            point.set("sum", sample.sum);
            point.set("p50", sample.p50);
            point.set("p90", sample.p90);
            point.set("p99", sample.p99);
          }
          samples.push_back(std::move(point));
        }
        row.set("samples", std::move(samples));
      }
      series_out.push_back(std::move(row));
    }
    auto body = json::Value::object();
    body.set("series", std::move(series_out));
    body.set("samples_taken", store.samples_taken());
    response.ok = true;
    response.body = std::move(body);
    return response;
  }
  if (request.q == "trace-tail") {
    const obs::TraceJournal& journal = obs::TraceJournal::global();
    const std::uint64_t n = request.n > 0 ? request.n : 64;
    const std::vector<obs::TraceEvent> events = journal.snapshot();
    const std::size_t begin =
        events.size() > n ? events.size() - static_cast<std::size_t>(n) : 0;
    auto out = json::Value::array();
    for (std::size_t i = begin; i < events.size(); ++i) {
      const obs::TraceEvent& event = events[i];
      auto row = json::Value::object();
      row.set("name", event.name);
      row.set("kind", std::string(obs::to_string(event.kind)));
      row.set("trace_id", event.trace_id);
      row.set("span_id", event.span_id);
      row.set("parent_id", event.parent_id);
      row.set("node", std::uint64_t{event.node});
      row.set("lane", std::uint64_t{event.lane});
      row.set("start_ms", event.start_ms);
      row.set("end_ms", event.end_ms);
      row.set("cpu_ms", event.cpu_ms);
      out.push_back(std::move(row));
    }
    auto body = json::Value::object();
    body.set("events", std::move(out));
    body.set("recorded", journal.recorded());
    body.set("dropped", journal.dropped());
    response.ok = true;
    response.body = std::move(body);
    return response;
  }
  if (request.q == "slowlog") {
    auto out = json::Value::array();
    std::uint64_t dropped = 0;
    {
      std::lock_guard<std::mutex> lock(slowlog_mutex_);
      for (const SlowQuery& entry : slowlog_) {
        auto row = json::Value::object();
        row.set("ts_ms", entry.ts_ms);
        row.set("q", entry.q);
        row.set("id", entry.id);
        row.set("ms", entry.ms);
        row.set("ok", entry.ok);
        out.push_back(std::move(row));
      }
      dropped = slowlog_dropped_;
    }
    auto body = json::Value::object();
    body.set("entries", std::move(out));
    body.set("dropped", dropped);
    body.set("threshold_ms", options_.telemetry.slowlog_threshold_ms);
    response.ok = true;
    response.body = std::move(body);
    return response;
  }
  return fail("serve: unknown query: " + request.q);  // unreachable (parser)
}

util::Result<json::Value> ServeDaemon::do_ingest(const Request& request) {
  if (stopping_.load(std::memory_order_acquire)) {
    return util::unavailable("serve: shutting down");
  }
  if (options_.temporal_advance) {
    return util::invalid_argument(
        "serve: batch ingest unavailable in temporal mode (use ingest-epoch)");
  }
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  if (options_.on_ingest_begin) options_.on_ingest_begin();
  if (stopping_.load(std::memory_order_acquire)) {
    return util::unavailable("serve: shutting down");
  }

  const BatchSpec spec{request.repositories, request.seed};
  if (auto ran = run_batch(spec); !ran.ok()) {
    serve_counter("dockmine_serve_ingest_aborts_total").add();
    return ran.error();
  }
  const auto rollback = [this] {
    std::error_code ec;
    std::filesystem::remove_all(batch_dir(batches_.size() - 1), ec);
    batches_.pop_back();
    serve_counter("dockmine_serve_ingest_aborts_total").add();
  };
  auto built = build_snapshot();
  if (!built.ok()) {
    rollback();
    return built.error();
  }
  // Commit point: the durable batch list first (temp + rename), then the
  // in-memory publish. A crash between the two re-serves this epoch after
  // replay; a crash before the rename never serves it at all.
  if (auto persisted = persist_state(); !persisted.ok()) {
    rollback();
    return persisted.error();
  }
  std::shared_ptr<Snapshot> snapshot = std::move(built).value();
  {
    std::lock_guard<std::mutex> snap_lock(snapshot_mutex_);
    snapshot_ = snapshot;
  }
  serve_counter("dockmine_serve_ingest_commits_total").add();
  obs::Registry::global()
      .gauge("dockmine_serve_epoch")
      .set(static_cast<std::int64_t>(snapshot->epoch));

  auto body = json::Value::object();
  body.set("epoch", snapshot->epoch);
  body.set("batches", static_cast<std::uint64_t>(snapshot->batches.size()));
  body.set("images", static_cast<std::uint64_t>(snapshot->images.size()));
  return body;
}

util::Result<json::Value> ServeDaemon::do_ingest_epoch(const Request&) {
  if (stopping_.load(std::memory_order_acquire)) {
    return util::unavailable("serve: shutting down");
  }
  if (!options_.temporal_advance) {
    return util::invalid_argument("serve: ingest-epoch requires temporal mode");
  }
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  if (options_.on_ingest_begin) options_.on_ingest_begin();
  if (stopping_.load(std::memory_order_acquire)) {
    return util::unavailable("serve: shutting down");
  }

  const std::uint32_t epoch = temporal_applied_;
  auto built = apply_temporal_epoch(epoch);
  if (!built.ok()) {
    serve_counter("dockmine_serve_ingest_aborts_total").add();
    return built.error();
  }
  // Same commit order as batch ingest: durable epoch count first, then the
  // in-memory publish. A persist failure leaves the published snapshot one
  // epoch behind the temporal stack — the next restart replays only the
  // persisted prefix, which the hook's determinism reproduces exactly.
  if (auto persisted = persist_state(); !persisted.ok()) {
    serve_counter("dockmine_serve_ingest_aborts_total").add();
    return persisted.error();
  }
  std::shared_ptr<Snapshot> snapshot = std::move(built).value();
  {
    std::lock_guard<std::mutex> snap_lock(snapshot_mutex_);
    snapshot_ = snapshot;
  }
  serve_counter("dockmine_serve_ingest_commits_total").add();
  obs::Registry::global()
      .gauge("dockmine_serve_epoch")
      .set(static_cast<std::int64_t>(epoch));

  auto body = json::Value::object();
  body.set("epoch", snapshot->epoch);
  body.set("images", static_cast<std::uint64_t>(snapshot->images.size()));
  body.set("distinct_layers", snapshot->sharing.distinct_layers());
  return body;
}

// ---- client ------------------------------------------------------------

util::Result<Client> Client::connect(std::uint16_t port,
                                     std::uint32_t timeout_ms) {
  auto connected = http::Socket::connect_loopback(port);
  if (!connected.ok()) return connected.error();
  Client client;
  client.socket_ = std::move(connected).value();
  if (auto set = client.socket_.set_timeout_ms(timeout_ms); !set.ok()) {
    return set.error();
  }
  return client;
}

util::Result<Response> Client::call(const Request& request) {
  if (auto sent = socket_.write_all(wire::encode_frame(
          wire::FrameKind::kJson, request_to_json(request).dump()));
      !sent.ok()) {
    return sent.error();
  }
  wire::Frame frame;
  for (;;) {
    auto polled = frames_.poll(frame);
    if (!polled.ok()) return polled.error();
    if (polled.value()) {
      if (frame.kind != wire::FrameKind::kJson) {
        return util::corrupt("serve client: unexpected binary frame");
      }
      auto parsed = json::parse(frame.payload);
      if (!parsed.ok()) return parsed.error();
      return response_from_json(parsed.value());
    }
    auto chunk = socket_.read_some();
    if (!chunk.ok()) return chunk.error();
    if (chunk.value().empty()) {
      return util::reset("serve client: connection closed");
    }
    frames_.feed(chunk.value());
  }
}

}  // namespace dockmine::core::serve
