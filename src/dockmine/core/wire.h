// Coordinator <-> worker wire protocol (DESIGN.md §12).
//
// Everything crosses the socket as length-prefixed, CRC-protected frames:
//
//   header, 16 bytes (integers little-endian)
//     [ 0.. 4)  magic "DMWF"
//     [ 4]      kind: 1 = JSON control message, 2 = binary file chunk
//     [ 5]      flags (must be zero)
//     [ 6.. 8)  reserved (must be zero)
//     [ 8..12)  payload length, u32 (<= kMaxFramePayload)
//     [12..16)  CRC-32 (IEEE) over the payload, u32
//   payload
//
// Validation is strict and total, mirroring the shard run format: a frame
// is delivered only when magic, kind, zero bits, length bound, and CRC all
// check out. Anything else — truncation mid-header, truncation mid-payload
// followed by a stray magic, a single flipped bit — poisons the stream with
// kCorrupt, and the peer's only recourse is to drop the connection. A
// malformed frame can therefore cost a lease (it is reassigned) but can
// never smuggle bytes into a merged report.
//
// JSON control messages carry a "type" discriminator:
//   hello        worker -> coordinator   {worker, pid}
//   lease        coordinator -> worker   {lease, node_index, node_count,
//                                         attempt, spec:{...JobSpec...}}
//   heartbeat    worker -> coordinator   {worker, lease, obs:{...}} — the
//                                        obs member is one heartbeat_line()
//                                        snapshot (counters, journal depth)
//   result       worker -> coordinator   lease outcome header: profiles,
//                                        manifests, accounting, obs export,
//                                        and the names/sizes of the shard
//                                        set files that follow as binary
//                                        frames (in header order)
//   lease-failed worker -> coordinator   {worker, lease, error}
//   shutdown     coordinator -> worker   end of run
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dockmine/analyzer/profile.h"
#include "dockmine/core/lease.h"
#include "dockmine/json/json.h"
#include "dockmine/registry/model.h"
#include "dockmine/util/error.h"

namespace dockmine::core::wire {

inline constexpr std::string_view kFrameMagic = "DMWF";
inline constexpr std::size_t kFrameHeaderBytes = 16;
inline constexpr std::size_t kMaxFramePayload = 256ull << 20;

enum class FrameKind : std::uint8_t { kJson = 1, kBinary = 2 };

struct Frame {
  FrameKind kind = FrameKind::kJson;
  std::string payload;
};

/// Serialize one frame (header + payload).
std::string encode_frame(FrameKind kind, std::string_view payload);

/// Incremental stream reassembler. Feed raw socket bytes in; poll complete
/// frames out. The first malformed byte sequence poisons the buffer: every
/// subsequent poll() returns kCorrupt and the connection must be dropped —
/// there is no resynchronization inside a TCP stream.
class FrameBuffer {
 public:
  void feed(std::string_view bytes) { buffer_.append(bytes); }

  /// True + `out` filled when a complete valid frame was consumed; false
  /// when more bytes are needed; kCorrupt once the stream is poisoned.
  util::Result<bool> poll(Frame& out);

  bool corrupt() const noexcept { return corrupt_; }
  std::size_t buffered() const noexcept { return buffer_.size(); }
  /// Bytes fed but not yet consumed by a completed frame — nonzero exactly
  /// when a partial frame is outstanding (buffered() also counts the
  /// consumed-but-not-yet-compacted prefix, so it cannot tell idle from
  /// mid-frame; the serve daemon's slowloris cutoff needs the distinction).
  std::size_t pending() const noexcept { return buffer_.size() - cursor_; }

 private:
  std::string buffer_;
  std::size_t cursor_ = 0;  ///< consumed prefix, compacted lazily
  bool corrupt_ = false;
};

// ---- message payload codecs -------------------------------------------
// All *_from_json parsers are total: they validate types and ranges and
// fail with kCorrupt instead of crashing, because their input crossed a
// process boundary.

json::Value layer_profile_to_json(const analyzer::LayerProfile& profile);
util::Result<analyzer::LayerProfile> layer_profile_from_json(
    const json::Value& doc);

json::Value image_profile_to_json(const analyzer::ImageProfile& profile);
util::Result<analyzer::ImageProfile> image_profile_from_json(
    const json::Value& doc);

json::Value job_spec_to_json(const JobSpec& spec);
util::Result<JobSpec> job_spec_from_json(const json::Value& doc);

/// One shipped shard-set file: name relative to the lease export directory
/// plus its size (the binary frame that carries the content is CRC-checked
/// by the framing layer).
struct FileEntry {
  std::string name;
  std::uint64_t size = 0;
};

/// Everything a completed lease returns besides the raw shard-set bytes.
struct LeaseResult {
  std::uint64_t worker = 0;
  std::uint32_t lease = 0;
  std::uint32_t attempt = 0;
  std::vector<analyzer::ImageProfile> images;
  std::vector<registry::Manifest> manifests;
  std::vector<analyzer::LayerProfile> layer_profiles;
  std::uint64_t manifests_pushed = 0;
  ShardedDedupSummary shard_summary;
  json::Value obs_export;  ///< obs::to_json(collect()) for this lease's run
  std::vector<FileEntry> files;  ///< binary frames follow in this order
};

json::Value lease_result_to_json(const LeaseResult& result);
util::Result<LeaseResult> lease_result_from_json(const json::Value& doc);

}  // namespace dockmine::core::wire
