// Distributed worker process (DESIGN.md §12): connects to a coordinator on
// loopback, announces itself, and executes work leases until told to shut
// down. Each lease runs the full pipeline as one deterministic partition
// (node `node_index` of `node_count`), heartbeats liveness frames while it
// runs (the PR 5 emitter with a socket sink), and ships the delivered work
// back — profiles and manifests as JSON, the exported shard set as
// CRC-framed binary file chunks.
//
// The chaos hooks make worker-death testing deterministic: a worker can be
// told to SIGKILL itself mid-lease (real kernel-delivered death, exactly
// what `kill -9` produces) or to hang (keep the connection open but stop
// heartbeating — the failure mode a wedged disk or a livelocked process
// presents to the coordinator).
#pragma once

#include <cstdint>
#include <string>

#include "dockmine/util/error.h"

namespace dockmine::core {

struct WorkerChaos {
  /// Send one heartbeat after receiving the first lease, then raise
  /// SIGKILL. The process dies mid-lease, connection reset and all.
  bool die_on_first_lease = false;
  /// On the first lease: stop heartbeating and sleep `hang_ms` without
  /// producing a result, then exit. Simulates a wedged-but-alive worker.
  bool hang_on_first_lease = false;
  std::uint64_t hang_ms = 30'000;
};

struct WorkerOptions {
  std::uint16_t port = 0;        ///< coordinator's loopback port
  std::uint64_t worker_id = 0;   ///< 0: use the pid
  /// Where lease shard sets are staged before shipping; a per-lease
  /// subdirectory is created (and removed after a successful ship).
  std::string scratch_dir;
  std::uint64_t heartbeat_interval_ms = 100;
  /// Per-socket-op deadline. Reads while idle loop on kTimeout, so this
  /// bounds shutdown latency, not lease duration.
  std::uint32_t io_timeout_ms = 500;
  /// Give up when the coordinator has been silent this long while the
  /// worker is idle (coordinator crash safety net).
  std::uint64_t idle_timeout_ms = 60'000;
  WorkerChaos chaos;
};

struct WorkerStats {
  std::uint64_t leases_completed = 0;
  std::uint64_t leases_failed = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t files_shipped = 0;
  std::uint64_t bytes_shipped = 0;
  bool shutdown_received = false;  ///< clean end-of-run from coordinator
};

/// Run the worker loop to completion (shutdown frame, coordinator
/// disconnect, or idle timeout). Errors are connection-fatal conditions;
/// per-lease pipeline failures are reported to the coordinator and counted
/// in stats instead.
util::Result<WorkerStats> run_worker(const WorkerOptions& options);

}  // namespace dockmine::core
