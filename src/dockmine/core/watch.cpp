#include "dockmine/core/watch.h"

#include <chrono>
#include <cstdio>
#include <string_view>
#include <thread>

#include "dockmine/obs/obs.h"
#include "dockmine/stats/histogram.h"

namespace dockmine::core::watch {

namespace {

/// "dockmine_serve_requests_total{q=\"report\"}" -> "report"; "" when the
/// name is not a labeled serve-request counter.
std::string request_label(std::string_view name) {
  constexpr std::string_view kPrefix =
      "dockmine_serve_requests_total{q=\"";
  if (name.substr(0, kPrefix.size()) != kPrefix) return {};
  name.remove_prefix(kPrefix.size());
  const std::size_t quote = name.find('"');
  if (quote == std::string_view::npos) return {};
  return std::string(name.substr(0, quote));
}

bool is_request_histogram(std::string_view name) {
  constexpr std::string_view kPrefix = "dockmine_serve_request_ms";
  return name.substr(0, kPrefix.size()) == kPrefix;
}

/// Sum of every dockmine_serve_requests_total{...} counter in a stats
/// body, plus the per-label breakdown.
std::uint64_t request_totals(const json::Value& stats,
                             std::map<std::string, std::uint64_t>* by_label) {
  std::uint64_t total = 0;
  if (!stats.is_object() || !stats["counters"].is_object()) return 0;
  for (const auto& [name, value] : stats["counters"].members()) {
    const std::string label = request_label(name);
    if (label.empty() || !value.is_number()) continue;
    total += value.as_uint();
    if (by_label != nullptr) (*by_label)[label] = value.as_uint();
  }
  return total;
}

std::int64_t gauge_value(const json::Value& stats, std::string_view name) {
  if (!stats.is_object() || !stats["gauges"].is_object()) return 0;
  const json::Value& gauge = stats["gauges"][std::string(name)];
  return gauge.is_number() ? gauge.as_int() : 0;
}

}  // namespace

WatchFrame derive(const Scrape* previous, const Scrape& current) {
  WatchFrame frame;
  frame.ts_ms = current.ts_ms;
  if (current.status.is_object() && current.status["epoch"].is_int()) {
    frame.epoch = current.status["epoch"].as_uint();
  }
  frame.uptime_s = gauge_value(current.stats, "dockmine_uptime_seconds");
  frame.active_sessions =
      gauge_value(current.stats, "dockmine_serve_active_sessions");

  std::map<std::string, std::uint64_t> by_label;
  frame.requests_total = request_totals(current.stats, &by_label);

  // Windowed rates against the previous scrape; the first frame falls back
  // to the lifetime average so `--once` still reports real traffic.
  std::map<std::string, std::uint64_t> prev_by_label;
  double elapsed_s = 0.0;
  std::uint64_t prev_total = 0;
  if (previous != nullptr) {
    prev_total = request_totals(previous->stats, &prev_by_label);
    elapsed_s = (current.ts_ms - previous->ts_ms) / 1000.0;
  }
  const auto rate = [&](std::uint64_t now, std::uint64_t before) {
    if (previous != nullptr) {
      if (elapsed_s <= 0.0) return 0.0;
      return now >= before ? static_cast<double>(now - before) / elapsed_s
                           : 0.0;
    }
    const double lifetime_s =
        frame.uptime_s > 0 ? static_cast<double>(frame.uptime_s) : 1.0;
    return static_cast<double>(now) / lifetime_s;
  };
  frame.req_per_s = rate(frame.requests_total, prev_total);
  for (const auto& [label, count] : by_label) {
    const auto it = prev_by_label.find(label);
    frame.rates[label] =
        rate(count, it == prev_by_label.end() ? 0 : it->second);
  }

  // Overall latency: merge every request histogram's log2 buckets (buckets
  // reconstruct exactly from their lower bounds, as in report_from_json).
  stats::Log2Histogram merged;
  std::uint64_t observations = 0;
  if (current.stats.is_object() && current.stats["histograms"].is_object()) {
    for (const auto& [name, hist] : current.stats["histograms"].members()) {
      if (!is_request_histogram(name) || !hist.is_object() ||
          !hist["buckets"].is_array()) {
        continue;
      }
      for (const json::Value& bucket : hist["buckets"].items()) {
        if (!bucket.is_object() || !bucket["lo"].is_number() ||
            !bucket["count"].is_number()) {
          continue;
        }
        const double lo = bucket["lo"].as_double();
        const std::uint64_t count = bucket["count"].as_uint();
        merged.add(lo < 1.0 ? 0.0 : lo, count);
        observations += count;
      }
    }
  }
  if (observations > 0) {
    frame.p50_ms = merged.quantile(0.50);
    frame.p99_ms = merged.quantile(0.99);
  }

  frame.alerts_firing = -1;
  if (current.status.is_object() && current.status["alerts"].is_object() &&
      current.status["alerts"]["firing"].is_int()) {
    frame.alerts_firing = current.status["alerts"]["firing"].as_int();
  }
  if (current.trace.is_object() && current.trace["recorded"].is_int()) {
    frame.journal_recorded = current.trace["recorded"].as_uint();
    frame.journal_dropped = current.trace["dropped"].is_int()
                                ? current.trace["dropped"].as_uint()
                                : 0;
  }
  return frame;
}

std::string jsonl_line(const WatchFrame& frame) {
  json::Value rates = json::Value::object();
  for (const auto& [label, value] : frame.rates) rates.set(label, value);
  json::Value journal = json::Value::object();
  journal.set("recorded", frame.journal_recorded);
  journal.set("dropped", frame.journal_dropped);

  json::Value root = json::Value::object();
  root.set("ts_ms", frame.ts_ms);
  root.set("epoch", frame.epoch);
  root.set("uptime_s", frame.uptime_s);
  root.set("requests_total", frame.requests_total);
  root.set("req_per_s", frame.req_per_s);
  root.set("rates", std::move(rates));
  root.set("p50_ms", frame.p50_ms);
  root.set("p99_ms", frame.p99_ms);
  root.set("active_sessions", frame.active_sessions);
  root.set("alerts_firing", frame.alerts_firing);
  root.set("journal", std::move(journal));
  return root.dump();
}

std::string render(const WatchFrame& frame) {
  char line[160];
  std::string out;
  std::snprintf(line, sizeof line,
                "dockmine watch — epoch %llu, up %llds, %lld session(s)\n",
                static_cast<unsigned long long>(frame.epoch),
                static_cast<long long>(frame.uptime_s),
                static_cast<long long>(frame.active_sessions));
  out += line;
  std::snprintf(line, sizeof line,
                "  requests   %llu total, %.1f/s    latency p50 %.2f ms  "
                "p99 %.2f ms\n",
                static_cast<unsigned long long>(frame.requests_total),
                frame.req_per_s, frame.p50_ms, frame.p99_ms);
  out += line;
  for (const auto& [label, value] : frame.rates) {
    std::snprintf(line, sizeof line, "    %-14s %.1f/s\n", label.c_str(),
                  value);
    out += line;
  }
  if (frame.alerts_firing < 0) {
    out += "  alerts     (telemetry off)\n";
  } else {
    std::snprintf(line, sizeof line, "  alerts     %lld firing\n",
                  static_cast<long long>(frame.alerts_firing));
    out += line;
  }
  std::snprintf(line, sizeof line,
                "  journal    %llu recorded, %llu dropped\n",
                static_cast<unsigned long long>(frame.journal_recorded),
                static_cast<unsigned long long>(frame.journal_dropped));
  out += line;
  return out;
}

util::Result<Scrape> scrape(serve::Client& client, std::uint64_t& next_id) {
  const auto ask = [&client, &next_id](
                       const char* q,
                       std::uint64_t n) -> util::Result<serve::Response> {
    serve::Request request;
    request.kind = serve::RequestKind::kQuery;
    request.id = next_id++;
    request.q = q;
    request.n = n;
    return client.call(request);
  };

  Scrape result;
  auto stats = ask("stats", 0);
  if (!stats.ok()) return stats.error();
  if (!stats.value().ok) {
    return util::internal("watch: stats query failed: " +
                          stats.value().error);
  }
  result.stats = std::move(stats).value().body;

  auto status = ask("status", 0);
  if (!status.ok()) return status.error();
  if (!status.value().ok) {
    return util::internal("watch: status query failed: " +
                          status.value().error);
  }
  result.status = std::move(status).value().body;

  // trace-tail is best-effort: an older daemon without the verb still
  // watches fine, just without journal columns.
  auto trace = ask("trace-tail", 1);
  if (trace.ok() && trace.value().ok) {
    result.trace = std::move(trace).value().body;
  }

  result.ts_ms = obs::now_ms();
  return result;
}

util::Status run(const WatchOptions& options) {
  auto connected = serve::Client::connect(options.port);
  if (!connected.ok()) return connected.error();
  serve::Client client = std::move(connected).value();

  std::uint64_t next_id = 1;
  std::optional<Scrape> previous;
  while (true) {
    auto scraped = scrape(client, next_id);
    if (!scraped.ok()) {
      // A daemon that shut down mid-stream ends the watch cleanly after at
      // least one frame; a first-scrape failure is a real error.
      if (previous.has_value() && !options.once) break;
      return scraped.error();
    }
    const WatchFrame frame =
        derive(previous.has_value() ? &*previous : nullptr, scraped.value());
    if (options.jsonl) {
      std::fputs(jsonl_line(frame).c_str(), stdout);
      std::fputc('\n', stdout);
    } else {
      // Clear + home, then the block: a cheap refreshing dashboard.
      std::fputs("\x1b[H\x1b[2J", stdout);
      std::fputs(render(frame).c_str(), stdout);
    }
    std::fflush(stdout);
    if (options.once) break;
    previous = std::move(scraped).value();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options.interval_ms));
  }
  return util::Status::success();
}

}  // namespace dockmine::core::watch
