#include "dockmine/core/coordinator.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "dockmine/compress/crc32.h"
#include "dockmine/core/multi_node.h"
#include "dockmine/core/wire.h"
#include "dockmine/http/socket.h"
#include "dockmine/registry/manifest.h"
#include "dockmine/obs/journal.h"
#include "dockmine/obs/obs.h"
#include "dockmine/util/rng.h"

namespace dockmine::core {
namespace {

double mono_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One connected worker process. The socket, frame buffer, and in-flight
/// result reception belong to the connection's reader thread; everything
/// else is guarded by Impl::mutex. Socket writes (lease grants, shutdown)
/// are serialized by `write_mutex`, acquired after the state mutex.
struct WorkerConn {
  std::uint64_t id = 0;    ///< coordinator connection id (lease owner key)
  std::uint64_t pid = 0;   ///< worker-announced, for diagnostics
  http::Socket socket;
  std::mutex write_mutex;
  std::thread reader;
  bool alive = true;
  bool saw_hello = false;
  double last_beat_ms = 0.0;  ///< refreshed on dispatch and each heartbeat
  /// Lease grants sent whose outcome (result, lease-failed, death) has not
  /// arrived yet. Nonzero after all_done() means a duplicate result is
  /// still in flight; run() drains it so every duplicate completion gets
  /// its idempotency check instead of being raced by shutdown.
  std::uint32_t outstanding = 0;
  registry::CircuitBreaker breaker;

  // Per-worker telemetry derived from the obs snapshot riding on each
  // heartbeat: the summed counter total and the beat's own timestamp, so
  // the coordinator can publish a per-second event rate per worker. A
  // worker resets its registry per lease, so totals may decrease; that
  // re-bases the window instead of producing a negative rate.
  bool prev_beat_valid = false;
  double prev_beat_obs_ms = 0.0;
  std::uint64_t prev_counter_total = 0;

  // Reader-thread-only: the result header whose binary file frames are
  // currently streaming in.
  wire::FrameBuffer frames;
  std::optional<wire::LeaseResult> pending_result;
  std::size_t pending_file = 0;
  std::string pending_dir;
};

/// Comparison digest for duplicate completions, over the analysis-relevant
/// content only: delivered images, manifests, and layer profiles as
/// *sorted* serializations (delivery order is a thread-scheduling fact),
/// plus manifests_pushed. Owner identity, obs exports (wall times), and the
/// raw shard-set bytes (spill boundaries shift with arrival order; only the
/// commutative merge of the entries is deterministic) are excluded — the
/// merge-level equality of the shard data is proven separately by the
/// chaos tests' byte-identical-report oracle. Two executions of the same
/// lease must collide here; `duplicate_mismatches` counts violations.
std::string result_digest(const wire::LeaseResult& result) {
  std::vector<std::string> parts;
  parts.reserve(result.images.size() + result.manifests.size() +
                result.layer_profiles.size());
  for (const auto& image : result.images)
    parts.push_back("i:" + wire::image_profile_to_json(image).dump());
  for (const auto& manifest : result.manifests)
    parts.push_back("m:" + registry::manifest_to_json(manifest));
  for (const auto& profile : result.layer_profiles)
    parts.push_back("l:" + wire::layer_profile_to_json(profile).dump());
  std::sort(parts.begin(), parts.end());
  std::string text = "lease:" + std::to_string(result.lease) +
                     "|pushed:" + std::to_string(result.manifests_pushed);
  for (const std::string& part : parts) {
    text.push_back('\n');
    text += part;
  }
  return std::to_string(compress::Crc32::of(text));
}

}  // namespace

struct Coordinator::Impl {
  explicit Impl(CoordinatorOptions opts)
      : options(std::move(opts)),
        table(options.leases == 0 ? 1 : options.leases),
        rng(options.seed),
        lease_backoff_prev(table.count(), 0.0) {}

  CoordinatorOptions options;
  http::Listener listener;
  std::thread acceptor;

  std::mutex mutex;  // guards everything below
  std::vector<std::unique_ptr<WorkerConn>> workers;
  LeaseTable table;
  DistStats stats;
  util::Rng rng;
  std::uint64_t budget_spent = 0;
  std::vector<double> lease_backoff_prev;
  std::map<std::uint32_t, NodeContribution> contributions;
  std::map<std::uint32_t, std::string> digests;
  std::map<std::uint32_t, std::string> obs_files;
  bool stopping = false;
  std::optional<util::Error> failure;

  // -- helpers; callers hold `mutex` unless noted ------------------------

  bool worker_busy(std::uint64_t worker_id) const {
    for (std::uint32_t i = 0; i < table.count(); ++i) {
      const LeaseStatus& lease = table.status(i);
      if (lease.state != LeaseState::kRunning) continue;
      for (std::uint64_t owner : lease.owners)
        if (owner == worker_id) return true;
    }
    return false;
  }

  WorkerConn* find_worker(std::uint64_t worker_id) {
    for (auto& conn : workers)
      if (conn->id == worker_id) return conn.get();
    return nullptr;
  }

  void fail_run(util::Error error) {
    if (!failure) failure = std::move(error);
    stopping = true;
  }

  double next_backoff(std::uint32_t lease, double now_ms) {
    double& prev = lease_backoff_prev[lease];
    prev = registry::decorrelated_jitter(options.retry.base_delay_ms,
                                         options.retry.max_delay_ms, prev,
                                         rng);
    return now_ms + prev;
  }

  /// A lease went back to pending: count it, spend retry budget, and check
  /// the per-lease attempt cap.
  void on_lease_reassigned(std::uint32_t lease) {
    ++stats.reassignments;
    if (++budget_spent > options.retry.retry_budget) {
      fail_run(util::exhausted("coordinate: global retry budget spent"));
      return;
    }
    if (table.status(lease).attempts >=
        static_cast<std::uint32_t>(options.retry.max_attempts)) {
      fail_run(util::exhausted("coordinate: lease " + std::to_string(lease) +
                               " exhausted its attempt cap"));
    }
  }

  /// Declare a worker gone (socket closed, poisoned stream, or missed
  /// heartbeat deadline): release its leases back to pending and unblock
  /// its reader via shutdown (never a cross-thread close).
  void drop_worker(WorkerConn& conn, double now_ms) {
    if (!conn.alive) return;
    conn.alive = false;
    conn.outstanding = 0;
    for (std::uint32_t lease :
         table.release_owner(conn.id, next_backoff_for_release(now_ms))) {
      on_lease_reassigned(lease);
    }
    conn.socket.shutdown_both();
  }

  double next_backoff_for_release(double now_ms) {
    // One jitter draw shared by all leases released together; they were
    // victims of the same event.
    return now_ms + registry::decorrelated_jitter(
                        options.retry.base_delay_ms,
                        options.retry.max_delay_ms, 0.0, rng);
  }

  /// Send one lease grant (the state mutex is held; the write mutex nests
  /// inside it). A failed write means the worker is already gone.
  void send_lease(WorkerConn& conn, std::uint32_t lease, double now_ms) {
    const LeaseStatus& status = table.status(lease);
    json::Value msg = json::Value::object();
    msg.set("type", "lease");
    msg.set("lease", std::uint64_t{lease});
    msg.set("node_index", std::uint64_t{lease});
    msg.set("node_count", std::uint64_t{table.count()});
    msg.set("attempt", std::uint64_t{status.attempts});
    msg.set("spec", wire::job_spec_to_json(options.spec));
    const std::string frame =
        wire::encode_frame(wire::FrameKind::kJson, msg.dump());
    util::Status wrote = util::Status::success();
    {
      std::lock_guard<std::mutex> write_lock(conn.write_mutex);
      wrote = conn.socket.write_all(frame);
    }
    conn.last_beat_ms = now_ms;  // liveness clock starts at dispatch
    if (!wrote.ok()) {
      ++stats.worker_disconnects;
      drop_worker(conn, now_ms);
      return;
    }
    ++conn.outstanding;
  }

  std::uint32_t outstanding_total() const {
    std::uint32_t total = 0;
    for (const auto& conn : workers) total += conn->outstanding;
    return total;
  }

  // -- reader-thread entry points (they take the state mutex) ------------

  void on_disconnect(WorkerConn& conn) {
    std::lock_guard<std::mutex> lock(mutex);
    if (stopping || !conn.alive) return;
    ++stats.worker_disconnects;
    drop_worker(conn, mono_ms());
  }

  void on_malformed(WorkerConn& conn, const std::string& what) {
    std::lock_guard<std::mutex> lock(mutex);
    if (!conn.alive) return;
    ++stats.malformed_frames;
    obs::Registry::global().counter("dockmine_coord_malformed_frames_total").add();
    (void)what;
    // A poisoned stream cannot be resynchronized: the connection dies and
    // the worker's leases go back to pending.
    drop_worker(conn, mono_ms());
  }

  void on_hello(WorkerConn& conn, const json::Value& msg) {
    std::lock_guard<std::mutex> lock(mutex);
    conn.saw_hello = true;
    conn.pid = msg["pid"].as_uint();
  }

  void on_heartbeat(WorkerConn& conn, const json::Value& msg) {
    std::lock_guard<std::mutex> lock(mutex);
    ++stats.heartbeats_received;
    obs::Registry::global().counter("dockmine_coord_heartbeats_total").add();
    conn.last_beat_ms = mono_ms();

    // Aggregate the worker's sampled series: sum its counter snapshot and
    // publish the per-second delta between consecutive beats as a gauge,
    // one series per worker. `dockmine watch` / `query metrics` against a
    // telemetry-enabled coordinator then shows live per-worker throughput.
    const json::Value& snapshot = msg["obs"];
    if (!snapshot.is_object() || !snapshot["counters"].is_object() ||
        !snapshot["ts_ms"].is_number()) {
      return;
    }
    std::uint64_t total = 0;
    for (const auto& [name, value] : snapshot["counters"].members()) {
      if (value.is_number()) total += value.as_uint();
    }
    const double beat_ms = snapshot["ts_ms"].as_double();
    if (conn.prev_beat_valid && beat_ms > conn.prev_beat_obs_ms &&
        total >= conn.prev_counter_total) {
      const double rate = (total - conn.prev_counter_total) * 1000.0 /
                          (beat_ms - conn.prev_beat_obs_ms);
      obs::Registry::global()
          .gauge("dockmine_coord_worker_events_per_s{worker=\"" +
                 std::to_string(conn.id) + "\"}")
          .set(static_cast<std::int64_t>(rate));
    }
    conn.prev_beat_valid = true;
    conn.prev_beat_obs_ms = beat_ms;
    conn.prev_counter_total = total;
  }

  void on_lease_failed(WorkerConn& conn, const json::Value& msg) {
    std::lock_guard<std::mutex> lock(mutex);
    const auto lease = static_cast<std::uint32_t>(msg["lease"].as_uint());
    if (lease >= table.count()) return;
    ++stats.lease_failures;
    if (conn.outstanding > 0) --conn.outstanding;
    const double now = mono_ms();
    conn.breaker.on_failure(now);
    if (table.fail(lease, conn.id, next_backoff(lease, now))) {
      on_lease_reassigned(lease);
    }
  }

  /// All binary file frames for a result have arrived: complete the lease
  /// (first completion wins) or verify + discard the duplicate.
  void on_result_complete(WorkerConn& conn) {
    wire::LeaseResult result = std::move(*conn.pending_result);
    conn.pending_result.reset();
    const std::string digest = result_digest(result);

    std::lock_guard<std::mutex> lock(mutex);
    const double now = mono_ms();
    conn.breaker.on_success();
    conn.last_beat_ms = now;
    if (conn.outstanding > 0) --conn.outstanding;
    if (!table.complete(result.lease, now)) {
      ++stats.duplicate_completions;
      obs::Registry::global()
          .counter("dockmine_coord_duplicate_completions_total")
          .add();
      auto it = digests.find(result.lease);
      if (it == digests.end() || it->second != digest) {
        ++stats.duplicate_mismatches;  // idempotency violation — a bug
      }
      std::error_code ec;
      std::filesystem::remove_all(conn.pending_dir, ec);
      return;
    }
    digests[result.lease] = digest;

    NodeContribution contribution;
    contribution.images = std::move(result.images);
    contribution.manifests = std::move(result.manifests);
    contribution.layer_profiles = std::move(result.layer_profiles);
    contribution.manifests_pushed = result.manifests_pushed;
    contribution.shard_set_dir = conn.pending_dir;
    contribution.shard_summary = result.shard_summary;
    contributions[result.lease] = std::move(contribution);

    if (result.obs_export.is_object()) {
      const std::string path =
          (std::filesystem::path(options.work_dir) /
           ("obs-lease-" + std::to_string(result.lease) + ".json"))
              .string();
      std::ofstream file(path, std::ios::binary | std::ios::trunc);
      if (file.is_open() && (file << result.obs_export.dump())) {
        obs_files[result.lease] = path;
      }
    }
  }

  /// Reader-thread frame dispatch. Returns false once the connection must
  /// be abandoned (poisoned stream / protocol violation).
  bool handle_frame(WorkerConn& conn, wire::Frame& frame) {
    if (frame.kind == wire::FrameKind::kBinary) {
      if (!conn.pending_result ||
          conn.pending_file >= conn.pending_result->files.size()) {
        on_malformed(conn, "binary frame outside a result");
        return false;
      }
      const wire::FileEntry& entry =
          conn.pending_result->files[conn.pending_file];
      if (frame.payload.size() != entry.size) {
        on_malformed(conn, "file frame size mismatch");
        return false;
      }
      const std::string path =
          (std::filesystem::path(conn.pending_dir) / entry.name).string();
      std::ofstream file(path, std::ios::binary | std::ios::trunc);
      if (!file.is_open() || !(file << frame.payload)) {
        std::lock_guard<std::mutex> lock(mutex);
        fail_run(util::internal("coordinate: cannot write " + path));
        return false;
      }
      ++conn.pending_file;
      {
        std::lock_guard<std::mutex> lock(mutex);
        ++stats.files_received;
        stats.bytes_received += frame.payload.size();
      }
      if (conn.pending_file == conn.pending_result->files.size()) {
        on_result_complete(conn);
      }
      return true;
    }

    auto parsed = json::parse(frame.payload);
    if (!parsed.ok() || !parsed.value().is_object()) {
      on_malformed(conn, "unparseable control frame");
      return false;
    }
    const json::Value msg = std::move(parsed).value();
    const std::string& type = msg["type"].as_string();
    if (type == "hello") {
      on_hello(conn, msg);
      return true;
    }
    if (type == "heartbeat") {
      on_heartbeat(conn, msg);
      return true;
    }
    if (type == "lease-failed") {
      on_lease_failed(conn, msg);
      return true;
    }
    if (type == "result") {
      if (conn.pending_result) {
        on_malformed(conn, "result inside a result");
        return false;
      }
      auto result = wire::lease_result_from_json(msg);
      if (!result.ok() || result.value().lease >= table.count()) {
        on_malformed(conn, "bad result header");
        return false;
      }
      conn.pending_result = std::move(result).value();
      conn.pending_file = 0;
      conn.pending_dir =
          (std::filesystem::path(options.work_dir) /
           ("lease-" + std::to_string(conn.pending_result->lease) + "-a" +
            std::to_string(conn.pending_result->attempt)))
              .string();
      std::error_code ec;
      std::filesystem::create_directories(conn.pending_dir, ec);
      if (ec) {
        std::lock_guard<std::mutex> lock(mutex);
        fail_run(util::internal("coordinate: cannot create " +
                                conn.pending_dir));
        return false;
      }
      if (conn.pending_result->files.empty()) on_result_complete(conn);
      return true;
    }
    on_malformed(conn, "unknown message type: " + type);
    return false;
  }

  void reader_loop(WorkerConn& conn) {
    for (;;) {
      auto chunk = conn.socket.read_some();
      if (!chunk.ok()) {
        if (chunk.error().code() == util::ErrorCode::kTimeout) {
          std::lock_guard<std::mutex> lock(mutex);
          if (stopping || !conn.alive) return;
          continue;
        }
        on_disconnect(conn);
        return;
      }
      if (chunk.value().empty()) {
        on_disconnect(conn);
        return;
      }
      conn.frames.feed(chunk.value());
      wire::Frame frame;
      for (;;) {
        auto polled = conn.frames.poll(frame);
        if (!polled.ok()) {
          on_malformed(conn, polled.error().message());
          return;
        }
        if (!polled.value()) break;
        if (!handle_frame(conn, frame)) return;
      }
    }
  }

  void accept_loop() {
    std::uint64_t next_id = 0;
    for (;;) {
      auto accepted = listener.accept_one();
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (stopping) return;
      }
      if (!accepted.ok()) {
        if (!listener.valid()) return;
        continue;
      }
      auto conn = std::make_unique<WorkerConn>();
      conn->id = ++next_id;
      conn->socket = std::move(accepted).value();
      (void)conn->socket.set_timeout_ms(options.io_timeout_ms);
      conn->breaker = registry::CircuitBreaker(options.breaker);
      conn->last_beat_ms = mono_ms();
      WorkerConn* raw = conn.get();
      std::lock_guard<std::mutex> lock(mutex);
      ++stats.workers_connected;
      workers.push_back(std::move(conn));
      raw->reader = std::thread([this, raw] { reader_loop(*raw); });
    }
  }

  /// One scheduler pass: liveness, assignment, straggler re-dispatch.
  void tick(double now_ms) {
    std::lock_guard<std::mutex> lock(mutex);
    if (stopping) return;

    // Liveness: a worker executing a lease must heartbeat; silence past the
    // deadline is death (covers both SIGKILL — usually caught earlier by
    // the socket reset — and the wedged-but-connected hang).
    for (auto& conn : workers) {
      if (!conn->alive || !worker_busy(conn->id)) continue;
      if (now_ms - conn->last_beat_ms >
          static_cast<double>(options.heartbeat_deadline_ms)) {
        ++stats.missed_deadlines;
        obs::Registry::global()
            .counter("dockmine_coord_missed_deadlines_total")
            .add();
        drop_worker(*conn, now_ms);
      }
    }
    if (stopping) return;

    // Assignment: pending leases to idle, alive, breaker-approved workers.
    for (;;) {
      auto lease = table.next_pending(now_ms);
      if (!lease) break;
      WorkerConn* target = nullptr;
      for (auto& conn : workers) {
        if (conn->alive && conn->saw_hello && !worker_busy(conn->id) &&
            conn->breaker.allow(now_ms)) {
          target = conn.get();
          break;
        }
      }
      if (!target) break;
      if (!table.assign(*lease, target->id, now_ms).ok()) break;
      send_lease(*target, *lease, now_ms);
      if (stopping) return;
    }

    // Straggler re-dispatch: duplicate a long-running single-owner lease
    // onto an idle worker; first completion wins. `duplicate_every_lease`
    // (test hook) forces the duplicate path with no threshold.
    const double median = table.median_completed_ms();
    const bool straggler_enabled =
        options.duplicate_every_lease ||
        (options.straggler_factor > 0.0 && median > 0.0);
    if (!straggler_enabled) return;
    const double threshold =
        options.duplicate_every_lease
            ? 0.0
            : std::max(static_cast<double>(options.straggler_floor_ms),
                       options.straggler_factor * median);
    for (std::uint32_t i = 0; i < table.count(); ++i) {
      const LeaseStatus& status = table.status(i);
      if (status.state != LeaseState::kRunning || status.owners.size() != 1)
        continue;
      if (now_ms - status.started_ms < threshold) continue;
      const std::uint64_t current_owner = status.owners[0];
      WorkerConn* target = nullptr;
      for (auto& conn : workers) {
        if (conn->alive && conn->saw_hello && conn->id != current_owner &&
            !worker_busy(conn->id) && conn->breaker.allow(now_ms)) {
          target = conn.get();
          break;
        }
      }
      if (!target) continue;
      if (!table.assign_duplicate(i, target->id).ok()) continue;
      ++stats.straggler_redispatches;
      obs::Registry::global().counter("dockmine_coord_reassignments_total").add();
      send_lease(*target, i, now_ms);
      if (stopping) return;
    }
  }

  void shutdown_workers() {
    std::vector<WorkerConn*> conns;
    {
      std::lock_guard<std::mutex> lock(mutex);
      stopping = true;
      for (auto& conn : workers) conns.push_back(conn.get());
    }
    const std::string frame = wire::encode_frame(
        wire::FrameKind::kJson, R"({"type":"shutdown"})");
    for (WorkerConn* conn : conns) {
      {
        std::lock_guard<std::mutex> write_lock(conn->write_mutex);
        (void)conn->socket.write_all(frame);
      }
      conn->socket.shutdown_both();
    }
    listener.close();
    if (acceptor.joinable()) acceptor.join();
    for (WorkerConn* conn : conns) {
      if (conn->reader.joinable()) conn->reader.join();
    }
  }
};

Coordinator::Coordinator(CoordinatorOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Coordinator::~Coordinator() {
  if (impl_) impl_->shutdown_workers();
}

util::Status Coordinator::bind() {
  std::error_code ec;
  std::filesystem::create_directories(impl_->options.work_dir, ec);
  if (ec) {
    return util::internal("coordinate: cannot create work_dir " +
                          impl_->options.work_dir);
  }
  return impl_->listener.bind_loopback(impl_->options.port);
}

std::uint16_t Coordinator::port() const noexcept {
  return impl_->listener.port();
}

util::Result<CoordinatorReport> Coordinator::run() {
  Impl& impl = *impl_;
  if (!impl.listener.valid())
    return util::internal("coordinate: run() before bind()");
  obs::EventSpan span("coordinate");
  const double start_ms = mono_ms();
  impl.acceptor = std::thread([&impl] { impl.accept_loop(); });

  const auto tick = std::chrono::milliseconds(
      impl.options.scheduler_tick_ms == 0 ? 1
                                          : impl.options.scheduler_tick_ms);
  // Once every lease is done, linger until the last dispatched duplicate
  // has delivered (or failed, or died) so its idempotency check runs —
  // bounded by the heartbeat deadline so a wedged duplicate cannot hold
  // the run open.
  double drain_deadline_ms = 0.0;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(impl.mutex);
      if (impl.failure) break;
      if (impl.table.all_done()) {
        const double now = mono_ms();
        if (impl.outstanding_total() == 0) break;
        if (drain_deadline_ms == 0.0) {
          drain_deadline_ms =
              now + static_cast<double>(impl.options.heartbeat_deadline_ms);
        } else if (now > drain_deadline_ms) {
          break;
        }
      }
      if (mono_ms() - start_ms >
          static_cast<double>(impl.options.max_wall_ms)) {
        impl.fail_run(util::timeout(
            "coordinate: run exceeded max_wall_ms without converging"));
        break;
      }
    }
    impl.tick(mono_ms());
    std::this_thread::sleep_for(tick);
  }
  impl.shutdown_workers();

  std::lock_guard<std::mutex> lock(impl.mutex);
  impl.stats.leases = impl.table.count();
  impl.stats.elapsed_ms = mono_ms() - start_ms;
  if (impl.failure) return *impl.failure;

  // Fold in lease order — the same input order the in-process multi-node
  // combiner uses, so the merged report is byte-identical to its output
  // (and to a serial single-process run).
  std::vector<NodeContribution> ordered;
  std::vector<std::string> obs_paths;
  ordered.reserve(impl.table.count());
  for (std::uint32_t i = 0; i < impl.table.count(); ++i) {
    auto it = impl.contributions.find(i);
    if (it == impl.contributions.end()) {
      return util::internal("coordinate: lease " + std::to_string(i) +
                            " completed without a stored contribution");
    }
    ordered.push_back(std::move(it->second));
    auto obs_it = impl.obs_files.find(i);
    if (obs_it != impl.obs_files.end()) obs_paths.push_back(obs_it->second);
  }
  auto combined = fold_contributions(ordered);
  if (!combined.ok()) return std::move(combined).error();

  CoordinatorReport report;
  report.combined = std::move(combined).value();
  report.stats = impl.stats;
  // Straggler analysis over the per-lease obs exports — only meaningful
  // when every lease shipped one (workers built with obs on).
  if (obs_paths.size() == impl.table.count()) {
    auto merged = obs::merge_obs_exports(obs_paths);
    if (merged.ok()) report.node_obs = std::move(merged.value().nodes);
  }
  return report;
}

}  // namespace dockmine::core
