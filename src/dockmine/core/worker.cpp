#include "dockmine/core/worker.h"

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "dockmine/core/lease.h"
#include "dockmine/core/pipeline.h"
#include "dockmine/core/wire.h"
#include "dockmine/http/socket.h"
#include "dockmine/json/json.h"
#include "dockmine/obs/export.h"
#include "dockmine/obs/heartbeat.h"
#include "dockmine/obs/journal.h"
#include "dockmine/obs/timeseries.h"

namespace dockmine::core {
namespace {

double mono_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Shared by the main loop and the heartbeat emitter thread: every frame
/// leaves through write_frame, serialized by the mutex.
struct WireWriter {
  http::Socket* socket = nullptr;
  std::mutex mutex;

  util::Status write_frame(wire::FrameKind kind, std::string_view payload) {
    const std::string frame = wire::encode_frame(kind, payload);
    std::lock_guard<std::mutex> lock(mutex);
    return socket->write_all(frame);
  }
};

/// One liveness frame. `obs_line` (a heartbeat_line() snapshot) rides along
/// when available so the coordinator's journal sees worker progress, not
/// just a pulse.
util::Status send_heartbeat(WireWriter& writer, std::uint64_t worker_id,
                            std::uint32_t lease, const std::string& obs_line) {
  json::Value msg = json::Value::object();
  msg.set("type", "heartbeat");
  msg.set("worker", worker_id);
  msg.set("lease", std::uint64_t{lease});
  if (!obs_line.empty()) {
    if (auto parsed = json::parse(obs_line); parsed.ok()) {
      msg.set("obs", std::move(parsed).value());
    }
  }
  return writer.write_frame(wire::FrameKind::kJson, msg.dump());
}

/// Liveness pump for one lease execution. Prefers the obs heartbeat
/// emitter (PR 5) with a socket sink — each beat carries the full metric
/// snapshot; when obs is compiled out (start_heartbeat refuses) a plain
/// thread sends bare pulses instead, so liveness never depends on the obs
/// build flavor.
class LeaseHeartbeat {
 public:
  LeaseHeartbeat(WireWriter& writer, std::uint64_t worker_id,
                 std::uint32_t lease, std::uint64_t interval_ms,
                 std::atomic<std::uint64_t>& sent)
      : writer_(writer), worker_id_(worker_id), lease_(lease), sent_(sent) {
    obs::HeartbeatOptions options;
    options.interval_ms = interval_ms;
    options.sink = [this](const std::string& line) {
      if (send_heartbeat(writer_, worker_id_, lease_, line).ok())
        sent_.fetch_add(1, std::memory_order_relaxed);
    };
    via_emitter_ = obs::start_heartbeat(options);
    if (!via_emitter_) {
      pump_ = std::thread([this, interval_ms] {
        while (!stop_.load(std::memory_order_acquire)) {
          if (send_heartbeat(writer_, worker_id_, lease_, {}).ok())
            sent_.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
        }
      });
    }
  }

  ~LeaseHeartbeat() { stop(); }

  /// Idempotent. Via the emitter this also flushes the final beat (the
  /// flush-exact shutdown contract), so the coordinator always sees one
  /// last heartbeat before the result frame.
  void stop() {
    if (via_emitter_) {
      obs::stop_heartbeat();
      via_emitter_ = false;
      return;
    }
    if (pump_.joinable()) {
      stop_.store(true, std::memory_order_release);
      pump_.join();
    }
  }

 private:
  WireWriter& writer_;
  std::uint64_t worker_id_;
  std::uint32_t lease_;
  std::atomic<std::uint64_t>& sent_;
  bool via_emitter_ = false;
  std::thread pump_;
  std::atomic<bool> stop_{false};
};

struct LeaseGrant {
  std::uint32_t lease = 0;
  std::uint32_t node_index = 0;
  std::uint32_t node_count = 1;
  std::uint32_t attempt = 0;
  JobSpec spec;
};

util::Result<LeaseGrant> lease_grant_from_json(const json::Value& msg) {
  if (!msg["lease"].is_int() || !msg["node_index"].is_int() ||
      !msg["node_count"].is_int() || !msg["attempt"].is_int() ||
      !msg["spec"].is_object()) {
    return util::corrupt("worker: malformed lease grant");
  }
  LeaseGrant grant;
  grant.lease = static_cast<std::uint32_t>(msg["lease"].as_uint());
  grant.node_index = static_cast<std::uint32_t>(msg["node_index"].as_uint());
  grant.node_count = static_cast<std::uint32_t>(msg["node_count"].as_uint());
  grant.attempt = static_cast<std::uint32_t>(msg["attempt"].as_uint());
  if (grant.node_count == 0 || grant.node_index >= grant.node_count)
    return util::corrupt("worker: lease grant node out of range");
  auto spec = wire::job_spec_from_json(msg["spec"]);
  if (!spec.ok()) return std::move(spec).error();
  grant.spec = std::move(spec).value();
  return grant;
}

util::Status send_lease_failed(WireWriter& writer, std::uint64_t worker_id,
                               std::uint32_t lease,
                               const util::Error& error) {
  json::Value msg = json::Value::object();
  msg.set("type", "lease-failed");
  msg.set("worker", worker_id);
  msg.set("lease", std::uint64_t{lease});
  msg.set("error", error.to_string());
  return writer.write_frame(wire::FrameKind::kJson, msg.dump());
}

/// Execute one granted lease end to end and ship the outcome. Pipeline
/// failures are reported (lease-failed) and absorbed; only connection
/// failures propagate.
util::Status execute_lease(const WorkerOptions& options, WireWriter& writer,
                           std::uint64_t worker_id, const LeaseGrant& grant,
                           WorkerStats& stats,
                           std::atomic<std::uint64_t>& beats) {
  const std::string export_dir =
      (std::filesystem::path(options.scratch_dir) /
       ("lease-" + std::to_string(grant.lease) + "-a" +
        std::to_string(grant.attempt)))
          .string();
  std::error_code ec;
  std::filesystem::create_directories(export_dir, ec);
  if (ec) {
    ++stats.leases_failed;
    return send_lease_failed(
        writer, worker_id, grant.lease,
        util::internal("worker: cannot create " + export_dir));
  }

  // Fresh observability per lease, stamped with the partition index — the
  // per-lease obs export is what the coordinator's straggler analysis and
  // merge-obs view consume. Each beat the local sampler tick keeps the
  // worker's own time-series rings warm, so the snapshot riding on the
  // heartbeat always reflects the just-sampled counter state.
  obs::reset_all();
  obs::set_node_id(grant.node_index);
  if (obs::enabled()) {
    obs::TimeSeriesOptions sampling;
    sampling.interval_ms = options.heartbeat_interval_ms == 0
                               ? 100
                               : options.heartbeat_interval_ms;
    sampling.capacity = 256;
    obs::TimeSeriesStore::global().configure(sampling);
    obs::TimeSeriesStore::global().start_sampler();
  }

  util::Result<PipelineResult> result = [&] {
    LeaseHeartbeat heartbeat(writer, worker_id, grant.lease,
                             options.heartbeat_interval_ms, beats);
    if (options.chaos.die_on_first_lease) {
      // Chaos: die the way `kill -9` kills — after proving liveness once.
      (void)send_heartbeat(writer, worker_id, grant.lease, {});
      ::raise(SIGKILL);
    }
    if (options.chaos.hang_on_first_lease) {
      // Chaos: wedge. Stop heartbeating but keep the socket open; the
      // coordinator must detect this through the missed deadline, not a
      // reset.
      heartbeat.stop();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.chaos.hang_ms));
      return util::Result<PipelineResult>(
          util::internal("worker: chaos hang"));
    }
    auto run = run_end_to_end(
        lease_pipeline_options(grant.spec, grant.node_index,
                               grant.node_count, export_dir));
    heartbeat.stop();  // final beat flushes before the result frame
    return run;
  }();

  if (!result.ok()) {
    obs::reset_all();
    std::filesystem::remove_all(export_dir, ec);
    ++stats.leases_failed;
    return send_lease_failed(writer, worker_id, grant.lease, result.error());
  }
  PipelineResult& pipeline = result.value();

  wire::LeaseResult outcome;
  outcome.worker = worker_id;
  outcome.lease = grant.lease;
  outcome.attempt = grant.attempt;
  outcome.images = std::move(pipeline.images);
  outcome.manifests = std::move(pipeline.manifests);
  pipeline.layer_profiles.for_each([&](const analyzer::LayerProfile& profile) {
    outcome.layer_profiles.push_back(profile);
  });
  outcome.manifests_pushed = pipeline.manifests_pushed;
  outcome.shard_summary = pipeline.shard_summary;
  if (obs::enabled()) outcome.obs_export = obs::to_json(obs::collect());
  obs::reset_all();

  // Ship every file of the exported shard set (shardset.json + run files),
  // names sorted so two executions of the same lease serialize the result
  // identically — the coordinator's duplicate-comparison digest depends on
  // it.
  std::vector<std::string> names;
  for (const auto& entry :
       std::filesystem::directory_iterator(export_dir, ec)) {
    if (entry.is_regular_file())
      names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  std::vector<std::string> contents;
  contents.reserve(names.size());
  for (const std::string& name : names) {
    std::ifstream file(std::filesystem::path(export_dir) / name,
                       std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());
    if (!file.good() && !file.eof()) {
      ++stats.leases_failed;
      std::filesystem::remove_all(export_dir, ec);
      return send_lease_failed(
          writer, worker_id, grant.lease,
          util::internal("worker: cannot read exported " + name));
    }
    outcome.files.push_back({name, bytes.size()});
    contents.push_back(std::move(bytes));
  }

  if (auto sent = writer.write_frame(wire::FrameKind::kJson,
                                     wire::lease_result_to_json(outcome).dump());
      !sent.ok()) {
    return sent;
  }
  for (std::string& bytes : contents) {
    if (auto sent = writer.write_frame(wire::FrameKind::kBinary, bytes);
        !sent.ok()) {
      return sent;
    }
    ++stats.files_shipped;
    stats.bytes_shipped += bytes.size();
  }
  ++stats.leases_completed;
  std::filesystem::remove_all(export_dir, ec);
  return util::Status::success();
}

}  // namespace

util::Result<WorkerStats> run_worker(const WorkerOptions& options) {
  if (options.port == 0)
    return util::invalid_argument("worker: a coordinator port is required");
  if (options.scratch_dir.empty())
    return util::invalid_argument("worker: scratch_dir is required");
  std::error_code ec;
  std::filesystem::create_directories(options.scratch_dir, ec);
  if (ec) {
    return util::internal("worker: cannot create scratch_dir " +
                          options.scratch_dir);
  }

  auto connected = http::Socket::connect_loopback(options.port);
  if (!connected.ok()) return std::move(connected).error();
  http::Socket socket = std::move(connected).value();
  if (auto set = socket.set_timeout_ms(options.io_timeout_ms); !set.ok())
    return set.error();

  const std::uint64_t worker_id =
      options.worker_id != 0 ? options.worker_id
                             : static_cast<std::uint64_t>(::getpid());
  WireWriter writer;
  writer.socket = &socket;
  WorkerStats stats;
  std::atomic<std::uint64_t> beats{0};

  {
    json::Value hello = json::Value::object();
    hello.set("type", "hello");
    hello.set("worker", worker_id);
    hello.set("pid", static_cast<std::uint64_t>(::getpid()));
    if (auto sent = writer.write_frame(wire::FrameKind::kJson, hello.dump());
        !sent.ok()) {
      return sent.error();
    }
  }

  wire::FrameBuffer frames;
  bool lease_seen = false;
  double idle_since = mono_ms();
  for (;;) {
    auto chunk = socket.read_some();
    if (!chunk.ok()) {
      if (chunk.error().code() == util::ErrorCode::kTimeout) {
        if (mono_ms() - idle_since >
            static_cast<double>(options.idle_timeout_ms)) {
          return util::timeout("worker: coordinator went silent");
        }
        continue;
      }
      if (chunk.error().code() == util::ErrorCode::kReset) {
        // Coordinator gone; nothing left to do.
        stats.heartbeats_sent = beats.load(std::memory_order_relaxed);
        return stats;
      }
      return chunk.error();
    }
    if (chunk.value().empty()) {
      stats.heartbeats_sent = beats.load(std::memory_order_relaxed);
      return stats;
    }
    frames.feed(chunk.value());

    wire::Frame frame;
    for (;;) {
      auto polled = frames.poll(frame);
      if (!polled.ok()) return polled.error();  // poisoned stream
      if (!polled.value()) break;
      if (frame.kind != wire::FrameKind::kJson)
        return util::corrupt("worker: unexpected binary frame");
      auto parsed = json::parse(frame.payload);
      if (!parsed.ok() || !parsed.value().is_object())
        return util::corrupt("worker: unparseable control frame");
      const json::Value msg = std::move(parsed).value();
      const std::string& type = msg["type"].as_string();
      if (type == "shutdown") {
        stats.shutdown_received = true;
        stats.heartbeats_sent = beats.load(std::memory_order_relaxed);
        return stats;
      }
      if (type != "lease")
        return util::corrupt("worker: unexpected message type: " + type);
      auto grant = lease_grant_from_json(msg);
      if (!grant.ok()) return std::move(grant).error();

      WorkerOptions lease_options = options;
      if (lease_seen) {
        // The chaos hooks apply to the first lease only.
        lease_options.chaos = WorkerChaos{};
      }
      lease_seen = true;
      if (lease_options.chaos.hang_on_first_lease) {
        // A hung worker never recovers in real life either: after the chaos
        // window this worker exits without a result.
        (void)execute_lease(lease_options, writer, worker_id, grant.value(),
                            stats, beats);
        stats.heartbeats_sent = beats.load(std::memory_order_relaxed);
        return stats;
      }
      if (auto executed = execute_lease(lease_options, writer, worker_id,
                                        grant.value(), stats, beats);
          !executed.ok()) {
        return executed.error();
      }
      idle_since = mono_ms();
    }
  }
}

}  // namespace dockmine::core
