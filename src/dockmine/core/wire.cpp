#include "dockmine/core/wire.h"

#include <cstring>

#include "dockmine/compress/crc32.h"
#include "dockmine/registry/manifest.h"

namespace dockmine::core::wire {
namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return v;
}

bool require_uint(const json::Value& doc, std::string_view key,
                  std::uint64_t& out) {
  if (!doc.contains(key) || !doc[key].is_int()) return false;
  out = doc[key].as_uint();
  return true;
}

}  // namespace

std::string encode_frame(FrameKind kind, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(kFrameMagic);
  out.push_back(static_cast<char>(kind));
  out.push_back('\0');  // flags
  out.push_back('\0');  // reserved
  out.push_back('\0');
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, compress::Crc32::of(payload));
  out.append(payload);
  return out;
}

util::Result<bool> FrameBuffer::poll(Frame& out) {
  if (corrupt_) return util::corrupt("wire: stream already poisoned");
  const std::size_t available = buffer_.size() - cursor_;
  if (available < kFrameHeaderBytes) return false;
  const char* header = buffer_.data() + cursor_;

  if (std::memcmp(header, kFrameMagic.data(), kFrameMagic.size()) != 0) {
    corrupt_ = true;
    return util::corrupt("wire: bad frame magic");
  }
  const auto kind = static_cast<std::uint8_t>(header[4]);
  if (kind != static_cast<std::uint8_t>(FrameKind::kJson) &&
      kind != static_cast<std::uint8_t>(FrameKind::kBinary)) {
    corrupt_ = true;
    return util::corrupt("wire: unknown frame kind");
  }
  if (header[5] != 0 || header[6] != 0 || header[7] != 0) {
    corrupt_ = true;
    return util::corrupt("wire: nonzero flags/reserved bits");
  }
  const std::uint32_t length = get_u32(header + 8);
  if (length > kMaxFramePayload) {
    corrupt_ = true;
    return util::corrupt("wire: frame payload over limit");
  }
  const std::uint32_t crc = get_u32(header + 12);
  if (available < kFrameHeaderBytes + length) return false;

  const std::string_view payload(buffer_.data() + cursor_ + kFrameHeaderBytes,
                                 length);
  if (compress::Crc32::of(payload) != crc) {
    corrupt_ = true;
    return util::corrupt("wire: frame CRC mismatch");
  }
  out.kind = static_cast<FrameKind>(kind);
  out.payload.assign(payload);
  cursor_ += kFrameHeaderBytes + length;
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (cursor_ > 4096 && cursor_ * 2 > buffer_.size()) {
    buffer_.erase(0, cursor_);
    cursor_ = 0;
  }
  return true;
}

// ---- profile codecs ----------------------------------------------------

json::Value layer_profile_to_json(const analyzer::LayerProfile& profile) {
  json::Value doc = json::Value::object();
  doc.set("digest", profile.digest.to_string());
  doc.set("fls", profile.fls);
  doc.set("cls", profile.cls);
  doc.set("files", profile.file_count);
  doc.set("dirs", profile.dir_count);
  doc.set("depth", std::uint64_t{profile.max_depth});
  return doc;
}

util::Result<analyzer::LayerProfile> layer_profile_from_json(
    const json::Value& doc) {
  if (!doc.is_object() || !doc["digest"].is_string())
    return util::corrupt("wire: layer profile is not an object");
  auto digest = digest::Digest::parse(doc["digest"].as_string());
  if (!digest.ok())
    return util::corrupt("wire: layer profile digest: " +
                         digest.error().message());
  analyzer::LayerProfile profile;
  profile.digest = digest.value();
  std::uint64_t depth = 0;
  if (!require_uint(doc, "fls", profile.fls) ||
      !require_uint(doc, "cls", profile.cls) ||
      !require_uint(doc, "files", profile.file_count) ||
      !require_uint(doc, "dirs", profile.dir_count) ||
      !require_uint(doc, "depth", depth) || depth > 0xffffffffull)
    return util::corrupt("wire: layer profile fields missing or invalid");
  profile.max_depth = static_cast<std::uint32_t>(depth);
  return profile;
}

json::Value image_profile_to_json(const analyzer::ImageProfile& profile) {
  json::Value doc = json::Value::object();
  doc.set("repository", profile.repository);
  doc.set("fis", profile.fis);
  doc.set("cis", profile.cis);
  doc.set("files", profile.file_count);
  doc.set("dirs", profile.dir_count);
  doc.set("layers", std::uint64_t{profile.layer_count});
  return doc;
}

util::Result<analyzer::ImageProfile> image_profile_from_json(
    const json::Value& doc) {
  if (!doc.is_object() || !doc["repository"].is_string())
    return util::corrupt("wire: image profile is not an object");
  analyzer::ImageProfile profile;
  profile.repository = doc["repository"].as_string();
  std::uint64_t layers = 0;
  if (!require_uint(doc, "fis", profile.fis) ||
      !require_uint(doc, "cis", profile.cis) ||
      !require_uint(doc, "files", profile.file_count) ||
      !require_uint(doc, "dirs", profile.dir_count) ||
      !require_uint(doc, "layers", layers) || layers > 0xffffffffull)
    return util::corrupt("wire: image profile fields missing or invalid");
  profile.layer_count = static_cast<std::uint32_t>(layers);
  return profile;
}

// ---- job spec ----------------------------------------------------------

json::Value job_spec_to_json(const JobSpec& spec) {
  json::Value doc = json::Value::object();
  doc.set("repositories", spec.repositories);
  doc.set("seed", spec.seed);
  doc.set("light", spec.light_calibration);
  doc.set("gzip_level", std::int64_t{spec.gzip_level});
  doc.set("download_workers", std::uint64_t{spec.download_workers});
  doc.set("analyze_workers", std::uint64_t{spec.analyze_workers});
  doc.set("mode", spec.mode == ExecutionMode::kSerial     ? "serial"
                  : spec.mode == ExecutionMode::kStreamed ? "streamed"
                                                          : "staged");
  doc.set("shards", std::uint64_t{spec.shards});
  doc.set("spill_threshold_bytes", spec.spill_threshold_bytes);
  return doc;
}

util::Result<JobSpec> job_spec_from_json(const json::Value& doc) {
  if (!doc.is_object()) return util::corrupt("wire: job spec not an object");
  JobSpec spec;
  std::uint64_t workers = 0;
  std::uint64_t shards = 0;
  if (!require_uint(doc, "repositories", spec.repositories) ||
      !require_uint(doc, "seed", spec.seed) ||
      !require_uint(doc, "spill_threshold_bytes",
                    spec.spill_threshold_bytes) ||
      !doc["light"].is_bool() || !doc["gzip_level"].is_int() ||
      !doc["mode"].is_string())
    return util::corrupt("wire: job spec fields missing or invalid");
  spec.light_calibration = doc["light"].as_bool();
  spec.gzip_level = static_cast<int>(doc["gzip_level"].as_int());
  if (!require_uint(doc, "download_workers", workers) || workers == 0 ||
      workers > 256)
    return util::corrupt("wire: job spec download_workers out of range");
  spec.download_workers = static_cast<std::size_t>(workers);
  if (!require_uint(doc, "analyze_workers", workers) || workers == 0 ||
      workers > 256)
    return util::corrupt("wire: job spec analyze_workers out of range");
  spec.analyze_workers = static_cast<std::size_t>(workers);
  const std::string& mode = doc["mode"].as_string();
  if (mode == "serial") {
    spec.mode = ExecutionMode::kSerial;
  } else if (mode == "staged") {
    spec.mode = ExecutionMode::kStaged;
  } else if (mode == "streamed") {
    spec.mode = ExecutionMode::kStreamed;
  } else {
    return util::corrupt("wire: job spec mode unrecognized");
  }
  if (!require_uint(doc, "shards", shards) || shards == 0 || shards > 4096)
    return util::corrupt("wire: job spec shards out of range");
  spec.shards = static_cast<std::uint32_t>(shards);
  if (spec.repositories == 0 || spec.repositories > 100'000'000ull)
    return util::corrupt("wire: job spec repositories out of range");
  return spec;
}

// ---- lease result ------------------------------------------------------

json::Value lease_result_to_json(const LeaseResult& result) {
  json::Value doc = json::Value::object();
  doc.set("type", "result");
  doc.set("worker", result.worker);
  doc.set("lease", std::uint64_t{result.lease});
  doc.set("attempt", std::uint64_t{result.attempt});
  doc.set("manifests_pushed", result.manifests_pushed);

  json::Value images = json::Value::array();
  for (const auto& image : result.images)
    images.push_back(image_profile_to_json(image));
  doc.set("images", std::move(images));

  json::Value manifests = json::Value::array();
  for (const auto& manifest : result.manifests) {
    // The canonical manifest codec round-trips through its JSON string
    // form; re-parse so the wire document nests objects, not strings.
    auto parsed = json::parse(registry::manifest_to_json(manifest));
    manifests.push_back(parsed.ok() ? std::move(parsed).value()
                                    : json::Value());
  }
  doc.set("manifests", std::move(manifests));

  json::Value layers = json::Value::array();
  for (const auto& profile : result.layer_profiles)
    layers.push_back(layer_profile_to_json(profile));
  doc.set("layers", std::move(layers));

  json::Value shard = json::Value::object();
  shard.set("shards", std::uint64_t{result.shard_summary.shards});
  shard.set("observations", result.shard_summary.observations);
  shard.set("spills", result.shard_summary.spills);
  shard.set("spilled_bytes", result.shard_summary.spilled_bytes);
  shard.set("peak_resident_bytes", result.shard_summary.peak_resident_bytes);
  doc.set("shard", std::move(shard));

  doc.set("obs", result.obs_export);

  json::Value files = json::Value::array();
  for (const auto& file : result.files) {
    json::Value entry = json::Value::object();
    entry.set("name", file.name);
    entry.set("size", file.size);
    files.push_back(std::move(entry));
  }
  doc.set("files", std::move(files));
  return doc;
}

util::Result<LeaseResult> lease_result_from_json(const json::Value& doc) {
  if (!doc.is_object() || doc["type"].as_string() != "result")
    return util::corrupt("wire: lease result is not a result message");
  LeaseResult result;
  std::uint64_t lease = 0;
  std::uint64_t attempt = 0;
  if (!require_uint(doc, "worker", result.worker) ||
      !require_uint(doc, "lease", lease) || lease > 0xffffffffull ||
      !require_uint(doc, "attempt", attempt) || attempt > 0xffffffffull ||
      !require_uint(doc, "manifests_pushed", result.manifests_pushed))
    return util::corrupt("wire: lease result header fields invalid");
  result.lease = static_cast<std::uint32_t>(lease);
  result.attempt = static_cast<std::uint32_t>(attempt);

  if (!doc["images"].is_array() || !doc["manifests"].is_array() ||
      !doc["layers"].is_array() || !doc["files"].is_array() ||
      !doc["shard"].is_object())
    return util::corrupt("wire: lease result sections missing");

  for (const json::Value& entry : doc["images"].items()) {
    auto image = image_profile_from_json(entry);
    if (!image.ok()) return image.error();
    result.images.push_back(std::move(image).value());
  }
  for (const json::Value& entry : doc["manifests"].items()) {
    auto manifest = registry::manifest_from_json(entry.dump());
    if (!manifest.ok())
      return util::corrupt("wire: lease result manifest: " +
                           manifest.error().message());
    result.manifests.push_back(std::move(manifest).value());
  }
  for (const json::Value& entry : doc["layers"].items()) {
    auto profile = layer_profile_from_json(entry);
    if (!profile.ok()) return profile.error();
    result.layer_profiles.push_back(std::move(profile).value());
  }

  const json::Value& shard = doc["shard"];
  std::uint64_t shards = 0;
  if (!require_uint(shard, "shards", shards) || shards > 4096 ||
      !require_uint(shard, "observations", result.shard_summary.observations) ||
      !require_uint(shard, "spills", result.shard_summary.spills) ||
      !require_uint(shard, "spilled_bytes",
                    result.shard_summary.spilled_bytes) ||
      !require_uint(shard, "peak_resident_bytes",
                    result.shard_summary.peak_resident_bytes))
    return util::corrupt("wire: lease result shard accounting invalid");
  result.shard_summary.shards = static_cast<std::uint32_t>(shards);
  result.shard_summary.enabled = true;

  result.obs_export = doc["obs"];

  for (const json::Value& entry : doc["files"].items()) {
    if (!entry.is_object() || !entry["name"].is_string())
      return util::corrupt("wire: lease result file entry invalid");
    FileEntry file;
    file.name = entry["name"].as_string();
    if (!require_uint(entry, "size", file.size))
      return util::corrupt("wire: lease result file size invalid");
    // File names are written into the coordinator's lease directory; no
    // separators means no traversal outside it.
    if (file.name.empty() || file.name.find('/') != std::string::npos ||
        file.name.find('\\') != std::string::npos || file.name[0] == '.')
      return util::corrupt("wire: lease result file name unsafe");
    result.files.push_back(std::move(file));
  }
  return result;
}

}  // namespace dockmine::core::wire
