#include "dockmine/core/cache_sim.h"

#include "dockmine/stats/distributions.h"

namespace dockmine::core {

bool LruCache::access(std::uint64_t key, std::uint64_t size) {
  const auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  if (size > capacity_) return false;  // uncacheable
  while (used_ + size > capacity_ && !lru_.empty()) {
    const Node& victim = lru_.back();
    used_ -= victim.size;
    map_.erase(victim.key);
    lru_.pop_back();
  }
  lru_.push_front(Node{key, size});
  map_.emplace(key, lru_.begin());
  used_ += size;
  return false;
}

CacheSimResult simulate_layer_cache(const std::vector<CachedImage>& images,
                                    std::uint64_t capacity_bytes,
                                    std::uint64_t pulls, std::uint64_t seed) {
  CacheSimResult result;
  if (images.empty()) return result;

  std::vector<double> weights;
  weights.reserve(images.size());
  for (const CachedImage& image : images) {
    weights.push_back(image.popularity_weight <= 0.0
                          ? 1e-9
                          : image.popularity_weight);
  }
  const stats::AliasTable picker(weights);
  LruCache cache(capacity_bytes);
  util::Rng rng(seed);

  for (std::uint64_t p = 0; p < pulls; ++p) {
    const CachedImage& image = images[picker.sample(rng)];
    ++result.pulls;
    for (std::size_t i = 0; i < image.layer_keys.size(); ++i) {
      const std::uint64_t size = image.layer_sizes[i];
      ++result.layer_requests;
      result.bytes_requested += size;
      if (cache.access(image.layer_keys[i], size)) {
        ++result.layer_hits;
        result.bytes_hit += size;
      }
    }
  }
  return result;
}

}  // namespace dockmine::core
