// DatasetStats: every statistic the paper's evaluation reports, computed
// from a HubModel in streaming passes (metadata mode). This is the engine
// behind the Figs. 3-29 benches.
//
// Pass structure:
//   1. one pass over unique layers, streaming each layer's files once:
//      layer aggregates (FLS/CLS/counts) + the file dedup index
//   2. image/popularity aggregation over the per-layer aggregates
//   3. (optional) a second file pass for cross-layer/image duplicates
//
// The passes are deterministic replays of the generator's per-layer
// streams, so no per-file state is ever stored beyond the dedup index.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dockmine/dedup/cross_dup.h"
#include "dockmine/dedup/file_dedup.h"
#include "dockmine/dedup/layer_sharing.h"
#include "dockmine/stats/cdf.h"
#include "dockmine/synth/generator.h"

namespace dockmine::core {

struct DatasetOptions {
  bool file_dedup = true;   ///< build the content index (Figs. 14-29)
  bool cross_dup = false;   ///< extra pass for Fig. 26
  /// Worker threads for the layer pass (0 = serial). Each worker streams a
  /// contiguous slice of the unique layers into its own dedup shard; the
  /// shards merge afterwards. Results are identical to the serial pass.
  std::size_t workers = 0;
};

/// Cached per-unique-layer aggregates (dense, indexed like
/// HubModel::unique_layers()).
struct LayerAgg {
  std::uint64_t fls = 0;
  std::uint64_t cls = 0;
  std::uint64_t file_count = 0;
  std::uint64_t dir_count = 1;
  std::uint32_t max_depth = 1;
};

class DatasetStats {
 public:
  static DatasetStats compute(const synth::HubModel& hub,
                              DatasetOptions options = {});

  // ---- layer-level distributions (Figs. 3-7) ----
  stats::Ecdf layer_cls;
  stats::Ecdf layer_fls;
  stats::Ecdf layer_ratio;   ///< FLS/CLS, non-empty layers only
  stats::Ecdf layer_files;
  stats::Ecdf layer_dirs;
  stats::Ecdf layer_depth;

  // ---- image-level distributions (Figs. 9-12, 10) ----
  stats::Ecdf image_cis;
  stats::Ecdf image_fis;
  stats::Ecdf image_layers;
  stats::Ecdf image_files;
  stats::Ecdf image_dirs;

  // ---- popularity (Fig. 8), over every crawled repository ----
  stats::Ecdf repo_pulls;

  // ---- sharing (Fig. 23, §V-A) ----
  dedup::LayerSharingAnalysis sharing;

  // ---- file-level dedup (Figs. 24-29) ----
  std::unique_ptr<dedup::FileDedupIndex> file_index;  // null if disabled

  // ---- cross duplicates (Fig. 26) ----
  stats::Ecdf cross_layer_dup;
  stats::Ecdf cross_image_dup;

  // ---- bookkeeping ----
  std::uint64_t total_files = 0;
  std::uint64_t total_fls_bytes = 0;
  std::uint64_t total_cls_bytes = 0;
  std::uint64_t unique_layer_count = 0;
  std::uint64_t image_count = 0;
  double compute_seconds = 0.0;

  const std::vector<LayerAgg>& layer_aggregates() const noexcept {
    return layer_aggs_;
  }

 private:
  std::vector<LayerAgg> layer_aggs_;
};

/// Scale selection for bench binaries: DOCKMINE_REPOS / DOCKMINE_SEED
/// environment variables override the default.
synth::Scale scale_from_env(synth::Scale fallback);

}  // namespace dockmine::core
