// End-to-end bytes-mode pipeline: the paper's Fig. 2 as one call.
//
//   generate snapshot -> materialize registry (real gzip'd tars)
//   -> crawl (paginated search, dedup raw hits)
//   -> download (parallel, unique layers only, 401/404 accounting)
//   -> analyze (gunzip + untar + classify, parallel)
//   -> dedup (file index + layer sharing)
//
// Three execution modes share the stages:
//
//   * kSerial  — one worker per stage, staged barriers. The reference
//     ordering; slowest, simplest to reason about.
//   * kStaged  — parallel download, barrier, parallel analyze. The
//     pre-streaming behavior: every unique layer blob is resident between
//     the two stages.
//   * kStreamed — downloader workers push each verified layer blob into a
//     bounded queue; analyzer workers consume concurrently. Download
//     latency overlaps analysis CPU, and peak blob residency in the
//     hand-off is bounded by `queue_depth` (the downloader runs with
//     retain_blobs off, so no run-wide blob cache builds up either).
//
// All three produce byte-identical canonical reports
// (pipeline_report_json) under a fixed seed: the report is built from
// order-independent aggregates only, never from completion order.
//
// Used by the integration tests, the quickstart example, and
// bench_pipeline_end2end.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dockmine/analyzer/image_analyzer.h"
#include "dockmine/crawler/crawler.h"
#include "dockmine/dedup/file_dedup.h"
#include "dockmine/dedup/layer_sharing.h"
#include "dockmine/downloader/downloader.h"
#include "dockmine/json/json.h"
#include "dockmine/registry/faults.h"
#include "dockmine/registry/resilient.h"
#include "dockmine/registry/service.h"
#include "dockmine/shard/merger.h"
#include "dockmine/shard/sharded_index.h"
#include "dockmine/synth/generator.h"
#include "dockmine/synth/materialize.h"
#include "dockmine/util/error.h"

namespace dockmine::core {

enum class ExecutionMode {
  kSerial,    ///< staged with one worker per stage
  kStaged,    ///< parallel stages separated by barriers
  kStreamed,  ///< download and analysis overlapped through a bounded queue
};

struct PipelineOptions {
  synth::Scale scale = synth::Scale::test();
  synth::Calibration calibration = synth::Calibration::paper();
  std::size_t download_workers = 4;
  std::size_t analyze_workers = 2;
  int gzip_level = 6;
  bool run_file_dedup = true;
  ExecutionMode mode = ExecutionMode::kStaged;

  /// Streamed mode: capacity of the download->analyze blob queue. Peak
  /// blob residency in the hand-off is bounded by this depth (plus one
  /// in-flight blob per worker on either side).
  std::size_t queue_depth = 16;

  /// Optional crash/resume record; not owned, must outlive the run. With a
  /// checkpoint attached, completed repositories are replayed from disk on
  /// restart (manifest re-fetched, layer bytes from the checkpoint store)
  /// so a resumed run still produces the full report.
  downloader::Checkpoint* checkpoint = nullptr;

  /// Cooperative cancellation: once set, repositories not yet started are
  /// skipped. Chaos tests use this to kill a run mid-stream.
  const std::atomic<bool>* cancel = nullptr;

  /// Invoked after each analyzed layer with the running count (streamed
  /// mode only; called outside all pipeline locks). Chaos tests use it to
  /// trigger cancellation after N layers.
  std::function<void(std::uint64_t analyzed)> on_layer_analyzed;

  /// Chaos: inject seeded faults between the registry and the downloader,
  /// with retry/backoff/circuit-breaking layered on top (Downloader ->
  /// ResilientSource -> FaultySource -> Service). Not owned; null runs
  /// against the clean service.
  const registry::FaultSpec* faults = nullptr;
  registry::RetryPolicy retry;      ///< used when faults != nullptr
  registry::BreakerPolicy breaker;  ///< used when faults != nullptr

  /// > 0: sleep each registry request for its CostModel-modeled service
  /// time scaled by this factor (ThrottledSource). The in-process registry
  /// answers in microseconds; throttling makes the staged-vs-streamed
  /// comparison measure real download/analysis overlap.
  double network_scale = 0.0;

  /// Sharded dedup backend (dockmine::shard). shard.shards == 0 (the
  /// default) keeps the monolithic FileDedupIndex; any other value routes
  /// file observations to a hash-partitioned, optionally disk-spilling
  /// index instead, and the report's dedup section is computed by merging
  /// the shard runs. The emitted report bytes are identical either way, for
  /// every execution mode, shard count, and spill threshold.
  shard::Config shard;

  /// When non-empty (requires shard.enabled()), additionally freeze the
  /// sharded index into this directory as an exported shard set
  /// (run files + shardset.json) that another process can fold with
  /// ShardMerger::add_shard_set — the multi-node hand-off.
  std::string shard_export_dir;

  /// When non-null, analyze THIS registry instead of materializing a fresh
  /// snapshot from `scale`/`calibration` (which then only parameterize the
  /// crawler's search index): the temporal batch oracle points this at an
  /// evolving registry advanced to epoch K, and the run crawls, downloads,
  /// and analyzes whatever that service holds. Not owned; must outlive the
  /// run. Fault/throttle decorators compose as usual;
  /// `manifests_pushed` stays 0 because nothing was materialized here.
  registry::Service* external_service = nullptr;

  /// Multi-node simulation (requires shard.enabled() when > 1): this run
  /// acts as node `node_index` of `node_count`. The node crawls the full
  /// snapshot, then downloads/analyzes only its repository partition
  /// (crawl order index % node_count) and indexes only the layers it owns
  /// per the deterministic ownership pass (DESIGN.md §10), so the union of
  /// all nodes' shard sets folds to exactly the single-node index.
  std::uint32_t node_count = 1;
  std::uint32_t node_index = 0;
};

/// Streamed-mode hand-off accounting; all zeros for the other modes.
struct StreamStats {
  std::uint64_t layers_enqueued = 0;   ///< blobs pushed by the downloader
  std::uint64_t layers_analyzed = 0;   ///< profiles produced by consumers
  std::uint64_t queue_capacity = 0;    ///< configured depth
  std::uint64_t queue_peak = 0;        ///< max blobs resident at once
  std::uint64_t producer_stalls = 0;   ///< pushes that blocked (backpressure)
};

/// Accounting for the sharded dedup backend; all zeros when it is off.
/// None of these fields feed the canonical reports (they are run-shape
/// facts — spill pressure, resident peaks — not analysis results).
struct ShardedDedupSummary {
  bool enabled = false;
  std::uint32_t shards = 0;
  std::uint64_t observations = 0;       ///< file instances routed
  std::uint64_t distinct_contents = 0;
  std::uint64_t metadata_conflicts = 0;
  std::uint64_t spills = 0;             ///< run files frozen to disk
  std::uint64_t spilled_bytes = 0;
  std::uint64_t peak_resident_bytes = 0;
  std::uint64_t runs_merged = 0;        ///< memory + file runs folded
  std::string export_manifest;          ///< shardset.json path when exported
};

struct PipelineResult {
  crawler::CrawlResult crawl;
  downloader::DownloadStats download;
  registry::ServiceStats service;
  std::vector<analyzer::ImageProfile> images;
  analyzer::ProfileStore layer_profiles;
  std::unique_ptr<dedup::FileDedupIndex> file_index;
  /// Dedup aggregates from the sharded backend (set instead of file_index
  /// when PipelineOptions::shard is enabled).
  std::optional<shard::MergedAggregates> shard_dedup;
  ShardedDedupSummary shard_summary;
  dedup::LayerSharingAnalysis sharing;
  std::uint64_t manifests_pushed = 0;
  /// Manifests of every successfully delivered image (completion order).
  std::vector<registry::Manifest> manifests;
  StreamStats stream;
  registry::ResilienceStats resilience;  ///< zeros without faults
  registry::FaultStats fault_stats;      ///< zeros without faults
  double throttled_ms = 0.0;             ///< total injected network stall
  /// Wall time of the pipeline proper — crawl through dedup — excluding
  /// the synthetic registry's materialization (which a real crawl does not
  /// pay). This is the number mode comparisons should use.
  double pipeline_seconds = 0.0;
};

util::Result<PipelineResult> run_end_to_end(const PipelineOptions& options);

/// Canonical analysis report: images / layers / sharing / dedup aggregates.
/// Built only from order-independent quantities (totals, quantiles over
/// multisets, name-sorted listings), so any two runs that analyzed the same
/// image set serialize byte-identically — regardless of execution mode,
/// worker counts, queue depth, thread interleaving, or whether the run was
/// resumed from a checkpoint. Layer aggregates are derived from the layers
/// referenced by delivered manifests (not the raw profile store, which may
/// hold extra layers from images that failed mid-download under faults).
json::Value analysis_report_json(const PipelineResult& result);

/// Canonical full report: the analysis report plus download accounting.
/// Adds the per-repository outcome buckets and verified-transfer totals;
/// excludes wall-clock and race-dependent counters (wall_seconds, retries,
/// bytes_discarded). Byte-identical across execution modes for a fixed
/// seed on a fault-free source.
json::Value pipeline_report_json(const PipelineResult& result);

}  // namespace dockmine::core
