// End-to-end bytes-mode pipeline: the paper's Fig. 2 as one call.
//
//   generate snapshot -> materialize registry (real gzip'd tars)
//   -> crawl (paginated search, dedup raw hits)
//   -> download (parallel, unique layers only, 401/404 accounting)
//   -> analyze (gunzip + untar + classify, parallel)
//   -> dedup (file index + layer sharing)
//
// Used by the integration tests, the quickstart example, and
// bench_pipeline_end2end.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dockmine/analyzer/image_analyzer.h"
#include "dockmine/crawler/crawler.h"
#include "dockmine/dedup/file_dedup.h"
#include "dockmine/dedup/layer_sharing.h"
#include "dockmine/downloader/downloader.h"
#include "dockmine/registry/service.h"
#include "dockmine/synth/generator.h"
#include "dockmine/synth/materialize.h"
#include "dockmine/util/error.h"

namespace dockmine::core {

struct PipelineOptions {
  synth::Scale scale = synth::Scale::test();
  synth::Calibration calibration = synth::Calibration::paper();
  std::size_t download_workers = 4;
  std::size_t analyze_workers = 2;
  int gzip_level = 6;
  bool run_file_dedup = true;
};

struct PipelineResult {
  crawler::CrawlResult crawl;
  downloader::DownloadStats download;
  registry::ServiceStats service;
  std::vector<analyzer::ImageProfile> images;
  analyzer::ProfileStore layer_profiles;
  std::unique_ptr<dedup::FileDedupIndex> file_index;
  dedup::LayerSharingAnalysis sharing;
  std::uint64_t manifests_pushed = 0;
};

util::Result<PipelineResult> run_end_to_end(const PipelineOptions& options);

}  // namespace dockmine::core
