// Distributed run coordinator (DESIGN.md §12): owns the lease table, a
// loopback listener, and one connection per worker process; drives the run
// from "K leases pending" to "every lease done and folded" while surviving
// worker death, hangs, reported failures, and malformed frames.
//
// Robustness machinery, all reused from existing layers:
//   - liveness: workers heartbeat while executing a lease (the obs
//     heartbeat emitter with a socket sink); a running worker that misses
//     `heartbeat_deadline_ms` is declared dead and its leases reassigned.
//     An idle worker's death is detected by its socket closing.
//   - reassignment backoff: decorrelated jitter (registry::decorrelated_
//     jitter) spaces re-dispatches of a failing lease.
//   - retry limits: registry::RetryPolicy caps attempts per lease and a
//     global retry budget across the run; registry::CircuitBreaker per
//     worker stops assigning to a worker that keeps failing leases.
//   - stragglers: once a lease runs longer than
//     max(straggler_floor_ms, straggler_factor * median completed lease
//     wall), a duplicate is dispatched to an idle worker; the first
//     completion wins and the duplicate is discarded after a byte-level
//     comparison (`duplicate_mismatches` must stay 0 — leases are
//     idempotent by construction).
//
// Threading: one accept thread, one reader thread per connection, and the
// scheduler loop on the run() caller's thread. All shared state (lease
// table, worker map, stats) lives behind one mutex; per-connection socket
// writes are serialized by a per-worker write mutex acquired after (never
// before) the state mutex.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dockmine/core/lease.h"
#include "dockmine/core/pipeline.h"
#include "dockmine/obs/export.h"
#include "dockmine/registry/resilient.h"
#include "dockmine/util/error.h"

namespace dockmine::core {

struct CoordinatorOptions {
  JobSpec spec;
  std::uint32_t leases = 3;
  /// Received shard sets land in `<work_dir>/lease-<id>-a<attempt>/`,
  /// per-lease obs exports in `<work_dir>/obs-lease-<id>.json`.
  std::string work_dir;
  std::uint16_t port = 0;  ///< 0: ephemeral (read back via port())

  /// A worker with a running lease that has not heartbeat for this long is
  /// declared dead; its leases are reassigned.
  std::uint64_t heartbeat_deadline_ms = 2000;
  /// Straggler re-dispatch triggers at
  /// max(straggler_floor_ms, straggler_factor * median completed wall).
  /// Disabled when straggler_factor <= 0.
  double straggler_factor = 3.0;
  std::uint64_t straggler_floor_ms = 2000;

  /// max_attempts bounds dispatches per lease; retry_budget bounds
  /// reassignments across the whole run. base/max_delay_ms drive the
  /// decorrelated-jitter backoff between re-dispatches of a lease.
  registry::RetryPolicy retry{.max_attempts = 5,
                              .base_delay_ms = 10.0,
                              .max_delay_ms = 500.0,
                              .retry_budget = 64};
  registry::BreakerPolicy breaker;  ///< per-worker assignment breaker
  std::uint64_t seed = 0x5eed;      ///< backoff jitter stream

  std::uint32_t io_timeout_ms = 250;     ///< reader-thread recv deadline
  std::uint64_t scheduler_tick_ms = 20;  ///< liveness/assignment cadence
  /// Whole-run wall clamp: exceeded => the run fails with kTimeout instead
  /// of waiting forever on a cluster that cannot converge.
  std::uint64_t max_wall_ms = 10 * 60 * 1000;

  /// Test hook (idempotency proof): dispatch a duplicate of every running
  /// lease as soon as a second worker is idle, regardless of the straggler
  /// threshold. Forces the duplicate-completion path on every run.
  bool duplicate_every_lease = false;
};

/// Counters the chaos tests assert on; also exported as
/// dockmine_coord_* obs counters.
struct DistStats {
  std::uint32_t leases = 0;
  std::uint64_t workers_connected = 0;
  std::uint64_t heartbeats_received = 0;
  std::uint64_t missed_deadlines = 0;      ///< liveness expiries
  std::uint64_t worker_disconnects = 0;    ///< sockets closed before shutdown
  std::uint64_t reassignments = 0;         ///< leases returned to pending
  std::uint64_t straggler_redispatches = 0;
  std::uint64_t duplicate_completions = 0; ///< second result for a done lease
  std::uint64_t duplicate_mismatches = 0;  ///< duplicates that differed (BUG)
  std::uint64_t malformed_frames = 0;      ///< poisoned connections
  std::uint64_t lease_failures = 0;        ///< worker-reported failures
  std::uint64_t files_received = 0;
  std::uint64_t bytes_received = 0;
  double elapsed_ms = 0.0;
};

struct CoordinatorReport {
  /// The folded run — analysis_report_json(combined...) is byte-identical
  /// to a serial single-process run of the same JobSpec.
  PipelineResult combined;
  DistStats stats;
  /// Per-lease obs summaries (straggler deltas), in lease order; empty when
  /// workers ran with obs compiled out.
  std::vector<obs::ObsNodeSummary> node_obs;
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Bind the listener (no threads started — safe to fork workers after).
  util::Status bind();
  std::uint16_t port() const noexcept;

  /// Accept workers and drive the run until every lease is done (fold and
  /// return) or the run cannot converge (attempts/budget exhausted, wall
  /// clamp). Call bind() first.
  util::Result<CoordinatorReport> run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dockmine::core
