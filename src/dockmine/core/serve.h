// dockmine serve — the long-lived query/ingest daemon (DESIGN.md §13).
//
// The batch pipeline runs, emits one report, and exits; the daemon keeps
// the folded analysis state resident and answers queries over the same
// CRC-framed wire protocol the distributed runtime speaks (core/wire.*,
// JSON payloads). One accept thread, one session thread per connection,
// snapshot-isolated reads:
//
//   * Every committed state is an immutable `Snapshot` published through a
//     shared_ptr swap. A query pins the snapshot it started on; an ingest
//     commit publishes a new one. Readers never block writers, writers
//     never tear readers, and every response is stamped with the epoch it
//     answered from.
//   * Ingest = run the pipeline over a new batch (repositories, seed),
//     keep its NodeContribution (images, manifests, layer profiles,
//     exported shard set), and fold ALL batches with fold_contributions —
//     the exact multi-node recombination — so the served report is
//     byte-identical to a fresh batch run over the union corpus.
//   * Commit order is: run batch -> rebuild snapshot -> persist the batch
//     list (state.json, temp+rename) -> publish. A crash before the rename
//     loses the in-flight batch cleanly; a restart replays the committed
//     batch specs (deterministic seeds make replay exact) and serves the
//     same epoch it would have served before the crash.
//
// Protocol (JSON frames; every *_from_json parser is total):
//
//   request   {"type":"query","id":N,"q":"report","path":"analysis.dedup"}
//             {"type":"query","id":N,"q":"image","repository":"..."}
//             {"type":"query","id":N,"q":"layer","key":K}
//             {"type":"query","id":N,"q":"content","key":K}
//             {"type":"query","id":N,"q":"types"}
//             {"type":"query","id":N,"q":"ecdf","name":"layers.cls"
//                                             [,"quantile":0.5]}
//             {"type":"query","id":N,"q":"status"}
//             {"type":"query","id":N,"q":"stats"}
//             {"type":"query","id":N,"q":"top","metric":"cis","n":10}
//             {"type":"query","id":N,"q":"repos"[,"prefix":"library/"]}
//             {"type":"query","id":N,"q":"metrics"[,"name":SELECTOR]
//                 [,"op":"rate"|"quantile"][,"window_ms":W]
//                 [,"quantile":0.99][,"range_ms":R]}
//             {"type":"query","id":N,"q":"trace-tail"[,"n":64]}
//             {"type":"query","id":N,"q":"slowlog"}
//             {"type":"ingest","id":N,"repositories":R,"seed":S}
//             {"type":"ingest-epoch","id":N}          (temporal mode)
//             {"type":"shutdown","id":N}
//   response  {"type":"result","id":N,"epoch":E,"body":...}
//             {"type":"error","id":N,"epoch":E,"error":"..."}
//
// Failure containment mirrors the rest of the system: a malformed frame
// poisons only its connection (the stream cannot resync, so the session is
// dropped — the daemon keeps serving); a well-framed but invalid request
// gets an error response and the session continues; a slow-dribbling
// partial frame is dropped after `slowloris_ms`; transient accept errors
// (EMFILE & friends) back off with a counter instead of killing the accept
// thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dockmine/core/lease.h"
#include "dockmine/core/multi_node.h"
#include "dockmine/core/pipeline.h"
#include "dockmine/core/wire.h"
#include "dockmine/http/socket.h"
#include "dockmine/json/json.h"
#include "dockmine/obs/alert.h"
#include "dockmine/shard/lookup.h"
#include "dockmine/util/error.h"

namespace dockmine::core::serve {

// ---- requests / responses ---------------------------------------------

enum class RequestKind : std::uint8_t {
  kQuery = 1,
  kIngest = 2,
  kShutdown = 3,
  kIngestEpoch = 4,  ///< temporal mode: advance the registry one epoch
};

struct Request {
  RequestKind kind = RequestKind::kQuery;
  std::uint64_t id = 0;
  std::string q;           ///< query selector: report|image|layer|content|
                           ///< types|ecdf|status|stats|top|repos
  std::string path;        ///< report: dot path into pipeline_report_json
  std::string repository;  ///< image
  std::uint64_t key = 0;   ///< layer / content
  std::string name;        ///< ecdf: images.cis, layers.cls, ...
  double quantile = -1.0;  ///< ecdf: grid quantile; < 0 = whole slice
  std::uint64_t repositories = 0;  ///< ingest batch size
  std::uint64_t seed = 0;          ///< ingest batch seed
  std::string metric;      ///< top: cis|fis|files|layers
  std::uint64_t n = 0;     ///< top: result row cap (>= 1); trace-tail:
                           ///< last-N events (0 = default 64)
  std::string prefix;      ///< repos: repository-name prefix filter ("" = all)
  std::string op;          ///< metrics: ""=samples|rate|quantile
  std::uint64_t range_ms = 0;   ///< metrics samples: trailing range (0 = latest)
  std::uint64_t window_ms = 0;  ///< metrics rate/quantile lookback (0 = 60000)
};

json::Value request_to_json(const Request& request);
/// Total: validates type/q discriminators, field types, and ranges; fails
/// with kCorrupt instead of crashing, because the input crossed a socket.
util::Result<Request> request_from_json(const json::Value& doc);

struct Response {
  std::uint64_t id = 0;
  bool ok = false;
  std::uint64_t epoch = 0;  ///< snapshot epoch the answer was read from
  std::string error;        ///< set when !ok
  json::Value body;         ///< set when ok
  /// Server-side latency attribution, stamped when obs is enabled
  /// (negative = not measured, omitted from the wire form — telemetry-off
  /// responses stay byte-identical to older builds).
  double parse_ms = -1.0;   ///< frame decode + request parse
  double handle_ms = -1.0;  ///< request dispatch + serialization
};

json::Value response_to_json(const Response& response);
util::Result<Response> response_from_json(const json::Value& doc);

// ---- snapshots ---------------------------------------------------------

/// One committed crawl batch; replayed deterministically on restart.
struct BatchSpec {
  std::uint64_t repositories = 0;
  std::uint64_t seed = 0;
};

json::Value batch_spec_to_json(const BatchSpec& spec);
util::Result<BatchSpec> batch_spec_from_json(const json::Value& doc);

/// Per-repository scalar metrics for the top/repos aggregation queries;
/// extracted from the image profiles at snapshot-build time so the read
/// path never touches the profiles themselves.
struct RepoMetrics {
  std::uint64_t cis = 0;
  std::uint64_t fis = 0;
  std::uint64_t files = 0;
  std::uint64_t layers = 0;
};

/// Immutable queryable state for one epoch. Built once per commit, shared
/// read-only by every in-flight query via shared_ptr.
struct Snapshot {
  std::uint64_t epoch = 0;  ///< batch mode: committed batches; temporal
                            ///< mode: the registry epoch served
  bool temporal = false;
  std::vector<BatchSpec> batches;
  json::Value report;  ///< pipeline_report_json of the folded union
  /// Per-image reports keyed by repository (image_report_json).
  std::map<std::string, json::Value> images;
  /// Per-repository scalars for top/repos queries.
  std::map<std::string, RepoMetrics> repo_metrics;
  /// Union layer-sharing analysis for point lookups.
  dedup::LayerSharingAnalysis sharing;
  json::Value types;  ///< type_breakdown_json of the folded breakdown
  /// Read-path index over every batch's exported shard set (batch mode).
  shard::ShardSetIndex contents;
  /// Temporal mode: the resident dedup index of the served epoch — content
  /// queries hit it directly instead of the shard-set index.
  std::shared_ptr<const dedup::FileDedupIndex> resident;
};

// ---- shared serializers (the oracle surface) ---------------------------
// serve_test compares served answers against these serializers applied to
// an independently executed batch run: the serializer is shared, the data
// path (resident fold vs fresh pipeline) is what the byte-equality pins.

/// Per-image report: profile fields plus the sharing-derived dedup view —
/// cls_total (the image's bytes with private layer copies), cls_amortized
/// (its bytes when each layer's cost is split across all referencing
/// images), and their ratio.
json::Value image_report_json(const analyzer::ImageProfile& profile,
                              const registry::Manifest& manifest,
                              const dedup::LayerSharingAnalysis& sharing);

/// Count/capacity shares and dedup ratios per level-2 group plus overall.
json::Value type_breakdown_json(const dedup::TypeBreakdown& breakdown);

// ---- daemon ------------------------------------------------------------

struct ServeOptions {
  /// Base pipeline configuration; `job.repositories`/`job.seed` define the
  /// initial batch. Ingested batches inherit everything but size and seed.
  JobSpec job;
  /// Required: batch spool (batch-<n>/ shard sets) + state.json.
  std::string state_dir;
  std::uint16_t port = 0;  ///< 0 = ephemeral
  std::uint32_t io_timeout_ms = 200;   ///< per-socket read deadline
  std::uint64_t slowloris_ms = 10000;  ///< partial frame older than this is dropped
  std::uint64_t accept_backoff_ms = 10;  ///< initial transient-accept backoff

  /// Temporal mode (set => the daemon serves an evolving registry instead
  /// of folded crawl batches). The hook advances the temporal stack one
  /// epoch — epoch 0 is the initial ingest — and returns the resident
  /// analysis state as a PipelineResult. It must be deterministic in the
  /// epoch sequence: restart replays epochs 0..K and must reproduce the
  /// pre-crash snapshot byte-for-byte. Invoked only under the ingest lock.
  /// Regular `ingest` requests are rejected while set (and `ingest-epoch`
  /// is rejected without it).
  std::function<util::Result<PipelineResult>(std::uint32_t epoch)>
      temporal_advance;

  /// Continuous telemetry (DESIGN.md §16). When enabled the daemon starts
  /// the global TimeSeriesStore sampler on start() (stopping it on stop()),
  /// evaluates alert rules after every scrape, stamps responses with
  /// parse/handle timings, and feeds the slow-query journal.
  struct TelemetryOptions {
    bool enabled = false;
    std::uint64_t sample_interval_ms = 1000;
    std::size_t ring_capacity = 600;
    double slowlog_threshold_ms = 25.0;   ///< handle_ms above this is logged
    std::size_t slowlog_capacity = 128;   ///< bounded journal (oldest dropped)
    std::string alert_log_path;           ///< JSONL transitions (optional)
    /// Empty = obs::default_serve_rules().
    std::vector<obs::AlertRule> rules;
  };
  TelemetryOptions telemetry;

  /// Test hook: invoked (under the ingest lock) just before an ingest batch
  /// runs — the kill-mid-ingest chaos test uses it to time its stop().
  std::function<void()> on_ingest_begin;
  /// Test hook: when set, consulted before each accept; a returned error is
  /// handled exactly like a Listener::accept_one failure (this is how the
  /// EMFILE backoff path is exercised without exhausting real descriptors).
  std::function<std::optional<util::Error>()> accept_error_injector;
};

class ServeDaemon {
 public:
  explicit ServeDaemon(ServeOptions options);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Load state: replay committed batches from state.json when present,
  /// else run the initial batch from `job` and commit it. Then bind the
  /// listener and start accepting.
  util::Status start();

  std::uint16_t port() const noexcept { return listener_.port(); }

  /// Idempotent: cancels any in-flight ingest, closes the listener, drops
  /// every session, joins all threads.
  void stop();

  /// True once a client sent a shutdown request; the owner (CLI/test)
  /// polls this and calls stop().
  bool shutdown_requested() const noexcept {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  /// Current published snapshot (never null after a successful start()).
  std::shared_ptr<const Snapshot> snapshot() const;

 private:
  struct BatchState {
    BatchSpec spec;
    downloader::DownloadStats download;
    NodeContribution contribution;
  };

  struct Session {
    http::Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  /// Run one batch pipeline into `state_dir/batch-<index>` and append its
  /// state. Caller holds `ingest_mutex_`.
  util::Status run_batch(const BatchSpec& spec);
  /// Fold every committed batch into a fresh snapshot. Caller holds
  /// `ingest_mutex_`.
  util::Result<std::shared_ptr<Snapshot>> build_snapshot();
  /// Write state.json (temp + rename). Caller holds `ingest_mutex_`.
  util::Status persist_state();

  /// Temporal mode: advance the stack to `epoch` and rebuild the snapshot
  /// from the returned resident state. Caller holds `ingest_mutex_`.
  util::Result<std::shared_ptr<Snapshot>> apply_temporal_epoch(
      std::uint32_t epoch);

  void accept_loop();
  void session_loop(Session* session);
  Response handle_request(const Request& request);
  Response handle_query(const Request& request);
  /// Telemetry: record a handled request into the bounded slow-query
  /// journal when it crossed the threshold.
  void note_slow_query(const Request& request, const Response& response,
                       double handle_ms);
  util::Result<json::Value> do_ingest(const Request& request);
  util::Result<json::Value> do_ingest_epoch(const Request& request);

  std::string batch_dir(std::size_t index) const;

  ServeOptions options_;
  http::Listener listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> cancel_ingest_{false};

  std::mutex sessions_mutex_;
  std::vector<std::unique_ptr<Session>> sessions_;

  std::mutex ingest_mutex_;  ///< serializes batch runs + commits
  std::vector<BatchState> batches_;
  /// Temporal mode: epochs applied so far (0 before the initial ingest,
  /// K+1 once epoch K is served). Guarded by `ingest_mutex_`.
  std::uint32_t temporal_applied_ = 0;

  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const Snapshot> snapshot_;

  // ---- telemetry (active only when options_.telemetry.enabled) ----------
  struct SlowQuery {
    double ts_ms = 0.0;
    std::string q;
    std::uint64_t id = 0;
    double ms = 0.0;
    bool ok = false;
  };
  bool telemetry_started_ = false;  ///< sampler owned by this daemon
  obs::AlertRules alerts_;
  mutable std::mutex slowlog_mutex_;
  std::deque<SlowQuery> slowlog_;
  std::uint64_t slowlog_dropped_ = 0;
};

// ---- client ------------------------------------------------------------

/// Blocking request/response client over one connection. Not thread-safe;
/// the bench and tests run one per thread.
class Client {
 public:
  static util::Result<Client> connect(std::uint16_t port,
                                      std::uint32_t timeout_ms = 5000);

  /// Send one request, read frames until its response arrives.
  util::Result<Response> call(const Request& request);

  /// Adjust the per-read deadline (ingest calls run whole pipelines).
  util::Status set_timeout_ms(std::uint32_t timeout_ms) {
    return socket_.set_timeout_ms(timeout_ms);
  }

  http::Socket& socket() { return socket_; }  ///< chaos tests poke the raw stream

 private:
  http::Socket socket_;
  wire::FrameBuffer frames_;
};

}  // namespace dockmine::core::serve
