// dockmine watch — live monitoring client for a serve daemon
// (DESIGN.md §16). Polls `query stats` / `query status` / `query
// trace-tail` over one connection, derives a per-interval summary frame
// (request totals and per-selector rates, overall p50/p99, alert and
// journal state), and renders it either as a refreshing terminal block or
// as one JSON line per interval (`--jsonl`) for machine consumers.
//
// The scrape -> frame -> line pipeline is pure and exposed piecewise
// (`derive`, `jsonl_line`) so tests pin the machine output byte-for-byte
// from synthetic scrapes under the injectable clock, without a socket in
// the loop.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "dockmine/core/serve.h"
#include "dockmine/json/json.h"
#include "dockmine/util/error.h"

namespace dockmine::core::watch {

struct WatchOptions {
  std::uint16_t port = 0;
  bool jsonl = false;           ///< machine output: one JSON line per frame
  bool once = false;            ///< single frame, then exit
  std::uint64_t interval_ms = 1000;  ///< poll cadence
};

/// One poll of the daemon: the three query bodies plus the client-side
/// scrape timestamp (obs clock).
struct Scrape {
  double ts_ms = 0.0;
  json::Value stats;   ///< `query stats` body (obs::to_json export)
  json::Value status;  ///< `query status` body
  json::Value trace;   ///< `query trace-tail` body ({} when unavailable)
};

/// The derived summary of one interval.
struct WatchFrame {
  double ts_ms = 0.0;
  std::uint64_t epoch = 0;
  std::int64_t uptime_s = 0;
  std::uint64_t requests_total = 0;
  double req_per_s = 0.0;  ///< windowed vs. prev scrape; lifetime avg first
  /// Per-selector request rates (label value -> per-second), same window.
  std::map<std::string, double> rates;
  double p50_ms = 0.0;  ///< overall request latency (all selectors merged)
  double p99_ms = 0.0;
  std::int64_t active_sessions = 0;
  std::int64_t alerts_firing = 0;  ///< -1 = daemon has no telemetry
  std::uint64_t journal_recorded = 0;
  std::uint64_t journal_dropped = 0;
};

/// Fold a scrape (and optionally the previous one, for windowed rates)
/// into a frame. With no previous scrape, rates fall back to the lifetime
/// average total/uptime.
WatchFrame derive(const Scrape* previous, const Scrape& current);

/// One-line JSON rendering of a frame (no trailing newline) — the
/// `--jsonl` output, pinned byte-for-byte by timeseries_test.
std::string jsonl_line(const WatchFrame& frame);

/// Human terminal block (multi-line, no ANSI — the caller clears).
std::string render(const WatchFrame& frame);

/// Execute one poll against an open client connection.
util::Result<Scrape> scrape(serve::Client& client, std::uint64_t& next_id);

/// Connect and stream frames to stdout until the daemon goes away (or
/// forever); one frame with `once`.
util::Status run(const WatchOptions& options);

}  // namespace dockmine::core::watch
