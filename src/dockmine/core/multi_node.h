// Multi-node simulation: split one analysis run across K pipeline
// instances ("nodes"), each crawling the shared snapshot, downloading and
// analyzing only its repository partition, and indexing only the layers it
// owns under the deterministic ownership pass (DESIGN.md §10). Each node
// freezes its sharded dedup index as an exported shard set; the combiner
// folds the K sets — plus the nodes' image/layer results — into one result
// whose analysis_report_json is byte-identical to a single-node run over
// the full snapshot.
//
// This is an in-process simulation of the scale-out story (K processes on
// K machines would exchange only the shard-set directories), and the same
// exported directories feed the `dockmine merge-shards` CLI verb.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dockmine/core/pipeline.h"
#include "dockmine/util/error.h"

namespace dockmine::core {

struct MultiNodeOptions {
  /// Per-node pipeline settings. `shard` must be enabled (shards >= 1);
  /// node_count/node_index/shard_export_dir are overwritten per node, and
  /// each node spills into its own export directory.
  PipelineOptions base;
  std::uint32_t nodes = 2;
  /// Root for the per-node shard sets: node i exports to
  /// `<export_root>/node-<i>/shardset.json`.
  std::string export_root;
  /// When non-empty (and obs is enabled), each node's run is bracketed by
  /// obs::reset_all() + set_node_id(i) and its metrics/span snapshot is
  /// written to `<obs_export_dir>/obs-node-<i>.json` — the input format of
  /// `merge_obs_exports` / the `merge-obs` CLI verb. Because each node run
  /// resets the process-wide registry, leave this empty when the caller is
  /// accumulating its own metrics around the multi-node run.
  std::string obs_export_dir;
};

struct MultiNodeResult {
  /// Per-node pipeline outcomes, in node order.
  std::vector<PipelineResult> node_results;
  /// The recombined run: images/manifests/layer profiles concatenated,
  /// layer sharing recomputed over the union, and the dedup section rebuilt
  /// by merging every node's exported shard set. Download/crawl/service
  /// accounting is left per node (see node_results); the canonical
  /// analysis_report_json of this result equals the single-node report.
  PipelineResult combined;
  std::vector<std::string> shard_set_dirs;  ///< one per node
  /// Per-node obs export files (empty unless obs_export_dir was set).
  std::vector<std::string> obs_export_files;
};

util::Result<MultiNodeResult> run_multi_node(const MultiNodeOptions& options);

/// One node's (or one lease's) delivered work, stripped to exactly what the
/// recombination needs. The in-process simulation builds these from
/// PipelineResults; the distributed coordinator builds them from wire
/// messages plus shard-set files received over sockets — both feed the same
/// fold below.
struct NodeContribution {
  std::vector<analyzer::ImageProfile> images;
  std::vector<registry::Manifest> manifests;
  std::vector<analyzer::LayerProfile> layer_profiles;
  std::uint64_t manifests_pushed = 0;
  std::string shard_set_dir;  ///< exported shard set to fold
  ShardedDedupSummary shard_summary;  ///< per-node accounting (summed)
};

/// Fold K contributions into one PipelineResult whose analysis_report_json
/// is byte-identical to a single-node run over the union: concatenate the
/// delivered work in input order, recompute layer sharing over the union of
/// manifests, and k-way-merge every exported shard set into the exact dedup
/// section (commutative merge_content_entries makes the result independent
/// of how the work was partitioned — or re-executed).
util::Result<PipelineResult> fold_contributions(
    const std::vector<NodeContribution>& contributions);

}  // namespace dockmine::core
