#include "dockmine/core/trace.h"

#include <algorithm>

#include "dockmine/stats/sampling.h"

namespace dockmine::core {

PullTraceGenerator::PullTraceGenerator(std::vector<double> weights,
                                       Options options)
    : base_weights_(std::move(weights)), options_(options) {
  for (double& w : base_weights_) {
    if (w <= 0.0) w = 1e-9;
  }
  base_picker_ = stats::AliasTable(base_weights_);
}

void PullTraceGenerator::reshuffle_trend(util::Rng& rng) {
  // A new small hot set absorbs `drift_fraction` of the pull mass.
  const std::size_t hot = std::max<std::size_t>(
      1, base_weights_.size() / 50);
  trending_.clear();
  auto picks = stats::sample_indices(base_weights_.size(), hot, rng);
  for (auto p : picks) trending_.push_back(static_cast<std::uint32_t>(p));
}

void PullTraceGenerator::generate(
    double duration_s, const std::function<void(const PullEvent&)>& sink) {
  util::Rng rng(options_.seed);
  reshuffle_trend(rng);
  double now = 0.0;
  double next_drift = options_.drift_period_s;
  while (true) {
    now += rng.exponential(options_.rate_per_s);
    if (now >= duration_s) return;
    if (options_.drift_fraction > 0.0 && now >= next_drift) {
      reshuffle_trend(rng);
      next_drift += options_.drift_period_s;
    }
    PullEvent event;
    event.time_s = now;
    if (options_.drift_fraction > 0.0 &&
        rng.chance(options_.drift_fraction) && !trending_.empty()) {
      event.image = trending_[rng.uniform(trending_.size())];
    } else {
      event.image = static_cast<std::uint32_t>(base_picker_.sample(rng));
    }
    sink(event);
  }
}

std::vector<PullEvent> PullTraceGenerator::generate(double duration_s) {
  std::vector<PullEvent> trace;
  generate(duration_s,
           [&](const PullEvent& event) { trace.push_back(event); });
  return trace;
}

ReplayResult replay_trace(const std::vector<PullEvent>& trace,
                          const std::vector<CachedImage>& images,
                          std::uint64_t cache_capacity_bytes,
                          const registry::CostModel& origin_cost,
                          double cache_per_mb_ms) {
  ReplayResult result;
  LruCache cache(cache_capacity_bytes);
  for (const PullEvent& event : trace) {
    if (event.image >= images.size()) continue;
    const CachedImage& image = images[event.image];
    ++result.pulls;
    double latency_ms = origin_cost.base_ms;
    for (std::size_t i = 0; i < image.layer_keys.size(); ++i) {
      const std::uint64_t size = image.layer_sizes[i];
      ++result.layer_requests;
      result.served_bytes += size;
      if (cache.access(image.layer_keys[i], size)) {
        ++result.layer_hits;
        latency_ms += cache_per_mb_ms * static_cast<double>(size) / 1e6;
      } else {
        result.origin_bytes += size;
        latency_ms += origin_cost.transfer_ms(size);
      }
    }
    result.pull_latency_ms.add(latency_ms);
  }
  return result;
}

}  // namespace dockmine::core
