// Report formatting for the bench harness: paper-vs-measured tables and
// CDF/histogram printers that mirror the paper's figure panels.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "dockmine/downloader/downloader.h"
#include "dockmine/obs/export.h"
#include "dockmine/registry/resilient.h"
#include "dockmine/stats/cdf.h"
#include "dockmine/stats/histogram.h"

namespace dockmine::core {

/// A figure-reproduction table: one row per metric the paper reports, with
/// the paper's value next to ours.
class FigureTable {
 public:
  FigureTable(std::string figure_id, std::string title)
      : figure_id_(std::move(figure_id)), title_(std::move(title)) {}

  FigureTable& row(std::string metric, std::string paper, std::string measured,
                   std::string note = "");

  void print(std::ostream& os) const;

 private:
  struct Row {
    std::string metric, paper, measured, note;
  };
  std::string figure_id_;
  std::string title_;
  std::vector<Row> rows_;
};

// ---- value formatting (matching the paper's units) ----
std::string fmt_bytes(double bytes);
std::string fmt_count(double count);
std::string fmt_ratio(double ratio, int decimals = 2);
std::string fmt_pct(double fraction, int decimals = 1);

using ValueFormatter = std::function<std::string(double)>;

/// Print a CDF as a quantile table: p1 p10 p25 p50 p75 p90 p99 max.
/// `fmt` renders each value (fmt_bytes, fmt_count, ...).
void print_cdf(std::ostream& os, const std::string& caption,
               const stats::Ecdf& cdf, const ValueFormatter& fmt);

/// Print a histogram panel (counts per bucket) like the paper's (b) panels.
void print_histogram(std::ostream& os, const std::string& caption,
                     const stats::LinearHistogram& hist,
                     const ValueFormatter& fmt);

/// Download-stage outcome panel: per-bucket repository accounting (the
/// paper's §III-B failure taxonomy plus the hardened classes) and transfer
/// economy, including digest re-fetches and checkpoint resumes.
void print_download_stats(std::ostream& os,
                          const downloader::DownloadStats& stats);

/// Resilience panel for a run behind registry::ResilientSource: retry,
/// backoff, budget, and circuit-breaker counters.
void print_resilience(std::ostream& os,
                      const registry::ResilienceStats& stats);

/// Human-readable dump of an obs::MetricsReport: counters/gauges as a
/// name-value table, histograms as count/sum/quantiles, spans indented by
/// hierarchy depth. (Machine formats live in obs: to_json / to_prometheus.)
void print_metrics(std::ostream& os, const obs::MetricsReport& report);

}  // namespace dockmine::core
