#include "dockmine/core/multi_node.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <utility>

#include "dockmine/obs/export.h"
#include "dockmine/obs/journal.h"
#include "dockmine/shard/merger.h"

namespace dockmine::core {

util::Result<MultiNodeResult> run_multi_node(const MultiNodeOptions& options) {
  if (options.nodes == 0)
    return util::invalid_argument("multi-node: need at least one node");
  if (!options.base.shard.enabled())
    return util::invalid_argument(
        "multi-node: the sharded dedup backend must be enabled");
  if (options.export_root.empty())
    return util::invalid_argument("multi-node: export_root is required");

  MultiNodeResult out;
  out.node_results.reserve(options.nodes);
  out.shard_set_dirs.reserve(options.nodes);

  for (std::uint32_t node = 0; node < options.nodes; ++node) {
    const std::string node_dir =
        (std::filesystem::path(options.export_root) /
         ("node-" + std::to_string(node)))
            .string();
    PipelineOptions node_options = options.base;
    node_options.node_count = options.nodes;
    node_options.node_index = node;
    node_options.shard_export_dir = node_dir;
    // Spills land next to the exported runs so the whole set ships as one
    // directory.
    node_options.shard.spill_dir = node_dir;
    std::error_code ec;
    std::filesystem::create_directories(node_dir, ec);
    if (ec)
      return util::internal("multi-node: cannot create " + node_dir);

    // Per-node observability: each simulated node starts from a clean
    // registry/tracer/journal with its node id baked into every metric
    // snapshot and trace event, exactly as K separate processes would.
    const bool export_obs = !options.obs_export_dir.empty() && obs::enabled();
    if (export_obs) {
      obs::reset_all();
      obs::set_node_id(node);
    }

    auto result = run_end_to_end(node_options);
    if (export_obs) {
      const std::string obs_file =
          (std::filesystem::path(options.obs_export_dir) /
           ("obs-node-" + std::to_string(node) + ".json"))
              .string();
      std::filesystem::create_directories(options.obs_export_dir, ec);
      std::ofstream file(obs_file, std::ios::binary | std::ios::trunc);
      if (!file.is_open() || !(file << obs::to_json(obs::collect()).dump())) {
        obs::reset_all();
        return util::internal("multi-node: cannot write " + obs_file);
      }
      out.obs_export_files.push_back(obs_file);
      obs::reset_all();  // node id back to 0; next node starts clean
    }
    if (!result.ok()) return std::move(result).error();
    out.node_results.push_back(std::move(result).value());
    out.shard_set_dirs.push_back(node_dir);
  }

  // --- recombine: union the nodes' delivered work ---
  std::vector<NodeContribution> contributions;
  contributions.reserve(out.node_results.size());
  for (std::size_t node = 0; node < out.node_results.size(); ++node) {
    PipelineResult& result = out.node_results[node];
    NodeContribution contribution;
    contribution.images = result.images;
    contribution.manifests = result.manifests;
    result.layer_profiles.for_each(
        [&](const analyzer::LayerProfile& profile) {
          contribution.layer_profiles.push_back(profile);
        });
    contribution.manifests_pushed = result.manifests_pushed;
    contribution.shard_set_dir = out.shard_set_dirs[node];
    contribution.shard_summary = result.shard_summary;
    contributions.push_back(std::move(contribution));
  }
  auto combined = fold_contributions(contributions);
  if (!combined.ok()) return std::move(combined).error();
  out.combined = std::move(combined).value();
  return out;
}

util::Result<PipelineResult> fold_contributions(
    const std::vector<NodeContribution>& contributions) {
  PipelineResult combined;
  for (const NodeContribution& node : contributions) {
    for (const auto& image : node.images) combined.images.push_back(image);
    for (const auto& manifest : node.manifests)
      combined.manifests.push_back(manifest);
    combined.manifests_pushed = node.manifests_pushed;  // same snapshot
    for (const auto& profile : node.layer_profiles)
      combined.layer_profiles.put(profile);
  }
  // Layer sharing is recomputed over the union of delivered manifests —
  // the same fold run_end_to_end applies, so totals match a single run.
  {
    std::vector<dedup::LayerSharingAnalysis::LayerUse> uses;
    for (const auto& manifest : combined.manifests) {
      uses.clear();
      for (const auto& ref : manifest.layers) {
        uses.push_back({ref.digest.key64(), ref.compressed_size});
      }
      combined.sharing.add_image(uses);
    }
  }

  // --- fold the K exported shard sets into one exact dedup section ---
  shard::ShardMerger merger;
  for (const NodeContribution& node : contributions) {
    if (auto s = merger.add_shard_set(node.shard_set_dir); !s.ok())
      return s.error();
  }
  auto aggregates = merger.merge_aggregates();
  if (!aggregates.ok()) return std::move(aggregates).error();
  combined.shard_summary.runs_merged = merger.stats().runs;
  combined.shard_dedup = std::move(aggregates).value();
  combined.shard_summary.enabled = true;
  combined.shard_summary.shards =
      contributions.empty() ? 0 : contributions[0].shard_summary.shards;
  combined.shard_summary.distinct_contents =
      combined.shard_dedup->distinct_contents;
  combined.shard_summary.metadata_conflicts =
      combined.shard_dedup->metadata_conflicts;
  for (const NodeContribution& node : contributions) {
    combined.shard_summary.observations += node.shard_summary.observations;
    combined.shard_summary.spills += node.shard_summary.spills;
    combined.shard_summary.spilled_bytes += node.shard_summary.spilled_bytes;
    combined.shard_summary.peak_resident_bytes =
        std::max(combined.shard_summary.peak_resident_bytes,
                 node.shard_summary.peak_resident_bytes);
  }
  return combined;
}

}  // namespace dockmine::core
