// Pull-trace generation and replay.
//
// The paper motivates caching from a static popularity snapshot (Fig. 8);
// production registry studies (its refs [28], [29]) work from pull traces.
// This module bridges the two: it synthesizes a pull trace whose marginal
// distribution is the Fig. 8 popularity — Poisson arrivals, optional
// popularity drift ("trending" images) — and replays it against a cache +
// cost model to produce per-pull latency distributions.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dockmine/core/cache_sim.h"
#include "dockmine/registry/service.h"
#include "dockmine/stats/cdf.h"
#include "dockmine/stats/distributions.h"
#include "dockmine/util/rng.h"

namespace dockmine::core {

struct PullEvent {
  double time_s = 0.0;
  std::uint32_t image = 0;
};

class PullTraceGenerator {
 public:
  struct Options {
    double rate_per_s = 10.0;      ///< mean arrival rate (Poisson)
    /// Popularity drift: every `drift_period_s`, this fraction of the
    /// probability mass moves to a freshly "trending" random image subset.
    double drift_fraction = 0.0;
    double drift_period_s = 3600.0;
    std::uint64_t seed = 20170530;
  };

  /// `weights[i]` is image i's long-run pull share (e.g. pull counts).
  PullTraceGenerator(std::vector<double> weights, Options options);

  /// Generate events until `duration_s`; calls `sink` in time order.
  void generate(double duration_s,
                const std::function<void(const PullEvent&)>& sink);

  std::vector<PullEvent> generate(double duration_s);

 private:
  void reshuffle_trend(util::Rng& rng);

  std::vector<double> base_weights_;
  Options options_;
  stats::AliasTable base_picker_;
  std::vector<std::uint32_t> trending_;  // current hot set
};

/// Replay outcome: latency distribution and origin offload.
struct ReplayResult {
  stats::Ecdf pull_latency_ms;
  std::uint64_t pulls = 0;
  std::uint64_t layer_requests = 0;
  std::uint64_t layer_hits = 0;
  std::uint64_t origin_bytes = 0;   ///< bytes fetched from the origin
  std::uint64_t served_bytes = 0;   ///< total bytes delivered to clients

  double hit_ratio() const noexcept {
    return layer_requests == 0
               ? 0.0
               : static_cast<double>(layer_hits) /
                     static_cast<double>(layer_requests);
  }
  double origin_offload() const noexcept {
    return served_bytes == 0
               ? 0.0
               : 1.0 - static_cast<double>(origin_bytes) /
                           static_cast<double>(served_bytes);
  }
};

/// Replay `trace` against an LRU layer cache in front of an origin with the
/// given cost model. Cache hits cost `cache_per_mb_ms`; misses pay the
/// origin's transfer model and admit the layer.
ReplayResult replay_trace(const std::vector<PullEvent>& trace,
                          const std::vector<CachedImage>& images,
                          std::uint64_t cache_capacity_bytes,
                          const registry::CostModel& origin_cost,
                          double cache_per_mb_ms = 1.0);

}  // namespace dockmine::core
