#include "dockmine/core/pipeline.h"

#include <unordered_map>

#include "dockmine/analyzer/pipeline.h"
#include "dockmine/obs/span.h"
#include "dockmine/registry/manifest.h"

namespace dockmine::core {

util::Result<PipelineResult> run_end_to_end(const PipelineOptions& options) {
  PipelineResult result;
  auto& tracer = obs::Tracer::global();
  const auto pipeline_span = tracer.span("pipeline");

  // --- build & publish the snapshot ---
  synth::HubModel hub(options.calibration, options.scale);
  registry::Service service;
  synth::Materializer materializer(hub, options.gzip_level);
  {
    const auto span = tracer.span("materialize");
    auto pushed = materializer.populate(service);
    if (!pushed.ok()) return std::move(pushed).error();
    result.manifests_pushed = pushed.value();
  }

  // --- crawl ---
  registry::SearchIndex index(service,
                              synth::Calibration::kSearchDuplicateFactor,
                              options.scale.seed);
  crawler::Crawler crawler(index);
  {
    const auto span = tracer.span("crawl");
    result.crawl = crawler.crawl_all();
  }

  // --- download (manifests kept, layer blobs cached by the downloader) ---
  downloader::Options dl_options;
  dl_options.workers = options.download_workers;
  downloader::Downloader downloader(service, dl_options);
  std::vector<registry::Manifest> manifests;
  {
    const auto span = tracer.span("download");
    result.download = downloader.run(
        result.crawl.repositories, [&](downloader::DownloadedImage&& image) {
          manifests.push_back(std::move(image.manifest));
        });
  }

  // --- analyze + dedup ---
  if (options.run_file_dedup) {
    result.file_index = std::make_unique<dedup::FileDedupIndex>(1 << 16);
  }
  std::unordered_map<std::uint64_t, std::uint32_t> layer_dense;

  analyzer::AnalysisPipeline::Options an_options;
  an_options.workers = options.analyze_workers;
  analyzer::AnalysisPipeline analysis(an_options);

  analyzer::AnalysisPipeline::Sink sink;
  if (result.file_index) {
    sink.on_file = [&](const digest::Digest& layer_digest,
                       const analyzer::FileRecord& record) {
      auto [it, inserted] = layer_dense.emplace(
          layer_digest.key64(),
          static_cast<std::uint32_t>(layer_dense.size()));
      result.file_index->add(record.digest, record.size, record.type,
                             it->second);
    };
  }
  sink.on_image = [&](const analyzer::ImageProfile& profile) {
    result.images.push_back(profile);
  };

  {
    // Worker-side untar/classify totals land under "pipeline/analyze/..."
    // via the analysis pipeline's record_at (it reads our open path).
    const auto span = tracer.span("analyze");
    auto store = analysis.run(
        manifests,
        [&](const digest::Digest& digest) { return service.get_blob(digest); },
        sink);
    if (!store.ok()) return std::move(store).error();
    result.layer_profiles = std::move(store).value();
  }

  // --- layer sharing over the downloaded manifests ---
  {
    const auto span = tracer.span("dedup");
    std::vector<dedup::LayerSharingAnalysis::LayerUse> uses;
    for (const auto& manifest : manifests) {
      uses.clear();
      for (const auto& ref : manifest.layers) {
        uses.push_back({ref.digest.key64(), ref.compressed_size});
      }
      result.sharing.add_image(uses);
    }
  }

  result.service = service.stats();
  return result;
}

}  // namespace dockmine::core
