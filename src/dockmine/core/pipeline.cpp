#include "dockmine/core/pipeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "dockmine/analyzer/pipeline.h"
#include "dockmine/obs/journal.h"
#include "dockmine/obs/obs.h"
#include "dockmine/obs/span.h"
#include "dockmine/registry/manifest.h"
#include "dockmine/registry/throttle.h"
#include "dockmine/stats/cdf.h"
#include "dockmine/util/thread_pool.h"

namespace dockmine::core {

namespace {

struct PipelineMetrics {
  obs::Gauge& queue_depth;
  obs::Histogram& push_wait_ms;
  obs::Histogram& pop_wait_ms;
  obs::Histogram& queue_wait_ms;

  static PipelineMetrics& get() {
    auto& reg = obs::Registry::global();
    static PipelineMetrics m{
        reg.gauge("dockmine_pipeline_queue_depth"),
        reg.histogram("dockmine_pipeline_queue_push_wait_ms"),
        reg.histogram("dockmine_pipeline_queue_pop_wait_ms"),
        reg.histogram("dockmine_pipeline_queue_wait_ms")};
    return m;
  }
};

/// Staged (and serial) execution: download everything, barrier, analyze.
/// Unique layer blobs delivered by the downloader are kept in a digest map
/// so the analysis stage reads the downloaded bytes instead of re-fetching
/// from the registry.
util::Status execute_staged(const PipelineOptions& options,
                            registry::Source& source,
                            std::size_t download_workers,
                            std::size_t analyze_workers,
                            const analyzer::AnalysisPipeline::Sink& sink,
                            PipelineResult& result) {
  auto& tracer = obs::Tracer::global();

  downloader::Options dl_options;
  dl_options.workers = download_workers;
  dl_options.checkpoint = options.checkpoint;
  dl_options.cancel = options.cancel;
  dl_options.deliver_resumed = options.checkpoint != nullptr;
  downloader::Downloader downloader(source, dl_options);

  std::unordered_map<digest::Digest, blob::BlobPtr, digest::DigestHash> blobs;
  {
    const auto span = tracer.span("download");
    result.download = downloader.run(
        result.crawl.repositories, [&](downloader::DownloadedImage&& image) {
          for (std::size_t i = 0; i < image.manifest.layers.size(); ++i) {
            blobs.emplace(image.manifest.layers[i].digest,
                          std::move(image.layer_blobs[i]));
          }
          result.manifests.push_back(std::move(image.manifest));
        });
  }

  analyzer::AnalysisPipeline::Options an_options;
  an_options.workers = analyze_workers;
  analyzer::AnalysisPipeline analysis(an_options);
  {
    // Worker-side untar/classify totals land under "pipeline/analyze/..."
    // via the analysis pipeline's record_at (it reads our open path).
    const auto span = tracer.span("analyze");
    auto store = analysis.run(
        result.manifests,
        [&](const digest::Digest& digest) -> util::Result<blob::BlobPtr> {
          auto it = blobs.find(digest);
          if (it != blobs.end() && it->second != nullptr) return it->second;
          return source.fetch_blob(digest);
        },
        sink);
    if (!store.ok()) return std::move(store).error();
    result.layer_profiles = std::move(store).value();
  }
  return util::Status::success();
}

/// Streamed execution: downloader workers push verified blobs into a
/// bounded queue, analyzer workers drain it concurrently. The downloader
/// runs with retain_blobs off, so the queue (not a run-wide cache) is the
/// only place blob bytes live between the stages.
util::Status execute_streamed(const PipelineOptions& options,
                              registry::Source& source,
                              std::size_t download_workers,
                              std::size_t analyze_workers,
                              const analyzer::AnalysisPipeline::Sink& sink,
                              PipelineResult& result) {
  auto& tracer = obs::Tracer::global();
  // One span covers the overlapped stages; the analyzer session captures
  // this path at construction, so its gunzip/classify/untar totals land
  // under "pipeline/stream/...".
  const auto span = tracer.span("stream");

  analyzer::AnalysisPipeline analysis;
  analyzer::AnalysisPipeline::Session session(analysis, sink);

  struct Item {
    digest::Digest digest;
    blob::BlobPtr blob;
    // Hand-off instrumentation: when the producer stamped it (obs clock)
    // and which span was open there (the layer's download event), so the
    // consumer can measure queue wait and parent its analyze event across
    // the thread hop.
    double enqueue_ms = 0.0;
    obs::TraceContext ctx{};
  };
  util::BoundedQueue<Item> queue(std::max<std::size_t>(1, options.queue_depth));
  std::atomic<std::uint64_t> enqueued{0};
  std::atomic<std::uint64_t> stalls{0};
  const bool timed = obs::enabled();
  PipelineMetrics& metrics = PipelineMetrics::get();

  std::vector<std::thread> consumers;
  consumers.reserve(std::max<std::size_t>(1, analyze_workers));
  for (std::size_t i = 0; i < std::max<std::size_t>(1, analyze_workers); ++i) {
    consumers.emplace_back([&] {
      for (;;) {
        const double wait_start = timed ? obs::now_ms() : 0.0;
        auto item = queue.pop();
        const double popped = timed ? obs::now_ms() : 0.0;
        if (timed) {
          metrics.pop_wait_ms.observe(popped - wait_start);
          metrics.queue_depth.set(static_cast<std::int64_t>(queue.size()));
        }
        if (!item) return;  // closed and drained
        if (timed) {
          // Hand-off latency: producer stamp -> consumer pop (covers time
          // in the queue plus any producer backpressure stall).
          metrics.queue_wait_ms.observe(popped - item->enqueue_ms);
          obs::record_event("queue_wait", obs::EventKind::kQueueWait,
                            item->enqueue_ms, popped, item->ctx);
        }
        {
          // Adopt the producer's context so the analyze event parents to
          // this layer's download event, not to this consumer thread.
          obs::ContextGuard adopt(item->ctx);
          session.analyze(item->digest, *item->blob);
        }
        if (options.on_layer_analyzed) {
          options.on_layer_analyzed(session.layers_analyzed());
        }
      }
    });
  }

  downloader::Options dl_options;
  dl_options.workers = download_workers;
  dl_options.checkpoint = options.checkpoint;
  dl_options.cancel = options.cancel;
  dl_options.deliver_resumed = options.checkpoint != nullptr;
  dl_options.retain_blobs = false;
  dl_options.layer_sink = [&](const digest::Digest& digest,
                              const blob::BlobPtr& blob) {
    Item item{digest, blob};
    if (timed) {
      item.enqueue_ms = obs::now_ms();
      item.ctx = obs::current_trace_context();
    }
    enqueued.fetch_add(1, std::memory_order_relaxed);
    if (!queue.try_push(item)) {
      // Full: this is backpressure working. Count the stall, then block.
      stalls.fetch_add(1, std::memory_order_relaxed);
      const double wait_start = timed ? obs::now_ms() : 0.0;
      const obs::TraceContext push_ctx = item.ctx;
      queue.push(std::move(item));
      if (timed) {
        const double pushed = obs::now_ms();
        metrics.push_wait_ms.observe(pushed - wait_start);
        obs::record_event("queue_push_wait", obs::EventKind::kQueueWait,
                          wait_start, pushed, push_ctx);
      }
    }
    if (timed) metrics.queue_depth.set(static_cast<std::int64_t>(queue.size()));
  };
  downloader::Downloader downloader(source, dl_options);

  result.download = downloader.run(
      result.crawl.repositories, [&](downloader::DownloadedImage&& image) {
        result.manifests.push_back(std::move(image.manifest));
      });
  queue.close();
  for (auto& consumer : consumers) consumer.join();

  result.stream.layers_enqueued = enqueued.load(std::memory_order_relaxed);
  result.stream.layers_analyzed = session.layers_analyzed();
  result.stream.queue_capacity = queue.capacity();
  result.stream.queue_peak = queue.peak();
  result.stream.producer_stalls = stalls.load(std::memory_order_relaxed);

  if (auto status = session.status(); !status.ok()) return status;
  if (auto status = session.finish(result.manifests); !status.ok()) {
    return status;
  }
  result.layer_profiles = session.take_store();
  return util::Status::success();
}

}  // namespace

util::Result<PipelineResult> run_end_to_end(const PipelineOptions& options) {
  PipelineResult result;
  auto& tracer = obs::Tracer::global();
  const auto pipeline_span = tracer.span("pipeline");

  // --- build & publish the snapshot (or adopt an external registry) ---
  registry::Service owned_service;
  registry::Service& service = options.external_service != nullptr
                                   ? *options.external_service
                                   : owned_service;
  if (options.external_service == nullptr) {
    synth::HubModel hub(options.calibration, options.scale);
    synth::Materializer materializer(hub, options.gzip_level);
    const auto span = tracer.span("materialize");
    auto pushed = materializer.populate(service);
    if (!pushed.ok()) return std::move(pushed).error();
    result.manifests_pushed = pushed.value();
  }

  // --- source decorator chain, composed bottom-up ---
  //   Downloader -> [Throttled ->] [Resilient -> Faulty ->] Service
  registry::Source* source = &service;
  std::optional<registry::FaultySource> faulty;
  std::optional<registry::ResilientSource> resilient;
  std::optional<registry::ThrottledSource> throttled;
  if (options.faults != nullptr) {
    faulty.emplace(service, *options.faults);
    resilient.emplace(*faulty, options.retry, options.breaker,
                      options.faults->seed);
    source = &*resilient;
  }
  if (options.network_scale > 0.0) {
    throttled.emplace(*source, service.cost_model(), options.network_scale);
    source = &*throttled;
  }

  // --- crawl ---
  const auto pipeline_start = std::chrono::steady_clock::now();
  registry::SearchIndex index(service,
                              synth::Calibration::kSearchDuplicateFactor,
                              options.scale.seed);
  crawler::Crawler crawler(index);
  {
    const auto span = tracer.span("crawl");
    result.crawl = crawler.crawl_all();
  }

  // --- multi-node: ownership pass over the GLOBAL crawl order ---
  // Every node computes the same assignment locally against the
  // deterministic registry: the first repository whose unauthenticated
  // manifest fetch succeeds claims each of its not-yet-owned layers for
  // node (crawl index % node_count). A node indexes only the layers it
  // owns, so the union of all nodes' shard sets covers each unique layer
  // of the deliverable set exactly once — no coordination, no double
  // counting, and the merged report matches a single-node run bit for bit.
  const std::uint32_t node_count = std::max<std::uint32_t>(1, options.node_count);
  std::unordered_map<std::uint64_t, std::uint32_t> layer_owner;
  if (node_count > 1) {
    const auto span = tracer.span("ownership");
    for (std::size_t r = 0; r < result.crawl.repositories.size(); ++r) {
      auto manifest_json = service.get_manifest(result.crawl.repositories[r],
                                                "latest", /*authenticated=*/false);
      if (!manifest_json.ok()) continue;
      auto manifest = registry::manifest_from_json(manifest_json.value());
      if (!manifest.ok()) continue;
      for (const auto& ref : manifest.value().layers) {
        layer_owner.emplace(ref.digest.key64(),
                            static_cast<std::uint32_t>(r % node_count));
      }
    }
    // This node downloads only its repository partition.
    std::vector<std::string> mine;
    for (std::size_t r = 0; r < result.crawl.repositories.size(); ++r) {
      if (r % node_count == options.node_index) {
        mine.push_back(std::move(result.crawl.repositories[r]));
      }
    }
    result.crawl.repositories = std::move(mine);
  }

  // --- download + analyze, per execution mode ---
  std::optional<shard::ShardedDedupIndex> sharded;
  if (options.run_file_dedup && options.shard.enabled()) {
    sharded.emplace(options.shard);
  } else if (options.run_file_dedup) {
    result.file_index = std::make_unique<dedup::FileDedupIndex>(1 << 16);
  }
  std::unordered_map<std::uint64_t, std::uint32_t> layer_dense;

  analyzer::AnalysisPipeline::Sink sink;
  if (result.file_index) {
    sink.on_file = [&](const digest::Digest& layer_digest,
                       const analyzer::FileRecord& record) {
      auto [it, inserted] = layer_dense.emplace(
          layer_digest.key64(),
          static_cast<std::uint32_t>(layer_dense.size()));
      result.file_index->add(record.digest, record.size, record.type,
                             it->second);
    };
  } else if (sharded) {
    // Lock-free routing: delivered outside the session mutex, each worker
    // thread appends to its own per-shard maps. The layer id is derived
    // from the layer digest (not a shared dense-id map, which would need a
    // lock); it only feeds first_layer/multi_layer, which the canonical
    // report deliberately excludes.
    const bool filter_by_owner = node_count > 1;
    sink.on_file_concurrent = [&, filter_by_owner](
                                  const digest::Digest& layer_digest,
                                  const analyzer::FileRecord& record) {
      if (filter_by_owner) {
        auto it = layer_owner.find(layer_digest.key64());
        if (it == layer_owner.end() || it->second != options.node_index) return;
      }
      sharded->local_writer().add(
          record.digest, record.size, record.type,
          static_cast<std::uint32_t>(layer_digest.key64() >> 32));
    };
  }
  sink.on_image = [&](const analyzer::ImageProfile& profile) {
    result.images.push_back(profile);
  };

  const bool serial = options.mode == ExecutionMode::kSerial;
  const std::size_t download_workers = serial ? 1 : options.download_workers;
  const std::size_t analyze_workers = serial ? 1 : options.analyze_workers;
  util::Status status =
      options.mode == ExecutionMode::kStreamed
          ? execute_streamed(options, *source, download_workers,
                             analyze_workers, sink, result)
          : execute_staged(options, *source, download_workers, analyze_workers,
                           sink, result);
  if (!status.ok()) return status.error();

  // --- layer sharing over the downloaded manifests ---
  {
    const auto span = tracer.span("dedup");
    std::vector<dedup::LayerSharingAnalysis::LayerUse> uses;
    for (const auto& manifest : result.manifests) {
      uses.clear();
      for (const auto& ref : manifest.layers) {
        uses.push_back({ref.digest.key64(), ref.compressed_size});
      }
      result.sharing.add_image(uses);
    }
  }

  // --- fold the sharded index back into exact aggregates ---
  if (sharded) {
    const auto span = tracer.span("shard_merge");
    if (!options.shard_export_dir.empty()) {
      auto manifest = sharded->export_shard_set(options.shard_export_dir);
      if (!manifest.ok()) return std::move(manifest).error();
      result.shard_summary.export_manifest = std::move(manifest).value();
    }
    shard::ShardMerger merger;
    if (auto s = sharded->seal_into(merger); !s.ok()) return s.error();
    auto aggregates = merger.merge_aggregates();
    if (!aggregates.ok()) return std::move(aggregates).error();
    result.shard_summary.runs_merged = merger.stats().runs;
    result.shard_dedup = std::move(aggregates).value();

    const shard::SpillStats spill = sharded->stats();
    result.shard_summary.enabled = true;
    result.shard_summary.shards = sharded->shards();
    result.shard_summary.observations = sharded->observations();
    result.shard_summary.distinct_contents =
        result.shard_dedup->distinct_contents;
    result.shard_summary.metadata_conflicts =
        sharded->metadata_conflicts() + result.shard_dedup->metadata_conflicts;
    result.shard_summary.spills = spill.spills;
    result.shard_summary.spilled_bytes = spill.spilled_bytes;
    result.shard_summary.peak_resident_bytes = spill.peak_resident_bytes;
  }

  result.pipeline_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    pipeline_start)
          .count();
  result.service = service.stats();
  if (resilient) result.resilience = resilient->stats();
  if (faulty) result.fault_stats = faulty->stats();
  if (throttled) result.throttled_ms = throttled->throttled_ms();
  return result;
}

namespace {

/// Fixed quantile grid: enough points to pin distribution shape, few enough
/// to keep reports small. Quantiles are order statistics over a multiset,
/// so the emitted values are independent of sample insertion order.
json::Value ecdf_json(const stats::Ecdf& cdf) {
  static constexpr double kGrid[] = {0.0,  0.01, 0.05, 0.1,  0.25, 0.5,
                                     0.75, 0.9,  0.95, 0.99, 1.0};
  auto obj = json::Value::object();
  obj.set("samples", static_cast<std::uint64_t>(cdf.size()));
  auto values = json::Value::array();
  if (!cdf.empty()) {
    for (double q : kGrid) values.push_back(cdf.quantile(q));
  }
  obj.set("quantiles", std::move(values));
  return obj;
}

}  // namespace

json::Value analysis_report_json(const PipelineResult& result) {
  auto report = json::Value::object();

  // --- images: aggregates over the delivered image profiles ---
  {
    stats::Ecdf cis, fis, layers_per_image, files_per_image;
    std::uint64_t total_cis = 0;
    std::uint64_t total_fis = 0;
    for (const auto& image : result.images) {
      cis.add(static_cast<double>(image.cis));
      fis.add(static_cast<double>(image.fis));
      layers_per_image.add(static_cast<double>(image.layer_count));
      files_per_image.add(static_cast<double>(image.file_count));
      total_cis += image.cis;
      total_fis += image.fis;
    }
    auto images = json::Value::object();
    images.set("count", static_cast<std::uint64_t>(result.images.size()));
    images.set("total_cis", total_cis);
    images.set("total_fis", total_fis);
    images.set("cis", ecdf_json(cis));
    images.set("fis", ecdf_json(fis));
    images.set("layers_per_image", ecdf_json(layers_per_image));
    images.set("files_per_image", ecdf_json(files_per_image));
    report.set("images", std::move(images));
  }

  // --- layers: unique layers referenced by the delivered manifests ---
  // (not the raw profile store: under faults the streamed pipeline may have
  // analyzed layers of images that later failed, and those must not skew
  // the report).
  {
    std::unordered_set<digest::Digest, digest::DigestHash> seen;
    stats::Ecdf cls, fls, files_per_layer;
    std::uint64_t total_cls = 0;
    std::uint64_t total_fls = 0;
    std::uint64_t count = 0;
    for (const auto& manifest : result.manifests) {
      for (const auto& ref : manifest.layers) {
        if (!seen.insert(ref.digest).second) continue;
        auto profile = result.layer_profiles.find(ref.digest);
        if (!profile) continue;
        ++count;
        cls.add(static_cast<double>(profile->cls));
        fls.add(static_cast<double>(profile->fls));
        files_per_layer.add(static_cast<double>(profile->file_count));
        total_cls += profile->cls;
        total_fls += profile->fls;
      }
    }
    auto layers = json::Value::object();
    layers.set("count", count);
    layers.set("total_cls", total_cls);
    layers.set("total_fls", total_fls);
    layers.set("cls", ecdf_json(cls));
    layers.set("fls", ecdf_json(fls));
    layers.set("files_per_layer", ecdf_json(files_per_layer));
    report.set("layers", std::move(layers));
  }

  // --- layer sharing (totals are insertion-order independent) ---
  {
    auto sharing = json::Value::object();
    sharing.set("images", result.sharing.images_seen());
    sharing.set("distinct_layers", result.sharing.distinct_layers());
    sharing.set("logical_bytes", result.sharing.logical_bytes());
    sharing.set("physical_bytes", result.sharing.physical_bytes());
    sharing.set("sharing_ratio", result.sharing.sharing_ratio());
    report.set("sharing", std::move(sharing));
  }

  // --- file dedup (totals and per-content counts are order independent;
  // first_layer ids are not and are deliberately excluded) ---
  // The monolithic index and the sharded backend emit the same fields in
  // the same order from the same order-independent quantities, so the two
  // backends are byte-interchangeable here.
  if (result.file_index) {
    const dedup::DedupTotals totals = result.file_index->totals();
    auto dedup = json::Value::object();
    dedup.set("total_files", totals.total_files);
    dedup.set("unique_files", totals.unique_files);
    dedup.set("total_bytes", totals.total_bytes);
    dedup.set("unique_bytes", totals.unique_bytes);
    dedup.set("count_ratio", totals.count_ratio());
    dedup.set("capacity_ratio", totals.capacity_ratio());
    dedup.set("repeat_counts", ecdf_json(result.file_index->repeat_count_cdf()));
    report.set("dedup", std::move(dedup));
  } else if (result.shard_dedup) {
    const dedup::DedupTotals& totals = result.shard_dedup->totals;
    auto dedup = json::Value::object();
    dedup.set("total_files", totals.total_files);
    dedup.set("unique_files", totals.unique_files);
    dedup.set("total_bytes", totals.total_bytes);
    dedup.set("unique_bytes", totals.unique_bytes);
    dedup.set("count_ratio", totals.count_ratio());
    dedup.set("capacity_ratio", totals.capacity_ratio());
    dedup.set("repeat_counts", ecdf_json(result.shard_dedup->repeat_counts));
    report.set("dedup", std::move(dedup));
  }

  return report;
}

json::Value pipeline_report_json(const PipelineResult& result) {
  auto report = json::Value::object();
  {
    const downloader::DownloadStats& d = result.download;
    auto download = json::Value::object();
    download.set("attempted", d.attempted);
    download.set("succeeded", d.succeeded);
    download.set("failed_auth", d.failed_auth);
    download.set("failed_no_tag", d.failed_no_tag);
    download.set("failed_missing", d.failed_missing);
    download.set("failed_digest", d.failed_digest);
    download.set("failed_other", d.failed_other);
    download.set("repos_resumed", d.repos_resumed);
    download.set("repos_canceled", d.repos_canceled);
    download.set("layers_fetched", d.layers_fetched);
    download.set("layers_deduped", d.layers_deduped);
    download.set("layers_resumed", d.layers_resumed);
    download.set("bytes_downloaded", d.bytes_downloaded);
    report.set("download", std::move(download));
  }
  report.set("analysis", analysis_report_json(result));
  return report;
}

}  // namespace dockmine::core
