#include "dockmine/core/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>

#include "dockmine/util/bytes.h"

namespace dockmine::core {

FigureTable& FigureTable::row(std::string metric, std::string paper,
                              std::string measured, std::string note) {
  rows_.push_back(Row{std::move(metric), std::move(paper), std::move(measured),
                      std::move(note)});
  return *this;
}

void FigureTable::print(std::ostream& os) const {
  os << "\n=== " << figure_id_ << ": " << title_ << " ===\n";
  std::size_t w_metric = 24, w_paper = 12, w_measured = 12;
  for (const Row& row : rows_) {
    w_metric = std::max(w_metric, row.metric.size());
    w_paper = std::max(w_paper, row.paper.size());
    w_measured = std::max(w_measured, row.measured.size());
  }
  auto pad = [&os](const std::string& text, std::size_t width) {
    os << text;
    for (std::size_t i = text.size(); i < width + 2; ++i) os << ' ';
  };
  pad("metric", w_metric);
  pad("paper", w_paper);
  pad("measured", w_measured);
  os << "note\n";
  for (std::size_t i = 0; i < w_metric + w_paper + w_measured + 12; ++i) {
    os << '-';
  }
  os << '\n';
  for (const Row& row : rows_) {
    pad(row.metric, w_metric);
    pad(row.paper, w_paper);
    pad(row.measured, w_measured);
    os << row.note << '\n';
  }
}

std::string fmt_bytes(double bytes) {
  if (bytes < 0) bytes = 0;
  return util::format_bytes(static_cast<std::uint64_t>(std::llround(bytes)));
}

std::string fmt_count(double count) {
  if (count < 0) count = 0;
  if (count < 1e15) {
    return util::format_count(static_cast<std::uint64_t>(std::llround(count)));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3g", count);
  return buf;
}

std::string fmt_ratio(double ratio, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*fx", decimals, ratio);
  return buf;
}

std::string fmt_pct(double fraction, int decimals) {
  return util::format_percent(fraction, decimals);
}

void print_cdf(std::ostream& os, const std::string& caption,
               const stats::Ecdf& cdf, const ValueFormatter& fmt) {
  os << "  CDF " << caption << " (n=" << cdf.size() << ")\n";
  if (cdf.empty()) {
    os << "    <empty>\n";
    return;
  }
  static constexpr double kQuantiles[] = {0.01, 0.10, 0.25, 0.50,
                                          0.75, 0.90, 0.99};
  os << "    ";
  for (double q : kQuantiles) {
    char head[16];
    std::snprintf(head, sizeof head, "p%-2d=", static_cast<int>(q * 100));
    os << head << fmt(cdf.quantile(q)) << "  ";
  }
  os << "max=" << fmt(cdf.max()) << '\n';
}

void print_download_stats(std::ostream& os,
                          const downloader::DownloadStats& stats) {
  os << "  Download outcome (attempted=" << util::format_count(stats.attempted)
     << ")\n"
     << "    succeeded=" << util::format_count(stats.succeeded)
     << "  resumed=" << util::format_count(stats.repos_resumed)
     << "  failed: auth=" << util::format_count(stats.failed_auth)
     << " no_tag=" << util::format_count(stats.failed_no_tag)
     << " missing=" << util::format_count(stats.failed_missing)
     << " digest=" << util::format_count(stats.failed_digest)
     << " other=" << util::format_count(stats.failed_other) << '\n'
     << "    layers: fetched=" << util::format_count(stats.layers_fetched)
     << " deduped=" << util::format_count(stats.layers_deduped)
     << " resumed=" << util::format_count(stats.layers_resumed)
     << " digest_refetches=" << util::format_count(stats.retries) << '\n'
     << "    bytes: downloaded=" << util::format_bytes(stats.bytes_downloaded)
     << " discarded=" << util::format_bytes(stats.bytes_discarded) << "  wall="
     << stats.wall_seconds << "s\n";
}

void print_resilience(std::ostream& os, const registry::ResilienceStats& stats) {
  os << "  Resilience (requests=" << util::format_count(stats.requests)
     << ")\n"
     << "    attempts=" << util::format_count(stats.attempts)
     << "  retries=" << util::format_count(stats.retries)
     << "  successes=" << util::format_count(stats.successes)
     << "  permanent_failures=" << util::format_count(stats.permanent_failures)
     << '\n'
     << "    gave_up: attempts=" << util::format_count(stats.attempts_exhausted)
     << " budget=" << util::format_count(stats.budget_exhausted) << '\n'
     << "    breaker: opens=" << util::format_count(stats.breaker_opens)
     << " closes=" << util::format_count(stats.breaker_closes)
     << " rejections=" << util::format_count(stats.breaker_rejections) << '\n'
     << "    backoff_total=" << stats.backoff_ms << "ms\n";
}

void print_metrics(std::ostream& os, const obs::MetricsReport& report) {
  if (!report.metrics.counters.empty()) {
    os << "  Counters\n";
    for (const auto& [name, value] : report.metrics.counters) {
      os << "    " << std::left << std::setw(48) << name << std::right << ' '
         << value << '\n';
    }
  }
  if (!report.metrics.gauges.empty()) {
    os << "  Gauges\n";
    for (const auto& [name, value] : report.metrics.gauges) {
      os << "    " << std::left << std::setw(48) << name << std::right << ' '
         << value << '\n';
    }
  }
  if (!report.metrics.histograms.empty()) {
    os << "  Histograms (count / sum / p50 / p99)\n";
    for (const auto& hist : report.metrics.histograms) {
      os << "    " << std::left << std::setw(48) << hist.name << std::right
         << ' ' << hist.count << " / " << hist.sum;
      if (hist.count > 0) {
        os << " / " << hist.values.quantile(0.50) << " / "
           << hist.values.quantile(0.99);
      }
      os << '\n';
    }
  }
  if (!report.spans.empty()) {
    os << "  Spans (count / wall ms / cpu ms)\n";
    for (const auto& row : report.spans) {
      // Indent by hierarchy depth; print only the leaf name.
      std::size_t depth = 0;
      for (char c : row.path) {
        if (c == '/') ++depth;
      }
      const std::size_t slash = row.path.rfind('/');
      const std::string leaf =
          slash == std::string::npos ? row.path : row.path.substr(slash + 1);
      os << "    ";
      for (std::size_t i = 0; i < depth; ++i) os << "  ";
      os << std::left
         << std::setw(static_cast<int>(48 - 2 * std::min<std::size_t>(depth, 8)))
         << leaf << std::right << ' ' << row.count << " / " << row.wall_ms
         << " / " << row.cpu_ms << '\n';
    }
  }
}

void print_histogram(std::ostream& os, const std::string& caption,
                     const stats::LinearHistogram& hist,
                     const ValueFormatter& fmt) {
  os << "  Histogram " << caption << " (n=" << hist.total() << ")\n";
  std::uint64_t peak = 1;
  for (std::size_t i = 0; i < hist.bucket_count(); ++i) {
    peak = std::max(peak, hist.bucket(i));
  }
  for (std::size_t i = 0; i < hist.bucket_count(); ++i) {
    const std::uint64_t count = hist.bucket(i);
    if (count == 0) continue;
    const int bar = static_cast<int>(40.0 * static_cast<double>(count) /
                                     static_cast<double>(peak));
    os << "    [" << fmt(hist.bucket_lo(i)) << ", " << fmt(hist.bucket_hi(i))
       << ")  " << std::setw(10) << count << "  ";
    for (int b = 0; b < bar; ++b) os << '#';
    os << '\n';
  }
}

}  // namespace dockmine::core
