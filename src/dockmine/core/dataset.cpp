#include "dockmine/core/dataset.h"

#include <algorithm>
#include <cstdlib>
#include <latch>
#include <unordered_map>

#include "dockmine/util/thread_pool.h"

#include "dockmine/util/stopwatch.h"

namespace dockmine::core {

DatasetStats DatasetStats::compute(const synth::HubModel& hub,
                                   DatasetOptions options) {
  util::Stopwatch clock;
  DatasetStats out;
  const auto& unique_layers = hub.unique_layers();
  out.unique_layer_count = unique_layers.size();

  // Dense index per layer id.
  std::unordered_map<synth::LayerId, std::uint32_t> dense;
  dense.reserve(unique_layers.size() * 2);
  for (std::size_t i = 0; i < unique_layers.size(); ++i) {
    dense.emplace(unique_layers[i], static_cast<std::uint32_t>(i));
  }

  // ---- pass 1: layers (aggregates + dedup shards) ----
  // Each worker streams a contiguous slice of the unique layers: layer
  // aggregates land in a pre-sized vector (disjoint writes), dedup
  // observations in a per-worker shard merged below. The result is
  // byte-identical to the serial pass (layer streams are deterministic
  // and the Ecdfs only see multisets).
  out.layer_aggs_.resize(unique_layers.size());
  const auto& layer_model = hub.layers();
  const auto& file_model = hub.files();

  const std::size_t shard_count =
      options.workers > 1
          ? std::min<std::size_t>(options.workers, unique_layers.size())
          : 1;
  std::vector<std::unique_ptr<dedup::FileDedupIndex>> shards;
  if (options.file_dedup) {
    for (std::size_t w = 0; w < shard_count; ++w) {
      shards.push_back(std::make_unique<dedup::FileDedupIndex>(1 << 18));
    }
  }

  auto process_slice = [&](std::size_t begin, std::size_t end,
                           dedup::FileDedupIndex* index) {
    for (std::size_t i = begin; i < end; ++i) {
      const synth::LayerSpec spec = hub.layer_spec(unique_layers[i]);
      LayerAgg agg;
      agg.file_count = spec.file_count;
      agg.dir_count = spec.dir_count;
      agg.max_depth = spec.max_depth;
      agg.cls = synth::LayerModel::kGzipBaseOverhead;
      layer_model.for_each_file(spec, [&](const synth::FileInstance& inst) {
        agg.fls += inst.size;
        const double ratio = file_model.gzip_ratio_of(inst.content);
        agg.cls += synth::LayerModel::kPerFileOverhead +
                   static_cast<std::uint64_t>(static_cast<double>(inst.size) /
                                              (ratio < 1.0 ? 1.0 : ratio));
        if (index != nullptr) {
          index->add(inst.content, inst.size, inst.type,
                     static_cast<std::uint32_t>(i));
        }
      });
      out.layer_aggs_[i] = agg;
    }
  };

  if (shard_count == 1) {
    process_slice(0, unique_layers.size(),
                  options.file_dedup ? shards[0].get() : nullptr);
  } else {
    util::ThreadPool pool(shard_count);
    const std::size_t per_shard =
        (unique_layers.size() + shard_count - 1) / shard_count;
    std::latch done(static_cast<std::ptrdiff_t>(shard_count));
    for (std::size_t w = 0; w < shard_count; ++w) {
      const std::size_t begin = w * per_shard;
      const std::size_t end =
          std::min(unique_layers.size(), begin + per_shard);
      pool.submit([&, w, begin, end] {
        process_slice(begin, end,
                      options.file_dedup ? shards[w].get() : nullptr);
        done.count_down();
      });
    }
    done.wait();
    pool.shutdown();
  }

  if (options.file_dedup) {
    out.file_index = std::move(shards[0]);
    for (std::size_t w = 1; w < shards.size(); ++w) {
      out.file_index->merge(*shards[w]);
    }
  }

  for (std::size_t i = 0; i < unique_layers.size(); ++i) {
    const LayerAgg& agg = out.layer_aggs_[i];
    out.layer_cls.add(static_cast<double>(agg.cls));
    out.layer_fls.add(static_cast<double>(agg.fls));
    if (agg.fls > 0) {
      out.layer_ratio.add(static_cast<double>(agg.fls) /
                          static_cast<double>(agg.cls));
    }
    out.layer_files.add(static_cast<double>(agg.file_count));
    out.layer_dirs.add(static_cast<double>(agg.dir_count));
    out.layer_depth.add(static_cast<double>(agg.max_depth));
    out.total_files += agg.file_count;
    out.total_fls_bytes += agg.fls;
    out.total_cls_bytes += agg.cls;
  }

  // ---- pass 2: images, sharing, popularity ----
  std::vector<dedup::LayerSharingAnalysis::LayerUse> uses;
  std::vector<std::vector<std::uint32_t>> image_layer_indices;
  const bool want_cross = options.cross_dup && out.file_index != nullptr;
  for (const synth::RepoSpec& repo : hub.repositories()) {
    out.repo_pulls.add(static_cast<double>(repo.pull_count));
    if (repo.image_index < 0 || repo.requires_auth) continue;
    const synth::ImageSpec& image =
        hub.images()[static_cast<std::size_t>(repo.image_index)];
    std::uint64_t cis = 0, fis = 0, files = 0, dirs = 0;
    uses.clear();
    std::vector<std::uint32_t> indices;
    indices.reserve(image.layers.size());
    for (synth::LayerId id : image.layers) {
      const std::uint32_t idx = dense.at(id);
      const LayerAgg& agg = out.layer_aggs_[idx];
      cis += agg.cls;
      fis += agg.fls;
      files += agg.file_count;
      dirs += agg.dir_count;
      uses.push_back({id, agg.cls});
      indices.push_back(idx);
    }
    out.sharing.add_image(uses);
    if (want_cross) image_layer_indices.push_back(std::move(indices));
    out.image_cis.add(static_cast<double>(cis));
    out.image_fis.add(static_cast<double>(fis));
    out.image_layers.add(static_cast<double>(image.layers.size()));
    out.image_files.add(static_cast<double>(files));
    out.image_dirs.add(static_cast<double>(dirs));
    ++out.image_count;
  }

  // ---- pass 3 (optional): cross-layer/image duplicates ----
  if (want_cross) {
    std::vector<std::uint32_t> refcounts(unique_layers.size(), 0);
    for (const auto& indices : image_layer_indices) {
      for (std::uint32_t idx : indices) ++refcounts[idx];
    }
    dedup::CrossDupAnalysis cross(*out.file_index, std::move(refcounts));
    for (std::size_t i = 0; i < unique_layers.size(); ++i) {
      const synth::LayerSpec spec = hub.layer_spec(unique_layers[i]);
      layer_model.for_each_file(spec, [&](const synth::FileInstance& inst) {
        cross.observe(static_cast<std::uint32_t>(i), inst.content);
      });
    }
    out.cross_layer_dup = cross.cross_layer_cdf();
    out.cross_image_dup = cross.cross_image_cdf(image_layer_indices);
  }

  out.compute_seconds = clock.seconds();
  return out;
}

synth::Scale scale_from_env(synth::Scale fallback) {
  if (const char* repos = std::getenv("DOCKMINE_REPOS")) {
    const long long value = std::atoll(repos);
    if (value > 0) fallback.repositories = static_cast<std::uint64_t>(value);
  }
  if (const char* seed = std::getenv("DOCKMINE_SEED")) {
    const long long value = std::atoll(seed);
    if (value > 0) fallback.seed = static_cast<std::uint64_t>(value);
  }
  return fallback;
}

}  // namespace dockmine::core
