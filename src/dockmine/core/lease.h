// Work leases for real multi-process distribution (DESIGN.md §12).
//
// The coordinator partitions one analysis run into `count` leases using the
// exact deterministic layer-ownership pass of the multi-node split: lease i
// means "run the pipeline as node i of count" (crawl the full snapshot,
// download/analyze/index only the owned partition, export the shard set).
// Because ownership is a pure function of (snapshot, count, i), a lease is
// idempotent — executing it twice, on different workers or after a crash,
// yields byte-identical exports, and the commutative merge_content_entries
// fold makes duplicate completions harmless once deduplicated by lease id.
//
// LeaseTable is the coordinator-side state machine:
//
//     pending ──assign──▶ running ──complete──▶ done
//        ▲                  │  │
//        └──release_owner───┘  └─assign_duplicate (straggler re-dispatch;
//           (worker death,        the lease stays running with two owners,
//            missed deadline,     first completion wins)
//            malformed frame,
//            reported failure)
//
// It is not internally synchronized; the Coordinator guards it with its
// state mutex. Time enters as explicit `now_ms` arguments so transitions
// are unit-testable on a virtual clock.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dockmine/core/pipeline.h"
#include "dockmine/util/error.h"

namespace dockmine::core {

/// What every lease of a distributed run executes: the seed-deterministic
/// pipeline configuration, identical on all workers. Shipped once per lease
/// grant; small enough to re-send on every reassignment.
struct JobSpec {
  std::uint64_t repositories = 300;
  std::uint64_t seed = 20170530;
  bool light_calibration = true;  ///< light vs paper synth calibration
  int gzip_level = 1;
  std::size_t download_workers = 4;
  std::size_t analyze_workers = 2;
  ExecutionMode mode = ExecutionMode::kStaged;
  std::uint32_t shards = 4;       ///< sharded dedup backend (must be >= 1)
  std::uint64_t spill_threshold_bytes = 64ull << 20;
};

/// Pipeline options for one lease: node `node_index` of `node_count`,
/// spilling and exporting its shard set into `export_dir`.
PipelineOptions lease_pipeline_options(const JobSpec& spec,
                                       std::uint32_t node_index,
                                       std::uint32_t node_count,
                                       const std::string& export_dir);

enum class LeaseState : std::uint8_t { kPending, kRunning, kDone };

struct LeaseStatus {
  std::uint32_t id = 0;          ///< == node_index of the partition
  LeaseState state = LeaseState::kPending;
  std::uint32_t attempts = 0;    ///< dispatches so far (all owners)
  /// Workers currently executing this lease (1, or 2 after a straggler
  /// re-dispatch). Keyed by the coordinator's connection ids.
  std::vector<std::uint64_t> owners;
  double started_ms = 0.0;       ///< first dispatch of the current attempt
  double completed_ms = 0.0;
  /// Earliest time the lease may be re-dispatched after a failure
  /// (decorrelated-jitter backoff, set by the coordinator).
  double not_before_ms = 0.0;
};

class LeaseTable {
 public:
  /// `count` leases; lease i is partition i of count.
  explicit LeaseTable(std::uint32_t count);

  std::uint32_t count() const noexcept {
    return static_cast<std::uint32_t>(leases_.size());
  }
  const LeaseStatus& status(std::uint32_t lease) const {
    return leases_.at(lease);
  }

  /// Lowest pending lease whose backoff window has elapsed.
  std::optional<std::uint32_t> next_pending(double now_ms) const;

  /// pending -> running under `worker`.
  util::Status assign(std::uint32_t lease, std::uint64_t worker,
                      double now_ms);

  /// Add a second owner to a running lease (straggler re-dispatch). The
  /// attempt counter advances; state stays running.
  util::Status assign_duplicate(std::uint32_t lease, std::uint64_t worker);

  /// running -> done. Returns true for the first completion; false for a
  /// duplicate (already done), which the caller must count and discard.
  bool complete(std::uint32_t lease, double now_ms);

  /// Remove `worker` from every lease it owns. Running leases left with no
  /// owner return to pending (their ids are returned — the reassignment
  /// set); leases still covered by a duplicate owner stay running.
  std::vector<std::uint32_t> release_owner(std::uint64_t worker,
                                           double backoff_until_ms);

  /// Remove `worker` from one lease after a reported failure (the worker
  /// itself stays alive). Returns true when the lease returned to pending
  /// (no duplicate owner remained); false when a duplicate owner still runs
  /// it or the worker was not an owner.
  bool fail(std::uint32_t lease, std::uint64_t worker,
            double backoff_until_ms);

  bool all_done() const noexcept { return done_ == leases_.size(); }
  std::uint32_t done() const noexcept { return done_; }

  /// Median wall time of completed leases (0 when none) — the baseline the
  /// straggler detector scales.
  double median_completed_ms() const;

 private:
  std::vector<LeaseStatus> leases_;
  std::vector<double> completed_runtimes_ms_;
  std::uint32_t done_ = 0;
};

}  // namespace dockmine::core
