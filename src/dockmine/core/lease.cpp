#include "dockmine/core/lease.h"

#include <algorithm>

namespace dockmine::core {

PipelineOptions lease_pipeline_options(const JobSpec& spec,
                                       std::uint32_t node_index,
                                       std::uint32_t node_count,
                                       const std::string& export_dir) {
  PipelineOptions options;
  options.scale = synth::Scale{spec.repositories, spec.seed};
  options.calibration = spec.light_calibration ? synth::Calibration::light()
                                               : synth::Calibration::paper();
  options.gzip_level = spec.gzip_level;
  options.download_workers = spec.download_workers;
  options.analyze_workers = spec.analyze_workers;
  options.mode = spec.mode;
  options.shard.shards = spec.shards == 0 ? 1 : spec.shards;
  options.shard.spill_threshold_bytes = spec.spill_threshold_bytes;
  // Spills land next to the exported runs so the whole lease result ships
  // as one file set, exactly like the in-process multi-node split.
  options.shard.spill_dir = export_dir;
  options.shard_export_dir = export_dir;
  options.node_count = node_count;
  options.node_index = node_index;
  return options;
}

LeaseTable::LeaseTable(std::uint32_t count) {
  leases_.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) leases_[i].id = i;
}

std::optional<std::uint32_t> LeaseTable::next_pending(double now_ms) const {
  for (const LeaseStatus& lease : leases_) {
    if (lease.state == LeaseState::kPending && now_ms >= lease.not_before_ms)
      return lease.id;
  }
  return std::nullopt;
}

util::Status LeaseTable::assign(std::uint32_t lease, std::uint64_t worker,
                                double now_ms) {
  if (lease >= leases_.size())
    return util::invalid_argument("lease table: no such lease");
  LeaseStatus& status = leases_[lease];
  if (status.state != LeaseState::kPending)
    return util::internal("lease table: assign of a non-pending lease");
  status.state = LeaseState::kRunning;
  status.owners.assign(1, worker);
  status.started_ms = now_ms;
  ++status.attempts;
  return util::Status::success();
}

util::Status LeaseTable::assign_duplicate(std::uint32_t lease,
                                          std::uint64_t worker) {
  if (lease >= leases_.size())
    return util::invalid_argument("lease table: no such lease");
  LeaseStatus& status = leases_[lease];
  if (status.state != LeaseState::kRunning)
    return util::internal("lease table: duplicate of a non-running lease");
  if (std::find(status.owners.begin(), status.owners.end(), worker) !=
      status.owners.end())
    return util::internal("lease table: worker already owns this lease");
  status.owners.push_back(worker);
  ++status.attempts;
  return util::Status::success();
}

bool LeaseTable::complete(std::uint32_t lease, double now_ms) {
  LeaseStatus& status = leases_.at(lease);
  if (status.state == LeaseState::kDone) return false;
  status.state = LeaseState::kDone;
  status.completed_ms = now_ms;
  status.owners.clear();
  completed_runtimes_ms_.push_back(now_ms - status.started_ms);
  ++done_;
  return true;
}

std::vector<std::uint32_t> LeaseTable::release_owner(std::uint64_t worker,
                                                     double backoff_until_ms) {
  std::vector<std::uint32_t> reassigned;
  for (LeaseStatus& status : leases_) {
    if (status.state != LeaseState::kRunning) continue;
    auto it = std::find(status.owners.begin(), status.owners.end(), worker);
    if (it == status.owners.end()) continue;
    status.owners.erase(it);
    if (status.owners.empty()) {
      status.state = LeaseState::kPending;
      status.not_before_ms = backoff_until_ms;
      reassigned.push_back(status.id);
    }
  }
  return reassigned;
}

bool LeaseTable::fail(std::uint32_t lease, std::uint64_t worker,
                      double backoff_until_ms) {
  LeaseStatus& status = leases_.at(lease);
  if (status.state != LeaseState::kRunning) return false;
  auto it = std::find(status.owners.begin(), status.owners.end(), worker);
  if (it == status.owners.end()) return false;
  status.owners.erase(it);
  if (!status.owners.empty()) return false;
  status.state = LeaseState::kPending;
  status.not_before_ms = backoff_until_ms;
  return true;
}

double LeaseTable::median_completed_ms() const {
  if (completed_runtimes_ms_.empty()) return 0.0;
  std::vector<double> sorted = completed_runtimes_ms_;
  std::sort(sorted.begin(), sorted.end());
  return sorted[sorted.size() / 2];
}

}  // namespace dockmine::core
