// Registry-side layer cache simulation.
//
// The paper's popularity analysis concludes that "Docker Hub is a good fit
// for caching popular repositories or images to reduce pull latencies"
// (§IV-B a). This simulator quantifies that: pulls arrive with the
// popularity skew of Fig. 8, each pull requests the image's layers, and an
// LRU cache of configurable byte capacity serves them. Used by
// bench_abl_cache and the popularity_cache_sim example.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "dockmine/util/rng.h"

namespace dockmine::core {

/// Byte-capacity LRU over 64-bit keys.
class LruCache {
 public:
  explicit LruCache(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Touch `key` of `size` bytes; returns true on hit. On miss the entry is
  /// admitted (evicting LRU entries as needed). Objects larger than the
  /// whole cache are never admitted.
  bool access(std::uint64_t key, std::uint64_t size);

  std::uint64_t used_bytes() const noexcept { return used_; }
  std::size_t entries() const noexcept { return map_.size(); }

 private:
  struct Node {
    std::uint64_t key;
    std::uint64_t size;
  };
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::list<Node> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Node>::iterator> map_;
};

/// One image as the cache sees it: its layers (key + compressed size).
struct CachedImage {
  std::vector<std::uint64_t> layer_keys;
  std::vector<std::uint64_t> layer_sizes;
  double popularity_weight = 1.0;  ///< pull-count share
};

struct CacheSimResult {
  std::uint64_t pulls = 0;
  std::uint64_t layer_requests = 0;
  std::uint64_t layer_hits = 0;
  std::uint64_t bytes_requested = 0;
  std::uint64_t bytes_hit = 0;

  double hit_ratio() const noexcept {
    return layer_requests == 0
               ? 0.0
               : static_cast<double>(layer_hits) /
                     static_cast<double>(layer_requests);
  }
  double byte_hit_ratio() const noexcept {
    return bytes_requested == 0
               ? 0.0
               : static_cast<double>(bytes_hit) /
                     static_cast<double>(bytes_requested);
  }
};

/// Run `pulls` popularity-weighted image pulls against an LRU layer cache
/// of `capacity_bytes`.
CacheSimResult simulate_layer_cache(const std::vector<CachedImage>& images,
                                    std::uint64_t capacity_bytes,
                                    std::uint64_t pulls, std::uint64_t seed);

}  // namespace dockmine::core
