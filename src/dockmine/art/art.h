// Adaptive radix tree (ART) over binary-safe, variable-length keys.
//
// The classic Leis/Kemper/Neumann design: radix nodes adapt their fanout
// representation to their population (Node4 -> Node16 -> Node48 -> Node256,
// shrinking back on erase), and single-descendant chains collapse into a
// per-node path-compression prefix. Keys are byte strings compared
// lexicographically; a key may be a prefix of another (the value for a key
// terminating mid-tree lives on the node it terminates at), and embedded
// zero bytes are ordinary bytes.
//
// Why the shard layer wants one: the dedup spill path must write run files
// in strictly ascending content-key order. A hash map pays an O(n log n)
// sort at every spill; the ART's in-order walk IS the sorted order, so
// freezing a run is a single linear pass (encode u64 keys big-endian —
// art::encode_key64 — and lexicographic order equals numeric order).
//
// Complexity: lookup/insert/erase are O(key length) with at most one node
// resize per operation; for_each is a linear in-order walk. Node sizes:
//   Node4/16  sorted byte array + parallel children (linear scan)
//   Node48    256-entry byte->slot index + dense 48-slot children
//   Node256   direct children[byte]
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace dockmine::art {

namespace detail {

/// Reference branch-byte probe for Node4/Node16: first index whose key
/// equals `byte`, or -1. Keys are sorted but a linear scan beats binary
/// search at these widths; kept as the non-SSE2 fallback and as the
/// baseline side of the bench_pipeline hotpath comparison.
inline int find_key_scalar(const std::uint8_t* keys, std::uint16_t count,
                           std::uint8_t byte) noexcept {
  for (std::uint16_t i = 0; i < count; ++i) {
    if (keys[i] == byte) return static_cast<int>(i);
  }
  return -1;
}

#if defined(__SSE2__)
/// Branchless probe: compare all 16 key slots at once, mask to the live
/// count, take the lowest set bit. Reading the full 16-byte array is safe —
/// it is an inline Node member — and slots >= count are masked out, so
/// their (zero-initialized) contents never produce a hit. This is the
/// probe on the hot descent path of every shard-spill ART operation.
inline int find_key(const std::uint8_t* keys, std::uint16_t count,
                    std::uint8_t byte) noexcept {
  const __m128i needle = _mm_set1_epi8(static_cast<char>(byte));
  const __m128i haystack =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys));
  int mask = _mm_movemask_epi8(_mm_cmpeq_epi8(haystack, needle));
  mask &= (1 << count) - 1;
  return mask == 0 ? -1 : __builtin_ctz(static_cast<unsigned>(mask));
}
#else
inline int find_key(const std::uint8_t* keys, std::uint16_t count,
                    std::uint8_t byte) noexcept {
  return find_key_scalar(keys, count, byte);
}
#endif

}  // namespace detail

/// Node-type census + footprint, for obs gauges and bench output.
struct Stats {
  std::uint64_t node4 = 0;
  std::uint64_t node16 = 0;
  std::uint64_t node48 = 0;
  std::uint64_t node256 = 0;
  std::uint64_t values = 0;       ///< keys stored
  std::uint64_t prefix_bytes = 0; ///< total path-compression bytes

  Stats& operator+=(const Stats& other) noexcept;
  std::uint64_t nodes() const noexcept {
    return node4 + node16 + node48 + node256;
  }
};

/// Big-endian u64 key codec: lexicographic byte order == numeric order, so
/// an in-order ART walk yields ascending u64 keys.
inline std::array<char, 8> encode_key64(std::uint64_t key) noexcept {
  std::array<char, 8> out;
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = static_cast<char>(key & 0xff);
    key >>= 8;
  }
  return out;
}

inline std::uint64_t decode_key64(std::string_view bytes) noexcept {
  std::uint64_t key = 0;
  for (char c : bytes.substr(0, 8)) {
    key = (key << 8) | static_cast<unsigned char>(c);
  }
  return key;
}

template <typename Value>
class Art {
 public:
  Art() = default;
  Art(const Art&) = delete;
  Art& operator=(const Art&) = delete;
  Art(Art&&) = default;
  Art& operator=(Art&&) = default;

  /// Find-or-default-insert. The reference is valid until the next
  /// insert/erase/clear.
  Value& operator[](std::string_view key) {
    ++version_;
    return insert_slot(root_, key);
  }

  Value* find(std::string_view key) noexcept {
    return const_cast<Value*>(std::as_const(*this).find(key));
  }

  const Value* find(std::string_view key) const noexcept {
    const Node* node = root_.get();
    while (node != nullptr) {
      const std::string_view prefix = node->prefix;
      if (key.size() < prefix.size() ||
          key.substr(0, prefix.size()) != prefix) {
        return nullptr;
      }
      key.remove_prefix(prefix.size());
      if (key.empty()) return node->has_value ? &node->value : nullptr;
      node = node->child(static_cast<std::uint8_t>(key.front()));
      key.remove_prefix(1);
    }
    return nullptr;
  }

  bool contains(std::string_view key) const noexcept {
    return find(key) != nullptr;
  }

  /// Remove `key`; true when it was present. Nodes shrink back through
  /// 256 -> 48 -> 16 -> 4 and single-descendant chains re-compress.
  bool erase(std::string_view key) {
    ++version_;
    return erase_rec(root_, key);
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  void clear() {
    root_.reset();
    size_ = 0;
    bytes_ = 0;
    ++version_;
  }

  /// In-order (lexicographic key) walk: fn(std::string_view key, const
  /// Value&). The key view is only valid during the callback.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::string key;
    key.reserve(64);
    walk(root_.get(), key, fn);
  }

  /// Approximate heap bytes owned by the tree, maintained incrementally
  /// (node headers, children capacity, prefix bytes). Deterministic for a
  /// given insert/erase history, which is what spill accounting needs.
  std::uint64_t memory_bytes() const noexcept { return bytes_; }

  /// Rough steady-state resident cost of one key under random-key load: a
  /// leaf node plus the amortized share of interior nodes (fan-out keeps
  /// interior count at roughly a third of leaf count). Used by spill
  /// sizing, which needs an estimate before any key exists.
  static constexpr std::size_t approx_bytes_per_key() noexcept {
    return sizeof(Node) + sizeof(Node) / 3;
  }

  Stats stats() const {
    Stats stats;
    census(root_.get(), stats);
    return stats;
  }

 private:
  enum class Kind : std::uint8_t { k4, k16, k48, k256 };

  struct Node;
  using NodePtr = std::unique_ptr<Node>;

  struct Node {
    Kind kind = Kind::k4;
    std::uint16_t count = 0;  ///< children in use
    bool has_value = false;
    Value value{};            ///< key terminating at the end of `prefix`
    std::string prefix;       ///< path-compression bytes
    std::array<std::uint8_t, 16> keys{};  ///< k4/k16: sorted branch bytes
    std::unique_ptr<std::array<std::int16_t, 256>> index;  ///< k48 only
    std::vector<NodePtr> children;

    static constexpr std::size_t capacity_of(Kind kind) noexcept {
      switch (kind) {
        case Kind::k4: return 4;
        case Kind::k16: return 16;
        case Kind::k48: return 48;
        case Kind::k256: return 256;
      }
      return 0;
    }

    const Node* child(std::uint8_t byte) const noexcept {
      switch (kind) {
        case Kind::k4:
        case Kind::k16: {
          const int i = detail::find_key(keys.data(), count, byte);
          return i < 0 ? nullptr : children[static_cast<std::size_t>(i)].get();
        }
        case Kind::k48: {
          const std::int16_t slot = (*index)[byte];
          return slot < 0 ? nullptr : children[static_cast<std::size_t>(slot)].get();
        }
        case Kind::k256:
          return children[byte].get();
      }
      return nullptr;
    }

    NodePtr* child_slot(std::uint8_t byte) noexcept {
      switch (kind) {
        case Kind::k4:
        case Kind::k16: {
          const int i = detail::find_key(keys.data(), count, byte);
          return i < 0 ? nullptr : &children[static_cast<std::size_t>(i)];
        }
        case Kind::k48: {
          const std::int16_t slot = (*index)[byte];
          return slot < 0 ? nullptr : &children[static_cast<std::size_t>(slot)];
        }
        case Kind::k256:
          return children[byte] ? &children[byte] : nullptr;
      }
      return nullptr;
    }
  };

  static std::uint64_t node_bytes(const Node& node) noexcept {
    return sizeof(Node) + node.prefix.size() +
           node.children.capacity() * sizeof(NodePtr) +
           (node.index ? sizeof(*node.index) : 0);
  }

  NodePtr make_node(Kind kind) {
    auto node = std::make_unique<Node>();
    node->kind = kind;
    node->children.reserve(Node::capacity_of(kind));
    if (kind == Kind::k48) {
      node->index = std::make_unique<std::array<std::int16_t, 256>>();
      node->index->fill(-1);
    }
    if (kind == Kind::k256) node->children.resize(256);
    bytes_ += node_bytes(*node);
    return node;
  }

  void drop_node_bytes(const Node& node) noexcept {
    bytes_ -= node_bytes(node);
  }

  void set_prefix(Node& node, std::string_view prefix) {
    bytes_ -= node.prefix.size();
    node.prefix.assign(prefix.data(), prefix.size());
    bytes_ += node.prefix.size();
  }

  /// Grow `node` to the next representation; preserves child order.
  void grow(NodePtr& slot) {
    Node& old = *slot;
    const Kind next = old.kind == Kind::k4
                          ? Kind::k16
                          : old.kind == Kind::k16 ? Kind::k48 : Kind::k256;
    NodePtr grown = make_node(next);
    adopt_scalar_fields(*grown, old);
    if (next == Kind::k16) {
      for (std::uint16_t i = 0; i < old.count; ++i) {
        grown->keys[i] = old.keys[i];
        grown->children.push_back(std::move(old.children[i]));
      }
    } else if (next == Kind::k48) {
      for (std::uint16_t i = 0; i < old.count; ++i) {
        (*grown->index)[old.keys[i]] = static_cast<std::int16_t>(i);
        grown->children.push_back(std::move(old.children[i]));
      }
    } else {  // k256 from k48
      for (int byte = 0; byte < 256; ++byte) {
        const std::int16_t from = (*old.index)[byte];
        if (from >= 0) {
          grown->children[static_cast<std::size_t>(byte)] =
              std::move(old.children[static_cast<std::size_t>(from)]);
        }
      }
    }
    grown->count = old.count;
    drop_node_bytes(old);
    slot = std::move(grown);
  }

  /// Shrink `node` one representation down (hysteresis thresholds live in
  /// the caller); preserves child order.
  void shrink(NodePtr& slot) {
    Node& old = *slot;
    const Kind next = old.kind == Kind::k256
                          ? Kind::k48
                          : old.kind == Kind::k48 ? Kind::k16 : Kind::k4;
    NodePtr shrunk = make_node(next);
    adopt_scalar_fields(*shrunk, old);
    std::uint16_t out = 0;
    for (int byte = 0; byte < 256; ++byte) {
      NodePtr* from = old.child_slot(static_cast<std::uint8_t>(byte));
      if (from == nullptr) continue;
      if (next == Kind::k48) {
        (*shrunk->index)[byte] = static_cast<std::int16_t>(out);
        shrunk->children.push_back(std::move(*from));
      } else {
        shrunk->keys[out] = static_cast<std::uint8_t>(byte);
        shrunk->children.push_back(std::move(*from));
      }
      ++out;
    }
    shrunk->count = out;
    drop_node_bytes(old);
    slot = std::move(shrunk);
  }

  void adopt_scalar_fields(Node& to, Node& from) {
    to.has_value = from.has_value;
    to.value = std::move(from.value);
    set_prefix(to, from.prefix);
  }

  /// Insert a child under `byte`, growing the node if its representation
  /// is full. `node` must not already have a child for `byte`.
  void add_child(NodePtr& slot, std::uint8_t byte, NodePtr child) {
    if (slot->count == Node::capacity_of(slot->kind) &&
        slot->kind != Kind::k256) {
      grow(slot);
    }
    Node& node = *slot;
    switch (node.kind) {
      case Kind::k4:
      case Kind::k16: {
        std::uint16_t pos = 0;
        while (pos < node.count && node.keys[pos] < byte) ++pos;
        node.children.insert(node.children.begin() + pos, std::move(child));
        for (std::uint16_t i = node.count; i > pos; --i) {
          node.keys[i] = node.keys[i - 1];
        }
        node.keys[pos] = byte;
        ++node.count;
        break;
      }
      case Kind::k48:
        (*node.index)[byte] = static_cast<std::int16_t>(node.count);
        node.children.push_back(std::move(child));
        ++node.count;
        break;
      case Kind::k256:
        node.children[byte] = std::move(child);
        ++node.count;
        break;
    }
  }

  /// Remove the child under `byte` (which must exist), keeping the dense
  /// representations dense and shrinking with hysteresis.
  void remove_child(NodePtr& slot, std::uint8_t byte) {
    Node& node = *slot;
    switch (node.kind) {
      case Kind::k4:
      case Kind::k16: {
        std::uint16_t pos = 0;
        while (node.keys[pos] != byte) ++pos;
        node.children.erase(node.children.begin() + pos);
        for (std::uint16_t i = pos; i + 1 < node.count; ++i) {
          node.keys[i] = node.keys[i + 1];
        }
        --node.count;
        break;
      }
      case Kind::k48: {
        const std::int16_t hole = (*node.index)[byte];
        const std::int16_t last = static_cast<std::int16_t>(node.count - 1);
        if (hole != last) {
          node.children[static_cast<std::size_t>(hole)] =
              std::move(node.children[static_cast<std::size_t>(last)]);
          for (int b = 0; b < 256; ++b) {
            if ((*node.index)[b] == last) {
              (*node.index)[b] = hole;
              break;
            }
          }
        }
        node.children.pop_back();
        (*node.index)[byte] = -1;
        --node.count;
        break;
      }
      case Kind::k256:
        node.children[byte].reset();
        --node.count;
        break;
    }
    // Hysteresis: shrink well below the smaller kind's capacity so a
    // plateau of insert/erase at the boundary doesn't thrash resizes.
    if ((node.kind == Kind::k256 && node.count <= 40) ||
        (node.kind == Kind::k48 && node.count <= 12) ||
        (node.kind == Kind::k16 && node.count <= 3)) {
      shrink(slot);
    }
  }

  static std::size_t common_prefix(std::string_view a,
                                   std::string_view b) noexcept {
    const std::size_t limit = std::min(a.size(), b.size());
    std::size_t i = 0;
    while (i < limit && a[i] == b[i]) ++i;
    return i;
  }

  Value& insert_slot(NodePtr& slot, std::string_view key) {
    if (!slot) {
      // Lazy expansion: the whole remaining key becomes one leaf node.
      slot = make_node(Kind::k4);
      set_prefix(*slot, key);
      slot->has_value = true;
      ++size_;
      return slot->value;
    }
    Node& node = *slot;
    const std::size_t shared = common_prefix(node.prefix, key);
    if (shared < node.prefix.size()) {
      // Prefix-compression split: a new parent owns the shared bytes; the
      // current node keeps its tail (minus the branch byte).
      NodePtr parent = make_node(Kind::k4);
      set_prefix(*parent, key.substr(0, shared));
      const std::uint8_t old_branch =
          static_cast<std::uint8_t>(node.prefix[shared]);
      std::string old_tail = node.prefix.substr(shared + 1);
      set_prefix(node, old_tail);
      NodePtr old_child = std::move(slot);
      slot = std::move(parent);
      add_child(slot, old_branch, std::move(old_child));
      if (shared == key.size()) {
        // Split path A: the new key terminates exactly at the split point.
        slot->has_value = true;
        ++size_;
        return slot->value;
      }
      // Split path B: the new key diverges — it becomes a sibling leaf.
      const std::uint8_t new_branch = static_cast<std::uint8_t>(key[shared]);
      NodePtr leaf = make_node(Kind::k4);
      set_prefix(*leaf, key.substr(shared + 1));
      leaf->has_value = true;
      ++size_;
      NodePtr* sibling = nullptr;
      add_child(slot, new_branch, std::move(leaf));
      sibling = slot->child_slot(new_branch);
      return (*sibling)->value;
    }
    key.remove_prefix(shared);
    if (key.empty()) {
      if (!node.has_value) {
        node.has_value = true;
        node.value = Value{};
        ++size_;
      }
      return node.value;
    }
    const std::uint8_t byte = static_cast<std::uint8_t>(key.front());
    key.remove_prefix(1);
    NodePtr* child = slot->child_slot(byte);
    if (child != nullptr) return insert_slot(*child, key);
    NodePtr leaf = make_node(Kind::k4);
    set_prefix(*leaf, key);
    leaf->has_value = true;
    ++size_;
    add_child(slot, byte, std::move(leaf));
    return (*slot->child_slot(byte))->value;
  }

  /// Collapse a node left with one child and no value into that child
  /// (prefix re-compression, the inverse of the insert split).
  void merge_single_child(NodePtr& slot) {
    Node& node = *slot;
    std::uint8_t byte = 0;
    NodePtr* only = nullptr;
    for (int b = 0; b < 256 && only == nullptr; ++b) {
      only = node.child_slot(static_cast<std::uint8_t>(b));
      byte = static_cast<std::uint8_t>(b);
    }
    NodePtr child = std::move(*only);
    std::string merged;
    merged.reserve(node.prefix.size() + 1 + child->prefix.size());
    merged.append(node.prefix);
    merged.push_back(static_cast<char>(byte));
    merged.append(child->prefix);
    set_prefix(*child, merged);
    drop_node_bytes(node);
    slot = std::move(child);
  }

  bool erase_rec(NodePtr& slot, std::string_view key) {
    if (!slot) return false;
    Node& node = *slot;
    if (key.size() < node.prefix.size() ||
        key.substr(0, node.prefix.size()) != node.prefix) {
      return false;
    }
    key.remove_prefix(node.prefix.size());
    if (key.empty()) {
      if (!node.has_value) return false;
      node.has_value = false;
      node.value = Value{};
      --size_;
    } else {
      const std::uint8_t byte = static_cast<std::uint8_t>(key.front());
      NodePtr* child = slot->child_slot(byte);
      if (child == nullptr || !erase_rec(*child, key.substr(1))) return false;
      if (!*child) remove_child(slot, byte);
    }
    // Structural fixups after the removal below this node.
    if (slot->count == 0 && !slot->has_value) {
      drop_node_bytes(*slot);
      slot.reset();  // parent unlinks us
    } else if (slot->count == 1 && !slot->has_value) {
      merge_single_child(slot);
    }
    return true;
  }

  template <typename Fn>
  void walk(const Node* node, std::string& key, Fn&& fn) const {
    if (node == nullptr) return;
    const std::size_t mark = key.size();
    key.append(node->prefix);
    if (node->has_value) fn(std::string_view(key), node->value);
    auto visit = [&](std::uint8_t byte, const Node* child) {
      key.push_back(static_cast<char>(byte));
      walk(child, key, fn);
      key.pop_back();
    };
    switch (node->kind) {
      case Kind::k4:
      case Kind::k16:
        for (std::uint16_t i = 0; i < node->count; ++i) {
          visit(node->keys[i], node->children[i].get());
        }
        break;
      case Kind::k48:
        for (int byte = 0; byte < 256; ++byte) {
          const std::int16_t slot = (*node->index)[byte];
          if (slot >= 0) {
            visit(static_cast<std::uint8_t>(byte),
                  node->children[static_cast<std::size_t>(slot)].get());
          }
        }
        break;
      case Kind::k256:
        for (int byte = 0; byte < 256; ++byte) {
          if (node->children[static_cast<std::size_t>(byte)]) {
            visit(static_cast<std::uint8_t>(byte),
                  node->children[static_cast<std::size_t>(byte)].get());
          }
        }
        break;
    }
    key.resize(mark);
  }

  void census(const Node* node, Stats& stats) const {
    if (node == nullptr) return;
    switch (node->kind) {
      case Kind::k4: ++stats.node4; break;
      case Kind::k16: ++stats.node16; break;
      case Kind::k48: ++stats.node48; break;
      case Kind::k256: ++stats.node256; break;
    }
    if (node->has_value) ++stats.values;
    stats.prefix_bytes += node->prefix.size();
    for (const NodePtr& child : node->children) {
      census(child.get(), stats);
    }
  }

  NodePtr root_;
  std::size_t size_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t version_ = 0;  ///< mutation count (debug/assert hooks)
};

/// Convenience adapter for u64-keyed use (the shard content index): wraps
/// encode_key64 so callers keep thinking in numeric keys.
template <typename Value>
class Art64 {
 public:
  Value& operator[](std::uint64_t key) {
    const auto bytes = encode_key64(key);
    return tree_[std::string_view(bytes.data(), bytes.size())];
  }
  const Value* find(std::uint64_t key) const noexcept {
    const auto bytes = encode_key64(key);
    return tree_.find(std::string_view(bytes.data(), bytes.size()));
  }
  bool erase(std::uint64_t key) {
    const auto bytes = encode_key64(key);
    return tree_.erase(std::string_view(bytes.data(), bytes.size()));
  }
  std::size_t size() const noexcept { return tree_.size(); }
  bool empty() const noexcept { return tree_.empty(); }
  void clear() { tree_.clear(); }
  std::uint64_t memory_bytes() const noexcept { return tree_.memory_bytes(); }
  static constexpr std::size_t approx_bytes_per_key() noexcept {
    return Art<Value>::approx_bytes_per_key();
  }
  Stats stats() const { return tree_.stats(); }

  /// fn(std::uint64_t key, const Value&) in ascending numeric key order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    tree_.for_each([&](std::string_view key, const Value& value) {
      fn(decode_key64(key), value);
    });
  }

 private:
  Art<Value> tree_;
};

}  // namespace dockmine::art
