#include "dockmine/art/art.h"

namespace dockmine::art {

Stats& Stats::operator+=(const Stats& other) noexcept {
  node4 += other.node4;
  node16 += other.node16;
  node48 += other.node48;
  node256 += other.node256;
  values += other.values;
  prefix_bytes += other.prefix_bytes;
  return *this;
}

}  // namespace dockmine::art
