#include "dockmine/compress/gzip.h"

#include <zlib.h>

#include <cstring>

#include "dockmine/compress/crc32.h"

namespace dockmine::compress {

namespace {

constexpr std::uint8_t kMagic1 = 0x1f;
constexpr std::uint8_t kMagic2 = 0x8b;
constexpr std::uint8_t kMethodDeflate = 8;
constexpr std::uint8_t kFlagHcrc = 0x02;
constexpr std::uint8_t kFlagExtra = 0x04;
constexpr std::uint8_t kFlagName = 0x08;
constexpr std::uint8_t kFlagComment = 0x10;

void put_le32(std::string& out, std::uint32_t v) {
  out += static_cast<char>(v & 0xff);
  out += static_cast<char>((v >> 8) & 0xff);
  out += static_cast<char>((v >> 16) & 0xff);
  out += static_cast<char>((v >> 24) & 0xff);
}

std::uint32_t get_le32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// Raw DEFLATE (no zlib/gzip wrapper) of `raw`.
util::Result<std::string> deflate_raw(std::string_view raw, int level) {
  z_stream zs{};
  if (deflateInit2(&zs, level, Z_DEFLATED, /*windowBits=*/-15,
                   /*memLevel=*/8, Z_DEFAULT_STRATEGY) != Z_OK) {
    return util::internal("deflateInit2 failed");
  }
  std::string out;
  out.resize(deflateBound(&zs, static_cast<uLong>(raw.size())));
  zs.next_in = reinterpret_cast<Bytef*>(const_cast<char*>(raw.data()));
  zs.avail_in = static_cast<uInt>(raw.size());
  zs.next_out = reinterpret_cast<Bytef*>(out.data());
  zs.avail_out = static_cast<uInt>(out.size());
  const int rc = deflate(&zs, Z_FINISH);
  const std::size_t produced = out.size() - zs.avail_out;
  deflateEnd(&zs);
  if (rc != Z_STREAM_END) {
    return util::internal("deflate did not finish (rc=" + std::to_string(rc) + ")");
  }
  out.resize(produced);
  return out;
}

/// Raw INFLATE with an output cap.
util::Result<std::string> inflate_raw(std::string_view body,
                                      std::uint64_t max_output) {
  z_stream zs{};
  if (inflateInit2(&zs, /*windowBits=*/-15) != Z_OK) {
    return util::internal("inflateInit2 failed");
  }
  std::string out;
  std::string chunk(256 * 1024, '\0');
  zs.next_in = reinterpret_cast<Bytef*>(const_cast<char*>(body.data()));
  zs.avail_in = static_cast<uInt>(body.size());
  int rc = Z_OK;
  while (rc != Z_STREAM_END) {
    zs.next_out = reinterpret_cast<Bytef*>(chunk.data());
    zs.avail_out = static_cast<uInt>(chunk.size());
    rc = inflate(&zs, Z_NO_FLUSH);
    if (rc != Z_OK && rc != Z_STREAM_END) {
      inflateEnd(&zs);
      return util::corrupt("inflate failed (rc=" + std::to_string(rc) + ")");
    }
    out.append(chunk.data(), chunk.size() - zs.avail_out);
    if (out.size() > max_output) {
      inflateEnd(&zs);
      return util::out_of_range("decompressed size exceeds cap");
    }
    if (rc == Z_OK && zs.avail_in == 0 && zs.avail_out != 0) {
      inflateEnd(&zs);
      return util::corrupt("truncated deflate stream");
    }
  }
  inflateEnd(&zs);
  return out;
}

}  // namespace

util::Result<std::string> gzip_compress(std::string_view raw, int level) {
  if (level < 1 || level > 9) {
    return util::invalid_argument("gzip level must be 1..9");
  }
  auto body = deflate_raw(raw, level);
  if (!body.ok()) return std::move(body).error();

  std::string out;
  out.reserve(body.value().size() + 18);
  out += static_cast<char>(kMagic1);
  out += static_cast<char>(kMagic2);
  out += static_cast<char>(kMethodDeflate);
  out += '\0';                      // FLG: no optional fields
  put_le32(out, 0);                 // MTIME: 0 => no timestamp (reproducible)
  out += static_cast<char>(level == 9 ? 2 : level == 1 ? 4 : 0);  // XFL
  out += static_cast<char>(0xff);   // OS: unknown
  out += body.value();
  put_le32(out, Crc32::of(raw));
  put_le32(out, static_cast<std::uint32_t>(raw.size() & 0xffffffffULL));
  return out;
}

util::Result<GzipInfo> gzip_probe(std::string_view member) {
  const auto* p = reinterpret_cast<const unsigned char*>(member.data());
  if (member.size() < 18) return util::corrupt("gzip member too short");
  if (p[0] != kMagic1 || p[1] != kMagic2) {
    return util::corrupt("bad gzip magic");
  }
  GzipInfo info;
  info.compression_method = p[2];
  if (info.compression_method != kMethodDeflate) {
    return util::corrupt("unsupported gzip compression method " +
                         std::to_string(p[2]));
  }
  const std::uint8_t flags = p[3];
  info.mtime = get_le32(p + 4);
  std::size_t pos = 10;
  if (flags & kFlagExtra) {
    if (pos + 2 > member.size()) return util::corrupt("truncated FEXTRA");
    const std::size_t xlen = p[pos] | (static_cast<std::size_t>(p[pos + 1]) << 8);
    pos += 2 + xlen;
    if (pos > member.size()) return util::corrupt("truncated FEXTRA data");
  }
  if (flags & kFlagName) {
    while (pos < member.size() && p[pos] != 0) {
      info.original_name += static_cast<char>(p[pos++]);
    }
    if (pos >= member.size()) return util::corrupt("unterminated FNAME");
    ++pos;
  }
  if (flags & kFlagComment) {
    while (pos < member.size() && p[pos] != 0) ++pos;
    if (pos >= member.size()) return util::corrupt("unterminated FCOMMENT");
    ++pos;
  }
  if (flags & kFlagHcrc) {
    pos += 2;
    if (pos > member.size()) return util::corrupt("truncated FHCRC");
  }
  info.header_size = pos;
  return info;
}

util::Result<std::string> gzip_decompress(std::string_view member,
                                          std::uint64_t max_output) {
  auto info = gzip_probe(member);
  if (!info.ok()) return std::move(info).error();
  const std::size_t header = info.value().header_size;
  if (member.size() < header + 8) return util::corrupt("gzip member too short");
  const std::string_view body =
      member.substr(header, member.size() - header - 8);
  auto raw = inflate_raw(body, max_output);
  if (!raw.ok()) return raw;

  const auto* trailer = reinterpret_cast<const unsigned char*>(
      member.data() + member.size() - 8);
  const std::uint32_t want_crc = get_le32(trailer);
  const std::uint32_t want_isize = get_le32(trailer + 4);
  if (Crc32::of(raw.value()) != want_crc) {
    return util::corrupt("gzip CRC mismatch");
  }
  if (static_cast<std::uint32_t>(raw.value().size() & 0xffffffffULL) != want_isize) {
    return util::corrupt("gzip ISIZE mismatch");
  }
  return raw;
}

}  // namespace dockmine::compress
