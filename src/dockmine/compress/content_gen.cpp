#include "dockmine/compress/content_gen.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace dockmine::compress {

namespace {

// Small dictionary: word soup deflates at a fairly stable ~3.5x, similar to
// typical source/config text.
constexpr std::array<std::string_view, 32> kWords = {
    "the",     "include", "return",  "static",  "config",  "version",
    "package", "install", "depends", "library", "service", "export",
    "import",  "value",   "string",  "buffer",  "offset",  "module",
    "public",  "size",    "docker",  "layer",   "image",   "registry",
    "file",    "path",    "data",    "index",   "count",   "total",
    "update",  "default"};

}  // namespace

void append_random(std::string& out, std::size_t size, util::Rng& rng) {
  out.reserve(out.size() + size);
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    const std::uint64_t v = rng();
    for (int b = 0; b < 8; ++b) out += static_cast<char>(v >> (8 * b));
  }
  if (i < size) {
    const std::uint64_t v = rng();
    for (; i < size; ++i) out += static_cast<char>(v >> (8 * (i & 7)));
  }
}

void append_text(std::string& out, std::size_t size, util::Rng& rng) {
  out.reserve(out.size() + size);
  std::size_t written = 0;
  std::size_t line = 0;
  while (written < size) {
    const std::string_view word = kWords[rng.uniform(kWords.size())];
    const std::size_t take = std::min(word.size(), size - written);
    out.append(word.data(), take);
    written += take;
    line += take;
    if (written < size) {
      out += (line > 60) ? '\n' : ' ';
      if (line > 60) line = 0;
      ++written;
    }
  }
}

void append_printable(std::string& out, std::size_t size, util::Rng& rng) {
  out.reserve(out.size() + size);
  for (std::size_t i = 0; i < size; ++i) {
    const std::uint64_t c = rng.uniform(96);
    out += c == 95 ? '\n' : static_cast<char>(32 + c);
  }
}

void append_zeros(std::string& out, std::size_t size) {
  out.append(size, '\0');
}

std::string generate(std::size_t size, double target_ratio, util::Rng& rng,
                     bool ascii_safe) {
  std::string out;
  out.reserve(size);
  if (size == 0) return out;

  // Measured deflate ratios of the pure block kinds (see compress_test).
  constexpr double kRandomRatio = 1.0;
  constexpr double kPrintableRatio = 1.31;
  constexpr double kTextRatio = 5.7;
  constexpr double kZeroRatio = 965.0;

  const double low_ratio = ascii_safe ? kPrintableRatio : kRandomRatio;
  target_ratio = std::max(low_ratio, target_ratio);
  if (ascii_safe) target_ratio = std::min(target_ratio, kTextRatio);

  // Two-component mix whose harmonic-mean compressed size matches the
  // target: compressed = f_a*size/r_a + f_b*size/r_b.
  double ratio_a, ratio_b;
  if (target_ratio <= kTextRatio) {
    ratio_a = low_ratio;   // incompressible-ish block
    ratio_b = kTextRatio;  // word soup
  } else {
    ratio_a = kTextRatio;
    ratio_b = kZeroRatio;
  }
  const double inv_target = 1.0 / target_ratio;
  const double inv_a = 1.0 / ratio_a;
  const double inv_b = 1.0 / ratio_b;
  const double frac_a =
      std::clamp((inv_target - inv_b) / (inv_a - inv_b), 0.0, 1.0);

  // Interleave in blocks large enough that deflate's 32 KiB window sees
  // homogeneous runs, so the pure-block ratios compose predictably.
  constexpr std::size_t kBlock = 16 * 1024;
  std::size_t remaining = size;
  double owed_a = 0.0;  // fractional-block accumulator
  while (remaining > 0) {
    const std::size_t take = std::min(kBlock, remaining);
    owed_a += frac_a;
    if (owed_a >= 1.0) {
      owed_a -= 1.0;
      if (ratio_a == kRandomRatio) {
        append_random(out, take, rng);
      } else if (ratio_a == kPrintableRatio) {
        append_printable(out, take, rng);
      } else {
        append_text(out, take, rng);
      }
    } else {
      if (ratio_b == kTextRatio) {
        append_text(out, take, rng);
      } else {
        append_zeros(out, take);
      }
    }
    remaining -= take;
  }
  return out;
}

std::string generate_with_magic(std::string_view magic, std::size_t size,
                                double target_ratio, util::Rng& rng,
                                bool ascii_safe) {
  if (size <= magic.size()) {
    return std::string(magic.substr(0, size));
  }
  std::string out(magic);
  out += generate(size - magic.size(), target_ratio, rng, ascii_safe);
  return out;
}

}  // namespace dockmine::compress
