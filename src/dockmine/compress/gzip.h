// Gzip (RFC 1952) member framing over zlib's raw DEFLATE.
//
// Docker layers travel as "gzip compressed tar archives" (paper §III-B).
// We produce and parse the gzip container ourselves — 10-byte header,
// optional FEXTRA/FNAME/FCOMMENT/FHCRC fields, CRC-32 + ISIZE trailer —
// and delegate only the DEFLATE bitstream to zlib (windowBits = -15).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "dockmine/util/error.h"

namespace dockmine::compress {

/// zlib compression level 1..9 (6 is the gzip default Docker uses).
inline constexpr int kDefaultLevel = 6;

/// Compress `raw` into one complete gzip member.
util::Result<std::string> gzip_compress(std::string_view raw,
                                        int level = kDefaultLevel);

/// Decompress one complete gzip member; verifies CRC-32 and ISIZE.
/// `max_output` caps the decompressed size (decompression-bomb guard).
util::Result<std::string> gzip_decompress(
    std::string_view member, std::uint64_t max_output = 1ULL << 34);

/// Header fields of a gzip member without decompressing the body.
struct GzipInfo {
  std::uint8_t compression_method = 8;
  std::uint32_t mtime = 0;
  std::string original_name;  // FNAME field if present
  std::size_t header_size = 0;
};
util::Result<GzipInfo> gzip_probe(std::string_view member);

}  // namespace dockmine::compress
