// Synthetic file content with controllable compressibility.
//
// Figure 4 of the paper measures FLS-to-CLS compression ratios (median 2.6,
// p90 4, max ~1026). To reproduce it with *real* gzip we need byte streams
// whose deflate ratio we can dial: a mix of (a) incompressible random bytes,
// (b) dictionary text resembling source/config files (ratio ~3-4), and
// (c) zero runs (ratio into the hundreds, like sparse DB files). The
// generator composes these per a target ratio.
#pragma once

#include <cstdint>
#include <string>

#include "dockmine/util/rng.h"

namespace dockmine::compress {

/// Append `size` incompressible bytes.
void append_random(std::string& out, std::size_t size, util::Rng& rng);

/// Append `size` bytes of English-like word soup (deflates ~5.7x).
void append_text(std::string& out, std::size_t size, util::Rng& rng);

/// Append `size` printable-ASCII random characters (deflates ~1.3x) —
/// the "incompressible" block for text files, where raw random bytes
/// would make the content classify as binary.
void append_printable(std::string& out, std::size_t size, util::Rng& rng);

/// Append `size` zero bytes (deflates ~1000x).
void append_zeros(std::string& out, std::size_t size);

/// Generate `size` bytes whose gzip ratio approximates `target_ratio`
/// (>= 1.0), by interleaving block kinds. With `ascii_safe` the output is
/// pure printable ASCII (text-typed files must not contain control bytes
/// or the classifier calls them binary); the achievable ratio range is
/// then [~1.3, ~5.7] and the target is clamped into it.
std::string generate(std::size_t size, double target_ratio, util::Rng& rng,
                     bool ascii_safe = false);

/// Content whose first bytes carry the given magic signature (so the
/// file-type classifier sees a realistic file) followed by filler with the
/// requested compressibility.
std::string generate_with_magic(std::string_view magic, std::size_t size,
                                double target_ratio, util::Rng& rng,
                                bool ascii_safe = false);

}  // namespace dockmine::compress
