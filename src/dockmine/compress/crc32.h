// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum in
// the gzip member trailer. Implemented from scratch (table-driven) so the
// gzip framing layer does not depend on zlib's utility functions; zlib is
// used for DEFLATE only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dockmine::compress {

class Crc32 {
 public:
  void update(const void* data, std::size_t size) noexcept;
  void update(std::string_view text) noexcept {
    update(text.data(), text.size());
  }

  std::uint32_t value() const noexcept { return ~state_; }
  void reset() noexcept { state_ = 0xffffffffu; }

  static std::uint32_t of(std::string_view data) noexcept {
    Crc32 crc;
    crc.update(data);
    return crc.value();
  }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

}  // namespace dockmine::compress
