// Three-level file-type taxonomy from the paper's Fig. 13.
//
// Level 1 (common vs non-common) is a property of aggregate capacity and is
// computed by the analysis, not the classifier. Level 2 is the type GROUP
// (EOL, source code, scripts, documents, archival, images, databases,
// others). Level 3 is the specific TYPE (ELF, Python byte-code, C/C++
// source, PNG, SQLite, ...). Every type the paper's Figs. 14-22 break out
// is represented.
#pragma once

#include <cstdint>
#include <string_view>

namespace dockmine::filetype {

enum class Group : std::uint8_t {
  kEol,        ///< executables, object code, and libraries
  kSourceCode,
  kScripts,
  kDocuments,
  kArchival,
  kImages,     ///< image *media* files (PNG...), not container images
  kDatabases,
  kOther,
};
inline constexpr std::size_t kGroupCount = 8;

enum class Type : std::uint8_t {
  // --- EOL (Fig. 16) ---
  kElfRelocatable,
  kElfSharedObject,
  kElfExecutable,
  kCoff,
  kPythonBytecode,   // "intermediate representation"
  kJavaClass,        // "intermediate representation"
  kTerminfo,         // "intermediate representation"
  kMsExecutable,     // PE / "MZ"
  kMachO,
  kDebRpmPackage,
  kStaticLibrary,    // ar archives (.a), the "libraries" bucket
  kOtherEol,
  // --- Source code (Fig. 17) ---
  kCSource,          // C/C++
  kPerlModule,
  kRubyModule,
  kPascalSource,
  kFortranSource,
  kBasicSource,      // Applesoft basic
  kLispSource,       // Lisp/Scheme
  // --- Scripts (Fig. 18) ---
  kPythonScript,
  kAwkScript,
  kRubyScript,
  kPerlScript,
  kPhpScript,
  kMakefile,
  kM4Script,
  kNodeScript,
  kTclScript,
  kShellScript,
  kOtherScript,
  // --- Documents (Fig. 19) ---
  kAsciiText,
  kUtf8Text,
  kIso8859Text,
  kXmlHtml,
  kPdfPs,
  kLatex,
  kOtherDocument,
  // --- Archival (Fig. 20) ---
  kZipGzip,
  kBzip2,
  kXz,
  kTarArchive,
  kOtherArchive,
  // --- Databases (Fig. 21) ---
  kBerkeleyDb,
  kMysql,
  kSqlite,
  kOtherDb,
  // --- Image media (Fig. 22) ---
  kPng,
  kJpeg,
  kSvg,
  kGif,
  kOtherImage,
  // --- Other ---
  kVideo,            // AVI, MPEG
  kEmpty,            // zero-byte file
  kOtherBinary,
  kTypeCount,        // sentinel
};
inline constexpr std::size_t kTypeCount =
    static_cast<std::size_t>(Type::kTypeCount);

/// Level-2 group a type belongs to.
Group group_of(Type type) noexcept;

/// Human-readable names matching the paper's figure labels.
std::string_view to_string(Group group) noexcept;
std::string_view to_string(Type type) noexcept;

/// "Intermediate representation" super-type used by Fig. 16 ("Com.").
bool is_intermediate_representation(Type type) noexcept;
/// ELF super-type.
bool is_elf(Type type) noexcept;

}  // namespace dockmine::filetype
