#include "dockmine/filetype/classifier.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace dockmine::filetype {

namespace {

using namespace std::string_view_literals;

// Magic signatures. Several (ELF subtypes, pyc, terminfo) encode more than
// a shared prefix; see classify() for the discriminating logic.
constexpr std::string_view kElfMagic = "\x7f""ELF"sv;
constexpr std::string_view kJavaMagic = "\xca\xfe\xba\xbe"sv;
constexpr std::string_view kPycMagic = "\x6f\x0d\x0d\x0a"sv;
constexpr std::string_view kTerminfoMagic = "\x1a\x01"sv;
constexpr std::string_view kPeMagic = "MZ"sv;
constexpr std::string_view kMachOMagic = "\xcf\xfa\xed\xfe"sv;
constexpr std::string_view kRpmMagic = "\xed\xab\xee\xdb"sv;
constexpr std::string_view kArMagic = "!<arch>\n"sv;
constexpr std::string_view kCoffMagic = "\x4c\x01\x4f\x43"sv;  // i386 COFF
constexpr std::string_view kGzipMagic = "\x1f\x8b"sv;
constexpr std::string_view kZipMagic = "PK\x03\x04"sv;
constexpr std::string_view kBzip2Magic = "BZh"sv;
constexpr std::string_view kXzMagic = "\xfd""7zXZ\x00"sv;
constexpr std::string_view kSqliteMagic = "SQLite format 3\x00"sv;
constexpr std::string_view kMysqlFrmMagic = "\xfe\x01\x09\x09"sv;
constexpr std::string_view kPngMagic = "\x89PNG\r\n\x1a\n"sv;
constexpr std::string_view kJpegMagic = "\xff\xd8\xff"sv;
constexpr std::string_view kGifMagic = "GIF8"sv;
constexpr std::string_view kPdfMagic = "%PDF-"sv;
constexpr std::string_view kPsMagic = "%!PS"sv;
constexpr std::string_view kRiffMagic = "RIFF"sv;
constexpr std::string_view kMpegMagic = "\x00\x00\x01\xba"sv;
// Berkeley DB: btree magic 0x00053162 little-endian at offset 12.
constexpr std::string_view kBdbMagicAt12 = "\x62\x31\x05\x00"sv;
constexpr std::string_view kAoutMagic = "\x07\x01\x00\x00"sv;     // a.out OMAGIC
constexpr std::string_view kRtfMagic = "{\\rtf1"sv;
constexpr std::string_view kCpioMagic = "070701"sv;               // cpio newc
constexpr std::string_view kGdbmMagic = "\x13\x57\x9a\xce"sv;
constexpr std::string_view kXpmMagic = "/* XPM */"sv;

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string_view basename_of(std::string_view path) noexcept {
  const std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

std::string_view extension_of(std::string_view path) noexcept {
  const std::string_view base = basename_of(path);
  const std::size_t dot = base.rfind('.');
  if (dot == std::string_view::npos || dot == 0) return {};
  return base.substr(dot + 1);
}

char lower(char c) noexcept {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (lower(a[i]) != lower(b[i])) return false;
  }
  return true;
}

/// Script type from a "#!" interpreter line.
Type shebang_type(std::string_view content) noexcept {
  const std::size_t eol = std::min(content.find('\n'), content.size());
  const std::string_view line = content.substr(0, eol);
  auto has = [&](std::string_view needle) {
    return line.find(needle) != std::string_view::npos;
  };
  if (has("python")) return Type::kPythonScript;
  if (has("awk")) return Type::kAwkScript;
  if (has("ruby")) return Type::kRubyScript;
  if (has("perl")) return Type::kPerlScript;
  if (has("php")) return Type::kPhpScript;
  if (has("node")) return Type::kNodeScript;
  if (has("tclsh") || has("wish")) return Type::kTclScript;
  if (has("bash") || has("/sh") || has("ash") || has("zsh") || has("ksh")) {
    return Type::kShellScript;
  }
  return Type::kOtherScript;
}

Type from_extension(std::string_view path) noexcept {
  const std::string_view base = basename_of(path);
  if (iequals(base, "Makefile") || iequals(base, "GNUmakefile")) {
    return Type::kMakefile;
  }
  const std::string_view ext = extension_of(path);
  struct ExtMap {
    std::string_view ext;
    Type type;
  };
  static constexpr std::array<ExtMap, 40> kMap = {{
      {"c", Type::kCSource},     {"h", Type::kCSource},
      {"cc", Type::kCSource},    {"cpp", Type::kCSource},
      {"hpp", Type::kCSource},   {"cxx", Type::kCSource},
      {"hh", Type::kCSource},
      {"pm", Type::kPerlModule}, {"rb", Type::kRubyModule},
      {"pas", Type::kPascalSource},
      {"f", Type::kFortranSource},  {"f90", Type::kFortranSource},
      {"for", Type::kFortranSource},
      {"bas", Type::kBasicSource},
      {"lisp", Type::kLispSource}, {"scm", Type::kLispSource},
      {"el", Type::kLispSource},
      {"py", Type::kPythonScript},  {"awk", Type::kAwkScript},
      {"pl", Type::kPerlScript},    {"php", Type::kPhpScript},
      {"mk", Type::kMakefile},      {"m4", Type::kM4Script},
      {"js", Type::kNodeScript},    {"tcl", Type::kTclScript},
      {"sh", Type::kShellScript},   {"bash", Type::kShellScript},
      {"tex", Type::kLatex},        {"sty", Type::kLatex},
      {"html", Type::kXmlHtml},     {"xml", Type::kXmlHtml},
      {"xhtml", Type::kXmlHtml},    {"svg", Type::kSvg},
      {"txt", Type::kAsciiText},    {"md", Type::kAsciiText},
      {"pyc", Type::kPythonBytecode},
      {"class", Type::kJavaClass},
      {"a", Type::kStaticLibrary},
      {"frm", Type::kMysql},
      {"tar", Type::kTarArchive},
  }};
  for (const auto& [e, t] : kMap) {
    if (iequals(ext, e)) return t;
  }
  return Type::kTypeCount;  // no extension verdict
}

bool is_utf8_multibyte(std::string_view content) noexcept {
  // Validate UTF-8 and require at least one multi-byte sequence.
  bool multi = false;
  std::size_t i = 0;
  while (i < content.size()) {
    const auto c = static_cast<unsigned char>(content[i]);
    std::size_t follow;
    if (c < 0x80) {
      follow = 0;
    } else if ((c >> 5) == 0x6) {
      follow = 1;
    } else if ((c >> 4) == 0xe) {
      follow = 2;
    } else if ((c >> 3) == 0x1e) {
      follow = 3;
    } else {
      return false;
    }
    if (follow > 0) {
      if (i + follow >= content.size()) {
        // Truncated trailing sequence in a prefix — accept.
        return multi;
      }
      for (std::size_t k = 1; k <= follow; ++k) {
        if ((static_cast<unsigned char>(content[i + k]) >> 6) != 0x2) {
          return false;
        }
      }
      multi = true;
    }
    i += follow + 1;
  }
  return multi;
}

}  // namespace

bool looks_ascii(std::string_view content) noexcept {
  if (content.empty()) return false;
  std::size_t printable = 0;
  for (char raw : content) {
    const auto c = static_cast<unsigned char>(raw);
    if (c >= 0x80) return false;
    if (c >= 0x20 || c == '\n' || c == '\r' || c == '\t') ++printable;
  }
  return printable * 100 >= content.size() * 95;
}

Type classify(std::string_view path, std::string_view content) noexcept {
  if (content.empty()) return Type::kEmpty;

  // ---- binary magic numbers ----
  if (starts_with(content, kElfMagic)) {
    // e_type is a 16-bit LE field at offset 16: 1=REL, 2=EXEC, 3=DYN.
    if (content.size() >= 18) {
      const auto e_type = static_cast<unsigned char>(content[16]);
      if (e_type == 1) return Type::kElfRelocatable;
      if (e_type == 3) return Type::kElfSharedObject;
    }
    return Type::kElfExecutable;
  }
  if (starts_with(content, kJavaMagic)) return Type::kJavaClass;
  if (starts_with(content, kPycMagic)) return Type::kPythonBytecode;
  if (starts_with(content, kCoffMagic)) return Type::kCoff;
  if (starts_with(content, kMachOMagic)) return Type::kMachO;
  if (starts_with(content, kRpmMagic)) return Type::kDebRpmPackage;
  if (starts_with(content, kArMagic)) {
    // A .deb is an ar archive whose first member is "debian-binary".
    if (content.substr(kArMagic.size(), 13) == "debian-binary") {
      return Type::kDebRpmPackage;
    }
    return Type::kStaticLibrary;
  }
  if (starts_with(content, kPngMagic)) return Type::kPng;
  if (starts_with(content, kJpegMagic)) return Type::kJpeg;
  if (starts_with(content, kGifMagic)) return Type::kGif;
  if (starts_with(content, kGzipMagic)) return Type::kZipGzip;
  if (starts_with(content, kZipMagic)) return Type::kZipGzip;
  if (starts_with(content, kBzip2Magic)) return Type::kBzip2;
  if (starts_with(content, kXzMagic)) return Type::kXz;
  if (starts_with(content, kSqliteMagic)) return Type::kSqlite;
  if (starts_with(content, kMysqlFrmMagic)) return Type::kMysql;
  if (content.size() >= 16 && content.substr(12, 4) == kBdbMagicAt12) {
    return Type::kBerkeleyDb;
  }
  if (starts_with(content, kPdfMagic) || starts_with(content, kPsMagic)) {
    return Type::kPdfPs;
  }
  if (starts_with(content, kRiffMagic)) {
    if (content.size() >= 12 && content.substr(8, 4) == "AVI ") {
      return Type::kVideo;
    }
    return Type::kOtherBinary;
  }
  if (starts_with(content, kMpegMagic)) return Type::kVideo;
  if (starts_with(content, kPeMagic)) return Type::kMsExecutable;
  if (starts_with(content, kTerminfoMagic)) return Type::kTerminfo;
  if (starts_with(content, kAoutMagic)) return Type::kOtherEol;
  if (starts_with(content, kRtfMagic)) return Type::kOtherDocument;
  if (starts_with(content, kCpioMagic)) return Type::kOtherArchive;
  if (starts_with(content, kGdbmMagic)) return Type::kOtherDb;
  if (starts_with(content, kXpmMagic)) return Type::kOtherImage;
  if (content.size() >= 262 && content.substr(257, 5) == "ustar") {
    return Type::kTarArchive;
  }

  // ---- interpreter line ----
  if (starts_with(content, "#!")) return shebang_type(content);

  // ---- textual magic ----
  if (starts_with(content, "<?php")) return Type::kPhpScript;
  if (starts_with(content, "<?xml")) {
    return content.find("<svg") != std::string_view::npos ? Type::kSvg
                                                          : Type::kXmlHtml;
  }
  if (starts_with(content, "<svg")) return Type::kSvg;
  if (starts_with(content, "<!DOCTYPE") || starts_with(content, "<html") ||
      starts_with(content, "<HTML")) {
    return Type::kXmlHtml;
  }
  if (starts_with(content, "\\documentclass") ||
      starts_with(content, "\\usepackage")) {
    return Type::kLatex;
  }
  if (starts_with(content, "# Makefile")) return Type::kMakefile;

  // ---- extension ----
  const Type ext_type = from_extension(path);
  if (ext_type != Type::kTypeCount) {
    // Heuristic refinement: a .rb with a shebang was handled above; a .rb
    // body that looks like plain prose is still a Ruby module per the
    // paper's methodology (file(1) keys on content, we accept extension).
    return ext_type;
  }

  // ---- content heuristics for un-suffixed text ----
  if (starts_with(content, "\xff\xfe") || starts_with(content, "\xfe\xff")) {
    return Type::kUtf8Text;  // UTF-16 BOM, bucketed with UTF text (Fig. 19)
  }
  {
    // Hard-binary screen: control bytes never appear in text encodings.
    std::size_t control = 0;
    for (char raw : content) {
      const auto c = static_cast<unsigned char>(raw);
      if (c < 0x09 || (c > 0x0d && c < 0x20)) ++control;
    }
    if (control * 50 > content.size()) return Type::kOtherBinary;  // > 2%
  }
  if (looks_ascii(content)) {
    // Recognizable source patterns without extensions.
    if (content.find("#include") != std::string_view::npos) {
      return Type::kCSource;
    }
    return Type::kAsciiText;
  }
  if (is_utf8_multibyte(content)) return Type::kUtf8Text;
  // High-bit bytes but not valid UTF-8: ISO-8859-ish if mostly printable.
  {
    std::size_t textish = 0;
    for (char raw : content) {
      const auto c = static_cast<unsigned char>(raw);
      if ((c >= 0x20 && c < 0x7f) || c >= 0xa0 || c == '\n' || c == '\t' ||
          c == '\r') {
        ++textish;
      }
    }
    if (textish * 100 >= content.size() * 95) return Type::kIso8859Text;
  }
  return Type::kOtherBinary;
}

std::string_view magic_for(Type type) noexcept {
  switch (type) {
    case Type::kElfRelocatable:
      return "\x7f""ELF\x02\x01\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x01\x00"sv;
    case Type::kElfSharedObject:
      return "\x7f""ELF\x02\x01\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x03\x00"sv;
    case Type::kElfExecutable:
      return "\x7f""ELF\x02\x01\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x02\x00"sv;
    case Type::kCoff: return kCoffMagic;
    case Type::kPythonBytecode: return kPycMagic;
    case Type::kJavaClass: return kJavaMagic;
    case Type::kTerminfo: return kTerminfoMagic;
    case Type::kMsExecutable: return kPeMagic;
    case Type::kMachO: return kMachOMagic;
    case Type::kDebRpmPackage: return kRpmMagic;
    case Type::kStaticLibrary: return kArMagic;
    case Type::kPng: return kPngMagic;
    case Type::kJpeg: return kJpegMagic;
    case Type::kGif: return "GIF89a"sv;
    case Type::kZipGzip: return kGzipMagic;
    case Type::kBzip2: return "BZh9"sv;
    case Type::kXz: return kXzMagic;
    case Type::kSqlite: return kSqliteMagic;
    case Type::kMysql: return kMysqlFrmMagic;
    case Type::kPdfPs: return kPdfMagic;
    case Type::kVideo: return kMpegMagic;
    case Type::kPhpScript: return "<?php\n"sv;
    case Type::kXmlHtml: return "<?xml version=\"1.0\"?>\n"sv;
    case Type::kSvg: return "<svg xmlns=\"http://www.w3.org/2000/svg\">"sv;
    case Type::kLatex: return "\\documentclass{article}\n"sv;
    case Type::kPythonScript: return "#!/usr/bin/env python\n"sv;
    case Type::kAwkScript: return "#!/usr/bin/awk -f\n"sv;
    case Type::kRubyScript: return "#!/usr/bin/env ruby\n"sv;
    case Type::kPerlScript: return "#!/usr/bin/perl\n"sv;
    case Type::kNodeScript: return "#!/usr/bin/env node\n"sv;
    case Type::kTclScript: return "#!/usr/bin/tclsh\n"sv;
    case Type::kShellScript: return "#!/bin/bash\n"sv;
    case Type::kOtherScript: return "#!/usr/bin/env lua\n"sv;
    case Type::kCSource: return "#include <stdio.h>\n"sv;
    case Type::kMakefile: return "# Makefile\n.PHONY: all\n"sv;
    case Type::kOtherEol: return kAoutMagic;
    case Type::kOtherDocument: return kRtfMagic;
    case Type::kOtherArchive: return kCpioMagic;
    case Type::kOtherDb: return kGdbmMagic;
    case Type::kOtherImage: return kXpmMagic;
    case Type::kBerkeleyDb:
      return "\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x62\x31\x05\x00"sv;
    case Type::kUtf8Text: return "\xc3\xa9\xc3\xa8\xc3\xbc "sv;
    case Type::kIso8859Text: return "\xe9\xe8\xfc "sv;
    case Type::kOtherBinary:
      return "\x07\x00\x03\x01\x06\x00\x05\x02\x07\x00\x03\x01\x06\x00\x05\x02"sv;
    default: return ""sv;  // text-ish and extension-keyed types
  }
}

std::string representative_path(Type type, std::uint64_t salt) {
  const std::uint64_t d1 = salt % 97;
  const std::uint64_t d2 = (salt / 97) % 89;
  const std::string a = std::to_string(d1);
  const std::string b = std::to_string(d2);
  switch (type) {
    case Type::kElfRelocatable: return "usr/lib/obj_" + a + "/m" + b + ".o";
    case Type::kElfSharedObject: return "usr/lib/libx" + a + ".so." + b;
    case Type::kElfExecutable: return "usr/bin/tool_" + a + "_" + b;
    case Type::kCoff: return "opt/legacy/obj" + a + ".obj";
    case Type::kPythonBytecode:
      return "usr/lib/python2.7/pkg" + a + "/mod" + b + ".pyc";
    case Type::kJavaClass: return "opt/app/classes/C" + a + "_" + b + ".class";
    case Type::kTerminfo: return "usr/share/terminfo/x/term" + a + b;
    case Type::kMsExecutable: return "opt/win/prog" + a + ".exe";
    case Type::kMachO: return "opt/mac/bin" + a;
    case Type::kDebRpmPackage: return "var/cache/apt/archives/p" + a + ".deb";
    case Type::kStaticLibrary: return "usr/lib/libst" + a + ".a";
    case Type::kOtherEol: return "usr/lib/misc/blob" + a + ".bin";
    case Type::kCSource: return "usr/src/app" + a + "/file" + b + ".c";
    case Type::kPerlModule: return "usr/share/perl5/Mod" + a + "/Sub" + b + ".pm";
    case Type::kRubyModule: return "usr/lib/ruby/gems/g" + a + "/lib" + b + ".rb";
    case Type::kPascalSource: return "usr/src/pas/unit" + a + ".pas";
    case Type::kFortranSource: return "usr/src/f90/sim" + a + ".f90";
    case Type::kBasicSource: return "opt/basic/prog" + a + ".bas";
    case Type::kLispSource: return "usr/share/emacs/lisp/el" + a + ".el";
    case Type::kPythonScript:
      return "usr/lib/python3.5/site-packages/p" + a + "/s" + b + ".py";
    case Type::kAwkScript: return "usr/share/awk/script" + a + ".awk";
    case Type::kRubyScript: return "usr/local/bin/rbtool" + a;
    case Type::kPerlScript: return "usr/bin/pl_" + a + ".pl";
    case Type::kPhpScript: return "var/www/html/page" + a + "_" + b + ".php";
    case Type::kMakefile: return "usr/src/proj" + a + "/Makefile";
    case Type::kM4Script: return "usr/share/aclocal/macro" + a + ".m4";
    case Type::kNodeScript:
      return "usr/lib/node_modules/pkg" + a + "/index" + b + ".js";
    case Type::kTclScript: return "usr/share/tcl/lib" + a + ".tcl";
    case Type::kShellScript: return "etc/init.d/svc" + a + "_" + b + ".sh";
    case Type::kOtherScript: return "usr/local/share/lua/hook" + a;
    case Type::kAsciiText: return "usr/share/doc/pkg" + a + "/README" + b;
    case Type::kUtf8Text: return "usr/share/locale/msg" + a + "_" + b;
    case Type::kIso8859Text: return "usr/share/misc/latin" + a + ".dat";
    case Type::kXmlHtml: return "var/www/static/doc" + a + "_" + b + ".html";
    case Type::kPdfPs: return "usr/share/doc/manual" + a + ".pdf";
    case Type::kLatex: return "usr/share/texmf/doc" + a + ".tex";
    case Type::kOtherDocument: return "usr/share/doc/other" + a + ".doc";
    case Type::kZipGzip: return "var/cache/dist/archive" + a + "_" + b + ".tar.gz";
    case Type::kBzip2: return "var/cache/dist/bundle" + a + ".tar.bz2";
    case Type::kXz: return "var/cache/dist/pack" + a + ".tar.xz";
    case Type::kTarArchive: return "opt/backup/dump" + a + ".tar";
    case Type::kOtherArchive: return "opt/backup/arc" + a + ".cpio";
    case Type::kBerkeleyDb: return "var/lib/rpm/Packages" + a;
    case Type::kMysql: return "var/lib/mysql/db" + a + "/t" + b + ".frm";
    case Type::kSqlite: return "var/lib/app" + a + "/state" + b + ".sqlite";
    case Type::kOtherDb: return "var/lib/db/other" + a + ".db";
    case Type::kPng: return "usr/share/icons/icon" + a + "_" + b + ".png";
    case Type::kJpeg: return "usr/share/images/photo" + a + ".jpg";
    case Type::kSvg: return "usr/share/icons/scalable/vec" + a + ".svg";
    case Type::kGif: return "var/www/img/anim" + a + ".gif";
    case Type::kOtherImage: return "usr/share/pixmaps/pix" + a + ".xpm";
    case Type::kVideo: return "opt/media/clip" + a + ".mpg";
    case Type::kEmpty: return "usr/lib/python2.7/pkg" + a + "/__init__.py";
    case Type::kOtherBinary: return "var/lib/misc/data" + a + "_" + b + ".bin";
    case Type::kTypeCount: break;
  }
  return "tmp/unknown" + a;
}

}  // namespace dockmine::filetype
