// File-type identification "by magic number" (paper §III-C) with shebang and
// extension fallbacks — a from-scratch, dependency-free subset of libmagic
// covering every type in the paper's taxonomy.
//
// The synthetic materializer stamps generated files with `magic_for(type)`
// and names them with `representative_path(type)`, so classification of
// generated archives round-trips: classify(materialize(T)) == T. That
// property is what makes the Figs. 14-22 benches a real measurement rather
// than an echo of the generator's labels, and it is asserted by tests.
#pragma once

#include <string>
#include <string_view>

#include "dockmine/filetype/taxonomy.h"
#include "dockmine/util/rng.h"

namespace dockmine::filetype {

/// Identify a file from its path and (a prefix of) its content. Only the
/// first ~512 bytes of content are examined, plus offset 257..262 for tar.
Type classify(std::string_view path, std::string_view content) noexcept;

/// Magic byte prefix that makes content classify as `type` (empty for
/// text-like types identified by content heuristics or extension).
std::string_view magic_for(Type type) noexcept;

/// A plausible file name (with the right extension/basename) for `type`,
/// varied by `salt` so paths do not collide.
std::string representative_path(Type type, std::uint64_t salt);

/// True if content looks like printable ASCII (heuristic used for the
/// "ASCII text" bucket).
bool looks_ascii(std::string_view content) noexcept;

}  // namespace dockmine::filetype
