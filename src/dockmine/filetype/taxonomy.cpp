#include "dockmine/filetype/taxonomy.h"

namespace dockmine::filetype {

Group group_of(Type type) noexcept {
  switch (type) {
    case Type::kElfRelocatable:
    case Type::kElfSharedObject:
    case Type::kElfExecutable:
    case Type::kCoff:
    case Type::kPythonBytecode:
    case Type::kJavaClass:
    case Type::kTerminfo:
    case Type::kMsExecutable:
    case Type::kMachO:
    case Type::kDebRpmPackage:
    case Type::kStaticLibrary:
    case Type::kOtherEol:
      return Group::kEol;
    case Type::kCSource:
    case Type::kPerlModule:
    case Type::kRubyModule:
    case Type::kPascalSource:
    case Type::kFortranSource:
    case Type::kBasicSource:
    case Type::kLispSource:
      return Group::kSourceCode;
    case Type::kPythonScript:
    case Type::kAwkScript:
    case Type::kRubyScript:
    case Type::kPerlScript:
    case Type::kPhpScript:
    case Type::kMakefile:
    case Type::kM4Script:
    case Type::kNodeScript:
    case Type::kTclScript:
    case Type::kShellScript:
    case Type::kOtherScript:
      return Group::kScripts;
    case Type::kAsciiText:
    case Type::kUtf8Text:
    case Type::kIso8859Text:
    case Type::kXmlHtml:
    case Type::kPdfPs:
    case Type::kLatex:
    case Type::kOtherDocument:
      return Group::kDocuments;
    case Type::kZipGzip:
    case Type::kBzip2:
    case Type::kXz:
    case Type::kTarArchive:
    case Type::kOtherArchive:
      return Group::kArchival;
    case Type::kBerkeleyDb:
    case Type::kMysql:
    case Type::kSqlite:
    case Type::kOtherDb:
      return Group::kDatabases;
    case Type::kPng:
    case Type::kJpeg:
    case Type::kSvg:
    case Type::kGif:
    case Type::kOtherImage:
      return Group::kImages;
    case Type::kVideo:
    case Type::kEmpty:
    case Type::kOtherBinary:
    case Type::kTypeCount:
      return Group::kOther;
  }
  return Group::kOther;
}

std::string_view to_string(Group group) noexcept {
  switch (group) {
    case Group::kEol: return "EOL";
    case Group::kSourceCode: return "SC.";
    case Group::kScripts: return "Scr.";
    case Group::kDocuments: return "Doc.";
    case Group::kArchival: return "Arch.";
    case Group::kImages: return "Img.";
    case Group::kDatabases: return "DB.";
    case Group::kOther: return "Oths";
  }
  return "?";
}

std::string_view to_string(Type type) noexcept {
  switch (type) {
    case Type::kElfRelocatable: return "ELF relocatable";
    case Type::kElfSharedObject: return "ELF shared object";
    case Type::kElfExecutable: return "ELF executable";
    case Type::kCoff: return "COFF";
    case Type::kPythonBytecode: return "Python byte-compiled";
    case Type::kJavaClass: return "Java class";
    case Type::kTerminfo: return "terminfo compiled";
    case Type::kMsExecutable: return "MS executable (PE)";
    case Type::kMachO: return "Mach-O";
    case Type::kDebRpmPackage: return "Deb/RPM package";
    case Type::kStaticLibrary: return "library (ar)";
    case Type::kOtherEol: return "other EOL";
    case Type::kCSource: return "C/C++ source";
    case Type::kPerlModule: return "Perl5 module";
    case Type::kRubyModule: return "Ruby module";
    case Type::kPascalSource: return "Pascal source";
    case Type::kFortranSource: return "Fortran source";
    case Type::kBasicSource: return "Applesoft BASIC";
    case Type::kLispSource: return "Lisp/Scheme";
    case Type::kPythonScript: return "Python script";
    case Type::kAwkScript: return "AWK script";
    case Type::kRubyScript: return "Ruby script";
    case Type::kPerlScript: return "Perl script";
    case Type::kPhpScript: return "PHP script";
    case Type::kMakefile: return "Makefile";
    case Type::kM4Script: return "M4 macro";
    case Type::kNodeScript: return "Node/JS script";
    case Type::kTclScript: return "Tcl script";
    case Type::kShellScript: return "Bash/shell script";
    case Type::kOtherScript: return "other script";
    case Type::kAsciiText: return "ASCII text";
    case Type::kUtf8Text: return "UTF-8/16 text";
    case Type::kIso8859Text: return "ISO-8859 text";
    case Type::kXmlHtml: return "XML/HTML/XHTML";
    case Type::kPdfPs: return "PDF/PS";
    case Type::kLatex: return "LaTeX";
    case Type::kOtherDocument: return "other document";
    case Type::kZipGzip: return "Zip/Gzip";
    case Type::kBzip2: return "Bzip2";
    case Type::kXz: return "XZ";
    case Type::kTarArchive: return "Tar";
    case Type::kOtherArchive: return "other archive";
    case Type::kBerkeleyDb: return "Berkeley DB";
    case Type::kMysql: return "MySQL";
    case Type::kSqlite: return "SQLite DB";
    case Type::kOtherDb: return "other DB";
    case Type::kPng: return "PNG";
    case Type::kJpeg: return "JPEG";
    case Type::kSvg: return "SVG";
    case Type::kGif: return "GIF";
    case Type::kOtherImage: return "other image";
    case Type::kVideo: return "video (AVI/MPEG)";
    case Type::kEmpty: return "empty";
    case Type::kOtherBinary: return "other binary";
    case Type::kTypeCount: return "?";
  }
  return "?";
}

bool is_intermediate_representation(Type type) noexcept {
  return type == Type::kPythonBytecode || type == Type::kJavaClass ||
         type == Type::kTerminfo;
}

bool is_elf(Type type) noexcept {
  return type == Type::kElfRelocatable || type == Type::kElfSharedObject ||
         type == Type::kElfExecutable;
}

}  // namespace dockmine::filetype
