// Trend report: the per-epoch time series behind the temporal figures —
// dedup ratio, layer sharing, and corpus growth/churn rate over epochs
// (EXPERIMENTS.md "Temporal trends"). One TrendPoint is appended per
// applied epoch from the DeltaAnalyzer's resident aggregates; to_json
// emits a columnar document ready for plotting.
#pragma once

#include <cstdint>
#include <vector>

#include "dockmine/json/json.h"
#include "dockmine/temporal/delta_analyzer.h"
#include "dockmine/util/error.h"

namespace dockmine::temporal {

struct TrendPoint {
  std::uint32_t epoch = 0;
  std::uint64_t images = 0;
  std::uint64_t distinct_layers = 0;
  std::uint64_t layers_changed = 0;
  std::uint64_t layers_removed = 0;
  std::uint64_t total_files = 0;
  std::uint64_t unique_files = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t unique_bytes = 0;
  double count_ratio = 0.0;     ///< dedup ratio by file count
  double capacity_ratio = 0.0;  ///< dedup ratio by bytes
  double sharing_ratio = 0.0;   ///< layer logical/physical bytes
  double epoch_ms = 0.0;
};

class TrendReport {
 public:
  /// Snapshot the analyzer's resident aggregates after an applied epoch.
  util::Status observe(const DeltaAnalyzer& analyzer);

  const std::vector<TrendPoint>& points() const noexcept { return points_; }

  /// {"epochs": N, "series": {column -> [per-epoch values]}} plus derived
  /// growth-rate columns (unique_bytes_growth is the registry's physical
  /// growth per epoch — the operational number a registry operator sizes
  /// storage with).
  json::Value to_json() const;

 private:
  std::vector<TrendPoint> points_;
};

}  // namespace dockmine::temporal
