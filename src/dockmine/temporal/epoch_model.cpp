#include "dockmine/temporal/epoch_model.h"

#include <algorithm>

#include "dockmine/util/rng.h"

namespace dockmine::temporal {

bool EpochModel::repushed(std::uint64_t image_index,
                          std::uint32_t epoch) const {
  if (epoch == 0 || epoch > kMaxEpoch) return false;
  // One seeded draw per (image, epoch): independent across both axes so
  // the per-epoch churn set concentrates around repush_fraction without
  // any image being permanently hot or cold.
  std::uint64_t s = hub_.scale().seed ^ (image_index * 0x9ddfea08eb382d69ULL) ^
                    (static_cast<std::uint64_t>(epoch) * 0xa0761d6478bd642fULL);
  util::Rng rng(util::splitmix64(s));
  return rng.chance(config_.repush_fraction);
}

std::uint32_t EpochModel::effective_epoch(std::uint64_t image_index,
                                          std::uint32_t epoch) const {
  for (std::uint32_t e = std::min(epoch, kMaxEpoch); e >= 1; --e) {
    if (repushed(image_index, e)) return e;
  }
  return 0;
}

synth::ImageSpec EpochModel::image_at(std::uint64_t image_index,
                                      std::uint32_t epoch) const {
  const synth::ImageSpec& original = hub_.images().at(image_index);
  const std::uint32_t effective = effective_epoch(image_index, epoch);
  if (effective == 0) return original;

  // A rebuild keeps the lower stack verbatim and replaces the top
  // `churn_layers` with epoch-stamped ids — new digests, deterministic
  // content, base layers untouched (see header: FROM lines rarely move).
  synth::ImageSpec rebuilt;
  rebuilt.repo_index = original.repo_index;
  const std::size_t total = original.layers.size();
  const std::size_t churn =
      std::min<std::size_t>(config_.churn_layers, total);
  const std::size_t keep = total - churn;
  rebuilt.layers.assign(original.layers.begin(),
                        original.layers.begin() + keep);
  for (std::size_t k = 0; k < churn; ++k) {
    rebuilt.layers.push_back(synth::VersionModel::versioned_layer_id(
        image_index, kEpochVersionBase + effective,
        static_cast<std::uint32_t>(k)));
  }
  return rebuilt;
}

std::vector<std::string> EpochModel::churned_repositories(
    std::uint32_t epoch) const {
  std::vector<std::string> churned;
  if (epoch == 0) return churned;
  const auto& repos = hub_.repositories();
  for (std::size_t i = 0; i < repos.size(); ++i) {
    if (repos[i].image_index < 0) continue;
    if (repushed(static_cast<std::uint64_t>(repos[i].image_index), epoch)) {
      churned.push_back(repos[i].name);
    }
  }
  return churned;
}

util::Result<EvolvingRegistry::EpochPush> EvolvingRegistry::initialize(
    registry::Service& service) {
  if (initialized_) {
    return util::Error(util::ErrorCode::kInvalidArgument,
                       "evolving registry already initialized");
  }
  EpochPush push;
  push.epoch = 0;
  const synth::HubModel& hub = model_.hub();
  for (std::size_t i = 0; i < hub.repositories().size(); ++i) {
    const synth::RepoSpec& repo = hub.repositories()[i];
    registry::Repository entry;
    entry.name = repo.name;
    entry.official = repo.official;
    entry.requires_auth = repo.requires_auth;
    entry.pull_count = repo.pull_count;
    service.put_repository(std::move(entry));
    if (repo.image_index < 0) continue;

    const std::size_t before = blob_cache_.size();
    const synth::ImageSpec image =
        model_.image_at(static_cast<std::uint64_t>(repo.image_index), 0);
    auto pushed = materializer_.push_tagged_image(service, repo.name, "latest",
                                                 image, blob_cache_);
    if (!pushed.ok()) return std::move(pushed).error();
    push.manifests += pushed.value();
    const std::size_t materialized = blob_cache_.size() - before;
    push.layers_materialized += materialized;
    push.layers_reused += image.layers.size() - materialized;
  }
  initialized_ = true;
  return push;
}

util::Result<EvolvingRegistry::EpochPush> EvolvingRegistry::advance(
    registry::Service& service) {
  if (!initialized_) {
    return util::Error(util::ErrorCode::kInvalidArgument,
                       "evolving registry not initialized");
  }
  if (epoch_ >= EpochModel::kMaxEpoch) {
    return util::Error(util::ErrorCode::kOutOfRange, "epoch limit reached");
  }
  EpochPush push;
  push.epoch = epoch_ + 1;
  push.repushed = model_.churned_repositories(push.epoch);
  const synth::HubModel& hub = model_.hub();
  for (const std::string& name : push.repushed) {
    // Churned repositories come from the hub, so the lookup cannot miss.
    auto repo = std::find_if(
        hub.repositories().begin(), hub.repositories().end(),
        [&](const synth::RepoSpec& r) { return r.name == name; });
    const std::uint64_t image_index =
        static_cast<std::uint64_t>(repo->image_index);
    const synth::ImageSpec image = model_.image_at(image_index, push.epoch);
    const std::size_t before = blob_cache_.size();
    auto pushed = materializer_.push_tagged_image(service, name, "latest",
                                                 image, blob_cache_);
    if (!pushed.ok()) return std::move(pushed).error();
    push.manifests += pushed.value();
    const std::size_t materialized = blob_cache_.size() - before;
    push.layers_materialized += materialized;
    push.layers_reused += image.layers.size() - materialized;
  }
  epoch_ = push.epoch;
  return push;
}

util::Result<std::uint64_t> build_registry_at_epoch(
    const EpochModel& model, std::uint32_t epoch, int gzip_level,
    registry::Service& service) {
  EvolvingRegistry evolving(model, gzip_level);
  auto init = evolving.initialize(service);
  if (!init.ok()) return std::move(init).error();
  std::uint64_t manifests = init.value().manifests;
  for (std::uint32_t e = 1; e <= epoch; ++e) {
    auto push = evolving.advance(service);
    if (!push.ok()) return std::move(push).error();
    manifests += push.value().manifests;
  }
  return manifests;
}

}  // namespace dockmine::temporal
