#include "dockmine/temporal/trend.h"

namespace dockmine::temporal {

util::Status TrendReport::observe(const DeltaAnalyzer& analyzer) {
  auto snapshot = analyzer.result();
  if (!snapshot.ok()) return std::move(snapshot).error();
  const core::PipelineResult& result = snapshot.value();

  TrendPoint point;
  point.epoch = analyzer.epoch();
  point.images = analyzer.resident_images();
  point.distinct_layers = analyzer.resident_layers();
  point.layers_changed = analyzer.last_delta().layers_changed;
  point.layers_removed = analyzer.last_delta().layers_removed;
  const dedup::DedupTotals totals = result.file_index->totals();
  point.total_files = totals.total_files;
  point.unique_files = totals.unique_files;
  point.total_bytes = totals.total_bytes;
  point.unique_bytes = totals.unique_bytes;
  point.count_ratio = totals.count_ratio();
  point.capacity_ratio = totals.capacity_ratio();
  point.sharing_ratio = result.sharing.sharing_ratio();
  point.epoch_ms = analyzer.last_delta().wall_ms;
  points_.push_back(point);
  return util::Status();
}

json::Value TrendReport::to_json() const {
  auto doc = json::Value::object();
  doc.set("epochs", static_cast<std::uint64_t>(points_.size()));

  auto series = json::Value::object();
  auto column = [&](const char* name, auto&& get) {
    auto values = json::Value::array();
    for (const TrendPoint& p : points_) values.push_back(get(p));
    series.set(name, std::move(values));
  };
  column("epoch",
         [](const TrendPoint& p) { return static_cast<std::uint64_t>(p.epoch); });
  column("images", [](const TrendPoint& p) { return p.images; });
  column("distinct_layers",
         [](const TrendPoint& p) { return p.distinct_layers; });
  column("layers_changed", [](const TrendPoint& p) { return p.layers_changed; });
  column("layers_removed", [](const TrendPoint& p) { return p.layers_removed; });
  column("total_files", [](const TrendPoint& p) { return p.total_files; });
  column("unique_files", [](const TrendPoint& p) { return p.unique_files; });
  column("total_bytes", [](const TrendPoint& p) { return p.total_bytes; });
  column("unique_bytes", [](const TrendPoint& p) { return p.unique_bytes; });
  column("count_ratio", [](const TrendPoint& p) { return p.count_ratio; });
  column("capacity_ratio", [](const TrendPoint& p) { return p.capacity_ratio; });
  column("sharing_ratio", [](const TrendPoint& p) { return p.sharing_ratio; });
  column("epoch_ms", [](const TrendPoint& p) { return p.epoch_ms; });
  // Growth rate: physical-byte delta per epoch — what the registry's
  // storage actually accretes once dedup has taken its share.
  {
    auto growth = json::Value::array();
    for (std::size_t i = 0; i < points_.size(); ++i) {
      const std::uint64_t prev = i == 0 ? 0 : points_[i - 1].unique_bytes;
      const std::uint64_t cur = points_[i].unique_bytes;
      growth.push_back(cur >= prev ? cur - prev : 0);
    }
    series.set("unique_bytes_growth", std::move(growth));
  }
  doc.set("series", std::move(series));
  return doc;
}

}  // namespace dockmine::temporal
