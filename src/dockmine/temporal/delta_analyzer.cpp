#include "dockmine/temporal/delta_analyzer.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <unordered_set>
#include <utility>

#include "dockmine/analyzer/image_analyzer.h"
#include "dockmine/obs/obs.h"
#include "dockmine/registry/manifest.h"

namespace dockmine::temporal {

namespace {

struct TemporalMetrics {
  obs::Histogram& epoch_ms;
  obs::Counter& images_repushed;
  obs::Counter& layers_changed;
  obs::Counter& layers_removed;
  obs::Counter& layers_reused;

  static TemporalMetrics& get() {
    auto& reg = obs::Registry::global();
    static TemporalMetrics m{
        reg.histogram("dockmine_temporal_epoch_ms"),
        reg.counter("dockmine_temporal_images_repushed_total"),
        reg.counter("dockmine_temporal_layers_changed_total"),
        reg.counter("dockmine_temporal_layers_removed_total"),
        reg.counter("dockmine_temporal_layers_reused_total")};
    return m;
  }
};

}  // namespace

util::Result<blob::BlobPtr> DeltaAnalyzer::fetch_blob(
    registry::Source& source, const digest::Digest& digest,
    EpochDelta& delta) {
  if (options_.checkpoint != nullptr && options_.checkpoint->has_layer(digest)) {
    auto resumed = options_.checkpoint->layer(digest);
    if (resumed.ok()) {
      // Checkpointed bytes were digest-verified before admission.
      ++delta.layers_resumed;
      ++download_.layers_resumed;
      return resumed;
    }
  }
  auto blob = source.fetch_blob(digest);
  if (!blob.ok()) return blob;
  if (!(digest::Digest::of(*blob.value()) == digest)) {
    // One silent re-fetch, mirroring the downloader; a second mismatch on
    // the in-process registry means blob-store corruption — abort, never
    // fold unverified bytes into the resident aggregates.
    blob = source.fetch_blob(digest);
    if (!blob.ok()) return blob;
    if (!(digest::Digest::of(*blob.value()) == digest)) {
      return util::Error(util::ErrorCode::kCorrupt,
                         "layer digest mismatch for " + digest.to_string());
    }
  }
  delta.bytes_fetched += blob.value()->size();
  ++download_.layers_fetched;
  download_.bytes_downloaded += blob.value()->size();
  if (options_.checkpoint != nullptr) {
    // Best-effort persistence: a failed checkpoint write only costs a
    // re-fetch on resume, never correctness.
    (void)options_.checkpoint->put_layer(digest, *blob.value());
  }
  return blob;
}

util::Result<EpochDelta> DeltaAnalyzer::apply_epoch(
    registry::Source& source, std::uint32_t epoch,
    const std::vector<std::string>& churned) {
  if (!initialized_ && epoch != 0) {
    return util::Error(util::ErrorCode::kInvalidArgument,
                       "epoch 0 (initial ingest) must be applied first");
  }
  if (initialized_ && epoch != epoch_ + 1) {
    return util::Error(util::ErrorCode::kInvalidArgument,
                       "epochs must be applied in order");
  }
  const auto start = std::chrono::steady_clock::now();
  EpochDelta delta;
  delta.epoch = epoch;
  delta.repos_churned = churned.size();

  const bool canceled_early =
      options_.cancel != nullptr &&
      options_.cancel->load(std::memory_order_relaxed);
  // --- stage 1: fetch manifests of the churn set ---
  std::vector<std::pair<std::string, std::optional<registry::Manifest>>>
      fetched;
  fetched.reserve(churned.size());
  for (const std::string& repo : churned) {
    if (canceled_early) break;
    ++download_.attempted;
    auto body = source.fetch_manifest(repo, "latest", /*authenticated=*/false);
    if (!body.ok()) {
      switch (body.error().code()) {
        case util::ErrorCode::kUnauthorized:
          ++download_.failed_auth;
          break;
        case util::ErrorCode::kNotFound:
          if (body.error().message().find("has no tag") != std::string::npos) {
            ++download_.failed_no_tag;
          } else {
            ++download_.failed_missing;
          }
          break;
        default:
          ++download_.failed_other;
      }
      ++delta.repos_failed;
      // Mirror the batch pipeline: an undeliverable repository is simply
      // absent from the report (and retired if it was resident before).
      fetched.emplace_back(repo, std::nullopt);
      continue;
    }
    auto manifest = registry::manifest_from_json(body.value());
    if (!manifest.ok()) return std::move(manifest).error();
    fetched.emplace_back(repo, std::move(manifest).value());
  }

  // --- stage 2: fetch + analyze layers absent from the resident set ---
  std::unordered_map<digest::Digest, ResidentLayer, digest::DigestHash> staged;
  std::unordered_set<digest::Digest, digest::DigestHash> seen;
  std::uint64_t analyzed_this_epoch = 0;
  for (const auto& [repo, manifest] : fetched) {
    if (!manifest.has_value()) continue;
    for (const auto& ref : manifest->layers) {
      if (!seen.insert(ref.digest).second) continue;
      if (layers_.find(ref.digest) != layers_.end()) {
        ++delta.layers_reused;
        ++download_.layers_deduped;
        continue;
      }
      if (staged.find(ref.digest) != staged.end()) continue;
      if (options_.cancel != nullptr &&
          options_.cancel->load(std::memory_order_relaxed)) {
        delta.canceled = true;
        delta.wall_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
        return delta;  // nothing committed; the epoch can be re-applied
      }
      auto blob = fetch_blob(source, ref.digest, delta);
      if (!blob.ok()) return std::move(blob).error();

      ResidentLayer layer;
      std::vector<shard::RunEntry> records;
      const std::uint32_t layer_index =
          static_cast<std::uint32_t>(ref.digest.key64() >> 32);
      analyzer::FileVisitor visitor =
          [&](std::string_view, const analyzer::FileRecord& record) {
            shard::RunEntry entry;
            entry.key = dedup::FileDedupIndex::remap_key(record.digest.key64());
            entry.entry.count = 1;
            entry.entry.size = record.size;
            entry.entry.type = record.type;
            entry.entry.first_layer = layer_index;
            records.push_back(entry);
          };
      auto profile = analyzer_.analyze_blob(*blob.value(), &visitor);
      if (!profile.ok()) return std::move(profile).error();
      layer.profile = profile.value();
      layer.file_instances = records.size();

      // Pre-fold the layer's contribution, sorted by content key: folding
      // is associative, so the grouped insert (and the exact retraction it
      // enables) lands on the same entries the per-file adds would.
      std::sort(records.begin(), records.end(),
                [](const shard::RunEntry& a, const shard::RunEntry& b) {
                  return a.key < b.key;
                });
      for (const shard::RunEntry& record : records) {
        if (!layer.contribution.empty() &&
            layer.contribution.back().key == record.key) {
          dedup::merge_content_entries(layer.contribution.back().entry,
                                       record.entry);
        } else {
          layer.contribution.push_back(record);
        }
      }
      staged.emplace(ref.digest, std::move(layer));
      ++delta.layers_changed;
      ++analyzed_this_epoch;
      if (options_.on_layer_analyzed) {
        options_.on_layer_analyzed(analyzed_this_epoch);
      }
    }
  }
  if (canceled_early ||
      (options_.cancel != nullptr &&
       options_.cancel->load(std::memory_order_relaxed))) {
    delta.canceled = true;
    delta.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    return delta;
  }

  // --- commit: swap manifests, fold additions, retract retirements ---
  for (auto& [digest, layer] : staged) {
    delta.files_added += layer.file_instances;
    for (const shard::RunEntry& entry : layer.contribution) {
      index_.insert_entry(entry.key, entry.entry);
    }
    layers_.emplace(digest, std::move(layer));
  }
  for (auto& [repo, manifest] : fetched) {
    auto old = manifests_.find(repo);
    if (old != manifests_.end()) {
      for (const auto& ref : old->second.layers) {
        auto it = layers_.find(ref.digest);
        if (it != layers_.end() && it->second.refs > 0) --it->second.refs;
      }
    }
    if (manifest.has_value()) {
      for (const auto& ref : manifest->layers) ++layers_[ref.digest].refs;
      manifests_[repo] = std::move(*manifest);
      ++delta.repos_delivered;
      ++download_.succeeded;
    } else if (old != manifests_.end()) {
      manifests_.erase(old);
    }
  }
  std::vector<digest::Digest> retired;
  for (const auto& [digest, layer] : layers_) {
    if (layer.refs == 0) retired.push_back(digest);
  }
  for (const digest::Digest& digest : retired) {
    auto it = layers_.find(digest);
    delta.files_retracted += it->second.file_instances;
    for (const shard::RunEntry& entry : it->second.contribution) {
      index_.retract_entry(entry.key, entry.entry);
    }
    layers_.erase(it);
    ++delta.layers_removed;
  }

  epoch_ = epoch;
  initialized_ = true;
  delta.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  last_delta_ = delta;

  TemporalMetrics& metrics = TemporalMetrics::get();
  metrics.epoch_ms.observe(delta.wall_ms);
  metrics.images_repushed.add(delta.repos_delivered);
  metrics.layers_changed.add(delta.layers_changed);
  metrics.layers_removed.add(delta.layers_removed);
  metrics.layers_reused.add(delta.layers_reused);
  return delta;
}

util::Result<core::PipelineResult> DeltaAnalyzer::result() const {
  core::PipelineResult out;
  out.download = download_;

  analyzer::ProfileStore store;
  store.reserve(layers_.size());
  for (const auto& [digest, layer] : layers_) store.put(layer.profile);

  std::vector<dedup::LayerSharingAnalysis::LayerUse> uses;
  for (const auto& [repo, manifest] : manifests_) {
    auto image = analyzer::build_image_profile(manifest, store);
    if (!image.ok()) return std::move(image).error();
    out.images.push_back(std::move(image).value());
    uses.clear();
    for (const auto& ref : manifest.layers) {
      uses.push_back({ref.digest.key64(), ref.compressed_size});
    }
    out.sharing.add_image(uses);
    out.manifests.push_back(manifest);
  }
  out.layer_profiles = std::move(store);
  out.file_index = std::make_unique<dedup::FileDedupIndex>(index_);
  return out;
}

util::Result<json::Value> DeltaAnalyzer::report() const {
  auto snapshot = result();
  if (!snapshot.ok()) return std::move(snapshot).error();
  return core::analysis_report_json(snapshot.value());
}

}  // namespace dockmine::temporal
