// Incremental epoch analysis: re-download and re-analyze ONLY the layers
// that changed between epochs, and fold add/remove deltas into the resident
// aggregates (dedup index, layer profiles, layer sharing, ECDF inputs).
//
// Invariant (the subsystem's contract, pinned by temporal_test and the CI
// temporal-smoke job): after apply_epoch(K), report() is byte-identical to
// core::analysis_report_json of a from-scratch batch run over the epoch-K
// registry snapshot — same discipline as the mode/shard/distribution
// equivalences of DESIGN.md §9-§12. Three properties make this possible:
//
//   * layer blobs are content-addressed, so "changed" is decidable from the
//     manifest diff alone — a digest already resident needs no bytes;
//   * the dedup fold (merge_content_entries) is commutative/associative
//     AND invertible on the canonical fields (unfold_content_entries), so
//     a retired layer's contribution can be subtracted exactly;
//   * the canonical report is built from order-independent aggregates only,
//     so "epoch-0 plus K deltas" and "epoch-K from scratch" serialize the
//     same bytes.
//
// apply_epoch is transactional: everything is fetched/analyzed into staging
// first and committed only when the whole churn set succeeded. A canceled
// or failed epoch leaves the resident state at the previous epoch, and —
// with a checkpoint attached — the retry streams already-verified blobs
// from disk instead of the network (the kill-mid-epoch chaos story).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "dockmine/analyzer/layer_analyzer.h"
#include "dockmine/core/pipeline.h"
#include "dockmine/downloader/checkpoint.h"
#include "dockmine/registry/service.h"
#include "dockmine/shard/run_format.h"
#include "dockmine/util/error.h"

namespace dockmine::temporal {

struct DeltaOptions {
  analyzer::LayerAnalyzer::Options analyzer;
  /// Optional crash/resume record (the downloader's checkpoint machinery):
  /// verified blobs are persisted before analysis, and a re-applied epoch
  /// loads them from disk instead of the network. Not owned.
  downloader::Checkpoint* checkpoint = nullptr;
  /// Cooperative cancellation, checked between layers. A canceled
  /// apply_epoch commits nothing.
  const std::atomic<bool>* cancel = nullptr;
  /// Invoked after each analyzed layer with the running per-epoch count
  /// (chaos tests trigger cancellation from here).
  std::function<void(std::uint64_t analyzed)> on_layer_analyzed;
};

/// Accounting for one applied epoch — the numbers behind the obs
/// instruments and the trend report's churn columns.
struct EpochDelta {
  std::uint32_t epoch = 0;
  bool canceled = false;
  std::uint64_t repos_churned = 0;    ///< size of the churn set
  std::uint64_t repos_delivered = 0;  ///< manifests fetched and swapped in
  std::uint64_t repos_failed = 0;     ///< 401/404 — excluded, like batch
  std::uint64_t layers_changed = 0;   ///< newly analyzed unique layers
  std::uint64_t layers_removed = 0;   ///< retired (refcount hit zero)
  std::uint64_t layers_reused = 0;    ///< referenced but already resident
  std::uint64_t layers_resumed = 0;   ///< streamed from the checkpoint
  std::uint64_t bytes_fetched = 0;    ///< verified network transfer bytes
  std::uint64_t files_added = 0;      ///< file instances folded in
  std::uint64_t files_retracted = 0;  ///< file instances unfolded
  double wall_ms = 0.0;
};

class DeltaAnalyzer {
 public:
  explicit DeltaAnalyzer(DeltaOptions options = {})
      : options_(std::move(options)), analyzer_(options_.analyzer) {}

  /// Apply one epoch. Epoch 0 must come first with the full repository
  /// list (the initial ingest); each later call must pass epoch()+1 with
  /// that epoch's churn set (EpochModel::churned_repositories). The source
  /// is read with the same unauthenticated `latest` pulls the batch
  /// pipeline performs, so the delivered image set matches it exactly.
  util::Result<EpochDelta> apply_epoch(
      registry::Source& source, std::uint32_t epoch,
      const std::vector<std::string>& churned);

  /// Epoch of the resident state; meaningful once initialized().
  std::uint32_t epoch() const noexcept { return epoch_; }
  bool initialized() const noexcept { return initialized_; }

  std::uint64_t resident_layers() const noexcept { return layers_.size(); }
  std::uint64_t resident_images() const noexcept { return manifests_.size(); }
  const dedup::FileDedupIndex& contents() const noexcept { return index_; }
  const EpochDelta& last_delta() const noexcept { return last_delta_; }

  /// Materialize the resident state as a PipelineResult so the shared
  /// canonical serializers (analysis_report_json / pipeline_report_json)
  /// apply verbatim — serializer identity is half of the byte-equality
  /// story. Copies the resident aggregates; call once per report.
  util::Result<core::PipelineResult> result() const;

  /// analysis_report_json of the resident state.
  util::Result<json::Value> report() const;

 private:
  struct ResidentLayer {
    analyzer::LayerProfile profile;
    /// The layer's pre-folded dedup contribution, sorted by content key —
    /// exactly what retraction subtracts when the layer retires.
    std::vector<shard::RunEntry> contribution;
    std::uint64_t file_instances = 0;
    std::uint64_t refs = 0;  ///< resident manifests referencing this digest
  };

  /// Fetch one blob: checkpoint first, then the source, digest-verified
  /// either way.
  util::Result<blob::BlobPtr> fetch_blob(registry::Source& source,
                                         const digest::Digest& digest,
                                         EpochDelta& delta);

  DeltaOptions options_;
  analyzer::LayerAnalyzer analyzer_;
  std::uint32_t epoch_ = 0;
  bool initialized_ = false;
  EpochDelta last_delta_;

  /// Resident state: repository -> delivered manifest (ordered for
  /// deterministic iteration), unique layer digest -> profile +
  /// contribution + refcount, and the incrementally maintained dedup index.
  std::map<std::string, registry::Manifest> manifests_;
  std::unordered_map<digest::Digest, ResidentLayer, digest::DigestHash>
      layers_;
  dedup::FileDedupIndex index_;
  downloader::DownloadStats download_;  ///< accumulated across epochs
};

}  // namespace dockmine::temporal
