// Temporal workload: the registry as a *process*, not a frozen crawl.
//
// The paper analyzed one May-2017 snapshot; the real Docker Hub churns —
// images get re-pushed, layers are rebuilt, tags move. The EpochModel turns
// the existing synthetic snapshot into a deterministic, seeded evolution:
// epoch 0 is the original hub, and each later epoch re-pushes a calibrated
// fraction of images with their top-of-stack layers rebuilt (new layer ids
// => new digests, file content partially shared with the rest of the corpus
// through the global content-id model).
//
// Churn calibration follows "Revisiting Dockerfiles in Open Source Software
// Over Time" (PAPERS.md), which tracks Dockerfile revisions longitudinally:
// most Dockerfiles are revised rarely but a steady minority changes each
// observation period, and revisions overwhelmingly touch the trailing
// instructions (RUN/COPY — i.e. the top app layers) while FROM lines (the
// base stack) stay put. We encode that as kRepushFraction of images
// re-pushed per epoch and kChurnLayers rebuilt layers per re-push, with the
// base/empty layers never churning (DESIGN.md §15).
//
// Everything is a pure function of (hub seed, epoch, image index): the
// epoch-K registry is reproducible from scratch, which is what lets the
// batch oracle pin the incremental DeltaAnalyzer byte-for-byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dockmine/registry/service.h"
#include "dockmine/synth/generator.h"
#include "dockmine/synth/materialize.h"
#include "dockmine/synth/versions.h"
#include "dockmine/util/error.h"

namespace dockmine::temporal {

struct ChurnConfig {
  /// Fraction of images re-pushed per epoch ("Revisiting Dockerfiles":
  /// a steady ~10-15% minority of Dockerfiles sees commits in any given
  /// observation window; we sit mid-band).
  double repush_fraction = 0.14;
  /// Top-of-stack layers rebuilt by a re-push (same paper: revisions
  /// cluster in trailing RUN/COPY instructions; FROM — the base stack —
  /// rarely moves, so base/empty layers never churn here).
  std::uint32_t churn_layers = 2;
};

/// Deterministic churn process over the hub's image population.
class EpochModel {
 public:
  /// Epoch numbers occupy the upper half of the 10-bit version field of
  /// synth::VersionModel::versioned_layer_id, so temporal rebuilds can
  /// never collide with tag-history layer ids of the same image.
  static constexpr std::uint32_t kEpochVersionBase = 512;
  static constexpr std::uint32_t kMaxEpoch = 511;

  explicit EpochModel(const synth::HubModel& hub, ChurnConfig config = {})
      : hub_(hub), config_(config) {}

  /// Does image `image_index` get re-pushed at epoch `epoch` (>= 1)?
  bool repushed(std::uint64_t image_index, std::uint32_t epoch) const;

  /// Latest epoch <= `epoch` at which the image was (re-)pushed; 0 means
  /// the original epoch-0 push still stands.
  std::uint32_t effective_epoch(std::uint64_t image_index,
                                std::uint32_t epoch) const;

  /// The image's layer stack as of `epoch`: the epoch-0 stack with its top
  /// min(churn_layers, depth) layers replaced by epoch-stamped rebuilds.
  /// Rebuilt ids reuse the versioned-layer id space (pattern 3 => kApp),
  /// so the materializer produces fresh-but-deterministic bytes for them.
  synth::ImageSpec image_at(std::uint64_t image_index,
                            std::uint32_t epoch) const;

  /// Names of repositories whose image is re-pushed at exactly `epoch`,
  /// in repository order — the epoch's churn set.
  std::vector<std::string> churned_repositories(std::uint32_t epoch) const;

  const synth::HubModel& hub() const noexcept { return hub_; }
  const ChurnConfig& config() const noexcept { return config_; }

 private:
  const synth::HubModel& hub_;
  ChurnConfig config_;
};

/// Drives a registry::Service through epochs: epoch 0 populates the full
/// snapshot; each advance() re-pushes the epoch's churn set. The blob cache
/// persists across epochs, so unchanged layer ids keep their digests and
/// only rebuilt layers are materialized. A re-push repoints `latest` (the
/// tag move) and leaves the superseded manifest blob in the store — exactly
/// the lifecycle a real registry sees.
class EvolvingRegistry {
 public:
  EvolvingRegistry(const EpochModel& model, int gzip_level = 6)
      : model_(model),
        materializer_(model.hub(), gzip_level) {}

  struct EpochPush {
    std::uint32_t epoch = 0;
    std::uint64_t manifests = 0;            ///< manifests (re-)pushed
    std::uint64_t layers_materialized = 0;  ///< fresh gzip blobs built
    std::uint64_t layers_reused = 0;        ///< digests served from cache
    std::vector<std::string> repushed;      ///< churn set, repository order
  };

  /// Epoch 0: push every repository and its `latest` image into `service`.
  util::Result<EpochPush> initialize(registry::Service& service);

  /// Advance `service` to the next epoch (requires initialize() first).
  util::Result<EpochPush> advance(registry::Service& service);

  /// Epochs applied so far; 0 right after initialize().
  std::uint32_t epoch() const noexcept { return epoch_; }
  const EpochModel& model() const noexcept { return model_; }

 private:
  const EpochModel& model_;
  synth::Materializer materializer_;
  synth::Materializer::BlobCache blob_cache_;
  std::uint32_t epoch_ = 0;
  bool initialized_ = false;
};

/// Convenience for the batch oracle and bench: a fresh service advanced to
/// `epoch` from scratch (initialize + `epoch` advances).
util::Result<std::uint64_t> build_registry_at_epoch(
    const EpochModel& model, std::uint32_t epoch, int gzip_level,
    registry::Service& service);

}  // namespace dockmine::temporal
