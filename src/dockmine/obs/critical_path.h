// Critical-path attribution over a TraceJournal snapshot.
//
// "Which stage was the bottleneck" is not answerable from aggregate span
// totals once stages overlap: in the streamed pipeline, download and
// analyze wall-clock sum to far more than the run's elapsed time. The
// critical path decomposes the *root span's own wall interval* instead:
// walking backwards from the root's end, each instant is attributed to the
// leaf descendant event that finished last at that point (the "last
// finisher" — the work the run was actually waiting on; container spans
// like "stream" are skipped so they cannot swallow the per-layer events
// inside them), and instants no leaf covers fall to the root itself. The
// resulting segments tile the root interval exactly, so the per-name
// totals sum to the root's wall time and answer "if I made stage X faster,
// would the run finish sooner".
//
// Works on any journal snapshot, including merged multi-node ones (events
// keep their trace_id, and the walk is confined to the root's trace).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dockmine/json/json.h"
#include "dockmine/obs/journal.h"

namespace dockmine::obs {

/// One contributor to the critical path, aggregated by event name.
struct CriticalPathEntry {
  std::string name;
  double total_ms = 0.0;        ///< time this name was the last finisher
  std::uint64_t segments = 0;   ///< contiguous intervals attributed to it
};

struct CriticalPathReport {
  std::string root_name;
  double root_wall_ms = 0.0;   ///< the decomposed interval's length
  double root_self_ms = 0.0;   ///< instants covered by no descendant
  double attributed_ms = 0.0;  ///< sum of entries + root self (== wall)
  /// Sorted by total_ms descending (name ascending on ties). Does not
  /// include the root-self share; that is root_self_ms.
  std::vector<CriticalPathEntry> entries;
};

/// Decompose the longest event named `root_name` in `events`. Returns an
/// empty report (root_wall_ms == 0) when no such event exists.
CriticalPathReport critical_path(const std::vector<TraceEvent>& events,
                                 std::string_view root_name = "pipeline");

/// {"root":...,"wall_ms":...,"self_ms":...,"attributed_ms":...,
///  "entries":[{"name","total_ms","segments"},...]}
json::Value to_json(const CriticalPathReport& report);

}  // namespace dockmine::obs
