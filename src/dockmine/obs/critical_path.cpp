#include "dockmine/obs/critical_path.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace dockmine::obs {
namespace {

/// Transitive descendants of `root` within its trace, via parent_id edges.
std::vector<const TraceEvent*> descendants_of(
    const std::vector<TraceEvent>& events, const TraceEvent& root) {
  std::unordered_map<std::uint64_t, std::vector<const TraceEvent*>> children;
  for (const TraceEvent& event : events) {
    if (event.trace_id != root.trace_id) continue;
    children[event.parent_id].push_back(&event);
  }
  std::vector<const TraceEvent*> out;
  std::vector<std::uint64_t> frontier{root.span_id};
  std::unordered_set<std::uint64_t> seen{root.span_id};
  while (!frontier.empty()) {
    const std::uint64_t parent = frontier.back();
    frontier.pop_back();
    const auto it = children.find(parent);
    if (it == children.end()) continue;
    for (const TraceEvent* child : it->second) {
      if (!seen.insert(child->span_id).second) continue;  // malformed cycle
      out.push_back(child);
      frontier.push_back(child->span_id);
    }
  }
  return out;
}

}  // namespace

CriticalPathReport critical_path(const std::vector<TraceEvent>& events,
                                 std::string_view root_name) {
  CriticalPathReport report;
  report.root_name.assign(root_name);

  const TraceEvent* root = nullptr;
  for (const TraceEvent& event : events) {
    if (event.name != root_name) continue;
    if (root == nullptr ||
        event.end_ms - event.start_ms > root->end_ms - root->start_ms) {
      root = &event;
    }
  }
  if (root == nullptr || root->end_ms <= root->start_ms) return report;
  report.root_wall_ms = root->end_ms - root->start_ms;

  // Only leaf descendants compete for attribution: a container span (e.g.
  // "stream") outlives the per-layer events inside it, so letting it win
  // "last finisher" would swallow its whole interval and hide the real
  // work. Its uncovered remainder still shows up as root self time.
  std::unordered_set<std::uint64_t> has_children;
  for (const TraceEvent& event : events) {
    if (event.trace_id == root->trace_id) has_children.insert(event.parent_id);
  }
  std::vector<const TraceEvent*> candidates;
  for (const TraceEvent* event : descendants_of(events, *root)) {
    if (!has_children.count(event->span_id)) candidates.push_back(event);
  }

  // Candidates sorted ascending by (end, start, span_id); the backward walk
  // consumes them from the back, so ties resolve deterministically.
  std::sort(candidates.begin(), candidates.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              if (a->end_ms != b->end_ms) return a->end_ms < b->end_ms;
              if (a->start_ms != b->start_ms) return a->start_ms < b->start_ms;
              return a->span_id < b->span_id;
            });

  std::map<std::string, CriticalPathEntry> by_name;
  const auto attribute = [&](const std::string& name, double from, double to) {
    if (to <= from) return;
    CriticalPathEntry& entry = by_name[name];
    entry.name = name;
    entry.total_ms += to - from;
    ++entry.segments;
  };

  double t = root->end_ms;
  std::size_t i = candidates.size();
  while (t > root->start_ms) {
    // Last finisher at time t: the candidate with the greatest end <= t
    // whose start precedes t (zero-length events can never cover an
    // instant, and requiring start < t guarantees the walk advances).
    // Skipped candidates stay ineligible for every later (smaller) t, so
    // the cursor only moves backward.
    const TraceEvent* best = nullptr;
    while (i > 0) {
      const TraceEvent* candidate = candidates[i - 1];
      if (candidate->end_ms > t || candidate->start_ms >= t) {
        --i;
        continue;
      }
      best = candidate;
      --i;
      break;
    }
    if (best == nullptr) {
      report.root_self_ms += t - root->start_ms;
      break;
    }
    const double gap_floor = std::max(best->end_ms, root->start_ms);
    if (gap_floor < t) report.root_self_ms += t - gap_floor;
    const double seg_start = std::max(best->start_ms, root->start_ms);
    attribute(best->name, seg_start, best->end_ms);
    t = seg_start;
  }

  report.entries.reserve(by_name.size());
  for (auto& [name, entry] : by_name) report.entries.push_back(entry);
  std::sort(report.entries.begin(), report.entries.end(),
            [](const CriticalPathEntry& a, const CriticalPathEntry& b) {
              if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
              return a.name < b.name;
            });
  report.attributed_ms = report.root_self_ms;
  for (const CriticalPathEntry& entry : report.entries) {
    report.attributed_ms += entry.total_ms;
  }
  return report;
}

json::Value to_json(const CriticalPathReport& report) {
  json::Value entries = json::Value::array();
  for (const CriticalPathEntry& entry : report.entries) {
    json::Value row = json::Value::object();
    row.set("name", entry.name);
    row.set("total_ms", entry.total_ms);
    row.set("segments", entry.segments);
    entries.push_back(std::move(row));
  }
  json::Value root = json::Value::object();
  root.set("root", report.root_name);
  root.set("wall_ms", report.root_wall_ms);
  root.set("self_ms", report.root_self_ms);
  root.set("attributed_ms", report.attributed_ms);
  root.set("entries", std::move(entries));
  return root;
}

}  // namespace dockmine::obs
