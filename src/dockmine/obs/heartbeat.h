// Low-rate heartbeat emitter for long (hours/weeks) runs: a background
// thread appends one JSON line per interval — obs-clock timestamp, node
// id, every counter and gauge, and the journal's recorded/dropped totals —
// to a JSONL file. `tail -f` of that file answers "is the crawl still
// making progress, and how fast" without attaching a scraper.
//
// Off by default; one emitter per process. Snapshot cost is bounded by the
// registry size (no histograms, no span rows), and the thread sleeps on a
// condition variable between beats, so an idle heartbeat costs nothing
// measurable. Under -DDOCKMINE_OBS=OFF `start_heartbeat` refuses to start.
#pragma once

#include <cstdint>
#include <string>

namespace dockmine::obs {

struct HeartbeatOptions {
  std::uint64_t interval_ms = 1000;  ///< real (steady-clock) ms between beats
  std::string path;                  ///< JSONL file, appended to
};

/// One heartbeat snapshot as a single-line JSON document (no newline):
/// {"ts_ms":...,"node":...,"counters":{...},"gauges":{...},
///  "journal":{"recorded":...,"dropped":...}}
std::string heartbeat_line();

/// Start the emitter (emits one line immediately, then every interval).
/// Returns false if one is already running, the file cannot be opened, or
/// obs is compiled out.
bool start_heartbeat(const HeartbeatOptions& options);

/// Stop and join the emitter. Safe to call when none is running.
void stop_heartbeat();

bool heartbeat_running() noexcept;

}  // namespace dockmine::obs
