// Low-rate heartbeat emitter for long (hours/weeks) runs: a background
// thread appends one JSON line per interval — obs-clock timestamp, node
// id, every counter and gauge, and the journal's recorded/dropped totals —
// to a JSONL file and/or a caller-supplied sink. `tail -f` of the file
// answers "is the crawl still making progress, and how fast" without
// attaching a scraper; the sink is how distributed workers turn the same
// beats into liveness frames on the coordinator socket.
//
// Off by default; one emitter per process. Snapshot cost is bounded by the
// registry size (no histograms, no span rows), and the thread sleeps on a
// condition variable between beats, so an idle heartbeat costs nothing
// measurable. Under -DDOCKMINE_OBS=OFF `start_heartbeat` refuses to start.
//
// Shutdown is flush-exact: stop_heartbeat() emits one final line after the
// worker thread has joined, then flushes and fsyncs the file before
// returning. A consumer that sees the process exit cleanly always finds a
// final beat on disk — a clean exit is never mistaken for a missed
// deadline.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace dockmine::obs {

struct HeartbeatOptions {
  std::uint64_t interval_ms = 1000;  ///< real (steady-clock) ms between beats
  std::string path;                  ///< JSONL file, appended to (optional
                                     ///< when a sink is given)
  /// Invoked with each emitted line (no trailing newline), from the emitter
  /// thread — and once more from stop_heartbeat()'s caller for the final
  /// beat. Must not call start/stop_heartbeat.
  std::function<void(const std::string&)> sink;
};

/// One heartbeat snapshot as a single-line JSON document (no newline):
/// {"ts_ms":...,"seq":...,"node":...,"counters":{...},"gauges":{...},
///  "journal":{"recorded":...,"dropped":...}}
/// `seq` increments per line built, so a consumer detects dropped beats;
/// obs::reset_all() restarts it at 0 (a fresh start must look fresh).
std::string heartbeat_line();

/// The sequence number the *next* heartbeat_line() will carry.
std::uint64_t heartbeat_seq() noexcept;
void reset_heartbeat_seq() noexcept;

/// Start the emitter (emits one line immediately, then every interval).
/// Returns false if one is already running, the file cannot be opened, or
/// obs is compiled out.
bool start_heartbeat(const HeartbeatOptions& options);

/// Stop and join the emitter. Safe to call when none is running.
void stop_heartbeat();

bool heartbeat_running() noexcept;

}  // namespace dockmine::obs
