#include "dockmine/obs/heartbeat.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "dockmine/json/json.h"
#include "dockmine/obs/journal.h"
#include "dockmine/obs/obs.h"

#include <atomic>

namespace dockmine::obs {
namespace {

std::atomic<std::uint64_t> g_seq{0};

// The file is written through a raw descriptor (not an ofstream) so the
// shutdown path can fsync: the contract is that a clean process exit leaves
// the final line durably on disk, and only fsync makes that true across a
// crash of the *machine* right after the crawl process exits.
struct HeartbeatState {
  std::mutex mutex;
  std::condition_variable cv;
  std::thread worker;
  bool stop_requested = false;
  bool running = false;
  int fd = -1;  ///< -1 when the emitter is sink-only
  std::function<void(const std::string&)> sink;
};

HeartbeatState& state() {
  static HeartbeatState instance;
  return instance;
}

void emit_line(int fd, const std::function<void(const std::string&)>& sink) {
  const std::string line = heartbeat_line();
  if (fd >= 0) {
    std::string with_newline = line;
    with_newline.push_back('\n');
    const char* data = with_newline.data();
    std::size_t left = with_newline.size();
    while (left > 0) {
      const ssize_t n = ::write(fd, data, left);
      if (n <= 0) break;  // full disk / closed fd: drop the beat, not the run
      data += n;
      left -= static_cast<std::size_t>(n);
    }
  }
  if (sink) sink(line);
}

}  // namespace

std::string heartbeat_line() {
  const Registry::Snapshot metrics = Registry::global().snapshot();
  json::Value counters = json::Value::object();
  for (const auto& [name, value] : metrics.counters) {
    counters.set(name, value);
  }
  json::Value gauges = json::Value::object();
  for (const auto& [name, value] : metrics.gauges) {
    gauges.set(name, std::int64_t{value});
  }
  json::Value journal = json::Value::object();
  journal.set("recorded", TraceJournal::global().recorded());
  journal.set("dropped", TraceJournal::global().dropped());

  json::Value root = json::Value::object();
  root.set("ts_ms", now_ms());
  root.set("seq", g_seq.fetch_add(1, std::memory_order_relaxed));
  root.set("node", std::uint64_t{node_id()});
  root.set("counters", std::move(counters));
  root.set("gauges", std::move(gauges));
  root.set("journal", std::move(journal));
  return root.dump();
}

std::uint64_t heartbeat_seq() noexcept {
  return g_seq.load(std::memory_order_relaxed);
}

void reset_heartbeat_seq() noexcept {
  g_seq.store(0, std::memory_order_relaxed);
}

bool start_heartbeat(const HeartbeatOptions& options) {
#if defined(DOCKMINE_OBS_DISABLED)
  (void)options;
  return false;
#else
  if (options.path.empty() && !options.sink) return false;
  HeartbeatState& hb = state();
  std::lock_guard<std::mutex> lock(hb.mutex);
  if (hb.running) return false;
  int fd = -1;
  if (!options.path.empty()) {
    fd = ::open(options.path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) return false;
  }
  hb.fd = fd;
  hb.sink = options.sink;
  hb.stop_requested = false;
  hb.running = true;
  const auto interval = std::chrono::milliseconds(
      options.interval_ms == 0 ? 1 : options.interval_ms);
  hb.worker = std::thread([interval] {
    HeartbeatState& st = state();
    std::unique_lock<std::mutex> wait_lock(st.mutex);
    while (true) {
      // Snapshot outside the state lock so a slow registry never delays
      // stop_heartbeat(); the lock only guards the stop flag and cv. fd and
      // sink are stable until the thread has been joined.
      const int beat_fd = st.fd;
      const auto& sink = st.sink;
      wait_lock.unlock();
      emit_line(beat_fd, sink);
      wait_lock.lock();
      if (st.cv.wait_for(wait_lock, interval,
                         [&st] { return st.stop_requested; })) {
        return;
      }
    }
  });
  return true;
#endif
}

void stop_heartbeat() {
#if !defined(DOCKMINE_OBS_DISABLED)
  HeartbeatState& hb = state();
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(hb.mutex);
    if (!hb.running) return;
    hb.stop_requested = true;
    worker = std::move(hb.worker);
  }
  hb.cv.notify_all();
  worker.join();
  // Final beat: the run's last counter values always reach the file (and
  // sink) before this returns — a consumer must never misread a clean exit
  // as a missed deadline because the closing line was lost in a buffer.
  emit_line(hb.fd, hb.sink);
  if (hb.fd >= 0) {
    ::fsync(hb.fd);
    ::close(hb.fd);
  }
  {
    std::lock_guard<std::mutex> lock(hb.mutex);
    hb.fd = -1;
    hb.sink = nullptr;
    hb.running = false;
    hb.stop_requested = false;
  }
#endif
}

bool heartbeat_running() noexcept {
#if defined(DOCKMINE_OBS_DISABLED)
  return false;
#else
  HeartbeatState& hb = state();
  std::lock_guard<std::mutex> lock(hb.mutex);
  return hb.running;
#endif
}

}  // namespace dockmine::obs
