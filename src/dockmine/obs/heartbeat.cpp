#include "dockmine/obs/heartbeat.h"

#include <chrono>
#include <condition_variable>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "dockmine/json/json.h"
#include "dockmine/obs/journal.h"
#include "dockmine/obs/obs.h"

namespace dockmine::obs {
namespace {

struct HeartbeatState {
  std::mutex mutex;
  std::condition_variable cv;
  std::thread worker;
  bool stop_requested = false;
  bool running = false;
};

HeartbeatState& state() {
  static HeartbeatState instance;
  return instance;
}

}  // namespace

std::string heartbeat_line() {
  const Registry::Snapshot metrics = Registry::global().snapshot();
  json::Value counters = json::Value::object();
  for (const auto& [name, value] : metrics.counters) {
    counters.set(name, value);
  }
  json::Value gauges = json::Value::object();
  for (const auto& [name, value] : metrics.gauges) {
    gauges.set(name, std::int64_t{value});
  }
  json::Value journal = json::Value::object();
  journal.set("recorded", TraceJournal::global().recorded());
  journal.set("dropped", TraceJournal::global().dropped());

  json::Value root = json::Value::object();
  root.set("ts_ms", now_ms());
  root.set("node", std::uint64_t{node_id()});
  root.set("counters", std::move(counters));
  root.set("gauges", std::move(gauges));
  root.set("journal", std::move(journal));
  return root.dump();
}

bool start_heartbeat(const HeartbeatOptions& options) {
#if defined(DOCKMINE_OBS_DISABLED)
  (void)options;
  return false;
#else
  HeartbeatState& hb = state();
  std::lock_guard<std::mutex> lock(hb.mutex);
  if (hb.running) return false;
  auto out = std::make_shared<std::ofstream>(options.path, std::ios::app);
  if (!out->is_open()) return false;
  hb.stop_requested = false;
  hb.running = true;
  const auto interval = std::chrono::milliseconds(
      options.interval_ms == 0 ? 1 : options.interval_ms);
  hb.worker = std::thread([out = std::move(out), interval] {
    HeartbeatState& st = state();
    std::unique_lock<std::mutex> wait_lock(st.mutex);
    while (true) {
      // Snapshot outside the state lock so a slow registry never delays
      // stop_heartbeat(); the lock only guards the stop flag and cv.
      wait_lock.unlock();
      (*out) << heartbeat_line() << '\n';
      out->flush();
      wait_lock.lock();
      if (st.cv.wait_for(wait_lock, interval,
                         [&st] { return st.stop_requested; })) {
        return;
      }
    }
  });
  return true;
#endif
}

void stop_heartbeat() {
#if !defined(DOCKMINE_OBS_DISABLED)
  HeartbeatState& hb = state();
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(hb.mutex);
    if (!hb.running) return;
    hb.stop_requested = true;
    worker = std::move(hb.worker);
  }
  hb.cv.notify_all();
  worker.join();
  {
    std::lock_guard<std::mutex> lock(hb.mutex);
    hb.running = false;
    hb.stop_requested = false;
  }
#endif
}

bool heartbeat_running() noexcept {
#if defined(DOCKMINE_OBS_DISABLED)
  return false;
#else
  HeartbeatState& hb = state();
  std::lock_guard<std::mutex> lock(hb.mutex);
  return hb.running;
#endif
}

}  // namespace dockmine::obs
