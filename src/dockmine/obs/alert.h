// SLO alerting on sampled series (dockmine::obs v3, DESIGN.md §16).
//
// An `AlertRules` engine owns a set of declarative rules and, on every
// evaluation tick (the serve daemon runs one after each sampler scrape),
// reads the `TimeSeriesStore` and walks each rule through the classic
// pending -> firing -> resolved state machine:
//
//   * threshold rules compare an instant value, a windowed rate, or a
//     windowed histogram quantile against a bound;
//   * burn-rate rules (nonempty `total_series`) compare the error fraction
//     rate(series)/rate(total) against the error budget — the exported
//     value is the burn multiple, and the threshold is "how many budgets
//     per unit time is too fast" (Google SRE workbook semantics);
//   * `for_ms` debounces: the condition must hold continuously that long
//     before the rule fires.
//
// Transitions are returned to the caller, mirrored into the
// `dockmine_alerts_firing` gauge and per-rule
// `dockmine_alert_transitions_total{rule="..."}` counters, and appended as
// JSONL to an optional alert log — one object per transition, so `tail -f`
// is the poor man's pager.
//
// Evaluation is driven by the injectable obs clock and reads only the
// store, so tests pin firing/resolved sequences (and the JSONL log)
// byte-for-byte under a virtual clock.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dockmine/json/json.h"
#include "dockmine/obs/timeseries.h"

namespace dockmine::obs {

struct AlertRule {
  enum class Source : std::uint8_t {
    kValue = 0,     ///< newest sample's value (gauge level, counter total)
    kRate = 1,      ///< rate_per_s over `window_ms`
    kQuantile = 2,  ///< histogram quantile over `window_ms`
  };
  enum class Cmp : std::uint8_t { kGt = 0, kLt = 1 };

  std::string name;    ///< rule id, unique within an engine
  std::string series;  ///< selector (TimeSeriesStore::selector_matches)
  Source source = Source::kValue;
  double quantile = 0.99;     ///< kQuantile only; must be 0.5 / 0.9 / 0.99
  double window_ms = 60'000;  ///< kRate / kQuantile lookback
  Cmp cmp = Cmp::kGt;
  double threshold = 0.0;
  double for_ms = 0.0;  ///< condition must hold this long before firing

  /// Burn-rate mode: when nonempty the observed value becomes
  /// (rate(series)/rate(total_series)) / error_budget — the SLO burn
  /// multiple — and `source` is ignored.
  std::string total_series;
  double error_budget = 0.001;
};

/// Point-in-time state of one rule.
struct AlertStatus {
  std::string name;
  bool pending = false;  ///< condition holds, for_ms not yet served
  bool firing = false;
  double pending_since_ms = 0.0;
  double fired_at_ms = 0.0;
  double resolved_at_ms = 0.0;
  double last_value = 0.0;  ///< most recent observed value (0 if no data)
  std::uint64_t transitions = 0;  ///< fire + resolve edges since reset
};

/// One fire/resolve edge from an evaluate() call.
struct AlertTransition {
  std::string name;
  bool firing = false;  ///< true = fired, false = resolved
  double ts_ms = 0.0;
  double value = 0.0;
};

class AlertRules {
 public:
  AlertRules() = default;
  explicit AlertRules(std::vector<AlertRule> rules) { configure(rules); }

  /// Replace the rule set and drop all state.
  void configure(std::vector<AlertRule> rules);
  /// Append fire/resolve lines to this path (empty = no log).
  void set_log_path(std::string path);

  /// Evaluate every rule against `store` at `now`. Returns the edges that
  /// occurred this tick (and appends them to the JSONL log). Series with
  /// no data yet are treated as condition-false, never as firing.
  std::vector<AlertTransition> evaluate(const TimeSeriesStore& store,
                                        double now_ms);

  std::vector<AlertStatus> snapshot() const;
  std::size_t firing_count() const;
  /// `[{"name":...,"firing":...,"pending":...,"last_value":...}, ...]`
  json::Value to_json() const;

  /// Drop firing/pending state (rules stay).
  void reset();

 private:
  struct Entry {
    AlertRule rule;
    AlertStatus status;
  };
  /// Observed value for one rule, nullopt when the series has no usable
  /// data yet.
  std::optional<double> observe(const Entry& entry,
                                const TimeSeriesStore& store) const;
  void log_transition(const AlertTransition& transition);

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  std::string log_path_;
};

/// The default rule set `dockmine serve --telemetry` arms: generous
/// latency/error/availability bounds that a healthy daemon under CI smoke
/// load never trips, but a wedged one does.
std::vector<AlertRule> default_serve_rules();

}  // namespace dockmine::obs
