// Process-wide observability substrate (metrics half; tracing lives in
// span.h, export in export.h).
//
// The paper's crawl+download ran for weeks against a public service; what
// made that operable was knowing, live, where time, bytes, retries, and
// failures were going. This module is that substrate for dockmine: a
// process-wide `Registry` of named instruments —
//
//   * `Counter`  — monotonically increasing u64, one relaxed fetch_add per
//                  event, safe from any thread;
//   * `Gauge`    — instantaneous i64 level (queue depth, active workers);
//   * `Histogram`— log2-bucketed latency/size sketch, sharded across cache
//                  lines so N hammering threads do not serialize on one
//                  bucket word. Snapshots merge shards into the same
//                  `stats::Log2Histogram` bucketing the figure pipeline
//                  uses, so quantiles come for free.
//
// Cost discipline (the reason this can be wired through every hot path):
//
//   * Runtime toggle, off by default: every record path first does one
//     relaxed atomic<bool> load and returns. No locks, no allocation, no
//     RMW on the disabled path.
//   * Compile-time toggle: configuring with -DDOCKMINE_OBS=OFF defines
//     DOCKMINE_OBS_DISABLED and every record body compiles to nothing
//     (`kCompiledIn == false`); the API stays source-compatible so call
//     sites never #ifdef.
//   * Instrument lookup (`Registry::counter("name")`) interns by name under
//     a mutex and returns a stable reference; call sites resolve once
//     (static local / member) and the hot loop touches only the instrument.
//
// Time is injectable (`set_clock`) so latency metrics and spans are exactly
// reproducible on a virtual clock — the same trick registry::TimeSource
// plays for backoff schedules.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dockmine/stats/histogram.h"

namespace dockmine::obs {

/// False when the tree was configured with -DDOCKMINE_OBS=OFF: every
/// record operation is an empty inline body the optimizer deletes.
inline constexpr bool kCompiledIn =
#if defined(DOCKMINE_OBS_DISABLED)
    false;
#else
    true;
#endif

namespace detail {
inline std::atomic<bool> g_enabled{false};
/// Stable shard slot for the calling thread (round-robin at first use).
std::size_t assign_shard() noexcept;
inline std::size_t shard_index() noexcept {
  thread_local const std::size_t index = assign_shard();
  return index;
}
}  // namespace detail

/// Runtime master switch; off by default so un-instrumented workloads pay
/// one relaxed load per event and nothing else.
inline bool enabled() noexcept {
#if defined(DOCKMINE_OBS_DISABLED)
  return false;
#else
  return detail::g_enabled.load(std::memory_order_relaxed);
#endif
}
void set_enabled(bool on) noexcept;

/// Wall/CPU clocks used by every timed instrument and by spans. Injecting a
/// virtual wall clock makes latency metrics bit-reproducible; with no cpu
/// function the CPU clock reads a constant 0 (still deterministic). Must
/// not be swapped while instrumented code is running in other threads.
void set_clock(std::function<double()> wall_ms,
               std::function<double()> cpu_ms = nullptr);
void reset_clock() noexcept;  ///< back to steady_clock + thread CPU time
double now_ms() noexcept;
double cpu_now_ms() noexcept;

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
#if !defined(DOCKMINE_OBS_DISABLED)
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept {
#if !defined(DOCKMINE_OBS_DISABLED)
    if (enabled()) value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void add(std::int64_t n = 1) noexcept {
#if !defined(DOCKMINE_OBS_DISABLED)
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  void sub(std::int64_t n = 1) noexcept { add(-n); }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Merged, point-in-time view of one histogram (see Registry::snapshot).
/// `values` reuses the stats log2 bucketing, so quantile()/rows() behave
/// exactly like the figure pipeline's sketches.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  stats::Log2Histogram values;
};

/// Sharded log2 histogram. Writers touch one cache-line-aligned shard
/// (chosen per thread); readers merge shards on snapshot. Bucket k covers
/// [2^k, 2^(k+1)); values < 1 land in a zero bucket — identical semantics
/// to stats::Log2Histogram, which snapshots reconstruct.
class Histogram {
 public:
  static constexpr std::size_t kShards = 8;
  static constexpr int kBuckets = 64;  // mirrors stats::Log2Histogram

  void observe(double x, std::uint64_t weight = 1) noexcept {
#if !defined(DOCKMINE_OBS_DISABLED)
    if (!enabled()) return;
    Shard& shard = shards_[detail::shard_index() % kShards];
    shard.count.fetch_add(weight, std::memory_order_relaxed);
    shard.sum.fetch_add(x * static_cast<double>(weight),
                        std::memory_order_relaxed);
    if (!(x >= 1.0)) {  // also catches NaN, like stats::Log2Histogram
      shard.zero.fetch_add(weight, std::memory_order_relaxed);
      return;
    }
    const int k = bucket_of(x);
    shard.buckets[static_cast<std::size_t>(k)].fetch_add(
        weight, std::memory_order_relaxed);
#else
    (void)x;
    (void)weight;
#endif
  }

  std::uint64_t count() const noexcept;
  double sum() const noexcept;
  /// Merge all shards into a stats sketch (quantiles, rows, ...).
  stats::Log2Histogram merged() const;
  void reset() noexcept;

 private:
  static int bucket_of(double x) noexcept;

  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<std::uint64_t> zero{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  };
  std::array<Shard, kShards> shards_{};
};

/// Name-interning instrument registry. Lookup is mutex-guarded (cold:
/// resolve once, keep the reference — addresses are stable for the
/// registry's lifetime); recording never touches the registry. reset()
/// zeroes values but keeps registrations, so cached references survive.
///
/// Naming convention (mirrored in DESIGN.md §Observability):
/// `dockmine_<subsystem>_<what>[_total|_bytes|_ms]`, with an optional
/// Prometheus-style label suffix baked into the name, e.g.
/// `dockmine_resilient_errors_total{code="reset"}`.
class Registry {
 public:
  /// The process-wide registry every built-in instrument lives in.
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  struct Snapshot {
    /// All vectors sorted by name, zero-valued instruments included, so two
    /// snapshots of identical activity serialize identically.
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<HistogramSnapshot> histograms;
  };
  Snapshot snapshot() const;

  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// A stopwatch against the obs clock: `Timer t; ...; hist.observe(t.ms())`.
/// Reads the clock only when obs is enabled, so the disabled path never
/// pays a clock call.
class Timer {
 public:
  Timer() noexcept : start_ms_(enabled() ? now_ms() : 0.0) {}
  double ms() const noexcept { return enabled() ? now_ms() - start_ms_ : 0.0; }

 private:
  double start_ms_;
};

}  // namespace dockmine::obs
