#include "dockmine/obs/alert.h"

#include <cstdio>
#include <utility>

#include "dockmine/obs/obs.h"

namespace dockmine::obs {

namespace {

/// Max of the observed metric across every series the selector matches —
/// a multi-series rule fires when its worst member does.
std::optional<double> worst_of(const TimeSeriesStore& store,
                               std::string_view selector,
                               const AlertRule& rule) {
  std::optional<double> worst;
  for (const TimeSeriesStore::SeriesInfo& info : store.series(selector)) {
    std::optional<double> value;
    switch (rule.source) {
      case AlertRule::Source::kValue: {
        const std::optional<TsSample> sample = store.latest(info.name);
        if (sample) value = sample->value;
        break;
      }
      case AlertRule::Source::kRate:
        value = store.rate_per_s(info.name, rule.window_ms);
        break;
      case AlertRule::Source::kQuantile:
        value = store.quantile(info.name, rule.quantile, rule.window_ms);
        break;
    }
    if (!value) continue;
    if (!worst) {
      worst = value;
      continue;
    }
    const bool worse = rule.cmp == AlertRule::Cmp::kLt ? *value < *worst
                                                       : *value > *worst;
    if (worse) worst = value;
  }
  return worst;
}

/// Summed rate across every matching series (burn-rate numerators and
/// denominators aggregate label variants).
std::optional<double> summed_rate(const TimeSeriesStore& store,
                                  std::string_view selector,
                                  double window_ms) {
  std::optional<double> total;
  for (const TimeSeriesStore::SeriesInfo& info : store.series(selector)) {
    const std::optional<double> rate =
        store.rate_per_s(info.name, window_ms);
    if (!rate) continue;
    total = total.value_or(0.0) + *rate;
  }
  return total;
}

}  // namespace

void AlertRules::configure(std::vector<AlertRule> rules) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  entries_.reserve(rules.size());
  for (AlertRule& rule : rules) {
    Entry entry;
    entry.status.name = rule.name;
    entry.rule = std::move(rule);
    entries_.push_back(std::move(entry));
  }
}

void AlertRules::set_log_path(std::string path) {
  std::lock_guard<std::mutex> lock(mutex_);
  log_path_ = std::move(path);
}

std::optional<double> AlertRules::observe(
    const Entry& entry, const TimeSeriesStore& store) const {
  const AlertRule& rule = entry.rule;
  if (!rule.total_series.empty()) {
    const std::optional<double> bad =
        summed_rate(store, rule.series, rule.window_ms);
    const std::optional<double> total =
        summed_rate(store, rule.total_series, rule.window_ms);
    if (!bad || !total || *total <= 0.0 || rule.error_budget <= 0.0) {
      return std::nullopt;
    }
    return (*bad / *total) / rule.error_budget;  // the burn multiple
  }
  return worst_of(store, rule.series, rule);
}

std::vector<AlertTransition> AlertRules::evaluate(
    const TimeSeriesStore& store, double now_ms) {
  std::vector<AlertTransition> edges;
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& entry : entries_) {
    AlertStatus& status = entry.status;
    const std::optional<double> value = observe(entry, store);
    if (value) status.last_value = *value;
    const bool breached =
        value && (entry.rule.cmp == AlertRule::Cmp::kLt
                      ? *value < entry.rule.threshold
                      : *value > entry.rule.threshold);
    if (breached) {
      if (!status.pending && !status.firing) {
        status.pending = true;
        status.pending_since_ms = now_ms;
      }
      const bool served_for =
          now_ms - status.pending_since_ms >= entry.rule.for_ms;
      if (!status.firing && served_for) {
        status.pending = false;
        status.firing = true;
        status.fired_at_ms = now_ms;
        status.transitions += 1;
        edges.push_back(AlertTransition{status.name, true, now_ms, *value});
      }
    } else {
      status.pending = false;
      if (status.firing) {
        status.firing = false;
        status.resolved_at_ms = now_ms;
        status.transitions += 1;
        edges.push_back(AlertTransition{status.name, false, now_ms,
                                        value.value_or(status.last_value)});
      }
    }
  }
  std::size_t firing = 0;
  for (const Entry& entry : entries_) firing += entry.status.firing ? 1 : 0;
  Registry::global().gauge("dockmine_alerts_firing")
      .set(static_cast<std::int64_t>(firing));
  for (const AlertTransition& edge : edges) {
    Registry::global()
        .counter("dockmine_alert_transitions_total{rule=\"" + edge.name +
                 "\"}")
        .add();
    log_transition(edge);
  }
  return edges;
}

void AlertRules::log_transition(const AlertTransition& transition) {
  if (log_path_.empty()) return;
  json::Value line = json::Value::object();
  line.set("ts_ms", transition.ts_ms);
  line.set("alert", transition.name);
  line.set("state", transition.firing ? "firing" : "resolved");
  line.set("value", transition.value);
  std::FILE* file = std::fopen(log_path_.c_str(), "ab");
  if (file == nullptr) return;
  const std::string text = line.dump();
  std::fwrite(text.data(), 1, text.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
}

std::vector<AlertStatus> AlertRules::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<AlertStatus> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.status);
  return out;
}

std::size_t AlertRules::firing_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t firing = 0;
  for (const Entry& entry : entries_) firing += entry.status.firing ? 1 : 0;
  return firing;
}

json::Value AlertRules::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  json::Value out = json::Value::array();
  for (const Entry& entry : entries_) {
    const AlertStatus& status = entry.status;
    json::Value row = json::Value::object();
    row.set("name", status.name);
    row.set("firing", status.firing);
    row.set("pending", status.pending);
    row.set("last_value", status.last_value);
    row.set("transitions", status.transitions);
    out.push_back(std::move(row));
  }
  return out;
}

void AlertRules::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& entry : entries_) {
    AlertStatus fresh;
    fresh.name = entry.status.name;
    entry.status = fresh;
  }
}

std::vector<AlertRule> default_serve_rules() {
  std::vector<AlertRule> rules;
  {
    // p99 request latency over the last minute. The CI smoke load sits in
    // single-digit milliseconds; a wedged daemon blows through 2 s.
    AlertRule rule;
    rule.name = "serve_p99_latency_ms";
    rule.series = "dockmine_serve_request_ms";
    rule.source = AlertRule::Source::kQuantile;
    rule.quantile = 0.99;
    rule.window_ms = 60'000;
    rule.threshold = 2000.0;
    rule.for_ms = 5'000;
    rules.push_back(std::move(rule));
  }
  {
    // Availability SLO: malformed/rejected requests burning the 0.1% error
    // budget faster than 50x sustained for 10 s.
    AlertRule rule;
    rule.name = "serve_error_budget_burn";
    rule.series = "dockmine_serve_bad_requests_total";
    rule.total_series = "dockmine_serve_requests_total";
    rule.error_budget = 0.001;
    rule.window_ms = 60'000;
    rule.threshold = 50.0;
    rule.for_ms = 10'000;
    rules.push_back(std::move(rule));
  }
  {
    // Slow-client evictions should stay rare; a sustained flood means the
    // accept loop is being starved.
    AlertRule rule;
    rule.name = "serve_slowloris_drop_rate";
    rule.series = "dockmine_serve_slowloris_drops_total";
    rule.source = AlertRule::Source::kRate;
    rule.window_ms = 60'000;
    rule.threshold = 10.0;
    rule.for_ms = 10'000;
    rules.push_back(std::move(rule));
  }
  {
    // Pipeline back-pressure: p99 queue wait beyond 5 s for 10 s means
    // ingest is drowning the worker pool.
    AlertRule rule;
    rule.name = "pipeline_queue_wait_p99_ms";
    rule.series = "dockmine_pipeline_queue_wait_ms";
    rule.source = AlertRule::Source::kQuantile;
    rule.quantile = 0.99;
    rule.window_ms = 60'000;
    rule.threshold = 5000.0;
    rule.for_ms = 10'000;
    rules.push_back(std::move(rule));
  }
  {
    // Registry fault retries: sustained retry storms signal a sick
    // upstream, not the occasional injected fault.
    AlertRule rule;
    rule.name = "resilient_retry_rate";
    rule.series = "dockmine_resilient_retries_total";
    rule.source = AlertRule::Source::kRate;
    rule.window_ms = 60'000;
    rule.threshold = 100.0;
    rule.for_ms = 10'000;
    rules.push_back(std::move(rule));
  }
  return rules;
}

}  // namespace dockmine::obs
