#include "dockmine/obs/export.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "dockmine/obs/heartbeat.h"
#include "dockmine/obs/journal.h"
#include "dockmine/obs/timeseries.h"

#if !defined(DOCKMINE_VERSION)
#define DOCKMINE_VERSION "0.10.0"
#endif

namespace dockmine::obs {

namespace {

/// Process start in obs-clock ms, captured at the first collect() (or at
/// reset_all, which is what "freshly started" means for a reused process).
/// -1 = not yet captured.
std::atomic<double> g_start_ms{-1.0};

double uptime_seconds() {
  double start = g_start_ms.load(std::memory_order_relaxed);
  if (start < 0.0) {
    start = now_ms();
    g_start_ms.store(start, std::memory_order_relaxed);
  }
  // A virtual clock injected after start was captured can sit below it;
  // clamp so exports stay deterministic instead of going negative.
  return std::max(0.0, (now_ms() - start) / 1000.0);
}

/// Insert a gauge into an already-sorted snapshot vector, keeping it
/// sorted (these two are synthesized at collect() time, not registered,
/// so a runtime-disabled registry stays untouched).
void inject_gauge(std::vector<std::pair<std::string, std::int64_t>>& gauges,
                  std::string name, std::int64_t value) {
  const auto it = std::lower_bound(
      gauges.begin(), gauges.end(), name,
      [](const auto& entry, const std::string& key) {
        return entry.first < key;
      });
  if (it != gauges.end() && it->first == name) {
    it->second = value;
  } else {
    gauges.insert(it, {std::move(name), value});
  }
}

/// Shortest decimal form that round-trips (same policy as the JSON
/// serializer): deterministic, human-sized, exact.
std::string fmt_double(double v) {
  char buf[32];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

/// "name{label=...}" -> "name" (for Prometheus # TYPE lines).
std::string_view base_name(std::string_view name) {
  const std::size_t brace = name.find('{');
  return brace == std::string_view::npos ? name : name.substr(0, brace);
}

void type_line(std::string& out, std::string_view name, const char* type,
               std::string& last_base) {
  const std::string_view base = base_name(name);
  if (base == last_base) return;  // one TYPE line per metric family
  last_base = std::string(base);
  out += "# TYPE ";
  out += base;
  out += ' ';
  out += type;
  out += '\n';
}

/// Prometheus exposition-format label value escaping: backslash, double
/// quote, and newline must be escaped or a hostile value breaks the line
/// grammar (and can forge other series).
std::string escape_label_value(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

MetricsReport collect() {
  MetricsReport report;
  report.metrics = Registry::global().snapshot();
  report.spans = Tracer::global().snapshot();
  report.node = node_id();
  if constexpr (kCompiledIn) {
    // Joinability across restarts: which build produced this export, and
    // how long it had been up. Synthesized here (not registered) so the
    // compiled-out build's exports stay empty.
    inject_gauge(report.metrics.gauges,
                 "dockmine_build_info{backend=\"cpp\",version=\""
                 DOCKMINE_VERSION "\"}",
                 1);
    inject_gauge(report.metrics.gauges, "dockmine_uptime_seconds",
                 static_cast<std::int64_t>(uptime_seconds()));
  }
  return report;
}

void reset_all() {
  stop_heartbeat();
  reset_heartbeat_seq();
  TimeSeriesStore::global().stop_sampler();
  TimeSeriesStore::global().reset();
  Registry::global().reset();
  Tracer::global().reset();
  TraceJournal::global().reset();
  set_node_id(0);
  g_start_ms.store(now_ms(), std::memory_order_relaxed);
}

json::Value to_json(const MetricsReport& report) {
  json::Value counters = json::Value::object();
  for (const auto& [name, value] : report.metrics.counters) {
    counters.set(name, value);
  }
  json::Value gauges = json::Value::object();
  for (const auto& [name, value] : report.metrics.gauges) {
    gauges.set(name, std::int64_t{value});
  }

  json::Value histograms = json::Value::object();
  for (const HistogramSnapshot& hist : report.metrics.histograms) {
    json::Value entry = json::Value::object();
    entry.set("count", hist.count);
    entry.set("sum", hist.sum);
    if (hist.count > 0) {
      entry.set("p50", hist.values.quantile(0.50));
      entry.set("p90", hist.values.quantile(0.90));
      entry.set("p99", hist.values.quantile(0.99));
    }
    json::Value buckets = json::Value::array();
    for (const auto& row : hist.values.rows()) {
      json::Value bucket = json::Value::object();
      bucket.set("lo", row.lo);
      bucket.set("hi", row.hi);
      bucket.set("count", row.count);
      buckets.push_back(std::move(bucket));
    }
    entry.set("buckets", std::move(buckets));
    histograms.set(hist.name, std::move(entry));
  }

  json::Value spans = json::Value::array();
  for (const SpanRow& row : report.spans) {
    json::Value span = json::Value::object();
    span.set("path", row.path);
    span.set("count", row.count);
    span.set("wall_ms", row.wall_ms);
    span.set("cpu_ms", row.cpu_ms);
    spans.push_back(std::move(span));
  }

  json::Value root = json::Value::object();
  root.set("counters", std::move(counters));
  root.set("gauges", std::move(gauges));
  root.set("histograms", std::move(histograms));
  root.set("spans", std::move(spans));
  root.set("node", std::uint64_t{report.node});
  return root;
}

util::Result<MetricsReport> report_from_json(const json::Value& doc) {
  if (!doc.is_object()) {
    return util::corrupt("metrics report: not a JSON object");
  }
  MetricsReport report;

  const json::Value& counters = doc["counters"];
  if (!counters.is_object()) {
    return util::corrupt("metrics report: 'counters' missing or not object");
  }
  for (const auto& [name, value] : counters.members()) {
    if (!value.is_number()) {
      return util::corrupt("metrics report: counter '" + name +
                           "' not numeric");
    }
    report.metrics.counters.emplace_back(name, value.as_uint());
  }

  const json::Value& gauges = doc["gauges"];
  if (!gauges.is_object()) {
    return util::corrupt("metrics report: 'gauges' missing or not object");
  }
  for (const auto& [name, value] : gauges.members()) {
    if (!value.is_number()) {
      return util::corrupt("metrics report: gauge '" + name + "' not numeric");
    }
    report.metrics.gauges.emplace_back(name, value.as_int());
  }

  const json::Value& histograms = doc["histograms"];
  if (!histograms.is_object()) {
    return util::corrupt("metrics report: 'histograms' missing or not object");
  }
  for (const auto& [name, entry] : histograms.members()) {
    if (!entry.is_object() || !entry["count"].is_number() ||
        !entry["sum"].is_number() || !entry["buckets"].is_array()) {
      return util::corrupt("metrics report: histogram '" + name +
                           "' malformed");
    }
    HistogramSnapshot hist;
    hist.name = name;
    hist.count = entry["count"].as_uint();
    hist.sum = entry["sum"].as_double();
    for (const json::Value& bucket : entry["buckets"].items()) {
      if (!bucket.is_object() || !bucket["lo"].is_number() ||
          !bucket["count"].is_number()) {
        return util::corrupt("metrics report: histogram '" + name +
                             "' has a malformed bucket");
      }
      // Log2 buckets reconstruct exactly from their lower bound: lo < 1 is
      // the zero bucket, otherwise lo == 2^k lands back in bucket k.
      const double lo = bucket["lo"].as_double();
      hist.values.add(lo < 1.0 ? 0.0 : lo, bucket["count"].as_uint());
    }
    report.metrics.histograms.push_back(std::move(hist));
  }

  const json::Value& spans = doc["spans"];
  if (!spans.is_array()) {
    return util::corrupt("metrics report: 'spans' missing or not array");
  }
  for (const json::Value& span : spans.items()) {
    if (!span.is_object() || !span["path"].is_string() ||
        !span["count"].is_number() || !span["wall_ms"].is_number() ||
        !span["cpu_ms"].is_number()) {
      return util::corrupt("metrics report: malformed span row");
    }
    SpanRow row;
    row.path = span["path"].as_string();
    row.count = span["count"].as_uint();
    row.wall_ms = span["wall_ms"].as_double();
    row.cpu_ms = span["cpu_ms"].as_double();
    report.spans.push_back(std::move(row));
  }

  if (doc.contains("node")) {
    if (!doc["node"].is_number()) {
      return util::corrupt("metrics report: 'node' not numeric");
    }
    report.node = static_cast<std::uint32_t>(doc["node"].as_uint());
  }

  // Snapshots are sorted by name; restore the invariant for foreign
  // documents so serialization stays canonical.
  std::sort(report.metrics.counters.begin(), report.metrics.counters.end());
  std::sort(report.metrics.gauges.begin(), report.metrics.gauges.end());
  std::sort(report.metrics.histograms.begin(), report.metrics.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  std::sort(report.spans.begin(), report.spans.end(),
            [](const SpanRow& a, const SpanRow& b) { return a.path < b.path; });
  return report;
}

void merge_reports(MetricsReport& into, const MetricsReport& from) {
  for (const auto& [name, value] : from.metrics.counters) {
    auto it = std::lower_bound(
        into.metrics.counters.begin(), into.metrics.counters.end(), name,
        [](const auto& entry, const std::string& key) {
          return entry.first < key;
        });
    if (it != into.metrics.counters.end() && it->first == name) {
      it->second += value;
    } else {
      into.metrics.counters.insert(it, {name, value});
    }
  }
  for (const auto& [name, value] : from.metrics.gauges) {
    auto it = std::lower_bound(
        into.metrics.gauges.begin(), into.metrics.gauges.end(), name,
        [](const auto& entry, const std::string& key) {
          return entry.first < key;
        });
    if (it != into.metrics.gauges.end() && it->first == name) {
      it->second += value;
    } else {
      into.metrics.gauges.insert(it, {name, value});
    }
  }
  for (const HistogramSnapshot& hist : from.metrics.histograms) {
    auto it = std::lower_bound(
        into.metrics.histograms.begin(), into.metrics.histograms.end(),
        hist.name, [](const HistogramSnapshot& entry, const std::string& key) {
          return entry.name < key;
        });
    if (it != into.metrics.histograms.end() && it->name == hist.name) {
      it->count += hist.count;
      it->sum += hist.sum;
      it->values.merge(hist.values);
    } else {
      into.metrics.histograms.insert(it, hist);
    }
  }
  for (const SpanRow& row : from.spans) {
    auto it = std::lower_bound(into.spans.begin(), into.spans.end(), row.path,
                               [](const SpanRow& entry, const std::string& key) {
                                 return entry.path < key;
                               });
    if (it != into.spans.end() && it->path == row.path) {
      it->count += row.count;
      it->wall_ms += row.wall_ms;
      it->cpu_ms += row.cpu_ms;
    } else {
      into.spans.insert(it, row);
    }
  }
}

util::Result<ObsMergeResult> merge_obs_exports(
    const std::vector<std::string>& paths) {
  if (paths.empty()) {
    return util::invalid_argument("merge_obs_exports: no input files");
  }
  ObsMergeResult result;
  bool first = true;
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
      return util::not_found("merge_obs_exports: cannot open '" + path + "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto parsed = json::parse(buffer.str());
    if (!parsed.ok()) {
      return util::corrupt("merge_obs_exports: '" + path +
                           "': " + parsed.error().to_string());
    }
    auto report = report_from_json(parsed.value());
    if (!report.ok()) {
      return util::corrupt("merge_obs_exports: '" + path +
                           "': " + report.error().to_string());
    }

    ObsNodeSummary summary;
    summary.source = path;
    summary.node = report.value().node;
    for (const SpanRow& row : report.value().spans) {
      if (row.path == "pipeline") {
        summary.pipeline_wall_ms = row.wall_ms;
        break;
      }
    }
    result.nodes.push_back(std::move(summary));

    if (first) {
      result.merged = std::move(report).value();
      result.merged.node = 0;  // the merged view spans all nodes
      first = false;
    } else {
      merge_reports(result.merged, report.value());
    }
  }

  double fastest = result.nodes.front().pipeline_wall_ms;
  for (const ObsNodeSummary& node : result.nodes) {
    fastest = std::min(fastest, node.pipeline_wall_ms);
  }
  for (ObsNodeSummary& node : result.nodes) {
    node.straggler_delta_ms = node.pipeline_wall_ms - fastest;
  }
  return result;
}

std::string to_prometheus(const MetricsReport& report) {
  std::string out;
  std::string last_base;

  for (const auto& [name, value] : report.metrics.counters) {
    type_line(out, name, "counter", last_base);
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }

  last_base.clear();
  for (const auto& [name, value] : report.metrics.gauges) {
    type_line(out, name, "gauge", last_base);
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }

  for (const HistogramSnapshot& hist : report.metrics.histograms) {
    out += "# TYPE ";
    out += hist.name;
    out += " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& row : hist.values.rows()) {
      cumulative += row.count;
      out += hist.name;
      out += "_bucket{le=\"";
      out += fmt_double(row.hi);
      out += "\"} ";
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += hist.name;
    out += "_bucket{le=\"+Inf\"} ";
    out += std::to_string(hist.count);
    out += '\n';
    out += hist.name;
    out += "_sum ";
    out += fmt_double(hist.sum);
    out += '\n';
    out += hist.name;
    out += "_count ";
    out += std::to_string(hist.count);
    out += '\n';
  }

  if (!report.spans.empty()) {
    out += "# TYPE dockmine_span_count counter\n";
    out += "# TYPE dockmine_span_wall_ms counter\n";
    out += "# TYPE dockmine_span_cpu_ms counter\n";
    for (const SpanRow& row : report.spans) {
      const std::string label =
          "{path=\"" + escape_label_value(row.path) + "\"} ";
      out += "dockmine_span_count" + label + std::to_string(row.count) + '\n';
      out += "dockmine_span_wall_ms" + label + fmt_double(row.wall_ms) + '\n';
      out += "dockmine_span_cpu_ms" + label + fmt_double(row.cpu_ms) + '\n';
    }
  }
  return out;
}

}  // namespace dockmine::obs
