#include "dockmine/obs/export.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dockmine::obs {

namespace {

/// Shortest decimal form that round-trips (same policy as the JSON
/// serializer): deterministic, human-sized, exact.
std::string fmt_double(double v) {
  char buf[32];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

/// "name{label=...}" -> "name" (for Prometheus # TYPE lines).
std::string_view base_name(std::string_view name) {
  const std::size_t brace = name.find('{');
  return brace == std::string_view::npos ? name : name.substr(0, brace);
}

void type_line(std::string& out, std::string_view name, const char* type,
               std::string& last_base) {
  const std::string_view base = base_name(name);
  if (base == last_base) return;  // one TYPE line per metric family
  last_base = std::string(base);
  out += "# TYPE ";
  out += base;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

MetricsReport collect() {
  MetricsReport report;
  report.metrics = Registry::global().snapshot();
  report.spans = Tracer::global().snapshot();
  return report;
}

void reset_all() {
  Registry::global().reset();
  Tracer::global().reset();
}

json::Value to_json(const MetricsReport& report) {
  json::Value counters = json::Value::object();
  for (const auto& [name, value] : report.metrics.counters) {
    counters.set(name, value);
  }
  json::Value gauges = json::Value::object();
  for (const auto& [name, value] : report.metrics.gauges) {
    gauges.set(name, std::int64_t{value});
  }

  json::Value histograms = json::Value::object();
  for (const HistogramSnapshot& hist : report.metrics.histograms) {
    json::Value entry = json::Value::object();
    entry.set("count", hist.count);
    entry.set("sum", hist.sum);
    if (hist.count > 0) {
      entry.set("p50", hist.values.quantile(0.50));
      entry.set("p90", hist.values.quantile(0.90));
      entry.set("p99", hist.values.quantile(0.99));
    }
    json::Value buckets = json::Value::array();
    for (const auto& row : hist.values.rows()) {
      json::Value bucket = json::Value::object();
      bucket.set("lo", row.lo);
      bucket.set("hi", row.hi);
      bucket.set("count", row.count);
      buckets.push_back(std::move(bucket));
    }
    entry.set("buckets", std::move(buckets));
    histograms.set(hist.name, std::move(entry));
  }

  json::Value spans = json::Value::array();
  for (const SpanRow& row : report.spans) {
    json::Value span = json::Value::object();
    span.set("path", row.path);
    span.set("count", row.count);
    span.set("wall_ms", row.wall_ms);
    span.set("cpu_ms", row.cpu_ms);
    spans.push_back(std::move(span));
  }

  json::Value root = json::Value::object();
  root.set("counters", std::move(counters));
  root.set("gauges", std::move(gauges));
  root.set("histograms", std::move(histograms));
  root.set("spans", std::move(spans));
  return root;
}

std::string to_prometheus(const MetricsReport& report) {
  std::string out;
  std::string last_base;

  for (const auto& [name, value] : report.metrics.counters) {
    type_line(out, name, "counter", last_base);
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }

  last_base.clear();
  for (const auto& [name, value] : report.metrics.gauges) {
    type_line(out, name, "gauge", last_base);
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }

  for (const HistogramSnapshot& hist : report.metrics.histograms) {
    out += "# TYPE ";
    out += hist.name;
    out += " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& row : hist.values.rows()) {
      cumulative += row.count;
      out += hist.name;
      out += "_bucket{le=\"";
      out += fmt_double(row.hi);
      out += "\"} ";
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += hist.name;
    out += "_bucket{le=\"+Inf\"} ";
    out += std::to_string(hist.count);
    out += '\n';
    out += hist.name;
    out += "_sum ";
    out += fmt_double(hist.sum);
    out += '\n';
    out += hist.name;
    out += "_count ";
    out += std::to_string(hist.count);
    out += '\n';
  }

  if (!report.spans.empty()) {
    out += "# TYPE dockmine_span_count counter\n";
    out += "# TYPE dockmine_span_wall_ms counter\n";
    out += "# TYPE dockmine_span_cpu_ms counter\n";
    for (const SpanRow& row : report.spans) {
      const std::string label = "{path=\"" + row.path + "\"} ";
      out += "dockmine_span_count" + label + std::to_string(row.count) + '\n';
      out += "dockmine_span_wall_ms" + label + fmt_double(row.wall_ms) + '\n';
      out += "dockmine_span_cpu_ms" + label + fmt_double(row.cpu_ms) + '\n';
    }
  }
  return out;
}

}  // namespace dockmine::obs
