#include "dockmine/obs/trace_export.h"

#include <string>
#include <utility>

namespace dockmine::obs {

json::Value trace_to_json(const std::vector<TraceEvent>& events,
                          std::uint64_t recorded, std::uint64_t dropped) {
  json::Value trace_events = json::Value::array();
  for (const TraceEvent& event : events) {
    json::Value slice = json::Value::object();
    slice.set("name", event.name);
    slice.set("cat", std::string(to_string(event.kind)));
    slice.set("ph", "X");
    // Chrome trace timestamps are microseconds; the obs clock is ms.
    slice.set("ts", event.start_ms * 1000.0);
    slice.set("dur", (event.end_ms - event.start_ms) * 1000.0);
    slice.set("pid", std::uint64_t{event.node});
    slice.set("tid", std::uint64_t{event.lane});
    json::Value args = json::Value::object();
    args.set("trace_id", event.trace_id);
    args.set("span_id", event.span_id);
    args.set("parent_id", event.parent_id);
    args.set("cpu_ms", event.cpu_ms);
    slice.set("args", std::move(args));
    trace_events.push_back(std::move(slice));
  }

  json::Value other = json::Value::object();
  other.set("recorded", recorded);
  other.set("dropped", dropped);

  json::Value root = json::Value::object();
  root.set("displayTimeUnit", "ms");
  root.set("otherData", std::move(other));
  root.set("traceEvents", std::move(trace_events));
  return root;
}

json::Value trace_to_json() {
  const TraceJournal& journal = TraceJournal::global();
  return trace_to_json(journal.snapshot(), journal.recorded(),
                       journal.dropped());
}

}  // namespace dockmine::obs
