#include "dockmine/obs/journal.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace dockmine::obs {
namespace {

// Trace ids are allocated when a context is pushed onto a thread with no
// enclosing trace; reset alongside span ids so seeded runs reproduce.
std::atomic<std::uint64_t> g_next_trace_id{1};

// Stable per-thread lane index: assigned once per thread on first record,
// never reused. Lanes are renumbered densely at snapshot time, so the raw
// values only need to be distinct, not small or deterministic.
std::uint32_t thread_lane() noexcept {
  static std::atomic<std::uint32_t> next_lane{0};
  thread_local std::uint32_t lane = next_lane.fetch_add(
      1, std::memory_order_relaxed);
  return lane;
}

TraceContext& thread_context() noexcept {
  thread_local TraceContext ctx{};
  return ctx;
}

}  // namespace

void set_journal_enabled(bool on) noexcept {
  detail::g_journal_enabled.store(on, std::memory_order_relaxed);
}

void set_node_id(std::uint32_t node) noexcept {
  detail::g_node_id.store(node, std::memory_order_relaxed);
}

std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kSpan:
      return "span";
    case EventKind::kQueueWait:
      return "queue_wait";
  }
  return "unknown";
}

TraceContext current_trace_context() noexcept {
  if (!journal_enabled()) return {};
  return thread_context();
}

namespace detail {

TraceContext push_context(std::uint64_t* trace_id, std::uint64_t* span_id,
                          std::uint64_t* parent_id) noexcept {
  TraceContext& ctx = thread_context();
  const TraceContext previous = ctx;
  *trace_id = previous.trace_id != 0
                  ? previous.trace_id
                  : g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
  *span_id = TraceJournal::global().next_span_id();
  *parent_id = previous.span_id;
  ctx = TraceContext{*trace_id, *span_id};
  return previous;
}

void pop_context(TraceContext previous) noexcept {
  thread_context() = previous;
}

}  // namespace detail

void ContextGuard::adopt(TraceContext ctx) noexcept {
  TraceContext& current = thread_context();
  previous_ = current;
  current = ctx;
  active_ = true;
}

EventSpan::EventSpan(std::string_view name) {
  if (!journal_enabled()) return;
  name_.assign(name);
  previous_ = detail::push_context(&trace_id_, &span_id_, &parent_id_);
  start_wall_ = now_ms();
  start_cpu_ = cpu_now_ms();
}

EventSpan& EventSpan::operator=(EventSpan&& other) noexcept {
  if (this == &other) return *this;
  finish();
  name_ = std::move(other.name_);
  previous_ = other.previous_;
  trace_id_ = other.trace_id_;
  span_id_ = other.span_id_;
  parent_id_ = other.parent_id_;
  start_wall_ = other.start_wall_;
  start_cpu_ = other.start_cpu_;
  other.span_id_ = 0;
  return *this;
}

void EventSpan::finish() noexcept {
  if (span_id_ == 0) return;
  TraceEvent event;
  event.trace_id = trace_id_;
  event.span_id = span_id_;
  event.parent_id = parent_id_;
  event.kind = EventKind::kSpan;
  event.start_ms = start_wall_;
  event.end_ms = now_ms();
  event.cpu_ms = cpu_now_ms() - start_cpu_;
  event.name = std::move(name_);
  detail::pop_context(previous_);
  span_id_ = 0;
  TraceJournal::global().record(std::move(event));
}

void record_event(std::string_view name, EventKind kind, double start_ms,
                  double end_ms, TraceContext parent) {
  if (!journal_enabled()) return;
  TraceEvent event;
  event.trace_id = parent.trace_id;
  event.span_id = TraceJournal::global().next_span_id();
  event.parent_id = parent.span_id;
  event.kind = kind;
  event.start_ms = start_ms;
  event.end_ms = end_ms;
  event.name.assign(name);
  TraceJournal::global().record(std::move(event));
}

TraceJournal& TraceJournal::global() {
  static TraceJournal journal;
  return journal;
}

void TraceJournal::record(TraceEvent event) {
  if (!journal_enabled()) return;
  const std::size_t cap = capacity();
  if (cap == 0) return;
  event.node = node_id();
  event.lane = thread_lane();
  Shard& shard = shards_[event.lane % kShards];
  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.written;
  if (shard.ring.size() < cap) {
    shard.ring.push_back(std::move(event));
  } else {
    shard.ring[shard.next] = std::move(event);
    shard.next = (shard.next + 1) % cap;
  }
}

std::vector<TraceEvent> TraceJournal::snapshot() const {
  std::vector<TraceEvent> events;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    events.insert(events.end(), shard.ring.begin(), shard.ring.end());
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ms != b.start_ms) return a.start_ms < b.start_ms;
              if (a.end_ms != b.end_ms) return a.end_ms < b.end_ms;
              if (a.name != b.name) return a.name < b.name;
              return a.span_id < b.span_id;
            });
  // Renumber lanes densely in first-appearance order so snapshots do not
  // depend on how many threads the process created before this run.
  std::unordered_map<std::uint32_t, std::uint32_t> dense;
  for (TraceEvent& event : events) {
    auto [it, inserted] = dense.emplace(
        event.lane, static_cast<std::uint32_t>(dense.size()));
    event.lane = it->second;
  }
  return events;
}

std::uint64_t TraceJournal::recorded() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.written;
  }
  return total;
}

std::uint64_t TraceJournal::dropped() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.written - shard.ring.size();
  }
  return total;
}

void TraceJournal::set_capacity(std::size_t events_per_shard) {
  capacity_.store(events_per_shard, std::memory_order_relaxed);
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.ring.clear();
    shard.ring.shrink_to_fit();
    shard.next = 0;
    shard.written = 0;
  }
}

void TraceJournal::reset() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.ring.clear();
    shard.next = 0;
    shard.written = 0;
  }
  next_id_.store(1, std::memory_order_relaxed);
  g_next_trace_id.store(1, std::memory_order_relaxed);
}

}  // namespace dockmine::obs
