#include "dockmine/obs/timeseries.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

namespace dockmine::obs {

namespace {

/// "name{labels}" -> {base, labels-with-braces-or-empty}.
std::pair<std::string_view, std::string_view> split_labels(
    std::string_view name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos) return {name, {}};
  return {name.substr(0, brace), name.substr(brace)};
}

/// Split "{a=\"x\",b=\"y\"}" into "a=\"x\"" pieces. Values are quoted;
/// commas inside quotes (and backslash escapes) do not split. A malformed
/// block yields whatever prefix parsed — matching then simply fails.
std::vector<std::string_view> label_pairs(std::string_view block) {
  std::vector<std::string_view> out;
  if (block.size() < 2 || block.front() != '{' || block.back() != '}') {
    return out;
  }
  const std::string_view inner = block.substr(1, block.size() - 2);
  std::size_t begin = 0;
  bool quoted = false;
  for (std::size_t i = 0; i < inner.size(); ++i) {
    const char c = inner[i];
    if (quoted && c == '\\') {
      ++i;  // skip the escaped character
      continue;
    }
    if (c == '"') {
      quoted = !quoted;
    } else if (c == ',' && !quoted) {
      if (i > begin) out.push_back(inner.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  if (begin < inner.size()) out.push_back(inner.substr(begin));
  return out;
}

}  // namespace

std::string_view to_string(SeriesKind kind) noexcept {
  switch (kind) {
    case SeriesKind::kCounter:
      return "counter";
    case SeriesKind::kGauge:
      return "gauge";
    case SeriesKind::kHistogram:
      return "histogram";
  }
  return "counter";
}

TimeSeriesStore& TimeSeriesStore::global() {
  static TimeSeriesStore instance;
  return instance;
}

bool TimeSeriesStore::configure(const TimeSeriesOptions& options) {
  if (sampler_running()) return false;
  std::lock_guard<std::mutex> lock(write_mutex_);
  capacity_.store(std::max<std::size_t>(options.capacity, 2),
                  std::memory_order_relaxed);
  interval_ms_.store(std::max<std::uint64_t>(options.interval_ms, 1),
                     std::memory_order_relaxed);
  directory_.store(std::make_shared<const Directory>(),
                   std::memory_order_release);
  ticks_.store(0, std::memory_order_relaxed);
  return true;
}

void TimeSeriesStore::reset() {
  std::lock_guard<std::mutex> lock(write_mutex_);
  directory_.store(std::make_shared<const Directory>(),
                   std::memory_order_release);
  ticks_.store(0, std::memory_order_relaxed);
}

void TimeSeriesStore::append(Directory& directory, bool& directory_grew,
                             const std::string& name, SeriesKind kind,
                             double ts_ms, double value, double sum,
                             double p50, double p90, double p99) {
  auto it = directory.find(name);
  if (it == directory.end()) {
    it = directory.emplace(name, std::make_shared<Series>()).first;
    it->second->ring.store(std::make_shared<const Ring>(Ring{kind, {}}),
                           std::memory_order_release);
    directory_grew = true;
  }
  Series& series = *it->second;
  const std::shared_ptr<const Ring> old =
      series.ring.load(std::memory_order_acquire);

  TsSample sample;
  sample.ts_ms = ts_ms;
  sample.value = value;
  if (kind != SeriesKind::kGauge && series.has_prev) {
    // A restarted instrument (reset_all between samples) reads below its
    // previous cumulative value; clamp instead of emitting a negative rate.
    sample.delta = std::max(0.0, value - series.prev_value);
  }
  sample.sum = sum;
  sample.p50 = p50;
  sample.p90 = p90;
  sample.p99 = p99;
  series.prev_value = value;
  series.has_prev = true;

  const std::size_t cap = capacity();
  auto next = std::make_shared<Ring>();
  next->kind = kind;
  next->samples.reserve(std::min(old->samples.size() + 1, cap));
  const std::size_t drop =
      old->samples.size() + 1 > cap ? old->samples.size() + 1 - cap : 0;
  next->samples.assign(old->samples.begin() + static_cast<std::ptrdiff_t>(drop),
                       old->samples.end());
  next->samples.push_back(sample);
  series.ring.store(std::move(next), std::memory_order_release);
}

void TimeSeriesStore::sample_once() {
#if defined(DOCKMINE_OBS_DISABLED)
  // Compiled-out obs still interns instrument names; record nothing.
  return;
#endif
  const Registry::Snapshot snapshot = Registry::global().snapshot();
  const double ts = now_ms();

  std::lock_guard<std::mutex> lock(write_mutex_);
  // Copy-on-write only when a new instrument appeared; appending to an
  // existing series swaps just that series' ring.
  const std::shared_ptr<const Directory> published =
      directory_.load(std::memory_order_acquire);
  Directory working = *published;
  bool grew = false;

  for (const auto& [name, value] : snapshot.counters) {
    append(working, grew, name, SeriesKind::kCounter, ts,
           static_cast<double>(value), 0.0, 0.0, 0.0, 0.0);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    append(working, grew, name, SeriesKind::kGauge, ts,
           static_cast<double>(value), 0.0, 0.0, 0.0, 0.0);
  }
  for (const HistogramSnapshot& hist : snapshot.histograms) {
    const bool populated = hist.count > 0;
    append(working, grew, hist.name, SeriesKind::kHistogram, ts,
           static_cast<double>(hist.count), hist.sum,
           populated ? hist.values.quantile(0.50) : 0.0,
           populated ? hist.values.quantile(0.90) : 0.0,
           populated ? hist.values.quantile(0.99) : 0.0);
  }
  // The telemetry watches itself: footprint is a gauge like any other, so
  // the *next* tick samples it into a series.
  std::uint64_t bytes = 0;
  for (const auto& [name, series] : working) {
    const std::shared_ptr<const Ring> ring =
        series->ring.load(std::memory_order_acquire);
    bytes += name.size() + sizeof(Series) + sizeof(Ring) +
             ring->samples.capacity() * sizeof(TsSample);
  }
  if (grew) {
    directory_.store(std::make_shared<const Directory>(std::move(working)),
                     std::memory_order_release);
  }
  ticks_.fetch_add(1, std::memory_order_relaxed);
  Registry::global().gauge("dockmine_timeseries_bytes").set(
      static_cast<std::int64_t>(bytes));
}

std::uint64_t TimeSeriesStore::footprint_bytes() const {
  const std::shared_ptr<const Directory> directory =
      directory_.load(std::memory_order_acquire);
  std::uint64_t bytes = 0;
  for (const auto& [name, series] : *directory) {
    const std::shared_ptr<const Ring> ring =
        series->ring.load(std::memory_order_acquire);
    bytes += name.size() + sizeof(Series) + sizeof(Ring) +
             ring->samples.capacity() * sizeof(TsSample);
  }
  return bytes;
}

bool TimeSeriesStore::start_sampler(
    std::function<void(double sampled_at_ms)> after_sample) {
#if defined(DOCKMINE_OBS_DISABLED)
  (void)after_sample;
  return false;
#else
  std::lock_guard<std::mutex> lock(sampler_mutex_);
  if (running_.load(std::memory_order_acquire)) return false;
  stop_requested_ = false;
  running_.store(true, std::memory_order_release);
  const auto interval = std::chrono::milliseconds(interval_ms());
  sampler_ = std::thread([this, interval,
                          after_sample = std::move(after_sample)] {
    std::unique_lock<std::mutex> wait_lock(sampler_mutex_);
    while (true) {
      wait_lock.unlock();
      sample_once();
      if (after_sample) after_sample(now_ms());
      wait_lock.lock();
      if (sampler_cv_.wait_for(wait_lock, interval,
                               [this] { return stop_requested_; })) {
        return;
      }
    }
  });
  return true;
#endif
}

void TimeSeriesStore::stop_sampler() {
#if !defined(DOCKMINE_OBS_DISABLED)
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(sampler_mutex_);
    if (!running_.load(std::memory_order_acquire)) return;
    stop_requested_ = true;
    worker = std::move(sampler_);
  }
  sampler_cv_.notify_all();
  worker.join();
  {
    std::lock_guard<std::mutex> lock(sampler_mutex_);
    running_.store(false, std::memory_order_release);
    stop_requested_ = false;
  }
#endif
}

std::shared_ptr<const TimeSeriesStore::Series> TimeSeriesStore::find(
    std::string_view name) const {
  const std::shared_ptr<const Directory> directory =
      directory_.load(std::memory_order_acquire);
  const auto it = directory->find(name);
  if (it == directory->end()) return nullptr;
  return it->second;
}

std::vector<TimeSeriesStore::SeriesInfo> TimeSeriesStore::series(
    std::string_view selector) const {
  const std::shared_ptr<const Directory> directory =
      directory_.load(std::memory_order_acquire);
  std::vector<SeriesInfo> out;
  for (const auto& [name, series] : *directory) {
    if (!selector_matches(selector, name)) continue;
    const std::shared_ptr<const Ring> ring =
        series->ring.load(std::memory_order_acquire);
    out.push_back(SeriesInfo{name, ring->kind});
  }
  return out;  // map order: already sorted by name
}

std::vector<TsSample> TimeSeriesStore::read(std::string_view name) const {
  const auto series = find(name);
  if (!series) return {};
  return series->ring.load(std::memory_order_acquire)->samples;
}

std::vector<TsSample> TimeSeriesStore::range(std::string_view name,
                                             double t0_ms,
                                             double t1_ms) const {
  const auto series = find(name);
  if (!series) return {};
  const std::shared_ptr<const Ring> ring =
      series->ring.load(std::memory_order_acquire);
  std::vector<TsSample> out;
  for (const TsSample& sample : ring->samples) {
    if (sample.ts_ms >= t0_ms && sample.ts_ms <= t1_ms) {
      out.push_back(sample);
    }
  }
  return out;
}

std::optional<TsSample> TimeSeriesStore::latest(std::string_view name) const {
  const auto series = find(name);
  if (!series) return std::nullopt;
  const std::shared_ptr<const Ring> ring =
      series->ring.load(std::memory_order_acquire);
  if (ring->samples.empty()) return std::nullopt;
  return ring->samples.back();
}

std::optional<double> TimeSeriesStore::rate_per_s(std::string_view name,
                                                  double window_ms) const {
  const auto series = find(name);
  if (!series) return std::nullopt;
  const std::shared_ptr<const Ring> ring =
      series->ring.load(std::memory_order_acquire);
  if (ring->kind == SeriesKind::kGauge || ring->samples.size() < 2) {
    return std::nullopt;
  }
  const TsSample& last = ring->samples.back();
  const double t0 = last.ts_ms - window_ms;
  const TsSample* first = nullptr;
  for (const TsSample& sample : ring->samples) {
    if (sample.ts_ms >= t0) {
      first = &sample;
      break;
    }
  }
  if (first == nullptr || first == &last || last.ts_ms <= first->ts_ms) {
    return std::nullopt;
  }
  // Cumulative values make the window rate exact regardless of how many
  // samples the window spans; a mid-window reset clamps at zero.
  return std::max(0.0, last.value - first->value) * 1000.0 /
         (last.ts_ms - first->ts_ms);
}

std::optional<double> TimeSeriesStore::quantile(std::string_view name,
                                                double q,
                                                double window_ms) const {
  const auto series = find(name);
  if (!series) return std::nullopt;
  const std::shared_ptr<const Ring> ring =
      series->ring.load(std::memory_order_acquire);
  if (ring->kind != SeriesKind::kHistogram || ring->samples.empty()) {
    return std::nullopt;
  }
  const auto pick = [q](const TsSample& sample) -> std::optional<double> {
    if (std::fabs(q - 0.50) < 1e-9) return sample.p50;
    if (std::fabs(q - 0.90) < 1e-9) return sample.p90;
    if (std::fabs(q - 0.99) < 1e-9) return sample.p99;
    return std::nullopt;
  };
  const double t0 = ring->samples.back().ts_ms - window_ms;
  std::optional<double> best;
  for (const TsSample& sample : ring->samples) {
    if (sample.ts_ms < t0 || sample.value <= 0.0) continue;
    const auto value = pick(sample);
    if (!value) return std::nullopt;  // off-grid quantile
    if (!best || *value > *best) best = value;
  }
  return best;
}

bool TimeSeriesStore::selector_matches(std::string_view selector,
                                       std::string_view name) {
  if (selector.empty() || selector == name) return true;
  const auto [sel_base, sel_labels] = split_labels(selector);
  const auto [name_base, name_labels] = split_labels(name);
  if (sel_base != name_base) return false;
  if (sel_labels.empty()) return true;  // bare base: every labeled variant
  const std::vector<std::string_view> wanted = label_pairs(sel_labels);
  if (wanted.empty()) return false;  // malformed label block
  const std::vector<std::string_view> have = label_pairs(name_labels);
  for (const std::string_view pair : wanted) {
    if (std::find(have.begin(), have.end(), pair) == have.end()) return false;
  }
  return true;
}

}  // namespace dockmine::obs
