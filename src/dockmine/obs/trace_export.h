// Chrome/Perfetto trace export: serializes a TraceJournal snapshot as a
// JSON Object Format trace document (load it at https://ui.perfetto.dev or
// chrome://tracing). Every event becomes one complete ("ph":"X") slice;
// the multi-node id maps to the Perfetto process (pid) and the journal
// lane to the thread (tid), so a merged multi-node journal renders as one
// timeline per node.
//
// Determinism contract: the document is built from TraceJournal::snapshot()
// (sorted events, dense lanes) and serialized with the dm_json writer
// (insertion-ordered keys, shortest-round-trip doubles), so two identical
// seeded runs on the injectable clock export byte-identical trace.json
// files.
#pragma once

#include <cstdint>
#include <vector>

#include "dockmine/json/json.h"
#include "dockmine/obs/journal.h"

namespace dockmine::obs {

/// Build the trace document from an explicit event list plus journal
/// counters (reported under "otherData" so consumers can tell whether the
/// ring dropped anything).
json::Value trace_to_json(const std::vector<TraceEvent>& events,
                          std::uint64_t recorded, std::uint64_t dropped);

/// Snapshot the global journal and export it.
json::Value trace_to_json();

}  // namespace dockmine::obs
