#include "dockmine/obs/span.h"

namespace dockmine::obs {

namespace {

/// The calling thread's open-span path. Spans append "<sep>name" on open
/// and truncate back to the parent's length on finish, so nesting costs no
/// allocation beyond the string's high-water mark.
std::string& thread_path() {
  thread_local std::string path;
  return path;
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer instance;
  return instance;
}

Tracer::Span Tracer::span(std::string_view name) {
#if defined(DOCKMINE_OBS_DISABLED)
  (void)name;
  return {};
#else
  if (!enabled()) return {};
  std::string& path = thread_path();
  const std::size_t parent_len = path.size();
  if (!path.empty()) path += '/';
  path += name;
  Span span(this, parent_len, now_ms(), cpu_now_ms());
  if (journal_enabled()) {
    span.prev_ctx_ = detail::push_context(&span.trace_id_, &span.span_id_,
                                          &span.parent_id_);
  }
  return span;
#endif
}

void Tracer::Span::finish() noexcept {
  if (tracer_ == nullptr) return;
  tracer_->finish_span(*this);
  tracer_ = nullptr;
}

void Tracer::finish_span(Span& span) noexcept {
  const double end_wall = now_ms();
  const double cpu = cpu_now_ms() - span.start_cpu_;
  std::string& path = thread_path();
  record_at(path, end_wall - span.start_wall_, cpu, 1);
  if (span.span_id_ != 0) {
    TraceEvent event;
    event.trace_id = span.trace_id_;
    event.span_id = span.span_id_;
    event.parent_id = span.parent_id_;
    event.kind = EventKind::kSpan;
    event.start_ms = span.start_wall_;
    event.end_ms = end_wall;
    event.cpu_ms = cpu;
    // Event names are the span's own segment; ancestry lives in parent_id.
    event.name = path.substr(span.parent_len_ == 0 ? 0 : span.parent_len_ + 1);
    detail::pop_context(span.prev_ctx_);
    span.span_id_ = 0;
    TraceJournal::global().record(std::move(event));
  }
  path.resize(span.parent_len_);
}

void Tracer::record(std::string_view name, double wall_ms, double cpu_ms,
                    std::uint64_t count) {
#if defined(DOCKMINE_OBS_DISABLED)
  (void)name;
  (void)wall_ms;
  (void)cpu_ms;
  (void)count;
#else
  if (!enabled()) return;
  const std::string& parent = thread_path();
  if (parent.empty()) {
    record_at(name, wall_ms, cpu_ms, count);
  } else {
    std::string path = parent;
    path += '/';
    path += name;
    record_at(path, wall_ms, cpu_ms, count);
  }
#endif
}

void Tracer::record_at(std::string_view path, double wall_ms, double cpu_ms,
                       std::uint64_t count) {
#if defined(DOCKMINE_OBS_DISABLED)
  (void)path;
  (void)wall_ms;
  (void)cpu_ms;
  (void)count;
#else
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  auto it = rows_.find(path);
  if (it == rows_.end()) {
    SpanRow row;
    row.path = std::string(path);
    it = rows_.emplace(row.path, std::move(row)).first;
  }
  it->second.count += count;
  it->second.wall_ms += wall_ms;
  it->second.cpu_ms += cpu_ms;
#endif
}

std::string Tracer::current_path() const { return thread_path(); }

std::vector<SpanRow> Tracer::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<SpanRow> rows;
  rows.reserve(rows_.size());
  for (const auto& [path, row] : rows_) rows.push_back(row);
  return rows;  // map order: sorted by path
}

void Tracer::reset() {
  std::lock_guard lock(mutex_);
  rows_.clear();
}

}  // namespace dockmine::obs
