#include "dockmine/obs/span.h"

namespace dockmine::obs {

namespace {

/// The calling thread's open-span path. Spans append "<sep>name" on open
/// and truncate back to the parent's length on finish, so nesting costs no
/// allocation beyond the string's high-water mark.
std::string& thread_path() {
  thread_local std::string path;
  return path;
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer instance;
  return instance;
}

Tracer::Span Tracer::span(std::string_view name) {
#if defined(DOCKMINE_OBS_DISABLED)
  (void)name;
  return {};
#else
  if (!enabled()) return {};
  std::string& path = thread_path();
  const std::size_t parent_len = path.size();
  if (!path.empty()) path += '/';
  path += name;
  return Span(this, parent_len, now_ms(), cpu_now_ms());
#endif
}

void Tracer::Span::finish() noexcept {
  if (tracer_ == nullptr) return;
  tracer_->finish_span(parent_len_, start_wall_, start_cpu_);
  tracer_ = nullptr;
}

void Tracer::finish_span(std::size_t parent_len, double start_wall,
                         double start_cpu) noexcept {
  const double wall = now_ms() - start_wall;
  const double cpu = cpu_now_ms() - start_cpu;
  std::string& path = thread_path();
  record_at(path, wall, cpu, 1);
  path.resize(parent_len);
}

void Tracer::record(std::string_view name, double wall_ms, double cpu_ms,
                    std::uint64_t count) {
#if defined(DOCKMINE_OBS_DISABLED)
  (void)name;
  (void)wall_ms;
  (void)cpu_ms;
  (void)count;
#else
  if (!enabled()) return;
  const std::string& parent = thread_path();
  if (parent.empty()) {
    record_at(name, wall_ms, cpu_ms, count);
  } else {
    std::string path = parent;
    path += '/';
    path += name;
    record_at(path, wall_ms, cpu_ms, count);
  }
#endif
}

void Tracer::record_at(std::string_view path, double wall_ms, double cpu_ms,
                       std::uint64_t count) {
#if defined(DOCKMINE_OBS_DISABLED)
  (void)path;
  (void)wall_ms;
  (void)cpu_ms;
  (void)count;
#else
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  auto it = rows_.find(path);
  if (it == rows_.end()) {
    SpanRow row;
    row.path = std::string(path);
    it = rows_.emplace(row.path, std::move(row)).first;
  }
  it->second.count += count;
  it->second.wall_ms += wall_ms;
  it->second.cpu_ms += cpu_ms;
#endif
}

std::string Tracer::current_path() const { return thread_path(); }

std::vector<SpanRow> Tracer::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<SpanRow> rows;
  rows.reserve(rows_.size());
  for (const auto& [path, row] : rows_) rows.push_back(row);
  return rows;  // map order: sorted by path
}

void Tracer::reset() {
  std::lock_guard lock(mutex_);
  rows_.clear();
}

}  // namespace dockmine::obs
