// Continuous telemetry (dockmine::obs v3, DESIGN.md §16): a process-wide
// `TimeSeriesStore` that turns the point-in-time Registry into time series.
// A sampler — the background thread, or `sample_once()` under a test's
// virtual clock — scrapes every registered instrument into a fixed-capacity
// per-series ring of samples:
//
//   * counters    value = cumulative total, delta = change since the
//                 previous sample (monotone resets clamp to 0);
//   * gauges      value = the level at sample time;
//   * histograms  value = cumulative observation count, delta = new
//                 observations, plus sum and the sampled p50/p90/p99.
//
// Readers are lock-free via snapshot swap: every ring is an immutable
// vector published through an atomic shared_ptr; a sample tick builds the
// successor ring beside the readers and swaps it in. No seqlock retries,
// no torn reads, and the scheme is exactly the discipline the serve
// daemon's Snapshot already uses — TSan-clean by construction.
//
// Memory is bounded by design: capacity() samples per series, one series
// per registered instrument, and the store's own footprint is exported as
// the `dockmine_timeseries_bytes` gauge so the telemetry can watch itself.
// Time comes from the injectable obs clock, so a test driving sample_once()
// on a virtual clock pins ring contents, range/rate/quantile answers, and
// everything derived from them byte-for-byte.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "dockmine/obs/obs.h"

namespace dockmine::obs {

enum class SeriesKind : std::uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};
std::string_view to_string(SeriesKind kind) noexcept;

/// One scraped point. Histogram-only fields are zero for counters/gauges;
/// `delta` is zero for gauges.
struct TsSample {
  double ts_ms = 0.0;
  double value = 0.0;  ///< counter: cumulative; gauge: level; hist: count
  double delta = 0.0;  ///< counter/hist: change since the previous sample
  double sum = 0.0;    ///< histogram cumulative sum
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

struct TimeSeriesOptions {
  std::uint64_t interval_ms = 1000;  ///< background sampler cadence (real ms)
  std::size_t capacity = 600;        ///< samples retained per series
};

class TimeSeriesStore {
 public:
  /// The process-wide store (the serve daemon, workers, and `watch` all
  /// read this one).
  static TimeSeriesStore& global();

  TimeSeriesStore() = default;
  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;
  ~TimeSeriesStore() { stop_sampler(); }

  /// (Re)configure cadence and per-series capacity. Drops every existing
  /// ring; refuse while the sampler runs.
  bool configure(const TimeSeriesOptions& options);
  std::size_t capacity() const noexcept {
    return capacity_.load(std::memory_order_relaxed);
  }
  std::uint64_t interval_ms() const noexcept {
    return interval_ms_.load(std::memory_order_relaxed);
  }

  /// Scrape the global Registry once, stamped with obs::now_ms(). This is
  /// the whole sampler — the background thread just calls it on a cadence —
  /// so tests drive it directly under a virtual clock.
  void sample_once();

  /// Start the background sampler (one immediate sample, then every
  /// interval). `after_sample` runs on the sampler thread after each scrape
  /// (the serve daemon evaluates alert rules there). Returns false if
  /// already running or obs is compiled out.
  bool start_sampler(std::function<void(double sampled_at_ms)> after_sample =
                         nullptr);
  void stop_sampler();
  bool sampler_running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Drop every series and sample. Safe while readers are in flight (they
  /// keep their pinned rings); refuses nothing — the sampler, if running,
  /// simply repopulates.
  void reset();

  std::uint64_t samples_taken() const noexcept {
    return ticks_.load(std::memory_order_relaxed);
  }
  /// Approximate resident bytes (rings + names); also exported as the
  /// `dockmine_timeseries_bytes` gauge after every tick.
  std::uint64_t footprint_bytes() const;

  struct SeriesInfo {
    std::string name;
    SeriesKind kind = SeriesKind::kCounter;
  };
  /// All series whose name matches `selector` (see selector_matches),
  /// sorted by name. Empty selector = every series.
  std::vector<SeriesInfo> series(std::string_view selector = {}) const;

  /// Full ring, oldest -> newest. Empty for an unknown series.
  std::vector<TsSample> read(std::string_view name) const;
  /// Samples with ts_ms in [t0_ms, t1_ms], oldest -> newest.
  std::vector<TsSample> range(std::string_view name, double t0_ms,
                              double t1_ms) const;
  std::optional<TsSample> latest(std::string_view name) const;

  /// Counter/histogram rate per second over the trailing `window_ms` ending
  /// at the newest sample: (last.value - first.value) / elapsed. Needs two
  /// samples inside the window; nullopt otherwise (and for gauges).
  std::optional<double> rate_per_s(std::string_view name,
                                   double window_ms) const;

  /// Histogram quantile over the trailing window: the max of the sampled
  /// quantile across the window's samples (conservative — the right shape
  /// for alerting). `q` must be one of the sampled grid points 0.5 / 0.9 /
  /// 0.99; nullopt otherwise, for non-histograms, and for empty windows.
  std::optional<double> quantile(std::string_view name, double q,
                                 double window_ms) const;

  /// Label-filter match: a selector is a full instrument name, a bare base
  /// name (matches every labeled variant), or a base name with a label
  /// subset — `f{a="1"}` matches `f{a="1",b="2"}`. Empty selector matches
  /// everything.
  static bool selector_matches(std::string_view selector,
                               std::string_view name);

 private:
  /// Immutable published ring; successor rings are built beside readers.
  struct Ring {
    SeriesKind kind = SeriesKind::kCounter;
    std::vector<TsSample> samples;  ///< oldest -> newest, size <= capacity
  };
  struct Series {
    std::atomic<std::shared_ptr<const Ring>> ring;
    // Sampler-thread-only bookkeeping for deltas (guarded by write_mutex_).
    double prev_value = 0.0;
    bool has_prev = false;
  };
  using Directory =
      std::map<std::string, std::shared_ptr<Series>, std::less<>>;

  std::shared_ptr<const Series> find(std::string_view name) const;
  void append(Directory& directory, bool& directory_grew,
              const std::string& name, SeriesKind kind, double ts_ms,
              double value, double sum, double p50, double p90, double p99);

  mutable std::mutex write_mutex_;  ///< serializes sample/configure/reset
  std::atomic<std::shared_ptr<const Directory>> directory_{
      std::make_shared<const Directory>()};
  std::atomic<std::size_t> capacity_{600};
  std::atomic<std::uint64_t> interval_ms_{1000};
  std::atomic<std::uint64_t> ticks_{0};

  std::mutex sampler_mutex_;  ///< guards the thread + stop flag
  std::condition_variable sampler_cv_;
  std::thread sampler_;
  bool stop_requested_ = false;
  std::atomic<bool> running_{false};
};

}  // namespace dockmine::obs
