#include "dockmine/obs/obs.h"

#include <chrono>
#include <cmath>
#include <ctime>

namespace dockmine::obs {

namespace detail {

std::size_t assign_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) % Histogram::kShards;
}

namespace {

struct ClockFns {
  std::function<double()> wall_ms;
  std::function<double()> cpu_ms;  // may be empty: reads 0
};

// Injected clock, read with acquire loads on hot-ish paths. Replaced
// pointers are parked in a graveyard instead of freed so a concurrent
// reader can never touch dead memory (set_clock itself is documented as
// not-concurrent-with-instrumentation; this just makes the failure mode of
// a violation benign).
std::atomic<ClockFns*> g_clock{nullptr};

std::mutex& graveyard_mutex() {
  static std::mutex m;
  return m;
}
std::vector<std::unique_ptr<ClockFns>>& graveyard() {
  static std::vector<std::unique_ptr<ClockFns>> g;
  return g;
}

double steady_now_ms() noexcept {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double thread_cpu_now_ms() noexcept {
  std::timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) * 1e-6;
}

}  // namespace
}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_clock(std::function<double()> wall_ms,
               std::function<double()> cpu_ms) {
  auto fns = std::make_unique<detail::ClockFns>();
  fns->wall_ms = std::move(wall_ms);
  fns->cpu_ms = std::move(cpu_ms);
  std::lock_guard lock(detail::graveyard_mutex());
  detail::ClockFns* raw = fns.get();
  detail::graveyard().push_back(std::move(fns));
  detail::g_clock.store(raw, std::memory_order_release);
}

void reset_clock() noexcept {
  detail::g_clock.store(nullptr, std::memory_order_release);
}

double now_ms() noexcept {
  const detail::ClockFns* fns =
      detail::g_clock.load(std::memory_order_acquire);
  if (fns == nullptr || !fns->wall_ms) return detail::steady_now_ms();
  return fns->wall_ms();
}

double cpu_now_ms() noexcept {
  const detail::ClockFns* fns =
      detail::g_clock.load(std::memory_order_acquire);
  if (fns == nullptr) return detail::thread_cpu_now_ms();
  // A custom wall clock without a cpu clock reads 0: deterministic, and
  // plainly "not measured" rather than mixing virtual wall with real cpu.
  return fns->cpu_ms ? fns->cpu_ms() : 0.0;
}

// ---- Histogram ----

int Histogram::bucket_of(double x) noexcept {
  int k = static_cast<int>(std::log2(x));
  if (k < 0) k = 0;
  if (k > kBuckets - 1) k = kBuckets - 1;
  return k;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const noexcept {
  double total = 0.0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

stats::Log2Histogram Histogram::merged() const {
  stats::Log2Histogram merged;
  for (const Shard& shard : shards_) {
    const std::uint64_t zero = shard.zero.load(std::memory_order_relaxed);
    if (zero != 0) merged.add(0.0, zero);
    for (int k = 0; k < kBuckets; ++k) {
      const std::uint64_t n =
          shard.buckets[static_cast<std::size_t>(k)].load(
              std::memory_order_relaxed);
      // exp2(k) lands exactly in bucket k of the stats sketch, so the
      // rebuilt histogram has identical bucket counts.
      if (n != 0) merged.add(std::exp2(k), n);
    }
  }
  return merged;
}

void Histogram::reset() noexcept {
  for (Shard& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.zero.store(0, std::memory_order_relaxed);
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

// ---- Registry ----

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.count = histogram->count();
    h.sum = histogram->sum();
    h.values = histogram->merged();
    snap.histograms.push_back(std::move(h));
  }
  return snap;  // std::map iteration: already sorted by name
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace dockmine::obs
