// Event-level tracing (the journal half of dockmine::obs tracing).
//
// The aggregate Tracer (span.h) answers "how much total time went to each
// stage"; the TraceJournal answers "where did *this run's* wall clock go":
// every recorded interval is a timed event carrying identity
// (trace_id / span_id / parent_id), placement (node, lane = stable thread
// index), and start/end on the injectable obs clock. The journal is what
// the Chrome/Perfetto exporter (trace_export.h) and the critical-path
// analyzer (critical_path.h) consume.
//
// Storage is a ring per shard (threads hash to shards by lane), bounded by
// a configurable per-shard capacity: a weeks-long run can leave the journal
// on and keep only the most recent events, with an exact drop counter for
// what fell off. Everything follows the obs cost discipline:
//
//   * separate runtime switch (`set_journal_enabled`), off by default;
//     every record site pays one relaxed flag load and nothing else while
//     the journal is off (the flag also requires the obs master switch, so
//     a journal-enabled-but-obs-disabled process records nothing);
//   * -DDOCKMINE_OBS=OFF compiles every record body away
//     (`journal_enabled()` is constant false);
//   * snapshots are deterministic: events sort by (start, end, name, id)
//     and lanes are renumbered densely in order of first appearance, so two
//     identical seeded serial runs on a virtual clock serialize to
//     byte-identical trace documents even though the underlying OS thread
//     ids differ.
//
// Context propagation: each thread carries a current TraceContext
// (trace_id + innermost open span). Tracer spans and EventSpans push/pop
// it; `ContextGuard` adopts a captured context on another thread, which is
// how a layer's analyze event parents to its download event across the
// streamed pipeline's bounded queue, and `record_event` records externally
// measured intervals (queue waits) under an explicit parent.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "dockmine/obs/obs.h"

namespace dockmine::obs {

namespace detail {
inline std::atomic<bool> g_journal_enabled{false};
inline std::atomic<std::uint32_t> g_node_id{0};
}  // namespace detail

/// Runtime switch for event recording. True only when both the journal
/// flag and the obs master switch are on; the journal-off fast path is a
/// single relaxed load.
inline bool journal_enabled() noexcept {
#if defined(DOCKMINE_OBS_DISABLED)
  return false;
#else
  return detail::g_journal_enabled.load(std::memory_order_relaxed) &&
         enabled();
#endif
}
void set_journal_enabled(bool on) noexcept;

/// Node identity baked into every recorded event (multi-node runs stamp
/// their node index; single runs stay 0). Exported as the Perfetto pid.
void set_node_id(std::uint32_t node) noexcept;
inline std::uint32_t node_id() noexcept {
  return detail::g_node_id.load(std::memory_order_relaxed);
}

enum class EventKind : std::uint8_t {
  kSpan = 0,       ///< a timed scope (stage, per-layer work)
  kQueueWait = 1,  ///< time an item sat in a hand-off queue
};
std::string_view to_string(EventKind kind) noexcept;

/// Propagatable span identity: the enclosing trace and the innermost open
/// span. `span_id == 0` means "no open span" (the zero context).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

/// One recorded interval. `lane` is the journal's stable per-thread index
/// (renumbered densely at snapshot time); `node` is the multi-node id.
struct TraceEvent {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root of its trace
  std::uint32_t node = 0;
  std::uint32_t lane = 0;
  EventKind kind = EventKind::kSpan;
  double start_ms = 0.0;
  double end_ms = 0.0;
  double cpu_ms = 0.0;
  std::string name;
};

/// The calling thread's current context ({} while the journal is off).
TraceContext current_trace_context() noexcept;

namespace detail {
/// Open a new span context under the calling thread's current one; returns
/// the previous context (restore it with pop_context). Only call while
/// journal_enabled().
TraceContext push_context(std::uint64_t* trace_id, std::uint64_t* span_id,
                          std::uint64_t* parent_id) noexcept;
void pop_context(TraceContext previous) noexcept;
}  // namespace detail

/// Adopt a context captured on another thread (e.g. stamped into a queue
/// item by the producer) for the guard's scope, so spans opened here parent
/// across the hand-off. Inert when the journal is off or `ctx` is zero.
class ContextGuard {
 public:
  explicit ContextGuard(TraceContext ctx) noexcept {
#if !defined(DOCKMINE_OBS_DISABLED)
    if (ctx.span_id == 0 || !journal_enabled()) return;
    adopt(ctx);
#else
    (void)ctx;
#endif
  }
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;
  ~ContextGuard() {
    if (active_) detail::pop_context(previous_);
  }

 private:
  void adopt(TraceContext ctx) noexcept;
  TraceContext previous_{};
  bool active_ = false;
};

/// RAII journal-only event: times a scope on the obs clock and records one
/// TraceEvent on finish, parented to the thread's current context. Unlike
/// Tracer::Span it creates no aggregate row — use it for high-cardinality
/// per-item work (per-layer downloads/analyses) where the aggregate half
/// already has record_at totals. Must finish on the opening thread.
class EventSpan {
 public:
  EventSpan() = default;
  explicit EventSpan(std::string_view name);
  EventSpan(EventSpan&& other) noexcept { *this = std::move(other); }
  EventSpan& operator=(EventSpan&& other) noexcept;
  EventSpan(const EventSpan&) = delete;
  EventSpan& operator=(const EventSpan&) = delete;
  ~EventSpan() { finish(); }

  /// Close early (idempotent); the destructor calls this.
  void finish() noexcept;

  /// This span's identity for cross-thread parenting ({} when inert).
  TraceContext context() const noexcept { return {trace_id_, span_id_}; }

 private:
  std::string name_;
  TraceContext previous_{};
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_id_ = 0;
  double start_wall_ = 0.0;
  double start_cpu_ = 0.0;
};

/// Record an externally measured closed interval (a queue wait, an I/O
/// stall) under an explicit parent context. One relaxed load when the
/// journal is off.
void record_event(std::string_view name, EventKind kind, double start_ms,
                  double end_ms, TraceContext parent);

/// Bounded, shard-per-thread event store. Threads map to shards by their
/// stable lane index; each shard is a mutex-guarded ring (threads rarely
/// share a shard, so the lock is effectively uncontended) holding the most
/// recent `capacity()` events with an exact count of what was overwritten.
class TraceJournal {
 public:
  static constexpr std::size_t kShards = 16;
  static constexpr std::size_t kDefaultCapacity = 8192;  ///< per shard

  static TraceJournal& global();

  /// Stamp node/lane and append, evicting the shard's oldest event when the
  /// ring is full. No-op while the journal is disabled.
  void record(TraceEvent event);

  /// Merged view of every shard: sorted by (start, end, name, span_id),
  /// lanes renumbered densely in first-appearance order (see header note on
  /// determinism).
  std::vector<TraceEvent> snapshot() const;

  std::uint64_t recorded() const noexcept;  ///< events ever written
  std::uint64_t dropped() const noexcept;   ///< events evicted by the ring

  /// Resize every shard's ring (clears all events and counters).
  void set_capacity(std::size_t events_per_shard);
  std::size_t capacity() const noexcept {
    return capacity_.load(std::memory_order_relaxed);
  }

  /// Clear events, drop counters, and the span-id allocator (so two
  /// back-to-back seeded runs assign identical ids).
  void reset();

  /// Fresh span id (never 0). Deterministic across runs after reset().
  std::uint64_t next_span_id() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::vector<TraceEvent> ring;      ///< wraps at capacity
    std::size_t next = 0;              ///< overwrite cursor once full
    std::uint64_t written = 0;         ///< events ever recorded here
  };

  std::atomic<std::size_t> capacity_{kDefaultCapacity};
  std::atomic<std::uint64_t> next_id_{1};
  std::array<Shard, kShards> shards_{};
};

}  // namespace dockmine::obs
