// Hierarchical tracing spans (the tracing half of dockmine::obs).
//
// A `Span` is an RAII scope timed against the injectable obs clock (wall +
// CPU). Spans nest through a thread-local path: opening "download" inside
// "pipeline" aggregates under "pipeline/download". On finish, the span's
// wall/CPU deltas accumulate into the owning `Tracer`'s per-path table —
// the exported view is the aggregation (count, total wall, total CPU per
// path), not an event log, so weeks-long runs stay O(#distinct paths).
//
// Worker-side stage costs that happen on pool threads (untar/classify per
// layer) are folded in with `record_at`: the orchestrating thread reads its
// `current_path()` while the stage span is open and attributes the
// aggregated worker time to a child path.
//
// When the trace journal is also enabled (journal.h), every span doubles
// as an event: it opens a trace context on its thread and records one
// timed TraceEvent on finish, so the same instrumentation feeds both the
// aggregate table and the event-level timeline.
//
// Like every obs instrument, spans opened while obs is disabled are inert
// (one flag load, no clock read, no allocation), and under
// -DDOCKMINE_OBS=OFF the bodies compile away entirely.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <map>
#include <vector>

#include "dockmine/obs/journal.h"
#include "dockmine/obs/obs.h"

namespace dockmine::obs {

/// Aggregated view of one span path.
struct SpanRow {
  std::string path;      ///< "pipeline/analyze/untar"
  std::uint64_t count = 0;
  double wall_ms = 0.0;
  double cpu_ms = 0.0;
};

class Tracer {
 public:
  static Tracer& global();

  /// RAII handle. Must finish on the thread that opened it (the path stack
  /// is thread-local). Movable; moved-from spans are inert.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept {
      if (this != &other) {
        finish();
        tracer_ = other.tracer_;
        parent_len_ = other.parent_len_;
        start_wall_ = other.start_wall_;
        start_cpu_ = other.start_cpu_;
        trace_id_ = other.trace_id_;
        span_id_ = other.span_id_;
        parent_id_ = other.parent_id_;
        prev_ctx_ = other.prev_ctx_;
        other.tracer_ = nullptr;
        other.span_id_ = 0;
      }
      return *this;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { finish(); }

    /// Close early (idempotent); the destructor calls this.
    void finish() noexcept;

    /// This span's journal identity, for cross-thread parenting via
    /// ContextGuard ({} when the journal was off at open time).
    TraceContext context() const noexcept { return {trace_id_, span_id_}; }

   private:
    friend class Tracer;
    Span(Tracer* tracer, std::size_t parent_len, double start_wall,
         double start_cpu)
        : tracer_(tracer),
          parent_len_(parent_len),
          start_wall_(start_wall),
          start_cpu_(start_cpu) {}

    Tracer* tracer_ = nullptr;
    std::size_t parent_len_ = 0;
    double start_wall_ = 0.0;
    double start_cpu_ = 0.0;
    // Journal identity, populated only while the journal is enabled.
    std::uint64_t trace_id_ = 0;
    std::uint64_t span_id_ = 0;
    std::uint64_t parent_id_ = 0;
    TraceContext prev_ctx_{};
  };

  /// Open a span named `name` under the calling thread's current path.
  /// Inert (and free apart from one flag load) while obs is disabled.
  [[nodiscard]] Span span(std::string_view name);

  /// Accumulate externally measured time under `<current_path>/<name>`
  /// (or `<name>` at top level). For folding worker-side totals into the
  /// orchestrator's hierarchy.
  void record(std::string_view name, double wall_ms, double cpu_ms = 0.0,
              std::uint64_t count = 1);

  /// Accumulate under an absolute path, ignoring the calling thread's
  /// stack. Pair with current_path() captured on the orchestrating thread.
  void record_at(std::string_view path, double wall_ms, double cpu_ms = 0.0,
                 std::uint64_t count = 1);

  /// The calling thread's open-span path ("" at top level).
  std::string current_path() const;

  /// All rows, sorted by path. Zero rows are never created, so two
  /// identical runs snapshot identically.
  std::vector<SpanRow> snapshot() const;

  void reset();

 private:
  void finish_span(Span& span) noexcept;

  mutable std::mutex mutex_;
  std::map<std::string, SpanRow, std::less<>> rows_;
};

}  // namespace dockmine::obs
