// Metric/trace export: one `MetricsReport` snapshot of the process-wide
// registry + tracer, serializable as JSON (dm_json document — machine
// consumers, bench artifacts) or Prometheus text exposition format
// (scrape/grep consumers). Both serializations are deterministic: entries
// sorted by name, doubles printed shortest-round-trip, so identical runs
// (on the injectable clock) export byte-identical documents.
#pragma once

#include <string>

#include "dockmine/json/json.h"
#include "dockmine/obs/obs.h"
#include "dockmine/obs/span.h"

namespace dockmine::obs {

struct MetricsReport {
  Registry::Snapshot metrics;
  std::vector<SpanRow> spans;
};

/// Snapshot the global registry and tracer.
MetricsReport collect();

/// Zero the global registry (keeping registrations) and clear the global
/// tracer. For tests and back-to-back CLI runs.
void reset_all();

/// {"counters":{...},"gauges":{...},"histograms":{...},"spans":[...]}
json::Value to_json(const MetricsReport& report);

/// Prometheus text exposition format. Counter/gauge names pass through
/// (label suffixes baked into the name are preserved); histograms expand to
/// cumulative `_bucket{le="..."}` lines plus `_sum`/`_count`; span rows
/// become `dockmine_span_{count,wall_ms,cpu_ms}{path="..."}`.
std::string to_prometheus(const MetricsReport& report);

}  // namespace dockmine::obs
