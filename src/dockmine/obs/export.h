// Metric/trace export: one `MetricsReport` snapshot of the process-wide
// registry + tracer, serializable as JSON (dm_json document — machine
// consumers, bench artifacts) or Prometheus text exposition format
// (scrape/grep consumers). Both serializations are deterministic: entries
// sorted by name, doubles printed shortest-round-trip, so identical runs
// (on the injectable clock) export byte-identical documents.
//
// The JSON form is also a wire format: `report_from_json` parses an
// exported document back into a MetricsReport (exact — log2 buckets
// reconstruct from their row lower bounds), and `merge_reports` /
// `merge_obs_exports` fold per-node exports from a `run_multi_node` run
// into one cluster-wide report, with per-node wall times for straggler
// analysis. That pair backs the `dockmine merge-obs` CLI verb.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dockmine/json/json.h"
#include "dockmine/obs/obs.h"
#include "dockmine/obs/span.h"
#include "dockmine/util/error.h"

namespace dockmine::obs {

struct MetricsReport {
  Registry::Snapshot metrics;
  std::vector<SpanRow> spans;
  std::uint32_t node = 0;  ///< multi-node id this snapshot came from
};

/// Snapshot the global registry and tracer (stamped with the current node
/// id).
MetricsReport collect();

/// Zero the global registry (keeping registrations), clear the global
/// tracer and trace journal (events, drop counters, id allocators), stop
/// any running heartbeat and time-series sampler (dropping sampled rings),
/// restart the heartbeat sequence counter, re-base uptime, and restore
/// node id 0. For tests and back-to-back CLI runs: afterwards the process
/// observes like a freshly started one (the enable switches are left
/// as-is).
void reset_all();

/// {"counters":{...},"gauges":{...},"histograms":{...},"spans":[...],
///  "node":N}
json::Value to_json(const MetricsReport& report);

/// Inverse of to_json. Exact for everything to_json writes: counters,
/// gauges, histogram count/sum/buckets (log2 buckets reconstruct from the
/// row lower bounds; derived quantiles are recomputed), span rows, node.
util::Result<MetricsReport> report_from_json(const json::Value& doc);

/// Fold `from` into `into`: counters, histogram buckets, and span rows add
/// by name/path; gauges add too (levels like queue depth sum to the
/// cluster-wide level). `into.node` is left unchanged.
void merge_reports(MetricsReport& into, const MetricsReport& from);

/// Per-node wall time extracted during a merge (straggler analysis).
struct ObsNodeSummary {
  std::string source;            ///< file the export was read from
  std::uint32_t node = 0;
  double pipeline_wall_ms = 0.0;  ///< the node's "pipeline" span wall time
  double straggler_delta_ms = 0.0;  ///< vs. the fastest node in the set
};

struct ObsMergeResult {
  MetricsReport merged;
  std::vector<ObsNodeSummary> nodes;  ///< in input order
};

/// Read per-node JSON exports (files produced by `to_json(...).dump()`,
/// e.g. `run_multi_node` with an obs export dir) and fold them into one
/// report. Fails on unreadable files or schema mismatches.
util::Result<ObsMergeResult> merge_obs_exports(
    const std::vector<std::string>& paths);

/// Prometheus text exposition format. Counter/gauge names pass through
/// (label suffixes baked into the name are preserved); histograms expand to
/// cumulative `_bucket{le="..."}` lines plus `_sum`/`_count`; span rows
/// become `dockmine_span_{count,wall_ms,cpu_ms}{path="..."}` with the path
/// escaped per the exposition format (`\` → `\\`, `"` → `\"`, newline →
/// `\n`).
std::string to_prometheus(const MetricsReport& report);

}  // namespace dockmine::obs
