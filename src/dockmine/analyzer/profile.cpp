// Profile types are header-only aggregates; this TU anchors the header and
// pins layout assumptions that the dedup index relies on.
#include "dockmine/analyzer/profile.h"

namespace dockmine::analyzer {

static_assert(sizeof(FileRecord) <= 64,
              "FileRecord is copied per file on the hot path; keep it lean");

}  // namespace dockmine::analyzer
