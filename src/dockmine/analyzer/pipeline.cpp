#include "dockmine/analyzer/pipeline.h"

#include <mutex>
#include <unordered_set>

#include "dockmine/obs/obs.h"
#include "dockmine/obs/span.h"
#include "dockmine/util/thread_pool.h"

namespace dockmine::analyzer {

namespace {

struct AnalyzerMetrics {
  obs::Counter& layers;
  obs::Counter& files;
  obs::Counter& failures;
  obs::Histogram& layer_ms;

  static AnalyzerMetrics& get() {
    auto& reg = obs::Registry::global();
    static AnalyzerMetrics m{
        reg.counter("dockmine_analyzer_layers_total"),
        reg.counter("dockmine_analyzer_files_total"),
        reg.counter("dockmine_analyzer_failures_total"),
        reg.histogram("dockmine_analyzer_layer_ms")};
    return m;
  }
};

}  // namespace

util::Result<ProfileStore> AnalysisPipeline::run(
    const std::vector<registry::Manifest>& manifests, const BlobFetch& fetch,
    const Sink& sink) const {
  // Unique layer digests in first-reference order.
  std::vector<digest::Digest> unique;
  {
    std::unordered_set<digest::Digest, digest::DigestHash> seen;
    for (const auto& manifest : manifests) {
      for (const auto& ref : manifest.layers) {
        if (seen.insert(ref.digest).second) unique.push_back(ref.digest);
      }
    }
  }

  ProfileStore store;
  std::mutex sink_mutex;   // serializes sink callbacks and the store
  util::Status first_error;
  const LayerAnalyzer analyzer(options_.analyzer);

  AnalyzerMetrics& metrics = AnalyzerMetrics::get();
  // Worker threads carry no span stack; their per-stage totals fold into
  // the orchestrator's hierarchy under the path open right now.
  const bool timed = obs::enabled();
  const std::string span_base =
      timed ? obs::Tracer::global().current_path() : std::string{};
  auto child_path = [&](const char* name) {
    return span_base.empty() ? std::string(name) : span_base + "/" + name;
  };

  util::ThreadPool pool(options_.workers);
  util::parallel_for(pool, 0, unique.size(), /*grain=*/1, [&](std::size_t i) {
    {
      std::lock_guard lock(sink_mutex);
      if (!first_error.ok()) return;  // fail fast
    }
    auto blob = fetch(unique[i]);
    if (!blob.ok()) {
      std::lock_guard lock(sink_mutex);
      if (first_error.ok()) first_error = std::move(blob).error();
      return;
    }

    // Buffer file records locally; flush in batches to bound lock traffic.
    std::vector<FileRecord> batch;
    FileVisitor visitor = [&](std::string_view, const FileRecord& record) {
      batch.push_back(record);
    };
    LayerAnalyzer::Timing timing;
    const double start_ms = timed ? obs::now_ms() : 0.0;
    auto profile = analyzer.analyze_blob(
        *blob.value(), sink.on_file ? &visitor : nullptr,
        /*dir_visitor=*/nullptr, timed ? &timing : nullptr);
    if (timed) {
      const double total_ms = obs::now_ms() - start_ms;
      metrics.layer_ms.observe(total_ms);
      auto& tracer = obs::Tracer::global();
      tracer.record_at(child_path("gunzip"), timing.gunzip_ms);
      tracer.record_at(child_path("classify"), timing.classify_ms);
      // Whatever analyze_blob spent outside gunzip/classify is the tar walk.
      tracer.record_at(
          child_path("untar"),
          std::max(0.0, total_ms - timing.gunzip_ms - timing.classify_ms));
    }
    if (profile.ok()) {
      metrics.layers.add();
      metrics.files.add(profile.value().file_count);
    } else {
      metrics.failures.add();
    }

    std::lock_guard lock(sink_mutex);
    if (!profile.ok()) {
      if (first_error.ok()) first_error = std::move(profile).error();
      return;
    }
    store.put(profile.value());
    if (sink.on_layer) sink.on_layer(profile.value());
    if (sink.on_file) {
      for (const FileRecord& record : batch) {
        sink.on_file(profile.value().digest, record);
      }
    }
  });
  pool.shutdown();
  if (!first_error.ok()) return first_error.error();

  for (const auto& manifest : manifests) {
    auto image = build_image_profile(manifest, store);
    if (!image.ok()) return std::move(image).error();
    if (sink.on_image) sink.on_image(image.value());
  }
  return store;
}

}  // namespace dockmine::analyzer
