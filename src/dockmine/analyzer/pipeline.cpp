#include "dockmine/analyzer/pipeline.h"

#include <unordered_set>

#include "dockmine/mem/arena.h"
#include "dockmine/obs/journal.h"
#include "dockmine/obs/obs.h"
#include "dockmine/obs/span.h"
#include "dockmine/util/thread_pool.h"

namespace dockmine::analyzer {

namespace {

struct AnalyzerMetrics {
  obs::Counter& layers;
  obs::Counter& files;
  obs::Counter& failures;
  obs::Histogram& layer_ms;

  static AnalyzerMetrics& get() {
    auto& reg = obs::Registry::global();
    static AnalyzerMetrics m{
        reg.counter("dockmine_analyzer_layers_total"),
        reg.counter("dockmine_analyzer_files_total"),
        reg.counter("dockmine_analyzer_failures_total"),
        reg.histogram("dockmine_analyzer_layer_ms")};
    return m;
  }
};

std::string capture_span_base(bool timed) {
  // Worker threads carry no span stack; their per-stage totals fold into
  // the orchestrator's hierarchy under the path open right now.
  return timed ? obs::Tracer::global().current_path() : std::string{};
}

}  // namespace

AnalysisPipeline::Session::Session(const AnalysisPipeline& pipeline,
                                   const Sink& sink)
    : analyzer_(pipeline.options().analyzer),
      sink_(sink),
      timed_(obs::enabled()),
      span_base_(capture_span_base(timed_)) {}

void AnalysisPipeline::Session::analyze(const digest::Digest& digest,
                                        const std::string& gzip_blob) {
  {
    std::lock_guard lock(mutex_);
    if (!first_error_.ok()) return;          // fail fast
    if (store_.contains(digest)) return;     // idempotent re-delivery
  }

  // One journal event per analyzed layer (duplicates returned above). In
  // the streamed pipeline the caller adopted the producer's context, so
  // this parents to the layer's download_layer event.
  const obs::EventSpan event_span("analyze_layer");

  AnalyzerMetrics& metrics = AnalyzerMetrics::get();
  auto child_path = [&](const char* name) {
    return span_base_.empty() ? std::string(name) : span_base_ + "/" + name;
  };

  // Per-layer scratch: each pool thread owns one arena, reset at the end
  // of every layer (DESIGN.md §14). Nothing allocated below may escape
  // this call.
  static thread_local mem::Arena scratch;
  struct ResetGuard {
    mem::Arena& arena;
    ~ResetGuard() { arena.reset(); }
  } reset_guard{scratch};

  // Buffer file records locally; flush in batches to bound lock traffic.
  std::vector<FileRecord, mem::ArenaAllocator<FileRecord>> batch{
      mem::ArenaAllocator<FileRecord>(scratch)};
  FileVisitor visitor = [&](std::string_view, const FileRecord& record) {
    batch.push_back(record);
  };
  LayerAnalyzer::Timing timing;
  const double start_ms = timed_ ? obs::now_ms() : 0.0;
  const bool want_files = sink_.on_file || sink_.on_file_concurrent;
  auto profile = analyzer_.analyze_blob(
      gzip_blob, want_files ? &visitor : nullptr,
      /*dir_visitor=*/nullptr, timed_ ? &timing : nullptr, &scratch);
  if (timed_) {
    const double total_ms = obs::now_ms() - start_ms;
    metrics.layer_ms.observe(total_ms);
    auto& tracer = obs::Tracer::global();
    tracer.record_at(child_path("gunzip"), timing.gunzip_ms);
    tracer.record_at(child_path("classify"), timing.classify_ms);
    // Whatever analyze_blob spent outside gunzip/classify is the tar walk.
    tracer.record_at(
        child_path("untar"),
        std::max(0.0, total_ms - timing.gunzip_ms - timing.classify_ms));
  }
  if (profile.ok()) {
    metrics.layers.add();
    metrics.files.add(profile.value().file_count);
  } else {
    metrics.failures.add();
  }

  {
    std::lock_guard lock(mutex_);
    if (!profile.ok()) {
      if (first_error_.ok()) first_error_ = std::move(profile).error();
      return;
    }
    // Two workers racing the same digest both analyze, but only the first
    // one's results are delivered — duplicate sink calls would skew dedup.
    if (store_.contains(profile.value().digest)) return;
    store_.put(profile.value());
    analyzed_.fetch_add(1, std::memory_order_relaxed);
    if (sink_.on_layer) sink_.on_layer(profile.value());
    if (sink_.on_file) {
      for (const FileRecord& record : batch) {
        sink_.on_file(profile.value().digest, record);
      }
    }
  }
  // The delivery race is settled (this thread won it), so concurrent file
  // delivery outside the mutex is still exactly-once per unique layer.
  if (sink_.on_file_concurrent) {
    for (const FileRecord& record : batch) {
      sink_.on_file_concurrent(profile.value().digest, record);
    }
  }
}

void AnalysisPipeline::Session::reserve_layers(std::size_t layers) {
  std::lock_guard lock(mutex_);
  store_.reserve(layers);
}

void AnalysisPipeline::Session::fail(util::Error error) {
  std::lock_guard lock(mutex_);
  if (first_error_.ok()) first_error_ = std::move(error);
}

util::Status AnalysisPipeline::Session::finish(
    const std::vector<registry::Manifest>& manifests) {
  std::lock_guard lock(mutex_);
  if (!first_error_.ok()) return first_error_;
  for (const auto& manifest : manifests) {
    auto image = build_image_profile(manifest, store_);
    if (!image.ok()) return std::move(image).error();
    if (sink_.on_image) sink_.on_image(image.value());
  }
  return util::Status::success();
}

util::Status AnalysisPipeline::Session::status() const {
  std::lock_guard lock(mutex_);
  return first_error_;
}

ProfileStore AnalysisPipeline::Session::take_store() {
  std::lock_guard lock(mutex_);
  return std::move(store_);
}

util::Result<ProfileStore> AnalysisPipeline::run(
    const std::vector<registry::Manifest>& manifests, const BlobFetch& fetch,
    const Sink& sink) const {
  // Unique layer digests in first-reference order.
  std::vector<digest::Digest> unique;
  {
    std::unordered_set<digest::Digest, digest::DigestHash> seen;
    for (const auto& manifest : manifests) {
      for (const auto& ref : manifest.layers) {
        if (seen.insert(ref.digest).second) unique.push_back(ref.digest);
      }
    }
  }

  Session session(*this, sink);
  session.reserve_layers(unique.size());
  util::ThreadPool pool(options_.workers);
  // Parent pool-thread events into the caller's open span ("analyze").
  const obs::TraceContext run_ctx = obs::current_trace_context();
  util::parallel_for(pool, 0, unique.size(), /*grain=*/1, [&](std::size_t i) {
    const obs::ContextGuard adopt(run_ctx);
    if (!session.status().ok()) return;  // fail fast
    auto blob = fetch(unique[i]);
    if (!blob.ok()) {
      // Latch the fetch error through a poison analyze: simplest is to
      // record it directly.
      session.fail(std::move(blob).error());
      return;
    }
    session.analyze(unique[i], *blob.value());
  });
  pool.shutdown();
  if (auto status = session.finish(manifests); !status.ok()) {
    return status.error();
  }
  return session.take_store();
}

}  // namespace dockmine::analyzer
