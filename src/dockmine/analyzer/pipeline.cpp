#include "dockmine/analyzer/pipeline.h"

#include <mutex>
#include <unordered_set>

#include "dockmine/util/thread_pool.h"

namespace dockmine::analyzer {

util::Result<ProfileStore> AnalysisPipeline::run(
    const std::vector<registry::Manifest>& manifests, const BlobFetch& fetch,
    const Sink& sink) const {
  // Unique layer digests in first-reference order.
  std::vector<digest::Digest> unique;
  {
    std::unordered_set<digest::Digest, digest::DigestHash> seen;
    for (const auto& manifest : manifests) {
      for (const auto& ref : manifest.layers) {
        if (seen.insert(ref.digest).second) unique.push_back(ref.digest);
      }
    }
  }

  ProfileStore store;
  std::mutex sink_mutex;   // serializes sink callbacks and the store
  util::Status first_error;
  const LayerAnalyzer analyzer(options_.analyzer);

  util::ThreadPool pool(options_.workers);
  util::parallel_for(pool, 0, unique.size(), /*grain=*/1, [&](std::size_t i) {
    {
      std::lock_guard lock(sink_mutex);
      if (!first_error.ok()) return;  // fail fast
    }
    auto blob = fetch(unique[i]);
    if (!blob.ok()) {
      std::lock_guard lock(sink_mutex);
      if (first_error.ok()) first_error = std::move(blob).error();
      return;
    }

    // Buffer file records locally; flush in batches to bound lock traffic.
    std::vector<FileRecord> batch;
    FileVisitor visitor = [&](std::string_view, const FileRecord& record) {
      batch.push_back(record);
    };
    auto profile = analyzer.analyze_blob(
        *blob.value(), sink.on_file ? &visitor : nullptr);

    std::lock_guard lock(sink_mutex);
    if (!profile.ok()) {
      if (first_error.ok()) first_error = std::move(profile).error();
      return;
    }
    store.put(profile.value());
    if (sink.on_layer) sink.on_layer(profile.value());
    if (sink.on_file) {
      for (const FileRecord& record : batch) {
        sink.on_file(profile.value().digest, record);
      }
    }
  });
  pool.shutdown();
  if (!first_error.ok()) return first_error.error();

  for (const auto& manifest : manifests) {
    auto image = build_image_profile(manifest, store);
    if (!image.ok()) return std::move(image).error();
    if (sink.on_image) sink.on_image(image.value());
  }
  return store;
}

}  // namespace dockmine::analyzer
