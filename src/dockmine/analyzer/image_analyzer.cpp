#include "dockmine/analyzer/image_analyzer.h"

namespace dockmine::analyzer {

void ProfileStore::put(const LayerProfile& profile) {
  profiles_.emplace(profile.digest, profile);
}

std::optional<LayerProfile> ProfileStore::find(
    const digest::Digest& digest) const {
  const auto it = profiles_.find(digest);
  if (it == profiles_.end()) return std::nullopt;
  return it->second;
}

bool ProfileStore::contains(const digest::Digest& digest) const {
  return profiles_.find(digest) != profiles_.end();
}

util::Result<ImageProfile> build_image_profile(
    const registry::Manifest& manifest, const ProfileStore& store) {
  ImageProfile image;
  image.repository = manifest.repository;
  for (const registry::LayerRef& ref : manifest.layers) {
    const auto layer = store.find(ref.digest);
    if (!layer.has_value()) {
      return util::not_found("layer " + ref.digest.short_hex() +
                             " not profiled for image " + manifest.repository);
    }
    image.accumulate(*layer);
  }
  return image;
}

}  // namespace dockmine::analyzer
