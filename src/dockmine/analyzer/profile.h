// Layer and image profiles — the analyzer's outputs, mirroring §III-C of
// the paper:
//   layer profile: digest, FLS, CLS, directory count, file count, max
//                  directory depth, FLS-to-CLS ratio, per-file metadata
//   image profile: FIS, CIS, directory count, file count, compression ratio
//
// Per-file metadata is not stored in the profile (a full-scale snapshot has
// billions of files); consumers that need it (dedup, type statistics)
// receive a streaming callback during analysis instead.
#pragma once

#include <cstdint>
#include <string>

#include "dockmine/digest/digest.h"
#include "dockmine/filetype/taxonomy.h"

namespace dockmine::analyzer {

struct LayerProfile {
  digest::Digest digest;          ///< digest of the compressed layer blob
  std::uint64_t fls = 0;          ///< sum of contained file sizes
  std::uint64_t cls = 0;          ///< compressed layer (blob) size
  std::uint64_t file_count = 0;
  std::uint64_t dir_count = 1;    ///< explicit dirs; implicit root counts 1
  std::uint32_t max_depth = 1;

  /// FLS-to-CLS. Layers with no files report 0 (excluded from ratio CDFs,
  /// matching the paper's treatment of empty layers).
  double compression_ratio() const noexcept {
    return cls == 0 || fls == 0
               ? 0.0
               : static_cast<double>(fls) / static_cast<double>(cls);
  }
};

struct ImageProfile {
  std::string repository;
  std::uint64_t fis = 0;          ///< sum of file sizes across layers
  std::uint64_t cis = 0;          ///< sum of compressed layer sizes
  std::uint64_t file_count = 0;
  std::uint64_t dir_count = 0;
  std::uint32_t layer_count = 0;

  double compression_ratio() const noexcept {
    return cis == 0 ? 0.0
                    : static_cast<double>(fis) / static_cast<double>(cis);
  }

  void accumulate(const LayerProfile& layer) noexcept {
    fis += layer.fls;
    cis += layer.cls;
    file_count += layer.file_count;
    dir_count += layer.dir_count;
    ++layer_count;
  }
};

/// One file observation streamed out of layer analysis.
struct FileRecord {
  digest::Digest digest;
  std::uint64_t size = 0;
  filetype::Type type = filetype::Type::kEmpty;
};

}  // namespace dockmine::analyzer
