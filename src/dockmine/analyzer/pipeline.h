// Parallel analysis pipeline: profile every unique layer of a set of
// manifests (fetching blobs through a caller-supplied function), then build
// image profiles. Mirrors Fig. 2 of the paper — the Analyzer stage — with
// the unique-layer economy of §III-B.
#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "dockmine/analyzer/image_analyzer.h"
#include "dockmine/analyzer/layer_analyzer.h"
#include "dockmine/blob/store.h"
#include "dockmine/registry/model.h"
#include "dockmine/util/error.h"

namespace dockmine::analyzer {

class AnalysisPipeline {
 public:
  struct Options {
    std::size_t workers = 0;  ///< 0 => hardware concurrency
    LayerAnalyzer::Options analyzer;
  };

  /// Consumer callbacks. All are invoked under an internal mutex (thread
  /// safe to use plain accumulators); any may be null.
  struct Sink {
    std::function<void(const LayerProfile&)> on_layer;  ///< per unique layer
    std::function<void(const digest::Digest& layer_digest,
                       const FileRecord& record)>
        on_file;                                        ///< per file
    std::function<void(const ImageProfile&)> on_image;
  };

  using BlobFetch =
      std::function<util::Result<blob::BlobPtr>(const digest::Digest&)>;

  AnalysisPipeline() = default;
  explicit AnalysisPipeline(Options options) : options_(options) {}

  /// Analyze all manifests. Unique layers are profiled exactly once, in
  /// parallel. Returns the profile store (reusable for further queries).
  util::Result<ProfileStore> run(const std::vector<registry::Manifest>& manifests,
                                 const BlobFetch& fetch, const Sink& sink) const;

 private:
  Options options_{};
};

}  // namespace dockmine::analyzer
