// Parallel analysis pipeline: profile every unique layer of a set of
// manifests (fetching blobs through a caller-supplied function), then build
// image profiles. Mirrors Fig. 2 of the paper — the Analyzer stage — with
// the unique-layer economy of §III-B.
//
// Two consumption styles share one engine:
//   * run(): the staged batch API — all manifests known up front, unique
//     layers profiled in parallel on an internal pool;
//   * Session: the streaming API — workers feed layer blobs as they arrive
//     (e.g. popped off the download→analyze queue), then finish() builds
//     the image profiles once the manifest set is complete.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "dockmine/analyzer/image_analyzer.h"
#include "dockmine/analyzer/layer_analyzer.h"
#include "dockmine/blob/store.h"
#include "dockmine/registry/model.h"
#include "dockmine/util/error.h"

namespace dockmine::analyzer {

class AnalysisPipeline {
 public:
  struct Options {
    std::size_t workers = 0;  ///< 0 => hardware concurrency
    LayerAnalyzer::Options analyzer;
  };

  /// Consumer callbacks. Except for on_file_concurrent, all are invoked
  /// under an internal mutex (thread safe to use plain accumulators); any
  /// may be null.
  struct Sink {
    std::function<void(const LayerProfile&)> on_layer;  ///< per unique layer
    std::function<void(const digest::Digest& layer_digest,
                       const FileRecord& record)>
        on_file;                                        ///< per file
    /// Per file, like on_file, but invoked OUTSIDE the session mutex — from
    /// whichever worker thread won the layer's delivery race, after the
    /// race is decided (still exactly once per unique layer). The callback
    /// must be safe to run from many threads at once; sharded dedup routing
    /// uses this to keep the streamed hot path lock-free.
    std::function<void(const digest::Digest& layer_digest,
                       const FileRecord& record)>
        on_file_concurrent;
    std::function<void(const ImageProfile&)> on_image;
  };

  using BlobFetch =
      std::function<util::Result<blob::BlobPtr>(const digest::Digest&)>;

  AnalysisPipeline() = default;
  explicit AnalysisPipeline(Options options) : options_(options) {}

  /// Incremental analysis over layers that arrive one at a time. Any number
  /// of threads may call analyze() concurrently; sink callbacks and profile
  /// store updates are serialized internally. Errors are latched: after the
  /// first failure every later analyze() returns immediately (fail fast),
  /// and status()/finish() surface it.
  class Session {
   public:
    /// `sink` is captured by reference and must outlive the session.
    Session(const AnalysisPipeline& pipeline, const Sink& sink);

    /// Profile one compressed layer blob and deliver layer/file results.
    /// A digest already profiled in this session is skipped, so re-delivery
    /// (checkpoint replays, retries) cannot double-count.
    void analyze(const digest::Digest& digest, const std::string& gzip_blob);

    /// Pre-size the profile store for an expected number of unique layers
    /// (see ProfileStore::reserve). Call before the analyze() storm.
    void reserve_layers(std::size_t layers);

    /// Latch an external failure (e.g. a blob fetch error) so the session
    /// fails fast exactly as if analysis itself had failed.
    void fail(util::Error error);

    /// Build and deliver image profiles for `manifests` from the layers
    /// analyzed so far. Call once, after all analyze() calls completed.
    util::Status finish(const std::vector<registry::Manifest>& manifests);

    util::Status status() const;
    std::uint64_t layers_analyzed() const noexcept {
      return analyzed_.load(std::memory_order_relaxed);
    }
    ProfileStore take_store();

   private:
    const LayerAnalyzer analyzer_;
    const Sink& sink_;
    const bool timed_;
    const std::string span_base_;  ///< tracer path open at construction
    mutable std::mutex mutex_;     ///< store + sinks + first_error_
    ProfileStore store_;
    util::Status first_error_;
    std::atomic<std::uint64_t> analyzed_{0};
  };

  /// Analyze all manifests. Unique layers are profiled exactly once, in
  /// parallel. Returns the profile store (reusable for further queries).
  util::Result<ProfileStore> run(const std::vector<registry::Manifest>& manifests,
                                 const BlobFetch& fetch, const Sink& sink) const;

  const Options& options() const noexcept { return options_; }

 private:
  Options options_{};
};

}  // namespace dockmine::analyzer
