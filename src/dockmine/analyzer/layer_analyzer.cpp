#include "dockmine/analyzer/layer_analyzer.h"

#include <algorithm>
#include <map>

#include "dockmine/compress/gzip.h"
#include "dockmine/digest/sha256.h"
#include "dockmine/filetype/classifier.h"
#include "dockmine/obs/obs.h"
#include "dockmine/tar/reader.h"

namespace dockmine::analyzer {

namespace {

/// Number of path components ("a/b/c" -> 3; trailing '/' ignored).
std::uint32_t path_depth(std::string_view path) noexcept {
  if (!path.empty() && path.back() == '/') path.remove_suffix(1);
  if (path.empty()) return 0;
  std::uint32_t depth = 1;
  for (char c : path) {
    if (c == '/') ++depth;
  }
  return depth;
}

}  // namespace

util::Result<LayerProfile> LayerAnalyzer::analyze_tar(
    std::string_view tar_bytes, const FileVisitor* visitor,
    const DirectoryVisitor* dir_visitor, Timing* timing) const {
  LayerProfile profile;
  profile.cls = tar_bytes.size();  // caller overwrites for gzip blobs

  std::uint64_t explicit_dirs = 0;
  // Per-directory direct-child file counts (paper's directory metadata).
  std::map<std::string, std::uint64_t, std::less<>> dir_files;
  tar::Reader reader(tar_bytes);
  auto status = reader.for_each([&](const tar::Entry& entry) {
    const std::uint32_t depth = path_depth(entry.header.name);
    if (entry.is_directory()) {
      ++explicit_dirs;
      profile.max_depth = std::max(profile.max_depth, std::max(1u, depth));
      if (dir_visitor != nullptr) {
        std::string path(entry.header.name);
        while (!path.empty() && path.back() == '/') path.pop_back();
        dir_files.emplace(std::move(path), 0);
      }
      return;
    }
    if (!entry.is_file() || entry.is_whiteout()) return;
    ++profile.file_count;
    profile.fls += entry.content.size();
    // Parent directory of a file bounds the depth too.
    if (depth > 1) profile.max_depth = std::max(profile.max_depth, depth - 1);
    if (dir_visitor != nullptr) {
      const std::string_view name = entry.header.name;
      const std::size_t slash = name.rfind('/');
      const std::string_view parent =
          slash == std::string_view::npos ? std::string_view{}
                                          : name.substr(0, slash);
      ++dir_files[std::string(parent)];  // implicit parents count too
    }
    if (visitor != nullptr) {
      const double classify_start =
          timing != nullptr ? obs::now_ms() : 0.0;
      FileRecord record;
      record.size = entry.content.size();
      record.digest = digest::Digest::of(entry.content);
      record.type = filetype::classify(
          entry.header.name,
          entry.content.substr(
              0, std::max(options_.classify_prefix,
                          static_cast<std::size_t>(262))));
      if (timing != nullptr) {
        timing->classify_ms += obs::now_ms() - classify_start;
      }
      (*visitor)(entry.header.name, record);
    }
  });
  if (!status.ok()) return status.error();
  profile.dir_count = std::max<std::uint64_t>(1, explicit_dirs);
  if (dir_visitor != nullptr) {
    for (const auto& [path, files] : dir_files) {
      DirectoryRecord record;
      record.path = path.empty() ? "." : path;
      record.depth = path.empty() ? 1 : path_depth(path);
      record.file_count = files;
      (*dir_visitor)(record);
    }
  }
  return profile;
}

util::Result<LayerProfile> LayerAnalyzer::analyze_blob(
    std::string_view gzip_blob, const FileVisitor* visitor,
    const DirectoryVisitor* dir_visitor, Timing* timing) const {
  const double gunzip_start = timing != nullptr ? obs::now_ms() : 0.0;
  auto tar_bytes =
      compress::gzip_decompress(gzip_blob, options_.max_uncompressed);
  if (timing != nullptr) timing->gunzip_ms += obs::now_ms() - gunzip_start;
  if (!tar_bytes.ok()) return std::move(tar_bytes).error();
  auto profile = analyze_tar(tar_bytes.value(), visitor, dir_visitor, timing);
  if (!profile.ok()) return profile;
  profile.value().cls = gzip_blob.size();
  profile.value().digest = digest::Digest::of(gzip_blob);
  return profile;
}

}  // namespace dockmine::analyzer
