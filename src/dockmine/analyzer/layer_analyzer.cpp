#include "dockmine/analyzer/layer_analyzer.h"

#include <algorithm>
#include <map>

#include "dockmine/compress/gzip.h"
#include "dockmine/digest/sha256.h"
#include "dockmine/filetype/classifier.h"
#include "dockmine/mem/arena.h"
#include "dockmine/obs/obs.h"
#include "dockmine/tar/reader.h"

namespace dockmine::analyzer {

namespace {

/// Number of path components ("a/b/c" -> 3; trailing '/' ignored).
std::uint32_t path_depth(std::string_view path) noexcept {
  if (!path.empty() && path.back() == '/') path.remove_suffix(1);
  if (path.empty()) return 0;
  std::uint32_t depth = 1;
  for (char c : path) {
    if (c == '/') ++depth;
  }
  return depth;
}

/// The walk, generic over the directory-map storage: `dir_files` is an
/// ordered map (heap strings, or arena-interned views via `make_key`), so
/// emission order — and therefore every visitor observation — is identical
/// on both paths.
template <typename DirMap, typename MakeKey>
util::Result<LayerProfile> walk_tar(const LayerAnalyzer::Options& options,
                                    std::string_view tar_bytes,
                                    const FileVisitor* visitor,
                                    const DirectoryVisitor* dir_visitor,
                                    LayerAnalyzer::Timing* timing,
                                    DirMap& dir_files, MakeKey make_key) {
  LayerProfile profile;
  profile.cls = tar_bytes.size();  // caller overwrites for gzip blobs

  std::uint64_t explicit_dirs = 0;
  // Tars list a directory's files consecutively, so one memoized
  // (parent, count-slot) pair absorbs almost every lookup; map nodes are
  // stable, and the memo key views the node's own stable storage (not the
  // reused Entry buffer, which the next header overwrites).
  std::string_view last_parent;
  std::uint64_t* last_count = nullptr;
  tar::Reader reader(tar_bytes);
  auto status = reader.for_each([&](const tar::Entry& entry) {
    const std::uint32_t depth = path_depth(entry.header.name);
    if (entry.is_directory()) {
      ++explicit_dirs;
      profile.max_depth = std::max(profile.max_depth, std::max(1u, depth));
      if (dir_visitor != nullptr) {
        std::string_view path = entry.header.name;
        while (!path.empty() && path.back() == '/') path.remove_suffix(1);
        if (dir_files.find(path) == dir_files.end()) {
          dir_files.emplace(make_key(path), 0);
        }
      }
      return;
    }
    if (!entry.is_file() || entry.is_whiteout()) return;
    ++profile.file_count;
    profile.fls += entry.content.size();
    // Parent directory of a file bounds the depth too.
    if (depth > 1) profile.max_depth = std::max(profile.max_depth, depth - 1);
    if (dir_visitor != nullptr) {
      const std::string_view name = entry.header.name;
      const std::size_t slash = name.rfind('/');
      const std::string_view parent =
          slash == std::string_view::npos ? std::string_view{}
                                          : name.substr(0, slash);
      if (last_count != nullptr && parent == last_parent) {
        ++*last_count;
      } else {
        auto it = dir_files.find(parent);  // implicit parents count too
        if (it != dir_files.end()) {
          ++it->second;
        } else {
          it = dir_files.emplace(make_key(parent), 1).first;
        }
        last_parent = std::string_view(it->first);
        last_count = &it->second;
      }
    }
    if (visitor != nullptr) {
      const double classify_start =
          timing != nullptr ? obs::now_ms() : 0.0;
      FileRecord record;
      record.size = entry.content.size();
      record.digest = digest::Digest::of(entry.content);
      record.type = filetype::classify(
          entry.header.name,
          entry.content.substr(
              0, std::max(options.classify_prefix,
                          static_cast<std::size_t>(262))));
      if (timing != nullptr) {
        timing->classify_ms += obs::now_ms() - classify_start;
      }
      (*visitor)(entry.header.name, record);
    }
  });
  if (!status.ok()) return status.error();
  profile.dir_count = std::max<std::uint64_t>(1, explicit_dirs);
  if (dir_visitor != nullptr) {
    for (const auto& [path, files] : dir_files) {
      DirectoryRecord record;
      record.path = path.empty() ? "." : std::string(path);
      record.depth = path.empty() ? 1 : path_depth(path);
      record.file_count = files;
      (*dir_visitor)(record);
    }
  }
  return profile;
}

}  // namespace

util::Result<LayerProfile> LayerAnalyzer::analyze_tar(
    std::string_view tar_bytes, const FileVisitor* visitor,
    const DirectoryVisitor* dir_visitor, Timing* timing,
    mem::Arena* scratch) const {
  if (scratch != nullptr && dir_visitor != nullptr) {
    // Per-directory direct-child file counts, nodes and keys in the
    // caller's per-layer arena: zero heap traffic, discarded wholesale at
    // the caller's reset().
    using Alloc = mem::ArenaAllocator<
        std::pair<const std::string_view, std::uint64_t>>;
    std::map<std::string_view, std::uint64_t, std::less<>, Alloc> dir_files{
        std::less<>{}, Alloc(*scratch)};
    return walk_tar(options_, tar_bytes, visitor, dir_visitor, timing,
                    dir_files,
                    [scratch](std::string_view key) {
                      return scratch->intern(key);
                    });
  }
  // Per-directory direct-child file counts (paper's directory metadata).
  std::map<std::string, std::uint64_t, std::less<>> dir_files;
  return walk_tar(options_, tar_bytes, visitor, dir_visitor, timing,
                  dir_files,
                  [](std::string_view key) { return std::string(key); });
}

util::Result<LayerProfile> LayerAnalyzer::analyze_blob(
    std::string_view gzip_blob, const FileVisitor* visitor,
    const DirectoryVisitor* dir_visitor, Timing* timing,
    mem::Arena* scratch) const {
  const double gunzip_start = timing != nullptr ? obs::now_ms() : 0.0;
  auto tar_bytes =
      compress::gzip_decompress(gzip_blob, options_.max_uncompressed);
  if (timing != nullptr) timing->gunzip_ms += obs::now_ms() - gunzip_start;
  if (!tar_bytes.ok()) return std::move(tar_bytes).error();
  auto profile =
      analyze_tar(tar_bytes.value(), visitor, dir_visitor, timing, scratch);
  if (!profile.ok()) return profile;
  profile.value().cls = gzip_blob.size();
  profile.value().digest = digest::Digest::of(gzip_blob);
  return profile;
}

}  // namespace dockmine::analyzer
