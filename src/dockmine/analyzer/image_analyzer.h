// Image-level profiling: aggregate a manifest's layer profiles into an
// image profile (paper §III-C b: FIS, CIS, directory count, file count,
// plus pointers to layer profiles).
#pragma once

#include <optional>
#include <unordered_map>

#include "dockmine/analyzer/profile.h"
#include "dockmine/registry/model.h"
#include "dockmine/util/error.h"

namespace dockmine::analyzer {

/// Cache of layer profiles keyed by layer digest. Layers shared between
/// images are profiled once — the same economy the paper's downloader
/// applied ("we only download unique layers").
class ProfileStore {
 public:
  /// Insert (no-op if the digest is already profiled).
  void put(const LayerProfile& profile);

  /// Pre-size the table for `layers` unique layers. Without this the map
  /// rehashes repeatedly as layers trickle in one image at a time; callers
  /// that know the manifest set's layer count up front (the pipeline does)
  /// pay for the table once and reuse it across every image in a session.
  void reserve(std::size_t layers) { profiles_.reserve(layers); }

  std::optional<LayerProfile> find(const digest::Digest& digest) const;
  bool contains(const digest::Digest& digest) const;
  std::size_t size() const noexcept { return profiles_.size(); }

  /// Iterate all profiles (unspecified order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, profile] : profiles_) fn(profile);
  }

 private:
  std::unordered_map<digest::Digest, LayerProfile, digest::DigestHash>
      profiles_;
};

/// Build the image profile for `manifest` from profiled layers.
/// Fails with kNotFound if any referenced layer is missing from the store.
util::Result<ImageProfile> build_image_profile(
    const registry::Manifest& manifest, const ProfileStore& store);

}  // namespace dockmine::analyzer
