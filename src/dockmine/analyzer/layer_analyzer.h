// Bytes-mode layer analysis: gunzip the blob, walk the tar, profile every
// entry — the paper's "decompresses and extracts each layer tarball ...
// recursively traverses each subdirectory and obtains its metadata"
// (§III-C), except we stream the archive instead of extracting to disk.
#pragma once

#include <functional>
#include <string_view>

#include "dockmine/analyzer/profile.h"
#include "dockmine/util/error.h"

namespace dockmine::mem {
class Arena;
}

namespace dockmine::analyzer {

using FileVisitor = std::function<void(std::string_view path,
                                       const FileRecord& record)>;

/// Per-directory metadata, the third element of the paper's layer profile
/// ("directory name; directory depth; file count", §III-C). `file_count`
/// counts direct children only.
struct DirectoryRecord {
  std::string path;
  std::uint32_t depth = 1;
  std::uint64_t file_count = 0;
};
using DirectoryVisitor = std::function<void(const DirectoryRecord&)>;

class LayerAnalyzer {
 public:
  struct Options {
    /// Cap on the decompressed layer size (bomb guard).
    std::uint64_t max_uncompressed = 1ULL << 34;
    /// Bytes of each file examined by the type classifier (libmagic-style).
    std::size_t classify_prefix = 512;
  };

  /// Optional stage-timing breakdown, filled only when a non-null pointer
  /// is passed (the null path performs no clock reads at all).
  struct Timing {
    double gunzip_ms = 0.0;    ///< decompressing the blob
    double classify_ms = 0.0;  ///< per-file digest + type classification
  };

  LayerAnalyzer() = default;
  explicit LayerAnalyzer(Options options) : options_(options) {}

  /// Analyze a compressed layer blob. `visitor` (optional) receives every
  /// regular file. The returned profile's `digest` is the SHA-256 of the
  /// blob and `cls` its size. `scratch`, when given, backs the per-layer
  /// directory map (keys interned, nodes bump-allocated) — the caller owns
  /// the arena and must reset() it between layers (DESIGN.md §14); results
  /// are identical with or without it.
  util::Result<LayerProfile> analyze_blob(
      std::string_view gzip_blob, const FileVisitor* visitor = nullptr,
      const DirectoryVisitor* dir_visitor = nullptr,
      Timing* timing = nullptr, mem::Arena* scratch = nullptr) const;

  /// Analyze an already-uncompressed tar archive (cls/digest filled by the
  /// caller if known). `dir_visitor`, when given, receives every explicit
  /// directory with its direct-child file count after the walk.
  util::Result<LayerProfile> analyze_tar(
      std::string_view tar_bytes, const FileVisitor* visitor = nullptr,
      const DirectoryVisitor* dir_visitor = nullptr,
      Timing* timing = nullptr, mem::Arena* scratch = nullptr) const;

 private:
  Options options_{};
};

}  // namespace dockmine::analyzer
