// Calibration constants for the synthetic Docker Hub snapshot.
//
// Every number here is either copied from the paper (cited by section /
// figure) or a model parameter fitted so the generated population
// reproduces the paper's reported quantiles. The generator consumes ONLY
// this struct; benches print paper-vs-measured so any drift is visible.
#pragma once

#include <cstdint>

namespace dockmine::synth {

/// Scale of a generated snapshot. The paper's full snapshot is preserved in
/// `Calibration::kFullRepositories`; tests and benches run scaled-down
/// replicas whose *distributions* match.
struct Scale {
  std::uint64_t repositories = 2000;
  std::uint64_t seed = 20170530;  // the paper's crawl date

  static Scale test() { return {300, 20170530}; }
  static Scale bench() { return {2000, 20170530}; }
  static Scale large() { return {40000, 20170530}; }
};

struct Calibration {
  // ===== §III totals =====
  static constexpr std::uint64_t kFullRepositories = 457627;   // distinct
  static constexpr std::uint64_t kFullRawSearchHits = 634412;  // crawler raw
  static constexpr double kSearchDuplicateFactor =
      634412.0 / 457627.0;  // ~1.386
  static constexpr std::uint64_t kFullImagesDownloaded = 355319;
  static constexpr std::uint64_t kFullImagesFailed = 111384;
  static constexpr std::uint64_t kFullLayers = 1792609;
  static constexpr std::uint64_t kFullFiles = 5278465130ULL;
  // Of failed downloads: 13% required auth, 87% had no `latest` tag.
  static constexpr double kFailAuthFraction = 0.13;
  static constexpr double kFailNoLatestFraction = 0.87;
  // Failure rate over attempted repositories.
  static constexpr double kDownloadFailureRate =
      static_cast<double>(kFullImagesFailed) /
      static_cast<double>(kFullImagesDownloaded + kFullImagesFailed);

  // ===== Fig. 3 — layer sizes =====
  // "50% of the layers are smaller than 4 MB ... 90% smaller than 177 MB
  // uncompressed / 63 MB compressed."
  static constexpr double kLayerClsMedian = 4.0e6;
  static constexpr double kLayerClsP90 = 63.0e6;
  static constexpr double kLayerFlsP90 = 177.0e6;

  // ===== Fig. 4 — compression ratio =====
  // "median compression ratio is 2.6 ... 90% less than 4 ... largest 1026."
  double ratio_median = 2.6;
  double ratio_p90 = 4.0;
  double ratio_max = 1026.0;
  double ratio_min = 1.0;

  // ===== Fig. 5 — files per layer =====
  // "7% no files, 27% single file, 50% < 30 files, 90% < 7410,
  //  largest layer 826,196 files."
  // File counts are generated per-image-class: most images are "light"
  // (few, large files — an app binary plus configs), a minority are
  // "heavy" (distro trees: thousands of small files). This reproduces the
  // joint facts that layers have median 30 / p90 7,410 files while images
  // have median 1,090 / p90 64,780 (Figs. 5 vs 12) — impossible if layers
  // were i.i.d. across images.
  double image_heavy_prob = 0.15;
  // light-image own layers:
  double light_empty_prob = 0.08;
  double light_single_prob = 0.31;
  double files_small_median = 61.0;
  double files_small_sigma = 1.4;
  // heavy-image own layers:
  double heavy_empty_prob = 0.05;
  double heavy_single_prob = 0.15;
  double files_big_median = 12000.0;
  double files_big_sigma = 1.0;
  std::uint64_t files_max = 826196;
  // Derived overall fractions (documented targets): empty ~7%, single ~27%.

  // ===== Fig. 6/7 — directories and depth =====
  // dirs ~ 0.8 * files^0.78 (fitted: median 11 @ 30 files, 826 @ 7410),
  // lognormal noise; depth mode 3, median < 4, 90% < 10, max 111,940 dirs.
  double dirs_coeff = 0.8;
  double dirs_exponent = 0.78;
  double dirs_noise_sigma = 0.35;
  std::uint64_t dirs_max = 111940;
  double depth_median = 3.4;
  double depth_sigma = 0.45;
  std::uint64_t depth_max = 40;

  // ===== Fig. 8 — repository popularity =====
  // "median 40 pulls, p90 333, max 650M (nginx); peaks at 0-5 pulls and a
  //  second mode around 37."
  double pulls_low_weight = 0.42;   // barely-pulled repos
  double pulls_low_median = 4.0;
  double pulls_low_sigma = 1.1;
  double pulls_mid_weight = 0.565;  // the ~37-pull mode
  double pulls_mid_median = 115.0;  // lognormal mode = median*e^-s^2 ~= 41
  double pulls_mid_sigma = 1.05;
  double pulls_tail_weight = 0.015; // heavy hitters
  double pulls_tail_xm = 2000.0;
  double pulls_tail_alpha = 0.52;
  double pulls_max = 6.5e8;

  // ===== Fig. 10 — layers per image =====
  // "mode 8, 50% < 8, 90% < 18, max 120; 7,060 single-layer images (~2%)."
  double layers_single_prob = 0.02;
  double layers_median = 8.0;
  double layers_sigma = 0.63;  // ln(18/8)/z90
  std::uint64_t layers_max = 120;

  // ===== Fig. 23 / §V-A — layer sharing =====
  // One empty layer referenced by 184,171 of 355,319 images (~52%);
  // top base layers referenced by ~29-33k images (~8-9%); 90% of layers
  // referenced once; sharing saves 1.8x of compressed bytes.
  double empty_layer_prob = 0.52;
  double base_stack_prob = 0.40;     // image builds on a popular base stack
  double base_pool_per_repo = 1.0 / 2500.0;  // number of base stacks
  double base_zipf_s = 1.10;
  std::uint32_t base_stack_layers_min = 1;
  std::uint32_t base_stack_layers_max = 5;
  // Bottom (distro rootfs) layer of a base stack; upper stack layers use
  // the small component.
  double files_base_median = 2600.0;
  double files_base_sigma = 1.0;
  // Twin images: users pushing several variants of one image share most of
  // its non-base layers. This is what lifts the Fig. 23 reference-count
  // curve off "everything referenced once" (paper: 90% once, ~5% twice).
  std::uint32_t twin_cluster_size = 8;
  double twin_prob = 0.24;          // non-head cluster members that twin
  std::uint32_t twin_new_layers_max = 3;

  // ===== Figs. 24-29 / §V-B — file-level dedup =====
  // Full-scale targets: 3.2% unique files, dedup 31.5x count / 6.9x
  // capacity; 50% of files have exactly 4 copies, 90% <= 10; the most
  // repeated file is empty (53,654,306 copies ~= 1% of all files).
  double empty_file_prob = 0.010;    // instances of THE empty file
  // Probability that a non-empty file instance is a fresh, never-shared
  // content (vs a draw from the shared pool). Per type group, fitted to the
  // per-group dedup ratios of Fig. 27 (SC 96.8%, Scr 98%, Doc 92%,
  // EOL/Arch/Img ~86%, DB 76%).
  double fresh_prob[8] = {
      0.020,  // EOL
      0.006,  // SourceCode
      0.004,  // Scripts
      0.012,  // Documents
      0.020,  // Archival
      0.020,  // Images
      0.060,  // Databases
      0.010,  // Other
  };
  // Shared-pool rank popularity (Zipf exponent); pool sizes follow the
  // Heaps-law fit in file_model.h, scaled per group by these multipliers —
  // smaller pool => more duplication (scripts/source are the most
  // replicated per Fig. 27, databases the least).
  double pool_zipf_s = 0.70;
  double pool_budget_mult[8] = {
      1.3,   // EOL
      0.35,  // SourceCode
      0.25,  // Scripts
      0.80,  // Documents
      1.3,   // Archival
      1.3,   // Images
      2.5,   // Databases
      1.0,   // Other
  };
  std::uint64_t pool_min_size = 64;

  // Size-count anticorrelation: layers with few files skew toward large
  // file types (a single added tarball or binary), file-count-heavy layers
  // toward small ones (pyc trees, docs). Required to reconcile layer file
  // counts (median 30) with layer sizes (median ~4 MB) — 30 average files
  // would only be ~0.7 MB.
  std::uint64_t bias_big_max_files = 100;    // <= this => big-file mixture
  std::uint64_t bias_small_min_files = 2000; // >= this => small-file mixture

  // Global multiplier on per-type mean file sizes. 1.0 reproduces the
  // paper; light() shrinks it so bytes-mode tests stay cheap.
  double file_size_scale = 1.0;

  // ===== §IV-C — file type mix (Figs. 14-22) =====
  // Count shares by group {EOL, SC, Scr, Doc, Arch, Img, DB, Other};
  // see file_model.cpp for the per-type breakdown within groups.
  // Base shares are pre-bias; the size-count bias shifts realized global
  // shares, so these are fitted so the MEASURED shares match Fig. 14
  // (Doc 44%, SC 13%, EOL 11%, Scr 9%, Img 4%; Arch/DB back-computed from
  // capacity shares and average sizes).
  double group_count_share[8] = {
      0.1794,  // EOL
      0.1315,  // SC
      0.0912,  // Scr
      0.3113,  // Doc
      0.0956,  // Arch
      0.0487,  // Img
      0.0036,  // DB
      0.1387,  // Other
  };

  static Calibration paper() { return {}; }

  /// Same logic, drastically smaller layers: for bytes-mode tests that
  /// exercise the tar/gzip/registry/analyzer paths without generating
  /// gigabytes. Distribution-band tests must use paper().
  static Calibration light() {
    Calibration cal;
    cal.image_heavy_prob = 0.10;
    cal.files_small_median = 12.0;
    cal.files_small_sigma = 1.0;
    cal.files_big_median = 250.0;
    cal.files_big_sigma = 0.8;
    cal.files_base_median = 80.0;
    cal.file_size_scale = 0.05;
    return cal;
  }
};

}  // namespace dockmine::synth
